"""Measurement harness: stretch profiles, stats, tables."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    StretchProfile,
    exhaustive_stretch_profile,
    format_cell,
    geometric_mean,
    growth_ratios,
    log_log_slope,
    render_table,
    sampled_stretch_profile,
    stretch_after_faults,
    summarize,
)
from repro.core import fault_tolerant_spanner
from repro.graph import complete_graph, connected_gnp_graph, cycle_graph


class TestStretch:
    def test_identity_spanner_stretch_one(self):
        g = complete_graph(5)
        assert stretch_after_faults(g, g, []) == 1.0
        assert stretch_after_faults(g, g, [0, 1]) == 1.0

    def test_detects_distortion(self):
        g = complete_graph(4)
        h = g.copy()
        h.remove_edge(0, 1)
        assert stretch_after_faults(h, g, []) == 2.0
        # one midpoint faulted: the other still gives a 2-path
        assert stretch_after_faults(h, g, [2]) == 2.0
        # faulting both midpoints disconnects 0-1 in h but not in g
        assert stretch_after_faults(h, g, [2, 3]) == math.inf

    def test_exhaustive_profile(self):
        g = complete_graph(5)
        result = fault_tolerant_spanner(g, 3, 1, seed=1)
        profile = exhaustive_stretch_profile(result.spanner, g, 1)
        assert profile.max <= 3.0 + 1e-9
        assert profile.fraction_within(3.0) == 1.0
        assert len(profile.samples) == 1 + 5

    def test_sampled_profile(self):
        g = connected_gnp_graph(12, 0.5, seed=2)
        result = fault_tolerant_spanner(g, 3, 2, seed=3)
        profile = sampled_stretch_profile(result.spanner, g, 2, trials=25, seed=4)
        assert len(profile.samples) == 25
        assert profile.max <= 3.0 + 1e-9
        assert profile.mean >= 1.0

    def test_empty_profile(self):
        p = StretchProfile()
        assert p.max == 1.0
        assert p.fraction_within(2.0) == 1.0


class TestStats:
    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.count == 3
        assert s.mean == 2.0
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.std == pytest.approx(math.sqrt(2 / 3))

    def test_summarize_empty(self):
        assert math.isnan(summarize([]).mean)

    def test_log_log_slope_recovers_exponent(self):
        xs = [10, 20, 40, 80]
        ys = [x ** 1.5 for x in xs]
        assert log_log_slope(xs, ys) == pytest.approx(1.5)

    def test_log_log_slope_validation(self):
        with pytest.raises(ValueError):
            log_log_slope([1], [1])
        with pytest.raises(ValueError):
            log_log_slope([1, 2], [1])
        with pytest.raises(ValueError):
            log_log_slope([5, 5], [1, 2])

    def test_growth_ratios(self):
        assert growth_ratios([1.0, 2.0, 6.0]) == [2.0, 3.0]
        assert growth_ratios([0.0, 1.0]) == [math.inf]

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])
        assert math.isnan(geometric_mean([]))


class TestTables:
    def test_format_cell(self):
        assert format_cell(3) == "3"
        assert format_cell(3.14159) == "3.14"
        assert format_cell(math.inf) == "inf"
        assert format_cell(math.nan) == "-"
        assert format_cell(True) == "yes"
        assert format_cell(2.0) == "2"

    def test_render_table_alignment(self):
        out = render_table(["a", "long_header"], [[1, 2.5], [10, 3.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "long_header" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_render_table_title_and_validation(self):
        out = render_table(["x"], [[1]], title="T")
        assert out.startswith("T\n")
        with pytest.raises(ValueError):
            render_table(["x"], [[1, 2]])
