"""Generator correctness: sizes, structure, determinism under seeds."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph import (
    barabasi_albert_graph,
    complete_bipartite_graph,
    complete_digraph,
    complete_graph,
    connected_gnp_graph,
    cycle_graph,
    gnp_random_digraph,
    gnp_random_graph,
    grid_graph,
    hypercube_graph,
    is_connected,
    knapsack_gap_gadget,
    layered_fault_graph,
    path_graph,
    random_geometric_graph,
    random_regular_graph,
    star_graph,
)


class TestDeterministicFamilies:
    def test_complete_graph(self):
        g = complete_graph(6)
        assert g.num_vertices == 6
        assert g.num_edges == 15

    def test_complete_digraph(self):
        g = complete_digraph(5)
        assert g.num_edges == 20
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_complete_bipartite(self):
        g = complete_bipartite_graph(3, 4)
        assert g.num_edges == 12
        # no intra-side edges
        assert not g.has_edge(0, 1)
        assert not g.has_edge(3, 4)

    def test_path_cycle_star(self):
        assert path_graph(5).num_edges == 4
        assert cycle_graph(5).num_edges == 5
        assert star_graph(7).num_edges == 7
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # rows*(cols-1) + (rows-1)*cols

    def test_hypercube(self):
        g = hypercube_graph(4)
        assert g.num_vertices == 16
        assert g.num_edges == 4 * 16 // 2
        assert all(g.degree(v) == 4 for v in g.vertices())


class TestRandomFamilies:
    def test_gnp_extremes(self):
        assert gnp_random_graph(8, 0.0, seed=1).num_edges == 0
        assert gnp_random_graph(8, 1.0, seed=1).num_edges == 28

    def test_gnp_seed_determinism(self):
        a = gnp_random_graph(20, 0.3, seed=7)
        b = gnp_random_graph(20, 0.3, seed=7)
        assert sorted(map(tuple, a.edges())) == sorted(map(tuple, b.edges()))

    def test_gnp_weight_range(self):
        g = gnp_random_graph(12, 0.5, seed=3, weight_range=(2.0, 4.0))
        assert all(2.0 <= w <= 4.0 for _u, _v, w in g.edges())

    def test_gnp_digraph(self):
        g = gnp_random_digraph(10, 1.0, seed=2)
        assert g.num_edges == 90

    def test_gnp_invalid_p(self):
        with pytest.raises(GraphError):
            gnp_random_graph(5, 1.5)

    def test_connected_gnp_is_connected(self):
        g = connected_gnp_graph(25, 0.15, seed=11)
        assert is_connected(g)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_random_regular_is_regular(self, seed):
        g = random_regular_graph(12, 3, seed=seed)
        assert all(g.degree(v) == 3 for v in g.vertices())

    def test_random_regular_parity_check(self):
        with pytest.raises(GraphError):
            random_regular_graph(7, 3)
        with pytest.raises(GraphError):
            random_regular_graph(4, 4)

    def test_barabasi_albert_size(self):
        g = barabasi_albert_graph(30, 2, seed=5)
        assert g.num_vertices == 30
        # m initial star edges + (n - m - 1) * m attachment edges (upper
        # bound; collisions with existing edges reduce the count slightly)
        assert g.num_edges <= 2 + (30 - 3) * 2
        assert g.num_edges >= 30  # connected and then some

    def test_barabasi_albert_invalid(self):
        with pytest.raises(GraphError):
            barabasi_albert_graph(5, 5)

    def test_random_geometric_weights_are_distances(self):
        g = random_geometric_graph(30, 0.4, seed=9)
        assert all(0 < w <= 0.4 + 1e-9 for _u, _v, w in g.edges())

    def test_random_geometric_unit_weights(self):
        g = random_geometric_graph(20, 0.5, seed=9, euclidean_weights=False)
        assert all(w == 1.0 for _u, _v, w in g.edges())


class TestAdversarialInstances:
    def test_gadget_structure(self):
        g = knapsack_gap_gadget(3, expensive_cost=500.0)
        assert g.num_vertices == 5
        assert g.num_edges == 1 + 2 * 3
        assert g.weight("u", "v") == 500.0
        for i in range(3):
            assert g.weight("u", ("w", i)) == 1.0
            assert g.weight(("w", i), "v") == 1.0

    def test_gadget_requires_positive_r(self):
        with pytest.raises(GraphError):
            knapsack_gap_gadget(0)

    def test_layered_fault_graph(self):
        g = layered_fault_graph(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 9
        # removing fewer than `width` vertices keeps the ends connected
        survivor = g.without_vertices({(1, 0), (1, 1)})
        assert is_connected(survivor.induced_subgraph(
            [v for v in survivor.vertices()]
        ))

    def test_layered_invalid(self):
        with pytest.raises(GraphError):
            layered_fault_graph(0, 3)
