"""Shortest-path algorithms, cross-checked against networkx."""

from __future__ import annotations

import math

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    Graph,
    all_pairs_distances,
    bfs_distances,
    connected_components,
    dijkstra,
    dijkstra_with_paths,
    distance,
    distance_at_most,
    eccentricity,
    gnp_random_graph,
    grid_graph,
    hop_diameter,
    is_connected,
    path_graph,
    reconstruct_path,
    to_networkx,
    weighted_diameter,
)
from repro.errors import DisconnectedError, VertexNotFound


class TestDijkstra:
    def test_simple_path(self, small_weighted):
        dist = dijkstra(small_weighted, 0)
        assert dist[0] == 0.0
        assert dist[2] == 2.0  # 0-1-2 beats direct 0-2 of weight 2.5
        assert dist[4] == 4.0  # 0-1-2-3-4 beats direct 10

    def test_cutoff_prunes(self, small_weighted):
        dist = dijkstra(small_weighted, 0, cutoff=1.5)
        assert 0 in dist and 1 in dist
        assert 4 not in dist

    def test_target_early_exit(self, small_weighted):
        dist = dijkstra(small_weighted, 0, target=1)
        assert dist[1] == 1.0

    def test_missing_source_raises(self):
        g = Graph()
        with pytest.raises(VertexNotFound):
            dijkstra(g, 0)

    def test_unreachable_vertex_absent(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_vertex(3)
        dist = dijkstra(g, 1)
        assert 3 not in dist
        assert distance(g, 1, 3) == math.inf

    def test_mixed_vertex_types_no_comparison_error(self):
        g = Graph()
        g.add_edge("a", (1, 2), 1.0)
        g.add_edge((1, 2), 7, 1.0)
        dist = dijkstra(g, "a")
        assert dist[7] == 2.0

    def test_zero_weight_edges(self):
        g = Graph()
        g.add_edge(1, 2, 0.0)
        g.add_edge(2, 3, 0.0)
        assert distance(g, 1, 3) == 0.0

    def test_directed_asymmetry(self, small_digraph):
        assert distance(small_digraph, "a", "c") == 2.0
        assert distance(small_digraph, "c", "a") == math.inf

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(2, 14))
    def test_matches_networkx(self, seed, n):
        g = gnp_random_graph(n, 0.4, seed=seed, weight_range=(0.1, 5.0))
        nxg = to_networkx(g)
        for source in list(g.vertices())[:3]:
            ours = dijkstra(g, source)
            theirs = nx.single_source_dijkstra_path_length(nxg, source)
            assert set(ours) == set(theirs)
            for v in ours:
                assert ours[v] == pytest.approx(theirs[v])


class TestPathReconstruction:
    def test_reconstruct(self, small_weighted):
        dist, parent = dijkstra_with_paths(small_weighted, 0)
        path = reconstruct_path(parent, 0, 4)
        assert path == [0, 1, 2, 3, 4]
        assert dist[4] == 4.0

    def test_trivial_path(self, small_weighted):
        _dist, parent = dijkstra_with_paths(small_weighted, 0)
        assert reconstruct_path(parent, 0, 0) == [0]

    def test_unreachable_raises(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_vertex(3)
        _dist, parent = dijkstra_with_paths(g, 1)
        with pytest.raises(DisconnectedError):
            reconstruct_path(parent, 1, 3)

    def test_path_consistent_with_distance(self, random_connected):
        dist, parent = dijkstra_with_paths(random_connected, 0)
        for target in random_connected.vertices():
            path = reconstruct_path(parent, 0, target)
            total = sum(
                random_connected.weight(a, b) for a, b in zip(path, path[1:])
            )
            assert total == pytest.approx(dist[target])


class TestBFSAndStructure:
    def test_bfs_hops(self):
        g = path_graph(5)
        dist = bfs_distances(g, 0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_bfs_cutoff(self):
        g = path_graph(5)
        dist = bfs_distances(g, 0, cutoff=2)
        assert max(dist.values()) == 2

    def test_distance_at_most_boundary(self, small_weighted):
        assert distance_at_most(small_weighted, 0, 2, 2.0)
        assert not distance_at_most(small_weighted, 0, 2, 1.9)

    def test_is_connected(self):
        g = path_graph(4)
        assert is_connected(g)
        g.add_vertex(99)
        assert not is_connected(g)

    def test_empty_and_singleton_connected(self):
        assert is_connected(Graph())
        g = Graph()
        g.add_vertex(1)
        assert is_connected(g)

    def test_connected_components(self):
        g = path_graph(3)
        g.add_edge(10, 11)
        comps = sorted(connected_components(g), key=len)
        assert [len(c) for c in comps] == [2, 3]

    def test_weighted_diameter(self):
        g = path_graph(4, weight=2.0)
        assert weighted_diameter(g) == 6.0

    def test_hop_diameter_grid(self):
        g = grid_graph(3, 4)
        assert hop_diameter(g) == 2 + 3

    def test_eccentricity_disconnected_is_inf(self):
        g = path_graph(3)
        g.add_vertex(42)
        assert eccentricity(g, 0) == math.inf

    def test_all_pairs_matches_single_source(self, random_connected):
        ap = all_pairs_distances(random_connected)
        for v in list(random_connected.vertices())[:4]:
            assert ap[v] == dijkstra(random_connected, v)
