"""Thorup–Zwick distance oracle: stretch, space, and query semantics."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidStretch
from repro.graph import (
    Graph,
    complete_graph,
    connected_gnp_graph,
    dijkstra,
    gnp_random_graph,
    path_graph,
)
from repro.spanners import build_distance_oracle, thorup_zwick_size_bound


class TestConstruction:
    def test_rejects_bad_t(self):
        with pytest.raises(InvalidStretch):
            build_distance_oracle(path_graph(3), 0)

    def test_stretch_property(self):
        assert build_distance_oracle(path_graph(4), 2, seed=0).stretch == 3
        assert build_distance_oracle(path_graph(4), 3, seed=0).stretch == 5

    def test_bunches_cover_all_vertices(self):
        g = connected_gnp_graph(20, 0.3, seed=1)
        oracle = build_distance_oracle(g, 2, seed=2)
        for v in g.vertices():
            assert oracle.bunch_size(v) >= 1

    def test_space_accounting(self):
        g = complete_graph(25)
        oracle = build_distance_oracle(g, 2, seed=3)
        assert oracle.total_size() == sum(
            oracle.bunch_size(v) for v in g.vertices()
        )
        # expected O(t n^{1+1/t}); generous constant
        assert oracle.total_size() <= 8 * thorup_zwick_size_bound(25, 2)


class TestQueries:
    def test_identity_query(self):
        g = path_graph(5)
        oracle = build_distance_oracle(g, 2, seed=4)
        assert oracle.query(2, 2) == 0.0

    def test_exact_on_t1(self):
        # t = 1: bunches store exact distances to every vertex.
        g = connected_gnp_graph(12, 0.4, seed=5, weight_range=(0.5, 2.0))
        oracle = build_distance_oracle(g, 1, seed=6)
        exact = {v: dijkstra(g, v) for v in g.vertices()}
        for u in g.vertices():
            for v in g.vertices():
                assert oracle.query(u, v) == pytest.approx(exact[u][v])

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 2000), t=st.sampled_from([2, 3]))
    def test_property_stretch_bound(self, seed, t):
        g = connected_gnp_graph(16, 0.35, seed=seed, weight_range=(0.5, 3.0))
        oracle = build_distance_oracle(g, t, seed=seed + 1)
        for u in list(g.vertices())[:5]:
            exact = dijkstra(g, u)
            for v in g.vertices():
                if u == v:
                    continue
                estimate = oracle.query(u, v)
                assert estimate >= exact[v] - 1e-9  # never underestimates
                assert estimate <= (2 * t - 1) * exact[v] + 1e-9

    def test_disconnected_returns_inf(self):
        g = path_graph(3)
        g.add_edge(10, 11)
        oracle = build_distance_oracle(g, 2, seed=7)
        assert oracle.query(0, 10) == math.inf

    def test_deterministic_under_seed(self):
        g = connected_gnp_graph(15, 0.4, seed=8)
        a = build_distance_oracle(g, 2, seed=9)
        b = build_distance_oracle(g, 2, seed=9)
        assert a.total_size() == b.total_size()
        for u in g.vertices():
            for v in list(g.vertices())[:5]:
                assert a.query(u, v) == b.query(u, v)
