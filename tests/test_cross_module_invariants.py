"""Cross-module ordering invariants the theory dictates.

These are the inequalities that must hold between the layers regardless of
randomness: LP relaxations lower-bound integral optima, strengthened
relaxations dominate weaker ones, rounded solutions upper-bound optima,
and baselines relate as the paper says.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import is_ft_2spanner
from repro.graph import complete_digraph, gnp_random_digraph, knapsack_gap_gadget
from repro.two_spanner import (
    approximate_ft2_spanner,
    exact_minimum_ft2_spanner,
    greedy_ft2_spanner,
    moser_tardos_rounding,
    solve_ft2_lp,
    solve_old_lp,
)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1500), r=st.integers(0, 2))
def test_lp_chain_on_random_instances(seed, r):
    """LP(2) <= LP(4) <= exact optimum <= any valid solution's cost."""
    g = gnp_random_digraph(7, 0.55, seed=seed)
    if g.num_edges == 0 or g.num_edges > 20:
        return
    old = solve_old_lp(g, r).objective
    new = solve_ft2_lp(g, r).objective
    exact = exact_minimum_ft2_spanner(g, r).cost
    greedy = greedy_ft2_spanner(g, r).cost
    tol = 1e-6
    assert old <= new + tol
    assert new <= exact + tol
    assert exact <= greedy + tol


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 1000))
def test_lp_monotone_in_r(seed):
    """More fault tolerance can only cost more, fractionally too."""
    g = gnp_random_digraph(8, 0.6, seed=seed)
    values = [solve_ft2_lp(g, r).objective for r in (0, 1, 2)]
    assert values[0] <= values[1] + 1e-6 <= values[2] + 2e-6


def test_all_section3_algorithms_agree_on_gadget():
    """Every Section 3 solver lands on the gadget's known optimum."""
    r = 2
    g = knapsack_gap_gadget(r, 30.0)
    opt = 30.0 + 2 * r
    assert exact_minimum_ft2_spanner(g, r).cost == pytest.approx(opt)
    assert solve_ft2_lp(g, r).objective == pytest.approx(opt)
    assert greedy_ft2_spanner(g, r).cost == pytest.approx(opt)
    approx = approximate_ft2_spanner(g, r, seed=1)
    assert approx.cost == pytest.approx(opt)
    lll = moser_tardos_rounding(g, solve_ft2_lp(g, r).x_values(), r, seed=2)
    assert is_ft_2spanner(lll.spanner, g, r)
    assert lll.cost == pytest.approx(opt)


def test_rounded_cost_dominates_lp_dominates_nothing():
    g = complete_digraph(7)
    for r in (0, 1, 2):
        lp = solve_ft2_lp(g, r)
        rounded = approximate_ft2_spanner(g, r, seed=3 + r)
        assert lp.objective <= rounded.cost + 1e-6
        assert rounded.ratio_vs_lp >= 1.0 - 1e-9


def test_conversion_size_between_base_and_host():
    """The FT spanner contains a base spanner's worth of edges and at most
    the host graph."""
    from repro.core import fault_tolerant_spanner
    from repro.graph import connected_gnp_graph
    from repro.spanners import greedy_spanner

    g = connected_gnp_graph(20, 0.4, seed=9)
    base = greedy_spanner(g, 3)
    ft = fault_tolerant_spanner(g, 3, 2, seed=10)
    # The union over iterations is statistically at least one survivor
    # spanner; assert only the hard bounds.
    assert 0 < ft.num_edges <= g.num_edges
    assert ft.num_edges >= min(base.num_edges, ft.num_edges)


def test_spanner_stretch_ordering():
    """Greedy 3-spanner distances are within 3x; 5-spanner within 5x but
    never better than the 3-spanner's guarantee class on the same seed."""
    from repro.graph import connected_gnp_graph
    from repro.spanners import greedy_spanner, max_edge_stretch

    g = connected_gnp_graph(25, 0.4, seed=11)
    s3 = max_edge_stretch(greedy_spanner(g, 3), g)
    s5 = max_edge_stretch(greedy_spanner(g, 5), g)
    assert s3 <= 3 + 1e-9
    assert s5 <= 5 + 1e-9
