"""Row-generation driver with separation oracles."""

from __future__ import annotations

import pytest

from repro.errors import SolverLimit
from repro.lp import (
    Constraint,
    GREATER_EQUAL,
    LESS_EQUAL,
    LinearProgram,
    solve_with_cuts,
)


def _box_lp():
    """min x + y with x, y in [0, 10] (cuts will push the optimum up)."""
    lp = LinearProgram()
    lp.add_variable("x", 0.0, 10.0, objective=1.0)
    lp.add_variable("y", 0.0, 10.0, objective=1.0)
    return lp


def test_no_oracles_solves_base_model():
    lp = _box_lp()
    result = solve_with_cuts(lp, [])
    assert result.rounds == 1
    assert result.cuts_added == 0
    assert result.solution.objective == pytest.approx(0.0)


def test_single_cut_family_converges():
    lp = _box_lp()

    def oracle(solution):
        if solution.value("x") + solution.value("y") < 3.0 - 1e-9:
            return [Constraint({"x": 1.0, "y": 1.0}, GREATER_EQUAL, 3.0)]
        return []

    result = solve_with_cuts(lp, [oracle])
    assert result.solution.objective == pytest.approx(3.0)
    assert result.cuts_added == 1
    assert result.rounds == 2


def test_objective_trace_is_nondecreasing():
    """Each added cut can only push a minimization optimum up."""
    lp = _box_lp()
    thresholds = iter([1.0, 2.0, 5.0])

    state = {"next": next(thresholds)}

    def oracle(solution):
        target = state["next"]
        if target is None:
            return []
        if solution.value("x") < target - 1e-9:
            return [Constraint({"x": 1.0}, GREATER_EQUAL, target)]
        state["next"] = next(thresholds, None)
        if state["next"] is None:
            return []
        return [Constraint({"x": 1.0}, GREATER_EQUAL, state["next"])]

    result = solve_with_cuts(lp, [oracle])
    trace = result.objective_trace
    assert all(a <= b + 1e-9 for a, b in zip(trace, trace[1:]))
    assert result.solution.value("x") == pytest.approx(5.0)


def test_multiple_oracles_all_consulted():
    lp = _box_lp()

    def oracle_x(solution):
        if solution.value("x") < 1.0 - 1e-9:
            return [Constraint({"x": 1.0}, GREATER_EQUAL, 1.0)]
        return []

    def oracle_y(solution):
        if solution.value("y") < 2.0 - 1e-9:
            return [Constraint({"y": 1.0}, GREATER_EQUAL, 2.0)]
        return []

    result = solve_with_cuts(lp, [oracle_x, oracle_y])
    assert result.solution.objective == pytest.approx(3.0)
    assert result.cuts_added == 2


def test_round_limit_raises():
    lp = _box_lp()
    counter = {"i": 0}

    def endless_oracle(solution):
        counter["i"] += 1
        return [
            Constraint({"x": 1.0}, GREATER_EQUAL, min(counter["i"] * 0.1, 9.0))
        ]

    with pytest.raises(SolverLimit):
        solve_with_cuts(lp, [endless_oracle], max_rounds=3)
