"""Fault-tolerance verifiers, including the Lemma 3.1 equivalence."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    count_fault_sets,
    count_two_paths,
    edge_satisfied,
    fault_sets,
    first_violating_fault_set,
    is_fault_tolerant_spanner,
    is_ft_2spanner,
    sampled_fault_check,
    unsatisfied_edges,
)
from repro.errors import FaultToleranceError
from repro.graph import (
    DiGraph,
    complete_digraph,
    complete_graph,
    cycle_graph,
    gnp_random_digraph,
    knapsack_gap_gadget,
    path_graph,
    star_graph,
)


class TestFaultSetEnumeration:
    def test_counts(self):
        assert count_fault_sets(5, 0) == 1
        assert count_fault_sets(5, 1) == 6
        assert count_fault_sets(5, 2) == 16
        assert count_fault_sets(3, 10) == 8  # capped at n

    def test_enumeration_matches_count(self):
        sets = list(fault_sets(list(range(5)), 2))
        assert len(sets) == count_fault_sets(5, 2)
        assert () in sets
        assert all(len(s) <= 2 for s in sets)


class TestExhaustiveVerifier:
    def test_whole_graph_is_ft(self):
        g = complete_graph(5)
        assert is_fault_tolerant_spanner(g, g, k=1, r=2)

    def test_cycle_is_not_1_fault_tolerant(self):
        # Removing one vertex of C_n leaves a path; a proper subgraph that
        # dropped an edge of the cycle can't span it.
        g = cycle_graph(5)
        h = g.copy()
        h.remove_edge(0, 1)
        assert not is_fault_tolerant_spanner(h, g, k=10, r=1)

    def test_negative_r_rejected(self):
        g = path_graph(3)
        with pytest.raises(FaultToleranceError):
            is_fault_tolerant_spanner(g, g, 1, -1)

    def test_witness_is_reported(self):
        g = complete_graph(4)
        h = g.edge_subgraph([(0, 1), (1, 2), (2, 3)])
        witness = first_violating_fault_set(h, g, k=2, r=1)
        assert witness is not None
        assert len(witness) <= 1

    def test_star_requires_hub(self):
        # In a star, faulting the hub disconnects everything, but then the
        # survivor host graph has no edges either, so any subgraph is fine.
        g = star_graph(4)
        assert is_fault_tolerant_spanner(g, g, k=1, r=1)

    def test_specific_fault_sets_only(self):
        g = complete_graph(4)
        h = g.edge_subgraph([(0, 1), (1, 2), (2, 3), (3, 0)])
        # h (a 4-cycle) is a 3-spanner of K4 with no faults...
        assert is_fault_tolerant_spanner(h, g, 3, 0)
        # ...but faulting a cycle vertex leaves a path with stretch 3 > 2? Use
        # explicit small fault sets to exercise the parameter.
        assert is_fault_tolerant_spanner(h, g, 3, 1, scenarios=[()])

    def test_sampled_check_consistent(self):
        g = complete_graph(6)
        assert sampled_fault_check(g, g, k=1, r=2, trials=20, seed=0)

    def test_sampled_check_finds_violation(self):
        g = cycle_graph(6)
        h = g.copy()
        h.remove_edge(0, 1)
        # With enough trials the empty/one-vertex fault sets expose it.
        assert not sampled_fault_check(h, g, k=20, r=1, trials=200, seed=1)


class TestLemma31:
    def test_count_two_paths_directed(self):
        g = DiGraph()
        g.add_edge("u", "z1"); g.add_edge("z1", "v")
        g.add_edge("u", "z2"); g.add_edge("z2", "v")
        g.add_edge("u", "v")
        assert count_two_paths(g, "u", "v") == 2

    def test_count_two_paths_undirected(self):
        g = complete_graph(4)
        assert count_two_paths(g, 0, 1) == 2

    def test_edge_satisfied_by_presence(self):
        g = complete_digraph(3)
        assert edge_satisfied(g, 0, 1, r=5)

    def test_edge_satisfied_by_paths(self):
        g = complete_digraph(5)
        h = g.copy()
        h.remove_edge(0, 1)
        # 3 midpoints remain: satisfied for r <= 2, not for r = 3.
        assert edge_satisfied(h, 0, 1, r=2)
        assert not edge_satisfied(h, 0, 1, r=3)

    def test_unsatisfied_edges_lists_violations(self):
        g = knapsack_gap_gadget(2, 10.0)
        h = g.copy()
        h.remove_edge("u", "v")  # only 2 two-paths < r+1 = 3
        bad = unsatisfied_edges(h, g, r=2)
        assert ("u", "v") in bad

    def test_is_ft_2spanner_rejects_negative_r(self):
        g = complete_digraph(3)
        with pytest.raises(FaultToleranceError):
            is_ft_2spanner(g, g, -2)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2000), r=st.integers(0, 2))
    def test_lemma31_equals_exhaustive_on_random_digraphs(self, seed, r):
        """Lemma 3.1 (polynomial check) ≡ the definition (exhaustive check).

        This is the paper's structural lemma verified as an executable
        property: for random subgraphs H of random digraphs G, the midpoint
        count criterion agrees with enumerating every fault set.
        """
        import random

        g = gnp_random_digraph(7, 0.6, seed=seed)
        rng = random.Random(seed + 1)
        keep = [(u, v) for u, v, _w in g.edges() if rng.random() < 0.75]
        h = g.edge_subgraph(keep)
        lemma = is_ft_2spanner(h, g, r)
        exhaustive = is_fault_tolerant_spanner(h, g, k=2, r=r)
        assert lemma == exhaustive
