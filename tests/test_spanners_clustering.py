"""Thorup–Zwick and Baswana–Sen spanners: stretch validity and size."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidStretch
from repro.graph import (
    Graph,
    complete_graph,
    connected_gnp_graph,
    gnp_random_graph,
    is_subgraph,
    path_graph,
)
from repro.spanners import (
    baswana_sen_spanner,
    baswana_sen_size_bound,
    is_spanner,
    thorup_zwick_size_bound,
    thorup_zwick_spanner,
)


class TestThorupZwick:
    def test_rejects_bad_t(self):
        with pytest.raises(InvalidStretch):
            thorup_zwick_spanner(path_graph(3), 0)

    def test_t1_is_whole_graph_spanner(self):
        # t=1 gives stretch 1, so distances must be preserved exactly.
        g = complete_graph(6)
        h = thorup_zwick_spanner(g, 1, seed=0)
        assert is_spanner(h, g, 1)

    def test_t2_three_spanner(self, random_connected):
        h = thorup_zwick_spanner(random_connected, 2, seed=1)
        assert is_subgraph(h, random_connected)
        assert is_spanner(h, random_connected, 3)

    def test_empty_graph(self):
        h = thorup_zwick_spanner(Graph(), 2, seed=0)
        assert h.num_vertices == 0

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 3000), t=st.sampled_from([2, 3]))
    def test_property_stretch_2t_minus_1(self, seed, t):
        g = gnp_random_graph(18, 0.4, seed=seed, weight_range=(0.5, 2.0))
        h = thorup_zwick_spanner(g, t, seed=seed + 1)
        assert is_spanner(h, g, 2 * t - 1)

    def test_size_reasonable_on_complete(self):
        n = 36
        g = complete_graph(n)
        h = thorup_zwick_spanner(g, 2, seed=3)
        # Expected size O(t n^{1+1/t}); allow generous constant.
        assert h.num_edges <= 6 * thorup_zwick_size_bound(n, 2)


class TestBaswanaSen:
    def test_rejects_directed_and_bad_k(self, small_digraph):
        with pytest.raises(InvalidStretch):
            baswana_sen_spanner(small_digraph.to_undirected(), 0)
        with pytest.raises(InvalidStretch):
            baswana_sen_spanner(small_digraph, 2)

    def test_k1_copies_graph(self):
        g = complete_graph(5)
        h = baswana_sen_spanner(g, 1, seed=0)
        assert h.num_edges == g.num_edges

    def test_k2_three_spanner(self, random_connected):
        h = baswana_sen_spanner(random_connected, 2, seed=5)
        assert is_subgraph(h, random_connected)
        assert is_spanner(h, random_connected, 3)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 5000), k=st.sampled_from([2, 3, 4]))
    def test_property_stretch_2k_minus_1(self, seed, k):
        g = gnp_random_graph(20, 0.4, seed=seed, weight_range=(0.5, 3.0))
        h = baswana_sen_spanner(g, k, seed=seed + 7)
        assert is_spanner(h, g, 2 * k - 1)

    def test_size_on_complete_graph(self):
        n = 49
        g = complete_graph(n)
        h = baswana_sen_spanner(g, 2, seed=9)
        assert h.num_edges <= 6 * baswana_sen_size_bound(n, 2)

    def test_empty_graph(self):
        h = baswana_sen_spanner(Graph(), 3, seed=1)
        assert h.num_vertices == 0
