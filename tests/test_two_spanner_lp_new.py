"""LP (3)/(4): model structure, separation oracle, and known optima."""

from __future__ import annotations

import math

import pytest

from repro.errors import LPError
from repro.graph import (
    complete_digraph,
    gnp_random_digraph,
    knapsack_gap_gadget,
)
from repro.two_spanner import (
    build_ft2_lp,
    f_var,
    gadget_optimum,
    knapsack_cover_oracle,
    solve_ft2_lp,
    x_var,
)


class TestModelStructure:
    def test_variable_counts(self):
        g = complete_digraph(4)  # 12 arcs, each with 2 midpoints
        model = build_ft2_lp(g, r=1)
        m = g.num_edges
        paths = sum(len(v) for v in model.two_paths.values())
        assert model.lp.num_variables == m + paths
        # capacity rows: 2 per path; cover rows: 1 per edge
        assert model.lp.num_constraints == 2 * paths + m

    def test_rejects_negative_r(self):
        with pytest.raises(LPError):
            build_ft2_lp(complete_digraph(3), -1)

    def test_x_values_extraction(self):
        g = complete_digraph(3)
        result = solve_ft2_lp(g, 0)
        xs = result.x_values()
        assert set(xs) == {(u, v) for u, v, _w in g.edges()}
        assert all(0.0 - 1e-9 <= x <= 1.0 + 1e-9 for x in xs.values())


class TestKnownOptima:
    def test_r0_complete_digraph(self):
        # With r=0 (plain 2-spanner LP), K_n admits x_e = 1/(n-2) everywhere.
        n = 5
        result = solve_ft2_lp(complete_digraph(n), 0)
        assert result.objective <= n * (n - 1) / (n - 2) + 1e-6

    def test_gadget_with_kc_reaches_optimum(self):
        for r in (1, 2, 3):
            result = solve_ft2_lp(knapsack_gap_gadget(r, 50.0), r)
            assert result.objective == pytest.approx(gadget_optimum(r, 50.0))
            assert result.cuts_added >= 1  # KC cuts were needed

    def test_gadget_without_kc_undershoots(self):
        r = 3
        with_kc = solve_ft2_lp(knapsack_gap_gadget(r, 50.0), r)
        without = solve_ft2_lp(
            knapsack_gap_gadget(r, 50.0), r, with_knapsack_cover=False
        )
        assert without.objective < with_kc.objective
        # the plain relaxation sets x_uv ~ 1/(r+1)
        assert without.objective == pytest.approx(50.0 / (r + 1) + 2 * r, rel=1e-6)

    def test_edge_with_no_midpoints_is_forced(self):
        g = knapsack_gap_gadget(2, 10.0)
        result = solve_ft2_lp(g, 2)
        xs = result.x_values()
        for i in range(2):
            assert xs[("u", ("w", i))] == pytest.approx(1.0)
            assert xs[(("w", i), "v")] == pytest.approx(1.0)

    def test_backends_agree(self):
        g = gnp_random_digraph(7, 0.6, seed=1)
        a = solve_ft2_lp(g, 1, backend="scipy")
        b = solve_ft2_lp(g, 1, backend="simplex")
        assert a.objective == pytest.approx(b.objective, rel=1e-5)


class TestSeparationOracle:
    def test_oracle_accepts_feasible_solution(self):
        g = knapsack_gap_gadget(2, 10.0)
        model = build_ft2_lp(g, 2)
        oracle = knapsack_cover_oracle(model)
        # integral solution: everything bought, flows zero
        values = {x_var(u, v): 1.0 for (u, v) in model.two_paths}

        class FakeSolution:
            def value(self, name):
                return values.get(name, 0.0)

        assert oracle(FakeSolution()) == []

    def test_oracle_finds_violation(self):
        r = 2
        g = knapsack_gap_gadget(r, 10.0)
        model = build_ft2_lp(g, r)
        # x_uv = 1/(r+1), full flow on all r cheap paths: the W = all-paths
        # KC constraint demands x_uv = 1.
        values = {x_var(u, v): 1.0 for (u, v) in model.two_paths}
        values[x_var("u", "v")] = 1.0 / (r + 1)
        for i in range(r):
            values[f_var("u", ("w", i), "v")] = 1.0

        class FakeSolution:
            def value(self, name):
                return values.get(name, 0.0)

        cuts = knapsack_cover_oracle(model)(FakeSolution())
        assert len(cuts) == 1
        cut = cuts[0]
        assert cut.rhs == pytest.approx(1.0)  # r + 1 - |W| with |W| = r
        assert cut.coeffs[x_var("u", "v")] == pytest.approx(1.0)

    def test_monotone_lp_value_r(self):
        g = complete_digraph(6)
        values = [solve_ft2_lp(g, r).objective for r in (0, 1, 2)]
        assert values[0] <= values[1] <= values[2]
