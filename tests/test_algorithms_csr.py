"""Dict-vs-CSR equivalence for the clustering/decomposition algorithm stack.

PR 1 pinned the greedy spanner and the Theorem 2.1 conversion to their
dict references (`tests/test_graph_csr.py`); this file does the same for
the algorithms routed onto the kernels afterwards: Thorup–Zwick (spanner
and distance oracle), Baswana–Sen, the CLPR09 baseline, the Lemma 3.7
padded-decomposition sampler, and the vectorized LP (3) row assembly.

The contract is strict: for a fixed seed the fast path must produce the
*same* object — identical spanner edge sets, identical witness/bunch
dictionaries, identical cluster assignments, identical LP rows — not
merely an equally valid one. A subprocess test also pins the constructions
against hash randomization: seeded runs must not depend on ``set``
iteration order (the PR 2 determinism fix).
"""

from __future__ import annotations

import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import clpr_fault_tolerant_spanner
from repro.distributed import sample_padded_decomposition
from repro.graph import (
    Graph,
    connected_gnp_graph,
    csr_snapshot,
    gnp_random_graph,
    grid_graph,
)
from repro.graph.csr import METHODS, MIN_DISPATCH_VERTICES, resolve_method
from repro.spanners import (
    baswana_sen_spanner,
    build_distance_oracle,
    is_spanner,
    thorup_zwick_spanner,
)
from repro.two_spanner.lp_new import _build_ft2_lp_reference, build_ft2_lp


def edge_set(graph):
    return sorted(map(tuple, graph.edges()))


def weighted(seed, n=55, p=0.18):
    return gnp_random_graph(n, p, seed=seed, weight_range=(0.5, 3.0))


def unit(seed, n=50, p=0.15):
    return connected_gnp_graph(n, p, seed=seed)


class TestResolveMethod:
    def test_dispatch_rule(self):
        assert resolve_method("auto", MIN_DISPATCH_VERTICES) == "csr"
        assert resolve_method("auto", MIN_DISPATCH_VERTICES - 1) == "dict"
        assert resolve_method("csr", 1) == "csr"
        assert resolve_method("dict", 10**6) == "dict"

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            resolve_method("fast", 100)
        assert METHODS == ("auto", "csr", "dict", "compiled")


class TestThorupZwickEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 5000), t=st.sampled_from([1, 2, 3]))
    def test_weighted(self, seed, t):
        g = weighted(seed)
        a = thorup_zwick_spanner(g, t, seed=seed + 1, method="csr")
        b = thorup_zwick_spanner(g, t, seed=seed + 1, method="dict")
        assert edge_set(a) == edge_set(b)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 5000), t=st.sampled_from([2, 3]))
    def test_unit_weights_tie_heavy(self, seed, t):
        # Unit weights exercise the zero-weight plateaus of the primed
        # search, i.e. the canonical plateau sweep.
        g = unit(seed)
        a = thorup_zwick_spanner(g, t, seed=seed + 1, method="csr")
        b = thorup_zwick_spanner(g, t, seed=seed + 1, method="dict")
        assert edge_set(a) == edge_set(b)
        assert is_spanner(a, g, 2 * t - 1)

    def test_disconnected_host(self):
        g = unit(1, n=30, p=0.2)
        h = unit(2, n=20, p=0.2)
        for v in h.vertices():
            g.add_vertex(("b", v))
        for u, v, w in h.edges():
            g.add_edge(("b", u), ("b", v), w)
        for t in (2, 3):
            a = thorup_zwick_spanner(g, t, seed=3, method="csr")
            b = thorup_zwick_spanner(g, t, seed=3, method="dict")
            assert sorted(map(repr, a.edges())) == sorted(map(repr, b.edges()))


class TestBaswanaSenEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 5000), k=st.sampled_from([2, 3, 4]))
    def test_weighted(self, seed, k):
        g = weighted(seed)
        a = baswana_sen_spanner(g, k, seed=seed + 7, method="csr")
        b = baswana_sen_spanner(g, k, seed=seed + 7, method="dict")
        assert edge_set(a) == edge_set(b)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 5000), k=st.sampled_from([2, 3]))
    def test_unit_weights(self, seed, k):
        g = unit(seed)
        a = baswana_sen_spanner(g, k, seed=seed + 7, method="csr")
        b = baswana_sen_spanner(g, k, seed=seed + 7, method="dict")
        assert edge_set(a) == edge_set(b)
        assert is_spanner(a, g, 2 * k - 1)

    def test_sample_probability_override(self):
        g = weighted(3)
        for sp in (0.05, 0.5):
            a = baswana_sen_spanner(g, 3, seed=11, sample_probability=sp, method="csr")
            b = baswana_sen_spanner(g, 3, seed=11, sample_probability=sp, method="dict")
            assert edge_set(a) == edge_set(b)

    def test_sparse_bucket_fallback_matches_dense(self, monkeypatch):
        # Force the O(m) compact-key grouping that replaces the dense
        # (vertex × cluster) buffer past the memory cap.
        import repro.spanners.baswana_sen as bs_mod

        g = weighted(4)
        dense = baswana_sen_spanner(g, 3, seed=11, method="csr")
        monkeypatch.setattr(bs_mod, "_DENSE_BUCKET_CAP", 1)
        sparse = baswana_sen_spanner(g, 3, seed=11, method="csr")
        assert edge_set(dense) == edge_set(sparse)


class TestDegenerateHosts:
    """Isolated trailing vertices and edgeless graphs (reduceat edge cases)."""

    def _with_trailing_isolated(self, seed):
        g = weighted(seed, n=55, p=0.18)
        g.add_vertex(("isolated", 1))
        g.add_vertex(("isolated", 2))
        return g

    def test_all_algorithms_survive_trailing_isolated_vertices(self):
        g = self._with_trailing_isolated(0)
        for method in ("csr", "dict"):
            tz = thorup_zwick_spanner(g, 2, seed=1, method=method)
            bs = baswana_sen_spanner(g, 2, seed=2, method=method)
            oracle = build_distance_oracle(g, 2, seed=3, method=method)
            assert tz.num_vertices == g.num_vertices
            assert bs.num_vertices == g.num_vertices
            assert oracle.bunch_size(("isolated", 1)) >= 1
        a = thorup_zwick_spanner(g, 2, seed=1, method="csr")
        b = thorup_zwick_spanner(g, 2, seed=1, method="dict")
        assert sorted(map(repr, a.edges())) == sorted(map(repr, b.edges()))
        a = baswana_sen_spanner(g, 2, seed=2, method="csr")
        b = baswana_sen_spanner(g, 2, seed=2, method="dict")
        assert sorted(map(repr, a.edges())) == sorted(map(repr, b.edges()))

    def test_edgeless_graph(self):
        g = Graph()
        g.add_vertices(range(60))
        for method in ("csr", "dict"):
            assert thorup_zwick_spanner(g, 2, seed=1, method=method).num_edges == 0
            assert baswana_sen_spanner(g, 2, seed=2, method=method).num_edges == 0
            assert sample_padded_decomposition(g, seed=3, method=method)


class TestDistanceOracleEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 5000), t=st.sampled_from([1, 2, 3]))
    def test_bunches_and_witnesses_identical(self, seed, t):
        g = weighted(seed)
        a = build_distance_oracle(g, t, seed=seed + 1, method="csr")
        b = build_distance_oracle(g, t, seed=seed + 1, method="dict")
        assert a.witnesses == b.witnesses
        assert a.bunches == b.bunches

    def test_unit_weights(self):
        g = unit(5)
        for t in (2, 3):
            a = build_distance_oracle(g, t, seed=9, method="csr")
            b = build_distance_oracle(g, t, seed=9, method="dict")
            assert a.witnesses == b.witnesses
            assert a.bunches == b.bunches


class TestCLPREquivalence:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 5000), shared=st.booleans())
    def test_r1_union_identical(self, seed, shared):
        g = unit(seed, n=40, p=0.2)
        a = clpr_fault_tolerant_spanner(
            g, 2, 1, seed=seed + 1, shared_randomness=shared, method="csr"
        )
        b = clpr_fault_tolerant_spanner(
            g, 2, 1, seed=seed + 1, shared_randomness=shared, method="dict"
        )
        assert edge_set(a.spanner) == edge_set(b.spanner)
        assert a.fault_sets_processed == b.fault_sets_processed

    def test_weighted_t3(self):
        g = weighted(2, n=48, p=0.25)
        a = clpr_fault_tolerant_spanner(g, 3, 1, seed=4, method="csr")
        b = clpr_fault_tolerant_spanner(g, 3, 1, seed=4, method="dict")
        assert edge_set(a.spanner) == edge_set(b.spanner)


class TestDecompositionEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_assignment_identical(self, seed):
        g = unit(seed, n=60, p=0.08)
        a = sample_padded_decomposition(g, seed=seed + 1, method="csr")
        b = sample_padded_decomposition(g, seed=seed + 1, method="dict")
        assert a.assignment == b.assignment
        assert a.radii == b.radii

    def test_grid(self):
        g = grid_graph(8, 8)
        a = sample_padded_decomposition(g, seed=3, method="csr")
        b = sample_padded_decomposition(g, seed=3, method="dict")
        assert a.assignment == b.assignment

    def test_bfs_balls_kernel_matches_bfs_idx(self):
        from repro.graph.csr import BFSBalls

        g = unit(7, n=60, p=0.08)
        snap = csr_snapshot(g)
        balls = BFSBalls(snap)
        for source in (0, 3, 17):
            for radius in (0, 1, 2, 4):
                members = sorted(balls.ball(source, radius))
                dist = snap.bfs_idx(source, cutoff=radius)
                expect = sorted(
                    v for v, d in enumerate(dist) if 0 <= d <= radius
                )
                assert members == expect


class TestBarrierDijkstraKernel:
    def test_matches_masked_restriction(self):
        g = weighted(11, n=60, p=0.2)
        snap = csr_snapshot(g)
        full, _ = snap.multi_source_dijkstra_idx([0, 5, 9])
        dist, parent, parent_eid, order = snap.barrier_dijkstra_idx(1, full)
        for v in order:
            assert dist[v] < (full[v] if v != 1 else float("inf")) or v == 1
            if v != 1:
                p_ = parent[v]
                assert p_ in order
                assert dist[p_] + snap.edge_w[parent_eid[v]] == pytest.approx(
                    dist[v]
                )


class TestLPAssemblyEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 5000), r=st.sampled_from([0, 1, 2]))
    def test_model_identical_to_reference(self, seed, r):
        from repro.graph import gnp_random_digraph

        for g in (
            gnp_random_graph(18, 0.3, seed=seed, weight_range=(0.5, 3.0)),
            gnp_random_digraph(14, 0.3, seed=seed),
        ):
            a = build_ft2_lp(g, r)
            b = _build_ft2_lp_reference(g, r)
            assert a.lp.variable_names() == b.lp.variable_names()
            for name in a.lp.variable_names():
                va, vb = a.lp.variable(name), b.lp.variable(name)
                assert (va.lower, va.upper, va.objective) == (
                    vb.lower,
                    vb.upper,
                    vb.objective,
                )
            assert [
                (c.coeffs, c.sense, c.rhs, c.name) for c in a.lp.constraints
            ] == [(c.coeffs, c.sense, c.rhs, c.name) for c in b.lp.constraints]
            assert a.two_paths == b.two_paths


_HASHSEED_SCRIPT = """
import json, sys
from repro.graph import Graph
from repro.spanners import baswana_sen_spanner, build_distance_oracle, thorup_zwick_spanner

# String vertices: set iteration order depends on PYTHONHASHSEED unless
# the implementation orders every draw and tie-break canonically.
g = Graph()
edges = json.loads(sys.argv[1])
for u, v, w in edges:
    g.add_edge(u, v, w)
tz = thorup_zwick_spanner(g, 2, seed=5, method=sys.argv[2])
bs = baswana_sen_spanner(g, 3, seed=6, method=sys.argv[2])
oracle = build_distance_oracle(g, 2, seed=7, method=sys.argv[2])
print(json.dumps({
    "tz": sorted(map(list, tz.edges())),
    "bs": sorted(map(list, bs.edges())),
    "oracle": sorted((repr(v), sorted(map(repr, b))) for v, b in oracle.bunches.items()),
}))
"""


class TestHashSeedDeterminism:
    """Seeded runs must be identical across hash-randomized processes.

    The seed implementation iterated ``Set[Vertex]`` when seeding
    multi-source heaps and sampling hierarchy levels, so string-labeled
    graphs produced different spanners under different ``PYTHONHASHSEED``
    values despite a fixed seed. Every draw and tie-break is now keyed by
    host vertex order.
    """

    @pytest.mark.parametrize("method", ["csr", "dict"])
    def test_reproducible_across_hash_seeds(self, method):
        import json
        import os

        base = connected_gnp_graph(40, 0.15, seed=12)
        edges = [[f"v{u}", f"v{v}", w] for u, v, w in base.edges()]
        payload = json.dumps(edges)
        outputs = set()
        for hashseed in ("0", "1", "42"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = os.pathsep.join(
                filter(None, ["src", os.environ.get("PYTHONPATH")])
            )
            result = subprocess.run(
                [sys.executable, "-c", _HASHSEED_SCRIPT, payload, method],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.add(result.stdout)
        assert len(outputs) == 1
