"""Unit tests for the Graph / DiGraph data structures."""

from __future__ import annotations

import pytest

from repro.errors import (
    EdgeNotFound,
    GraphError,
    NegativeWeightError,
    VertexNotFound,
)
from repro.graph import DiGraph, Graph


class TestGraphVertices:
    def test_add_vertex(self):
        g = Graph()
        g.add_vertex(1)
        assert g.has_vertex(1)
        assert g.num_vertices == 1

    def test_add_vertex_idempotent(self):
        g = Graph()
        g.add_vertex("a")
        g.add_vertex("a")
        assert g.num_vertices == 1

    def test_add_vertices_bulk(self):
        g = Graph()
        g.add_vertices(range(5))
        assert g.num_vertices == 5
        assert g.vertex_set() == set(range(5))

    def test_contains_and_len(self):
        g = Graph()
        g.add_vertices([1, 2])
        assert 1 in g
        assert 3 not in g
        assert len(g) == 2

    def test_vertices_iteration_order_is_insertion(self):
        g = Graph()
        for v in (3, 1, 2):
            g.add_vertex(v)
        assert list(g.vertices()) == [3, 1, 2]


class TestGraphEdges:
    def test_add_edge_adds_endpoints(self):
        g = Graph()
        g.add_edge(1, 2, 3.0)
        assert g.has_vertex(1) and g.has_vertex(2)
        assert g.has_edge(1, 2) and g.has_edge(2, 1)
        assert g.weight(1, 2) == 3.0
        assert g.weight(2, 1) == 3.0
        assert g.num_edges == 1

    def test_default_weight_is_one(self):
        g = Graph()
        g.add_edge("x", "y")
        assert g.weight("x", "y") == 1.0

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_edge(1, 1)

    def test_negative_weight_rejected(self):
        g = Graph()
        with pytest.raises(NegativeWeightError):
            g.add_edge(1, 2, -0.5)

    def test_reweighting_does_not_double_count(self):
        g = Graph()
        g.add_edge(1, 2, 1.0)
        g.add_edge(1, 2, 7.0)
        assert g.num_edges == 1
        assert g.weight(1, 2) == 7.0

    def test_remove_edge(self):
        g = Graph()
        g.add_edge(1, 2)
        g.remove_edge(2, 1)
        assert not g.has_edge(1, 2)
        assert g.num_edges == 0

    def test_remove_missing_edge_raises(self):
        g = Graph()
        g.add_vertices([1, 2])
        with pytest.raises(EdgeNotFound):
            g.remove_edge(1, 2)

    def test_remove_vertex_removes_incident_edges(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.remove_vertex(2)
        assert g.num_edges == 0
        assert not g.has_vertex(2)
        assert g.has_vertex(1) and g.has_vertex(3)

    def test_weight_of_missing_edge_raises(self):
        g = Graph()
        g.add_vertices([1, 2])
        with pytest.raises(EdgeNotFound):
            g.weight(1, 2)

    def test_weight_of_missing_vertex_raises(self):
        g = Graph()
        with pytest.raises(VertexNotFound):
            g.weight(1, 2)

    def test_edges_yields_each_once(self):
        g = Graph()
        g.add_edge(1, 2, 1.0)
        g.add_edge(2, 3, 2.0)
        edges = sorted((min(u, v), max(u, v), w) for u, v, w in g.edges())
        assert edges == [(1, 2, 1.0), (2, 3, 2.0)]

    def test_total_weight(self):
        g = Graph()
        g.add_edge(1, 2, 1.5)
        g.add_edge(2, 3, 2.5)
        assert g.total_weight() == 4.0

    def test_degree_and_max_degree(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(1, 3)
        assert g.degree(1) == 2
        assert g.degree(2) == 1
        assert g.max_degree() == 2

    def test_neighbors(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(1, 3)
        assert set(g.neighbors(1)) == {2, 3}
        assert dict(g.neighbor_items(1)) == {2: 1.0, 3: 1.0}


class TestGraphDerivedOps:
    def test_copy_is_independent(self):
        g = Graph()
        g.add_edge(1, 2)
        h = g.copy()
        h.add_edge(2, 3)
        h.remove_edge(1, 2)
        assert g.has_edge(1, 2)
        assert not g.has_vertex(3)

    def test_induced_subgraph(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(1, 3)
        sub = g.induced_subgraph([1, 2])
        assert sub.num_vertices == 2
        assert sub.has_edge(1, 2)
        assert not sub.has_vertex(3)

    def test_induced_subgraph_ignores_foreign_vertices(self):
        g = Graph()
        g.add_edge(1, 2)
        sub = g.induced_subgraph([1, 2, 99])
        assert sub.num_vertices == 2

    def test_without_vertices(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        survivor = g.without_vertices({2})
        assert survivor.vertex_set() == {1, 3}
        assert survivor.num_edges == 0
        # original untouched
        assert g.num_edges == 2

    def test_edge_subgraph_keeps_all_vertices(self):
        g = Graph()
        g.add_edge(1, 2, 2.0)
        g.add_edge(2, 3, 3.0)
        sub = g.edge_subgraph([(1, 2)])
        assert sub.num_vertices == 3
        assert sub.num_edges == 1
        assert sub.weight(1, 2) == 2.0

    def test_edge_subgraph_missing_edge_raises(self):
        g = Graph()
        g.add_edge(1, 2)
        with pytest.raises(EdgeNotFound):
            g.edge_subgraph([(1, 3)])

    def test_to_directed_doubles_edges(self):
        g = Graph()
        g.add_edge(1, 2, 5.0)
        d = g.to_directed()
        assert d.directed
        assert d.has_edge(1, 2) and d.has_edge(2, 1)
        assert d.num_edges == 2


class TestDiGraph:
    def test_add_edge_is_directed(self):
        g = DiGraph()
        g.add_edge("a", "b", 2.0)
        assert g.has_edge("a", "b")
        assert not g.has_edge("b", "a")
        assert g.num_edges == 1

    def test_successors_predecessors(self):
        g = DiGraph()
        g.add_edge(1, 2)
        g.add_edge(3, 2)
        assert set(g.successors(1)) == {2}
        assert set(g.predecessors(2)) == {1, 3}
        assert g.out_degree(1) == 1
        assert g.in_degree(2) == 2

    def test_max_degree_is_max_in_out(self):
        g = DiGraph()
        g.add_edge(1, 2)
        g.add_edge(3, 2)
        g.add_edge(4, 2)
        assert g.max_degree() == 3

    def test_remove_vertex_cleans_pred(self):
        g = DiGraph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.remove_vertex(2)
        assert g.num_edges == 0
        assert set(g.vertices()) == {1, 3}

    def test_remove_edge(self):
        g = DiGraph()
        g.add_edge(1, 2)
        g.remove_edge(1, 2)
        assert g.num_edges == 0
        with pytest.raises(EdgeNotFound):
            g.remove_edge(1, 2)

    def test_reverse(self):
        g = DiGraph()
        g.add_edge(1, 2, 3.0)
        rev = g.reverse()
        assert rev.has_edge(2, 1)
        assert not rev.has_edge(1, 2)
        assert rev.weight(2, 1) == 3.0

    def test_to_undirected_min_weight(self):
        g = DiGraph()
        g.add_edge(1, 2, 3.0)
        g.add_edge(2, 1, 1.0)
        u = g.to_undirected()
        assert u.num_edges == 1
        assert u.weight(1, 2) == 1.0

    def test_copy_independent(self):
        g = DiGraph()
        g.add_edge(1, 2)
        h = g.copy()
        h.remove_edge(1, 2)
        assert g.has_edge(1, 2)

    def test_self_loop_rejected(self):
        g = DiGraph()
        with pytest.raises(GraphError):
            g.add_edge("a", "a")

    def test_without_vertices_directed(self):
        g = DiGraph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(1, 3)
        survivor = g.without_vertices([2])
        assert survivor.has_edge(1, 3)
        assert survivor.num_edges == 1
