"""Serialization round trips: JSON, edge lists, DOT export."""

from __future__ import annotations

import io
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph import (
    DiGraph,
    Graph,
    dump_edge_list,
    dump_json,
    gnp_random_digraph,
    gnp_random_graph,
    graph_from_dict,
    graph_to_dict,
    grid_graph,
    load_edge_list,
    load_json,
    to_dot,
)


def _same_graph(a, b) -> bool:
    if a.directed != b.directed or a.vertex_set() != b.vertex_set():
        return False

    def canon(graph):
        out = []
        for u, v, w in graph.edges():
            if graph.directed:
                out.append((repr(u), repr(v), w))
            else:
                lo, hi = sorted((repr(u), repr(v)))
                out.append((lo, hi, w))
        return sorted(out)

    return canon(a) == canon(b)


class TestJsonRoundTrip:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000), directed=st.booleans())
    def test_random_graphs(self, seed, directed):
        if directed:
            g = gnp_random_digraph(8, 0.4, seed=seed, cost_range=(0.5, 2.0))
        else:
            g = gnp_random_graph(8, 0.4, seed=seed, weight_range=(0.5, 2.0))
        assert _same_graph(graph_from_dict(graph_to_dict(g)), g)

    def test_tuple_vertices(self):
        g = grid_graph(3, 3)
        back = graph_from_dict(graph_to_dict(g))
        assert _same_graph(back, g)
        assert back.has_vertex((1, 2))

    def test_isolated_vertices_survive(self):
        g = Graph()
        g.add_vertex("lonely")
        assert graph_from_dict(graph_to_dict(g)).has_vertex("lonely")

    def test_file_round_trip(self, tmp_path):
        g = gnp_random_graph(10, 0.3, seed=1)
        path = str(tmp_path / "g.json")
        dump_json(g, path)
        assert _same_graph(load_json(path), g)

    def test_rejects_foreign_documents(self):
        with pytest.raises(GraphError):
            graph_from_dict({"format": "something-else"})
        with pytest.raises(GraphError):
            graph_from_dict({"format": "repro-graph", "version": 99})

    def test_rejects_unserializable_vertex(self):
        g = Graph()
        g.add_vertex(object())
        with pytest.raises(GraphError):
            graph_to_dict(g)


class TestEdgeListRoundTrip:
    def test_undirected(self):
        g = gnp_random_graph(9, 0.4, seed=2)
        buffer = io.StringIO()
        dump_edge_list(g, buffer)
        buffer.seek(0)
        assert _same_graph(load_edge_list(buffer), g)

    def test_directed(self):
        g = gnp_random_digraph(7, 0.4, seed=3)
        buffer = io.StringIO()
        dump_edge_list(g, buffer)
        buffer.seek(0)
        back = load_edge_list(buffer)
        assert back.directed
        assert _same_graph(back, g)

    def test_isolated_vertex_comment(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_vertex(7)
        buffer = io.StringIO()
        dump_edge_list(g, buffer)
        buffer.seek(0)
        assert load_edge_list(buffer).has_vertex(7)

    def test_headerless_loads_undirected(self):
        g = load_edge_list(io.StringIO("1 2 1.0\n2 3\n"))
        assert not g.directed
        assert g.has_edge(1, 2) and g.has_edge(2, 3)
        assert g.weight(2, 3) == 1.0

    def test_directed_comment(self):
        g = load_edge_list(io.StringIO("# directed\n1 2\n"))
        assert g.directed
        assert g.has_edge(1, 2) and not g.has_edge(2, 1)

    def test_comments_and_blanks_tolerated(self):
        text = "\n# a comment\n1 2 2.5\n\n# another\n# vertex 9\n"
        g = load_edge_list(io.StringIO(text))
        assert g.weight(1, 2) == 2.5
        assert g.has_vertex(9)

    def test_whitespace_label_rejected(self):
        g = Graph()
        g.add_edge("a b", "c")
        with pytest.raises(GraphError):
            dump_edge_list(g, io.StringIO())

    def test_malformed_line_names_line_number(self):
        text = "# repro-edge-list graph\n1 2\n1 2 3 4\n"
        with pytest.raises(GraphError, match="line 3"):
            load_edge_list(io.StringIO(text))

    def test_bad_weight_names_line_number(self):
        with pytest.raises(GraphError, match="line 2.*weight"):
            load_edge_list(io.StringIO("1 2\n2 3 heavy\n"))

    def test_directed_after_edges_rejected(self):
        with pytest.raises(GraphError, match="line 2"):
            load_edge_list(io.StringIO("1 2\n# directed\n"))

    def test_bad_header_kind_rejected(self):
        with pytest.raises(GraphError, match="line 1"):
            load_edge_list(io.StringIO("# repro-edge-list multigraph\n1 2\n"))


class TestDot:
    def test_undirected_syntax(self):
        g = Graph()
        g.add_edge("a", "b", 2.0)
        dot = to_dot(g)
        assert dot.startswith("graph repro {")
        assert '"a" -- "b"' in dot

    def test_directed_syntax(self):
        g = DiGraph()
        g.add_edge("a", "b", 2.0)
        dot = to_dot(g)
        assert dot.startswith("digraph repro {")
        assert '"a" -> "b"' in dot

    def test_highlight_marks_spanner_edges(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        spanner = g.edge_subgraph([(1, 2)])
        dot = to_dot(g, highlight=spanner)
        lines = [line for line in dot.splitlines() if "--" in line]
        red = [line for line in lines if "color=red" in line]
        assert len(red) == 1
        assert '"1" -- "2"' in red[0]
