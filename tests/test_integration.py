"""Cross-module integration scenarios — the paper's pipelines end to end."""

from __future__ import annotations

import math

import pytest

from repro import (
    approximate_ft2_spanner,
    dk10_baseline,
    fault_tolerant_spanner,
    is_fault_tolerant_spanner,
    is_ft_2spanner,
)
from repro.analysis import exhaustive_stretch_profile, log_log_slope
from repro.core import clpr_fault_tolerant_spanner
from repro.distributed import distributed_ft2_spanner, distributed_ft_spanner
from repro.graph import (
    connected_gnp_graph,
    gnp_random_digraph,
    knapsack_gap_gadget,
    random_geometric_graph,
)
from repro.spanners import baswana_sen_spanner, greedy_spanner, thorup_zwick_spanner
from repro.two_spanner import exact_minimum_ft2_spanner, solve_ft2_lp


class TestSection2Pipeline:
    def test_conversion_vs_clpr_same_guarantee(self):
        """Both constructions must be valid; the conversion should not be
        catastrophically larger (the paper's win is asymptotic in r)."""
        g = connected_gnp_graph(11, 0.5, seed=1)
        conv = fault_tolerant_spanner(g, 3, 1, seed=2)
        clpr = clpr_fault_tolerant_spanner(g, 2, 1, seed=3)
        assert is_fault_tolerant_spanner(conv.spanner, g, 3, 1)
        assert is_fault_tolerant_spanner(clpr.spanner, g, 3, 1)

    def test_conversion_with_every_base_algorithm(self):
        g = connected_gnp_graph(11, 0.5, seed=4)
        bases = {
            "greedy": lambda h, k: greedy_spanner(h, k),
            "tz": lambda h, k: thorup_zwick_spanner(h, 2, seed=0),
            "bs": lambda h, k: baswana_sen_spanner(h, 2, seed=0),
        }
        for name, base in bases.items():
            result = fault_tolerant_spanner(g, 3, 1, base_algorithm=base, seed=5)
            assert is_fault_tolerant_spanner(result.spanner, g, 3, 1), name

    def test_geometric_workload_weighted(self):
        """General edge lengths via a geometric graph (Section 2 scope)."""
        g = random_geometric_graph(24, 0.45, seed=6)
        result = fault_tolerant_spanner(g, 3, 1, seed=7)
        profile = exhaustive_stretch_profile(result.spanner, g, 1)
        assert profile.max <= 3.0 + 1e-6

    def test_stretch_profile_of_distributed_matches_centralized(self):
        g = connected_gnp_graph(12, 0.5, seed=8)
        central = fault_tolerant_spanner(g, 3, 1, seed=9)
        dist = distributed_ft_spanner(g, 2, r=1, seed=10)
        for spanner in (central.spanner, dist.spanner):
            assert exhaustive_stretch_profile(spanner, g, 1).max <= 3.0 + 1e-6


class TestSection3Pipeline:
    def test_lp_round_verify_chain(self):
        g = gnp_random_digraph(11, 0.5, seed=11)
        for r in (0, 1, 2):
            result = approximate_ft2_spanner(g, r, seed=12 + r)
            assert is_ft_2spanner(result.spanner, g, r)
            assert result.cost >= result.lp_objective - 1e-6

    def test_theorem33_beats_or_matches_dk10_on_gadget(self):
        g = knapsack_gap_gadget(3, 60.0)
        new = approximate_ft2_spanner(g, 3, seed=20)
        old = dk10_baseline(g, 3, seed=20)
        assert is_ft_2spanner(new.spanner, g, 3)
        assert is_ft_2spanner(old.spanner, g, 3)
        assert new.cost <= old.cost + 1e-9

    def test_exact_certifies_lp_and_approx_order(self):
        g = knapsack_gap_gadget(2, 25.0)
        lp = solve_ft2_lp(g, 2).objective
        exact = exact_minimum_ft2_spanner(g, 2).cost
        approx = approximate_ft2_spanner(g, 2, seed=21).cost
        assert lp <= exact + 1e-6
        assert exact <= approx + 1e-6

    def test_distributed_matches_centralized_validity(self):
        g = gnp_random_digraph(9, 0.6, seed=22)
        central = approximate_ft2_spanner(g, 1, seed=23)
        dist = distributed_ft2_spanner(g, 1, seed=24)
        assert is_ft_2spanner(central.spanner, g, 1)
        assert is_ft_2spanner(dist.spanner, g, 1)


class TestScalingShapes:
    def test_size_exponent_shrinks_with_k(self):
        """Corollary 2.2 shape: larger stretch -> smaller exponent of n."""
        sizes_k3, sizes_k5 = [], []
        ns = [20, 30, 45]
        for n in ns:
            g = connected_gnp_graph(n, min(1.0, 8.0 / n + 0.2), seed=n)
            sizes_k3.append(greedy_spanner(g, 3).num_edges)
            sizes_k5.append(greedy_spanner(g, 5).num_edges)
        slope3 = log_log_slope(ns, sizes_k3)
        slope5 = log_log_slope(ns, sizes_k5)
        assert slope5 <= slope3 + 0.25  # allow sampling noise
