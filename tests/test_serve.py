"""Self-healing spanner service: workloads, tiered repair, chaos, digests.

The acceptance property pinned down here is graceful degradation: the
service *never* answers a read from a Lemma 3.1-invalid spanner without
reporting ``degraded`` — under eager policies because repair runs before
the next read, under lazy policies because the answer itself carries the
degraded health state.
"""

from __future__ import annotations

import json

import pytest

from repro import FaultModel, Session, SpannerSpec
from repro.core import is_ft_2spanner, unsatisfied_edges
from repro.errors import InvalidSpec
from repro.graph import (
    connected_gnp_graph,
    csr_snapshot,
    gnp_random_digraph,
    invalidate_snapshot,
)
from repro.serve import (
    ChaosInjector,
    Operation,
    RepairPolicy,
    ServiceHealth,
    SpannerService,
    WorkloadGenerator,
    apply_mutations,
    load_workload,
    read_write_weights,
    save_workload,
    spanner_digest,
    stream_ft2_spanner,
)
from repro.serve.workload import (
    ADD_EDGE,
    ADD_NODE,
    DEL_EDGE,
    DEL_NODE,
    QUERY_DIST,
    READ_NBRS,
    READS,
)


@pytest.fixture
def host():
    return connected_gnp_graph(24, 0.3, seed=3)


@pytest.fixture
def dense_host():
    """Dense enough that the stream spanner leaves many host edges unkept
    (covered by two-paths only) — the regime where deleting spanner edges
    actually produces Lemma 3.1 damage."""
    return connected_gnp_graph(24, 0.6, seed=3)


def make_service(host, r=1, policy=None, seed=0):
    return SpannerService(host, r=r, policy=policy, seed=seed)


def assert_reads_never_silently_degraded(results):
    """The tentpole invariant: invalid spanner + read => degraded."""
    for result in results:
        if result.type in READS and result.damage > 0:
            assert result.health == ServiceHealth.DEGRADED


class TestWorkloadGenerator:
    def test_same_seed_same_stream(self, host):
        ops_a = WorkloadGenerator(host, seed=7).generate(120)
        ops_b = WorkloadGenerator(host, seed=7).generate(120)
        assert [op.to_dict() for op in ops_a] == [op.to_dict() for op in ops_b]

    def test_different_seed_different_stream(self, host):
        ops_a = WorkloadGenerator(host, seed=7).generate(120)
        ops_b = WorkloadGenerator(host, seed=8).generate(120)
        assert [op.to_dict() for op in ops_a] != [op.to_dict() for op in ops_b]

    def test_mutations_always_applicable(self, host):
        """Every emitted mutation is legal at its point of the stream."""
        ops = WorkloadGenerator(
            host, seed=11, weights=read_write_weights(0.3)
        ).generate(300)
        mirror = host.copy()
        for op in ops:
            if op.type == ADD_NODE:
                assert not mirror.has_vertex(op.param("v"))
                mirror.add_vertex(op.param("v"))
            elif op.type == ADD_EDGE:
                u, v = op.param("u"), op.param("v")
                assert u != v and not mirror.has_edge(u, v)
                mirror.add_edge(u, v, op.params["weight"])
            elif op.type == DEL_EDGE:
                u, v = op.param("u"), op.param("v")
                assert mirror.has_edge(u, v)
                mirror.remove_edge(u, v)
            elif op.type == DEL_NODE:
                assert mirror.has_vertex(op.param("v"))
                mirror.remove_vertex(op.param("v"))
            elif op.type in (QUERY_DIST, READ_NBRS):
                for key in ("u", "v") if op.type == QUERY_DIST else ("v",):
                    assert mirror.has_vertex(op.param(key))

    def test_generate_exact_count_even_when_pools_drain(self):
        g = connected_gnp_graph(4, 0.9, seed=0)
        ops = WorkloadGenerator(
            g, seed=1, weights={DEL_EDGE: 1.0}
        ).generate(40)
        assert len(ops) == 40

    def test_unknown_weight_key_rejected(self, host):
        with pytest.raises(InvalidSpec, match="unknown op types"):
            WorkloadGenerator(host, seed=0, weights={"NOPE": 1.0})

    def test_all_zero_weights_rejected(self, host):
        with pytest.raises(InvalidSpec, match="at least one"):
            WorkloadGenerator(host, seed=0, weights={ADD_EDGE: 0.0})

    def test_read_write_weights_validation(self):
        with pytest.raises(InvalidSpec, match="read_ratio"):
            read_write_weights(1.5)
        weights = read_write_weights(0.9)
        assert abs(sum(weights.values()) - 1.0) < 1e-12
        assert weights[QUERY_DIST] == weights[READ_NBRS] == 0.45


class TestOperation:
    def test_rejects_unknown_type(self):
        with pytest.raises(InvalidSpec, match="operation type"):
            Operation("RENAME_NODE", {})

    def test_missing_param_names_the_key(self):
        op = Operation(QUERY_DIST, {"u": 0})
        with pytest.raises(InvalidSpec, match="'v'"):
            op.param("v")

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(InvalidSpec, match="unknown keys"):
            Operation.from_dict({"type": ADD_NODE, "params": {}, "extra": 1})

    def test_json_round_trip(self, host, tmp_path):
        ops = WorkloadGenerator(host, seed=5).generate(80)
        path = str(tmp_path / "trace.json")
        save_workload(ops, path)
        loaded = load_workload(path)
        assert [op.to_dict() for op in loaded] == [op.to_dict() for op in ops]
        # canonical JSON: a second save is byte-identical
        path2 = str(tmp_path / "trace2.json")
        save_workload(loaded, path2)
        with open(path) as a, open(path2) as b:
            assert a.read() == b.read()

    def test_load_rejects_foreign_documents(self, tmp_path):
        path = str(tmp_path / "junk.json")
        with open(path, "w") as handle:
            json.dump({"format": "something-else"}, handle)
        with pytest.raises(InvalidSpec, match="not a workload"):
            load_workload(path)


class TestStreamFt2:
    @pytest.mark.parametrize("r", [0, 1, 2])
    def test_valid_on_undirected(self, host, r):
        spanner = stream_ft2_spanner(host, r)
        assert is_ft_2spanner(spanner, host, r)

    @pytest.mark.parametrize("r", [0, 1])
    def test_valid_on_directed(self, r):
        g = gnp_random_digraph(18, 0.4, seed=2)
        spanner = stream_ft2_spanner(g, r)
        assert is_ft_2spanner(spanner, g, r)

    def test_deterministic(self, host):
        a = stream_ft2_spanner(host, 1)
        b = stream_ft2_spanner(host, 1)
        assert spanner_digest(a) == spanner_digest(b)

    def test_registered_as_algorithm(self, host):
        spec = SpannerSpec(
            "ft2-stream", stretch=2, faults=FaultModel.vertex(1)
        )
        report = Session().build(spec, graph=host)
        assert report.spanner is not None
        assert is_ft_2spanner(report.spanner, host, 1)
        assert report.stats["host_edges"] == host.num_edges

    def test_wrong_stretch_refused(self, host):
        spec = SpannerSpec("ft2-stream", stretch=3)
        with pytest.raises(InvalidSpec):
            Session().build(spec, graph=host)


class TestRepairPolicy:
    def test_tier_escalation(self):
        policy = RepairPolicy(patch_threshold=0.02, rebuild_threshold=0.10)
        assert policy.tier_for(0.0) == "patch"
        assert policy.tier_for(0.02) == "patch"
        assert policy.tier_for(0.05) == "region"
        assert policy.tier_for(0.10) == "region"
        assert policy.tier_for(0.11) == "full"

    def test_always_full_short_circuits(self):
        assert RepairPolicy.rebuild_per_mutation().tier_for(0.0) == "full"

    def test_inverted_thresholds_rejected(self):
        with pytest.raises(InvalidSpec, match="patch_threshold"):
            RepairPolicy(patch_threshold=0.5, rebuild_threshold=0.1)

    def test_lazy_is_not_eager(self):
        assert not RepairPolicy.lazy().eager
        assert RepairPolicy().eager


class TestSpannerService:
    def test_initial_build_is_valid(self, host):
        service = make_service(host, r=1)
        assert service.is_valid()
        assert is_ft_2spanner(service.spanner, service.host, 1)
        assert service.health == ServiceHealth.HEALTHY

    def test_requires_stretch_two(self, host):
        spec = SpannerSpec("greedy", stretch=3)
        with pytest.raises(InvalidSpec, match="stretch"):
            SpannerService(host, spec)

    def test_eager_stream_stays_valid(self, host):
        service = make_service(host, r=1)
        ops = WorkloadGenerator(
            host.copy(), seed=13, weights=read_write_weights(0.5)
        ).generate(250)
        results = service.apply_all(ops)
        assert len(results) == 250
        assert service.is_valid()
        # the incremental verifier agrees with the static recomputation
        assert (
            unsatisfied_edges(service.spanner, service.host, 1) == []
        )
        assert_reads_never_silently_degraded(results)

    def test_spanner_is_subgraph_of_host(self, host):
        service = make_service(host, r=1)
        ops = WorkloadGenerator(
            host.copy(), seed=17, weights=read_write_weights(0.2)
        ).generate(300)
        service.apply_all(ops)
        for u, v, w in service.spanner.edges():
            assert service.host.has_edge(u, v)
            assert service.host.weight(u, v) == w

    def test_del_spanner_edge_triggers_repair(self):
        # On K4 with r=1 the stream spanner keeps every edge except
        # (2, 3), which relies on midpoints {0, 1}. Deleting spanner
        # edge (0, 2) kills midpoint 0, so (2, 3) must be repaired.
        from repro.graph import complete_graph

        service = make_service(complete_graph(4), r=1)
        assert service.spanner.has_edge(0, 2)
        assert not service.spanner.has_edge(2, 3)
        result = service.apply(Operation(DEL_EDGE, {"u": 0, "v": 2}))
        assert result.ok
        assert result.tier is not None
        assert service.is_valid()
        assert sum(service.stats.tiers.values()) == 1

    def test_inapplicable_ops_are_skipped(self, host):
        service = make_service(host, r=1)
        u, v, _w = next(iter(host.edges()))
        before = service.spanner.num_edges
        result = service.apply(Operation(ADD_EDGE, {"u": u, "v": v}))
        assert not result.ok
        assert service.stats.skipped == 1
        assert service.spanner.num_edges == before
        missing = service.apply(Operation(QUERY_DIST, {"u": u, "v": "ghost"}))
        assert not missing.ok and missing.value is None
        assert service.stats.skipped == 2

    def test_query_dist_is_a_spanner_distance(self, host):
        service = make_service(host, r=1)
        u, v, w = next(iter(host.edges()))
        result = service.apply(Operation(QUERY_DIST, {"u": u, "v": v}))
        # 2-spanner: d_spanner(u, v) <= 2 * w(u, v) for a host edge
        assert result.ok and result.value is not None
        assert result.value <= 2 * w + 1e-9

    @pytest.mark.parametrize("tier", ["patch", "region", "full"])
    def test_forced_tier_ends_valid(self, host, tier):
        service = make_service(host, r=1)
        chaos = ChaosInjector(seed=1, adversarial=True)
        burst = chaos.edge_burst(service.host, 4, spanner=service.spanner)
        for op in burst:
            service._apply_mutation(op)
        service.repair(tier=tier)
        assert service.is_valid()
        assert service.stats.tiers[tier] == 1
        assert service.health == ServiceHealth.HEALTHY

    def test_unknown_tier_rejected(self, host):
        service = make_service(host, r=1)
        with pytest.raises(InvalidSpec, match="repair tier"):
            service.repair(tier="prayer")

    def test_repair_on_valid_spanner_is_a_noop(self, host):
        service = make_service(host, r=1)
        assert service.repair() is None
        assert sum(service.stats.tiers.values()) == 0

    def test_rebuild_per_mutation_baseline(self, host):
        service = make_service(host, policy=RepairPolicy.rebuild_per_mutation())
        ops = WorkloadGenerator(
            host.copy(), seed=19, weights=read_write_weights(0.0)
        ).generate(20)
        results = service.apply_all(ops)
        applied = sum(1 for r in results if r.ok and r.tier is not None)
        assert service.stats.tiers["full"] == applied
        assert applied > 0
        assert service.is_valid()

    def test_summary_is_json_able_and_accurate(self, host):
        service = make_service(host, r=2)
        ops = WorkloadGenerator(host.copy(), seed=23).generate(60)
        service.apply_all(ops)
        summary = service.summary()
        json.dumps(summary, sort_keys=True)
        assert summary["ops_applied"] == 60
        assert summary["r"] == 2
        assert summary["algorithm"] == "ft2-stream"
        assert summary["valid"] == service.is_valid()
        assert sum(summary["stats"]["ops"].values()) == 60

    def test_directed_host(self):
        g = gnp_random_digraph(16, 0.45, seed=6)
        service = make_service(g, r=1)
        ops = WorkloadGenerator(
            g.copy(), seed=3, weights=read_write_weights(0.5)
        ).generate(150)
        results = service.apply_all(ops)
        assert service.is_valid()
        assert unsatisfied_edges(service.spanner, service.host, 1) == []
        assert_reads_never_silently_degraded(results)

    def test_session_serve_factory(self, host):
        session = Session(seed=0)
        spec = SpannerSpec(
            "ft2-stream", stretch=2, faults=FaultModel.vertex(1)
        )
        service = session.serve(spec, graph=host)
        assert service.session is session
        assert service.r == 1
        assert service.is_valid()


class TestGracefulDegradation:
    """The acceptance invariant, exercised where it can actually fail."""

    def test_lazy_service_reports_degraded_reads(self, dense_host):
        service = make_service(dense_host, policy=RepairPolicy.lazy())
        chaos = ChaosInjector(seed=2, adversarial=True)
        burst = chaos.edge_burst(service.host, 6, spanner=service.spanner)
        service.apply_all(burst)
        assert not service.is_valid()  # lazy: damage is left standing
        u, v, _w = next(iter(service.host.edges()))
        result = service.apply(Operation(QUERY_DIST, {"u": u, "v": v}))
        assert result.health == ServiceHealth.DEGRADED
        assert service.stats.degraded_answers == 1
        # explicit repair restores health, and subsequent reads say so
        service.repair()
        assert service.is_valid()
        healthy = service.apply(Operation(QUERY_DIST, {"u": u, "v": v}))
        assert healthy.health == ServiceHealth.HEALTHY

    def test_no_silent_degraded_reads_across_policies(self, dense_host):
        """Fuzz the invariant: every read from an invalid spanner carries
        ``degraded``, and every degraded read is counted."""
        saw_degraded = False
        for policy in (
            RepairPolicy(),
            RepairPolicy.lazy(),
            RepairPolicy(patch_threshold=0.0, rebuild_threshold=0.0),
        ):
            service = SpannerService(dense_host.copy(), policy=policy, seed=0)
            ops = WorkloadGenerator(
                dense_host.copy(), seed=29, weights=read_write_weights(0.6)
            ).generate(200)
            chaos = ChaosInjector(seed=31, adversarial=True)
            ops[50:50] = chaos.edge_burst(
                service.host, 5, spanner=service.spanner
            )
            results = service.apply_all(ops)
            assert_reads_never_silently_degraded(results)
            degraded = sum(
                1
                for r in results
                if r.type in READS and r.health == ServiceHealth.DEGRADED
            )
            assert service.stats.degraded_answers == degraded
            saw_degraded = saw_degraded or degraded > 0
        # the scenario genuinely exercised the invariant at least once
        assert saw_degraded

    def test_lazy_runs_degraded_until_repair(self, dense_host):
        service = make_service(dense_host, policy=RepairPolicy.lazy())
        chaos = ChaosInjector(seed=5, adversarial=True)
        burst = chaos.edge_burst(service.host, 5, spanner=service.spanner)
        results = service.apply_all(burst)
        assert any(r.health == ServiceHealth.DEGRADED for r in results)
        assert service.stats.tiers == {"patch": 0, "region": 0, "full": 0}
        tier = service.repair()
        assert tier in ("patch", "region", "full")
        assert service.is_valid()


class TestChaosInjector:
    def test_seeded_bursts_replay(self, host):
        a = ChaosInjector(seed=9).edge_burst(host, 5)
        b = ChaosInjector(seed=9).edge_burst(host, 5)
        assert [op.to_dict() for op in a] == [op.to_dict() for op in b]

    def test_burst_targets_are_distinct_live_edges(self, host):
        ops = ChaosInjector(seed=9).edge_burst(host, 10)
        targets = [(op.param("u"), op.param("v")) for op in ops]
        assert len(set(targets)) == 10
        assert all(host.has_edge(u, v) for u, v in targets)

    def test_adversarial_edges_hit_the_spanner_first(self, host):
        spanner = stream_ft2_spanner(host, 1)
        count = min(8, spanner.num_edges)
        ops = ChaosInjector(seed=9, adversarial=True).edge_burst(
            host, count, spanner=spanner
        )
        assert len(ops) == count
        assert all(
            spanner.has_edge(op.param("u"), op.param("v")) for op in ops
        )

    def test_adversarial_nodes_kill_busiest_vertices(self, host):
        spanner = stream_ft2_spanner(host, 1)
        ops = ChaosInjector(seed=9, adversarial=True).node_burst(
            host, 3, spanner=spanner
        )
        victims = [op.param("v") for op in ops]
        floor = min(spanner.degree(v) for v in victims)
        spared = [v for v in host.vertices() if v not in victims]
        assert all(spanner.degree(v) <= floor for v in spared)

    def test_burst_clamps_to_pool_size(self, host):
        ops = ChaosInjector(seed=9).edge_burst(host, 10_000)
        assert len(ops) == host.num_edges

    def test_adversarial_guarantees_damage(self, dense_host):
        service = make_service(dense_host, policy=RepairPolicy.lazy())
        burst = ChaosInjector(seed=5, adversarial=True).edge_burst(
            service.host, 6, spanner=service.spanner
        )
        results = service.apply_all(burst)
        assert all(r.ok for r in results)
        assert service.damage > 0


class TestDigestAndReplay:
    def test_digest_ignores_insertion_order(self):
        a = connected_gnp_graph(10, 0.5, seed=1)
        b = type(a)()
        b.add_vertices(reversed(list(a.vertices())))
        for u, v, w in reversed(list(a.edges())):
            b.add_edge(v, u, w)
        assert spanner_digest(a) == spanner_digest(b)

    def test_digest_sees_weights_and_edges(self, host):
        other = host.copy()
        u, v, w = next(iter(other.edges()))
        other.remove_edge(u, v)
        assert spanner_digest(other) != spanner_digest(host)
        other.add_edge(u, v, w + 1.0)
        assert spanner_digest(other) != spanner_digest(host)

    def test_final_rebuild_matches_from_scratch(self, host):
        """`repair(tier="full")` compacts to exactly the spanner a fresh
        ft2-stream build produces on the independently replayed host."""
        pristine = host.copy()
        service = make_service(host, r=1)
        ops = WorkloadGenerator(
            pristine.copy(), seed=37, weights=read_write_weights(0.4)
        ).generate(200)
        service.apply_all(ops)
        service.repair(tier="full")
        replayed = apply_mutations(pristine, ops)
        assert spanner_digest(replayed) == spanner_digest(service.host)
        assert spanner_digest(
            stream_ft2_spanner(replayed, 1)
        ) == spanner_digest(service.spanner)

    def test_same_seed_same_service_trace(self, host):
        docs = []
        for _ in range(2):
            service = SpannerService(host.copy(), seed=0)
            ops = WorkloadGenerator(host.copy(), seed=41).generate(150)
            results = service.apply_all(ops)
            docs.append(
                json.dumps(
                    {
                        "results": [r.to_dict() for r in results],
                        "summary": service.summary(),
                        "digest": spanner_digest(service.spanner),
                    },
                    sort_keys=True,
                )
            )
        assert docs[0] == docs[1]


class TestSnapshotInvalidation:
    def test_mutation_releases_cached_csr(self, host):
        service = make_service(host, r=1)
        csr_snapshot(service.host)  # a global query builds the cache
        assert getattr(service.host, "_csr_cache", None) is not None
        service.apply(Operation(ADD_NODE, {"v": "fresh"}))
        assert getattr(service.host, "_csr_cache", None) is None

    def test_invalidate_is_idempotent_and_safe_on_cold_graphs(self, host):
        invalidate_snapshot(host)  # never built: no-op
        snap = csr_snapshot(host)
        assert snap is csr_snapshot(host)  # cached
        invalidate_snapshot(host)
        invalidate_snapshot(host)
        assert getattr(host, "_csr_cache", None) is None
