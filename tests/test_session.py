"""Session semantics: legacy-identical builds, snapshot reuse, verification."""

from __future__ import annotations

import pytest

from repro import (
    FaultModel,
    Session,
    SpannerSpec,
    fault_tolerant_spanner,
)
from repro.compiled import compiled_available
from repro.core import clpr_fault_tolerant_spanner, edge_fault_tolerant_spanner
from repro.distributed import distributed_ft2_spanner, distributed_ft_spanner
from repro.errors import InvalidSpec
from repro.graph import (
    complete_graph,
    connected_gnp_graph,
    dump_json,
    gnp_random_digraph,
)
from repro.session import build as one_shot_build
from repro.spanners import (
    baswana_sen_spanner,
    build_distance_oracle,
    greedy_spanner,
    thorup_zwick_spanner,
)
from repro.two_spanner import approximate_ft2_spanner, dk10_baseline


def edge_set(graph):
    return sorted(graph.edges())


@pytest.fixture
def host():
    return connected_gnp_graph(60, 0.2, seed=0)


@pytest.fixture
def digraph():
    return gnp_random_digraph(10, 0.5, seed=4)


class TestLegacyIdentity:
    """Session.build(spec) == the legacy top-level call, same seed.

    This is the acceptance gate of the spec/registry/session redesign:
    the typed front door adds structure, never different output.
    """

    def test_greedy(self, host):
        report = Session().build(SpannerSpec("greedy", stretch=3), graph=host)
        assert edge_set(report.spanner) == edge_set(greedy_spanner(host, 3))

    def test_greedy_size_first_param(self, host):
        spec = SpannerSpec("greedy", stretch=3, params={"max_edges": 40})
        report = Session().build(spec, graph=host)
        assert report.size == 40

    def test_baswana_sen(self, host):
        spec = SpannerSpec("baswana-sen", stretch=3, seed=7)
        report = Session().build(spec, graph=host)
        assert edge_set(report.spanner) == edge_set(
            baswana_sen_spanner(host, 2, seed=7)
        )

    def test_thorup_zwick(self, host):
        spec = SpannerSpec("thorup-zwick", stretch=5, seed=7)
        report = Session().build(spec, graph=host)
        assert edge_set(report.spanner) == edge_set(
            thorup_zwick_spanner(host, 3, seed=7)
        )

    def test_tz_oracle(self, host):
        spec = SpannerSpec("tz-oracle", stretch=3, seed=7)
        report = Session().build(spec, graph=host)
        legacy = build_distance_oracle(host, 2, seed=7)
        assert report.artifact.bunches == legacy.bunches
        assert report.artifact.witnesses == legacy.witnesses
        assert report.size == legacy.total_size()
        assert report.spanner is None  # oracles have no spanner graph

    def test_theorem21(self, host):
        spec = SpannerSpec(
            "theorem21", stretch=3, faults=FaultModel.vertex(1), seed=1
        )
        report = Session().build(spec, graph=host)
        legacy = fault_tolerant_spanner(host, 3, 1, seed=1)
        assert edge_set(report.spanner) == edge_set(legacy.spanner)
        assert report.stats["iterations"] == legacy.stats.iterations
        assert report.stats["max_survivor_size"] == legacy.stats.max_survivor_size

    def test_theorem21_edge(self):
        comm = connected_gnp_graph(26, 0.3, seed=50)
        spec = SpannerSpec(
            "theorem21-edge", stretch=3, faults=FaultModel.edge(1), seed=13
        )
        report = Session().build(spec, graph=comm)
        legacy = edge_fault_tolerant_spanner(comm, 3, 1, seed=13)
        assert edge_set(report.spanner) == edge_set(legacy.spanner)

    def test_clpr09(self, host):
        spec = SpannerSpec(
            "clpr09", stretch=3, faults=FaultModel.vertex(1), seed=7
        )
        report = Session().build(spec, graph=host)
        legacy = clpr_fault_tolerant_spanner(host, 2, 1, seed=7)
        assert edge_set(report.spanner) == edge_set(legacy.spanner)

    def test_ft2_approx(self, digraph):
        spec = SpannerSpec(
            "ft2-approx", stretch=2, faults=FaultModel.vertex(1), seed=8
        )
        report = Session().build(spec, graph=digraph)
        legacy = approximate_ft2_spanner(digraph, 1, seed=8)
        assert edge_set(report.spanner) == edge_set(legacy.spanner)
        assert report.stats["cost"] == legacy.cost
        assert report.stats["lp_objective"] == legacy.lp_objective

    def test_dk10_baseline(self, digraph):
        spec = SpannerSpec(
            "dk10-baseline", stretch=2, faults=FaultModel.vertex(1), seed=8
        )
        report = Session().build(spec, graph=digraph)
        legacy = dk10_baseline(digraph, 1, seed=8)
        assert edge_set(report.spanner) == edge_set(legacy.spanner)

    def test_distributed_ft(self):
        comm = connected_gnp_graph(26, 0.3, seed=50)
        spec = SpannerSpec(
            "distributed-ft", stretch=3, faults=FaultModel.vertex(1),
            seed=51, params={"iterations": 6},
        )
        report = Session().build(spec, graph=comm)
        legacy = distributed_ft_spanner(comm, k=2, r=1, iterations=6, seed=51)
        assert edge_set(report.spanner) == edge_set(legacy.spanner)
        assert report.stats["total_rounds"] == legacy.total_rounds

    def test_distributed_ft2(self, digraph):
        spec = SpannerSpec(
            "distributed-ft2", stretch=2, faults=FaultModel.vertex(1), seed=11
        )
        report = Session().build(spec, graph=digraph)
        legacy = distributed_ft2_spanner(digraph, 1, seed=11)
        assert edge_set(report.spanner) == edge_set(legacy.spanner)

    def test_every_registered_algorithm_builds(self, host, digraph):
        """Smoke: each registry entry builds through a Session somewhere.

        The per-algorithm tests above pin outputs; this one guards
        against a future registration that no test exercises.
        """
        covered = {
            "greedy", "baswana-sen", "thorup-zwick", "tz-oracle",
            "theorem21", "theorem21-edge", "theorem21-adaptive", "clpr09",
            "ft2-approx", "dk10-baseline", "distributed-ft",
            "distributed-ft2",
            "ft2-stream",  # exercised by tests/test_serve.py
        }
        assert set(Session.algorithms()) == covered


class TestMethodThreading:
    """Satellite gate: method= reaches the conversion's base algorithm."""

    def test_conversion_dict_vs_engine_identical(self, host):
        auto = fault_tolerant_spanner(host, 3, 1, seed=5)
        forced = fault_tolerant_spanner(host, 3, 1, seed=5, method="dict")
        assert edge_set(auto.spanner) == edge_set(forced.spanner)
        assert auto.stats.survivor_sizes == forced.stats.survivor_sizes

    def test_conversion_rejects_unknown_method(self, host):
        from repro.errors import FaultToleranceError

        with pytest.raises(FaultToleranceError):
            fault_tolerant_spanner(host, 3, 1, seed=5, method="gpu")

    def test_method_reaches_custom_base(self, host):
        """A base accepting method= receives the conversion's method."""
        seen = []

        def base(graph, k, method="auto"):
            seen.append(method)
            return greedy_spanner(graph, k, method=method)

        fault_tolerant_spanner(
            host, 3, 1, base_algorithm=base, iterations=2, seed=5,
            method="dict",
        )
        assert seen and all(m == "dict" for m in seen)

    def test_methodless_base_still_works(self, host):
        def base(graph, k):
            return greedy_spanner(graph, k)

        result = fault_tolerant_spanner(
            host, 3, 1, base_algorithm=base, iterations=2, seed=5,
            method="csr",
        )
        assert result.num_edges > 0

    def test_session_method_dict_identical(self, host):
        a = Session().build(
            SpannerSpec("theorem21", stretch=3, faults=FaultModel.vertex(1),
                        seed=1, method="dict"),
            graph=host,
        )
        b = Session().build(
            SpannerSpec("theorem21", stretch=3, faults=FaultModel.vertex(1),
                        seed=1, method="csr"),
            graph=host,
        )
        assert edge_set(a.spanner) == edge_set(b.spanner)


class TestSnapshotReuse:
    def test_build_many_reuses_one_snapshot(self):
        graph = complete_graph(64)  # fresh: no cached snapshot yet
        session = Session()
        specs = [
            SpannerSpec("baswana-sen", stretch=3, seed=s) for s in range(4)
        ]
        reports = session.build_many(specs, graph=graph)
        assert len(reports) == 4
        # One CSR snapshot build, three cache hits: the host was
        # snapshotted exactly once across the whole batch.
        assert session.snapshot_builds == 1
        assert session.snapshot_hits == 3

    def test_path_bound_specs_share_one_loaded_graph(self, tmp_path):
        path = str(tmp_path / "host.json")
        dump_json(complete_graph(64), path)
        session = Session()
        specs = [
            SpannerSpec("greedy", stretch=3, graph=path),
            SpannerSpec("baswana-sen", stretch=3, seed=1, graph=path),
            SpannerSpec("thorup-zwick", stretch=3, seed=1, graph=path),
        ]
        session.build_many(specs)
        assert session.snapshot_builds == 1
        assert session.snapshot_hits == 2

    def test_dict_method_builds_no_snapshot(self):
        graph = complete_graph(64)
        session = Session()
        session.build(
            SpannerSpec("greedy", stretch=3, method="dict"), graph=graph
        )
        assert session.snapshot_builds == 0
        assert session.snapshot_hits == 0

    def test_no_snapshot_for_algorithms_without_csr_path(self):
        """csr_path=False pipelines must not pay for an unused snapshot."""
        graph = gnp_random_digraph(50, 0.3, seed=2)
        session = Session()
        session.build(
            SpannerSpec("ft2-approx", stretch=2, faults=FaultModel.vertex(1),
                        seed=1),
            graph=graph,
        )
        # The LP pipeline may snapshot internally (PR 2's row assembly);
        # what matters is that the *session* did not pre-pay for one.
        assert session.snapshot_builds == 0
        assert session.snapshot_hits == 0


class TestResolvedMethod:
    """Reports state the dispatch path actually taken, not the size rule."""

    def test_greedy_small_graph_reports_true_kernel(self):
        graph = complete_graph(10)  # below MIN_DISPATCH_VERTICES
        report = Session().build(SpannerSpec("greedy", stretch=3), graph=graph)
        # greedy dispatches by kernel availability, never by size
        assert report.resolved_method == (
            "compiled" if compiled_available() else "indexed"
        )

    def test_theorem21_small_graph_reports_engine_tier(self):
        graph = complete_graph(10)
        report = Session().build(
            SpannerSpec("theorem21", stretch=3, faults=FaultModel.vertex(1),
                        seed=1),
            graph=graph,
        )
        assert report.resolved_method == (
            "compiled" if compiled_available() else "csr"
        )

    def test_dict_is_reported_as_dict(self):
        graph = complete_graph(64)
        report = Session().build(
            SpannerSpec("theorem21", stretch=3, faults=FaultModel.vertex(1),
                        seed=1, method="dict"),
            graph=graph,
        )
        assert report.resolved_method == "dict"

    def test_size_rule_algorithms_keep_generic_resolution(self):
        small = connected_gnp_graph(20, 0.4, seed=1)
        report = Session().build(
            SpannerSpec("baswana-sen", stretch=3, seed=1), graph=small
        )
        assert report.resolved_method == "dict"  # n < threshold -> dict


class TestSeedSpawning:
    def test_unseeded_specs_get_derived_seeds(self, host):
        spec = SpannerSpec("baswana-sen", stretch=3)
        a = Session(seed=42).build(spec, graph=host)
        b = Session(seed=42).build(spec, graph=host)
        assert a.resolved_seed == b.resolved_seed
        assert edge_set(a.spanner) == edge_set(b.spanner)

    def test_reports_are_replayable(self, host):
        report = Session(seed=42).build(
            SpannerSpec("baswana-sen", stretch=3), graph=host
        )
        replay = Session().build(
            SpannerSpec("baswana-sen", stretch=3, seed=report.resolved_seed),
            graph=host,
        )
        assert edge_set(replay.spanner) == edge_set(report.spanner)

    def test_explicit_seed_wins(self, host):
        report = Session(seed=1).build(
            SpannerSpec("baswana-sen", stretch=3, seed=77), graph=host
        )
        assert report.resolved_seed == 77

    def test_fingerprint_tracks_spec_and_seed(self, host):
        session = Session()
        a = session.build(SpannerSpec("greedy", stretch=3, seed=1), graph=host)
        b = session.build(SpannerSpec("greedy", stretch=3, seed=1), graph=host)
        c = session.build(SpannerSpec("greedy", stretch=3, seed=2), graph=host)
        assert a.rng_fingerprint == b.rng_fingerprint
        assert a.rng_fingerprint != c.rng_fingerprint


class TestCapabilityChecks:
    def test_directed_host_into_undirected_algorithm(self, digraph):
        with pytest.raises(InvalidSpec) as excinfo:
            Session().build(
                SpannerSpec("baswana-sen", stretch=3, seed=1), graph=digraph
            )
        assert "undirected" in str(excinfo.value)

    def test_faults_on_plain_algorithm(self, host):
        with pytest.raises(InvalidSpec) as excinfo:
            Session().build(
                SpannerSpec("greedy", stretch=3, faults=FaultModel.vertex(1)),
                graph=host,
            )
        assert "theorem21" in str(excinfo.value)  # actionable: names the fix

    def test_wrong_fault_kind(self, host):
        with pytest.raises(InvalidSpec):
            Session().build(
                SpannerSpec("theorem21", stretch=3, faults=FaultModel.edge(1)),
                graph=host,
            )

    def test_missing_graph(self):
        with pytest.raises(InvalidSpec) as excinfo:
            Session().build(SpannerSpec("greedy", stretch=3))
        assert "host graph" in str(excinfo.value)

    def test_even_stretch_into_odd_domain(self, host):
        with pytest.raises(InvalidSpec) as excinfo:
            Session().build(
                SpannerSpec("baswana-sen", stretch=4, seed=1), graph=host
            )
        assert "odd integer" in str(excinfo.value)


class TestVerify:
    def test_verify_plain_spanner(self, host):
        session = Session()
        report = session.build(SpannerSpec("greedy", stretch=3), graph=host)
        assert session.verify(report, graph=host)

    def test_verify_vertex_faults_all_modes(self, host):
        session = Session()
        report = session.build(
            SpannerSpec("theorem21", stretch=3, faults=FaultModel.vertex(1),
                        seed=1),
            graph=host,
        )
        assert session.verify(report, graph=host, mode="sampled")
        assert session.verify(report, graph=host, mode="auto")

    def test_verify_edge_faults(self):
        comm = connected_gnp_graph(22, 0.4, seed=3)
        session = Session()
        report = session.build(
            SpannerSpec("theorem21-edge", stretch=3, faults=FaultModel.edge(1),
                        seed=13),
            graph=comm,
        )
        assert session.verify(report, graph=comm, mode="sampled")

    def test_verify_lemma31(self, digraph):
        session = Session()
        report = session.build(
            SpannerSpec("ft2-approx", stretch=2, faults=FaultModel.vertex(1),
                        seed=8),
            graph=digraph,
        )
        assert session.verify(report, graph=digraph, mode="auto")

    def test_verify_rejects_bad_mode(self, host):
        session = Session()
        report = session.build(SpannerSpec("greedy", stretch=3), graph=host)
        with pytest.raises(InvalidSpec):
            session.verify(report, graph=host, mode="telepathy")

    def test_verify_oracle_report_is_actionable(self, host):
        session = Session()
        report = session.build(
            SpannerSpec("tz-oracle", stretch=3, seed=7), graph=host
        )
        with pytest.raises(InvalidSpec) as excinfo:
            session.verify(report, graph=host)
        assert "no spanner graph" in str(excinfo.value)


def test_one_shot_build_helper(host):
    report = one_shot_build(SpannerSpec("greedy", stretch=3), graph=host)
    assert edge_set(report.spanner) == edge_set(greedy_spanner(host, 3))
