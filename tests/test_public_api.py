"""Public-API quality gates: exports resolve, are documented, and stable."""

from __future__ import annotations

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.core",
    "repro.distributed",
    "repro.distsim",
    "repro.graph",
    "repro.lp",
    "repro.registry",
    "repro.sched",
    "repro.session",
    "repro.spanners",
    "repro.spec",
    "repro.two_spanner",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} missing __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} listed but missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_is_sorted_and_unique(package):
    module = importlib.import_module(package)
    names = [n for n in module.__all__ if n != "__version__"]
    assert names == sorted(names), f"{package}.__all__ is not sorted"
    assert len(names) == len(set(names)), f"{package}.__all__ has duplicates"


@pytest.mark.parametrize("package", PACKAGES)
def test_public_callables_have_docstrings(package):
    module = importlib.import_module(package)
    undocumented = []
    for name in module.__all__:
        if name.startswith("__"):
            continue
        obj = getattr(module, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
    assert not undocumented, f"{package}: undocumented exports {undocumented}"


@pytest.mark.parametrize("package", PACKAGES)
def test_module_docstrings_present(package):
    module = importlib.import_module(package)
    assert (module.__doc__ or "").strip(), f"{package} has no module docstring"


def test_version_is_exposed():
    import repro

    assert repro.__version__ == "1.0.0"


def test_error_hierarchy_rooted():
    """Every library exception derives from ReproError (catchability)."""
    from repro import errors

    for name in dir(errors):
        obj = getattr(errors, name)
        if (
            inspect.isclass(obj)
            and issubclass(obj, Exception)
            and obj.__module__ == "repro.errors"
        ):
            assert issubclass(obj, errors.ReproError) or obj is errors.ReproError


def test_seed_parameter_conventions():
    """Randomized public entry points accept a ``seed`` argument."""
    import repro
    from repro.distributed import distributed_padded_decomposition
    from repro.spanners import baswana_sen_spanner, thorup_zwick_spanner

    for fn in (
        repro.fault_tolerant_spanner,
        repro.approximate_ft2_spanner,
        repro.clpr_fault_tolerant_spanner,
        baswana_sen_spanner,
        thorup_zwick_spanner,
        distributed_padded_decomposition,
    ):
        assert "seed" in inspect.signature(fn).parameters, fn.__name__


def test_method_parameter_conventions():
    """The shared dispatch kwarg reaches every rewired constructor."""
    import repro
    from repro.core import edge_fault_tolerant_spanner
    from repro.distributed import sample_padded_decomposition
    from repro.spanners import (
        baswana_sen_spanner,
        build_distance_oracle,
        greedy_spanner,
        thorup_zwick_spanner,
    )

    for fn in (
        repro.fault_tolerant_spanner,
        repro.fault_tolerant_spanner_until_valid,
        repro.clpr_fault_tolerant_spanner,
        edge_fault_tolerant_spanner,
        baswana_sen_spanner,
        build_distance_oracle,
        greedy_spanner,
        thorup_zwick_spanner,
        sample_padded_decomposition,
    ):
        assert "method" in inspect.signature(fn).parameters, fn.__name__


def test_registry_is_the_front_door():
    """Every registered algorithm is introspectable and spec-buildable."""
    from repro import available_algorithms, get_algorithm
    from repro.spec import SpannerSpec

    names = available_algorithms()
    assert len(names) >= 11
    for name in names:
        info = get_algorithm(name)
        assert (info.summary or "").strip(), f"{name} has no summary"
        assert (info.stretch_domain or "").strip(), f"{name} has no domain"
        assert callable(info.builder)
        # A spec naming the algorithm constructs without touching it.
        SpannerSpec(name, stretch=3)


def test_registered_builders_have_docstrings():
    from repro import available_algorithms, get_algorithm

    undocumented = [
        name
        for name in available_algorithms()
        if not (get_algorithm(name).builder.__doc__ or "").strip()
    ]
    assert not undocumented, f"undocumented builders: {undocumented}"


def test_spec_front_door_exports():
    """The typed front door is re-exported at the top level."""
    import repro

    for name in (
        "Session", "SpannerSpec", "FaultModel", "BuildReport",
        "available_algorithms", "get_algorithm", "register_algorithm",
        "describe_algorithms", "SpecError", "InvalidSpec", "UnknownAlgorithm",
        "FaultScenario", "SurvivorView",
    ):
        assert name in repro.__all__, name
        assert hasattr(repro, name), name


def test_fault_scenario_exports():
    """The scenario vocabulary is exported from repro.graph and repro."""
    import repro
    import repro.graph as rg

    for name in (
        "FaultScenario", "SurvivorView", "scenario_fault_sets",
        "scenario_edge_fault_sets",
    ):
        assert name in rg.__all__, name
        assert hasattr(rg, name), name
    assert repro.FaultScenario is rg.FaultScenario
    assert repro.SurvivorView is rg.SurvivorView


def test_scenario_parameter_conventions():
    """Every per-survivor pipeline accepts the scenarios= vocabulary."""
    import repro
    from repro.core import edge_fault_tolerant_spanner
    from repro.core.edge_faults import is_edge_fault_tolerant_spanner

    for fn in (
        repro.fault_tolerant_spanner,
        repro.clpr_fault_tolerant_spanner,
        edge_fault_tolerant_spanner,
        repro.is_fault_tolerant_spanner,
        is_edge_fault_tolerant_spanner,
    ):
        assert "scenarios" in inspect.signature(fn).parameters, fn.__name__
