"""Client–server generalization of the r-FT 2-spanner machinery."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LPError
from repro.graph import complete_digraph, gnp_random_digraph, knapsack_gap_gadget
from repro.two_spanner import (
    approximate_client_server_2spanner,
    approximate_ft2_spanner,
    build_client_server_lp,
    client_edge_satisfied,
    is_client_server_ft2_spanner,
    solve_client_server_lp,
    solve_ft2_lp,
)


def _some_clients(graph, fraction, seed):
    edges = [(u, v) for u, v, _w in graph.edges()]
    rng = random.Random(seed)
    count = max(1, int(len(edges) * fraction))
    return rng.sample(edges, count)


class TestModel:
    def test_rejects_foreign_client_edge(self):
        g = complete_digraph(3)
        with pytest.raises(LPError):
            build_client_server_lp(g, [(0, 99)], 1)

    def test_rejects_negative_r(self):
        g = complete_digraph(3)
        with pytest.raises(LPError):
            build_client_server_lp(g, [(0, 1)], -1)

    def test_all_clients_equals_plain_lp(self):
        g = gnp_random_digraph(8, 0.6, seed=1)
        clients = [(u, v) for u, v, _w in g.edges()]
        _model, solution = solve_client_server_lp(g, clients, 1)
        plain = solve_ft2_lp(g, 1)
        assert solution.objective == pytest.approx(plain.objective, rel=1e-6)

    def test_fewer_clients_cost_no_more(self):
        g = gnp_random_digraph(9, 0.5, seed=2)
        all_edges = [(u, v) for u, v, _w in g.edges()]
        _m1, full = solve_client_server_lp(g, all_edges, 1)
        _m2, half = solve_client_server_lp(g, all_edges[: len(all_edges) // 2], 1)
        assert half.objective <= full.objective + 1e-6

    def test_empty_client_set_is_free(self):
        g = complete_digraph(4)
        _model, solution = solve_client_server_lp(g, [], 2)
        assert solution.objective == pytest.approx(0.0)


class TestRoundingPipeline:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000), r=st.integers(0, 2))
    def test_property_valid_for_clients(self, seed, r):
        g = gnp_random_digraph(9, 0.55, seed=seed)
        if g.num_edges == 0:
            return
        clients = _some_clients(g, 0.4, seed + 1)
        result = approximate_client_server_2spanner(g, clients, r, seed=seed + 2)
        assert is_client_server_ft2_spanner(result.spanner, g, clients, r)
        assert result.cost >= result.lp_objective - 1e-6

    def test_matches_full_problem_when_all_clients(self):
        g = gnp_random_digraph(9, 0.5, seed=5)
        clients = [(u, v) for u, v, _w in g.edges()]
        cs = approximate_client_server_2spanner(g, clients, 1, seed=6)
        from repro.core import is_ft_2spanner

        assert is_ft_2spanner(cs.spanner, g, 1)

    def test_gadget_client_only_direct_edge(self):
        """If only the expensive edge is a client, the solver may satisfy
        it through the cheap server paths instead of buying it."""
        r = 1
        g = knapsack_gap_gadget(2, 100.0)  # 2 midpoints, r+1 = 2 needed
        result = approximate_client_server_2spanner(g, [("u", "v")], r, seed=7)
        assert is_client_server_ft2_spanner(result.spanner, g, [("u", "v")], r)
        # optimum: 4 unit arcs instead of the 100-cost edge
        assert result.cost <= 4.0 + 1e-9
        assert not result.spanner.has_edge("u", "v")

    def test_client_edge_satisfied_helper(self):
        g = complete_digraph(4)
        h = g.copy()
        h.remove_edge(0, 1)
        assert client_edge_satisfied(h, g, 0, 1, r=1)  # 2 midpoints
        assert not client_edge_satisfied(h, g, 0, 1, r=2)
