"""Host topology subsystem: registry, specs, generators, grid sweeps.

Covers :mod:`repro.hosts` end to end — capability-typed registration,
strict HostSpec JSON round-trips, spec-derived fingerprints that survive
``PYTHONHASHSEED`` changes (proved in subprocesses), the structural
properties of the Kautz and DCell families, the corpus loader's
content-hash cache, and the (algorithm x topology x fault-model) grid
emitter with both registries' capability cross-checks.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro import (
    FaultModel,
    HostSpec,
    InvalidSpec,
    Session,
    SpannerSpec,
    SweepPlan,
    UnknownHostGenerator,
    available_host_generators,
    describe_host_generators,
    emit_grid_plan,
    get_host_generator,
    host_spec_key,
    register_host_generator,
    run_sweep,
)
from repro.errors import RegistryError
from repro.graph import (
    Graph,
    dcell_counts,
    kautz_graph,
)
from repro.graph.csr import MIN_DISPATCH_VERTICES, resolve_method
from repro.graph.paths import dijkstra
from repro.hosts.builtin import corpus_content_digest


# -- registry ----------------------------------------------------------


class TestRegistry:
    def test_builtin_families_present(self):
        names = available_host_generators()
        for name in (
            "complete", "corpus", "dcell", "gnp", "grid", "hypercube",
            "kautz", "powerlaw-cluster", "watts-strogatz",
        ):
            assert name in names

    def test_duplicate_registration_refused(self):
        with pytest.raises(RegistryError):
            @register_host_generator("kautz", summary="dup")
            def build(params, seed):  # pragma: no cover - never called
                return Graph()

    def test_unknown_generator_names_available(self):
        with pytest.raises(UnknownHostGenerator, match="kautz"):
            get_host_generator("no-such-family")

    def test_describe_rows_are_json_safe(self):
        rows = describe_host_generators()
        json.dumps(list(rows))  # must not smuggle non-JSON values
        by_name = {row["name"]: row for row in rows}
        assert by_name["kautz"]["directed"] is True
        assert by_name["corpus"]["directed"] is None  # depends on the file
        assert by_name["gnp"]["deterministic"] is False

    def test_missing_required_param(self):
        with pytest.raises(InvalidSpec, match="diameter"):
            get_host_generator("kautz").validate(
                HostSpec("kautz", params={"d": 2})
            )

    def test_unknown_param(self):
        with pytest.raises(InvalidSpec, match="bogus"):
            get_host_generator("dcell").validate(
                HostSpec("dcell", params={"n": 3, "level": 1, "bogus": 4})
            )

    def test_deterministic_generator_rejects_seed(self):
        with pytest.raises(InvalidSpec, match="seed"):
            get_host_generator("dcell").validate(
                HostSpec("dcell", params={"n": 3, "level": 1}, seed=1)
            )

    def test_randomized_generator_requires_seed(self):
        with pytest.raises(InvalidSpec, match="seed"):
            get_host_generator("gnp").validate(
                HostSpec("gnp", params={"n": 10, "p": 0.5})
            )

    def test_size_bound_refused_before_building(self):
        huge = HostSpec("kautz", params={"d": 4, "diameter": 12})
        with pytest.raises(InvalidSpec, match="vertices"):
            get_host_generator("kautz").validate(huge)


# -- HostSpec ----------------------------------------------------------


class TestHostSpec:
    def test_json_round_trip(self):
        spec = HostSpec("gnp", params={"n": 20, "p": 0.3}, seed=7)
        again = HostSpec.from_json(spec.to_json())
        assert again == spec
        assert again.fingerprint() == spec.fingerprint()

    def test_fingerprint_separates_params_and_seed(self):
        base = HostSpec("gnp", params={"n": 20, "p": 0.3}, seed=7)
        assert base.fingerprint() != base.replace(seed=8).fingerprint()
        assert (
            base.fingerprint()
            != base.replace(params={"n": 21, "p": 0.3}).fingerprint()
        )

    def test_from_dict_rejects_unknown_keys(self):
        doc = HostSpec("complete", params={"n": 4}).to_dict()
        doc["surprise"] = 1
        with pytest.raises(InvalidSpec, match="surprise"):
            HostSpec.from_dict(doc)

    def test_from_dict_rejects_missing_generator(self):
        with pytest.raises(InvalidSpec, match="generator"):
            HostSpec.from_dict({"format": "repro-host", "version": 1})

    def test_materialize_equals_registry_build(self):
        spec = HostSpec("kautz", params={"d": 2, "diameter": 2})
        g = spec.materialize()
        h = kautz_graph(2, 2)
        assert sorted(g.edges()) == sorted(h.edges())

    def test_round_trip_property(self):
        hypothesis = pytest.importorskip("hypothesis")
        st = pytest.importorskip("hypothesis.strategies")

        values = st.one_of(
            st.integers(min_value=-10**6, max_value=10**6),
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            st.text(max_size=12),
            st.booleans(),
        )

        @hypothesis.given(
            generator=st.text(min_size=1, max_size=16),
            params=st.dictionaries(
                st.text(min_size=1, max_size=8), values, max_size=4
            ),
            seed=st.one_of(st.none(), st.integers(min_value=0, max_value=2**63)),
        )
        def check(generator, params, seed):
            spec = HostSpec(generator, params=params, seed=seed)
            again = HostSpec.from_json(spec.to_json())
            assert again == spec
            assert again.fingerprint() == spec.fingerprint()

        check()


# -- cross-process determinism ----------------------------------------


_DETERMINISM_SCRIPT = """
import hashlib, json, sys
from repro import HostSpec

doc = json.loads(sys.argv[1])
spec = HostSpec.from_dict(doc)
graph = spec.materialize()
edges = sorted(
    (json.dumps(u, sort_keys=True), json.dumps(v, sort_keys=True), w)
    for u, v, w in graph.edges()
)
digest = hashlib.sha256(json.dumps(edges).encode()).hexdigest()
print(spec.fingerprint(), digest)
"""

_DETERMINISM_SPECS = [
    HostSpec("kautz", params={"d": 2, "diameter": 2}),
    HostSpec("dcell", params={"n": 3, "level": 1}),
    HostSpec("hypercube", params={"dim": 4}),
    HostSpec("gnp", params={"n": 18, "p": 0.3}, seed=5),
    HostSpec("watts-strogatz", params={"n": 18, "k": 4, "p": 0.2}, seed=5),
    HostSpec("powerlaw-cluster", params={"n": 18, "m": 2, "p": 0.4}, seed=5),
]


@pytest.mark.parametrize(
    "spec", _DETERMINISM_SPECS, ids=lambda s: s.generator
)
def test_fingerprint_and_graph_survive_hash_seed(spec):
    """Spec fingerprints and built graphs are PYTHONHASHSEED-independent.

    Worker processes on other machines rebuild hosts from specs; if
    either the fingerprint or the construction drew on hash order, the
    scheduler's manifests and the merged sweep bytes would diverge.
    """
    payload = json.dumps(spec.to_dict())
    outputs = set()
    for hashseed in ("0", "1"):
        env = dict(os.environ, PYTHONHASHSEED=hashseed)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", os.environ.get("PYTHONPATH")])
        )
        result = subprocess.run(
            [sys.executable, "-c", _DETERMINISM_SCRIPT, payload],
            capture_output=True, text=True, env=env, check=True,
        )
        outputs.add(result.stdout)
    assert len(outputs) == 1


# -- structured families ----------------------------------------------


class TestKautz:
    def test_closed_form_counts(self):
        for d, diameter in [(2, 2), (2, 3), (3, 2)]:
            g = kautz_graph(d, diameter)
            assert g.directed
            assert g.num_vertices == (d + 1) * d**diameter
            assert g.num_edges == g.num_vertices * d

    def test_unique_shortest_paths(self):
        """Every ordered pair is joined by exactly one shortest path.

        The defining property of Kautz interconnects (and why they are
        the adversarial host for spanner sparsification: no arc has an
        equal-length substitute). Checked by counting shortest paths
        with a BFS DAG pass.
        """
        g = kautz_graph(2, 2)
        verts = list(g.vertices())
        for s in verts:
            dist = dijkstra(g, s)  # reached vertices only
            # count shortest paths in increasing-distance order
            counts = {s: 1}
            for v in sorted(dist, key=dist.__getitem__):
                if v == s:
                    continue
                counts[v] = sum(
                    counts.get(u, 0)
                    for u in verts
                    if g.has_edge(u, v)
                    and dist.get(u, float("inf")) + g.weight(u, v) == dist[v]
                )
            for v, count in counts.items():
                assert count == 1, (s, v, count)


class TestDCell:
    @pytest.mark.parametrize("n,level", [(2, 0), (4, 0), (2, 1), (3, 1), (4, 1)])
    def test_closed_form_counts(self, n, level):
        expected_n, expected_m = dcell_counts(n, level)
        g = HostSpec("dcell", params={"n": n, "level": level}).materialize()
        assert g.num_vertices == expected_n
        assert g.num_edges == expected_m

    def test_connected(self):
        g = HostSpec("dcell", params={"n": 3, "level": 1}).materialize()
        start = next(iter(g.vertices()))
        assert set(dijkstra(g, start)) == set(g.vertices())


# -- corpus loader -----------------------------------------------------


class TestCorpus:
    def test_load_and_content_cache(self, tmp_path):
        path = tmp_path / "net.edges"
        path.write_text("# directed\n0 1\n1 2 2.5\n2 0\n")
        spec = HostSpec("corpus", params={"path": str(path)})
        g1 = spec.materialize()
        assert g1.directed and g1.num_edges == 3
        # A renamed byte-identical file shares the cached instance.
        copy = tmp_path / "renamed.edges"
        copy.write_text(path.read_text())
        g2 = HostSpec("corpus", params={"path": str(copy)}).materialize()
        assert g2 is g1
        # Editing the file invalidates (content hash, not mtime).
        path.write_text("0 1\n1 2\n")
        g3 = spec.materialize()
        assert g3 is not g1
        assert not g3.directed and g3.num_edges == 2

    def test_plan_fingerprint_tracks_corpus_content(self, tmp_path):
        path = tmp_path / "net.edges"
        path.write_text("0 1\n1 2\n")
        spec = HostSpec("corpus", params={"path": str(path)})
        plan = SweepPlan.build(
            [SpannerSpec("greedy", stretch=3, seed=1, graph=spec)],
            name="corpus",
        )
        before = plan.fingerprint()
        digest_before = corpus_content_digest(str(path))
        path.write_text("0 1\n1 2\n2 3\n")
        # Content digest changed, so the spec-derived plan fingerprint
        # must change with it (manifests track the file, not the path).
        assert corpus_content_digest(str(path)) != digest_before
        assert plan.fingerprint() != before


# -- dispatch: directed hosts -----------------------------------------


class TestDirectedDispatch:
    def test_directed_csr_native_paths_unchanged(self):
        n = MIN_DISPATCH_VERTICES
        assert resolve_method("auto", n, directed=True) == "csr"
        assert resolve_method("csr", 4, directed=True) == "csr"

    def test_undirected_only_pipelines_fall_back(self):
        n = MIN_DISPATCH_VERTICES
        assert (
            resolve_method("auto", n, directed=True, directed_csr=False)
            == "dict"
        )

    def test_explicit_csr_raises_for_undirected_only(self):
        with pytest.raises(ValueError, match="undirected-only"):
            resolve_method("csr", 4, directed=True, directed_csr=False)

    @pytest.mark.parametrize("build", [
        lambda g: __import__(
            "repro.spanners.thorup_zwick", fromlist=["thorup_zwick_spanner"]
        ).thorup_zwick_spanner(g, 2, seed=0, method="csr"),
        lambda g: __import__(
            "repro.spanners.distance_oracle", fromlist=["build_distance_oracle"]
        ).build_distance_oracle(g, 2, seed=0, method="csr"),
        lambda g: __import__(
            "repro.core.clpr", fromlist=["clpr_fault_tolerant_spanner"]
        ).clpr_fault_tolerant_spanner(g, 2, 0, seed=0, method="csr"),
    ], ids=["thorup-zwick", "tz-oracle", "clpr09"])
    def test_pipelines_refuse_explicit_csr_on_digraph(self, build):
        g = kautz_graph(2, 2)
        with pytest.raises(ValueError, match="undirected-only"):
            build(g)


# -- session + spec integration ---------------------------------------


class TestSessionIntegration:
    def test_build_on_host_spec_binding(self):
        spec = HostSpec("dcell", params={"n": 3, "level": 1})
        session = Session(seed=0)
        report = session.build(SpannerSpec("greedy", stretch=3, graph=spec))
        assert report.size > 0

    def test_host_cache_shared_across_builds(self):
        spec = HostSpec("gnp-connected", params={"n": 30, "p": 0.2}, seed=4)
        session = Session(seed=0)
        a = session.resolve_graph(SpannerSpec("greedy", graph=spec))
        b = session.resolve_graph(SpannerSpec("thorup-zwick", graph=spec))
        assert a is b

    def test_graph_argument_accepts_host_spec(self):
        session = Session(seed=0)
        report = session.build(
            SpannerSpec("greedy", stretch=3),
            graph=HostSpec("complete", params={"n": 8}),
        )
        assert report.size > 0

    def test_spanner_spec_serializes_host_spec(self):
        host = HostSpec("kautz", params={"d": 2, "diameter": 2})
        spec = SpannerSpec("greedy", stretch=3, seed=1, graph=host)
        again = SpannerSpec.from_json(spec.to_json())
        assert again.graph == host
        assert again.fingerprint() == spec.fingerprint()


# -- grid sweeps -------------------------------------------------------


def _grid_topologies():
    return [
        HostSpec("kautz", params={"d": 2, "diameter": 2}),
        HostSpec("dcell", params={"n": 3, "level": 1}),
        HostSpec("watts-strogatz", params={"n": 16, "k": 4, "p": 0.2}, seed=2),
        HostSpec("powerlaw-cluster", params={"n": 16, "m": 2, "p": 0.3}, seed=2),
        HostSpec("gnp-connected", params={"n": 16, "p": 0.3}, seed=2),
    ]


class TestGridSweeps:
    def test_emit_refuses_directed_x_undirected(self):
        with pytest.raises(InvalidSpec, match="undirected"):
            emit_grid_plan(
                algorithms=["baswana-sen"],
                stretches=[3],
                rs=[0],
                topologies=[HostSpec("kautz", params={"d": 2, "diameter": 2})],
            )

    def test_emit_records_skips_over_five_families(self):
        plan = emit_grid_plan(
            algorithms=["greedy", "baswana-sen"],
            stretches=[3],
            rs=[0],
            topologies=_grid_topologies(),
            skip_unsupported=True,
        )
        assert len(plan.hosts) == 5
        assert all(isinstance(h, HostSpec) for h in plan.hosts.values())
        # kautz x baswana-sen is the one impossible point in this grid.
        assert len(plan.skipped) == 1
        assert "kautz" in plan.skipped[0] and "baswana-sen" in plan.skipped[0]
        # 5 hosts x 2 algorithms - 1 refusal
        assert len(plan) == 9

    def test_emit_validates_topologies_eagerly(self):
        with pytest.raises(InvalidSpec, match="seed"):
            emit_grid_plan(
                algorithms=["greedy"],
                stretches=[3],
                rs=[0],
                topologies=[HostSpec("gnp", params={"n": 8, "p": 0.5})],
            )

    def test_plan_round_trip_keeps_host_specs(self):
        plan = emit_grid_plan(
            algorithms=["greedy"],
            stretches=[3],
            rs=[0],
            topologies=_grid_topologies(),
        )
        again = SweepPlan.from_json(plan.to_json())
        assert again.fingerprint() == plan.fingerprint()
        assert set(again.hosts) == set(plan.hosts)
        assert all(isinstance(h, HostSpec) for h in again.hosts.values())

    def test_parallel_workers_match_sequential_bytes(self):
        plan = emit_grid_plan(
            algorithms=["greedy", "theorem21"],
            stretches=[3],
            rs=[0, 1],
            topologies=_grid_topologies(),
            fault_kind="vertex",
            skip_unsupported=True,
        )
        sequential = run_sweep(plan, workers=1)
        parallel = run_sweep(plan, workers=2)
        seq_doc = json.dumps(
            [r.to_dict() for r in sequential], sort_keys=True
        )
        par_doc = json.dumps(
            [r.to_dict() for r in parallel], sort_keys=True
        )
        assert seq_doc == par_doc

    def test_host_spec_key_is_spec_derived(self):
        spec = HostSpec("dcell", params={"n": 3, "level": 1})
        assert host_spec_key(spec) == f"dcell-{spec.fingerprint()}"
