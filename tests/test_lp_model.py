"""LP modelling layer: variables, constraints, feasibility checking."""

from __future__ import annotations

import math

import pytest

from repro.errors import InfeasibleLP, LPError, UnboundedLP
from repro.lp import (
    EQUAL,
    GREATER_EQUAL,
    LESS_EQUAL,
    Constraint,
    LinearProgram,
)


class TestModelBuilding:
    def test_variable_declaration(self):
        lp = LinearProgram()
        v = lp.add_variable("x", 0.0, 2.0, objective=3.0)
        assert v.index == 0
        assert lp.num_variables == 1
        assert lp.variable("x").upper == 2.0

    def test_duplicate_variable_rejected(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(LPError):
            lp.add_variable("x")

    def test_empty_domain_rejected(self):
        lp = LinearProgram()
        with pytest.raises(LPError):
            lp.add_variable("x", lower=2.0, upper=1.0)

    def test_unknown_variable_in_constraint(self):
        lp = LinearProgram()
        with pytest.raises(LPError):
            lp.add_constraint({"x": 1.0}, LESS_EQUAL, 1.0)

    def test_unknown_sense(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(LPError):
            lp.add_constraint({"x": 1.0}, "<", 1.0)

    def test_zero_coefficients_dropped(self):
        lp = LinearProgram()
        lp.add_variable("x")
        lp.add_variable("y")
        con = lp.add_constraint({"x": 1.0, "y": 0.0}, LESS_EQUAL, 1.0)
        assert "y" not in con.coeffs

    def test_unknown_variable_lookup(self):
        lp = LinearProgram()
        with pytest.raises(LPError):
            lp.variable("missing")


class TestConstraintEvaluation:
    def test_evaluate_and_satisfied(self):
        con = Constraint({"x": 2.0, "y": -1.0}, GREATER_EQUAL, 1.0)
        assert con.evaluate({"x": 1.0, "y": 0.5}) == 1.5
        assert con.satisfied({"x": 1.0, "y": 0.5})
        assert not con.satisfied({"x": 0.0, "y": 0.0})

    def test_violation_amounts(self):
        le = Constraint({"x": 1.0}, LESS_EQUAL, 1.0)
        ge = Constraint({"x": 1.0}, GREATER_EQUAL, 1.0)
        eq = Constraint({"x": 1.0}, EQUAL, 1.0)
        assert le.violation({"x": 3.0}) == 2.0
        assert le.violation({"x": 0.0}) == 0.0
        assert ge.violation({"x": 0.0}) == 1.0
        assert eq.violation({"x": 1.5}) == 0.5

    def test_missing_values_default_zero(self):
        con = Constraint({"x": 1.0}, GREATER_EQUAL, 1.0)
        assert not con.satisfied({})


class TestSolving:
    def test_simple_minimization(self):
        lp = LinearProgram()
        lp.add_variable("x", 0.0, None, objective=1.0)
        lp.add_constraint({"x": 1.0}, GREATER_EQUAL, 3.0)
        sol = lp.solve()
        assert sol.is_optimal
        assert sol.objective == pytest.approx(3.0)
        assert sol.value("x") == pytest.approx(3.0)

    def test_infeasible_raises(self):
        lp = LinearProgram()
        lp.add_variable("x", 0.0, 1.0, objective=1.0)
        lp.add_constraint({"x": 1.0}, GREATER_EQUAL, 2.0)
        with pytest.raises(InfeasibleLP):
            lp.solve()

    def test_unbounded_raises(self):
        lp = LinearProgram()
        lp.add_variable("x", 0.0, None, objective=-1.0)
        with pytest.raises(UnboundedLP):
            lp.solve(backend="scipy")

    def test_equality_constraint(self):
        lp = LinearProgram()
        lp.add_variable("x", 0.0, None, objective=1.0)
        lp.add_variable("y", 0.0, None, objective=2.0)
        lp.add_constraint({"x": 1.0, "y": 1.0}, EQUAL, 4.0)
        sol = lp.solve()
        assert sol.objective == pytest.approx(4.0)
        assert sol.value("x") == pytest.approx(4.0)

    def test_check_feasible(self):
        lp = LinearProgram()
        lp.add_variable("x", 0.0, 1.0)
        lp.add_constraint({"x": 1.0}, GREATER_EQUAL, 0.5)
        assert lp.check_feasible({"x": 0.7})
        assert not lp.check_feasible({"x": 0.3})
        assert not lp.check_feasible({"x": 1.4})

    def test_objective_value_helper(self):
        lp = LinearProgram()
        lp.add_variable("x", objective=2.0)
        lp.add_variable("y", objective=3.0)
        assert lp.objective_value({"x": 1.0, "y": 2.0}) == 8.0

    def test_unknown_backend(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(LPError):
            lp.solve(backend="gurobi")

    def test_empty_model(self):
        lp = LinearProgram()
        sol = lp.solve()
        assert sol.objective == 0.0
