"""Distributed Baswana–Sen and the Theorem 2.3 conversion."""

from __future__ import annotations

import pytest

from repro.core import is_fault_tolerant_spanner, sampled_fault_check
from repro.distributed import (
    distributed_baswana_sen,
    distributed_ft_spanner,
    shared_coin,
)
from repro.errors import DistributedError
from repro.graph import (
    Graph,
    complete_graph,
    connected_gnp_graph,
    gnp_random_graph,
    is_subgraph,
)
from repro.spanners import baswana_sen_size_bound, is_spanner


class TestSharedCoin:
    def test_deterministic(self):
        assert shared_coin("c", 1, 42, 0.5) == shared_coin("c", 1, 42, 0.5)

    def test_extremes(self):
        assert not shared_coin("c", 1, 42, 0.0)
        assert shared_coin("c", 1, 42, 1.0 - 1e-12) or True  # p<1 not forced
        # p=1 boundary: value < 1 always
        assert shared_coin("c", 1, 42, 1.0)

    def test_varies_with_phase_and_salt(self):
        draws = {shared_coin("c", phase, 42, 0.5) for phase in range(12)}
        assert draws == {True, False}


class TestDistributedBaswanaSen:
    def test_rounds_are_k_plus_one_ish(self):
        g = connected_gnp_graph(30, 0.3, seed=1)
        for k in (2, 3):
            _sp, sim = distributed_baswana_sen(g, k, seed=2)
            assert sim.rounds == k

    def test_valid_spanner_multiple_seeds(self):
        g = connected_gnp_graph(28, 0.3, seed=3)
        for seed in range(4):
            sp, _sim = distributed_baswana_sen(g, 2, seed=seed)
            assert is_subgraph(sp, g)
            assert is_spanner(sp, g, 3)

    def test_valid_5_spanner(self):
        g = connected_gnp_graph(30, 0.4, seed=5)
        sp, _sim = distributed_baswana_sen(g, 3, seed=6)
        assert is_spanner(sp, g, 5)

    def test_weighted_graphs(self):
        g = gnp_random_graph(24, 0.4, seed=7, weight_range=(0.5, 3.0))
        sp, _sim = distributed_baswana_sen(g, 2, seed=8)
        assert is_spanner(sp, g, 3)

    def test_size_comparable_to_centralized_bound(self):
        g = complete_graph(36)
        sp, _sim = distributed_baswana_sen(g, 2, seed=9)
        assert sp.num_edges <= 8 * baswana_sen_size_bound(36, 2)

    def test_k1_returns_graph(self):
        g = complete_graph(5)
        sp, sim = distributed_baswana_sen(g, 1, seed=1)
        assert sp.num_edges == g.num_edges
        assert sim.rounds == 0

    def test_rejects_directed(self, small_digraph):
        with pytest.raises(DistributedError):
            distributed_baswana_sen(small_digraph, 2)

    def test_empty_graph(self):
        sp, sim = distributed_baswana_sen(Graph(), 2)
        assert sp.num_vertices == 0


class TestDistributedFTConversion:
    def test_valid_ft_spanner_r1(self):
        g = connected_gnp_graph(12, 0.5, seed=10)
        result = distributed_ft_spanner(g, 2, r=1, seed=11)
        assert is_fault_tolerant_spanner(result.spanner, g, 3, 1)
        assert result.total_rounds >= result.iterations  # >= 1 round each

    def test_round_accounting_scales_with_iterations(self):
        g = connected_gnp_graph(12, 0.5, seed=12)
        a = distributed_ft_spanner(g, 2, r=1, iterations=5, seed=13)
        b = distributed_ft_spanner(g, 2, r=1, iterations=10, seed=13)
        assert a.iterations == 5 and b.iterations == 10
        assert b.total_rounds > a.total_rounds

    def test_r0_single_run(self):
        g = connected_gnp_graph(14, 0.4, seed=14)
        result = distributed_ft_spanner(g, 2, r=0, seed=15)
        assert result.iterations == 1
        assert is_spanner(result.spanner, g, 3)

    def test_larger_r_sampled_check(self):
        g = connected_gnp_graph(16, 0.45, seed=16)
        result = distributed_ft_spanner(g, 2, r=2, schedule="theorem", seed=17)
        assert sampled_fault_check(result.spanner, g, 3, 2, trials=60, seed=18)

    def test_rejects_bad_r(self):
        g = complete_graph(4)
        with pytest.raises(DistributedError):
            distributed_ft_spanner(g, 2, r=-1)


class TestSimulatorMethodDispatch:
    """The engine path of every LOCAL consumer is pinned to the dict path."""

    @staticmethod
    def _edges(graph):
        return sorted(map(tuple, graph.edges()))

    def test_baswana_sen_engine_identical(self):
        g = connected_gnp_graph(60, 0.12, seed=20)
        for k in (2, 3):
            sp_d, sim_d = distributed_baswana_sen(g, k, seed=21, method="dict")
            sp_c, sim_c = distributed_baswana_sen(g, k, seed=21, method="csr")
            assert self._edges(sp_d) == self._edges(sp_c)
            assert (sim_d.rounds, sim_d.messages_sent) == (
                sim_c.rounds, sim_c.messages_sent
            )

    def test_ft_conversion_engine_identical(self):
        g = connected_gnp_graph(52, 0.15, seed=22)
        a = distributed_ft_spanner(g, 2, r=1, iterations=4, seed=23, method="dict")
        b = distributed_ft_spanner(g, 2, r=1, iterations=4, seed=23, method="csr")
        assert self._edges(a.spanner) == self._edges(b.spanner)
        assert (a.total_rounds, a.total_messages, a.survivor_sizes) == (
            b.total_rounds, b.total_messages, b.survivor_sizes
        )

    def test_method_threads_through_session(self):
        from repro import FaultModel, Session, SpannerSpec

        g = connected_gnp_graph(50, 0.15, seed=24)
        session = Session()
        reports = {
            method: session.build(
                SpannerSpec(
                    "distributed-ft", stretch=3, faults=FaultModel.vertex(1),
                    seed=25, params={"iterations": 3}, method=method,
                ),
                graph=g,
            )
            for method in ("dict", "csr")
        }
        assert reports["dict"].resolved_method == "dict"
        assert reports["csr"].resolved_method == "csr"
        assert reports["dict"].stats == reports["csr"].stats
        assert self._edges(reports["dict"].spanner) == self._edges(
            reports["csr"].spanner
        )
