"""Seeded-randomness helpers."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng import (
    bernoulli,
    derive_rng,
    ensure_rng,
    geometric,
    sample_subset,
    spawn_streams,
)


class TestEnsureRng:
    def test_int_seed_deterministic(self):
        a = ensure_rng(42)
        b = ensure_rng(42)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_rng_passthrough(self):
        rng = random.Random(1)
        assert ensure_rng(rng) is rng

    def test_none_gives_fresh(self):
        assert isinstance(ensure_rng(None), random.Random)

    def test_rejects_bad_types(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")
        with pytest.raises(TypeError):
            ensure_rng(True)


class TestDerive:
    def test_children_differ_by_index(self):
        parent1 = ensure_rng(5)
        parent2 = ensure_rng(5)
        a = derive_rng(parent1, 0)
        b = derive_rng(parent2, 1)
        assert a.random() != b.random()

    def test_deterministic_given_parent_state(self):
        a = derive_rng(ensure_rng(7), 3)
        b = derive_rng(ensure_rng(7), 3)
        assert a.random() == b.random()

    def test_spawn_streams(self):
        streams = spawn_streams(9, 4)
        assert len(streams) == 4
        draws = [s.random() for s in streams]
        assert len(set(draws)) == 4

    def test_spawn_negative_count(self):
        with pytest.raises(ValueError):
            spawn_streams(0, -1)


class TestDistributions:
    def test_geometric_support(self):
        rng = ensure_rng(1)
        draws = [geometric(rng, 0.5) for _ in range(200)]
        assert all(d >= 1 for d in draws)
        assert max(d for d in draws) > 1  # not degenerate

    def test_geometric_p_one(self):
        assert geometric(ensure_rng(1), 1.0) == 1

    def test_geometric_invalid_p(self):
        with pytest.raises(ValueError):
            geometric(ensure_rng(1), 0.0)
        with pytest.raises(ValueError):
            geometric(ensure_rng(1), 1.5)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_geometric_mean_close_to_inverse_p(self, seed):
        rng = ensure_rng(seed)
        p = 0.25
        draws = [geometric(rng, p) for _ in range(3000)]
        mean = sum(draws) / len(draws)
        assert mean == pytest.approx(1 / p, rel=0.15)

    def test_bernoulli_extremes(self):
        rng = ensure_rng(1)
        assert not bernoulli(rng, 0.0)
        assert bernoulli(rng, 1.0)
        with pytest.raises(ValueError):
            bernoulli(rng, -0.1)

    def test_sample_subset(self):
        rng = ensure_rng(4)
        everything = sample_subset(rng, range(10), 1.0)
        nothing = sample_subset(rng, range(10), 0.0)
        assert everything == set(range(10))
        assert nothing == set()
