"""The spec layer: round-trips, validation errors, registry metadata."""

from __future__ import annotations

import json
import random

import pytest

from repro import ReproError
from repro.errors import InvalidSpec, RegistryError, SpecError, UnknownAlgorithm
from repro.graph import Graph, complete_graph
from repro.registry import (
    available_algorithms,
    describe_algorithms,
    get_algorithm,
    register_algorithm,
)
from repro.spec import (
    BuildReport,
    FaultModel,
    SpannerSpec,
    require_fault_kind,
    require_stretch,
    stretch_to_levels,
)


def _random_spec(rng: random.Random) -> SpannerSpec:
    """A random (valid) spec over the registered algorithm names."""
    kind = rng.choice(["none", "vertex", "edge"])
    faults = FaultModel(kind, 0 if kind == "none" else rng.randint(0, 4))
    params = rng.choice(
        [
            {},
            {"schedule": "light", "constant": 2.0},
            {"iterations": rng.randint(1, 50)},
            {"note": "free-form", "flag": True, "nested": {"a": [1, 2, 3]}},
        ]
    )
    return SpannerSpec(
        algorithm=rng.choice(available_algorithms()),
        stretch=rng.choice([1, 2, 3, 3.5, 5, 7]),
        faults=faults,
        method=rng.choice(["auto", "csr", "dict"]),
        seed=rng.choice([None, 0, rng.randint(-100, 10_000)]),
        params=params,
    )


class TestRoundTrip:
    def test_dict_round_trip_property(self):
        """from_dict(to_dict(spec)) == spec across 200 random specs."""
        rng = random.Random(1234)
        for _ in range(200):
            spec = _random_spec(rng)
            assert SpannerSpec.from_dict(spec.to_dict()) == spec

    def test_json_text_round_trip_property(self):
        rng = random.Random(99)
        for _ in range(50):
            spec = _random_spec(rng)
            again = SpannerSpec.from_json(spec.to_json())
            assert again == spec
            # Canonical text is itself stable under a second round trip.
            assert again.to_json() == spec.to_json()

    def test_inline_graph_round_trip(self):
        g = Graph()
        g.add_edge("a", "b", 2.0)
        g.add_edge("b", ("rack", 3), 1.5)
        spec = SpannerSpec("greedy", stretch=3, graph=g)
        again = SpannerSpec.from_dict(spec.to_dict())
        assert sorted(again.graph.edges()) == sorted(g.edges())

    def test_path_graph_binding_survives(self):
        spec = SpannerSpec("greedy", stretch=3, graph="some/host.json")
        assert SpannerSpec.from_dict(spec.to_dict()).graph == "some/host.json"

    def test_save_load(self, tmp_path):
        path = str(tmp_path / "spec.json")
        spec = SpannerSpec(
            "theorem21", stretch=3, faults=FaultModel.vertex(2), seed=7,
            params={"schedule": "light"},
        )
        spec.save(path)
        assert SpannerSpec.load(path) == spec

    def test_fingerprint_stable_and_sensitive(self):
        a = SpannerSpec("greedy", stretch=3, seed=1)
        b = SpannerSpec("greedy", stretch=3, seed=1)
        c = SpannerSpec("greedy", stretch=3, seed=2)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()
        # The graph binding is execution detail, not problem identity.
        bound = SpannerSpec("greedy", stretch=3, seed=1, graph="x.json")
        assert bound.fingerprint() == a.fingerprint()

    def test_replace_revalidates(self):
        spec = SpannerSpec("greedy", stretch=3)
        assert spec.replace(stretch=5).stretch == 5
        with pytest.raises(InvalidSpec):
            spec.replace(stretch=0.5)


class TestValidation:
    """Invalid specs raise ReproError subclasses with actionable messages."""

    @pytest.mark.parametrize(
        "kwargs,needle",
        [
            ({"algorithm": ""}, "algorithm"),
            ({"algorithm": 3}, "algorithm"),
            ({"stretch": 0.5}, "stretch"),
            ({"stretch": "three"}, "stretch"),
            ({"method": "gpu"}, "method"),
            ({"seed": 1.5}, "seed"),
            ({"seed": True}, "seed"),
            ({"faults": "vertex"}, "FaultModel"),
            ({"params": {"fn": len}}, "JSON"),
            ({"params": {1: "x"}}, "params keys"),
            ({"graph": 42}, "graph"),
        ],
    )
    def test_invalid_fields(self, kwargs, needle):
        base = dict(algorithm="greedy", stretch=3)
        base.update(kwargs)
        with pytest.raises(InvalidSpec) as excinfo:
            SpannerSpec(**base)
        assert needle in str(excinfo.value)
        assert isinstance(excinfo.value, ReproError)

    @pytest.mark.parametrize(
        "kind,r,needle",
        [
            ("node", 1, "kind"),
            ("vertex", -1, ">= 0"),
            ("vertex", 1.5, "int"),
            ("none", 2, "r=0"),
        ],
    )
    def test_invalid_fault_models(self, kind, r, needle):
        with pytest.raises(InvalidSpec) as excinfo:
            FaultModel(kind, r)
        assert needle in str(excinfo.value)

    def test_from_dict_rejects_unknown_keys(self):
        doc = SpannerSpec("greedy", stretch=3).to_dict()
        doc["stretchh"] = 5
        with pytest.raises(InvalidSpec) as excinfo:
            SpannerSpec.from_dict(doc)
        assert "stretchh" in str(excinfo.value)

    def test_from_dict_rejects_wrong_format_and_version(self):
        with pytest.raises(InvalidSpec):
            SpannerSpec.from_dict({"format": "not-a-spec", "algorithm": "greedy"})
        doc = SpannerSpec("greedy", stretch=3).to_dict()
        doc["version"] = 999
        with pytest.raises(InvalidSpec):
            SpannerSpec.from_dict(doc)

    def test_from_dict_requires_algorithm(self):
        with pytest.raises(InvalidSpec) as excinfo:
            SpannerSpec.from_dict({"format": "repro-spec", "version": 1})
        assert "algorithm" in str(excinfo.value)

    def test_from_json_rejects_malformed_text(self):
        with pytest.raises(InvalidSpec):
            SpannerSpec.from_json("{not json")

    def test_error_hierarchy(self):
        assert issubclass(InvalidSpec, SpecError)
        assert issubclass(UnknownAlgorithm, RegistryError)
        assert issubclass(SpecError, ReproError)

    def test_stretch_helpers(self):
        spec = SpannerSpec("baswana-sen", stretch=5)
        assert stretch_to_levels(spec) == 3
        with pytest.raises(InvalidSpec) as excinfo:
            stretch_to_levels(SpannerSpec("baswana-sen", stretch=4))
        assert "odd integer" in str(excinfo.value)
        with pytest.raises(InvalidSpec):
            require_stretch(SpannerSpec("ft2-approx", stretch=3), 2)
        with pytest.raises(InvalidSpec) as excinfo:
            require_fault_kind(
                SpannerSpec("theorem21", stretch=3, faults=FaultModel.edge(1)),
                "vertex", "none",
            )
        assert "edge" in str(excinfo.value)

    def test_params_are_copied_not_aliased(self):
        knobs = {"schedule": "light"}
        spec = SpannerSpec("theorem21", stretch=3, params=knobs)
        knobs["schedule"] = "theorem"
        assert spec.param("schedule") == "light"

    def test_params_are_read_only(self):
        """Frozen means frozen: params cannot drift after validation."""
        spec = SpannerSpec("theorem21", stretch=3, params={"schedule": "light"})
        fingerprint = spec.fingerprint()
        with pytest.raises(TypeError):
            spec.params["schedule"] = "theorem"
        with pytest.raises(TypeError):
            spec.params["new_key"] = object()
        assert spec.fingerprint() == fingerprint


class TestRegistry:
    def test_expected_algorithms_present(self):
        names = available_algorithms()
        assert names == tuple(sorted(names))
        for expected in (
            "greedy", "baswana-sen", "thorup-zwick", "tz-oracle",
            "theorem21", "theorem21-edge", "clpr09", "ft2-approx",
            "dk10-baseline", "distributed-ft", "distributed-ft2",
        ):
            assert expected in names

    def test_unknown_algorithm_lists_available(self):
        with pytest.raises(UnknownAlgorithm) as excinfo:
            get_algorithm("dijkstra-spanner")
        message = str(excinfo.value)
        assert "dijkstra-spanner" in message
        assert "greedy" in message  # actionable: names what exists

    def test_capability_rows_are_json_able(self):
        rows = describe_algorithms()
        assert len(rows) == len(available_algorithms())
        json.dumps(rows)  # must not raise
        for row in rows:
            assert set(row) == {
                "name", "summary", "stretch_domain", "weighted", "directed",
                "fault_tolerant", "distributed", "csr_path", "compiled_path",
                "fault_kinds", "stretch_kind", "fixed_stretch",
            }

    def test_capability_flags_match_paper_structure(self):
        assert get_algorithm("theorem21").fault_tolerant
        assert not get_algorithm("greedy").fault_tolerant
        assert get_algorithm("distributed-ft").distributed
        assert get_algorithm("ft2-approx").directed
        assert not get_algorithm("baswana-sen").directed

    def test_duplicate_registration_rejected(self):
        with pytest.raises(RegistryError):
            register_algorithm(
                "greedy", summary="dup", stretch_domain="any"
            )(lambda graph, spec, seed: (graph, {}))

    def test_bad_name_rejected(self):
        with pytest.raises(RegistryError):
            register_algorithm("", summary="x", stretch_domain="y")


class TestBuildReport:
    def test_report_round_trip(self):
        g = complete_graph(5)
        spec = SpannerSpec("greedy", stretch=3, seed=1)
        report = BuildReport(
            spec=spec,
            artifact=g,
            size=g.num_edges,
            resolved_method="dict",
            resolved_seed=1,
            rng_fingerprint="abc123",
            wall_time_s=0.5,
            stats={"iterations": 3},
        )
        doc = report.to_dict(include_spanner=True, include_timing=True)
        again = BuildReport.from_dict(doc)
        assert again.spec == spec
        assert again.size == report.size
        assert sorted(again.spanner.edges()) == sorted(g.edges())
        assert again.stats == {"iterations": 3}

    def test_to_dict_is_deterministic_without_timing(self):
        g = complete_graph(4)
        spec = SpannerSpec("greedy", stretch=3, seed=1)
        a = BuildReport(spec, g, g.num_edges, "dict", 1, "fp", 0.123, {})
        b = BuildReport(spec, g, g.num_edges, "dict", 1, "fp", 9.876, {})
        assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
            b.to_dict(), sort_keys=True
        )
