"""The compiled (C backend) dispatch tier: equivalence and fallback.

The contract mirrors the CSR tier's (``tests/test_algorithms_csr.py``)
but is stricter where it can be: the compiled greedy kernel replays the
indexed kernel's float operations exactly, so chosen edge-id lists are
pinned *identical* — not merely equal as sets — and the compiled simplex
loop replays ``_Tableau.run``'s pivot decisions, so bases, tableaus and
solution vectors are pinned bit-identical on the integer-structured LPs
hypothesis generates here.

Fallback behaviour is tested in subprocesses with
``REPRO_DISABLE_COMPILED=1``: ``method="auto"`` must silently serve the
interpreted tiers, and ``method="compiled"`` must raise
:class:`repro.errors.CompiledBackendUnavailable` with an actionable
message. Those tests run everywhere — including the CI leg that has no
backend at all.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.compiled import ENV_DISABLE, compiled_available, compiled_unavailable_reason
from repro.core.conversion import fault_tolerant_spanner
from repro.core.edge_faults import edge_fault_tolerant_spanner
from repro.graph import Graph, connected_gnp_graph, csr_snapshot, gnp_random_graph
from repro.graph.csr import resolve_method
from repro.graph.scenario import FaultScenario
from repro.lp.simplex import _DUAL_TOL, solve_standard_form
from repro.spanners import greedy_spanner

needs_backend = pytest.mark.skipif(
    not compiled_available(),
    reason=f"compiled backend unavailable: {compiled_unavailable_reason()}",
)


def edge_set(graph):
    return sorted(map(tuple, graph.edges()))


def weighted(seed, n=55, p=0.18):
    return gnp_random_graph(n, p, seed=seed, weight_range=(0.5, 3.0))


def unit(seed, n=50, p=0.15):
    return connected_gnp_graph(n, p, seed=seed)


# ---------------------------------------------------------------------------
# Greedy: compiled vs dict (the pinned reference)
# ---------------------------------------------------------------------------


@needs_backend
class TestGreedyEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 5000), k=st.sampled_from([1.5, 3.0, 5.0]))
    def test_weighted_matches_dict(self, seed, k):
        graph = weighted(seed)
        fast = greedy_spanner(graph, k, method="compiled")
        slow = greedy_spanner(graph, k, method="dict")
        assert edge_set(fast) == edge_set(slow)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 5000), k=st.sampled_from([3.0, 5.0]))
    def test_unweighted_matches_dict(self, seed, k):
        graph = unit(seed)
        fast = greedy_spanner(graph, k, method="compiled")
        slow = greedy_spanner(graph, k, method="dict")
        assert edge_set(fast) == edge_set(slow)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_indexed_and_compiled_pick_identical_ids(self, seed):
        """Stronger than edge-set equality: identical pick order."""
        from repro.compiled.greedy import CompiledGreedyKernel
        from repro.spanners.greedy import IndexedGreedyKernel

        graph = weighted(seed, n=40)
        csr = csr_snapshot(graph)
        ids = sorted(range(len(csr.edge_w)), key=csr.edge_w.__getitem__)
        args = (ids, csr.edge_u, csr.edge_v, csr.edge_w, 3.0)
        py = IndexedGreedyKernel(csr.num_vertices, csr.directed)
        cc = CompiledGreedyKernel(csr.num_vertices, csr.directed)
        assert cc.run_edge_ids(*args) == py.run_edge_ids(*args)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 5000), p_alive=st.sampled_from([0.3, 0.6, 0.9]))
    def test_masked_survivor_view_matches_indexed(self, seed, p_alive):
        """SurvivorView iterations feed pre-filtered ids to the kernel —
        the compiled path must pick the same ids on every mask."""
        import random

        from repro.compiled.greedy import CompiledGreedyKernel
        from repro.spanners.greedy import IndexedGreedyKernel

        graph = weighted(seed, n=45)
        csr = csr_snapshot(graph)
        ids = np.asarray(
            sorted(range(len(csr.edge_w)), key=csr.edge_w.__getitem__),
            dtype=np.int64,
        )
        rng = random.Random(seed)
        py = IndexedGreedyKernel(csr.num_vertices, csr.directed)
        cc = CompiledGreedyKernel(csr.num_vertices, csr.directed)
        for _ in range(4):
            alive = [rng.random() < p_alive for _ in csr.verts]
            surviving = csr.survivor_view(alive).filter_edge_ids(ids)
            args = (surviving, csr.edge_u, csr.edge_v, csr.edge_w, 3.0)
            assert cc.run_edge_ids(*args) == py.run_edge_ids(*args)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2000), r=st.sampled_from([1, 2]))
    def test_conversion_matches_dict_pipeline(self, seed, r):
        """Same seed, same RNG stream, same union spanner end-to-end."""
        graph = weighted(seed, n=40)
        fast = fault_tolerant_spanner(
            graph, 3.0, r, seed=seed, iterations=10, method="compiled"
        )
        slow = fault_tolerant_spanner(
            graph, 3.0, r, seed=seed, iterations=10, method="dict"
        )
        assert edge_set(fast.spanner) == edge_set(slow.spanner)
        assert fast.stats.survivor_sizes == slow.stats.survivor_sizes

    def test_edge_fault_scenarios_match_dict_pipeline(self):
        graph = weighted(11, n=40)
        scenarios = [
            FaultScenario.edge([(u, v)])
            for u, v, _w in list(graph.edges())[:6]
        ]
        fast = edge_fault_tolerant_spanner(
            graph, 3.0, 1, scenarios=scenarios, method="compiled"
        )
        slow = edge_fault_tolerant_spanner(
            graph, 3.0, 1, scenarios=scenarios, method="dict"
        )
        assert edge_set(fast.spanner) == edge_set(slow.spanner)


# ---------------------------------------------------------------------------
# Simplex: compiled vs the reference python pivot loop
# ---------------------------------------------------------------------------


def _random_feasible_lp(rng, m, n):
    """A standard-form LP that is feasible by construction (b = A @ x0)."""
    a = rng.integers(-4, 5, size=(m, n)).astype(float)
    x0 = rng.integers(0, 4, size=n).astype(float)
    b = a @ x0
    c = rng.integers(-3, 4, size=n).astype(float)
    return a, b, c


@needs_backend
class TestSimplexEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_random_feasible_lps_pin_value_and_basis(self, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(1, 10))
        n = m + int(rng.integers(1, 12))
        a, b, c = _random_feasible_lp(rng, m, n)
        s_cc, x_cc, obj_cc = solve_standard_form(a, b, c, method="compiled")
        s_py, x_py, obj_py = solve_standard_form(a, b, c, method="dict")
        assert s_cc == s_py
        if s_py == "optimal":
            # Integer data keeps every intermediate exactly representable,
            # so the two pivot loops make identical decisions and the
            # solutions (hence the optimal bases) are bit-identical.
            assert np.array_equal(x_cc, x_py)
            assert obj_cc == obj_py

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_float_lps_agree_on_value(self, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(1, 8))
        n = m + int(rng.integers(1, 10))
        a = np.round(rng.uniform(-3, 3, size=(m, n)), 3)
        x0 = np.round(rng.uniform(0, 2, size=n), 3)
        b = a @ x0
        c = np.round(rng.uniform(-2, 2, size=n), 3)
        s_cc, x_cc, obj_cc = solve_standard_form(a, b, c, method="compiled")
        s_py, x_py, obj_py = solve_standard_form(a, b, c, method="dict")
        assert s_cc == s_py
        if s_py == "optimal":
            assert obj_cc == pytest.approx(obj_py, abs=1e-6)
            assert np.allclose(x_cc, x_py, atol=1e-6)

    def test_infeasible_and_unbounded_verdicts_match(self):
        # x1 + x2 = -1 is infeasible for x >= 0 after the b-flip:
        a = np.array([[1.0, 1.0]])
        b = np.array([-1.0])
        c = np.array([1.0, 1.0])
        assert solve_standard_form(a, b, c, method="compiled")[0] == "infeasible"
        # minimize -x1 with a free ray: x1 - x2 = 0 lets x1 grow forever.
        a = np.array([[1.0, -1.0]])
        b = np.array([0.0])
        c = np.array([-1.0, 0.0])
        assert solve_standard_form(a, b, c, method="compiled")[0] == "unbounded"
        assert solve_standard_form(a, b, c, method="dict")[0] == "unbounded"

    def test_tolerance_constants_thread_through(self):
        # A cost at the dual tolerance is cleaned to zero on both paths.
        a = np.array([[1.0, 1.0]])
        b = np.array([1.0])
        c = np.array([_DUAL_TOL / 2, 0.0])
        s_cc, x_cc, obj_cc = solve_standard_form(a, b, c, method="compiled")
        s_py, x_py, obj_py = solve_standard_form(a, b, c, method="dict")
        assert (s_cc, obj_cc) == (s_py, obj_py)
        assert np.array_equal(x_cc, x_py)


# ---------------------------------------------------------------------------
# Dispatch surface: resolve_method, errors, no-backend fallback
# ---------------------------------------------------------------------------


class TestDispatchSurface:
    def test_resolve_method_error_names_all_four_tiers(self):
        with pytest.raises(ValueError) as err:
            resolve_method("fast", 100)
        message = str(err.value)
        for tier in ("auto", "csr", "dict", "compiled"):
            assert tier in message

    def test_compiled_requires_a_compiled_path(self):
        with pytest.raises(ValueError, match="no compiled kernel"):
            resolve_method("compiled", 100, compiled_path=False)

    @needs_backend
    def test_auto_prefers_compiled_only_with_a_compiled_path(self):
        assert resolve_method("auto", 100, compiled_path=True) == "compiled"
        assert resolve_method("auto", 100, compiled_path=False) == "csr"
        assert resolve_method("auto", 10, compiled_path=True) == "dict"

    @needs_backend
    def test_undirected_only_pipelines_reject_compiled_on_digraphs(self):
        with pytest.raises(ValueError, match="undirected-only"):
            resolve_method(
                "compiled", 100, directed=True, directed_csr=False,
                compiled_path=True,
            )

    @needs_backend
    def test_available_backend_reports_no_reason(self):
        assert compiled_unavailable_reason() is None


def _run_in_subprocess(code: str) -> subprocess.CompletedProcess:
    """Run ``code`` in a fresh interpreter with the backend disabled."""
    env = dict(os.environ)
    env[ENV_DISABLE] = "1"
    root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = root + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True, text=True
    )


class TestNoBackendFallback:
    def test_auto_falls_back_silently(self):
        proc = _run_in_subprocess(
            "from repro.compiled import compiled_available\n"
            "assert not compiled_available()\n"
            "from repro.graph import connected_gnp_graph\n"
            "from repro.spanners import greedy_spanner\n"
            "from repro.lp.simplex import solve_standard_form\n"
            "import numpy as np\n"
            "g = connected_gnp_graph(30, 0.2, seed=1)\n"
            "s = greedy_spanner(g, 3.0, method='auto')\n"
            "assert s.num_edges > 0\n"
            "status, x, obj = solve_standard_form(\n"
            "    np.array([[1.0, 1.0]]), np.array([2.0]),\n"
            "    np.array([-1.0, 0.0]), method='auto')\n"
            "assert status == 'optimal'\n"
            "print('fallback-ok')\n"
        )
        assert proc.returncode == 0, proc.stderr
        assert "fallback-ok" in proc.stdout

    def test_explicit_compiled_raises_actionable_error(self):
        proc = _run_in_subprocess(
            "from repro.errors import CompiledBackendUnavailable\n"
            "from repro.graph import connected_gnp_graph\n"
            "from repro.spanners import greedy_spanner\n"
            "g = connected_gnp_graph(30, 0.2, seed=1)\n"
            "try:\n"
            "    greedy_spanner(g, 3.0, method='compiled')\n"
            "except CompiledBackendUnavailable as exc:\n"
            "    assert 'REPRO_DISABLE_COMPILED' in str(exc)\n"
            "    assert 'auto' in str(exc)\n"
            "    print('raise-ok')\n"
        )
        assert proc.returncode == 0, proc.stderr
        assert "raise-ok" in proc.stdout

    def test_session_auto_resolves_interpreted_tiers(self):
        proc = _run_in_subprocess(
            "from repro.graph import complete_graph\n"
            "from repro.session import Session\n"
            "from repro.spec import SpannerSpec\n"
            "report = Session().build(\n"
            "    SpannerSpec('greedy', stretch=3), graph=complete_graph(10))\n"
            "assert report.resolved_method == 'indexed', report.resolved_method\n"
            "print('session-ok')\n"
        )
        assert proc.returncode == 0, proc.stderr
        assert "session-ok" in proc.stdout
