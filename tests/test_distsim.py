"""The LOCAL-model simulator: delivery semantics, halting, accounting."""

from __future__ import annotations

import pytest

from repro.distsim import NodeAlgorithm, Simulation, run_algorithm
from repro.errors import DistributedError, ProtocolViolation
from repro.graph import Graph, complete_graph, path_graph


class Echo(NodeAlgorithm):
    """Round 1: everyone halts, reporting messages seen."""

    def on_start(self, ctx):
        ctx.broadcast(("hello", ctx.node))

    def on_round(self, ctx, inbox):
        ctx.halt(result=sorted(sender for sender in inbox))


class HopCounter(NodeAlgorithm):
    """Floods a token from node 0; each node halts with its hop distance."""

    def on_start(self, ctx):
        ctx.state["dist"] = None
        if ctx.node == 0:
            ctx.state["dist"] = 0
            ctx.broadcast(1)

    def on_round(self, ctx, inbox):
        if ctx.state["dist"] is not None:
            ctx.halt(result=ctx.state["dist"])
            return
        if inbox:
            d = min(inbox.values())
            ctx.state["dist"] = d
            ctx.broadcast(d + 1)


class TestSimulator:
    def test_neighbors_hear_broadcast(self):
        g = path_graph(3)
        result = run_algorithm(g, lambda v: Echo())
        assert result.results[0] == [1]
        assert result.results[1] == [0, 2]
        assert result.rounds == 1

    def test_message_count(self):
        g = complete_graph(4)
        result = run_algorithm(g, lambda v: Echo())
        # 4 nodes broadcast to 3 neighbours each in round 0.
        assert result.messages_sent == 12

    def test_hop_counting_matches_bfs(self):
        g = path_graph(5)
        result = run_algorithm(g, lambda v: HopCounter())
        assert result.results == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}
        # node at distance d halts in round d+1
        assert result.rounds == 5

    def test_rejects_directed_graph(self):
        from repro.graph import DiGraph

        g = DiGraph()
        g.add_edge(1, 2)
        with pytest.raises(DistributedError):
            Simulation(g, lambda v: Echo())

    def test_max_rounds_guard(self):
        class Forever(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                pass  # never halts

        with pytest.raises(DistributedError):
            run_algorithm(path_graph(2), lambda v: Forever(), max_rounds=5)


class TestProtocolEnforcement:
    def test_send_to_non_neighbor_rejected(self):
        class Bad(NodeAlgorithm):
            def on_start(self, ctx):
                ctx.send("nowhere", "boom")

            def on_round(self, ctx, inbox):
                ctx.halt()

        with pytest.raises(ProtocolViolation):
            run_algorithm(path_graph(2), lambda v: Bad())

    def test_double_send_rejected(self):
        class Chatty(NodeAlgorithm):
            def on_start(self, ctx):
                for n in ctx.neighbors:
                    ctx.send(n, 1)
                    ctx.send(n, 2)

            def on_round(self, ctx, inbox):
                ctx.halt()

        with pytest.raises(ProtocolViolation):
            run_algorithm(path_graph(2), lambda v: Chatty())

    def test_halted_nodes_stop_processing(self):
        class HaltFirst(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                ctx.state["rounds_seen"] = ctx.state.get("rounds_seen", 0) + 1
                ctx.halt(result=ctx.state["rounds_seen"])

        result = run_algorithm(path_graph(3), lambda v: HaltFirst())
        assert all(v == 1 for v in result.results.values())

    def test_node_rngs_are_independent(self):
        class Draw(NodeAlgorithm):
            def on_start(self, ctx):
                pass

            def on_round(self, ctx, inbox):
                ctx.halt(result=ctx.rng.random())

        result = run_algorithm(complete_graph(5), lambda v: Draw(), seed=3)
        draws = list(result.results.values())
        assert len(set(draws)) == len(draws)

    def test_seeded_simulation_deterministic(self):
        class Draw(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                ctx.halt(result=ctx.rng.random())

        a = run_algorithm(complete_graph(4), lambda v: Draw(), seed=9)
        b = run_algorithm(complete_graph(4), lambda v: Draw(), seed=9)
        assert a.results == b.results
