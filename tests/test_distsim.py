"""The LOCAL-model simulator: delivery semantics, halting, accounting.

Both execution paths are covered: the reference dict loop and the
array-backed round engine (``method="csr"``), which must be output-,
trace-, and RNG-stream-identical to it on every seeded run.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys

import pytest

from repro.distsim import (
    NodeAlgorithm,
    Simulation,
    SimulationTracer,
    communication_graph,
    run_algorithm,
)
from repro.errors import DistributedError, ProtocolViolation
from repro.graph import (
    DiGraph,
    Graph,
    complete_graph,
    connected_gnp_graph,
    path_graph,
)


class Echo(NodeAlgorithm):
    """Round 1: everyone halts, reporting messages seen."""

    def on_start(self, ctx):
        ctx.broadcast(("hello", ctx.node))

    def on_round(self, ctx, inbox):
        ctx.halt(result=sorted(sender for sender in inbox))


class HopCounter(NodeAlgorithm):
    """Floods a token from node 0; each node halts with its hop distance."""

    def on_start(self, ctx):
        ctx.state["dist"] = None
        if ctx.node == 0:
            ctx.state["dist"] = 0
            ctx.broadcast(1)

    def on_round(self, ctx, inbox):
        if ctx.state["dist"] is not None:
            ctx.halt(result=ctx.state["dist"])
            return
        if inbox:
            d = min(inbox.values())
            ctx.state["dist"] = d
            ctx.broadcast(d + 1)


class TestSimulator:
    def test_neighbors_hear_broadcast(self):
        g = path_graph(3)
        result = run_algorithm(g, lambda v: Echo())
        assert result.results[0] == [1]
        assert result.results[1] == [0, 2]
        assert result.rounds == 1

    def test_message_count(self):
        g = complete_graph(4)
        result = run_algorithm(g, lambda v: Echo())
        # 4 nodes broadcast to 3 neighbours each in round 0.
        assert result.messages_sent == 12

    def test_hop_counting_matches_bfs(self):
        g = path_graph(5)
        result = run_algorithm(g, lambda v: HopCounter())
        assert result.results == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}
        # node at distance d halts in round d+1
        assert result.rounds == 5

    def test_rejects_directed_graph(self):
        from repro.graph import DiGraph

        g = DiGraph()
        g.add_edge(1, 2)
        with pytest.raises(DistributedError):
            Simulation(g, lambda v: Echo())

    def test_max_rounds_guard(self):
        class Forever(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                pass  # never halts

        with pytest.raises(DistributedError):
            run_algorithm(path_graph(2), lambda v: Forever(), max_rounds=5)


class TestProtocolEnforcement:
    def test_send_to_non_neighbor_rejected(self):
        class Bad(NodeAlgorithm):
            def on_start(self, ctx):
                ctx.send("nowhere", "boom")

            def on_round(self, ctx, inbox):
                ctx.halt()

        with pytest.raises(ProtocolViolation):
            run_algorithm(path_graph(2), lambda v: Bad())

    def test_double_send_rejected(self):
        class Chatty(NodeAlgorithm):
            def on_start(self, ctx):
                for n in ctx.neighbors:
                    ctx.send(n, 1)
                    ctx.send(n, 2)

            def on_round(self, ctx, inbox):
                ctx.halt()

        with pytest.raises(ProtocolViolation):
            run_algorithm(path_graph(2), lambda v: Chatty())

    def test_halted_nodes_stop_processing(self):
        class HaltFirst(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                ctx.state["rounds_seen"] = ctx.state.get("rounds_seen", 0) + 1
                ctx.halt(result=ctx.state["rounds_seen"])

        result = run_algorithm(path_graph(3), lambda v: HaltFirst())
        assert all(v == 1 for v in result.results.values())

    def test_node_rngs_are_independent(self):
        class Draw(NodeAlgorithm):
            def on_start(self, ctx):
                pass

            def on_round(self, ctx, inbox):
                ctx.halt(result=ctx.rng.random())

        result = run_algorithm(complete_graph(5), lambda v: Draw(), seed=3)
        draws = list(result.results.values())
        assert len(set(draws)) == len(draws)

    def test_seeded_simulation_deterministic(self):
        class Draw(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                ctx.halt(result=ctx.rng.random())

        a = run_algorithm(complete_graph(4), lambda v: Draw(), seed=9)
        b = run_algorithm(complete_graph(4), lambda v: Draw(), seed=9)
        assert a.results == b.results


class RandomizedFlood(NodeAlgorithm):
    """Exercises rng draws, state, selective sends, and mid-run halts."""

    def on_start(self, ctx):
        ctx.state["token"] = ctx.rng.random()
        ctx.state["seen"] = []
        if ctx.neighbors:
            ctx.send(ctx.neighbors[0], ("seed", ctx.state["token"]))

    def on_round(self, ctx, inbox):
        for sender, content in inbox.items():
            ctx.state["seen"].append((sender, content))
        if ctx.round >= 3:
            ctx.halt(result=(ctx.rng.random(), tuple(ctx.state["seen"])))
            return
        if inbox:
            ctx.broadcast(("fwd", ctx.round, ctx.rng.random()))


ENGINE_ALGORITHMS = [
    lambda: Echo(),
    lambda: HopCounter(),
    lambda: RandomizedFlood(),
]


def run_both_paths(graph, make_algorithm, seed):
    """Run one algorithm on both simulator paths with separate parents.

    Returns ``(dict_result, csr_result, dict_tracer, csr_tracer)`` and
    asserts the two parent generators were consumed identically.
    """
    outs, tracers, parents = [], [], []
    for method in ("dict", "csr"):
        parent = random.Random(seed)
        tracer = SimulationTracer(record_edges=True)
        sim = Simulation(
            graph, lambda v: make_algorithm(), seed=parent,
            tracer=tracer, method=method,
        )
        assert sim.resolved_method == method
        outs.append(sim.run())
        tracers.append(tracer)
        parents.append(parent)
    assert parents[0].random() == parents[1].random()
    return outs[0], outs[1], tracers[0], tracers[1]


class TestEngineEquivalence:
    """dict loop vs array round engine: pinned identical per seed."""

    @pytest.mark.parametrize("n,p,seed", [
        (6, 0.5, 0), (12, 0.3, 1), (25, 0.15, 2), (40, 0.1, 3), (60, 0.08, 4),
    ])
    @pytest.mark.parametrize("algorithm_index", range(len(ENGINE_ALGORITHMS)))
    def test_property_random_graphs(self, n, p, seed, algorithm_index):
        graph = connected_gnp_graph(n, p, seed=seed)
        make = ENGINE_ALGORITHMS[algorithm_index]
        a, b, ta, tb = run_both_paths(graph, make, seed=seed + 17)
        assert a.rounds == b.rounds
        assert a.messages_sent == b.messages_sent
        assert a.results == b.results
        assert a.states == b.states
        # Trace event sequences: RoundRecord dataclass equality covers
        # per-round delivery counts, active counts, halt order, and the
        # (sender, receiver) delivery sequence.
        assert ta.rounds == tb.rounds
        assert ta.to_dict() == tb.to_dict()

    def test_inbox_view_is_dict_shaped(self):
        observed = {}

        class Probe(NodeAlgorithm):
            def on_start(self, ctx):
                ctx.broadcast(("from", ctx.node))

            def on_round(self, ctx, inbox):
                observed[ctx.node] = {
                    "len": len(inbox),
                    "truthy": bool(inbox),
                    "keys": list(inbox),
                    "items": sorted(inbox.items()),
                    "values": sorted(inbox.values()),
                    "contains": ctx.neighbors[0] in inbox,
                    "get_missing": inbox.get("no-such-node", "default"),
                    "getitem": inbox[ctx.neighbors[0]],
                }
                ctx.halt()

        g = complete_graph(5)
        run_algorithm(g, lambda v: Probe(), method="csr")
        engine_view = dict(observed)
        observed.clear()
        run_algorithm(g, lambda v: Probe(), method="dict")
        assert engine_view == observed

    def test_stashed_inbox_keeps_its_items(self):
        """A view kept across rounds still reads its round's messages.

        Published buckets are never mutated, so iteration/items/len of a
        stashed inbox match what a stashed dict-path inbox observes.
        """

        class Stasher(NodeAlgorithm):
            def on_start(self, ctx):
                ctx.broadcast(("round0", ctx.node))

            def on_round(self, ctx, inbox):
                if ctx.round == 1:
                    ctx.state["saved"] = inbox
                    ctx.broadcast(("round1", ctx.node))
                else:
                    ctx.halt(result=sorted(ctx.state["saved"].items()))

        outs = [
            run_algorithm(complete_graph(6), lambda v: Stasher(), method=m)
            for m in ("dict", "csr")
        ]
        assert outs[0].results == outs[1].results
        # the saved round-1 inbox still holds the round-0 broadcasts
        assert outs[1].results[0][0] == (1, ("round0", 1))

    def test_stashed_inbox_keyed_access_fails_loudly(self):
        """Keyed access after the round raises instead of diverging.

        The engine cannot serve `inbox[sender]`/.get/`in` once the round
        is over (the message slots are re-stamped); rather than silently
        disagreeing with the dict path it raises ProtocolViolation —
        which .get and `in` do not swallow (they only catch KeyError).
        """

        class LateKeyed(NodeAlgorithm):
            def on_start(self, ctx):
                ctx.broadcast("x")

            def on_round(self, ctx, inbox):
                if ctx.round == 1:
                    ctx.state["saved"] = inbox
                    ctx.broadcast("y")
                else:
                    with pytest.raises(ProtocolViolation):
                        ctx.state["saved"].get(ctx.neighbors[0])
                    ctx.halt()

        run_algorithm(complete_graph(5), lambda v: LateKeyed(), method="csr")

    def test_engine_protocol_enforcement(self):
        class BadTarget(NodeAlgorithm):
            def on_start(self, ctx):
                ctx.send("nowhere", "boom")

        class DoubleSend(NodeAlgorithm):
            def on_start(self, ctx):
                for n in ctx.neighbors:
                    ctx.send(n, 1)
                    ctx.send(n, 2)

        with pytest.raises(ProtocolViolation):
            run_algorithm(path_graph(2), lambda v: BadTarget(), method="csr")
        with pytest.raises(ProtocolViolation):
            run_algorithm(path_graph(2), lambda v: DoubleSend(), method="csr")

    def test_engine_max_rounds_guard(self):
        class Forever(NodeAlgorithm):
            def on_round(self, ctx, inbox):
                pass

        with pytest.raises(DistributedError):
            run_algorithm(
                path_graph(2), lambda v: Forever(), max_rounds=5, method="csr"
            )

    def test_engine_rejects_directed_graph(self):
        g = DiGraph()
        g.add_edge(1, 2)
        with pytest.raises(DistributedError):
            Simulation(g, lambda v: Echo(), method="csr")

    def test_auto_dispatches_by_size(self):
        small = Simulation(path_graph(3), lambda v: Echo())
        large = Simulation(
            connected_gnp_graph(60, 0.1, seed=1), lambda v: Echo()
        )
        assert small.resolved_method == "dict"
        assert large.resolved_method == "csr"


class HaltImmediately(NodeAlgorithm):
    """Every node halts in round 0 (on_start), before any round runs."""

    def on_start(self, ctx):
        ctx.halt(result="done")

    def on_round(self, ctx, inbox):  # pragma: no cover - never reached
        raise AssertionError("on_round must not run after a round-0 halt")


class TestZeroRoundRegressions:
    """Empty / edgeless simulations must terminate in 0 rounds on both paths."""

    @pytest.mark.parametrize("method", ["dict", "csr"])
    def test_empty_graph(self, method):
        result = run_algorithm(Graph(), lambda v: Echo(), method=method)
        assert result.rounds == 0
        assert result.messages_sent == 0
        assert result.results == {}

    @pytest.mark.parametrize("method", ["dict", "csr"])
    def test_isolated_vertices(self, method):
        g = Graph()
        g.add_vertices(range(7))
        result = run_algorithm(g, lambda v: HaltImmediately(), method=method)
        assert result.rounds == 0
        assert result.messages_sent == 0
        assert result.results == {v: "done" for v in range(7)}


class TestCommunicationGraph:
    def test_undirected_returned_unchanged(self):
        g = complete_graph(4)
        assert communication_graph(g) is g

    def test_directed_collapses_bidirectionally(self):
        g = DiGraph()
        g.add_edge("a", "b", 2.0)
        g.add_edge("b", "a", 1.0)
        g.add_edge("b", "c", 3.0)
        comm = communication_graph(g)
        assert not comm.directed
        assert comm.has_edge("a", "b") and comm.has_edge("c", "b")
        assert comm.num_edges == 2
        # accepted by the simulator, unlike the directed problem graph
        run_algorithm(comm, lambda v: HaltImmediately())
        with pytest.raises(DistributedError):
            run_algorithm(g, lambda v: HaltImmediately())


_TRACE_SCRIPT = """
import json, sys
from repro.distributed import distributed_padded_decomposition
from repro.distsim import Simulation, SimulationTracer
from repro.graph import connected_gnp_graph

method = sys.argv[1]
g = connected_gnp_graph(30, 0.2, seed=6)
relabeled = type(g)()
for u, v, w in g.edges():
    relabeled.add_edge(f"node-{u}", f"node-{v}", w)
dec, sim = distributed_padded_decomposition(relabeled, seed=9, method=method)
print(json.dumps({
    "assignment": sorted((u, c) for u, c in dec.assignment.items()),
    "rounds": sim.rounds,
    "messages": sim.messages_sent,
}))
"""


class TestHashSeedDeterminism:
    """Seeded simulations are identical across hash-randomized processes.

    String-labeled vertices make any hidden set-iteration order visible:
    the engine and the dict loop must both produce one output per seed
    regardless of PYTHONHASHSEED (the CI ``distsim-smoke`` step diffs the
    full JSON traces the same way).
    """

    @pytest.mark.parametrize("method", ["csr", "dict"])
    def test_trace_stable_across_hash_seeds(self, method):
        outputs = set()
        for hashseed in ("0", "1", "1234"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = os.pathsep.join(
                filter(None, ["src", os.environ.get("PYTHONPATH")])
            )
            result = subprocess.run(
                [sys.executable, "-c", _TRACE_SCRIPT, method],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.add(result.stdout)
        assert len(outputs) == 1, "simulation output varies with PYTHONHASHSEED"
