"""Theorem 3.4: Moser–Tardos O(log Δ) rounding."""

from __future__ import annotations

import pytest

from repro.core import is_ft_2spanner
from repro.errors import RoundingError
from repro.graph import complete_digraph, gnp_random_digraph, random_regular_graph
from repro.two_spanner import moser_tardos_rounding, solve_ft2_lp


def test_valid_output_directed():
    g = gnp_random_digraph(12, 0.5, seed=1)
    lp = solve_ft2_lp(g, 1)
    result = moser_tardos_rounding(g, lp.x_values(), 1, seed=2)
    assert is_ft_2spanner(result.spanner, g, 1)
    assert result.resamples >= 0
    assert result.alpha > 0


def test_valid_output_bounded_degree_undirected():
    g = random_regular_graph(16, 5, seed=3)
    lp = solve_ft2_lp(g, 1)
    result = moser_tardos_rounding(g, lp.x_values(), 1, seed=4)
    assert is_ft_2spanner(result.spanner, g, 1)


def test_alpha_defaults_to_log_delta():
    g = complete_digraph(6)  # delta = 5
    lp = solve_ft2_lp(g, 1)
    result = moser_tardos_rounding(g, lp.x_values(), 1, seed=5, alpha_constant=3.0)
    import math

    assert result.alpha == pytest.approx(3.0 * math.log(5))


def test_explicit_alpha_respected():
    g = complete_digraph(5)
    lp = solve_ft2_lp(g, 1)
    result = moser_tardos_rounding(g, lp.x_values(), 1, alpha=50.0, seed=6)
    assert result.alpha == 50.0
    # a huge alpha buys everything immediately with zero resamples
    assert result.resamples == 0
    assert result.num_edges == g.num_edges


def test_resample_cap_raises():
    # Zero alpha cannot satisfy anything; the resampler must give up.
    g = complete_digraph(4)
    xs = {(u, v): 0.0 for u, v, _w in g.edges()}
    with pytest.raises(RoundingError):
        moser_tardos_rounding(g, xs, 1, alpha=0.0, max_resamples=10, seed=7)


def test_cost_events_can_be_disabled():
    g = gnp_random_digraph(10, 0.5, seed=8)
    lp = solve_ft2_lp(g, 1)
    with_cost = moser_tardos_rounding(
        g, lp.x_values(), 1, seed=9, include_cost_events=True
    )
    without = moser_tardos_rounding(
        g, lp.x_values(), 1, seed=9, include_cost_events=False
    )
    assert is_ft_2spanner(with_cost.spanner, g, 1)
    assert is_ft_2spanner(without.spanner, g, 1)


def test_cost_tracks_lp_mass():
    # With cost events enabled, |E'| <= 8 alpha sum_e x_e (paper's bound).
    g = gnp_random_digraph(12, 0.5, seed=10)
    lp = solve_ft2_lp(g, 1)
    result = moser_tardos_rounding(g, lp.x_values(), 1, seed=11)
    lp_mass = sum(lp.x_values().values())
    assert result.num_edges <= 8 * result.alpha * lp_mass + 1e-9
