"""The paper's integrality-gap experiments as assertions (E4/E5 kernels)."""

from __future__ import annotations

import math

import pytest

from repro.two_spanner import (
    gadget_optimum,
    kc_gap_on_gadget,
    old_lp_gap_on_complete_graph,
)


class TestCompleteGraphGap:
    def test_gap_certificate_fields(self):
        gap = old_lp_gap_on_complete_graph(7, 1)
        assert gap.lp_value <= gap.analytic_lp_upper + 1e-6
        assert gap.integral_lower_bound == 7 * 2
        assert math.isnan(gap.exact_opt)

    def test_gap_grows_linearly_with_r(self):
        """Section 3.1: Ω(r) gap for LP (2) on K_n."""
        gaps = [old_lp_gap_on_complete_graph(8, r).gap_lower_bound for r in (0, 1, 2, 3)]
        assert all(b > a for a, b in zip(gaps, gaps[1:]))
        # the gap scales like (r+1)(n-r-2)/(n-1); at n=8 the r=3 vs r=0
        # ratio should comfortably exceed 2
        assert gaps[3] / gaps[0] >= 2.0

    def test_exact_opt_small_instance(self):
        gap = old_lp_gap_on_complete_graph(4, 1, solve_exact=True)
        assert not math.isnan(gap.exact_opt)
        assert gap.exact_opt >= gap.integral_lower_bound - 1e-9


class TestGadgetGap:
    def test_gadget_optimum_formula(self):
        assert gadget_optimum(3, 100.0) == 106.0

    def test_gap_without_kc_grows_with_r(self):
        """Section 3.2: Ω(r) gap for LP (3) without knapsack-cover."""
        gaps = [kc_gap_on_gadget(r, 1000.0).gap_without_kc for r in (1, 2, 4, 8)]
        assert all(b > a for a, b in zip(gaps, gaps[1:]))
        # asymptotically the gap is ~ (r+1); check it's in the ballpark
        assert gaps[-1] >= 5.0

    def test_gap_with_kc_is_constant(self):
        """Adding the KC family closes the gadget gap completely."""
        for r in (1, 2, 4, 8):
            gap = kc_gap_on_gadget(r, 1000.0)
            assert gap.gap_with_kc == pytest.approx(1.0, abs=1e-6)

    def test_lp3_value_formula(self):
        r, M = 4, 1000.0
        gap = kc_gap_on_gadget(r, M)
        assert gap.lp3_value == pytest.approx(M / (r + 1) + 2 * r, rel=1e-6)
