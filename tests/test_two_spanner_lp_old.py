"""The [DK10] flow LP (2): structure and the Section 3.1 gap on K_n."""

from __future__ import annotations

import math

import pytest

from repro.errors import LPError
from repro.graph import complete_digraph, gnp_random_digraph
from repro.two_spanner import (
    complete_graph_fractional_value,
    complete_graph_integral_lower_bound,
    solve_ft2_lp,
    solve_old_lp,
)


def test_r0_old_lp_equals_plain_relaxation_value():
    # With r=0 both formulations are the plain fractional 2-spanner.
    g = complete_digraph(5)
    old = solve_old_lp(g, 0)
    assert old.objective <= 5 * 4 / 3 + 1e-6


def test_x_values_extraction():
    g = complete_digraph(4)
    old = solve_old_lp(g, 1)
    xs = old.x_values()
    assert set(xs) == {(u, v) for u, v, _w in g.edges()}


def test_lp2_value_on_complete_graph_is_low():
    """Section 3.1: LP (2) pays only ~n²/(n-r-2) on K_n."""
    n, r = 7, 2
    old = solve_old_lp(complete_digraph(n), r)
    assert old.objective <= complete_graph_fractional_value(n, r) + 1e-6
    # while any integral solution needs ~ (r+1) n arcs:
    assert complete_graph_integral_lower_bound(n, r) / old.objective >= 1.9


def test_gap_grows_with_r():
    n = 8
    gaps = []
    for r in (0, 1, 2):
        old = solve_old_lp(complete_digraph(n), r)
        gaps.append(complete_graph_integral_lower_bound(n, r) / old.objective)
    assert gaps[0] < gaps[1] < gaps[2]


def test_new_lp_is_stronger_on_complete_graph():
    """LP (4) >= LP (2) on K_n — the whole point of Section 3.2."""
    n, r = 7, 2
    old = solve_old_lp(complete_digraph(n), r).objective
    new = solve_ft2_lp(complete_digraph(n), r).objective
    assert new >= old - 1e-6
    # and the new LP is within a constant of the integral bound:
    assert complete_graph_integral_lower_bound(n, r) / new <= 2.0


def test_fault_set_guard():
    with pytest.raises(LPError):
        solve_old_lp(complete_digraph(20), 4, max_fault_sets=100)


def test_rejects_negative_r():
    with pytest.raises(LPError):
        solve_old_lp(complete_digraph(3), -1)


def test_fractional_value_degenerate():
    assert complete_graph_fractional_value(4, 3) == math.inf
