"""Structural property helpers (density, girth, subgraph relations)."""

from __future__ import annotations

import math

from repro.graph import (
    Graph,
    average_degree,
    complete_graph,
    cycle_graph,
    degree_histogram,
    density,
    girth,
    gnp_random_graph,
    grid_graph,
    is_subgraph,
    largest_component_fraction,
    min_degree,
    path_graph,
    spanning_ratio,
    star_graph,
)


class TestDensityDegree:
    def test_density_complete(self):
        assert density(complete_graph(6)) == 1.0

    def test_density_empty(self):
        assert density(Graph()) == 0.0

    def test_average_degree(self):
        g = path_graph(4)  # 3 edges, 4 vertices
        assert average_degree(g) == 1.5

    def test_degree_histogram(self):
        g = star_graph(4)
        hist = degree_histogram(g)
        assert hist == {4: 1, 1: 4}

    def test_min_degree(self):
        assert min_degree(star_graph(3)) == 1
        assert min_degree(complete_graph(4)) == 3
        assert min_degree(Graph()) == 0


class TestGirth:
    def test_girth_of_cycle(self):
        assert girth(cycle_graph(7)) == 7

    def test_girth_of_tree_is_inf(self):
        assert girth(path_graph(6)) == math.inf

    def test_girth_of_complete(self):
        assert girth(complete_graph(5)) == 3

    def test_girth_of_grid(self):
        assert girth(grid_graph(3, 3)) == 4


class TestSubgraphRelations:
    def test_is_subgraph_true(self):
        g = complete_graph(4)
        sub = g.edge_subgraph([(0, 1), (1, 2)])
        assert is_subgraph(sub, g)

    def test_is_subgraph_weight_mismatch(self):
        g = Graph()
        g.add_edge(0, 1, 2.0)
        h = Graph()
        h.add_edge(0, 1, 1.0)
        assert not is_subgraph(h, g)

    def test_is_subgraph_foreign_vertex(self):
        g = complete_graph(3)
        h = Graph()
        h.add_vertex(99)
        assert not is_subgraph(h, g)

    def test_spanning_ratio(self):
        g = complete_graph(4)  # 6 edges
        sub = g.edge_subgraph([(0, 1), (1, 2), (2, 3)])
        assert spanning_ratio(sub, g) == 0.5

    def test_largest_component_fraction(self):
        g = path_graph(4)
        g.add_edge(10, 11)
        assert largest_component_fraction(g) == 4 / 6
