"""Multi-trial experiment runner."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    ExperimentResult,
    compare_experiments,
    run_experiment,
)


def _linear_trial(seed: int):
    return {"value": float(seed), "squared": float(seed * seed)}


class TestRunExperiment:
    def test_collects_all_records(self):
        result = run_experiment("linear", _linear_trial, seeds=range(5))
        assert result.num_trials == 5
        assert result.seeds == list(range(5))
        assert result.metrics() == ["value", "squared"]

    def test_summary_statistics(self):
        result = run_experiment("linear", _linear_trial, seeds=[1, 2, 3])
        s = result.summary("value")
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0 and s.maximum == 3.0

    def test_missing_metric_in_some_records(self):
        def trial(seed):
            record = {"always": 1.0}
            if seed % 2 == 0:
                record["sometimes"] = 2.0
            return record

        result = run_experiment("partial", trial, seeds=range(4))
        assert len(result.values("sometimes")) == 2
        assert result.summary("always").count == 4

    def test_error_raise_mode(self):
        def bad_trial(seed):
            if seed == 2:
                raise RuntimeError("boom")
            return {"x": 1.0}

        with pytest.raises(RuntimeError):
            run_experiment("bad", bad_trial, seeds=range(4))

    def test_error_skip_mode(self):
        def bad_trial(seed):
            if seed == 2:
                raise RuntimeError("boom")
            return {"x": float(seed)}

        result = run_experiment("bad", bad_trial, seeds=range(4), on_error="skip")
        assert result.num_trials == 3
        assert 2 not in result.seeds

    def test_invalid_error_mode(self):
        with pytest.raises(ValueError):
            run_experiment("x", _linear_trial, seeds=[1], on_error="ignore")


class TestRendering:
    def test_to_table(self):
        result = run_experiment("linear", _linear_trial, seeds=[1, 2])
        table = result.to_table()
        assert "experiment: linear" in table
        assert "squared" in table

    def test_compare_experiments(self):
        a = run_experiment("a", _linear_trial, seeds=[1, 2])
        b = run_experiment("b", _linear_trial, seeds=[3, 4])
        table = compare_experiments([a, b], "value")
        assert "metric: value" in table
        assert "a" in table and "b" in table


class TestWithRealAlgorithm:
    def test_conversion_size_distribution(self):
        """Integration: measure conversion size variance across seeds."""
        from repro.core import fault_tolerant_spanner
        from repro.graph import connected_gnp_graph

        graph = connected_gnp_graph(16, 0.4, seed=0)

        def trial(seed):
            result = fault_tolerant_spanner(
                graph, 3, 1, iterations=10, seed=seed
            )
            return {
                "edges": float(result.num_edges),
                "max_survivor": float(result.stats.max_survivor_size),
            }

        result = run_experiment("conversion", trial, seeds=range(8))
        s = result.summary("edges")
        assert s.count == 8
        assert 0 < s.mean <= graph.num_edges
        assert s.std >= 0.0


class TestSpecSweep:
    def test_spec_sweep_over_one_host(self):
        """run_spec_sweep: one session, shared snapshot, stats as metrics."""
        from repro import SpannerSpec, Session, FaultModel
        from repro.analysis import run_spec_sweep
        from repro.graph import complete_graph

        graph = complete_graph(64)
        session = Session()
        specs = [
            SpannerSpec(
                "theorem21", stretch=3, faults=FaultModel.vertex(1),
                seed=s, params={"iterations": 4},
            )
            for s in range(3)
        ]
        result, reports = run_spec_sweep(
            "sweep", specs, graph=graph, session=session
        )
        assert result.num_trials == 3 and len(reports) == 3
        assert result.seeds == [0, 1, 2]
        assert all(r["iterations"] == 4.0 for r in result.records)
        assert result.summary("size").mean > 0
        # The whole sweep paid for exactly one CSR snapshot.
        assert session.snapshot_builds == 1
        assert session.snapshot_hits == 2

    def test_spec_sweep_skip_errors(self):
        from repro import SpannerSpec
        from repro.analysis import run_spec_sweep
        from repro.graph import complete_graph

        graph = complete_graph(30)
        specs = [
            SpannerSpec("greedy", stretch=3),
            SpannerSpec("baswana-sen", stretch=4, seed=1),  # even stretch
        ]
        result, reports = run_spec_sweep(
            "mixed", specs, graph=graph, on_error="skip"
        )
        assert result.num_trials == 1 and len(reports) == 1

    def test_spec_sweep_custom_metrics(self):
        from repro import SpannerSpec
        from repro.analysis import run_spec_sweep
        from repro.graph import complete_graph

        graph = complete_graph(20)
        result, _ = run_spec_sweep(
            "fractions",
            [SpannerSpec("greedy", stretch=3)],
            graph=graph,
            metrics=lambda rep: {
                "fraction": rep.size / graph.num_edges,
            },
        )
        assert 0 < result.summary("fraction").mean <= 1.0
