"""Closed-form size-bound curves: sanity and the paper's headline comparison."""

from __future__ import annotations

import math

from repro.spanners import (
    baswana_sen_size_bound,
    clpr_ft_size_bound,
    conversion_iterations,
    conversion_iterations_light,
    conversion_size_bound,
    greedy_size_bound,
    moore_bound_edges,
    thorup_zwick_size_bound,
)


def test_greedy_bound_k3_is_n_to_three_halves():
    assert greedy_size_bound(100, 3) == 100 ** 1.5


def test_bounds_monotone_in_n():
    for fn in (greedy_size_bound,):
        assert fn(200, 3) > fn(100, 3)
    assert thorup_zwick_size_bound(200, 2) > thorup_zwick_size_bound(100, 2)
    assert baswana_sen_size_bound(200, 2) > baswana_sen_size_bound(100, 2)


def test_greedy_bound_decreases_with_k():
    assert greedy_size_bound(1000, 5) < greedy_size_bound(1000, 3)


def test_headline_comparison_poly_vs_exponential():
    """The paper's point: CLPR09 is exponential in r, the conversion is not."""
    n, k = 10_000, 2  # CLPR bound uses the (2k-1)-stretch parameterization
    clpr = [clpr_ft_size_bound(n, k, r) for r in range(1, 10)]
    ours = [conversion_size_bound(n, 2 * k - 1, r) for r in range(1, 10)]
    # CLPR grows by a factor >= k per unit of r (it has k^{r+1}).
    for a, b in zip(clpr, clpr[1:]):
        assert b / a >= k
    # The conversion grows polynomially: ratio r=9 vs r=1 is at most 9^2.
    assert ours[-1] / ours[0] <= 81 + 1e-9
    # And for large enough r CLPR exceeds the conversion bound.
    assert clpr[-1] > conversion_size_bound(n, 2 * k - 1, 9)


def test_iteration_schedules():
    assert conversion_iterations(100, 2) > conversion_iterations_light(100, 2)
    assert conversion_iterations(100, 1, constant=2.0) == 2 * math.ceil(
        math.log(100)
    ) or conversion_iterations(100, 1, constant=2.0) >= math.log(100)
    assert conversion_iterations(1, 5) == 1  # degenerate n


def test_moore_bound():
    assert moore_bound_edges(100, 5) == 0.5 * (100 ** 1.5 + 100)
    assert moore_bound_edges(0, 5) == math.inf


def test_degenerate_inputs():
    assert greedy_size_bound(0, 3) == 0.0
    assert clpr_ft_size_bound(1, 2, 3) == 0.0
    assert conversion_size_bound(1, 3, 2) == 0.0
