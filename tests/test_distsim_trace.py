"""Tracing hooks of the LOCAL-model simulator."""

from __future__ import annotations

from repro.distsim import NodeAlgorithm, Simulation, SimulationTracer
from repro.graph import complete_graph, path_graph


class FloodAndHalt(NodeAlgorithm):
    """Node 0 floods a token; every node halts on receipt (0 in round 1)."""

    def on_start(self, ctx):
        if ctx.node == 0:
            ctx.broadcast("token")

    def on_round(self, ctx, inbox):
        if ctx.node == 0 or inbox:
            if inbox or ctx.node == 0:
                ctx.broadcast("token") if not ctx.halted else None
            ctx.halt(result=ctx.round)
            return


def test_trace_records_rounds_and_messages():
    tracer = SimulationTracer()
    g = path_graph(4)
    sim = Simulation(g, lambda v: FloodAndHalt(), tracer=tracer)
    result = sim.run()
    assert tracer.num_rounds == result.rounds
    # total delivered messages cannot exceed total sent
    assert tracer.total_messages <= result.messages_sent
    # round indexes are 1-based and contiguous
    assert [r.round_index for r in tracer.rounds] == list(
        range(1, result.rounds + 1)
    )


def test_halting_rounds_follow_distance():
    tracer = SimulationTracer()
    g = path_graph(5)
    Simulation(g, lambda v: FloodAndHalt(), tracer=tracer).run()
    halts = {v: tracer.halting_round(v) for v in g.vertices()}
    assert halts[0] == 1
    # halting round grows with hop distance from the source
    assert halts[1] < halts[3]
    assert tracer.halting_round("nonexistent") is None


def test_active_node_counts_decrease():
    tracer = SimulationTracer()
    Simulation(path_graph(5), lambda v: FloodAndHalt(), tracer=tracer).run()
    active = [r.active_nodes for r in tracer.rounds]
    assert all(a >= b for a, b in zip(active, active[1:]))
    assert active[-1] == 0


def test_delivered_edges_recorded_when_enabled():
    tracer = SimulationTracer(record_edges=True)
    g = complete_graph(3)
    Simulation(g, lambda v: FloodAndHalt(), tracer=tracer).run()
    first_round = tracer.rounds[0]
    # node 0 broadcast to both neighbours in round 0, delivered in round 1
    assert (0, 1) in first_round.delivered_edges
    assert (0, 2) in first_round.delivered_edges


def test_message_histogram_and_quiet_rounds():
    tracer = SimulationTracer()
    Simulation(path_graph(3), lambda v: FloodAndHalt(), tracer=tracer).run()
    histogram = tracer.message_histogram()
    assert set(histogram) == {r.round_index for r in tracer.rounds}
    for idx in tracer.quiet_rounds():
        assert histogram[idx] == 0
