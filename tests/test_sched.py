"""Fault-tolerant sweep scheduler: leases, reclamation, quarantine, recovery.

The acceptance criteria of the subsystem, verified with real processes:

* a sweep whose worker is SIGKILLed mid-shard (after the lease claim,
  before the envelope write) still completes, and its merged reports are
  byte-identical to a fault-free sequential run — across hash-seed
  randomized worker subprocesses;
* a deterministically-failing shard lands in the ``failed/`` quarantine
  ledger with its captured exception, and the sweep finishes *degraded*
  instead of hanging.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro import FaultModel, SpannerSpec
from repro.analysis import merge_shard_reports
from repro.errors import InvalidSpec, LeaseError, ShardQuarantined, SweepError
from repro.graph import connected_gnp_graph
from repro.sched import (
    Manifest,
    claim_lease,
    init_scheduler_dir,
    is_scheduler_dir,
    load_scheduler,
    read_lease,
    reclaim_expired_leases,
    run_scheduled_sweep,
    run_worker,
    scheduler_envelope_paths,
    scheduler_status,
    shard_attempts,
)
from repro.sched import lease as lease_module
from repro.sched.lease import is_expired, lease_path
from repro.sched.scheduler import (
    envelope_path,
    leases_dir,
    quarantine_path,
    record_attempt,
)
from repro.sweep import SweepPlan, run_sweep

REPO_SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "src")
)


@pytest.fixture
def plan():
    """Four specs over one host: small enough for subprocess tests."""
    host = connected_gnp_graph(16, 0.3, seed=1)
    specs = [
        SpannerSpec(
            "theorem21", stretch=3, faults=FaultModel.vertex(1),
            params={"schedule": "light", "constant": 1.0}, graph=host,
        ),
        SpannerSpec("greedy", stretch=3, graph=host),
        SpannerSpec("baswana-sen", stretch=3, graph=host),
        SpannerSpec("greedy", stretch=5, graph=host),
    ]
    return SweepPlan.build(specs, name="sched-test")


def report_docs(reports):
    return json.dumps([r.to_dict() for r in reports], sort_keys=True)


class TestManifest:
    def test_round_trip(self, tmp_path):
        manifest = Manifest(
            plan_fingerprint="abc123", of=3, name="m", lease_ttl_s=5.0,
            max_attempts=2, shard_timeout_s=60.0,
        )
        path = str(tmp_path / "manifest.json")
        manifest.save(path)
        assert Manifest.load(path) == manifest

    def test_strictness(self, tmp_path):
        with pytest.raises(InvalidSpec):
            Manifest(plan_fingerprint="", of=1)
        with pytest.raises(InvalidSpec):
            Manifest(plan_fingerprint="abc", of=0)
        with pytest.raises(InvalidSpec):
            Manifest(plan_fingerprint="abc", of=1, max_attempts=0)
        doc = Manifest(plan_fingerprint="abc", of=1).to_dict()
        doc["surprise"] = True
        with pytest.raises(InvalidSpec, match="surprise"):
            Manifest.from_dict(doc)
        path = str(tmp_path / "manifest.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"truncat')
        with pytest.raises(InvalidSpec, match="manifest"):
            Manifest.load(path)

    def test_backoff_is_capped_exponential(self):
        manifest = Manifest(
            plan_fingerprint="abc", of=1,
            backoff_base_s=0.5, backoff_cap_s=3.0,
        )
        assert [manifest.backoff_s(k) for k in (1, 2, 3, 4, 5)] == [
            0.5, 1.0, 2.0, 3.0, 3.0
        ]


class TestLease:
    def test_claim_is_exclusive(self, tmp_path):
        d = str(tmp_path)
        lease = claim_lease(d, 0, "w1", ttl_s=5.0)
        assert lease is not None and lease.worker == "w1"
        assert claim_lease(d, 0, "w2", ttl_s=5.0) is None  # held
        assert claim_lease(d, 1, "w2", ttl_s=5.0) is not None  # other shard

    def test_renew_refreshes_heartbeat(self, tmp_path, monkeypatch):
        d = str(tmp_path)
        clock = [1000.0]
        monkeypatch.setattr(lease_module, "_now", lambda: clock[0])
        lease = claim_lease(d, 0, "w1", ttl_s=5.0)
        clock[0] = 1006.0
        record = read_lease(lease.path)
        assert is_expired(lease.path, record, 5.0)
        lease.renew()
        record = read_lease(lease.path)
        assert not is_expired(lease.path, record, 5.0)
        assert record["heartbeat_at"] == 1006.0

    def test_release_of_reclaimed_lease_raises(self, tmp_path):
        lease = claim_lease(str(tmp_path), 0, "w1", ttl_s=5.0)
        os.unlink(lease.path)  # someone reclaimed it
        with pytest.raises(LeaseError, match="reclaimed"):
            lease.release()

    def test_corrupt_lease_expires_by_mtime(self, tmp_path, monkeypatch):
        path = lease_path(str(tmp_path), 0)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"torn')
        record = read_lease(path)
        assert record["corrupt"]
        mtime = os.stat(path).st_mtime
        monkeypatch.setattr(lease_module, "_now", lambda: mtime + 10.0)
        assert is_expired(path, record, 5.0)


class TestSchedulerDir:
    def test_init_is_idempotent_for_same_plan(self, plan, tmp_path):
        sd = str(tmp_path / "sched")
        m1, p1 = init_scheduler_dir(sd, plan, of=2, seed=4)
        m2, p2 = init_scheduler_dir(sd, plan, of=2, seed=4)
        assert m1 == m2
        assert p1.fingerprint() == p2.fingerprint()
        assert is_scheduler_dir(sd)

    def test_init_refuses_a_different_plan(self, plan, tmp_path):
        sd = str(tmp_path / "sched")
        init_scheduler_dir(sd, plan, of=2, seed=4)
        with pytest.raises(InvalidSpec, match="refusing to"):
            init_scheduler_dir(sd, plan, of=3, seed=4)  # different of
        with pytest.raises(InvalidSpec, match="refusing to"):
            init_scheduler_dir(sd, plan, of=2, seed=5)  # different seeds

    def test_init_validates_shard_count(self, plan, tmp_path):
        with pytest.raises(InvalidSpec, match="shard count"):
            init_scheduler_dir(str(tmp_path / "s"), plan, of=99, seed=4)

    def test_load_refuses_diverged_plan(self, plan, tmp_path):
        sd = str(tmp_path / "sched")
        init_scheduler_dir(sd, plan, of=2, seed=4)
        other = plan.resolve_seeds(5)
        other.save(os.path.join(sd, "plan.json"))
        with pytest.raises(InvalidSpec, match="diverged"):
            load_scheduler(sd)

    def test_reclaim_steals_only_expired_leases(
        self, plan, tmp_path, monkeypatch
    ):
        sd = str(tmp_path / "sched")
        manifest, _ = init_scheduler_dir(
            sd, plan, of=2, seed=4, lease_ttl_s=5.0
        )
        clock = [1000.0]
        monkeypatch.setattr(lease_module, "_now", lambda: clock[0])
        dead = claim_lease(leases_dir(sd), 0, "dead-worker", ttl_s=5.0)
        clock[0] = 1004.0
        live = claim_lease(leases_dir(sd), 1, "live-worker", ttl_s=5.0)
        clock[0] = 1007.0  # shard 0 is 7s stale, shard 1 only 3s
        assert reclaim_expired_leases(sd, manifest) == [0]
        assert not os.path.exists(dead.path)
        assert os.path.exists(live.path)
        attempts = shard_attempts(sd, 0)
        assert len(attempts) == 1
        assert attempts[0]["worker"] == "dead-worker"
        assert "lease expired" in attempts[0]["reason"]
        assert shard_attempts(sd, 1) == []

    def test_reclaim_cleans_up_done_but_unreleased(
        self, plan, tmp_path, monkeypatch
    ):
        sd = str(tmp_path / "sched")
        manifest, resolved = init_scheduler_dir(
            sd, plan, of=2, seed=4, lease_ttl_s=5.0
        )
        clock = [1000.0]
        monkeypatch.setattr(lease_module, "_now", lambda: clock[0])
        lease = claim_lease(leases_dir(sd), 0, "crashed-late", ttl_s=5.0)
        # The worker persisted its envelope but died before releasing.
        from repro.sweep import run_shard, save_shard_report

        envelope = run_shard(resolved.shard(0, 2))
        save_shard_report(envelope, os.path.join(sd, "reports"))
        clock[0] = 1010.0
        assert reclaim_expired_leases(sd, manifest) == []
        assert not os.path.exists(lease.path)
        assert shard_attempts(sd, 0) == []  # done, not a failure

    def test_status_reports_every_state(self, plan, tmp_path, monkeypatch):
        sd = str(tmp_path / "sched")
        manifest, resolved = init_scheduler_dir(
            sd, plan, of=4, seed=4, lease_ttl_s=5.0
        )
        from repro.sweep import run_shard, save_shard_report

        save_shard_report(run_shard(resolved.shard(0, 4)),
                          os.path.join(sd, "reports"))
        claim_lease(leases_dir(sd), 1, "w1", ttl_s=5.0)
        record_attempt(sd, 2, 1, worker="w0", reason="boom", error="E")
        status = scheduler_status(sd)
        states = {s["shard"]: s["state"] for s in status["shards"]}
        assert states == {0: "done", 1: "claimed", 2: "retrying", 3: "pending"}
        assert status["counts"]["done"] == 1
        assert status["complete"] is False
        assert status["degraded"] is False
        assert status["finished"] is False
        retrying = status["shards"][2]
        assert retrying["attempts"] == 1
        assert retrying["retry_backoff_remaining_s"] >= 0.0


class TestWorkerByteIdentity:
    def test_single_worker_matches_sequential(self, plan, tmp_path):
        sd = str(tmp_path / "sched")
        init_scheduler_dir(sd, plan, of=3, seed=4, lease_ttl_s=30.0)
        summary = run_worker(sd, worker_id="solo")
        assert summary["completed"] == 3
        assert summary["complete"] and not summary["degraded"]
        merged = merge_shard_reports(scheduler_envelope_paths(sd))
        assert report_docs(merged) == report_docs(
            run_sweep(plan, workers=1, seed=4)
        )

    def test_run_scheduled_sweep_multi_worker(self, plan, tmp_path):
        sd = str(tmp_path / "sched")
        init_scheduler_dir(sd, plan, of=3, seed=4, lease_ttl_s=30.0)
        reports, status = run_scheduled_sweep(sd, workers=2)
        assert status["complete"] and not status["degraded"]
        assert report_docs(reports) == report_docs(
            run_sweep(plan, workers=1, seed=4)
        )

    def test_rejects_zero_workers(self, plan, tmp_path):
        sd = str(tmp_path / "sched")
        init_scheduler_dir(sd, plan, of=2, seed=4)
        with pytest.raises(InvalidSpec, match="workers >= 1"):
            run_scheduled_sweep(sd, workers=0)


class TestQuarantine:
    @pytest.fixture
    def poisoned_dir(self, tmp_path):
        """Shard 1 fails deterministically: wrong fault kind for the
        algorithm, refused at build time on every attempt."""
        host = connected_gnp_graph(16, 0.3, seed=1)
        plan = SweepPlan.build(
            [
                SpannerSpec("greedy", stretch=3, graph=host),
                SpannerSpec(
                    "theorem21-adaptive", stretch=3, graph=host,
                    params={"until_valid": {"trials": 30}},
                ),
            ],
            name="poison",
        )
        sd = str(tmp_path / "sched")
        init_scheduler_dir(
            sd, plan, of=2, seed=4, lease_ttl_s=30.0,
            max_attempts=2, backoff_base_s=0.01, backoff_cap_s=0.05,
        )
        return sd, plan

    def test_poison_shard_is_quarantined_not_hung(self, poisoned_dir):
        sd, plan = poisoned_dir
        summary = run_worker(sd, worker_id="w0")
        assert summary["degraded"] and not summary["complete"]
        assert summary["completed"] == 1
        assert summary["failed"] == 2  # max_attempts exhausted
        assert os.path.exists(quarantine_path(sd, 1))
        status = scheduler_status(sd)
        assert status["counts"]["quarantined"] == 1
        assert status["finished"] is True
        [entry] = status["quarantined"]
        assert entry["shard"] == 1
        assert len(entry["attempts"]) == 2
        # The ledger carries the real exception, not just an exit code.
        assert any(
            "fault kinds" in (a.get("error") or "")
            for a in entry["attempts"]
        )

    def test_degraded_sweep_returns_status_not_reports(self, poisoned_dir):
        sd, _plan = poisoned_dir
        reports, status = run_scheduled_sweep(sd, workers=1)
        assert reports is None
        assert status["degraded"] is True

    def test_merge_refuses_quarantined_directory(self, poisoned_dir):
        sd, _plan = poisoned_dir
        run_worker(sd, worker_id="w0")
        with pytest.raises(ShardQuarantined, match="quarantined") as info:
            scheduler_envelope_paths(sd)
        assert isinstance(info.value, SweepError)
        assert len(info.value.ledger) == 1
        assert info.value.ledger[0]["shard"] == 1

    def test_deleting_ledger_entries_makes_shard_retryable(
        self, poisoned_dir
    ):
        sd, _plan = poisoned_dir
        run_worker(sd, worker_id="w0")
        # Operator remediation path from the error message: remove the
        # failed/ entry and its attempts/ records, then resume.
        os.unlink(quarantine_path(sd, 1))
        import glob as glob_module

        for path in glob_module.glob(
            os.path.join(sd, "attempts", "shard-1.attempt-*.json")
        ):
            os.unlink(path)
        status = scheduler_status(sd)
        assert {s["shard"]: s["state"] for s in status["shards"]}[1] == "pending"


class TestCrashWindowRecovery:
    """SIGKILL a real worker between lease claim and envelope write."""

    @pytest.mark.parametrize("hashseed", ["0", "1"])
    def test_sigkilled_worker_sweep_is_byte_identical(
        self, plan, tmp_path, hashseed
    ):
        sd = str(tmp_path / "sched")
        init_scheduler_dir(sd, plan, of=3, seed=4, lease_ttl_s=2.0)
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC
        env["PYTHONHASHSEED"] = hashseed
        env["REPRO_SCHED_TEST_HOLD_S"] = "120"
        victim = subprocess.Popen(
            [sys.executable, "-m", "repro", "sweep-worker", sd,
             "--worker-id", "doomed"],
            env=env, start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            # Wait for the claim: the hold knob parks the worker between
            # the lease create and the shard child start, so killing the
            # whole session here is exactly the targeted crash window.
            deadline = time.monotonic() + 60.0
            lease_file = lease_path(leases_dir(sd), 0)
            while not os.path.exists(lease_file):
                assert time.monotonic() < deadline, "worker never claimed"
                assert victim.poll() is None, "worker died before claiming"
                time.sleep(0.05)
            assert not os.path.exists(envelope_path(sd, 0))
        finally:
            os.killpg(victim.pid, signal.SIGKILL)
            victim.wait(timeout=30)
        # A surviving worker reclaims the expired lease and finishes.
        summary = run_worker(sd, worker_id="survivor")
        assert summary["complete"] and not summary["degraded"]
        assert summary["reclaimed"] >= 1
        status = scheduler_status(sd)
        retried = [s for s in status["shards"] if s["attempts"] > 0]
        assert [s["shard"] for s in retried] == [0]
        merged = merge_shard_reports(scheduler_envelope_paths(sd))
        assert report_docs(merged) == report_docs(
            run_sweep(plan, workers=1, seed=4)
        )
