"""Replacement paths / single-fault distance sensitivity."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DisconnectedError, VertexNotFound
from repro.graph import (
    Graph,
    complete_graph,
    connected_gnp_graph,
    cycle_graph,
    dijkstra,
    fault_sensitivity,
    most_fragile_pairs,
    path_graph,
    replacement_edge_distance,
    replacement_path_distance,
)


class TestReplacementDistances:
    def test_path_graph_vertex_fault_disconnects(self):
        g = path_graph(5)
        assert replacement_path_distance(g, 0, 4, 2) == math.inf

    def test_cycle_reroutes_around_fault(self):
        g = cycle_graph(6)  # d(0, 2) = 2 via vertex 1; detour = 4
        assert replacement_path_distance(g, 0, 2, 1) == 4.0

    def test_edge_fault(self):
        g = cycle_graph(5)
        assert replacement_edge_distance(g, 0, 1, (0, 1)) == 4.0
        # removing a non-incident edge changes nothing
        assert replacement_edge_distance(g, 0, 1, (2, 3)) == 1.0

    def test_cannot_fault_endpoints(self):
        g = path_graph(3)
        with pytest.raises(VertexNotFound):
            replacement_path_distance(g, 0, 2, 0)

    def test_missing_edge_fault_is_noop(self):
        g = path_graph(3)
        assert replacement_edge_distance(g, 0, 2, (0, 2)) == 2.0


class TestSensitivityProfile:
    def test_profile_on_cycle(self):
        g = cycle_graph(6)
        profile = fault_sensitivity(g, 0, 3)
        assert profile.base_distance == 3.0
        # every interior vertex of the found path is a candidate
        assert len(profile.vertex_faults) == 2
        assert len(profile.edge_faults) == 3
        # rerouting the other way costs 3 as well -> stretch 1.0? No: the
        # detour around a faulted midpoint costs... other side is also 3.
        assert profile.max_stretch_under_single_fault() == pytest.approx(1.0)

    def test_worst_fault_identified(self):
        # A lopsided theta graph: short path 0-1-2, long path 0-3-4-5-2.
        g = Graph()
        g.add_edge(0, 1); g.add_edge(1, 2)
        g.add_edge(0, 3); g.add_edge(3, 4); g.add_edge(4, 5); g.add_edge(5, 2)
        profile = fault_sensitivity(g, 0, 2)
        assert profile.base_distance == 2.0
        fault, dist = profile.worst_vertex_fault()
        assert fault == 1 and dist == 4.0
        edge_fault, edge_dist = profile.worst_edge_fault()
        assert edge_dist == 4.0
        assert profile.max_stretch_under_single_fault() == pytest.approx(2.0)

    def test_unreachable_target_raises(self):
        g = path_graph(3)
        g.add_vertex(9)
        with pytest.raises(DisconnectedError):
            fault_sensitivity(g, 0, 9)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_replacement_never_shorter_than_base(self, seed):
        g = connected_gnp_graph(12, 0.35, seed=seed)
        vertices = list(g.vertices())
        s, t = vertices[0], vertices[-1]
        profile = fault_sensitivity(g, s, t)
        for d in profile.vertex_faults.values():
            assert d >= profile.base_distance - 1e-9
        for d in profile.edge_faults.values():
            assert d >= profile.base_distance - 1e-9

    def test_complete_graph_is_robust(self):
        g = complete_graph(6)
        profile = fault_sensitivity(g, 0, 1)
        # direct edge: no interior vertices; only the edge itself matters
        assert profile.vertex_faults == {}
        assert profile.max_stretch_under_single_fault() == pytest.approx(2.0)


class TestFragilityRanking:
    def test_ranks_bridge_like_edges_first(self):
        # Two triangles joined by a single edge: that edge is fragile.
        g = Graph()
        for a, b in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]:
            g.add_edge(a, b)
        ranking = most_fragile_pairs(g, top=1)
        (u, v, stretch) = ranking[0]
        assert {u, v} == {2, 3}
        assert stretch == math.inf  # removing the bridge disconnects

    def test_top_parameter(self):
        g = complete_graph(5)
        assert len(most_fragile_pairs(g, top=3)) == 3
