"""Algorithm 2 (Theorem 3.9): distributed LP + rounding."""

from __future__ import annotations

import math

import pytest

from repro.core import is_ft_2spanner
from repro.distributed import (
    default_iteration_count,
    distributed_ft2_lp,
    distributed_ft2_spanner,
)
from repro.errors import DistributedError
from repro.graph import complete_digraph, gnp_random_digraph, knapsack_gap_gadget
from repro.two_spanner import solve_ft2_lp


class TestDistributedLP:
    def test_x_values_cover_all_edges(self):
        g = gnp_random_digraph(10, 0.5, seed=1)
        result = distributed_ft2_lp(g, 1, t=4, seed=2)
        assert set(result.x_values) == {(u, v) for u, v, _w in g.edges()}
        assert all(0.0 <= x <= 1.0 for x in result.x_values.values())

    def test_round_accounting(self):
        g = gnp_random_digraph(10, 0.5, seed=3)
        result = distributed_ft2_lp(g, 1, t=3, seed=4)
        assert result.iterations == 3
        assert len(result.per_iteration) == 3
        expected = sum(
            it.decomposition_rounds + it.gather_scatter_rounds
            for it in result.per_iteration
        )
        assert result.total_rounds == expected

    def test_lp_cost_within_constant_of_centralized(self):
        """Lemma 3.8 + averaging: Σ c x̃ <= 4 LP* (we allow slack for the
        min(1, ·) cap and sampling noise)."""
        g = gnp_random_digraph(11, 0.5, seed=5)
        central = solve_ft2_lp(g, 1).objective
        dist = distributed_ft2_lp(g, 1, seed=6)
        assert dist.lp_cost <= 5.0 * central + 1e-6

    def test_default_iteration_count(self):
        assert default_iteration_count(100) == math.ceil(4 * math.log(100))
        assert default_iteration_count(2) >= 2

    def test_rejects_negative_r(self):
        with pytest.raises(DistributedError):
            distributed_ft2_lp(complete_digraph(3), -1)


class TestDistributedSpanner:
    def test_end_to_end_validity(self):
        g = gnp_random_digraph(10, 0.5, seed=7)
        result = distributed_ft2_spanner(g, 1, seed=8)
        assert is_ft_2spanner(result.spanner, g, 1)
        assert result.total_rounds == result.lp.total_rounds + 1

    def test_cost_reasonable_vs_lp(self):
        g = gnp_random_digraph(10, 0.5, seed=9)
        central = solve_ft2_lp(g, 1).objective
        result = distributed_ft2_spanner(g, 1, seed=10)
        # O(log n) approx with modest constants on a 10-vertex instance
        assert result.cost <= 40 * central

    def test_gadget_buys_expensive_edge(self):
        g = knapsack_gap_gadget(2, 50.0)
        result = distributed_ft2_spanner(g, 2, seed=11)
        assert is_ft_2spanner(result.spanner, g, 2)
        assert result.spanner.has_edge("u", "v")

    def test_round_count_polylog_shape(self):
        """Rounds ≈ t · (cap + gather) = O(log² n): check the formula's
        ingredients rather than absolute values."""
        g = gnp_random_digraph(12, 0.4, seed=12)
        result = distributed_ft2_spanner(g, 1, t=3, seed=13)
        n = g.num_vertices
        cap = math.ceil(8 * math.log(n))
        # each iteration costs at least the decomposition rounds
        assert result.lp.total_rounds >= 3 * cap
