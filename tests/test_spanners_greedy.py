"""Greedy (Althöfer et al.) spanner: correctness, girth, and size bound."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidStretch
from repro.graph import (
    complete_graph,
    connected_gnp_graph,
    girth,
    gnp_random_graph,
    is_subgraph,
    path_graph,
)
from repro.spanners import (
    greedy_size_bound,
    greedy_spanner,
    greedy_spanner_size_first,
    is_spanner,
    max_edge_stretch,
)


class TestGreedyCorrectness:
    def test_rejects_bad_stretch(self):
        with pytest.raises(InvalidStretch):
            greedy_spanner(path_graph(3), 0.5)

    def test_k1_returns_whole_graph(self):
        g = complete_graph(5)
        h = greedy_spanner(g, 1)
        assert h.num_edges == g.num_edges

    def test_is_subgraph_and_spanner(self, random_connected):
        for k in (2, 3, 5):
            h = greedy_spanner(random_connected, k)
            assert is_subgraph(h, random_connected)
            assert is_spanner(h, random_connected, k)

    def test_tree_input_unchanged(self):
        g = path_graph(8)
        h = greedy_spanner(g, 3)
        assert h.num_edges == g.num_edges

    def test_spans_all_vertices(self):
        g = complete_graph(6)
        h = greedy_spanner(g, 3)
        assert h.vertex_set() == g.vertex_set()

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 5000), k=st.sampled_from([3, 5, 7]))
    def test_property_valid_spanner_weighted(self, seed, k):
        g = gnp_random_graph(16, 0.5, seed=seed, weight_range=(0.5, 3.0))
        h = greedy_spanner(g, k)
        assert is_spanner(h, g, k)
        assert max_edge_stretch(h, g) <= k + 1e-9


class TestGreedyGirthAndSize:
    def test_girth_exceeds_k_plus_one(self):
        # Classical guarantee: greedy k-spanner (unit weights) has girth > k+1.
        g = connected_gnp_graph(30, 0.4, seed=2)
        for k in (2, 3):
            h = greedy_spanner(g, k)
            assert girth(h) > k + 1

    def test_size_bound_complete_graph(self):
        # K_n, k=3: greedy output has girth > 4, so size <= n^{3/2}-ish.
        n = 40
        h = greedy_spanner(complete_graph(n), 3)
        assert h.num_edges <= 2 * greedy_size_bound(n, 3)

    def test_sparser_for_larger_k(self):
        g = connected_gnp_graph(40, 0.5, seed=8)
        sizes = [greedy_spanner(g, k).num_edges for k in (1, 3, 5)]
        assert sizes[0] >= sizes[1] >= sizes[2]


class TestGreedySizeFirst:
    def test_truncation_respects_budget(self):
        g = complete_graph(12)
        h = greedy_spanner_size_first(g, 3, max_edges=5)
        assert h.num_edges <= 5

    def test_large_budget_equals_plain_greedy(self):
        g = connected_gnp_graph(15, 0.4, seed=4)
        a = greedy_spanner(g, 3)
        b = greedy_spanner_size_first(g, 3, max_edges=g.num_edges)
        assert sorted(map(tuple, a.edges())) == sorted(map(tuple, b.edges()))

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            greedy_spanner_size_first(path_graph(3), 3, max_edges=-1)
