"""CLI behaviour: generate / build / approximate / verify round trips."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.graph import load_json


@pytest.fixture
def host_path(tmp_path):
    path = str(tmp_path / "host.json")
    assert main(["generate", "gnp-connected", "--n", "14", "--p", "0.5",
                 "--seed", "3", "--out", path]) == 0
    return path


@pytest.fixture
def digraph_path(tmp_path):
    path = str(tmp_path / "mesh.json")
    assert main(["generate", "gnp-digraph", "--n", "10", "--p", "0.5",
                 "--seed", "4", "--out", path]) == 0
    return path


class TestGenerate:
    def test_writes_valid_json(self, host_path):
        graph = load_json(host_path)
        assert graph.num_vertices == 14
        assert not graph.directed

    @pytest.mark.parametrize(
        "kind,extra",
        [
            ("gnp", []),
            ("complete", []),
            ("grid", ["--n", "4"]),
            ("regular", ["--n", "12", "--degree", "3"]),
            ("geometric", ["--n", "15", "--radius", "0.5"]),
        ],
    )
    def test_all_kinds(self, tmp_path, kind, extra):
        path = str(tmp_path / f"{kind}.json")
        assert main(["generate", kind, "--out", path, *extra]) == 0
        assert load_json(path).num_vertices > 0

    def test_digraph_kind(self, digraph_path):
        assert load_json(digraph_path).directed


class TestFtSpanner:
    def test_build_verify_export(self, host_path, tmp_path, capsys):
        out = str(tmp_path / "spanner.json")
        dot = str(tmp_path / "spanner.dot")
        code = main(
            ["ft-spanner", host_path, "--k", "3", "--r", "1",
             "--seed", "5", "--out", out, "--dot", dot,
             "--verify", "exhaustive"]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "exhaustively valid" in printed
        spanner = load_json(out)
        host = load_json(host_path)
        assert spanner.num_edges <= host.num_edges
        dot_text = open(dot).read()
        assert dot_text.startswith("graph repro {")

    def test_sampled_verification_default(self, host_path, capsys):
        assert main(["ft-spanner", host_path, "--r", "1", "--seed", "6"]) == 0
        assert "sampled-valid" in capsys.readouterr().out

    def test_insufficient_iterations_fail_exit_code(self, host_path):
        # One iteration cannot be r=2 fault tolerant on this graph.
        code = main(
            ["ft-spanner", host_path, "--r", "2", "--iterations", "1",
             "--seed", "7", "--verify", "exhaustive"]
        )
        assert code == 2


class TestFt2Approx:
    def test_approx_and_export(self, digraph_path, tmp_path, capsys):
        out = str(tmp_path / "two.json")
        assert main(["ft2-approx", digraph_path, "--r", "1", "--seed", "8",
                     "--out", out]) == 0
        printed = capsys.readouterr().out
        assert "LP (4) optimum" in printed
        assert load_json(out).directed


class TestVerify:
    def test_verify_modes(self, host_path, tmp_path):
        spanner_path = str(tmp_path / "sp.json")
        assert main(["ft-spanner", host_path, "--r", "1", "--seed", "9",
                     "--out", spanner_path]) == 0
        for mode in ("exhaustive", "sampled"):
            assert main(["verify", host_path, spanner_path, "--k", "3",
                         "--r", "1", "--mode", mode]) == 0

    def test_verify_fail(self, host_path, tmp_path, capsys):
        # An empty spanner fails verification.
        from repro.graph import Graph, dump_json, load_json as lj

        host = lj(host_path)
        empty = Graph()
        empty.add_vertices(host.vertices())
        empty_path = str(tmp_path / "empty.json")
        dump_json(empty, empty_path)
        code = main(["verify", host_path, empty_path, "--k", "3", "--r", "0",
                     "--mode", "exhaustive"])
        assert code == 2
        assert "FAIL" in capsys.readouterr().out

    def test_lemma31_mode(self, digraph_path, tmp_path):
        spanner_path = str(tmp_path / "two.json")
        assert main(["ft2-approx", digraph_path, "--r", "1", "--seed", "10",
                     "--out", spanner_path]) == 0
        assert main(["verify", digraph_path, spanner_path, "--r", "1",
                     "--mode", "lemma31"]) == 0


def test_error_reporting(tmp_path, capsys):
    # generating a regular graph with bad parity surfaces a clean error
    path = str(tmp_path / "x.json")
    code = main(["generate", "regular", "--n", "7", "--degree", "3",
                 "--out", path])
    assert code == 1
    assert "error:" in capsys.readouterr().err
