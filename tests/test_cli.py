"""CLI behaviour: generate / build / approximate / verify round trips."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.graph import load_json


@pytest.fixture
def host_path(tmp_path):
    path = str(tmp_path / "host.json")
    assert main(["generate", "gnp-connected", "--n", "14", "--p", "0.5",
                 "--seed", "3", "--out", path]) == 0
    return path


@pytest.fixture
def digraph_path(tmp_path):
    path = str(tmp_path / "mesh.json")
    assert main(["generate", "gnp-digraph", "--n", "10", "--p", "0.5",
                 "--seed", "4", "--out", path]) == 0
    return path


class TestGenerate:
    def test_writes_valid_json(self, host_path):
        graph = load_json(host_path)
        assert graph.num_vertices == 14
        assert not graph.directed

    @pytest.mark.parametrize(
        "kind,extra",
        [
            ("gnp", []),
            ("complete", []),
            ("grid", ["--n", "4"]),
            ("regular", ["--n", "12", "--degree", "3"]),
            ("geometric", ["--n", "15", "--radius", "0.5"]),
        ],
    )
    def test_all_kinds(self, tmp_path, kind, extra):
        path = str(tmp_path / f"{kind}.json")
        assert main(["generate", kind, "--out", path, *extra]) == 0
        assert load_json(path).num_vertices > 0

    def test_digraph_kind(self, digraph_path):
        assert load_json(digraph_path).directed


class TestFtSpanner:
    def test_build_verify_export(self, host_path, tmp_path, capsys):
        out = str(tmp_path / "spanner.json")
        dot = str(tmp_path / "spanner.dot")
        code = main(
            ["ft-spanner", host_path, "--k", "3", "--r", "1",
             "--seed", "5", "--out", out, "--dot", dot,
             "--verify", "exhaustive"]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "exhaustively valid" in printed
        spanner = load_json(out)
        host = load_json(host_path)
        assert spanner.num_edges <= host.num_edges
        dot_text = open(dot).read()
        assert dot_text.startswith("graph repro {")

    def test_sampled_verification_default(self, host_path, capsys):
        assert main(["ft-spanner", host_path, "--r", "1", "--seed", "6"]) == 0
        assert "sampled-valid" in capsys.readouterr().out

    def test_insufficient_iterations_fail_exit_code(self, host_path):
        # One iteration cannot be r=2 fault tolerant on this graph.
        code = main(
            ["ft-spanner", host_path, "--r", "2", "--iterations", "1",
             "--seed", "7", "--verify", "exhaustive"]
        )
        assert code == 2


class TestFt2Approx:
    def test_approx_and_export(self, digraph_path, tmp_path, capsys):
        out = str(tmp_path / "two.json")
        assert main(["ft2-approx", digraph_path, "--r", "1", "--seed", "8",
                     "--out", out]) == 0
        printed = capsys.readouterr().out
        assert "LP (4) optimum" in printed
        assert load_json(out).directed


class TestVerify:
    def test_verify_modes(self, host_path, tmp_path):
        spanner_path = str(tmp_path / "sp.json")
        assert main(["ft-spanner", host_path, "--r", "1", "--seed", "9",
                     "--out", spanner_path]) == 0
        for mode in ("exhaustive", "sampled"):
            assert main(["verify", host_path, spanner_path, "--k", "3",
                         "--r", "1", "--mode", mode]) == 0

    def test_verify_fail(self, host_path, tmp_path, capsys):
        # An empty spanner fails verification.
        from repro.graph import Graph, dump_json, load_json as lj

        host = lj(host_path)
        empty = Graph()
        empty.add_vertices(host.vertices())
        empty_path = str(tmp_path / "empty.json")
        dump_json(empty, empty_path)
        code = main(["verify", host_path, empty_path, "--k", "3", "--r", "0",
                     "--mode", "exhaustive"])
        assert code == 2
        assert "FAIL" in capsys.readouterr().out

    def test_lemma31_mode(self, digraph_path, tmp_path):
        spanner_path = str(tmp_path / "two.json")
        assert main(["ft2-approx", digraph_path, "--r", "1", "--seed", "10",
                     "--out", spanner_path]) == 0
        assert main(["verify", digraph_path, spanner_path, "--r", "1",
                     "--mode", "lemma31"]) == 0


def test_error_reporting(tmp_path, capsys):
    # generating a regular graph with bad parity surfaces a clean error
    path = str(tmp_path / "x.json")
    code = main(["generate", "regular", "--n", "7", "--degree", "3",
                 "--out", path])
    assert code == 1
    assert "error:" in capsys.readouterr().err


class TestSharedFlags:
    """--seed/--method/--json come from one parent parser on every command."""

    @pytest.mark.parametrize("method", ["auto", "csr", "dict"])
    def test_method_flag_everywhere(self, host_path, capsys, method):
        assert main(["ft-spanner", host_path, "--r", "1", "--seed", "6",
                     "--method", method]) == 0
        capsys.readouterr()

    def test_method_flag_on_generate(self, tmp_path, capsys):
        path = str(tmp_path / "g.json")
        assert main(["generate", "gnp", "--out", path, "--method", "dict"]) == 0
        capsys.readouterr()

    def test_json_generate(self, tmp_path, capsys):
        path = str(tmp_path / "g.json")
        assert main(["generate", "gnp", "--n", "12", "--out", path,
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["n"] == 12 and doc["out"] == path

    def test_json_ft_spanner(self, host_path, capsys):
        assert main(["ft-spanner", host_path, "--r", "1", "--seed", "5",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["spec"]["algorithm"] == "theorem21"
        assert doc["verification"]["ok"] is True
        assert "wall_time_s" not in doc  # byte-stable output

    def test_json_ft2_approx(self, digraph_path, capsys):
        assert main(["ft2-approx", digraph_path, "--r", "1", "--seed", "8",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["spec"]["algorithm"] == "ft2-approx"
        assert doc["stats"]["lp_objective"] > 0

    def test_json_verify(self, host_path, tmp_path, capsys):
        spanner_path = str(tmp_path / "sp.json")
        assert main(["ft-spanner", host_path, "--r", "1", "--seed", "9",
                     "--out", spanner_path]) == 0
        capsys.readouterr()
        assert main(["verify", host_path, spanner_path, "--k", "3", "--r", "1",
                     "--mode", "sampled", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc == {"mode": "sampled", "k": 3.0, "r": 1, "ok": True}


class TestRunSubcommand:
    def test_run_reproduces_ft_spanner_byte_for_byte(
        self, host_path, tmp_path, capsys
    ):
        """Acceptance gate: `repro run spec.json` == `repro ft-spanner ...`."""
        spec_path = str(tmp_path / "spec.json")
        assert main(["ft-spanner", host_path, "--k", "3", "--r", "1",
                     "--seed", "5", "--spec-out", spec_path, "--json"]) == 0
        direct = capsys.readouterr().out
        assert main(["run", spec_path, "--json"]) == 0
        via_spec = capsys.readouterr().out
        assert direct == via_spec

    def test_run_executes_handwritten_spec(self, host_path, tmp_path, capsys):
        spec_path = str(tmp_path / "bs.json")
        with open(spec_path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "format": "repro-spec",
                    "version": 1,
                    "algorithm": "baswana-sen",
                    "stretch": 3,
                    "seed": 2,
                    "graph": host_path,
                },
                handle,
            )
        assert main(["run", spec_path, "--verify", "none", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["spec"]["algorithm"] == "baswana-sen"
        assert doc["size"] > 0

    def test_run_exports_spanner(self, host_path, tmp_path, capsys):
        spec_path = str(tmp_path / "spec.json")
        out_path = str(tmp_path / "sp.json")
        assert main(["ft-spanner", host_path, "--r", "1", "--seed", "5",
                     "--spec-out", spec_path]) == 0
        capsys.readouterr()
        assert main(["run", spec_path, "--out", out_path]) == 0
        assert load_json(out_path).num_edges > 0

    def test_run_seed_override_changes_the_build(
        self, host_path, tmp_path, capsys
    ):
        spec_path = str(tmp_path / "spec.json")
        assert main(["ft-spanner", host_path, "--r", "1", "--seed", "5",
                     "--spec-out", spec_path, "--json"]) == 0
        capsys.readouterr()
        assert main(["run", spec_path, "--seed", "6", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["resolved_seed"] == 6
        assert doc["spec"]["seed"] == 6

    def test_run_method_override(self, host_path, tmp_path, capsys):
        spec_path = str(tmp_path / "spec.json")
        assert main(["ft-spanner", host_path, "--r", "1", "--seed", "5",
                     "--spec-out", spec_path]) == 0
        capsys.readouterr()
        assert main(["run", spec_path, "--method", "dict", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["spec"]["method"] == "dict"
        assert doc["resolved_method"] == "dict"

    def test_run_explicit_verify_mode_respected(
        self, digraph_path, tmp_path, capsys
    ):
        spec_path = str(tmp_path / "two.json")
        assert main(["ft2-approx", digraph_path, "--r", "1", "--seed", "8",
                     "--spec-out", spec_path]) == 0
        capsys.readouterr()
        assert main(["run", spec_path, "--verify", "exhaustive",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["verification"]["mode"] == "exhaustive"

    def test_run_bad_spec_is_clean_error(self, tmp_path, capsys):
        spec_path = str(tmp_path / "bad.json")
        with open(spec_path, "w", encoding="utf-8") as handle:
            handle.write('{"format": "repro-spec", "algorithm": "nope"}')
        assert main(["run", spec_path]) == 1
        assert "available algorithms" in capsys.readouterr().err


class TestAlgorithms:
    def test_table_lists_registry(self, capsys):
        assert main(["algorithms"]) == 0
        printed = capsys.readouterr().out
        assert "theorem21" in printed and "baswana-sen" in printed

    def test_json_capabilities(self, capsys):
        assert main(["algorithms", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        names = [row["name"] for row in doc["algorithms"]]
        assert "ft2-approx" in names
        assert all("fault_tolerant" in row for row in doc["algorithms"])


class TestSweep:
    @pytest.fixture
    def plan_path(self, host_path, tmp_path, capsys):
        path = str(tmp_path / "plan.json")
        assert main([
            "sweep", "--emit", path, "--graph", host_path,
            "--algorithms", "theorem21,greedy", "--stretch", "3",
            "--r", "0,1", "--seeds", "2", "--skip-unsupported",
        ]) == 0
        capsys.readouterr()
        return path

    def test_emit_writes_a_resolved_plan(self, plan_path):
        from repro import SweepPlan

        plan = SweepPlan.load(plan_path)
        # theorem21 serves r in {0, 1}, greedy only r=0: 3 points x 2 seeds.
        assert len(plan) == 6
        assert plan.is_resolved

    def test_emit_refuses_unsupported_grid(self, host_path, tmp_path, capsys):
        assert main([
            "sweep", "--emit", str(tmp_path / "bad.json"), "--graph",
            host_path, "--algorithms", "baswana-sen", "--r", "1",
        ]) == 1
        assert "unsupported" in capsys.readouterr().err

    def test_workers_shards_and_merge_agree(self, plan_path, tmp_path, capsys):
        assert main(["sweep", plan_path, "--workers", "1", "--json"]) == 0
        sequential = capsys.readouterr().out
        shard_dir = str(tmp_path / "shards")
        for i in range(2):
            assert main(["sweep", plan_path, "--shard", f"{i}/2",
                         "--reports-dir", shard_dir]) == 0
        capsys.readouterr()
        assert main(["merge", shard_dir, "--json"]) == 0
        merged = capsys.readouterr().out
        assert merged == sequential
        doc = json.loads(merged)
        assert doc["count"] == 6
        assert [r["resolved_seed"] for r in doc["reports"]] == [
            0, 1, 0, 1, 0, 1
        ]

    def test_merge_of_partial_shards_fails_cleanly(
        self, plan_path, tmp_path, capsys
    ):
        shard_dir = str(tmp_path / "partial")
        assert main(["sweep", plan_path, "--shard", "0/2",
                     "--reports-dir", shard_dir]) == 0
        capsys.readouterr()
        assert main(["merge", shard_dir]) == 1
        assert "cover" in capsys.readouterr().err

    def test_coverage_matrix_json(self, capsys):
        assert main(["sweep", "--coverage", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        rows = {row["algorithm"]: row for row in doc["coverage"]}
        assert rows["theorem21"]["vertex/k=3"] is True
        assert rows["greedy"]["vertex/k=3"] is False

    def test_conflicting_flags_are_refused(self, plan_path, capsys):
        assert main(["sweep", plan_path, "--emit", "x.json"]) == 1
        assert "emit" in capsys.readouterr().err
        assert main(["sweep", plan_path, "--shard", "0/2",
                     "--workers", "4"]) == 1
        assert "--workers" in capsys.readouterr().err

    def test_bad_grid_values_are_clean_errors(self, host_path, tmp_path,
                                              capsys):
        out = str(tmp_path / "p.json")
        assert main(["sweep", "--emit", out, "--graph", host_path,
                     "--algorithms", "greedy", "--r", "0",
                     "--stretch", "inf"]) == 1
        assert "error:" in capsys.readouterr().err
        assert main(["sweep", "--emit", out, "--graph", host_path,
                     "--algorithms", "greedy", "--r", "0",
                     "--params", "{bad"]) == 1
        assert "JSON" in capsys.readouterr().err


class TestScheduledSweep:
    """`sweep --scheduler`, `sweep-worker`, `sweep --status`, and the
    scheduler-aware `merge` — the fault-tolerant work-queue surface."""

    @pytest.fixture
    def plan_path(self, host_path, tmp_path, capsys):
        path = str(tmp_path / "plan.json")
        assert main([
            "sweep", "--emit", path, "--graph", host_path,
            "--algorithms", "theorem21,greedy", "--stretch", "3",
            "--r", "0,1", "--seeds", "2", "--skip-unsupported",
        ]) == 0
        capsys.readouterr()
        return path

    def test_scheduled_run_matches_plain_sweep_bytes(
        self, plan_path, tmp_path, capsys
    ):
        assert main(["sweep", plan_path, "--workers", "1", "--json"]) == 0
        sequential = capsys.readouterr().out
        sched_dir = str(tmp_path / "sched")
        assert main(["sweep", plan_path, "--scheduler", sched_dir,
                     "--shards", "2", "--workers", "1", "--json"]) == 0
        assert capsys.readouterr().out == sequential
        # The directory is resumable: re-running is an idempotent no-op
        # that reproduces the same bytes from the persisted envelopes.
        assert main(["sweep", plan_path, "--scheduler", sched_dir,
                     "--shards", "2", "--workers", "1", "--json"]) == 0
        assert capsys.readouterr().out == sequential
        # ... and merge over the scheduler directory agrees too.
        assert main(["merge", sched_dir, "--json"]) == 0
        assert capsys.readouterr().out == sequential

    def test_init_only_worker_status_pipeline(
        self, plan_path, tmp_path, capsys
    ):
        sched_dir = str(tmp_path / "sched")
        assert main(["sweep", plan_path, "--scheduler", sched_dir,
                     "--shards", "2", "--workers", "0", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["initialized"] is True and doc["shards"] == 2
        assert main(["sweep", "--status", sched_dir, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["counts"]["pending"] == 2
        assert status["complete"] is False
        assert main(["sweep-worker", sched_dir, "--worker-id", "w0",
                     "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["completed"] == 2 and summary["complete"] is True
        assert main(["sweep", "--status", sched_dir, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["counts"]["done"] == 2 and status["finished"] is True

    def test_quarantine_surfaces_in_status_and_blocks_merge(
        self, host_path, tmp_path, capsys
    ):
        from repro import SpannerSpec, SweepPlan

        # greedy serves no faults; theorem21-adaptive requires them — the
        # second shard fails deterministically at build time.
        plan = SweepPlan.build(
            [
                SpannerSpec("greedy", stretch=3, graph=host_path),
                SpannerSpec("theorem21-adaptive", stretch=3, graph=host_path),
            ],
            name="poison",
        )
        plan_path = str(tmp_path / "poison.json")
        plan.save(plan_path)
        sched_dir = str(tmp_path / "sched")
        assert main(["sweep", plan_path, "--scheduler", sched_dir,
                     "--shards", "2", "--workers", "1", "--max-attempts",
                     "1", "--json"]) == 3
        status = json.loads(capsys.readouterr().out)
        assert status["degraded"] is True
        [entry] = status["quarantined"]
        assert entry["shard"] == 1
        assert "fault kinds" in entry["attempts"][-1]["error"]
        assert main(["sweep", "--status", sched_dir, "--json"]) == 3
        capsys.readouterr()
        assert main(["merge", sched_dir]) == 1
        assert "quarantined" in capsys.readouterr().err

    def test_flag_conflicts_are_refused(self, plan_path, tmp_path, capsys):
        sched_dir = str(tmp_path / "sched")
        assert main(["sweep", plan_path, "--status", sched_dir]) == 1
        assert "--status" in capsys.readouterr().err
        assert main(["sweep", plan_path, "--scheduler", sched_dir,
                     "--shard", "0/2"]) == 1
        assert "sweep-worker" in capsys.readouterr().err
        assert main(["sweep", plan_path, "--workers", "0"]) == 1
        assert "--scheduler" in capsys.readouterr().err


class TestServe:
    @pytest.fixture
    def dense_path(self, tmp_path):
        path = str(tmp_path / "dense.json")
        assert main(["generate", "gnp-connected", "--n", "20", "--p", "0.6",
                     "--seed", "3", "--out", path]) == 0
        return path

    @pytest.fixture
    def workload_path(self, dense_path, tmp_path, capsys):
        path = str(tmp_path / "trace.json")
        assert main(["workload", dense_path, "--ops", "120",
                     "--read-ratio", "0.7", "--seed", "5",
                     "--out", path]) == 0
        capsys.readouterr()
        return path

    def test_workload_emits_valid_trace(self, workload_path):
        from repro.serve import load_workload

        ops = load_workload(workload_path)
        assert len(ops) == 120

    def test_workload_chaos_flags(self, dense_path, tmp_path, capsys):
        path = str(tmp_path / "chaos.json")
        assert main(["workload", dense_path, "--ops", "50",
                     "--chaos-edges", "6", "--chaos-nodes", "2",
                     "--adversarial", "--seed", "5", "--json",
                     "--out", path]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["chaos_ops"] == 8
        assert doc["adversarial"] is True
        assert doc["ops"] == 58

    def test_serve_replays_and_stays_valid(
        self, dense_path, workload_path, tmp_path, capsys
    ):
        spanner_out = str(tmp_path / "spanner.json")
        trace_out = str(tmp_path / "results.json")
        assert main(["serve", dense_path, workload_path, "--r", "1",
                     "--seed", "0", "--json", "--out", spanner_out,
                     "--results-out", trace_out]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["format"] == "repro-serve-result"
        assert doc["summary"]["valid"] is True
        assert doc["summary"]["ops_applied"] == 120
        spanner = load_json(spanner_out)
        assert spanner.num_edges > 0
        with open(trace_out) as handle:
            trace = json.load(handle)
        assert trace["format"] == "repro-serve-trace"
        assert len(trace["results"]) == 120

    def test_serve_policies_and_digest_agreement(
        self, dense_path, workload_path, capsys
    ):
        digests = {}
        for policy in ("tiered", "rebuild-per-op"):
            assert main(["serve", dense_path, workload_path,
                         "--policy", policy, "--final-rebuild",
                         "--seed", "0", "--json"]) == 0
            doc = json.loads(capsys.readouterr().out)
            assert doc["summary"]["valid"] is True
            digests[policy] = doc["spanner_digest"]
        # after a final full rebuild every policy lands on the same spanner
        assert digests["tiered"] == digests["rebuild-per-op"]

    def test_serve_final_rebuild_matches_from_scratch(
        self, dense_path, workload_path, capsys
    ):
        from repro.serve import (
            apply_mutations,
            load_workload,
            spanner_digest,
            stream_ft2_spanner,
        )

        assert main(["serve", dense_path, workload_path, "--r", "1",
                     "--final-rebuild", "--seed", "0", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        host = load_json(dense_path)
        final = apply_mutations(host, load_workload(workload_path))
        assert doc["spanner_digest"] == spanner_digest(
            stream_ft2_spanner(final, 1)
        )

    def test_serve_human_table(self, dense_path, workload_path, capsys):
        assert main(["serve", dense_path, workload_path]) == 0
        out = capsys.readouterr().out
        assert "ops applied" in out
        assert "spanner digest" in out
