"""Spanner verification helpers (is_spanner / stretch / violations)."""

from __future__ import annotations

import math

from repro.graph import Graph, complete_graph, path_graph
from repro.spanners import is_spanner, max_edge_stretch, violating_edges


def test_whole_graph_is_1_spanner():
    g = complete_graph(5)
    assert is_spanner(g, g, 1)
    assert max_edge_stretch(g, g) == 1.0


def test_missing_edge_raises_stretch():
    g = complete_graph(4)
    h = g.copy()
    h.remove_edge(0, 1)
    # 0-1 now has distance 2 via any midpoint -> stretch 2.
    assert max_edge_stretch(h, g) == 2.0
    assert is_spanner(h, g, 2)
    assert not is_spanner(h, g, 1.5)


def test_disconnection_is_infinite_stretch():
    g = path_graph(3)
    h = g.edge_subgraph([(0, 1)])
    assert max_edge_stretch(h, g) == math.inf
    assert not is_spanner(h, g, 100)


def test_violating_edges_reports_exact_set():
    g = complete_graph(4)
    h = g.copy()
    h.remove_edge(0, 1)
    bad = violating_edges(h, g, 1.0)
    assert [(min(u, v), max(u, v)) for u, v, _ in bad] == [(0, 1)]
    assert violating_edges(h, g, 2.0) == []


def test_missing_vertex_fails():
    g = path_graph(3)
    h = Graph()
    h.add_edge(0, 1)
    assert not is_spanner(h, g, 3)


def test_edgeless_host():
    g = Graph()
    g.add_vertices(range(3))
    h = Graph()
    h.add_vertices(range(3))
    assert is_spanner(h, g, 1)
    assert max_edge_stretch(h, g) == 0.0


def test_weighted_stretch_uses_ratio():
    g = Graph()
    g.add_edge(0, 1, 4.0)
    g.add_edge(0, 2, 3.0)
    g.add_edge(2, 1, 3.0)
    h = g.edge_subgraph([(0, 2), (2, 1)])
    assert max_edge_stretch(h, g) == (3.0 + 3.0) / 4.0
