"""networkx bridge round-trips."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graph import DiGraph, Graph, from_networkx, gnp_random_graph, to_networkx


def test_roundtrip_undirected():
    g = gnp_random_graph(15, 0.4, seed=3, weight_range=(0.5, 2.0))
    back = from_networkx(to_networkx(g))
    assert back.vertex_set() == g.vertex_set()
    assert back.num_edges == g.num_edges
    for u, v, w in g.edges():
        assert back.weight(u, v) == pytest.approx(w)


def test_roundtrip_directed():
    g = DiGraph()
    g.add_edge("a", "b", 2.0)
    g.add_edge("b", "a", 3.0)
    nxg = to_networkx(g)
    assert nxg.is_directed()
    back = from_networkx(nxg)
    assert back.directed
    assert back.weight("a", "b") == 2.0
    assert back.weight("b", "a") == 3.0


def test_from_networkx_default_weight():
    nxg = nx.Graph()
    nxg.add_edge(1, 2)  # no weight attribute
    g = from_networkx(nxg)
    assert g.weight(1, 2) == 1.0


def test_from_networkx_rejects_multigraph():
    with pytest.raises(TypeError):
        from_networkx(nx.MultiGraph())


def test_isolated_vertices_survive():
    g = Graph()
    g.add_vertex("lonely")
    back = from_networkx(to_networkx(g))
    assert back.has_vertex("lonely")
