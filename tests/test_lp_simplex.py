"""Pure-python simplex: known optima plus randomized scipy cross-checks."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp import (
    GREATER_EQUAL,
    LESS_EQUAL,
    LinearProgram,
    solve_standard_form,
    solve_with_scipy,
    solve_with_simplex,
)
from repro.errors import InfeasibleLP, UnboundedLP


class TestStandardForm:
    def test_textbook_lp(self):
        # min -x - 2y st x + y <= 4, x <= 3, y <= 2 (as equalities w/ slack)
        a = np.array([
            [1.0, 1.0, 1.0, 0.0, 0.0],
            [1.0, 0.0, 0.0, 1.0, 0.0],
            [0.0, 1.0, 0.0, 0.0, 1.0],
        ])
        b = np.array([4.0, 3.0, 2.0])
        c = np.array([-1.0, -2.0, 0.0, 0.0, 0.0])
        status, x, obj = solve_standard_form(a, b, c)
        assert status == "optimal"
        assert obj == pytest.approx(-6.0)  # x=2, y=2

    def test_infeasible(self):
        # x = -1 with x >= 0 is infeasible.
        a = np.array([[1.0]])
        b = np.array([-1.0])
        c = np.array([1.0])
        # b is negated internally; row becomes -x = 1 -> x = -1 infeasible
        status, _x, _obj = solve_standard_form(a, b, c)
        assert status == "infeasible"

    def test_unbounded(self):
        # min -x st x - s = 0 (x free upward)
        a = np.array([[1.0, -1.0]])
        b = np.array([0.0])
        c = np.array([-1.0, 0.0])
        status, _x, _obj = solve_standard_form(a, b, c)
        assert status == "unbounded"

    def test_degenerate_redundant_rows(self):
        # Two identical rows: still solvable.
        a = np.array([[1.0, 1.0], [1.0, 1.0]])
        b = np.array([2.0, 2.0])
        c = np.array([1.0, 0.0])
        status, x, obj = solve_standard_form(a, b, c)
        assert status == "optimal"
        assert obj == pytest.approx(0.0)


class TestGeneralFormConversion:
    def test_upper_bounds(self):
        lp = LinearProgram()
        lp.add_variable("x", 0.0, 2.0, objective=-1.0)
        sol = solve_with_simplex(lp)
        assert sol.status == "optimal"
        assert sol.values["x"] == pytest.approx(2.0)

    def test_shifted_lower_bounds(self):
        lp = LinearProgram()
        lp.add_variable("x", 1.5, None, objective=1.0)
        lp.add_constraint({"x": 1.0}, GREATER_EQUAL, 1.0)
        sol = solve_with_simplex(lp)
        assert sol.values["x"] == pytest.approx(1.5)

    def test_free_variable_split(self):
        lp = LinearProgram()
        lp.add_variable("x", -math.inf, None, objective=1.0)
        lp.add_constraint({"x": 1.0}, GREATER_EQUAL, -3.0)
        sol = solve_with_simplex(lp)
        assert sol.values["x"] == pytest.approx(-3.0)

    def test_no_constraints_bounded(self):
        lp = LinearProgram()
        lp.add_variable("x", 1.0, 2.0, objective=5.0)
        sol = solve_with_simplex(lp)
        assert sol.objective == pytest.approx(5.0)

    def test_no_constraints_unbounded(self):
        lp = LinearProgram()
        lp.add_variable("x", 0.0, None, objective=-1.0)
        sol = solve_with_simplex(lp)
        assert sol.status == "unbounded"


@st.composite
def random_feasible_lp(draw):
    """A random LP guaranteed feasible by construction around a known point."""
    num_vars = draw(st.integers(2, 5))
    num_cons = draw(st.integers(1, 5))
    rng_vals = st.floats(-2.0, 2.0, allow_nan=False, allow_infinity=False)
    lp1 = LinearProgram()
    lp2 = LinearProgram()
    point = {}
    for i in range(num_vars):
        obj = draw(rng_vals)
        upper = draw(st.sampled_from([None, 3.0, 5.0]))
        lp1.add_variable(i, 0.0, upper, obj)
        lp2.add_variable(i, 0.0, upper, obj)
        point[i] = draw(st.floats(0.0, 1.0, allow_nan=False))
    for _ in range(num_cons):
        coeffs = {
            i: draw(rng_vals) for i in range(num_vars) if draw(st.booleans())
        }
        if not coeffs:
            coeffs = {0: 1.0}
        lhs = sum(c * point[i] for i, c in coeffs.items())
        sense = draw(st.sampled_from([LESS_EQUAL, GREATER_EQUAL]))
        rhs = lhs + 0.5 if sense == LESS_EQUAL else lhs - 0.5
        lp1.add_constraint(coeffs, sense, rhs)
        lp2.add_constraint(coeffs, sense, rhs)
    return lp1, lp2


class TestCrossCheck:
    @settings(max_examples=40, deadline=None)
    @given(pair=random_feasible_lp())
    def test_simplex_matches_scipy(self, pair):
        lp_simplex, lp_scipy = pair
        a = solve_with_simplex(lp_simplex)
        b = solve_with_scipy(lp_scipy)
        assert a.status == b.status
        if a.status == "optimal":
            assert a.objective == pytest.approx(b.objective, rel=1e-5, abs=1e-6)
            # simplex's solution must be feasible for the model
            assert lp_simplex.check_feasible(a.values, tol=1e-5)
