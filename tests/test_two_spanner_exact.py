"""Exact branch-and-bound solver for tiny instances."""

from __future__ import annotations

import pytest

from repro.core import is_ft_2spanner
from repro.errors import FaultToleranceError
from repro.graph import DiGraph, complete_digraph, knapsack_gap_gadget
from repro.two_spanner import exact_minimum_ft2_spanner, gadget_optimum, solve_ft2_lp


def test_gadget_optimum_matches_formula():
    for r in (1, 2, 3):
        g = knapsack_gap_gadget(r, 20.0)
        result = exact_minimum_ft2_spanner(g, r)
        assert result.cost == pytest.approx(gadget_optimum(r, 20.0))
        assert is_ft_2spanner(result.spanner, g, r)


def test_r0_gadget_drops_expensive_edge():
    # With r=0 one two-path suffices, so the expensive edge is dropped.
    g = knapsack_gap_gadget(1, 20.0)
    result = exact_minimum_ft2_spanner(g, 0)
    assert result.cost == pytest.approx(2.0)
    assert not result.spanner.has_edge("u", "v")


def test_complete_digraph_r0():
    # K4 directed, unit costs: a known small instance; optimum keeps a
    # dominating structure. Just verify optimality vs the LP lower bound
    # and validity.
    g = complete_digraph(4)
    result = exact_minimum_ft2_spanner(g, 0)
    lp = solve_ft2_lp(g, 0)
    assert is_ft_2spanner(result.spanner, g, 0)
    assert result.cost >= lp.objective - 1e-6


def test_exact_is_lower_bounded_by_lp():
    g = knapsack_gap_gadget(2, 7.0)
    lp = solve_ft2_lp(g, 2)
    exact = exact_minimum_ft2_spanner(g, 2)
    assert exact.cost >= lp.objective - 1e-6


def test_edge_guard():
    g = complete_digraph(6)  # 30 arcs > default limit
    with pytest.raises(FaultToleranceError):
        exact_minimum_ft2_spanner(g, 1)


def test_negative_r_rejected():
    with pytest.raises(FaultToleranceError):
        exact_minimum_ft2_spanner(complete_digraph(3), -1)


def test_empty_graph():
    g = DiGraph()
    g.add_vertices(range(3))
    result = exact_minimum_ft2_spanner(g, 2)
    assert result.cost == 0.0
    assert result.num_edges == 0


def test_respects_high_r_forcing_everything():
    # r larger than any midpoint count forces every edge to be bought.
    g = complete_digraph(4)
    result = exact_minimum_ft2_spanner(g, 5)
    assert result.num_edges == g.num_edges
