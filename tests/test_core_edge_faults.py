"""Edge-fault-tolerant spanners: conversion, verifiers, and the k=2 lemma."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    edge_fault_sets,
    edge_fault_tolerant_spanner,
    edge_satisfied_for_edge_faults,
    fault_tolerant_spanner,
    is_edge_fault_tolerant_spanner,
    is_edge_ft_2spanner,
    sampled_edge_fault_check,
)
from repro.errors import FaultToleranceError, InvalidStretch
from repro.graph import (
    complete_digraph,
    complete_graph,
    connected_gnp_graph,
    cycle_graph,
    gnp_random_digraph,
    is_subgraph,
)
from repro.spanners import greedy_spanner


class TestEdgeFaultEnumeration:
    def test_enumerates_all_sizes(self):
        edges = [(0, 1), (1, 2), (2, 3)]
        sets = list(edge_fault_sets(edges, 2))
        assert len(sets) == 1 + 3 + 3
        assert () in sets

    def test_respects_edge_count_cap(self):
        edges = [(0, 1)]
        sets = list(edge_fault_sets(edges, 5))
        assert len(sets) == 2


class TestEdgeFaultVerifiers:
    def test_whole_graph_tolerates_edge_faults(self):
        g = complete_graph(5)
        assert is_edge_fault_tolerant_spanner(g, g, k=3, r=2)

    def test_cycle_subgraph_fails(self):
        g = cycle_graph(5)
        h = g.copy()
        h.remove_edge(0, 1)
        # Faulting another cycle edge disconnects h - F while g - F is a path.
        assert not is_edge_fault_tolerant_spanner(h, g, k=10, r=1)

    def test_sampled_check_consistency(self):
        g = complete_graph(6)
        assert sampled_edge_fault_check(g, g, k=1, r=2, trials=30, seed=0)

    def test_sampled_check_finds_violation(self):
        g = cycle_graph(6)
        h = g.copy()
        h.remove_edge(0, 1)
        assert not sampled_edge_fault_check(h, g, k=50, r=1, trials=300, seed=1)

    def test_negative_r(self):
        g = complete_graph(3)
        with pytest.raises(FaultToleranceError):
            is_edge_fault_tolerant_spanner(g, g, 1, -1)
        with pytest.raises(FaultToleranceError):
            is_edge_ft_2spanner(g, g, -1)


class TestEdgeFaultConversion:
    def test_r0_is_base_run(self):
        g = connected_gnp_graph(15, 0.4, seed=1)
        result = edge_fault_tolerant_spanner(g, 3, 0, seed=2)
        assert result.num_edges == greedy_spanner(g, 3).num_edges

    def test_output_subgraph_and_valid_r1(self):
        g = connected_gnp_graph(10, 0.55, seed=3)
        result = edge_fault_tolerant_spanner(g, 3, 1, seed=4)
        assert is_subgraph(result.spanner, g)
        assert is_edge_fault_tolerant_spanner(result.spanner, g, 3, 1)

    def test_parameter_validation(self):
        g = complete_graph(4)
        with pytest.raises(InvalidStretch):
            edge_fault_tolerant_spanner(g, 0.2, 1)
        with pytest.raises(FaultToleranceError):
            edge_fault_tolerant_spanner(g, 3, -1)

    def test_stats_track_surviving_edges(self):
        g = complete_graph(8)
        result = edge_fault_tolerant_spanner(g, 3, 2, iterations=5, seed=5)
        assert len(result.stats.survivor_sizes) == 5
        assert all(0 <= s <= g.num_edges for s in result.stats.survivor_sizes)

    def test_vertex_ft_implies_edge_ft_for_2spanner(self):
        """A vertex-FT 2-spanner certificate is also an edge-FT one (the
        per-edge conditions coincide)."""
        g = complete_digraph(6)
        result = fault_tolerant_spanner(g, 2, 1, iterations=40, seed=6)
        from repro.core import is_ft_2spanner

        if is_ft_2spanner(result.spanner, g, 1):
            assert is_edge_ft_2spanner(result.spanner, g, 1)


class TestEdgeFaultLemma31Analogue:
    def test_kept_edge_suffices(self):
        g = complete_digraph(3)
        h = g.copy()
        assert edge_satisfied_for_edge_faults(h, 0, 1, r=5)

    def test_midpoint_counting(self):
        g = complete_digraph(5)
        h = g.copy()
        h.remove_edge(0, 1)
        assert edge_satisfied_for_edge_faults(h, 0, 1, r=2)  # 3 midpoints
        assert not edge_satisfied_for_edge_faults(h, 0, 1, r=3)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2000), r=st.integers(0, 2))
    def test_lemma_equals_exhaustive_edge_faults(self, seed, r):
        """The k=2 edge-fault condition ≡ the exhaustive definition.

        This is the module's claimed equivalence, checked by enumeration
        over every edge-fault set on random sub-digraphs.
        """
        import random

        g = gnp_random_digraph(6, 0.55, seed=seed)
        if g.num_edges > 14:  # keep C(m, 2) enumeration small
            edges = list(g.edges())[:14]
            g = g.edge_subgraph([(u, v) for u, v, _w in edges])
        rng = random.Random(seed + 1)
        keep = [(u, v) for u, v, _w in g.edges() if rng.random() < 0.7]
        h = g.edge_subgraph(keep)
        lemma = is_edge_ft_2spanner(h, g, r)
        exhaustive = is_edge_fault_tolerant_spanner(h, g, 2, r)
        assert lemma == exhaustive
