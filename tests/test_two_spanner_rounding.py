"""Algorithm 1 threshold rounding and its Las-Vegas driver."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import is_ft_2spanner
from repro.errors import RoundingError
from repro.graph import complete_digraph, gnp_random_digraph, knapsack_gap_gadget
from repro.rng import ensure_rng
from repro.two_spanner import (
    alpha_log_delta,
    alpha_log_n,
    alpha_r_log_n,
    draw_thresholds,
    round_once,
    round_until_valid,
    select_edges,
    solve_ft2_lp,
)


class TestAlphas:
    def test_alpha_log_n(self):
        assert alpha_log_n(100, constant=2.0) == pytest.approx(2 * math.log(100))

    def test_alpha_r_log_n_scales_with_r(self):
        assert alpha_r_log_n(100, 4) == pytest.approx(4 * alpha_r_log_n(100, 1))

    def test_alpha_log_delta(self):
        assert alpha_log_delta(8, constant=1.0) == pytest.approx(math.log(8))

    def test_small_arguments_clamped(self):
        assert alpha_log_n(1) > 0
        assert alpha_log_delta(1) > 0


class TestSelectionRule:
    def test_x_one_always_selected(self):
        g = complete_digraph(3)
        xs = {(u, v): 1.0 for u, v, _w in g.edges()}
        thresholds = {v: 1.0 for v in g.vertices()}
        out = select_edges(g, xs, thresholds, alpha=1.0)
        assert out.num_edges == g.num_edges

    def test_x_zero_never_selected(self):
        g = complete_digraph(3)
        xs = {(u, v): 0.0 for u, v, _w in g.edges()}
        thresholds = {v: 0.5 for v in g.vertices()}
        out = select_edges(g, xs, thresholds, alpha=100.0)
        assert out.num_edges == 0

    def test_min_endpoint_rule(self):
        g = complete_digraph(2)
        xs = {(0, 1): 0.5, (1, 0): 0.5}
        thresholds = {0: 0.9, 1: 0.4}
        out = select_edges(g, xs, thresholds, alpha=1.0)
        # min(T0, T1) = 0.4 <= 0.5 -> both arcs selected
        assert out.num_edges == 2

    def test_monotone_in_alpha(self):
        g = gnp_random_digraph(8, 0.5, seed=1)
        xs = {(u, v): 0.3 for u, v, _w in g.edges()}
        thresholds = draw_thresholds(g, ensure_rng(2))
        small = select_edges(g, xs, thresholds, alpha=0.5)
        large = select_edges(g, xs, thresholds, alpha=2.0)
        assert small.num_edges <= large.num_edges
        for u, v, _w in small.edges():
            assert large.has_edge(u, v)

    def test_round_once_deterministic_under_seed(self):
        g = gnp_random_digraph(8, 0.5, seed=3)
        xs = {(u, v): 0.4 for u, v, _w in g.edges()}
        a = round_once(g, xs, 1.0, seed=7)
        b = round_once(g, xs, 1.0, seed=7)
        assert sorted(map(tuple, a.edges())) == sorted(map(tuple, b.edges()))


class TestLasVegasDriver:
    def test_valid_output_from_lp(self):
        g = gnp_random_digraph(10, 0.5, seed=5)
        lp = solve_ft2_lp(g, 1)
        result = round_until_valid(
            g, lp.x_values(), 1, alpha_log_n(10), seed=6
        )
        assert is_ft_2spanner(result.spanner, g, 1)
        assert result.attempts >= 1

    def test_repair_path_guarantees_validity(self):
        # alpha = 0 selects nothing; repair must buy every host edge.
        g = knapsack_gap_gadget(2, 5.0)
        xs = {(u, v): 0.0 for u, v, _w in g.edges()}
        result = round_until_valid(g, xs, 2, alpha=0.0, max_attempts=2, seed=1)
        assert is_ft_2spanner(result.spanner, g, 2)
        assert len(result.repaired_edges) == g.num_edges

    def test_no_repair_raises(self):
        g = knapsack_gap_gadget(2, 5.0)
        xs = {(u, v): 0.0 for u, v, _w in g.edges()}
        with pytest.raises(RoundingError):
            round_until_valid(
                g, xs, 2, alpha=0.0, max_attempts=2, seed=1, repair=False
            )

    def test_cost_accounting(self):
        g = knapsack_gap_gadget(1, 9.0)
        xs = {(u, v): 1.0 for u, v, _w in g.edges()}
        result = round_until_valid(g, xs, 1, alpha=1.0, seed=2)
        assert result.cost == pytest.approx(g.total_weight())
        assert result.num_edges == g.num_edges

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_property_always_valid(self, seed):
        g = gnp_random_digraph(8, 0.6, seed=seed)
        lp = solve_ft2_lp(g, 1)
        result = round_until_valid(
            g, lp.x_values(), 1, alpha_log_n(8), seed=seed + 1
        )
        assert is_ft_2spanner(result.spanner, g, 1)
