"""Failure injection and metamorphic properties of the fault-tolerance stack.

These tests attack the verifiers and constructions with *crafted* failures
rather than random ones: if a verifier ever accepts a spanner with a
planted weakness, or a construction loses validity under a legal mutation,
these catch it.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    count_two_paths,
    fault_tolerant_spanner,
    first_violating_fault_set,
    is_fault_tolerant_spanner,
    is_ft_2spanner,
    unsatisfied_edges,
)
from repro.graph import (
    complete_digraph,
    complete_graph,
    connected_gnp_graph,
    gnp_random_digraph,
)
from repro.two_spanner import approximate_ft2_spanner


class TestPlantedWeaknesses:
    def test_verifier_catches_midpoint_assassination(self):
        """Remove an edge and all but r of its 2-path midpoints' links:
        the exhaustive verifier must find the killing fault set."""
        g = complete_graph(7)
        h = g.copy()
        h.remove_edge(0, 1)
        # sever 0's connection to all midpoints except 2 and 3
        for z in (4, 5, 6):
            h.remove_edge(0, z)
        # now only midpoints 2, 3 connect 0 to 1 at distance 2; with r = 2
        # the fault set {2, 3} stretches 0-1 beyond k = 2... d_{h-F}(0,1)
        # may even be 3. Check k=2, r=2 fails and the witness kills 2, 3.
        assert not is_fault_tolerant_spanner(h, g, 2, 2)
        witness = first_violating_fault_set(h, g, 2, 2)
        assert witness is not None
        assert set(witness) <= {2, 3, 4, 5, 6}

    def test_lemma31_catches_exactly_r_paths(self):
        g = complete_digraph(6)
        h = g.copy()
        h.remove_edge(0, 1)
        # leave exactly r+1 midpoints, then delete one more
        assert count_two_paths(h, 0, 1) == 4
        assert is_ft_2spanner(h, g, 3)
        h.remove_edge(0, 2)  # kills midpoint 2 for (0, 1)
        assert not is_ft_2spanner(h, g, 3)
        assert (0, 1) in unsatisfied_edges(h, g, 3)

    def test_verifier_rejects_silent_downgrade(self):
        """A spanner valid for r must be checkable (and possibly invalid)
        for r+1 — validity is monotone *downward* in r, never upward."""
        g = complete_digraph(5)
        result = approximate_ft2_spanner(g, 1, seed=1)
        assert is_ft_2spanner(result.spanner, g, 1)
        assert is_ft_2spanner(result.spanner, g, 0)  # downward monotone


class TestMetamorphicProperties:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_adding_edges_preserves_ft(self, seed):
        """FT-ness is monotone under adding host edges to the spanner."""
        g = connected_gnp_graph(11, 0.5, seed=seed)
        result = fault_tolerant_spanner(g, 3, 1, seed=seed + 1)
        spanner = result.spanner.copy()
        rng = random.Random(seed + 2)
        missing = [
            (u, v, w) for u, v, w in g.edges() if not spanner.has_edge(u, v)
        ]
        for u, v, w in rng.sample(missing, min(3, len(missing))):
            spanner.add_edge(u, v, w)
        assert is_fault_tolerant_spanner(spanner, g, 3, 1)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_r_monotonicity_of_outputs(self, seed):
        """An r=2-valid output is r=1 valid (definition is monotone)."""
        g = connected_gnp_graph(10, 0.55, seed=seed)
        result = fault_tolerant_spanner(g, 3, 2, seed=seed + 1)
        if is_fault_tolerant_spanner(result.spanner, g, 3, 2):
            assert is_fault_tolerant_spanner(result.spanner, g, 3, 1)
            assert is_fault_tolerant_spanner(result.spanner, g, 3, 0)

    def test_whole_graph_is_always_ft(self):
        for seed in range(3):
            g = gnp_random_digraph(8, 0.5, seed=seed)
            assert is_ft_2spanner(g, g, 10)
            assert is_fault_tolerant_spanner(g, g, 1, 2)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_union_of_two_ft_spanners_is_ft(self, seed):
        """Union preserves fault tolerance (used implicitly by Thm 2.1)."""
        g = connected_gnp_graph(10, 0.5, seed=seed)
        a = fault_tolerant_spanner(g, 3, 1, seed=seed + 1).spanner
        b = fault_tolerant_spanner(g, 3, 1, seed=seed + 2).spanner
        union = a.copy()
        for u, v, w in b.edges():
            union.add_edge(u, v, w)
        if is_fault_tolerant_spanner(a, g, 3, 1):
            assert is_fault_tolerant_spanner(union, g, 3, 1)

    def test_relabeling_invariance(self):
        """Fault tolerance is a graph property: relabeling vertices of both
        host and spanner preserves the verdict."""
        g = connected_gnp_graph(9, 0.5, seed=7)
        result = fault_tolerant_spanner(g, 3, 1, seed=8)
        verdict = is_fault_tolerant_spanner(result.spanner, g, 3, 1)

        mapping = {v: f"node-{v}" for v in g.vertices()}
        relabeled_g = type(g)()
        relabeled_g.add_vertices(mapping.values())
        for u, v, w in g.edges():
            relabeled_g.add_edge(mapping[u], mapping[v], w)
        relabeled_h = type(g)()
        relabeled_h.add_vertices(mapping.values())
        for u, v, w in result.spanner.edges():
            relabeled_h.add_edge(mapping[u], mapping[v], w)
        assert (
            is_fault_tolerant_spanner(relabeled_h, relabeled_g, 3, 1) == verdict
        )
