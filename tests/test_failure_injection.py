"""Failure injection and metamorphic properties of the fault-tolerance stack.

These tests attack the verifiers and constructions with *crafted* failures
rather than random ones: if a verifier ever accepts a spanner with a
planted weakness, or a construction loses validity under a legal mutation,
these catch it.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    IncrementalFT2Verifier,
    count_two_paths,
    fault_tolerant_spanner,
    first_violating_fault_set,
    is_fault_tolerant_spanner,
    is_ft_2spanner,
    unsatisfied_edges,
)
from repro.errors import FaultToleranceError
from repro.graph import (
    complete_digraph,
    complete_graph,
    connected_gnp_graph,
    gnp_random_digraph,
)
from repro.two_spanner import approximate_ft2_spanner


class TestPlantedWeaknesses:
    def test_verifier_catches_midpoint_assassination(self):
        """Remove an edge and all but r of its 2-path midpoints' links:
        the exhaustive verifier must find the killing fault set."""
        g = complete_graph(7)
        h = g.copy()
        h.remove_edge(0, 1)
        # sever 0's connection to all midpoints except 2 and 3
        for z in (4, 5, 6):
            h.remove_edge(0, z)
        # now only midpoints 2, 3 connect 0 to 1 at distance 2; with r = 2
        # the fault set {2, 3} stretches 0-1 beyond k = 2... d_{h-F}(0,1)
        # may even be 3. Check k=2, r=2 fails and the witness kills 2, 3.
        assert not is_fault_tolerant_spanner(h, g, 2, 2)
        witness = first_violating_fault_set(h, g, 2, 2)
        assert witness is not None
        assert set(witness) <= {2, 3, 4, 5, 6}

    def test_lemma31_catches_exactly_r_paths(self):
        g = complete_digraph(6)
        h = g.copy()
        h.remove_edge(0, 1)
        # leave exactly r+1 midpoints, then delete one more
        assert count_two_paths(h, 0, 1) == 4
        assert is_ft_2spanner(h, g, 3)
        h.remove_edge(0, 2)  # kills midpoint 2 for (0, 1)
        assert not is_ft_2spanner(h, g, 3)
        assert (0, 1) in unsatisfied_edges(h, g, 3)

    def test_verifier_rejects_silent_downgrade(self):
        """A spanner valid for r must be checkable (and possibly invalid)
        for r+1 — validity is monotone *downward* in r, never upward."""
        g = complete_digraph(5)
        result = approximate_ft2_spanner(g, 1, seed=1)
        assert is_ft_2spanner(result.spanner, g, 1)
        assert is_ft_2spanner(result.spanner, g, 0)  # downward monotone


class TestMetamorphicProperties:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_adding_edges_preserves_ft(self, seed):
        """FT-ness is monotone under adding host edges to the spanner."""
        g = connected_gnp_graph(11, 0.5, seed=seed)
        result = fault_tolerant_spanner(g, 3, 1, seed=seed + 1)
        spanner = result.spanner.copy()
        rng = random.Random(seed + 2)
        missing = [
            (u, v, w) for u, v, w in g.edges() if not spanner.has_edge(u, v)
        ]
        for u, v, w in rng.sample(missing, min(3, len(missing))):
            spanner.add_edge(u, v, w)
        assert is_fault_tolerant_spanner(spanner, g, 3, 1)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_r_monotonicity_of_outputs(self, seed):
        """An r=2-valid output is r=1 valid (definition is monotone)."""
        g = connected_gnp_graph(10, 0.55, seed=seed)
        result = fault_tolerant_spanner(g, 3, 2, seed=seed + 1)
        if is_fault_tolerant_spanner(result.spanner, g, 3, 2):
            assert is_fault_tolerant_spanner(result.spanner, g, 3, 1)
            assert is_fault_tolerant_spanner(result.spanner, g, 3, 0)

    def test_whole_graph_is_always_ft(self):
        for seed in range(3):
            g = gnp_random_digraph(8, 0.5, seed=seed)
            assert is_ft_2spanner(g, g, 10)
            assert is_fault_tolerant_spanner(g, g, 1, 2)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_union_of_two_ft_spanners_is_ft(self, seed):
        """Union preserves fault tolerance (used implicitly by Thm 2.1)."""
        g = connected_gnp_graph(10, 0.5, seed=seed)
        a = fault_tolerant_spanner(g, 3, 1, seed=seed + 1).spanner
        b = fault_tolerant_spanner(g, 3, 1, seed=seed + 2).spanner
        union = a.copy()
        for u, v, w in b.edges():
            union.add_edge(u, v, w)
        if is_fault_tolerant_spanner(a, g, 3, 1):
            assert is_fault_tolerant_spanner(union, g, 3, 1)

    def test_relabeling_invariance(self):
        """Fault tolerance is a graph property: relabeling vertices of both
        host and spanner preserves the verdict."""
        g = connected_gnp_graph(9, 0.5, seed=7)
        result = fault_tolerant_spanner(g, 3, 1, seed=8)
        verdict = is_fault_tolerant_spanner(result.spanner, g, 3, 1)

        mapping = {v: f"node-{v}" for v in g.vertices()}
        relabeled_g = type(g)()
        relabeled_g.add_vertices(mapping.values())
        for u, v, w in g.edges():
            relabeled_g.add_edge(mapping[u], mapping[v], w)
        relabeled_h = type(g)()
        relabeled_h.add_vertices(mapping.values())
        for u, v, w in result.spanner.edges():
            relabeled_h.add_edge(mapping[u], mapping[v], w)
        assert (
            is_fault_tolerant_spanner(relabeled_h, relabeled_g, 3, 1) == verdict
        )


class TestIncrementalVerifierUnderMutation:
    """The serving layer's damage detector vs. the static ground truth.

    Random interleaved spanner *and host* mutations (the full extended
    API: add/remove spanner edges, host edges, host vertices) are applied
    to an :class:`IncrementalFT2Verifier` and mirrored onto plain host /
    spanner graphs; after every step the incremental ``unsatisfied()``
    set must equal :func:`unsatisfied_edges` recomputed from scratch on
    the mirrors.
    """

    KINDS = (
        "add_spanner",
        "add_spanner",
        "remove_spanner",
        "remove_spanner",
        "add_host_edge",
        "remove_host_edge",
        "add_host_vertex",
        "remove_host_vertex",
    )

    @staticmethod
    def _check(verifier, spanner, host, r):
        def canon(pair):
            u, v = pair
            if host.directed or repr(u) <= repr(v):
                return (u, v)
            return (v, u)

        expected = {canon(e) for e in unsatisfied_edges(spanner, host, r)}
        got = {canon(e) for e in verifier.unsatisfied()}
        assert got == expected
        assert verifier.num_unsatisfied == len(expected)
        assert verifier.is_valid() == (not expected)
        assert verifier.num_host_edges == host.num_edges

    def _step(self, rng, kind, verifier, spanner, host):
        """Apply one mutation to verifier and mirrors; False if inapplicable."""
        if kind == "add_spanner":
            missing = [
                (u, v)
                for u, v, _w in host.edges()
                if not spanner.has_edge(u, v)
            ]
            if not missing:
                return False
            u, v = missing[rng.randrange(len(missing))]
            verifier.add_edge(u, v)
            spanner.add_edge(u, v, host.weight(u, v))
        elif kind == "remove_spanner":
            edges = [(u, v) for u, v, _w in spanner.edges()]
            if not edges:
                return False
            u, v = edges[rng.randrange(len(edges))]
            verifier.remove_edge(u, v)
            spanner.remove_edge(u, v)
        elif kind == "add_host_edge":
            nodes = list(host.vertices())
            pairs = [
                (u, v)
                for u in nodes
                for v in nodes
                if u != v and not host.has_edge(u, v)
            ]
            if not pairs:
                return False
            u, v = pairs[rng.randrange(len(pairs))]
            verifier.add_host_edge(u, v)
            host.add_edge(u, v, 1.0)
            spanner.add_vertex(u)
            spanner.add_vertex(v)
        elif kind == "remove_host_edge":
            edges = [(u, v) for u, v, _w in host.edges()]
            if not edges:
                return False
            u, v = edges[rng.randrange(len(edges))]
            verifier.remove_host_edge(u, v)
            host.remove_edge(u, v)
            if spanner.has_edge(u, v):
                spanner.remove_edge(u, v)
        elif kind == "add_host_vertex":
            name = f"fresh-{host.num_vertices}-{rng.randrange(1000)}"
            if host.has_vertex(name):
                return False
            verifier.add_host_vertex(name)
            host.add_vertex(name)
            spanner.add_vertex(name)
        else:  # remove_host_vertex
            nodes = list(host.vertices())
            if len(nodes) <= 3:
                return False
            v = nodes[rng.randrange(len(nodes))]
            verifier.remove_host_vertex(v)
            host.remove_vertex(v)
            if spanner.has_vertex(v):
                spanner.remove_vertex(v)
        return True

    def _run(self, host, r, seed, num_ops=60):
        rng = random.Random(seed)
        spanner = type(host)()
        spanner.add_vertices(host.vertices())
        verifier = IncrementalFT2Verifier(host.copy(), r, spanner)
        self._check(verifier, spanner, host, r)
        for _step in range(num_ops):
            kind = self.KINDS[rng.randrange(len(self.KINDS))]
            if self._step(rng, kind, verifier, spanner, host):
                self._check(verifier, spanner, host, r)

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10_000), r=st.integers(0, 2))
    def test_undirected_interleaved_mutations(self, seed, r):
        host = connected_gnp_graph(8, 0.45, seed=seed % 50)
        self._run(host, r, seed)

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10_000), r=st.integers(0, 2))
    def test_directed_interleaved_mutations(self, seed, r):
        host = gnp_random_digraph(8, 0.4, seed=seed % 50)
        self._run(host, r, seed)

    def test_readded_host_edge_moves_to_the_end(self):
        g = complete_graph(4)
        verifier = IncrementalFT2Verifier(g, 0)
        first = next(iter(verifier.host_edges()))
        verifier.remove_host_edge(*first)
        assert not verifier.has_host_edge(*first)
        verifier.add_host_edge(*first)
        assert list(verifier.host_edges())[-1] == first
        assert verifier.num_host_edges == g.num_edges

    def test_removals_validate_their_targets(self):
        g = complete_graph(4)
        verifier = IncrementalFT2Verifier(g, 1)
        with pytest.raises(FaultToleranceError, match="not a spanner edge"):
            verifier.remove_edge(0, 1)
        with pytest.raises(FaultToleranceError, match="not a host edge"):
            verifier.remove_host_edge(0, "ghost")
        with pytest.raises(FaultToleranceError, match="not a host vertex"):
            verifier.remove_host_vertex("ghost")

    def test_remove_host_edge_drops_kept_spanner_edge_first(self):
        g = complete_graph(5)
        spanner = g.copy()
        verifier = IncrementalFT2Verifier(g, 1, spanner=spanner)
        assert verifier.is_valid()
        verifier.remove_host_edge(0, 1)
        assert not verifier.has_edge(0, 1)
        assert not verifier.has_host_edge(0, 1)
        # mirrors agree with the static recomputation
        spanner.remove_edge(0, 1)
        host = g.copy()
        host.remove_edge(0, 1)
        assert set(verifier.unsatisfied()) == set(
            unsatisfied_edges(spanner, host, 1)
        )
