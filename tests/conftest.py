"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.graph import (
    DiGraph,
    Graph,
    complete_digraph,
    complete_graph,
    connected_gnp_graph,
    cycle_graph,
    gnp_random_digraph,
    grid_graph,
    knapsack_gap_gadget,
    path_graph,
)


@pytest.fixture
def triangle() -> Graph:
    """K3 with unit weights."""
    return complete_graph(3)


@pytest.fixture
def small_weighted() -> Graph:
    """A 5-vertex weighted graph with a known shortest-path structure."""
    g = Graph()
    g.add_edge(0, 1, 1.0)
    g.add_edge(1, 2, 1.0)
    g.add_edge(2, 3, 1.0)
    g.add_edge(3, 4, 1.0)
    g.add_edge(0, 4, 10.0)
    g.add_edge(0, 2, 2.5)
    return g

@pytest.fixture
def small_digraph() -> DiGraph:
    """A 4-vertex digraph with one 2-path shortcut."""
    g = DiGraph()
    g.add_edge("a", "b", 1.0)
    g.add_edge("b", "c", 1.0)
    g.add_edge("a", "c", 5.0)
    g.add_edge("c", "d", 2.0)
    return g


@pytest.fixture
def random_connected() -> Graph:
    """A reproducible connected G(24, 0.25)."""
    return connected_gnp_graph(24, 0.25, seed=42)


@pytest.fixture
def random_digraph() -> DiGraph:
    """A reproducible directed instance for 2-spanner tests."""
    return gnp_random_digraph(10, 0.5, seed=42)


@pytest.fixture
def gadget() -> DiGraph:
    """Knapsack-cover gap gadget with r=2."""
    return knapsack_gap_gadget(2, expensive_cost=100.0)
