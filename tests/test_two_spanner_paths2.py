"""Length-2 path enumeration."""

from __future__ import annotations

from repro.graph import DiGraph, complete_digraph, complete_graph, knapsack_gap_gadget
from repro.two_spanner import (
    all_two_paths,
    path_edges,
    surviving_midpoints,
    two_path_midpoints,
)


def test_midpoints_directed():
    g = DiGraph()
    g.add_edge("u", "z"); g.add_edge("z", "v")
    g.add_edge("v", "w")  # irrelevant
    assert two_path_midpoints(g, "u", "v") == ["z"]
    assert two_path_midpoints(g, "v", "u") == []


def test_midpoints_exclude_endpoints():
    g = DiGraph()
    g.add_edge("u", "v"); g.add_edge("v", "u")
    g.add_edge("u", "z"); g.add_edge("z", "v")
    # "v" is a successor of u and predecessor of v? ensure endpoints dropped
    mids = two_path_midpoints(g, "u", "v")
    assert "u" not in mids and "v" not in mids
    assert mids == ["z"]


def test_midpoints_complete_digraph():
    g = complete_digraph(6)
    assert len(two_path_midpoints(g, 0, 1)) == 4


def test_midpoints_undirected():
    g = complete_graph(5)
    assert len(two_path_midpoints(g, 0, 1)) == 3


def test_midpoints_missing_vertex():
    g = complete_graph(3)
    assert two_path_midpoints(g, 0, 99) == []


def test_all_two_paths_covers_every_edge():
    g = knapsack_gap_gadget(3)
    paths = all_two_paths(g)
    assert set(paths) == {(u, v) for u, v, _w in g.edges()}
    assert len(paths[("u", "v")]) == 3
    assert paths[("u", ("w", 0))] == []


def test_path_edges():
    assert path_edges("u", "z", "v") == [("u", "z"), ("z", "v")]


def test_surviving_midpoints():
    assert surviving_midpoints(["a", "b", "c"], {"b"}) == ["a", "c"]
    assert surviving_midpoints([], {"x"}) == []
