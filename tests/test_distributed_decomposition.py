"""Padded decompositions (Lemma 3.7): properties and both implementations."""

from __future__ import annotations

import math

import pytest

from repro.distributed import (
    default_radius_cap,
    distributed_padded_decomposition,
    sample_padded_decomposition,
)
from repro.errors import DistributedError
from repro.graph import DiGraph, connected_gnp_graph, grid_graph, path_graph
from repro.rng import ensure_rng


class TestCentralizedSampler:
    def test_every_vertex_assigned(self):
        g = grid_graph(5, 5)
        dec = sample_padded_decomposition(g, seed=1)
        assert set(dec.assignment) == g.vertex_set()

    def test_clusters_partition_vertices(self):
        g = grid_graph(4, 6)
        dec = sample_padded_decomposition(g, seed=2)
        members = [v for c in dec.clusters.values() for v in c]
        assert sorted(members, key=repr) == sorted(g.vertices(), key=repr)

    def test_diameter_bounded_by_cap(self):
        g = grid_graph(6, 6)
        dec = sample_padded_decomposition(g, seed=3)
        # Each cluster lies in a radius-cap ball around its center, so the
        # weak diameter is at most 2 * cap.
        assert dec.max_weak_diameter(g) <= 2 * dec.radius_cap

    def test_padding_frequency_at_least_half(self):
        """Definition 3.6 item 2, verified empirically over samples."""
        g = grid_graph(7, 7)
        rng = ensure_rng(4)
        total, padded = 0, 0
        for i in range(30):
            dec = sample_padded_decomposition(g, seed=rng)
            for v in g.vertices():
                total += 1
                padded += dec.is_padded(g, v)
        assert padded / total >= 0.5

    def test_rejects_directed(self):
        g = DiGraph()
        g.add_edge(1, 2)
        with pytest.raises(DistributedError):
            sample_padded_decomposition(g)

    def test_radius_cap_default(self):
        assert default_radius_cap(100) == math.ceil(8 * math.log(100))
        assert default_radius_cap(1) >= 2


class TestDistributedSampler:
    def test_matches_structure(self):
        g = grid_graph(4, 4)
        dec, sim = distributed_padded_decomposition(g, seed=5)
        assert set(dec.assignment) == g.vertex_set()
        assert sim.rounds <= dec.radius_cap + 1

    def test_rounds_are_logarithmic(self):
        g = grid_graph(5, 8)
        dec, sim = distributed_padded_decomposition(g, seed=6)
        assert sim.rounds <= default_radius_cap(g.num_vertices) + 1

    def test_cluster_membership_within_center_ball(self):
        from repro.graph import bfs_distances

        g = grid_graph(5, 5)
        dec, _sim = distributed_padded_decomposition(g, seed=7)
        for center, members in dec.clusters.items():
            reach = bfs_distances(g, center, cutoff=dec.radii[center])
            for v in members:
                assert v in reach

    def test_padding_frequency_distributed(self):
        g = grid_graph(6, 6)
        rng = ensure_rng(8)
        total, padded = 0, 0
        for _ in range(15):
            dec, _sim = distributed_padded_decomposition(g, seed=rng)
            for v in g.vertices():
                total += 1
                padded += dec.is_padded(g, v)
        assert padded / total >= 0.5

    def test_same_cluster_helper(self):
        g = path_graph(4)
        dec, _ = distributed_padded_decomposition(g, seed=9)
        for u in g.vertices():
            assert dec.same_cluster(u, u)


class TestDistributedSamplerMethodDispatch:
    def test_engine_identical_to_dict_loop(self):
        g = connected_gnp_graph(55, 0.1, seed=30)
        dec_d, sim_d = distributed_padded_decomposition(g, seed=31, method="dict")
        dec_c, sim_c = distributed_padded_decomposition(g, seed=31, method="csr")
        assert dec_d.assignment == dec_c.assignment
        assert dec_d.radii == dec_c.radii
        assert (sim_d.rounds, sim_d.messages_sent) == (
            sim_c.rounds, sim_c.messages_sent
        )
