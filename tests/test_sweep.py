"""Sharded sweep driver: plan round trips, partition determinism, merge.

The load-bearing property here is the acceptance criterion of the sweep
subsystem: *any* ``(i, of)`` partition of a plan — in-process, across
worker processes, or across hash-randomized subprocesses — reproduces the
sequential :meth:`repro.session.Session.build_many` reports exactly
(same resolved seeds, same RNG fingerprints, byte-identical report
documents).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro import (
    FaultModel,
    Session,
    SpannerSpec,
    SweepPlan,
    coverage_matrix,
    emit_grid_plan,
    run_sweep,
)
from repro.analysis import merge_shard_reports
from repro.errors import InvalidSpec
from repro.graph import connected_gnp_graph
from repro.sweep import (
    load_shard_report,
    parse_shard,
    run_shard,
    save_shard_report,
)


@pytest.fixture
def hosts():
    return (
        connected_gnp_graph(18, 0.3, seed=1),
        connected_gnp_graph(22, 0.25, seed=2),
    )


@pytest.fixture
def plan(hosts):
    """Nine unseeded specs over two hosts, three algorithms."""
    g1, g2 = hosts
    specs = (
        [
            SpannerSpec(
                "theorem21", stretch=3, faults=FaultModel.vertex(1),
                params={"schedule": "light", "constant": 1.0}, graph=g1,
            )
            for _ in range(3)
        ]
        + [SpannerSpec("greedy", stretch=3, graph=g2) for _ in range(3)]
        + [SpannerSpec("baswana-sen", stretch=3, graph=g1) for _ in range(3)]
    )
    return SweepPlan.build(specs, name="test-plan")


def report_docs(reports):
    return json.dumps([r.to_dict() for r in reports], sort_keys=True)


class TestSweepPlan:
    def test_build_hoists_shared_hosts(self, plan):
        assert len(plan) == 9
        assert len(plan.hosts) == 2  # two instances -> two shared refs
        assert all(spec.graph is None for spec in plan.specs)

    def test_json_round_trip(self, plan, tmp_path):
        clone = SweepPlan.from_json(plan.to_json())
        assert clone.to_json() == plan.to_json()
        assert clone.fingerprint() == plan.fingerprint()
        path = str(tmp_path / "plan.json")
        plan.save(path)
        assert SweepPlan.load(path).to_json() == plan.to_json()

    def test_path_hosts_stay_refs(self, hosts, tmp_path):
        from repro.graph import dump_json

        path = str(tmp_path / "host.json")
        dump_json(hosts[0], path)
        plan = SweepPlan.build(
            [SpannerSpec("greedy", stretch=3, seed=1, graph=path)]
        )
        assert plan.to_dict()["hosts"] == {path: path}
        assert plan.host_graph(path).num_vertices == hosts[0].num_vertices

    def test_rejects_unknown_keys_and_formats(self):
        with pytest.raises(InvalidSpec):
            SweepPlan.from_dict({"format": "nope"})
        doc = SweepPlan.build(
            [SpannerSpec("greedy", stretch=3, graph=connected_gnp_graph(6, 0.8, seed=0))]
        ).to_dict()
        doc["surprise"] = 1
        with pytest.raises(InvalidSpec) as excinfo:
            SweepPlan.from_dict(doc)
        assert "surprise" in str(excinfo.value)

    def test_rejects_spec_with_own_binding(self, hosts):
        g1, _ = hosts
        with pytest.raises(InvalidSpec):
            SweepPlan(
                specs=(SpannerSpec("greedy", stretch=3, graph=g1),),
                host_keys=("h",),
                hosts={"h": g1},
            )

    def test_plan_needs_a_host(self):
        with pytest.raises(InvalidSpec) as excinfo:
            SweepPlan.build([SpannerSpec("greedy", stretch=3)])
        assert "host" in str(excinfo.value)

    @pytest.mark.parametrize("path_first", [True, False])
    def test_inline_keys_never_collide_with_path_hosts(
        self, hosts, tmp_path, path_first
    ):
        """A path host literally named "host-0" keeps its own graph."""
        from repro.graph import dump_json, load_json

        g1, g2 = hosts
        cwd = os.getcwd()
        os.chdir(tmp_path)
        try:
            dump_json(g2, "host-0")
            path_spec = SpannerSpec("greedy", stretch=3, graph="host-0")
            inline_spec = SpannerSpec("greedy", stretch=3, graph=g1)
            specs = (
                [path_spec, inline_spec] if path_first
                else [inline_spec, path_spec]
            )
            plan = SweepPlan.build(specs)
            assert len(plan.hosts) == 2
            path_pos = 0 if path_first else 1
            assert plan.hosts[plan.host_keys[path_pos]] == "host-0"
            assert (
                plan.host_graph(plan.host_keys[path_pos]).num_vertices
                == g2.num_vertices
            )
            assert (
                plan.host_graph(plan.host_keys[1 - path_pos]).num_vertices
                == g1.num_vertices
            )
        finally:
            os.chdir(cwd)

    def test_resolve_seeds_matches_session_rule(self, plan, hosts):
        resolved = plan.resolve_seeds(7)
        assert resolved.is_resolved and not plan.is_resolved
        session = Session(seed=7)
        sequential = [
            session.build(spec, graph=plan.host_graph(key))
            for spec, key in zip(plan.specs, plan.host_keys)
        ]
        assert [s.seed for s in resolved.specs] == [
            r.resolved_seed for r in sequential
        ]
        # Explicit seeds survive resolution untouched.
        pinned = plan.specs[0].replace(seed=99)
        plan2 = SweepPlan.build(
            [pinned.replace(graph=hosts[0]), plan.specs[1].replace(graph=hosts[0])]
        )
        assert plan2.resolve_seeds(7).specs[0].seed == 99

    def test_shard_requires_resolved_plan(self, plan):
        with pytest.raises(InvalidSpec) as excinfo:
            plan.shard(0, 2)
        assert "resolve_seeds" in str(excinfo.value)

    @pytest.mark.parametrize("of", [1, 2, 3, 4, 9])
    def test_shards_partition_the_plan(self, plan, of):
        resolved = plan.resolve_seeds(0)
        shards = [resolved.shard(i, of) for i in range(of)]
        indices = [i for shard in shards for i in shard.parent_indices]
        assert sorted(indices) == list(range(len(plan)))
        sizes = [len(shard) for shard in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_shards_are_host_grouped(self, plan):
        resolved = plan.resolve_seeds(0)
        # Two hosts, two shards: contiguous host-ordered chunks touch at
        # most hosts + shards - 1 = 3 (host, shard) pairs in total.
        shards = [resolved.shard(i, 2) for i in range(2)]
        touched = sum(len(set(shard.host_keys)) for shard in shards)
        assert touched <= len(plan.hosts) + 2 - 1
        # Each shard's host table is trimmed to what it needs.
        for shard in shards:
            assert set(shard.hosts) == set(shard.host_keys)

    def test_parse_shard(self):
        assert parse_shard("0/4") == (0, 4)
        for bad in ("4/4", "-1/2", "x/2", "2"):
            with pytest.raises(InvalidSpec):
                parse_shard(bad)


class TestPartitionDeterminism:
    """Any (i, of) partition reproduces the sequential reports exactly."""

    def test_partitions_reproduce_sequential_build_many(self, plan):
        resolved = plan.resolve_seeds(5)
        session = Session()
        sequential = [
            session.build(spec, graph=resolved.host_graph(key))
            for spec, key in zip(resolved.specs, resolved.host_keys)
        ]
        reference = report_docs(sequential)
        for of in (1, 2, 3, 4):
            envelopes = [run_shard(resolved.shard(i, of)) for i in range(of)]
            merged = merge_shard_reports(envelopes)
            assert report_docs(merged) == reference, f"partition of={of}"

    def test_partition_preserves_seeds_and_fingerprints(self, plan):
        # The sequential path derives seeds on the fly from the session
        # root; the sharded path bakes them into the plan. Same seeds,
        # same RNG fingerprints, either way.
        session = Session(seed=11)
        sequential = [
            session.build(spec, graph=plan.host_graph(key))
            for spec, key in zip(plan.specs, plan.host_keys)
        ]
        resolved = plan.resolve_seeds(11)
        envelopes = [run_shard(resolved.shard(i, 3)) for i in range(3)]
        merged = merge_shard_reports(envelopes)
        assert [r.resolved_seed for r in merged] == [
            r.resolved_seed for r in sequential
        ]
        assert [r.rng_fingerprint for r in merged] == [
            r.rng_fingerprint for r in sequential
        ]
        assert [r.size for r in merged] == [r.size for r in sequential]

    def test_hash_seed_varied_subprocess_partition(self, tmp_path):
        """Shards run under different PYTHONHASHSEEDs merge identically.

        String vertex labels make set/dict iteration order hash-dependent
        unless every draw is canonically ordered; the merged sweep result
        must not care which process ran which shard.
        """
        base = connected_gnp_graph(16, 0.3, seed=3)
        edges = [[f"v{u}", f"v{v}", w] for u, v, w in base.edges()]
        payload = json.dumps(edges)
        outputs = set()
        for hashseed in ("0", "1", "42"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = os.pathsep.join(
                filter(None, ["src", os.environ.get("PYTHONPATH")])
            )
            result = subprocess.run(
                [sys.executable, "-c", _HASHSEED_SCRIPT, payload],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.add(result.stdout)
        assert len(outputs) == 1


_HASHSEED_SCRIPT = """
import json, sys
from repro import FaultModel, SpannerSpec, SweepPlan
from repro.analysis import merge_shard_reports
from repro.graph import Graph
from repro.sweep import run_shard

g = Graph()
for u, v, w in json.loads(sys.argv[1]):
    g.add_edge(u, v, w)
specs = [
    SpannerSpec("baswana-sen", stretch=3, graph=g),
    SpannerSpec("thorup-zwick", stretch=3, graph=g),
    SpannerSpec("theorem21", stretch=3, faults=FaultModel.vertex(1),
                params={"schedule": "light", "constant": 1.0}, graph=g),
]
plan = SweepPlan.build(specs).resolve_seeds(9)
envelopes = [run_shard(plan.shard(i, 2)) for i in range(2)]
merged = merge_shard_reports(envelopes)
print(json.dumps([r.to_dict() for r in merged], sort_keys=True))
"""


class TestRunSweep:
    def test_workers_do_not_change_bytes(self, plan, tmp_path):
        sequential = run_sweep(plan, workers=1, seed=4)
        parallel = run_sweep(
            plan, workers=2, seed=4, reports_dir=str(tmp_path / "rp")
        )
        assert report_docs(parallel) == report_docs(sequential)
        files = sorted(os.listdir(tmp_path / "rp"))
        assert files == ["shard-0.json", "shard-1.json"]
        # Merging the persisted envelope files reproduces the same bytes.
        merged = merge_shard_reports(
            [str(tmp_path / "rp" / name) for name in files]
        )
        assert report_docs(merged) == report_docs(sequential)

    def test_include_spanner_round_trips_edges(self, hosts):
        g1, _ = hosts
        plan = SweepPlan.build(
            [SpannerSpec("greedy", stretch=3, seed=1, graph=g1)]
        )
        (report,) = run_sweep(plan, workers=1, include_spanner=True)
        direct = Session().build(
            SpannerSpec("greedy", stretch=3, seed=1), graph=g1
        )
        assert sorted(report.spanner.edges()) == sorted(direct.spanner.edges())

    def test_envelope_snapshot_accounting(self, plan):
        # Host-grouped execution: a shard never builds the same host's
        # CSR snapshot twice.
        resolved = plan.resolve_seeds(0)
        for i in range(2):
            envelope = run_shard(resolved.shard(i, 2))
            assert (
                envelope["timing"]["snapshot_builds"]
                <= len(set(resolved.shard(i, 2).host_keys))
            )

    def test_run_shard_rejects_unresolved(self, plan):
        with pytest.raises(InvalidSpec):
            run_shard(plan)


class TestMerge:
    def make_envelopes(self, plan, of=3):
        resolved = plan.resolve_seeds(2)
        return [run_shard(resolved.shard(i, of)) for i in range(of)]

    def test_missing_shard_is_an_error(self, plan):
        envelopes = self.make_envelopes(plan)
        with pytest.raises(InvalidSpec) as excinfo:
            merge_shard_reports(envelopes[:-1])
        assert "cover" in str(excinfo.value)

    def test_overlapping_shards_are_an_error(self, plan):
        envelopes = self.make_envelopes(plan)
        with pytest.raises(InvalidSpec) as excinfo:
            merge_shard_reports(envelopes + [envelopes[0]])
        assert "disjoint" in str(excinfo.value)

    def test_divergent_path_host_content_changes_fingerprint(
        self, hosts, tmp_path
    ):
        """Shards run against different host.json copies must not merge."""
        from repro.graph import dump_json

        path = str(tmp_path / "host.json")
        dump_json(hosts[0], path)
        spec = SpannerSpec("greedy", stretch=3, seed=1, graph=path)
        before = SweepPlan.build([spec]).fingerprint()
        dump_json(hosts[1], path)  # same path, different graph
        after = SweepPlan.build([spec]).fingerprint()
        assert before != after

    def test_mixed_plans_are_an_error(self, plan, hosts):
        envelopes = self.make_envelopes(plan)
        other = SweepPlan.build(
            [SpannerSpec("greedy", stretch=3, seed=1, graph=hosts[0])]
        ).resolve_seeds(0)
        alien = run_shard(other.shard(0, 1))
        with pytest.raises(InvalidSpec) as excinfo:
            merge_shard_reports(envelopes + [alien])
        assert "different plans" in str(excinfo.value)

    def test_empty_merge_is_an_error(self):
        with pytest.raises(InvalidSpec):
            merge_shard_reports([])

    def test_envelope_files_round_trip(self, plan, tmp_path):
        envelope = self.make_envelopes(plan, of=1)[0]
        path = save_shard_report(envelope, str(tmp_path))
        assert load_shard_report(path) == envelope
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"format": "not-a-shard"}')
        with pytest.raises(InvalidSpec):
            load_shard_report(str(bogus))


class TestRunSpecSweepWorkers:
    def test_sharded_records_match_sequential(self, hosts, tmp_path):
        from repro.analysis import run_spec_sweep

        g1, _ = hosts
        specs = [
            SpannerSpec("baswana-sen", stretch=3, seed=s) for s in range(4)
        ]
        seq_result, seq_reports = run_spec_sweep("seq", specs, graph=g1)
        par_result, par_reports = run_spec_sweep(
            "par", specs, graph=g1, reports_dir=str(tmp_path / "rp")
        )
        assert report_docs(par_reports) == report_docs(seq_reports)
        for a, b in zip(seq_result.records, par_result.records):
            a, b = dict(a), dict(b)
            a.pop("wall_time_s"), b.pop("wall_time_s")
            assert a == b
        assert par_result.seeds == seq_result.seeds

    def test_sharded_path_requires_seeds(self, hosts):
        from repro.analysis import run_spec_sweep

        with pytest.raises(InvalidSpec) as excinfo:
            run_spec_sweep(
                "unseeded",
                [SpannerSpec("greedy", stretch=3, graph=hosts[0])],
                workers=2,
            )
        assert "seed" in str(excinfo.value)

    def test_sharded_path_refuses_unhonorable_arguments(self, hosts):
        from repro.analysis import run_spec_sweep

        specs = [SpannerSpec("greedy", stretch=3, seed=1, graph=hosts[0])]
        with pytest.raises(InvalidSpec) as excinfo:
            run_spec_sweep("s", specs, workers=2, on_error="skip")
        assert "on_error" in str(excinfo.value)
        with pytest.raises(InvalidSpec) as excinfo:
            run_spec_sweep("s", specs, workers=2, session=Session())
        assert "session" in str(excinfo.value)


class TestEmitter:
    def test_refuses_unsupported_points_by_name(self, hosts):
        table = {"h": hosts[0]}
        with pytest.raises(InvalidSpec) as excinfo:
            emit_grid_plan(["baswana-sen"], [3], [1], table)
        message = str(excinfo.value)
        assert "baswana-sen" in message and "r=1" in message
        with pytest.raises(InvalidSpec) as excinfo:
            emit_grid_plan(["ft2-approx"], [3], [1], table)
        assert "stretch" in str(excinfo.value)

    def test_skip_unsupported_drops_points(self, hosts):
        plan = emit_grid_plan(
            ["greedy", "theorem21"], [3], [0, 1], {"h": hosts[0]},
            skip_unsupported=True,
        )
        # greedy serves only r=0; theorem21 serves both — and the dropped
        # point is recorded, so an incomplete grid never reads as full.
        assert len(plan) == 3
        assert plan.is_resolved
        assert len(plan.skipped) == 1 and "greedy" in plan.skipped[0]

    def test_seeds_axis(self, hosts):
        plan = emit_grid_plan(
            ["greedy"], [3], [0], {"h": hosts[0]}, seeds=3, seed_base=10
        )
        assert [spec.seed for spec in plan.specs] == [10, 11, 12]

    def test_all_unsupported_is_an_error(self, hosts):
        with pytest.raises(InvalidSpec):
            emit_grid_plan(
                ["baswana-sen"], [4], [0], {"h": hosts[0]},
                skip_unsupported=True,
            )

    def test_none_fault_kind_rejects_positive_r(self, hosts):
        """r=1 points must never silently degrade to faultless specs."""
        with pytest.raises(InvalidSpec) as excinfo:
            emit_grid_plan(
                ["greedy"], [3], [1], {"h": hosts[0]}, fault_kind="none"
            )
        assert "r=0" in str(excinfo.value)

    def test_matrix_agrees_with_emitter(self, hosts):
        """The coverage matrix and the refusals share one predicate."""
        table = {"h": hosts[0]}
        for row in coverage_matrix(stretches=(2, 3), kinds=("none", "vertex")):
            algorithm = row["algorithm"]
            if algorithm.startswith("distributed"):
                continue  # LOCAL simulators are slow; domain logic is shared
            for kind_stretch, supported in row.items():
                if kind_stretch == "algorithm":
                    continue
                kind, k_text = kind_stretch.split("/k=")
                rs = [0] if kind == "none" else [1]
                emit = lambda: emit_grid_plan(
                    [algorithm], [float(k_text)], rs, table, fault_kind=kind
                    if kind != "none" else "vertex",
                )
                if supported:
                    assert len(emit()) == 1
                else:
                    with pytest.raises(InvalidSpec):
                        emit()


class TestAdaptiveRegistration:
    def test_matches_direct_call(self, hosts):
        from repro import fault_tolerant_spanner_until_valid
        from repro.core import sampled_fault_check

        g1, _ = hosts
        report = Session().build(
            SpannerSpec(
                "theorem21-adaptive", stretch=3, faults=FaultModel.vertex(1),
                seed=6, params={"until_valid": {"trials": 15, "seed": 2}},
            ),
            graph=g1,
        )
        direct = fault_tolerant_spanner_until_valid(
            g1, 3, 1,
            lambda u: sampled_fault_check(u, g1, 3, 1, trials=15, seed=2),
            seed=6,
        )
        assert sorted(report.spanner.edges()) == sorted(direct.spanner.edges())
        assert report.stats["iterations"] == direct.stats.iterations
        assert report.stats["until_valid"]["trials"] == 15

    def test_rejects_mistyped_until_valid_values(self, hosts):
        """JSON-carried knobs with string-typed numbers fail actionably."""
        with pytest.raises(InvalidSpec) as excinfo:
            Session().build(
                SpannerSpec(
                    "theorem21-adaptive", stretch=3,
                    faults=FaultModel.vertex(1), seed=1,
                    params={"until_valid": {"trials": "30"}},
                ),
                graph=hosts[0],
            )
        assert "trials" in str(excinfo.value)

    def test_rejects_unknown_until_valid_keys(self, hosts):
        with pytest.raises(InvalidSpec) as excinfo:
            Session().build(
                SpannerSpec(
                    "theorem21-adaptive", stretch=3,
                    faults=FaultModel.vertex(1), seed=1,
                    params={"until_valid": {"trails": 3}},
                ),
                graph=hosts[0],
            )
        assert "trails" in str(excinfo.value)

    def test_requires_faults(self, hosts):
        with pytest.raises(InvalidSpec):
            Session().build(
                SpannerSpec("theorem21-adaptive", stretch=3, seed=1),
                graph=hosts[0],
            )

    def test_rides_sweep_plans(self, hosts):
        plan = SweepPlan.build(
            [
                SpannerSpec(
                    "theorem21-adaptive", stretch=3,
                    faults=FaultModel.vertex(1), seed=4,
                    params={"until_valid": {"trials": 10, "seed": 1}},
                    graph=hosts[0],
                )
            ]
        )
        clone = SweepPlan.from_json(plan.to_json())
        (a,) = run_sweep(plan, workers=1)
        (b,) = run_sweep(clone, workers=1)
        assert a.to_dict() == b.to_dict()


class TestCrashSafeShardReports:
    """save_shard_report is atomic: a shard file is absent or complete."""

    def make_envelope(self, plan):
        return run_shard(plan.resolve_seeds(0).shard(0, 2))

    def test_crash_before_rename_leaves_nothing(
        self, plan, tmp_path, monkeypatch
    ):
        envelope = self.make_envelope(plan)
        reports_dir = str(tmp_path / "rp")

        def killed(src, dst):
            raise OSError("killed between write and rename")

        monkeypatch.setattr(os, "replace", killed)
        with pytest.raises(OSError, match="killed"):
            save_shard_report(envelope, reports_dir)
        # neither a partial shard-<i>.json nor leftover temp garbage
        assert os.listdir(reports_dir) == []

    def test_unserializable_envelope_leaves_nothing(self, plan, tmp_path):
        envelope = self.make_envelope(plan)
        envelope["reports"] = object()  # not JSON-able
        reports_dir = str(tmp_path / "rp")
        with pytest.raises(TypeError):
            save_shard_report(envelope, reports_dir)
        assert not os.path.exists(
            os.path.join(reports_dir, "shard-0.json")
        )

    def test_successful_save_is_complete_and_canonical(self, plan, tmp_path):
        envelope = self.make_envelope(plan)
        reports_dir = str(tmp_path / "rp")
        path = save_shard_report(envelope, reports_dir)
        assert os.listdir(reports_dir) == ["shard-0.json"]
        assert load_shard_report(path) == json.loads(
            json.dumps(envelope)  # round-trip through JSON types
        )
        assert envelope["attempts"] == 1

    def test_temp_names_never_match_the_merge_glob(self, plan, tmp_path):
        """A temp file surviving a hard kill (no cleanup ran) must be
        invisible to `repro merge`'s shard-*.json discovery."""
        import glob

        envelope = self.make_envelope(plan)
        reports_dir = str(tmp_path / "rp")
        save_shard_report(envelope, reports_dir)
        stray = os.path.join(reports_dir, "shard-0.json.a1b2c3.tmp")
        with open(stray, "w") as handle:
            handle.write("{ truncated")
        found = glob.glob(os.path.join(reports_dir, "shard-*.json"))
        assert [os.path.basename(p) for p in found] == ["shard-0.json"]


class TestWorkerCrashResilience:
    """run_sweep survives crashed workers — real processes, real kills.

    Fault injection is child-side: the spawned shard worker reads
    ``REPRO_SWEEP_TEST_CRASH_SHARDS`` on its *first* attempt only, so a
    retried shard runs clean and the recovered sweep stays
    byte-identical to the sequential one.
    """

    def test_dead_worker_is_retried_in_process(self, plan, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_TEST_CRASH_SHARDS", "1")
        reports, envelopes = run_sweep(
            plan, workers=3, seed=4, with_envelopes=True
        )
        assert [env["attempts"] for env in envelopes] == [1, 2, 1]
        assert [env["timed_out"] for env in envelopes] == [False] * 3
        monkeypatch.delenv("REPRO_SWEEP_TEST_CRASH_SHARDS")
        # the retried sweep is byte-identical to the sequential one
        sequential = run_sweep(plan, workers=1, seed=4)
        assert report_docs(reports) == report_docs(sequential)

    def test_retried_envelopes_persist_and_merge(
        self, plan, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SWEEP_TEST_CRASH_SHARDS", "0,2")
        reports_dir = str(tmp_path / "rp")
        run_sweep(plan, workers=3, seed=4, reports_dir=reports_dir)
        envelopes = [
            load_shard_report(os.path.join(reports_dir, name))
            for name in sorted(os.listdir(reports_dir))
        ]
        assert [env["attempts"] for env in envelopes] == [2, 1, 2]
        merged = merge_shard_reports(envelopes)
        monkeypatch.delenv("REPRO_SWEEP_TEST_CRASH_SHARDS")
        assert report_docs(merged) == report_docs(
            run_sweep(plan, workers=1, seed=4)
        )

    def test_twice_failed_shard_raises_sweep_error(self, plan, monkeypatch):
        import repro.sweep as sweep_module
        from repro.errors import SweepError

        monkeypatch.setenv("REPRO_SWEEP_TEST_CRASH_SHARDS", "0,1,2")

        def still_dead(doc, include_spanner):
            raise RuntimeError("retry also died")

        monkeypatch.setattr(sweep_module, "_run_shard_worker", still_dead)
        with pytest.raises(SweepError, match=r"shard 0/3 .* failed twice"):
            run_sweep(plan, workers=3, seed=4)


class TestShardTimeout:
    """A hung worker is killed at the deadline and retried out of process."""

    def test_hung_worker_is_killed_and_retried(self, plan, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_TEST_HANG_SHARDS", "1")
        reports, envelopes = run_sweep(
            plan, workers=2, seed=4, with_envelopes=True, shard_timeout_s=12.0
        )
        assert [env["attempts"] for env in envelopes] == [1, 2]
        assert [env["timed_out"] for env in envelopes] == [False, True]
        monkeypatch.delenv("REPRO_SWEEP_TEST_HANG_SHARDS")
        sequential = run_sweep(plan, workers=1, seed=4)
        assert report_docs(reports) == report_docs(sequential)

    def test_timeout_resolution_and_validation(self, monkeypatch):
        from repro.sweep import resolve_shard_timeout

        monkeypatch.delenv("REPRO_SWEEP_SHARD_TIMEOUT_S", raising=False)
        assert resolve_shard_timeout(None) is None
        assert resolve_shard_timeout(2.5) == 2.5
        with pytest.raises(InvalidSpec, match="positive"):
            resolve_shard_timeout(-1.0)
        monkeypatch.setenv("REPRO_SWEEP_SHARD_TIMEOUT_S", "7.5")
        assert resolve_shard_timeout(None) == 7.5
        assert resolve_shard_timeout(2.5) == 2.5  # argument wins
        monkeypatch.setenv("REPRO_SWEEP_SHARD_TIMEOUT_S", "0")
        with pytest.raises(InvalidSpec, match="REPRO_SWEEP_SHARD_TIMEOUT_S"):
            resolve_shard_timeout(None)
        monkeypatch.setenv("REPRO_SWEEP_SHARD_TIMEOUT_S", "nope")
        with pytest.raises(InvalidSpec, match="REPRO_SWEEP_SHARD_TIMEOUT_S"):
            resolve_shard_timeout(None)


class TestCorruptEnvelope:
    """Truncated shard JSON names the file, not just a parse offset."""

    def test_truncated_envelope_names_the_file(self, tmp_path):
        from repro.errors import SweepError

        path = str(tmp_path / "shard-0.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"format": "repro-sweep-shard", "repor')
        with pytest.raises(
            SweepError, match=r"shard-0\.json.*truncated or corrupt"
        ):
            load_shard_report(path)

    def test_wrong_format_tag_is_still_invalid_spec(self, tmp_path):
        path = str(tmp_path / "shard-0.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"format": "something-else"}, handle)
        with pytest.raises(InvalidSpec, match="not a sweep-shard envelope"):
            load_shard_report(path)
