"""Theorem 2.1 conversion: validity, size accounting, schedules."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    fault_tolerant_spanner,
    fault_tolerant_spanner_until_valid,
    is_fault_tolerant_spanner,
    resolve_iterations,
    survival_probability,
)
from repro.errors import FaultToleranceError, InvalidStretch
from repro.graph import (
    complete_graph,
    connected_gnp_graph,
    gnp_random_graph,
    is_subgraph,
)
from repro.spanners import greedy_spanner, thorup_zwick_spanner


class TestParameters:
    def test_survival_probability(self):
        assert survival_probability(1) == 0.5
        assert survival_probability(2) == 0.5
        assert survival_probability(4) == 0.25

    def test_resolve_iterations_explicit_overrides(self):
        assert resolve_iterations(100, 3, 17, "theorem", 4.0) == 17

    def test_resolve_iterations_rejects_bad(self):
        with pytest.raises(FaultToleranceError):
            resolve_iterations(100, 3, 0, "theorem", 1.0)
        with pytest.raises(FaultToleranceError):
            resolve_iterations(100, 3, None, "nope", 1.0)

    def test_schedule_magnitudes(self):
        theorem = resolve_iterations(100, 3, None, "theorem", 1.0)
        light = resolve_iterations(100, 3, None, "light", 1.0)
        assert theorem == math.ceil(27 * math.log(100))
        assert light == math.ceil(9 * math.log(100))

    def test_invalid_stretch_and_r(self):
        g = complete_graph(4)
        with pytest.raises(InvalidStretch):
            fault_tolerant_spanner(g, 0.5, 1)
        with pytest.raises(FaultToleranceError):
            fault_tolerant_spanner(g, 3, -1)


class TestConversionOutput:
    def test_r0_equals_single_base_run(self):
        g = connected_gnp_graph(20, 0.3, seed=1)
        result = fault_tolerant_spanner(g, 3, 0, seed=2)
        assert result.stats.iterations == 1
        assert is_subgraph(result.spanner, g)
        base = greedy_spanner(g, 3)
        assert result.num_edges == base.num_edges

    def test_output_is_subgraph_spanning_all_vertices(self):
        g = connected_gnp_graph(16, 0.4, seed=3)
        result = fault_tolerant_spanner(g, 3, 2, seed=4)
        assert is_subgraph(result.spanner, g)
        assert result.spanner.vertex_set() == g.vertex_set()

    def test_stats_accounting(self):
        g = connected_gnp_graph(16, 0.4, seed=5)
        result = fault_tolerant_spanner(g, 3, 2, iterations=10, seed=6)
        s = result.stats
        assert s.iterations == 10
        assert len(s.survivor_sizes) == 10
        assert len(s.union_edge_counts) == 10
        assert s.final_size == result.num_edges
        # union sizes are nondecreasing
        assert all(a <= b for a, b in zip(s.union_edge_counts, s.union_edge_counts[1:]))
        assert s.max_survivor_size <= g.num_vertices

    def test_validity_r1_exhaustive(self):
        g = connected_gnp_graph(13, 0.45, seed=7)
        result = fault_tolerant_spanner(g, 3, 1, seed=8)
        assert is_fault_tolerant_spanner(result.spanner, g, 3, 1)

    def test_validity_r2_exhaustive(self):
        g = connected_gnp_graph(12, 0.5, seed=9)
        result = fault_tolerant_spanner(g, 3, 2, seed=10)
        assert is_fault_tolerant_spanner(result.spanner, g, 3, 2)

    def test_works_with_other_base_algorithms(self):
        g = connected_gnp_graph(12, 0.5, seed=11)
        result = fault_tolerant_spanner(
            g, 3, 1,
            base_algorithm=lambda h, k: thorup_zwick_spanner(h, (int(k) + 1) // 2, seed=0),
            seed=12,
        )
        assert is_fault_tolerant_spanner(result.spanner, g, 3, 1)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_property_r1_validity(self, seed):
        g = gnp_random_graph(11, 0.5, seed=seed)
        result = fault_tolerant_spanner(g, 3, 1, seed=seed + 1)
        assert is_fault_tolerant_spanner(result.spanner, g, 3, 1)

    def test_seed_determinism(self):
        g = connected_gnp_graph(14, 0.4, seed=20)
        a = fault_tolerant_spanner(g, 3, 2, seed=21)
        b = fault_tolerant_spanner(g, 3, 2, seed=21)
        assert sorted(map(tuple, a.spanner.edges())) == sorted(
            map(tuple, b.spanner.edges())
        )


class TestAdaptiveVariant:
    def test_until_valid_stops_early(self):
        g = connected_gnp_graph(12, 0.5, seed=30)
        result = fault_tolerant_spanner_until_valid(
            g, 3, 1,
            validity_check=lambda h: is_fault_tolerant_spanner(h, g, 3, 1),
            batch=4,
            seed=31,
        )
        assert is_fault_tolerant_spanner(result.spanner, g, 3, 1)
        # the adaptive run should not need the full theorem schedule
        theorem = resolve_iterations(g.num_vertices, 1, None, "theorem", 16.0)
        assert result.stats.iterations <= theorem

    def test_until_valid_requires_r_ge_1(self):
        g = complete_graph(4)
        with pytest.raises(FaultToleranceError):
            fault_tolerant_spanner_until_valid(
                g, 3, 0, validity_check=lambda h: True
            )

    def test_until_valid_raises_on_impossible_check(self):
        g = complete_graph(4)
        with pytest.raises(FaultToleranceError):
            fault_tolerant_spanner_until_valid(
                g, 3, 1, validity_check=lambda h: False,
                batch=2, max_iterations=6,
            )
