"""Theorem 3.3 end-to-end approximation and the DK10 baseline."""

from __future__ import annotations

import math

import pytest

from repro.core import is_ft_2spanner
from repro.graph import complete_digraph, gnp_random_digraph, knapsack_gap_gadget
from repro.two_spanner import (
    approximate_ft2_spanner,
    dk10_baseline,
    exact_minimum_ft2_spanner,
    solve_ft2_lp,
)


class TestTheorem33:
    def test_valid_spanner_and_certificate(self):
        g = gnp_random_digraph(12, 0.5, seed=1)
        result = approximate_ft2_spanner(g, 2, seed=2)
        assert is_ft_2spanner(result.spanner, g, 2)
        assert result.lp_objective > 0
        assert result.cost >= result.lp_objective - 1e-6
        assert result.ratio_vs_lp >= 1.0 - 1e-9

    def test_ratio_bounded_by_alpha_regime(self):
        # cost <= O(alpha) * LP in expectation; assert a generous multiple.
        g = gnp_random_digraph(12, 0.5, seed=3)
        result = approximate_ft2_spanner(g, 1, seed=4)
        assert result.ratio_vs_lp <= 6 * result.alpha

    def test_with_costs(self):
        g = gnp_random_digraph(10, 0.6, seed=5, cost_range=(1.0, 10.0))
        result = approximate_ft2_spanner(g, 1, seed=6)
        assert is_ft_2spanner(result.spanner, g, 1)

    def test_near_optimal_on_gadget(self):
        g = knapsack_gap_gadget(2, 30.0)
        result = approximate_ft2_spanner(g, 2, seed=7)
        exact = exact_minimum_ft2_spanner(g, 2)
        assert result.cost == pytest.approx(exact.cost)

    def test_r0_still_works(self):
        g = complete_digraph(5)
        result = approximate_ft2_spanner(g, 0, seed=8)
        assert is_ft_2spanner(result.spanner, g, 0)


class TestDK10Baseline:
    def test_baseline_valid(self):
        g = gnp_random_digraph(10, 0.5, seed=9)
        result = dk10_baseline(g, 2, seed=10)
        assert is_ft_2spanner(result.spanner, g, 2)

    def test_baseline_alpha_grows_with_r(self):
        g = gnp_random_digraph(10, 0.5, seed=11)
        a1 = dk10_baseline(g, 1, seed=12).alpha
        a3 = dk10_baseline(g, 3, seed=12).alpha
        assert a3 == pytest.approx(3 * a1)

    def test_baseline_with_old_lp(self):
        g = gnp_random_digraph(8, 0.6, seed=13)
        result = dk10_baseline(g, 1, seed=14, use_old_lp=True)
        assert is_ft_2spanner(result.spanner, g, 1)

    def test_new_alpha_independent_of_r(self):
        g = gnp_random_digraph(10, 0.5, seed=15)
        a1 = approximate_ft2_spanner(g, 1, seed=16).alpha
        a3 = approximate_ft2_spanner(g, 3, seed=16).alpha
        assert a1 == a3  # the paper's headline: alpha = C log n for all r
