"""Distributed Lemma 3.1 verification (O(1) LOCAL rounds)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import unsatisfied_edges
from repro.distributed import distributed_lemma31_check
from repro.errors import DistributedError
from repro.graph import complete_digraph, complete_graph, gnp_random_digraph
from repro.two_spanner import approximate_ft2_spanner


def test_accepts_whole_graph():
    g = complete_digraph(5)
    ok, violations, sim = distributed_lemma31_check(g, g, r=3)
    assert ok and not violations
    assert sim.rounds <= 2  # O(1) LOCAL rounds


def test_accepts_rounded_spanner():
    g = gnp_random_digraph(10, 0.5, seed=1)
    result = approximate_ft2_spanner(g, 1, seed=2)
    ok, violations, _sim = distributed_lemma31_check(result.spanner, g, 1)
    assert ok and not violations


def test_detects_planted_violation():
    g = complete_digraph(5)
    h = g.copy()
    h.remove_edge(0, 1)
    # only 3 midpoints remain; with r = 3 the edge is unsatisfied
    ok, violations, _sim = distributed_lemma31_check(h, g, 3)
    assert not ok
    assert (0, 1) in violations


def test_undirected_hosts_supported():
    g = complete_graph(5)
    h = g.copy()
    h.remove_edge(0, 1)
    ok, violations, _sim = distributed_lemma31_check(h, g, 2)
    assert ok  # 3 common neighbours >= r + 1 = 3
    ok2, violations2, _ = distributed_lemma31_check(h, g, 3)
    assert not ok2 and len(violations2) == 1


def test_rejects_negative_r():
    g = complete_digraph(3)
    with pytest.raises(DistributedError):
        distributed_lemma31_check(g, g, -1)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2000), r=st.integers(0, 3))
def test_matches_centralized_verifier(seed, r):
    """The distributed verdict must equal the centralized Lemma 3.1 scan,
    violation for violation."""
    import random

    g = gnp_random_digraph(8, 0.6, seed=seed)
    rng = random.Random(seed + 1)
    keep = [(u, v) for u, v, _w in g.edges() if rng.random() < 0.7]
    h = g.edge_subgraph(keep)
    ok, violations, _sim = distributed_lemma31_check(h, g, r)
    central = unsatisfied_edges(h, g, r)
    assert sorted(map(repr, violations)) == sorted(map(repr, central))
    assert ok == (not central)


def test_engine_path_identical_to_dict_loop():
    g = gnp_random_digraph(50, 0.2, seed=40)
    import random as _random

    rng = _random.Random(41)
    keep = [(u, v) for u, v, _w in g.edges() if rng.random() < 0.6]
    h = g.edge_subgraph(keep)
    for r in (0, 1, 2):
        ok_d, violations_d, sim_d = distributed_lemma31_check(h, g, r, method="dict")
        ok_c, violations_c, sim_c = distributed_lemma31_check(h, g, r, method="csr")
        assert (ok_d, sorted(map(repr, violations_d))) == (
            ok_c, sorted(map(repr, violations_c))
        )
        assert (sim_d.rounds, sim_d.messages_sent) == (
            sim_c.rounds, sim_c.messages_sent
        )
