"""CSR kernel layer: round-trips, dict-equivalence, survivor views.

The contract under test is strict: the CSR fast path must be
*indistinguishable* from the dict implementations — same distances, same
reached sets, same cutoff semantics, and (for the greedy spanner and the
Theorem 2.1 conversion) identical edge sets for a fixed seed.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.graph.csr as csr_mod
from repro.core import fault_tolerant_spanner
from repro.core.verify import IncrementalFT2Verifier, unsatisfied_edges
from repro.graph import (
    CSRGraph,
    DiGraph,
    Graph,
    bfs_distances,
    connected_gnp_graph,
    csr_snapshot,
    dijkstra,
    dijkstra_with_paths,
    gnp_random_digraph,
    gnp_random_graph,
)
from repro.rng import ensure_rng
from repro.spanners import greedy_spanner, greedy_spanner_size_first


def random_graph(seed: int, directed: bool = False, n: int = 60, p: float = 0.15):
    if directed:
        return gnp_random_digraph(n, p, seed=seed)
    return gnp_random_graph(n, p, seed=seed, weight_range=(0.5, 3.0))


from contextlib import contextmanager


@contextmanager
def dict_dispatch():
    """Disable CSR dispatch so the dict implementations run."""
    saved = csr_mod.MIN_DISPATCH_VERTICES
    csr_mod.MIN_DISPATCH_VERTICES = 10**9
    try:
        yield
    finally:
        csr_mod.MIN_DISPATCH_VERTICES = saved


class TestRoundTrip:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), directed=st.booleans())
    def test_round_trip_preserves_graph(self, seed, directed):
        g = random_graph(seed, directed)
        back = CSRGraph.from_graph(g).to_graph()
        assert back.directed == g.directed
        assert back.vertex_set() == g.vertex_set()
        assert sorted(map(tuple, back.edges())) == sorted(map(tuple, g.edges()))

    def test_counts_and_tables(self):
        g = random_graph(3)
        snap = CSRGraph.from_graph(g)
        assert snap.num_vertices == g.num_vertices
        assert snap.num_edges == g.num_edges
        for i, v in enumerate(snap.verts):
            assert snap.index[v] == i

    def test_empty_and_isolated(self):
        g = Graph()
        g.add_vertices(["a", "b"])
        snap = CSRGraph.from_graph(g)
        assert snap.num_edges == 0
        assert snap.to_graph().vertex_set() == {"a", "b"}


class TestSnapshotCache:
    def test_cache_hit_and_invalidation(self):
        g = random_graph(1)
        s1 = csr_snapshot(g)
        assert csr_snapshot(g) is s1
        u, v, _w = next(iter(g.edge_list()))
        g.remove_edge(u, v)
        s2 = csr_snapshot(g)
        assert s2 is not s1
        assert s2.num_edges == g.num_edges


class TestDijkstraEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), directed=st.booleans())
    def test_full_sssp_matches_dict(self, seed, directed):
        g = random_graph(seed, directed)
        source = next(iter(g.vertices()))
        fast = dijkstra(g, source)
        with dict_dispatch():
            assert dijkstra(g, source) == fast

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        cutoff=st.floats(0.5, 6.0),
    )
    def test_cutoff_matches_dict(self, seed, cutoff):
        g = random_graph(seed)
        # Bounded queries only ride an already-cached snapshot; populate
        # it so the fast side genuinely runs the CSR kernel.
        csr_snapshot(g)
        source = next(iter(g.vertices()))
        fast = dijkstra(g, source, cutoff=cutoff)
        with dict_dispatch():
            assert dijkstra(g, source, cutoff=cutoff) == fast

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_target_distance_matches_dict(self, seed):
        g = random_graph(seed)
        csr_snapshot(g)  # target queries are bounded: cache must exist
        vs = list(g.vertices())
        rng = ensure_rng(seed)
        source, target = rng.sample(vs, 2)
        fast = dijkstra(g, source, target=target).get(target, math.inf)
        with dict_dispatch():
            slow = dijkstra(g, source, target=target).get(target, math.inf)
        assert fast == slow

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), directed=st.booleans())
    def test_parents_form_equivalent_tree(self, seed, directed):
        g = random_graph(seed, directed)
        source = next(iter(g.vertices()))
        dist_fast, parent_fast = dijkstra_with_paths(g, source)
        with dict_dispatch():
            dist_slow, parent_slow = dijkstra_with_paths(g, source)
        assert dist_fast == dist_slow
        assert set(parent_fast) == set(parent_slow)
        # Parents may differ on equal-length ties; both must be tight trees.
        for child, par in parent_fast.items():
            assert dist_fast[child] == pytest.approx(
                dist_fast[par] + g.weight(par, child)
            )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), cutoff=st.one_of(st.none(), st.integers(1, 4)))
    def test_bfs_matches_dict(self, seed, cutoff):
        g = random_graph(seed, directed=True)
        csr_snapshot(g)  # let the cutoff variants hit the CSR kernel too
        source = next(iter(g.vertices()))
        fast = bfs_distances(g, source, cutoff=cutoff)
        with dict_dispatch():
            assert bfs_distances(g, source, cutoff=cutoff) == fast

    def test_all_pairs_matches_dict(self):
        g = random_graph(7)
        fast = {v: dijkstra(g, v) for v in g.vertices()}
        with dict_dispatch():
            slow = {v: dijkstra(g, v) for v in g.vertices()}
        assert fast == slow

    def test_multi_source_is_min_over_sources(self):
        g = random_graph(11)
        snap = csr_snapshot(g)
        sources = [0, 1, 2]
        dist, owner = snap.multi_source_dijkstra_idx(sources)
        per_source = {s: snap.dijkstra_idx(s)[0] for s in sources}
        for i in range(snap.num_vertices):
            expect = min(per_source[s][i] for s in sources)
            assert dist[i] == expect
            if owner[i] >= 0:
                assert per_source[owner[i]][i] == dist[i]

    def test_batched_bfs_matches_single(self):
        g = random_graph(13)
        snap = csr_snapshot(g)
        batch = snap.batched_bfs_idx([0, 1, 2], cutoff=3)
        for s, arr in batch.items():
            assert arr == snap.bfs_idx(s, cutoff=3)


class TestSurvivorView:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), directed=st.booleans())
    def test_view_matches_induced_subgraph(self, seed, directed):
        g = random_graph(seed, directed)
        snap = csr_snapshot(g)
        rng = ensure_rng(seed + 1)
        alive = [rng.random() < 0.6 for _ in range(snap.num_vertices)]
        view = snap.survivor_view(alive)
        survivors = [v for i, v in enumerate(snap.verts) if alive[i]]
        sub = g.induced_subgraph(survivors)
        assert view.num_surviving_vertices == sub.num_vertices
        assert view.num_surviving_edges == sub.num_edges
        materialized = view.to_graph()
        assert sorted(map(tuple, materialized.edges())) == sorted(
            map(tuple, sub.edges())
        )

    def test_masked_dijkstra_matches_subgraph_dijkstra(self):
        g = random_graph(17)
        snap = csr_snapshot(g)
        rng = ensure_rng(5)
        alive = [rng.random() < 0.7 for _ in range(snap.num_vertices)]
        alive[0] = True
        view = snap.survivor_view(alive)
        dist, order = view.dijkstra_idx(0)
        survivors = [v for i, v in enumerate(snap.verts) if alive[i]]
        sub = g.induced_subgraph(survivors)
        expect = dijkstra(sub, snap.verts[0])
        got = {snap.verts[i]: dist[i] for i in order}
        assert got == expect


class TestSpannerEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.sampled_from([2, 3, 5]))
    def test_greedy_indexed_equals_dict(self, seed, k):
        g = gnp_random_graph(50, 0.2, seed=seed, weight_range=(0.5, 3.0))
        a = greedy_spanner(g, k)
        b = greedy_spanner(g, k, method="dict")
        assert sorted(map(tuple, a.edges())) == sorted(map(tuple, b.edges()))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_greedy_unit_weight_and_directed_equivalence(self, seed):
        for g in (
            connected_gnp_graph(40, 0.2, seed=seed),
            gnp_random_digraph(40, 0.2, seed=seed),
        ):
            a = greedy_spanner(g, 3)
            b = greedy_spanner(g, 3, method="dict")
            assert sorted(map(tuple, a.edges())) == sorted(map(tuple, b.edges()))

    def test_greedy_size_first_equivalence(self):
        g = gnp_random_graph(40, 0.3, seed=9, weight_range=(0.5, 3.0))
        a = greedy_spanner_size_first(g, 3, max_edges=25)
        b = greedy_spanner_size_first(g, 3, max_edges=25, method="dict")
        assert sorted(map(tuple, a.edges())) == sorted(map(tuple, b.edges()))

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 10_000), r=st.sampled_from([1, 2]))
    def test_conversion_engine_equals_dict_pipeline(self, seed, r):
        g = gnp_random_graph(45, 0.25, seed=seed, weight_range=(0.5, 3.0))
        fast = fault_tolerant_spanner(g, 3, r, iterations=8, seed=seed + 1)
        # A wrapper lambda is not `greedy_spanner` itself, so this forces
        # the induced-subgraph dict pipeline with the same RNG stream.
        slow = fault_tolerant_spanner(
            g, 3, r, iterations=8, seed=seed + 1,
            base_algorithm=lambda h, k: greedy_spanner(h, k),
        )
        assert sorted(map(tuple, fast.spanner.edges())) == sorted(
            map(tuple, slow.spanner.edges())
        )
        assert fast.stats.survivor_sizes == slow.stats.survivor_sizes
        assert fast.stats.iteration_edge_counts == slow.stats.iteration_edge_counts
        assert fast.stats.union_edge_counts == slow.stats.union_edge_counts

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_conversion_equivalence_on_weight_ties(self, seed):
        # Unit weights + string labels: every edge ties, and vertex hash
        # order is randomized — the engine and the dict pipeline must
        # still break ties identically (induced_subgraph preserves the
        # host's vertex iteration order).
        base = connected_gnp_graph(40, 0.2, seed=seed)
        g = Graph()
        g.add_vertices(f"v{v}" for v in base.vertices())
        for u, v, w in base.edges():
            g.add_edge(f"v{u}", f"v{v}", w)
        fast = fault_tolerant_spanner(g, 3, 2, iterations=6, seed=seed)
        slow = fault_tolerant_spanner(
            g, 3, 2, iterations=6, seed=seed,
            base_algorithm=lambda h, k: greedy_spanner(h, k, method="dict"),
        )
        assert sorted(map(tuple, fast.spanner.edges())) == sorted(
            map(tuple, slow.spanner.edges())
        )


class TestIncrementalVerifier:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), r=st.sampled_from([0, 1, 2]), directed=st.booleans())
    def test_matches_bulk_verifier_under_growth(self, seed, r, directed):
        g = random_graph(seed, directed, n=24, p=0.3)
        rng = ensure_rng(seed + 2)
        edges = g.edge_list()
        rng.shuffle(edges)
        spanner = type(g)()
        spanner.add_vertices(g.vertices())
        verifier = IncrementalFT2Verifier(g, r)
        # interleave growth with checks at several prefixes
        checkpoints = {0, len(edges) // 3, (2 * len(edges)) // 3, len(edges)}
        for idx, (u, v, w) in enumerate(edges, start=1):
            spanner.add_edge(u, v, w)
            verifier.add_edge(u, v)
            if idx in checkpoints:
                assert verifier.unsatisfied() == unsatisfied_edges(spanner, g, r)
                assert verifier.is_valid() == (not unsatisfied_edges(spanner, g, r))
        assert verifier.is_valid()  # full host graph always passes

    def test_bulk_constructor_equals_incremental(self):
        g = random_graph(21, n=24, p=0.3)
        h = greedy_spanner(g, 2)
        a = IncrementalFT2Verifier(g, 1, spanner=h)
        assert a.unsatisfied() == unsatisfied_edges(h, g, 1)

    def test_rejects_negative_r_and_non_host_edges(self):
        from repro.errors import FaultToleranceError

        g = random_graph(2, n=24, p=0.3)
        with pytest.raises(FaultToleranceError):
            IncrementalFT2Verifier(g, -1)
        verifier = IncrementalFT2Verifier(g, 1)
        non_edges = [
            (u, v)
            for u in g.vertices()
            for v in g.vertices()
            if u != v and not g.has_edge(u, v)
        ]
        if non_edges:
            with pytest.raises(FaultToleranceError):
                verifier.count_two_paths(*non_edges[0])
