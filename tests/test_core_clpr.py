"""CLPR09-style union-over-fault-sets baseline."""

from __future__ import annotations

import pytest

from repro.core import (
    clpr_fault_tolerant_spanner,
    count_fault_sets,
    is_fault_tolerant_spanner,
)
from repro.errors import FaultToleranceError
from repro.graph import complete_graph, connected_gnp_graph, is_subgraph


def test_processes_every_fault_set():
    g = connected_gnp_graph(10, 0.5, seed=1)
    result = clpr_fault_tolerant_spanner(g, t=2, r=1, seed=2)
    assert result.fault_sets_processed == count_fault_sets(10, 1)
    assert result.stretch == 3


def test_output_is_subgraph():
    g = connected_gnp_graph(10, 0.5, seed=3)
    result = clpr_fault_tolerant_spanner(g, t=2, r=1, seed=4)
    assert is_subgraph(result.spanner, g)


def test_validity_r1():
    g = connected_gnp_graph(11, 0.5, seed=5)
    result = clpr_fault_tolerant_spanner(g, t=2, r=1, seed=6)
    assert is_fault_tolerant_spanner(result.spanner, g, k=3, r=1)


def test_validity_r2_small():
    g = connected_gnp_graph(9, 0.6, seed=7)
    result = clpr_fault_tolerant_spanner(g, t=2, r=2, seed=8)
    assert is_fault_tolerant_spanner(result.spanner, g, k=3, r=2)


def test_shared_randomness_is_smaller_on_average():
    """The CLPR09 insight: sharing the TZ hierarchy keeps the union small."""
    g = complete_graph(16)
    shared_sizes = []
    fresh_sizes = []
    for seed in range(5):
        shared_sizes.append(
            clpr_fault_tolerant_spanner(g, 2, 1, seed=seed).num_edges
        )
        fresh_sizes.append(
            clpr_fault_tolerant_spanner(
                g, 2, 1, seed=seed, shared_randomness=False
            ).num_edges
        )
    assert sum(shared_sizes) < sum(fresh_sizes)


def test_rejects_oversized_enumeration():
    g = complete_graph(30)
    with pytest.raises(FaultToleranceError):
        clpr_fault_tolerant_spanner(g, 2, 3, max_fault_sets=100)


def test_parameter_validation():
    g = complete_graph(4)
    with pytest.raises(FaultToleranceError):
        clpr_fault_tolerant_spanner(g, 0, 1)
    with pytest.raises(FaultToleranceError):
        clpr_fault_tolerant_spanner(g, 2, -1)
