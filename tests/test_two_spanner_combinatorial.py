"""Density-greedy combinatorial baseline for the 2-spanner problem."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import is_ft_2spanner
from repro.errors import FaultToleranceError
from repro.graph import (
    DiGraph,
    complete_digraph,
    complete_graph,
    gnp_random_digraph,
    gnp_random_graph,
    knapsack_gap_gadget,
)
from repro.two_spanner import (
    exact_minimum_ft2_spanner,
    greedy_ft2_spanner,
    solve_ft2_lp,
)


class TestGreedyValidity:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 3000), r=st.integers(0, 2))
    def test_always_valid_on_random_digraphs(self, seed, r):
        g = gnp_random_digraph(9, 0.5, seed=seed)
        result = greedy_ft2_spanner(g, r)
        assert is_ft_2spanner(result.spanner, g, r)

    def test_valid_on_undirected(self):
        g = gnp_random_graph(12, 0.5, seed=4)
        result = greedy_ft2_spanner(g, 1)
        assert is_ft_2spanner(result.spanner, g, 1)

    def test_rejects_negative_r(self):
        with pytest.raises(FaultToleranceError):
            greedy_ft2_spanner(complete_digraph(3), -1)

    def test_empty_graph(self):
        g = DiGraph()
        g.add_vertices(range(3))
        result = greedy_ft2_spanner(g, 2)
        assert result.num_edges == 0
        assert result.moves == 0


class TestGreedyQuality:
    def test_gadget_is_solved_optimally(self):
        for r in (1, 2, 3):
            g = knapsack_gap_gadget(r, 40.0)
            greedy = greedy_ft2_spanner(g, r)
            exact = exact_minimum_ft2_spanner(g, r)
            assert greedy.cost == pytest.approx(exact.cost)

    def test_within_log_factor_of_lp(self):
        import math

        g = complete_digraph(8)
        for r in (0, 1, 2):
            greedy = greedy_ft2_spanner(g, r)
            lp = solve_ft2_lp(g, r)
            assert greedy.cost <= 4 * math.log(8) * lp.objective

    def test_exploits_cost_structure(self):
        # Direct edge much cheaper than 2r unit arcs -> greedy keeps it.
        g = DiGraph()
        g.add_edge("u", "v", 0.5)
        for i in range(3):
            g.add_edge("u", ("w", i), 1.0)
            g.add_edge(("w", i), "v", 1.0)
        result = greedy_ft2_spanner(g, 0)
        assert result.spanner.has_edge("u", "v")

    def test_prefers_paths_when_edge_expensive_r0(self):
        g = knapsack_gap_gadget(1, 50.0)
        result = greedy_ft2_spanner(g, 0)
        # r=0: one two-path suffices; expensive edge should be skipped.
        assert not result.spanner.has_edge("u", "v")
        assert result.cost == pytest.approx(2.0)

    def test_moves_accounting(self):
        g = complete_digraph(5)
        result = greedy_ft2_spanner(g, 0)
        assert 1 <= result.moves <= g.num_edges
