"""FaultScenario + masked SurvivorView execution: the zero-copy contract.

Every per-survivor loop in the library (Theorem 2.1 conversion, its edge
variant, the Corollary 2.4 LOCAL pipeline, CLPR09) now runs on masked
:class:`repro.graph.csr.SurvivorView`\\ s behind one
:class:`repro.graph.FaultScenario` vocabulary. These tests pin the two
invariants that make that safe:

* scenarios round-trip strictly through JSON (format/version tags,
  unknown-key rejection) like every other spec type;
* every masked execution is output-, trace-, and RNG-stream-identical to
  the materialized-subgraph dict reference, per seed and across
  hash-randomized interpreters.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clpr import clpr_fault_tolerant_spanner
from repro.core.conversion import fault_tolerant_spanner, survival_probability
from repro.core.edge_faults import (
    edge_fault_tolerant_spanner,
    is_edge_fault_tolerant_spanner,
)
from repro.core.verify import is_fault_tolerant_spanner
from repro.distributed import distributed_ft_spanner
from repro.distsim import NodeAlgorithm, Simulation, SimulationTracer
from repro.errors import FaultToleranceError, InvalidSpec
from repro.graph import (
    FaultScenario,
    Graph,
    complete_digraph,
    connected_gnp_graph,
    csr_snapshot,
    gnp_random_graph,
    scenario_edge_fault_sets,
    scenario_fault_sets,
)
from repro.rng import derive_rng, ensure_rng
from repro.compiled import compiled_available
from repro.session import Session
from repro.spec import FaultModel, SpannerSpec


def edge_set(g):
    return sorted((u, v, w) for u, v, w in g.edges())


# ---------------------------------------------------------------------------
# The scenario value itself
# ---------------------------------------------------------------------------


class TestFaultScenarioValue:
    def test_constructors_and_kinds(self):
        assert FaultScenario.none().is_null
        sc = FaultScenario.vertex([3, 1], seed=7, iteration=2)
        assert sc.kind == "vertex" and sc.fault_set() == {1, 3}
        assert sc.seed == 7 and sc.iteration == 2
        ec = FaultScenario.edge([(0, 1)], seed=5)
        assert ec.kind == "edge" and ec.edge_fault_set() == {(0, 1)}

    def test_kind_field_mismatches_rejected(self):
        with pytest.raises(InvalidSpec):
            FaultScenario("none", vertices=(1,))
        with pytest.raises(InvalidSpec):
            FaultScenario("vertex", edges=((0, 1),))
        with pytest.raises(InvalidSpec):
            FaultScenario("bogus")
        with pytest.raises(InvalidSpec):
            FaultScenario("edge", edges=((0, 1, 2),))
        with pytest.raises(InvalidSpec):
            FaultScenario.vertex([1], iteration=-1)
        with pytest.raises(InvalidSpec):
            FaultScenario.vertex([1], seed="nope")

    def test_sample_vertices_matches_loop_draws(self):
        verts = list(range(20))
        a, b = random.Random(4), random.Random(4)
        sc = FaultScenario.sample_vertices(verts, 0.5, a)
        expected = [v for v in verts if not (b.random() < 0.5)]
        assert list(sc.vertices) == expected
        # identical stream consumption: both generators are in step
        assert a.random() == b.random()

    def test_json_round_trip_strictness(self):
        sc = FaultScenario.vertex([1, 2], seed=9, iteration=0)
        doc = sc.to_dict()
        assert doc["format"] == "repro-fault-scenario"
        assert FaultScenario.from_json(sc.to_json()) == sc
        with pytest.raises(InvalidSpec):
            FaultScenario.from_dict({**doc, "surprise": 1})
        with pytest.raises(InvalidSpec):
            FaultScenario.from_dict({**doc, "format": "other"})
        with pytest.raises(InvalidSpec):
            FaultScenario.from_dict({**doc, "version": 99})
        with pytest.raises(InvalidSpec):
            FaultScenario.from_json("{not json")
        with pytest.raises(InvalidSpec):
            FaultScenario.vertex([object()]).to_dict()

    @settings(max_examples=40, deadline=None)
    @given(
        kind=st.sampled_from(["none", "vertex", "edge"]),
        verts=st.lists(st.integers(0, 50), max_size=6, unique=True),
        seed=st.one_of(st.none(), st.integers(0, 2**40)),
        iteration=st.one_of(st.none(), st.integers(0, 500)),
    )
    def test_round_trip_property(self, kind, verts, seed, iteration):
        if kind == "vertex":
            sc = FaultScenario.vertex(verts, seed=seed, iteration=iteration)
        elif kind == "edge":
            sc = FaultScenario.edge(
                [(v, v + 1) for v in verts], seed=seed, iteration=iteration
            )
        else:
            sc = FaultScenario("none", seed=seed, iteration=iteration)
        back = FaultScenario.from_json(sc.to_json())
        assert back == sc
        assert back.fingerprint() == sc.fingerprint()

    def test_normalizers(self):
        assert scenario_fault_sets([(1, 2), FaultScenario.vertex([3])]) == [
            (1, 2), (3,)
        ]
        assert scenario_edge_fault_sets(
            [FaultScenario.edge([(0, 1)]), [(2, 3)]]
        ) == [((0, 1),), ((2, 3),)]
        with pytest.raises(InvalidSpec):
            scenario_fault_sets([FaultScenario.edge([(0, 1)])])
        with pytest.raises(InvalidSpec):
            scenario_edge_fault_sets([FaultScenario.vertex([1])])


# ---------------------------------------------------------------------------
# Edge-masked SurvivorView
# ---------------------------------------------------------------------------


class TestEdgeMaskedView:
    def _snap(self):
        g = connected_gnp_graph(12, 0.4, seed=1)
        return g, csr_snapshot(g)

    def test_edge_mask_filters_edges_keeps_vertices(self):
        g, snap = self._snap()
        edge_alive = [True] * snap.num_edges
        edge_alive[0] = edge_alive[3] = False
        view = snap.survivor_view(edge_alive=edge_alive)
        assert view.is_masked
        assert view.num_surviving_vertices == g.num_vertices
        ids = view.surviving_edge_ids()
        assert 0 not in ids and 3 not in ids
        assert len(ids) == snap.num_edges - 2
        # edge_subgraph semantics: every host vertex survives
        sub = view.to_graph()
        assert sub.num_vertices == g.num_vertices
        assert sub.num_edges == snap.num_edges - 2

    def test_combined_masks(self):
        g, snap = self._snap()
        alive = [True] * snap.num_vertices
        alive[0] = False
        edge_alive = [True] * snap.num_edges
        edge_alive[1] = False
        view = snap.survivor_view(alive, edge_alive=edge_alive)
        ids = set(view.surviving_edge_ids())
        assert 1 not in ids
        for e in ids:
            assert snap.edge_u[e] != 0 and snap.edge_v[e] != 0
        ref = view.to_graph()
        assert ref.num_edges == len(ids)

    def test_scenario_dispatch(self):
        g, snap = self._snap()
        u, v, _w = next(iter(g.edges()))
        view = snap.survivor_view(FaultScenario.edge([(v, u)]))
        assert view.num_surviving_edges == snap.num_edges - 1
        assert view.scenario is not None
        vview = snap.survivor_view(FaultScenario.vertex([u]))
        assert vview.num_surviving_vertices == snap.num_vertices - 1
        nview = snap.survivor_view(FaultScenario.none())
        assert not nview.is_masked
        with pytest.raises(ValueError):
            snap.survivor_view(
                FaultScenario.none(), edge_alive=[True] * snap.num_edges
            )

    def test_masked_weights_and_half_alive(self):
        np = pytest.importorskip("numpy")
        g, snap = self._snap()
        edge_alive = [True] * snap.num_edges
        edge_alive[2] = False
        view = snap.survivor_view(edge_alive=edge_alive)
        data = view.masked_weights()
        half = view.half_alive()
        _indptr, _nbr, wt, eid, _deg = snap.half_arrays_np()
        for pos in range(len(half)):
            if eid[pos] == 2:
                assert not half[pos] and data[pos] == np.inf
            else:
                assert half[pos] and data[pos] == wt[pos]

    def test_distance_kernels_refuse_edge_masks(self):
        g, snap = self._snap()
        edge_alive = [True] * snap.num_edges
        edge_alive[0] = False
        view = snap.survivor_view(edge_alive=edge_alive)
        with pytest.raises(ValueError):
            view.dijkstra_idx(0)
        with pytest.raises(ValueError):
            view.bfs_idx(0)


# ---------------------------------------------------------------------------
# Conversion pipelines on views
# ---------------------------------------------------------------------------


class TestConversionOnViews:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 300))
    def test_vertex_conversion_paths_identical(self, seed):
        g = gnp_random_graph(48, 0.18, seed=seed)
        a = fault_tolerant_spanner(g, 3, 2, iterations=5, seed=seed, method="csr")
        b = fault_tolerant_spanner(g, 3, 2, iterations=5, seed=seed, method="dict")
        assert edge_set(a.spanner) == edge_set(b.spanner)
        assert a.stats.survivor_sizes == b.stats.survivor_sizes
        assert a.stats.iteration_edge_counts == b.stats.iteration_edge_counts
        assert a.stats.union_edge_counts == b.stats.union_edge_counts

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 300))
    def test_edge_conversion_paths_identical(self, seed):
        g = gnp_random_graph(48, 0.18, seed=seed)
        a = edge_fault_tolerant_spanner(g, 3, 2, iterations=5, seed=seed,
                                        method="csr")
        b = edge_fault_tolerant_spanner(g, 3, 2, iterations=5, seed=seed,
                                        method="dict")
        assert edge_set(a.spanner) == edge_set(b.spanner)
        assert a.stats.survivor_sizes == b.stats.survivor_sizes
        assert a.stats.iteration_edge_counts == b.stats.iteration_edge_counts
        assert a.stats.union_edge_counts == b.stats.union_edge_counts

    def test_edge_conversion_directed_host(self):
        g = complete_digraph(6)
        a = edge_fault_tolerant_spanner(g, 2, 1, iterations=4, seed=5,
                                        method="csr")
        b = edge_fault_tolerant_spanner(g, 2, 1, iterations=4, seed=5,
                                        method="dict")
        assert edge_set(a.spanner) == edge_set(b.spanner)
        assert a.stats.survivor_sizes == b.stats.survivor_sizes

    def test_scenario_replay_reproduces_sampled_run(self):
        g = gnp_random_graph(40, 0.2, seed=3)
        p = survival_probability(2)
        verts = list(g.vertices())
        rng = ensure_rng(11)
        scs = [
            FaultScenario.sample_vertices(
                verts, p, derive_rng(rng, i), seed=11, iteration=i
            )
            for i in range(5)
        ]
        ref = fault_tolerant_spanner(g, 3, 2, iterations=5, seed=11)
        for m in ("csr", "dict"):
            rep = fault_tolerant_spanner(g, 3, 2, method=m, scenarios=scs)
            assert edge_set(rep.spanner) == edge_set(ref.spanner)
            assert rep.stats.survivor_sizes == ref.stats.survivor_sizes
            assert rep.stats.iterations == 5

    def test_scenario_kind_validation(self):
        g = gnp_random_graph(10, 0.5, seed=0)
        edge_sc = FaultScenario.edge([next((u, v) for u, v, _ in g.edges())])
        vert_sc = FaultScenario.vertex([next(iter(g.vertices()))])
        with pytest.raises(FaultToleranceError):
            fault_tolerant_spanner(g, 3, 1, scenarios=[edge_sc])
        with pytest.raises(FaultToleranceError):
            edge_fault_tolerant_spanner(g, 3, 1, scenarios=[vert_sc])
        with pytest.raises(FaultToleranceError):
            fault_tolerant_spanner(g, 3, 1, scenarios=[])
        with pytest.raises(FaultToleranceError):
            fault_tolerant_spanner(g, 3, 1, scenarios=[("not", "a", "scenario")])


# ---------------------------------------------------------------------------
# CLPR on views
# ---------------------------------------------------------------------------


class TestCLPROnViews:
    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 200))
    def test_paths_identical(self, seed):
        g = gnp_random_graph(50, 0.16, seed=seed)
        a = clpr_fault_tolerant_spanner(g, 2, 1, seed=seed, method="csr")
        b = clpr_fault_tolerant_spanner(g, 2, 1, seed=seed, method="dict")
        assert edge_set(a.spanner) == edge_set(b.spanner)
        assert a.fault_sets_processed == b.fault_sets_processed

    def test_explicit_scenarios(self):
        g = gnp_random_graph(40, 0.2, seed=5)
        verts = list(g.vertices())[:5]
        scs = [FaultScenario.none()] + [FaultScenario.vertex([v]) for v in verts]
        a = clpr_fault_tolerant_spanner(g, 2, 1, seed=5, method="csr",
                                        scenarios=scs)
        b = clpr_fault_tolerant_spanner(g, 2, 1, seed=5, method="dict",
                                        scenarios=scs)
        raw = clpr_fault_tolerant_spanner(
            g, 2, 1, seed=5, method="csr",
            scenarios=[()] + [(v,) for v in verts],
        )
        assert edge_set(a.spanner) == edge_set(b.spanner) == edge_set(raw.spanner)
        assert a.fault_sets_processed == len(scs)
        with pytest.raises(FaultToleranceError):
            clpr_fault_tolerant_spanner(
                g, 2, 1, scenarios=[FaultScenario.vertex(verts[:3])]
            )


# ---------------------------------------------------------------------------
# The LOCAL simulator on masked views
# ---------------------------------------------------------------------------


class _Gossip(NodeAlgorithm):
    """Two rounds of randomized gossip — exercises RNG + message order."""

    def on_start(self, ctx):
        ctx.state["token"] = ctx.rng.random()
        ctx.broadcast(("t", ctx.state["token"]))

    def on_round(self, ctx, inbox):
        if ctx.round >= 2:
            ctx.halt(result=round(sum(t for _k, t in inbox.values()), 9))
            return
        ctx.broadcast(("t", ctx.state["token"] + len(inbox)))


class TestSimulatorOnViews:
    def _identity(self, scenario_kind, seed):
        g = connected_gnp_graph(30, 0.25, seed=seed)
        snap = csr_snapshot(g)
        rng = random.Random(seed)
        if scenario_kind == "vertex":
            faults = [v for v in g.vertices() if rng.random() < 0.2]
            sc = FaultScenario.vertex(faults)
        else:
            faults = [(u, v) for u, v, _w in g.edges() if rng.random() < 0.2]
            sc = FaultScenario.edge(faults)
        outcomes = {}
        rngs = {}
        traces = {}
        for method in ("csr", "dict"):
            tracer = SimulationTracer()
            parent = random.Random(99)
            sim = Simulation(
                g, lambda v: _Gossip(), seed=parent, tracer=tracer,
                method=method, scenario=sc,
            )
            res = sim.run()
            outcomes[method] = (res.rounds, res.messages_sent,
                                sorted(res.results.items()))
            rngs[method] = parent.random()
            traces[method] = tracer.to_dict()
        assert outcomes["csr"] == outcomes["dict"]
        assert rngs["csr"] == rngs["dict"]
        assert traces["csr"] == traces["dict"]
        # the dict reference materialized a subgraph; the engine did not
        view = snap.survivor_view(sc)
        if sc.kind == "vertex":
            assert len(outcomes["csr"][2]) == view.num_surviving_vertices
        else:
            assert len(outcomes["csr"][2]) == g.num_vertices

    @pytest.mark.parametrize("kind", ["vertex", "edge"])
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_masked_engine_matches_dict_reference(self, kind, seed):
        self._identity(kind, seed)

    def test_distributed_ft_paths_identical(self):
        for seed in (0, 1, 5):
            g = connected_gnp_graph(56, 0.12, seed=seed)
            a = distributed_ft_spanner(g, 2, 2, iterations=5, seed=seed,
                                       method="csr")
            b = distributed_ft_spanner(g, 2, 2, iterations=5, seed=seed,
                                       method="dict")
            assert edge_set(a.spanner) == edge_set(b.spanner)
            assert a.survivor_sizes == b.survivor_sizes
            assert a.total_rounds == b.total_rounds
            assert a.total_messages == b.total_messages


# ---------------------------------------------------------------------------
# Verifier vocabulary + deprecation shims
# ---------------------------------------------------------------------------


class TestVerifierScenarios:
    def _instance(self):
        g = connected_gnp_graph(14, 0.5, seed=2)
        rep = fault_tolerant_spanner(g, 3, 1, seed=2)
        return g, rep.spanner

    def test_scenarios_accepted(self):
        g, h = self._instance()
        v = next(iter(g.vertices()))
        assert is_fault_tolerant_spanner(
            h, g, 3, 1, scenarios=[FaultScenario.none(),
                                   FaultScenario.vertex([v])]
        )
        u, w, _ = next(iter(g.edges()))
        assert is_edge_fault_tolerant_spanner(
            g, g, 3, 1, scenarios=[FaultScenario.edge([(u, w)])]
        )

    def test_deprecated_name_warns_and_still_works(self):
        g, h = self._instance()
        with pytest.warns(DeprecationWarning, match="fault_sets_to_check"):
            assert is_fault_tolerant_spanner(h, g, 3, 1,
                                             fault_sets_to_check=[()])
        with pytest.warns(DeprecationWarning, match="fault_sets_to_check"):
            assert is_edge_fault_tolerant_spanner(g, g, 3, 1,
                                                  fault_sets_to_check=[()])

    def test_scenarios_do_not_warn(self):
        import warnings

        g, h = self._instance()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert is_fault_tolerant_spanner(h, g, 3, 1, scenarios=[()])
            assert is_edge_fault_tolerant_spanner(g, g, 3, 1, scenarios=[()])


# ---------------------------------------------------------------------------
# Session integration
# ---------------------------------------------------------------------------


class TestSessionScenario:
    def test_replay_matches_build(self):
        g = connected_gnp_graph(36, 0.2, seed=4)
        session = Session()
        spec = SpannerSpec("theorem21", stretch=3,
                           faults=FaultModel.vertex(2), seed=17)
        scs = [session.scenario(spec, graph=g, iteration=i) for i in range(4)]
        ref = fault_tolerant_spanner(g, 3, 2, iterations=4, seed=17)
        rep = fault_tolerant_spanner(g, 3, 2, scenarios=scs)
        assert edge_set(rep.spanner) == edge_set(ref.spanner)
        assert rep.stats.survivor_sizes == ref.stats.survivor_sizes
        assert scs[2].seed == 17 and scs[2].iteration == 2

    def test_edge_kind_and_errors(self):
        g = connected_gnp_graph(20, 0.3, seed=4)
        session = Session()
        espec = SpannerSpec("theorem21-edge", stretch=3,
                            faults=FaultModel.edge(2), seed=23)
        scs = [session.scenario(espec, graph=g, iteration=i) for i in range(3)]
        ref = edge_fault_tolerant_spanner(g, 3, 2, iterations=3, seed=23)
        rep = edge_fault_tolerant_spanner(g, 3, 2, scenarios=scs)
        assert edge_set(rep.spanner) == edge_set(ref.spanner)
        none_spec = SpannerSpec("greedy", stretch=3, seed=1)
        assert session.scenario(none_spec, graph=g).is_null
        with pytest.raises(InvalidSpec):
            session.scenario(espec.replace(seed=None), graph=g)
        with pytest.raises(InvalidSpec):
            session.scenario(espec, graph=g, iteration=-1)

    def test_theorem21_edge_primes_host_snapshot(self):
        """Regression: the edge conversion reads the host CSR snapshot, so
        the session must warm it through its cache (csr_path=True)."""
        g = connected_gnp_graph(64, 0.15, seed=9)
        session = Session()
        spec = SpannerSpec("theorem21-edge", stretch=3,
                           faults=FaultModel.edge(1), seed=13)
        report = session.build(spec, graph=g)
        # the session primed the snapshot (a build or a cache hit, depending
        # on whether the host generator already warmed it)
        assert session.snapshot_builds + session.snapshot_hits == 1
        # the engine rides the compiled kernel when the C backend serves
        assert report.resolved_method == (
            "compiled" if compiled_available() else "csr"
        )
        report2 = session.build(spec, graph=g)
        assert session.snapshot_builds + session.snapshot_hits == 2
        assert edge_set(report2.spanner) == edge_set(report.spanner)


# ---------------------------------------------------------------------------
# Hash-seed determinism of the scenario pipelines
# ---------------------------------------------------------------------------


_SCENARIO_SCRIPT = """
import json, sys
from repro.core.conversion import fault_tolerant_spanner
from repro.core.edge_faults import edge_fault_tolerant_spanner
from repro.graph import connected_gnp_graph

method = sys.argv[1]
g = connected_gnp_graph(30, 0.2, seed=6)
relabeled = type(g)()
for u, v, w in g.edges():
    relabeled.add_edge(f"node-{u}", f"node-{v}", w)
vres = fault_tolerant_spanner(relabeled, 3, 2, iterations=4, seed=9,
                              method=method)
eres = edge_fault_tolerant_spanner(relabeled, 3, 2, iterations=4, seed=9,
                                   method=method)
print(json.dumps({
    "vertex": sorted((u, v) for u, v, _w in vres.spanner.edges()),
    "vertex_sizes": vres.stats.survivor_sizes,
    "edge": sorted((u, v) for u, v, _w in eres.spanner.edges()),
    "edge_sizes": eres.stats.survivor_sizes,
}))
"""


class TestHashSeedDeterminism:
    """String labels expose any hidden set-iteration order in the masked
    pipelines: per seed there must be exactly one output across
    hash-randomized interpreters, on both execution paths."""

    @pytest.mark.parametrize("method", ["csr", "dict"])
    def test_conversions_stable_across_hash_seeds(self, method):
        outputs = set()
        for hashseed in ("0", "1"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = os.pathsep.join(
                filter(None, ["src", os.environ.get("PYTHONPATH")])
            )
            result = subprocess.run(
                [sys.executable, "-c", _SCENARIO_SCRIPT, method],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.add(result.stdout)
        assert len(outputs) == 1, "conversion output varies with PYTHONHASHSEED"
