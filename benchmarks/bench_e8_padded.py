"""E8 — Lemma 3.7: padded decompositions in O(log n) rounds.

Paper claim (Definition 3.6 + Lemma 3.7): the distributed Bartal-style
sampler runs in O(log n) LOCAL rounds and outputs a partition whose
clusters have (weak) diameter O(log n) and in which every vertex's closed
neighbourhood is uncut with probability at least 1/2.

Workload: square grids (large hop diameter, so the O(log n) cluster
diameter is a real constraint, unlike expanders where everything is
3 hops wide). Each size is sampled several times; padding is averaged.

Shape to hold: rounds and measured max weak diameter grow ~logarithmically
with n (both are <= their O(log n) caps); mean padded fraction >= 1/2.
"""

from __future__ import annotations

import math

from conftest import run_once

from repro.analysis import print_table
from repro.distributed import (
    default_radius_cap,
    distributed_padded_decomposition,
    sample_padded_decomposition,
)
from repro.graph import grid_graph
from repro.rng import ensure_rng

SIDES = [5, 8, 11, 14]
SAMPLES = 6


def sweep():
    rows = []
    rng = ensure_rng(0)
    for side in SIDES:
        grid = grid_graph(side, side)
        n = grid.num_vertices
        diam_worst = 0
        padded_total = 0.0
        clusters_total = 0
        rounds = 0
        for i in range(SAMPLES):
            if i == 0:
                # one genuinely message-passing run per size
                dec, sim = distributed_padded_decomposition(grid, seed=rng)
                rounds = sim.rounds
            else:
                dec = sample_padded_decomposition(grid, seed=rng)
            diam_worst = max(diam_worst, dec.max_weak_diameter(grid))
            padded_total += dec.padded_fraction(grid)
            clusters_total += len(dec.clusters)
        rows.append(
            {
                "n": n,
                "cap": default_radius_cap(n),
                "rounds": rounds,
                "diam": diam_worst,
                "padded": padded_total / SAMPLES,
                "clusters": clusters_total / SAMPLES,
            }
        )
    return rows


def test_e8_padded_decomposition(benchmark):
    rows = run_once(benchmark, sweep)
    print_table(
        ["n", "radius cap (8 ln n)", "LOCAL rounds", "max weak diam",
         "mean padded fraction", "mean #clusters"],
        [
            [row["n"], row["cap"], row["rounds"], row["diam"],
             row["padded"], row["clusters"]]
            for row in rows
        ],
        title="E8: padded decompositions of square grids "
        f"({SAMPLES} samples per size)",
    )
    for row in rows:
        # Definition 3.6 item 1: weak diameter O(log n) (<= 2 * cap).
        assert 0 <= row["diam"] <= 2 * row["cap"]
        # Definition 3.6 item 2: padding probability >= 1/2 (on average).
        assert row["padded"] >= 0.5
        # Lemma 3.7: O(log n) rounds.
        assert row["rounds"] <= row["cap"] + 1
    # Rounds grow at most logarithmically: compare endpoints.
    n_small, n_big = rows[0]["n"], rows[-1]["n"]
    assert rows[-1]["rounds"] <= rows[0]["rounds"] * (
        math.log(n_big) / math.log(n_small)
    ) + 2
