"""A1 (ablation) — what the oversampling probability controls.

Theorem 2.1's size bound is ``O(α · f(2n/r))``: the per-vertex survival
probability ``p_s`` determines the survivor-graph size ``|G \\ J| ≈ p_s n``
and therefore the *per-iteration contribution* ``f(|G \\ J|)`` to the
union. The paper's ``p_s = 1/r`` keeps that contribution at ``f(2n/r)``;
a naive ``p_s = 1/2`` pays ``f(n/2)`` per iteration — asymptotically an
``(r/2)^{1+2/(k+1)}`` factor more — and also shrinks the per-iteration
success probability ``p_s²(1-p_s)^r`` by a ``2^{-r}``-type factor, which
is what the union bound at scale cannot absorb.

At laptop scale (dense K_n hosts, Monte Carlo validity) all settings pass
the sampled validity check — the union-bound failure mode needs much
larger n to materialize, and we report that honestly. What *is* measurable
here, and asserted, is the mechanics the bound is made of:

* mean ``|G \\ J|`` tracks ``p_s · n``;
* mean per-iteration spanner size is ordered by ``p_s`` and the naive
  setting pays several times the paper's choice per iteration;
* the paper's choice passes validity on every sampled fault set.
"""

from __future__ import annotations

from conftest import run_once

from repro import FaultModel, Session, SpannerSpec
from repro.analysis import print_table, sampled_stretch_profile
from repro.graph import complete_graph

N = 60
R = 4
K = 3
ITERATIONS = 120  # fixed budget across all probability settings
TRIALS = 80


def sweep():
    graph = complete_graph(N)
    settings = [
        ("paper 1/r", 1.0 / R),
        ("maximizer 2/(r+2)", 2.0 / (R + 2)),
        ("naive 1/2", 0.5),
    ]
    # One Session, three specs differing only in the ablated knob — the
    # per-iteration accounting comes back in each BuildReport's stats.
    session = Session()
    specs = [
        SpannerSpec(
            "theorem21",
            stretch=K,
            faults=FaultModel.vertex(R),
            seed=11,
            params={"iterations": ITERATIONS, "survival_prob": p_survive},
        )
        for _label, p_survive in settings
    ]
    reports = session.build_many(specs, graph=graph)
    rows = []
    for (label, p_survive), report in zip(settings, reports):
        survivor_sizes = report.stats["survivor_sizes"]
        contributions = report.stats["iteration_edge_counts"]
        profile = sampled_stretch_profile(
            report.spanner, graph, R, trials=TRIALS, seed=12
        )
        rows.append(
            {
                "label": label,
                "p": p_survive,
                "mean_survivor": sum(survivor_sizes) / len(survivor_sizes),
                "mean_contribution": sum(contributions) / len(contributions),
                "union": report.size,
                "ok_fraction": profile.fraction_within(K),
                "worst": profile.max,
            }
        )
    return rows


def test_a1_oversampling_ablation(benchmark):
    rows = run_once(benchmark, sweep)
    print_table(
        ["survival prob", "p_s", "mean |G\\J|", "mean f(|G\\J|)/iter",
         "union size", "fault sets ok", "worst stretch"],
        [
            [row["label"], row["p"], row["mean_survivor"],
             row["mean_contribution"], row["union"], row["ok_fraction"],
             row["worst"]]
            for row in rows
        ],
        title=(
            f"A1: oversampling ablation on K_{N} "
            f"(k={K}, r={R}, fixed {ITERATIONS} iterations, {TRIALS} sampled "
            "fault sets)"
        ),
    )
    by_label = {row["label"]: row for row in rows}
    paper = by_label["paper 1/r"]
    naive = by_label["naive 1/2"]
    maximizer = by_label["maximizer 2/(r+2)"]

    # Survivor size tracks p_s * n (within 25%).
    for row in rows:
        assert abs(row["mean_survivor"] - row["p"] * N) <= 0.25 * row["p"] * N
    # Per-iteration contribution f(|G\J|) is ordered by p_s, and the naive
    # setting pays at least 2x the paper's choice per iteration — the
    # f(n/2)-vs-f(2n/r) mechanism of the size bound.
    assert (
        paper["mean_contribution"]
        <= maximizer["mean_contribution"]
        <= naive["mean_contribution"]
    )
    assert naive["mean_contribution"] >= 2.0 * paper["mean_contribution"]
    # The paper's setting remains fully valid on every sampled fault set.
    assert paper["ok_fraction"] == 1.0
    assert paper["worst"] <= K + 1e-9
