"""Perf — CSR fast-path kernels vs the dict-of-dict implementations.

Micro-benchmarks for the hot paths the kernel layer rewired. PR 1:

* **greedy spanner** (cutoff Dijkstra inside [ADD+93]) — indexed kernel
  with bounded bidirectional search vs the original dict pipeline;
* **conversion loop** (Theorem 2.1 oversampling) — survivor bitmasks over
  one CSR snapshot vs per-iteration ``induced_subgraph`` + dict greedy;
* **Lemma 3.1 verifier** — set-intersection bulk check and the O(Δ)
  incremental counter vs the per-edge recount, at two sizes.

PR 2 routed the rest of the algorithm stack onto the kernels:

* **Thorup–Zwick spanner** — compiled Johnson-primed batched cluster
  searches + vectorized tree extraction vs the dict construction;
* **Baswana–Sen spanner** — whole-array clustering phases (scatter-min
  grouping, one aliveness mask) vs the dict working-edge-map rounds;
* **TZ distance oracle** — same kernels, bunch/witness form;
* **CLPR09 baseline** — one snapshot + per-fault-set masked weight
  vectors vs a ``without_vertices`` dict copy per fault set;
* **padded decomposition** (Lemma 3.7) — batched unit-weight limited
  SSSP balls vs per-center dict BFS;
* **LP (3) row assembly** — CSR-driven midpoint enumeration and bulk
  constraint records vs per-edge dict walks.

PR 5 rewired the LOCAL-model simulator:

* **round engine** (``engine_vs_dict_rounds``) — the array-backed
  half-edge scatter engine vs the reference dict-of-dict round loop, on
  a deliberately thin fan-out node program so the timing isolates the
  simulator substrate (message routing, inbox construction, round
  bookkeeping) rather than any algorithm's local computation.

PR 10 added the optional compiled (C) tier:

* **greedy compiled** (``greedy_compiled``) — the bounded bidirectional
  Dijkstra inside the greedy spanner, run in the C backend
  (:mod:`repro.compiled`) vs the pinned dict reference;
* **simplex pivot loop** (``simplex_compiled``) — the two-phase primal
  simplex with the pivot/ratio-test loop in C vs the reference python
  loop, same tolerances and pivot sequence.

Both pairs are skipped (with a printed note) when the backend cannot
build/load, so the committed baseline from a full container always
carries them but a bare environment can still run the rest.

Each pair runs the *same seeds* and asserts identical outputs before
timing, so the speedups compare equal work. Results are written to
``BENCH_perf_kernels.json`` at the repo root — committed as the perf
baseline so future PRs have a trajectory to compare against
(``benchmarks/check_regression.py`` is the opt-in gate).

Run as a pytest benchmark (``pytest benchmarks/bench_perf_kernels.py
--benchmark-only``) or standalone (``python benchmarks/bench_perf_kernels.py``).
"""

from __future__ import annotations

import gc
import json
import os
import time

from repro.core import clpr_fault_tolerant_spanner, fault_tolerant_spanner
from repro.core.verify import (
    IncrementalFT2Verifier,
    edge_satisfied,
    unsatisfied_edges,
)
from repro.distributed import sample_padded_decomposition
from repro.distsim import NodeAlgorithm, run_algorithm
from repro.graph import connected_gnp_graph, gnp_random_graph
from repro.spanners import (
    baswana_sen_spanner,
    build_distance_oracle,
    greedy_spanner,
    thorup_zwick_spanner,
)
from repro.two_spanner.lp_new import _build_ft2_lp_reference, build_ft2_lp

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(_REPO_ROOT, "BENCH_perf_kernels.json")

#: Acceptance floor for the headline kernels at n ≈ 400 (measured
#: ~7-27x on the reference container; the margin absorbs slow CI).
MIN_HEADLINE_SPEEDUP = 5.0

#: Acceptance floor for the compiled greedy Dijkstra over the dict path
#: at n = 400 (PR 10 tentpole criterion; measured well above on the
#: reference container).
MIN_COMPILED_GREEDY_SPEEDUP = 3.0


def _clock(fn, repeats: int = 1) -> float:
    # Like timeit: collections are scheduled by allocation pressure from
    # *earlier* benchmarks, so GC pauses land on whichever side is timed
    # when the threshold trips — disable it while the clock runs.
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best
    finally:
        if was_enabled:
            gc.enable()


def _edge_set(graph):
    return sorted(map(tuple, graph.edges()))


def bench_greedy(n: int = 400, p: float = 0.08, k: float = 3.0) -> dict:
    g = gnp_random_graph(n, p, seed=1, weight_range=(0.5, 3.0))
    fast = greedy_spanner(g, k)
    slow = greedy_spanner(g, k, method="dict")
    assert _edge_set(fast) == _edge_set(slow)
    t_fast = _clock(lambda: greedy_spanner(g, k), repeats=2)
    t_slow = _clock(lambda: greedy_spanner(g, k, method="dict"))
    return {
        "name": "greedy_spanner",
        "n": n,
        "m": g.num_edges,
        "params": {"p": p, "k": k},
        "dict_seconds": t_slow,
        "csr_seconds": t_fast,
        "speedup": t_slow / t_fast,
    }


def bench_greedy_compiled(n: int = 400, p: float = 0.08, k: float = 3.0) -> dict:
    """Compiled greedy Dijkstra vs the pinned dict reference (PR 10).

    Same host/seed as :func:`bench_greedy` so the three tiers (dict,
    CSR-indexed, compiled) are directly comparable across the committed
    rows. Requires the C backend; callers gate on ``compiled_available``.
    """
    g = gnp_random_graph(n, p, seed=1, weight_range=(0.5, 3.0))
    fast = lambda: greedy_spanner(g, k, method="compiled")  # noqa: E731
    slow = lambda: greedy_spanner(g, k, method="dict")  # noqa: E731
    assert _edge_set(fast()) == _edge_set(slow())
    return _pair_row(
        "greedy_compiled", g, fast, slow, {"p": p, "k": k},
        fast_key="compiled_seconds",
    )


def _random_standard_lp(seed: int, m: int, n: int):
    """A feasible integer-structured standard-form LP (min c^T x, Ax=b, x>=0).

    ``b = A @ x0`` for an integer ``x0 >= 0`` guarantees feasibility;
    rows with negative ``b`` are sign-flipped to meet the ``b >= 0``
    precondition. Non-negative costs keep the optimum bounded.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    a = rng.integers(-3, 4, size=(m, n)).astype(float)
    x0 = rng.integers(0, 4, size=n).astype(float)
    b = a @ x0
    neg = b < 0
    a[neg] *= -1.0
    b[neg] *= -1.0
    c = rng.integers(0, 6, size=n).astype(float)
    return a, b, c


def bench_simplex_compiled(m: int = 40, n: int = 80, seed: int = 6) -> dict:
    """Compiled simplex pivot loop vs the reference python loop (PR 10).

    Two-phase solve of one feasible integer-structured LP; statuses,
    bases and solution vectors are asserted identical before timing
    (integer data keeps the two tiers bit-identical, not just close).
    """
    from repro.lp.simplex import solve_standard_form

    a, b, c = _random_standard_lp(seed, m, n)
    fast = lambda: solve_standard_form(a, b, c, method="compiled")  # noqa: E731
    slow = lambda: solve_standard_form(a, b, c, method="dict")  # noqa: E731
    status_cc, x_cc, obj_cc = fast()
    status_py, x_py, obj_py = slow()
    assert status_cc == status_py == "optimal"
    assert obj_cc == obj_py
    assert x_cc.tolist() == x_py.tolist()
    t_fast = _clock(fast, repeats=3)
    t_slow = _clock(slow, repeats=2)
    return {
        "name": "simplex_compiled",
        "n": n,
        "m": m,
        "params": {"seed": seed, "form": "standard, integer data"},
        "dict_seconds": t_slow,
        "compiled_seconds": t_fast,
        "speedup": t_slow / t_fast,
    }


def bench_conversion(n: int = 400, p: float = 0.05, r: int = 2, iters: int = 20) -> dict:
    g = gnp_random_graph(n, p, seed=2, weight_range=(0.5, 3.0))

    def fast():
        return fault_tolerant_spanner(g, 3, r, iterations=iters, seed=7)

    def slow():
        # A wrapper lambda is not `greedy_spanner` itself, so the driver
        # takes the original induced-subgraph dict pipeline.
        return fault_tolerant_spanner(
            g, 3, r, iterations=iters, seed=7,
            base_algorithm=lambda h, k: greedy_spanner(h, k, method="dict"),
        )

    assert _edge_set(fast().spanner) == _edge_set(slow().spanner)
    t_fast = _clock(lambda: fast(), repeats=2)
    t_slow = _clock(lambda: slow())
    return {
        "name": "conversion_loop",
        "n": n,
        "m": g.num_edges,
        "params": {"p": p, "r": r, "iterations": iters},
        "dict_seconds": t_slow,
        "csr_seconds": t_fast,
        "speedup": t_slow / t_fast,
    }


def _naive_unsatisfied(spanner, graph, r):
    """The seed's per-edge recount (rebuilds both endpoint sets per edge)."""
    return [
        (u, v) for u, v, _w in graph.edges() if not edge_satisfied(spanner, u, v, r)
    ]


def bench_verifier(n: int, p: float = 0.1, r: int = 1) -> dict:
    g = gnp_random_graph(n, p, seed=3)
    h = greedy_spanner(g, 2)
    assert unsatisfied_edges(h, g, r) == _naive_unsatisfied(h, g, r)
    t_fast = _clock(lambda: unsatisfied_edges(h, g, r), repeats=2)
    t_slow = _clock(lambda: _naive_unsatisfied(h, g, r))

    # Rounding-loop shape: grow a spanner edge by edge, re-checking
    # validity after every addition. Incremental = O(Δ) per add; the naive
    # loop recounts O(m·Δ) per add.
    additions = [(u, v) for u, v, _w in g.edges() if not h.has_edge(u, v)][:60]

    def incremental():
        verifier = IncrementalFT2Verifier(g, r, spanner=h)
        for u, v in additions:
            verifier.add_edge(u, v)
            verifier.is_valid()

    def naive_loop():
        grown = h.copy()
        for u, v in additions:
            grown.add_edge(u, v, g.weight(u, v))
            _naive_unsatisfied(grown, g, r)

    t_inc = _clock(incremental)
    t_naive = _clock(naive_loop)
    return {
        "name": f"lemma31_verifier_n{n}",
        "n": n,
        "m": g.num_edges,
        "params": {"p": p, "r": r, "incremental_additions": len(additions)},
        "dict_seconds": t_slow,
        "csr_seconds": t_fast,
        "speedup": t_slow / t_fast,
        "incremental_loop_seconds": t_inc,
        "naive_loop_seconds": t_naive,
        "incremental_speedup": t_naive / t_inc,
    }


def _pair_row(name, graph, fast_fn, slow_fn, params, fast_repeats=3,
              fast_key="csr_seconds"):
    """Time a kernel/dict pair (callers assert output identity first).

    ``fast_key`` names the fast-side column — ``"csr_seconds"`` for the
    CSR tier, ``"compiled_seconds"`` for the C-backend pairs — so the
    committed JSON says which tier produced each number.
    """
    t_fast = _clock(fast_fn, repeats=fast_repeats)
    t_slow = _clock(slow_fn, repeats=2)
    return {
        "name": name,
        "n": graph.num_vertices,
        "m": graph.num_edges,
        "params": params,
        "dict_seconds": t_slow,
        fast_key: t_fast,
        "speedup": t_slow / t_fast,
    }


def bench_thorup_zwick(n: int = 400, t: int = 2) -> dict:
    # Complete weighted host: the regime TZ's O(t·n^{1+1/t}) bound targets
    # (and the host family E1 uses).
    g = gnp_random_graph(n, 1.0, seed=4, weight_range=(0.5, 3.0))
    fast = lambda: thorup_zwick_spanner(g, t, seed=5, method="csr")  # noqa: E731
    slow = lambda: thorup_zwick_spanner(g, t, seed=5, method="dict")  # noqa: E731
    assert _edge_set(fast()) == _edge_set(slow())
    return _pair_row("thorup_zwick", g, fast, slow, {"t": t, "host": "K_n weighted"})


def bench_baswana_sen(n: int = 400, k: int = 4) -> dict:
    g = gnp_random_graph(n, 1.0, seed=4, weight_range=(0.5, 3.0))
    fast = lambda: baswana_sen_spanner(g, k, seed=9, method="csr")  # noqa: E731
    slow = lambda: baswana_sen_spanner(g, k, seed=9, method="dict")  # noqa: E731
    assert _edge_set(fast()) == _edge_set(slow())
    return _pair_row("baswana_sen", g, fast, slow, {"k": k, "host": "K_n weighted"})


def bench_distance_oracle(n: int = 400, p: float = 0.1, t: int = 2) -> dict:
    g = gnp_random_graph(n, p, seed=2, weight_range=(0.5, 3.0))
    fast = lambda: build_distance_oracle(g, t, seed=5, method="csr")  # noqa: E731
    slow = lambda: build_distance_oracle(g, t, seed=5, method="dict")  # noqa: E731
    a, b = fast(), slow()
    assert a.bunches == b.bunches and a.witnesses == b.witnesses
    return _pair_row("tz_distance_oracle", g, fast, slow, {"p": p, "t": t})


def bench_clpr(n: int = 120, t: int = 2, r: int = 1) -> dict:
    g = gnp_random_graph(n, 1.0, seed=1, weight_range=(0.5, 3.0))
    fast = lambda: clpr_fault_tolerant_spanner(  # noqa: E731
        g, t, r, seed=0, method="csr"
    )
    slow = lambda: clpr_fault_tolerant_spanner(  # noqa: E731
        g, t, r, seed=0, method="dict"
    )
    assert _edge_set(fast().spanner) == _edge_set(slow().spanner)
    f = lambda: fast()  # noqa: E731
    s = lambda: slow()  # noqa: E731
    t_fast = _clock(f, repeats=2)
    t_slow = _clock(s)
    return {
        "name": "clpr_baseline",
        "n": n,
        "m": g.num_edges,
        "params": {"t": t, "r": r, "host": "K_n weighted"},
        "dict_seconds": t_slow,
        "csr_seconds": t_fast,
        "speedup": t_slow / t_fast,
    }


def bench_decomposition(n: int = 400, p: float = 0.03) -> dict:
    g = connected_gnp_graph(n, p, seed=2)
    fast = lambda: sample_padded_decomposition(g, seed=5, method="csr")  # noqa: E731
    slow = lambda: sample_padded_decomposition(g, seed=5, method="dict")  # noqa: E731
    a, b = fast(), slow()
    assert a.assignment == b.assignment and a.radii == b.radii
    return _pair_row("padded_decomposition", g, fast, slow, {"p": p})


class _FanoutNode(NodeAlgorithm):
    """Thin flood program: broadcast + inbox sum per round, then halt.

    The per-round local computation is a single integer sum, so a
    simulation of this node measures the simulator substrate itself —
    the regime the E9 distributed sweeps stress (message fan-out across
    many rounds), with no algorithm cost diluting the comparison.
    """

    def __init__(self, rounds: int):
        self.rounds = rounds

    def on_start(self, ctx):
        ctx.broadcast(0)

    def on_round(self, ctx, inbox):
        total = 0
        for _sender, hops in inbox.items():
            total += hops
        if ctx.round >= self.rounds:
            ctx.halt(result=total)
        else:
            ctx.broadcast(ctx.round)


def bench_engine_rounds(n: int = 400, p: float = 0.03, rounds: int = 24) -> dict:
    """LOCAL round engine vs the reference dict loop (PR 5).

    Both paths run the same seeded simulation and are asserted identical
    (round count, message count, per-node results) before timing.
    """
    g = connected_gnp_graph(n, p, seed=8)
    node = _FanoutNode(rounds)
    fast = lambda: run_algorithm(g, lambda v: node, seed=1, method="csr")  # noqa: E731
    slow = lambda: run_algorithm(g, lambda v: node, seed=1, method="dict")  # noqa: E731
    a, b = fast(), slow()
    assert (a.rounds, a.messages_sent, a.results) == (
        b.rounds, b.messages_sent, b.results
    )
    return _pair_row(
        "engine_vs_dict_rounds", g, fast, slow,
        {"p": p, "rounds": rounds, "messages": a.messages_sent},
    )


def bench_edge_conversion(n: int = 400, p: float = 0.05, r: int = 2,
                          iters: int = 20) -> dict:
    """theorem21-edge: edge-masked views of one snapshot vs edge_subgraph.

    The zero-copy loop (one host snapshot, per-iteration ``edge_alive``
    masks, integer edge-id union) against the pinned dict reference
    (materialize ``edge_subgraph`` + dict greedy per iteration).
    """
    from repro.core.edge_faults import edge_fault_tolerant_spanner

    g = gnp_random_graph(n, p, seed=2, weight_range=(0.5, 3.0))
    fast = lambda: edge_fault_tolerant_spanner(  # noqa: E731
        g, 3, r, iterations=iters, seed=7, method="csr"
    )
    slow = lambda: edge_fault_tolerant_spanner(  # noqa: E731
        g, 3, r, iterations=iters, seed=7, method="dict"
    )
    a, b = fast(), slow()
    assert _edge_set(a.spanner) == _edge_set(b.spanner)
    assert a.stats.survivor_sizes == b.stats.survivor_sizes
    return _pair_row(
        "theorem21_edge_loop", g, fast, slow,
        {"p": p, "r": r, "iterations": iters}, fast_repeats=2,
    )


def bench_distributed_ft(n: int = 200, p: float = 0.6, r: int = 2,
                         iters: int = 8, rounds: int = 16) -> dict:
    """Corollary 2.4 ops loop: masked-view simulations vs rebuilt subgraphs.

    E9's regime — per-iteration :class:`FaultScenario` sampling at
    ``p_survive = 1/r`` over an ``n = 200`` communication graph, one
    simulation per scenario. The LOCAL model does not charge for local
    computation, so the node program is the thin fan-out flood — the
    pair isolates the per-sampling *ops* (survivor handling, context
    setup, message routing). The csr path keeps faulty engine nodes
    silent on a masked SurvivorView of one host snapshot; the dict
    reference rebuilds ``induced_subgraph`` and a fresh simulation
    context per iteration (the pinned materialized-subgraph path).
    """
    from repro.core.conversion import survival_probability
    from repro.graph import FaultScenario
    from repro.rng import derive_rng, ensure_rng

    g = connected_gnp_graph(n, p, seed=3)
    verts = list(g.vertices())
    node = _FanoutNode(rounds)
    p_survive = survival_probability(r)
    seed = 11

    # The scenarios are fixed inputs (a sweep replays them from seed
    # provenance — see Session.scenario), so they are sampled once, with
    # the Corollary 2.4 RNG discipline, outside the timed loops.
    rng = ensure_rng(seed)
    it_rngs = [derive_rng(rng, i) for i in range(iters)]
    scenarios = [
        FaultScenario.sample_vertices(
            verts, p_survive, it_rngs[i], seed=seed, iteration=i
        )
        for i in range(iters)
    ]

    def sim_seed(i):
        replay = ensure_rng(seed)
        for j in range(i + 1):
            it_rng = derive_rng(replay, j)
        return it_rng

    def fast():
        out = []
        for i in range(iters):
            sim = run_algorithm(
                g, lambda v: node, seed=sim_seed(i), method="csr",
                scenario=scenarios[i],
            )
            out.append((sim.rounds, sim.messages_sent,
                        sorted(sim.results.items())))
        return out

    def slow():
        out = []
        for i in range(iters):
            fault = scenarios[i].fault_set()
            sub = g.induced_subgraph([v for v in verts if v not in fault])
            sim = run_algorithm(sub, lambda v: node, seed=sim_seed(i),
                                method="dict")
            out.append((sim.rounds, sim.messages_sent,
                        sorted(sim.results.items())))
        return out

    assert fast() == slow()
    return _pair_row(
        "distributed_ft_loop", g, fast, slow,
        {"p": p, "r": r, "iterations": iters, "rounds": rounds},
        fast_repeats=5,
    )


def bench_lp_assembly(n: int = 60, p: float = 0.3, r: int = 1) -> dict:
    from repro.graph import gnp_random_digraph

    g = gnp_random_digraph(n, p, seed=2)
    fast = lambda: build_ft2_lp(g, r)  # noqa: E731
    slow = lambda: _build_ft2_lp_reference(g, r)  # noqa: E731
    a, b = fast(), slow()
    assert a.lp.variable_names() == b.lp.variable_names()
    assert [(c.coeffs, c.sense, c.rhs) for c in a.lp.constraints] == [
        (c.coeffs, c.sense, c.rhs) for c in b.lp.constraints
    ]
    return _pair_row("ft2_lp_row_assembly", g, fast, slow, {"p": p, "r": r})


def run_benchmarks() -> list:
    from repro.compiled import compiled_available, compiled_unavailable_reason

    rows = [
        bench_greedy(),
        bench_conversion(),
        bench_verifier(200),
        bench_verifier(400),
        bench_thorup_zwick(),
        bench_baswana_sen(),
        bench_distance_oracle(),
        bench_clpr(),
        bench_decomposition(),
        bench_lp_assembly(),
        bench_engine_rounds(),
        bench_edge_conversion(),
        bench_distributed_ft(),
    ]
    if compiled_available():
        rows.append(bench_greedy_compiled())
        rows.append(bench_simplex_compiled())
    else:
        print(
            "note: compiled backend unavailable "
            f"({compiled_unavailable_reason()}); skipping greedy_compiled "
            "and simplex_compiled — do not commit a baseline from this run"
        )
    payload = {
        "description": "CSR fast-path kernels vs dict implementations",
        "benchmarks": rows,
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return rows


def _report(rows) -> None:
    from repro.analysis import print_table

    print_table(
        ["benchmark", "n", "m", "dict s", "kernel s", "speedup"],
        [
            [
                row["name"], row["n"], row["m"],
                round(row["dict_seconds"], 4),
                round(row.get("csr_seconds", row.get("compiled_seconds")), 4),
                round(row["speedup"], 1),
            ]
            for row in rows
        ],
        title="Perf: kernel tiers (CSR / compiled) vs dict implementations",
    )


def _assert_headline(rows) -> None:
    by_name = {row["name"]: row for row in rows}
    assert by_name["greedy_spanner"]["speedup"] >= MIN_HEADLINE_SPEEDUP
    assert by_name["conversion_loop"]["speedup"] >= MIN_HEADLINE_SPEEDUP
    # The incremental verifier must beat the recount loop decisively too.
    assert by_name["lemma31_verifier_n400"]["incremental_speedup"] >= MIN_HEADLINE_SPEEDUP
    # PR 2 headline kernels: the clustering spanners at n = 400.
    assert by_name["thorup_zwick"]["speedup"] >= MIN_HEADLINE_SPEEDUP
    assert by_name["baswana_sen"]["speedup"] >= MIN_HEADLINE_SPEEDUP
    # PR 5: the round engine must clearly beat the dict loop on the
    # substrate-isolating fan-out pair (measured ~2x; margin for CI).
    assert by_name["engine_vs_dict_rounds"]["speedup"] >= 1.3
    # Zero-copy fault scenarios: both per-survivor loops must beat the
    # materialized-subgraph reference by 3x at full size.
    assert by_name["theorem21_edge_loop"]["speedup"] >= 3.0
    assert by_name["distributed_ft_loop"]["speedup"] >= 3.0
    # The remaining rewired paths must at least never lose to dict.
    for name in ("tz_distance_oracle", "clpr_baseline", "padded_decomposition",
                 "ft2_lp_row_assembly"):
        assert by_name[name]["speedup"] >= 1.0
    # PR 10: the compiled tier, when the backend loaded. The greedy
    # Dijkstra must beat dict by 3x at n = 400 (the acceptance
    # criterion); the simplex pivot loop must at least never lose.
    if "greedy_compiled" in by_name:
        assert by_name["greedy_compiled"]["speedup"] >= MIN_COMPILED_GREEDY_SPEEDUP
        assert by_name["simplex_compiled"]["speedup"] >= 1.0


def test_perf_kernels(benchmark):
    from conftest import run_once

    rows = run_once(benchmark, run_benchmarks)
    _report(rows)
    _assert_headline(rows)


if __name__ == "__main__":
    result_rows = run_benchmarks()
    _report(result_rows)
    _assert_headline(result_rows)
    print(f"wrote {RESULT_PATH}")
