"""E9 — Theorem 3.9 and Corollary 2.4: the distributed algorithms.

Paper claims:

* **Theorem 3.9** — Algorithm 2 computes an O(log n)-approximate r-fault-
  tolerant 2-spanner in O(log² n) LOCAL rounds: per iteration, an O(log n)-
  round padded decomposition plus a gather/scatter bounded by the cluster
  radius, repeated t = O(log n) times.
* **Corollary 2.4** — the distributed conversion builds an r-fault-
  tolerant (2k-1)-spanner in O(k · r³ log n)-style rounds (iterations ×
  the O(k)-round Baswana–Sen base construction).

What we measure: total LOCAL rounds and their decomposition for Algorithm 2
across n (fitting rounds / log² n), its cost against the centralized LP
optimum, the conversion's rounds-per-iteration constant, and — since the
array round engine landed (PR 5) — the conversion's round/message scaling
up to n = 200 communication graphs, simulated end to end on the engine
(``method="csr"``). The Algorithm 2 family stays at n ≤ 28 because its
cost is the per-cluster LP solves, not the simulator.

Shape to hold: Algorithm 2's rounds/log² n stays within a constant band;
its output is valid with cost within an O(log n)-consistent factor of LP*;
the conversion's rounds grow linearly in iterations × k (and stay ~k per
iteration as n grows another order of magnitude), with message counts
growing with the communication graph.
"""

from __future__ import annotations

import math
import os

from conftest import run_once

from repro import FaultModel, Session, SpannerSpec, SweepPlan, run_sweep
from repro.analysis import print_table
from repro.graph import connected_gnp_graph, gnp_random_digraph
from repro.two_spanner import solve_ft2_lp

NS = [10, 14, 20, 28]
R = 1

#: Communication-graph sizes for the Corollary 2.4 conversion (E9c).
#: n >= 48 rides the array round engine; forced explicitly so the
#: benchmark always exercises it end to end.
CONV_NS = [52, 100, 200]
CONV_ITERATIONS = 8

#: Worker processes for the sweep driver (see bench_e1; reports are
#: byte-identical at every worker count).
WORKERS = int(os.environ.get("REPRO_SWEEP_WORKERS", "1"))


def sweep():
    # All three experiment families ride one SweepPlan through the
    # sharded driver; round/message accounting arrives in the envelope
    # stats, and validity goes through Session.verify over the rehydrated
    # spanners (include_spanner keeps the edge lists in the envelopes).
    hosts = {n: gnp_random_digraph(n, 0.5, seed=n) for n in NS}
    alg2_specs = [
        SpannerSpec(
            "distributed-ft2", stretch=2,
            faults=FaultModel.vertex(R), seed=n + 1, graph=hosts[n],
        )
        for n in NS
    ]
    comm = connected_gnp_graph(26, 0.3, seed=50)
    conv_specs = [
        SpannerSpec(
            "distributed-ft", stretch=3, faults=FaultModel.vertex(R),
            seed=51, params={"iterations": iterations}, graph=comm,
        )
        for iterations in (6, 12, 24)
    ]
    conv_hosts = {
        n: connected_gnp_graph(n, min(0.3, 16.0 / n), seed=60 + n)
        for n in CONV_NS
    }
    scale_specs = [
        SpannerSpec(
            "distributed-ft", stretch=3, faults=FaultModel.vertex(R),
            seed=53, params={"iterations": CONV_ITERATIONS},
            graph=conv_hosts[n], method="csr",
        )
        for n in CONV_NS
    ]
    plan = SweepPlan.build(alg2_specs + conv_specs + scale_specs, name="e9")
    reports = run_sweep(plan, workers=WORKERS, include_spanner=True)

    session = Session()
    alg2_rows = []
    for n, report in zip(NS, reports[: len(NS)]):
        graph = hosts[n]
        central = solve_ft2_lp(graph, R).objective
        assert session.verify(report, graph=graph, mode="lemma31")
        alg2_rows.append(
            {
                "n": n,
                "rounds": report.stats["total_rounds"],
                "normalized": report.stats["total_rounds"] / math.log(n) ** 2,
                "iterations": report.stats["lp_iterations"],
                "cost": report.stats["cost"],
                "lp": central,
                "ratio": report.stats["cost"] / central,
            }
        )

    conv_rows = []
    conv_end = len(NS) + len(conv_specs)
    for spec, report in zip(conv_specs, reports[len(NS): conv_end]):
        iterations = spec.param("iterations")
        assert session.verify(
            report, graph=comm, mode="sampled", trials=30, seed=52
        )
        conv_rows.append(
            {
                "iterations": iterations,
                "rounds": report.stats["total_rounds"],
                "per_iteration": report.stats["total_rounds"] / iterations,
                "edges": report.size,
            }
        )

    scale_rows = []
    for n, report in zip(CONV_NS, reports[conv_end:]):
        assert report.resolved_method == "csr"
        assert session.verify(
            report, graph=conv_hosts[n], mode="sampled", trials=20, seed=54
        )
        scale_rows.append(
            {
                "n": n,
                "m": conv_hosts[n].num_edges,
                "rounds": report.stats["total_rounds"],
                "per_iteration": report.stats["total_rounds"] / CONV_ITERATIONS,
                "messages": report.stats["total_messages"],
                "edges": report.size,
            }
        )
    return alg2_rows, conv_rows, scale_rows


def test_e9_distributed(benchmark):
    alg2_rows, conv_rows, scale_rows = run_once(benchmark, sweep)
    print_table(
        ["n", "LOCAL rounds", "rounds/log²n", "iterations t", "cost",
         "central LP*", "cost/LP*"],
        [
            [row["n"], row["rounds"], row["normalized"], row["iterations"],
             row["cost"], row["lp"], row["ratio"]]
            for row in alg2_rows
        ],
        title="E9a: Algorithm 2 (Theorem 3.9), r = 1",
    )
    print_table(
        ["iterations α", "LOCAL rounds", "rounds/α (≈ k+1)", "spanner edges"],
        [
            [row["iterations"], row["rounds"], row["per_iteration"],
             row["edges"]]
            for row in conv_rows
        ],
        title="E9b: distributed conversion (Corollary 2.4), k = 2 (stretch 3)",
    )
    print_table(
        ["n", "comm edges", "LOCAL rounds", "rounds/α", "messages",
         "spanner edges"],
        [
            [row["n"], row["m"], row["rounds"], row["per_iteration"],
             row["messages"], row["edges"]]
            for row in scale_rows
        ],
        title=(
            "E9c: conversion at engine scale (array round engine, "
            f"α = {CONV_ITERATIONS})"
        ),
    )

    # Theorem 3.9 shape: rounds/log² n within a constant band (factor 4).
    normalized = [row["normalized"] for row in alg2_rows]
    assert max(normalized) / min(normalized) <= 4.0
    # O(log n)-approximation regime: generous constant times log n.
    for row in alg2_rows:
        assert row["ratio"] <= 12 * math.log(max(row["n"], 2))
    # Corollary 2.4 shape: rounds scale linearly with iterations, with a
    # per-iteration constant of about k + 1 rounds (here <= 4).
    for row in conv_rows:
        assert row["rounds"] >= row["iterations"]  # at least 1 round each
        assert row["per_iteration"] <= 4.0
    rounds = [row["rounds"] for row in conv_rows]
    assert rounds[1] > rounds[0] and rounds[2] > rounds[1]
    # Engine scale (E9c): the per-iteration round constant stays ~k + 1
    # as n grows toward 200 — rounds depend on k, not n (Corollary 2.4) —
    # while message volume grows with the communication graph.
    for row in scale_rows:
        assert row["rounds"] >= CONV_ITERATIONS
        assert row["per_iteration"] <= 4.0
    messages = [row["messages"] for row in scale_rows]
    assert messages[1] > messages[0] and messages[2] > messages[1]
