"""Opt-in perf-regression gate for the CSR kernel layer.

Re-runs every kernel-vs-dict benchmark pair from
:mod:`bench_perf_kernels` at *smoke* sizes (seconds, not minutes) and
fails if any kernel has stopped beating its dict reference — i.e. if any
measured speedup falls below 1.0x — or if a kernel named in the committed
``BENCH_perf_kernels.json`` baseline has disappeared from the suite.

This is deliberately a coarse gate: absolute speedups at smoke sizes are
noisy and smaller than the committed full-size numbers, so the check only
asserts the *sign* of the win. The committed baseline remains the
trajectory record; refresh it with ``python benchmarks/bench_perf_kernels.py``.

Opt-in by design so tier-1 stays fast:

* pytest: ``pytest benchmarks/check_regression.py -m perf_regression``
  (the ``perf_regression`` marker is registered in ``conftest.py``; the
  file is only collected when named explicitly, like every benchmark);
* standalone: ``python benchmarks/check_regression.py``.
"""

from __future__ import annotations

import json
import os

import pytest

import bench_perf_kernels as bench

pytestmark = pytest.mark.perf_regression

#: Smoke floor: every kernel must still beat its dict reference.
MIN_SMOKE_SPEEDUP = 1.0

#: Benchmark names that need the optional C backend (:mod:`repro.compiled`).
_COMPILED_PAIRS = frozenset({"greedy_compiled", "simplex_compiled"})


def smoke_rows() -> list:
    """The full benchmark pair set at reduced sizes.

    The compiled-tier pairs run only when the optional C backend loads;
    without it they are excused from the baseline-coverage check (see
    :func:`check`) rather than failed — a machine without a C compiler
    must still be able to run the gate.
    """
    from repro.compiled import compiled_available

    rows = [
        bench.bench_greedy(n=160, p=0.12),
        bench.bench_conversion(n=160, p=0.08, iters=8),
        bench.bench_verifier(160),
        bench.bench_thorup_zwick(n=160),
        bench.bench_baswana_sen(n=160),
        bench.bench_distance_oracle(n=160, p=0.15),
        bench.bench_clpr(n=64),
        bench.bench_decomposition(n=160, p=0.06),
        bench.bench_lp_assembly(n=40),
        bench.bench_engine_rounds(n=160, p=0.08, rounds=16),
        bench.bench_edge_conversion(n=160, p=0.08, iters=8),
        bench.bench_distributed_ft(n=96, p=0.1, iters=4),
    ]
    if compiled_available():
        rows.append(bench.bench_greedy_compiled(n=160, p=0.12))
        rows.append(bench.bench_simplex_compiled(m=24, n=48))
    return rows


def _committed_names() -> set:
    if not os.path.exists(bench.RESULT_PATH):
        return set()
    with open(bench.RESULT_PATH, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return {row["name"] for row in payload.get("benchmarks", [])}


def _smoke_name(name: str) -> str:
    """Committed names carry the full-size n; smoke rows re-derive it."""
    return name.split("_n", 1)[0] if name.startswith("lemma31_verifier") else name


def check(rows=None) -> list:
    rows = rows if rows is not None else smoke_rows()
    failures = [
        row["name"] for row in rows if row["speedup"] < MIN_SMOKE_SPEEDUP
    ]
    assert not failures, (
        f"kernels slower than their dict reference at smoke size: {failures}"
    )
    covered = {_smoke_name(row["name"]) for row in rows}
    missing = {
        name
        for name in map(_smoke_name, _committed_names())
        if name not in covered
    }
    from repro.compiled import compiled_available, compiled_unavailable_reason

    if not compiled_available():
        # The compiled-tier rows in the committed baseline come from a
        # container with a working C toolchain; a backend-less machine
        # cannot re-measure them, so they are excused — visibly — rather
        # than reported as regressions.
        excused = {name for name in missing if name in _COMPILED_PAIRS}
        if excused:
            print(
                f"note: compiled backend unavailable "
                f"({compiled_unavailable_reason()}); skipping "
                f"{sorted(excused)} from the coverage check"
            )
        missing -= excused
    assert not missing, (
        f"kernels in the committed baseline but absent from the smoke suite: {missing}"
    )
    return rows


def test_no_kernel_regressions():
    rows = check()
    from repro.analysis import print_table

    print_table(
        ["benchmark", "n", "smoke speedup"],
        [[row["name"], row["n"], round(row["speedup"], 2)] for row in rows],
        title="Perf regression gate (smoke sizes, floor 1.0x)",
    )


if __name__ == "__main__":
    for row in check():
        print(f"{row['name']:24s} n={row['n']:4d} speedup {row['speedup']:.2f}x")
    print("no kernel regressions")
