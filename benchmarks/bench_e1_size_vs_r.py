"""E1 — Theorem 2.1 / Corollary 2.2 vs CLPR09: size as a function of r.

Paper claim: the fault-oversampling conversion produces r-fault-tolerant
k-spanners whose size grows *polynomially* in r
(``O(r^{2-2/(k+1)} n^{1+2/(k+1)} log n)``), whereas the CLPR09 bound grows
*exponentially* (``O(r^2 k^{r+1} n^{1+1/k} log^{1-1/k} n)``).

What we measure (k = 3, complete host graph so the union does not saturate
against a sparse host):

* measured size of the conversion (light schedule; the theorem schedule
  differs only by an extra r factor in the iteration count);
* measured size of the CLPR09 exact union where enumeration is feasible
  (r = 1) — the per-fault-set TZ replay rides the CSR kernel layer's
  masked batched-SSSP path, which is what makes K_200 enumeration cheap
  enough for a default benchmark run;
* both proved bounds as analytic curves across the whole r range.

Shape to hold: measured conversion size grows at most ~quadratically in r;
the CLPR09 bound's growth ratio per unit r is at least k; for large r the
CLPR09 curve dwarfs the conversion curve.
"""

from __future__ import annotations

import os

from conftest import run_once

from repro import FaultModel, SpannerSpec, SweepPlan, run_sweep
from repro.analysis import print_table
from repro.graph import complete_graph
from repro.spanners import clpr_ft_size_bound, conversion_size_bound

N = 200
K = 3  # conversion stretch; CLPR parameterized by t with 2t-1 = 3 -> t = 2
R_VALUES = [1, 2, 3, 4, 5]

#: Worker processes for the sweep driver (1 = in-process; the reports are
#: byte-identical at every worker count, so this only moves wall time).
WORKERS = int(os.environ.get("REPRO_SWEEP_WORKERS", "1"))


def sweep():
    # The whole sweep is one SweepPlan through the sharded driver: every
    # spec point serializes to JSON, shards are host-grouped (each worker
    # primes the single K_N snapshot at most once), and the merged
    # reports are byte-identical to the sequential Session path.
    graph = complete_graph(N)
    specs = [
        SpannerSpec("clpr09", stretch=K, faults=FaultModel.vertex(1), seed=0)
    ] + [
        SpannerSpec(
            "theorem21",
            stretch=K,
            faults=FaultModel.vertex(r),
            seed=r,
            params={"schedule": "light", "constant": 1.0},
        )
        for r in R_VALUES
    ]
    plan = SweepPlan.build(specs, graph=graph, name="e1")
    reports, envelopes = run_sweep(plan, workers=WORKERS, with_envelopes=True)
    # Host-grouped sharding: no shard pays for the K_N snapshot twice.
    assert all(env["timing"]["snapshot_builds"] <= 1 for env in envelopes)
    clpr_exact_size = reports[0].size
    rows = []
    for r, report in zip(R_VALUES, reports[1:]):
        rows.append(
            {
                "r": r,
                "conv_size": report.size,
                "conv_iters": report.stats["iterations"],
                "max_survivor": report.stats["max_survivor_size"],
                "conv_bound": conversion_size_bound(N, K, r),
                "clpr_exact": clpr_exact_size if r == 1 else float("nan"),
                "clpr_bound": clpr_ft_size_bound(N, 2, r),
            }
        )
    return rows


def test_e1_size_vs_r(benchmark):
    rows = run_once(benchmark, sweep)
    print_table(
        ["r", "conversion size", "iters", "max |G\\J|", "conversion bound",
         "CLPR exact (r=1)", "CLPR bound"],
        [
            [
                row["r"], row["conv_size"], row["conv_iters"],
                row["max_survivor"], row["conv_bound"], row["clpr_exact"],
                row["clpr_bound"],
            ]
            for row in rows
        ],
        title=f"E1: r-fault-tolerant {K}-spanner size vs r (K_{N})",
        precision=0,
    )

    sizes = [row["conv_size"] for row in rows]
    host_edges = N * (N - 1) / 2
    # Polynomial growth: size(r) / size(1) <= r^2 up to saturation slack.
    for row in rows:
        assert row["conv_size"] <= min(
            host_edges, 4.0 * row["r"] ** 2 * sizes[0]
        )
    # Theorem 2.1's internal claim: survivor graphs stay near 2n/r.
    for row in rows:
        assert row["max_survivor"] <= 2.2 * N / row["r"] + 10
    # The CLPR bound grows exponentially: ratio per unit r is >= k = 2t-1...
    # (its k^{r+1} term uses the TZ parameter t = 2).
    clpr = [row["clpr_bound"] for row in rows]
    assert all(b / a >= 1.9 for a, b in zip(clpr, clpr[1:]))
    # ... and eventually dwarfs the conversion bound.
    assert clpr[-1] > 4 * rows[-1]["conv_bound"]
