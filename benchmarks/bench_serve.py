"""Serve — tiered repair vs rebuild-per-mutation throughput at n = 10^4.

The self-healing service's claim: maintaining a live FT 2-spanner under a
mixed operation stream costs O(Δ) damage detection plus (usually) a local
patch per mutation, where the naive baseline pays a full O(m · Δ)
rebuild. At n = 10^4 on a preferential-attachment host with a 90/10
read/write mix, the tiered policy must clear **10x** the baseline's
ops/sec — the PR's acceptance floor, asserted against the measured ratio
(with a slow-CI margin in the in-test gate).

Both services replay the *same* seeded workload (the baseline a prefix —
its per-op cost is what is being measured, and it is too slow to run the
whole stream), both must end Lemma 3.1-valid, and after a final full
rebuild both land on byte-identical spanners (`spanner_digest`), so the
speedup compares equal, correct work.

A second row recovers from an adversarial chaos burst ("cut the spanner
backbone first") and records the tier histogram — the burst is sized to
escalate past pure patching, demonstrating graceful degradation and
recovery rather than throughput.

Results are written to ``BENCH_serve.json`` at the repo root, committed
as the serving-layer baseline next to ``BENCH_perf_kernels.json``.

Run as a pytest benchmark (``pytest benchmarks/bench_serve.py
--benchmark-only``) or standalone (``python benchmarks/bench_serve.py``).
"""

from __future__ import annotations

import json
import os
import time

from repro.graph import barabasi_albert_graph
from repro.serve import (
    ChaosInjector,
    RepairPolicy,
    SpannerService,
    WorkloadGenerator,
    read_write_weights,
    spanner_digest,
)

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(_REPO_ROOT, "BENCH_serve.json")

N = 10_000
BA_M = 5  # preferential attachment degree -> m ~= 5e4 edges
READ_RATIO = 0.9
TIERED_OPS = 2_000
BASELINE_OPS = 120  # rebuild-per-mutation is measured on a prefix
BURST = 40

#: In-test acceptance floor (measured >= 10x on the reference container;
#: the committed BENCH_serve.json records the full measured ratio).
MIN_SPEEDUP = 5.0


def _host():
    return barabasi_albert_graph(N, BA_M, seed=3)


def _workload(host, num_ops):
    generator = WorkloadGenerator(
        host, seed=7, weights=read_write_weights(READ_RATIO)
    )
    return generator.generate(num_ops)


def _timed_replay(policy, ops):
    service = SpannerService(_host(), r=1, policy=policy, seed=0)
    start = time.perf_counter()
    results = service.apply_all(ops)
    elapsed = time.perf_counter() - start
    assert service.is_valid()
    mutations = sum(1 for res in results if res.type in
                    ("ADD_NODE", "ADD_EDGE", "DEL_EDGE", "DEL_NODE"))
    return service, elapsed, mutations


def bench_throughput() -> dict:
    """Tiered ops/sec vs rebuild-per-mutation ops/sec, same stream."""
    ops = _workload(_host(), TIERED_OPS)
    tiered, tiered_s, _ = _timed_replay(RepairPolicy(), ops)
    baseline, baseline_s, baseline_muts = _timed_replay(
        RepairPolicy.rebuild_per_mutation(), ops[:BASELINE_OPS]
    )
    assert baseline_muts > 0  # the prefix actually exercised rebuilds
    # Equal work: compact both to the canonical from-scratch spanner on
    # their final hosts; the shared prefix means equal evolution there.
    tiered.repair(tier="full")
    baseline.repair(tier="full")
    prefix_check = SpannerService(_host(), r=1, seed=0)
    prefix_check.apply_all(ops[:BASELINE_OPS])
    prefix_check.repair(tier="full")
    assert spanner_digest(prefix_check.spanner) == spanner_digest(
        baseline.spanner
    )
    tiered_rate = TIERED_OPS / tiered_s
    baseline_rate = BASELINE_OPS / baseline_s
    summary = tiered.summary()
    return {
        "name": "serve_throughput_n1e4",
        "n": N,
        "m": summary["host_edges"],
        "params": {
            "host": f"barabasi_albert(m={BA_M})",
            "read_ratio": READ_RATIO,
            "r": 1,
            "tiered_ops": TIERED_OPS,
            "baseline_ops": BASELINE_OPS,
        },
        "tiered_seconds": tiered_s,
        "rebuild_per_mutation_seconds": baseline_s,
        "tiered_ops_per_sec": tiered_rate,
        "rebuild_per_mutation_ops_per_sec": baseline_rate,
        "speedup": tiered_rate / baseline_rate,
        "tiers": summary["stats"]["tiers"],
        "repaired_edges": summary["stats"]["repaired_edges"],
    }


def bench_chaos_recovery() -> dict:
    """Adversarial burst against a lazy service: degrade, then recover.

    Lazy policy so the raw damage is observable (an eager service patches
    inside ``apply`` and the per-op damage reads back as 0); the burst
    cuts spanner edges *and* kills the busiest spanner hubs — on a
    preferential-attachment host those hubs are the midpoints of most
    two-paths. The recovery (``repair()``) is what gets timed.
    """
    service = SpannerService(
        _host(), r=1, policy=RepairPolicy.lazy(), seed=0
    )
    chaos = ChaosInjector(seed=11, adversarial=True)
    burst = chaos.edge_burst(service.host, BURST, spanner=service.spanner)
    burst += chaos.node_burst(service.host, 3, spanner=service.spanner)
    results = service.apply_all(burst)
    peak_damage = max(res.damage for res in results)
    degraded_ops = sum(1 for res in results if res.health == "degraded")
    start = time.perf_counter()
    tier = service.repair()
    elapsed = time.perf_counter() - start
    assert service.is_valid()
    summary = service.summary()
    return {
        "name": "serve_chaos_recovery",
        "n": N,
        "m": summary["host_edges"],
        "params": {
            "host": f"barabasi_albert(m={BA_M})",
            "burst_edges": BURST,
            "burst_nodes": 3,
            "adversarial": True,
            "r": 1,
        },
        "repair_seconds": elapsed,
        "repair_tier": tier,
        "peak_damage": peak_damage,
        "degraded_ops": degraded_ops,
        "tiers": summary["stats"]["tiers"],
        "repaired_edges": summary["stats"]["repaired_edges"],
    }


def run_benchmarks() -> list:
    rows = [bench_throughput(), bench_chaos_recovery()]
    payload = {
        "description": (
            "Self-healing spanner service: tiered repair vs "
            "rebuild-per-mutation at n=10^4 (90/10 read/write)"
        ),
        "benchmarks": rows,
    }
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return rows


def _report(rows) -> None:
    from repro.analysis import print_table

    throughput, chaos = rows
    print_table(
        ["quantity", "tiered", "rebuild-per-mutation"],
        [
            ["ops replayed", throughput["params"]["tiered_ops"],
             throughput["params"]["baseline_ops"]],
            ["seconds", round(throughput["tiered_seconds"], 3),
             round(throughput["rebuild_per_mutation_seconds"], 3)],
            ["ops/sec", round(throughput["tiered_ops_per_sec"], 1),
             round(throughput["rebuild_per_mutation_ops_per_sec"], 1)],
            ["speedup", round(throughput["speedup"], 1), 1.0],
        ],
        title=f"Serve throughput, n={throughput['n']}, m={throughput['m']}",
    )
    print_table(
        ["quantity", "value"],
        [
            ["burst edges / nodes",
             f"{chaos['params']['burst_edges']} / "
             f"{chaos['params']['burst_nodes']}"],
            ["peak damage", chaos["peak_damage"]],
            ["degraded ops", chaos["degraded_ops"]],
            ["repair tier", chaos["repair_tier"]],
            ["repaired edges", chaos["repaired_edges"]],
            ["repair seconds", round(chaos["repair_seconds"], 4)],
        ],
        title="Adversarial chaos recovery (lazy policy)",
    )


def _assert_headline(rows) -> None:
    throughput, chaos = rows
    assert throughput["speedup"] >= MIN_SPEEDUP
    # the tiered run must actually be doing tiered work, not rebuilds
    assert throughput["tiers"]["patch"] > 0
    assert chaos["peak_damage"] > 0
    assert chaos["degraded_ops"] > 0
    assert chaos["repair_tier"] is not None


def test_serve_throughput(benchmark):
    from conftest import run_once

    rows = run_once(benchmark, run_benchmarks)
    _report(rows)
    _assert_headline(rows)


if __name__ == "__main__":
    result_rows = run_benchmarks()
    _report(result_rows)
    _assert_headline(result_rows)
    print(f"wrote {RESULT_PATH}")
