"""E5 — Section 3.2: knapsack-cover inequalities close an Ω(r) gap.

Paper claim: on the M-gadget (one expensive arc plus r unit-cost
two-paths), LP (3) *without* knapsack-cover inequalities sets
``x_{uv} = 1/(r+1)`` and pays ``M/(r+1) + 2r`` while the optimum is
``M + 2r`` — gap Ω(r). Adding the KC family (LP (4)) forces
``x_{uv} = 1`` and closes the gap entirely.

What we measure: LP (3), LP (4), the exact optimum, and the number of KC
cuts the Lemma 3.2 separation oracle generated.

Shape to hold: gap without KC strictly increasing and ~linear in r; gap
with KC equal to 1 everywhere; oracle generates at least one cut per run.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import print_table
from repro.graph import knapsack_gap_gadget
from repro.two_spanner import (
    exact_minimum_ft2_spanner,
    kc_gap_on_gadget,
    solve_ft2_lp,
)

M = 1000.0
R_VALUES = [1, 2, 4, 8]


def sweep():
    rows = []
    for r in R_VALUES:
        gap = kc_gap_on_gadget(r, expensive_cost=M)
        cuts = solve_ft2_lp(knapsack_gap_gadget(r, M), r).cuts_added
        exact = (
            exact_minimum_ft2_spanner(knapsack_gap_gadget(r, M), r).cost
            if 2 * r + 1 <= 17
            else float("nan")
        )
        rows.append(
            {
                "r": r,
                "lp3": gap.lp3_value,
                "lp4": gap.lp4_value,
                "opt": gap.opt,
                "exact": exact,
                "gap3": gap.gap_without_kc,
                "gap4": gap.gap_with_kc,
                "cuts": cuts,
            }
        )
    return rows


def test_e5_kc_gap(benchmark):
    rows = run_once(benchmark, sweep)
    print_table(
        ["r", "LP(3) no KC", "LP(4) with KC", "optimum", "exact B&B",
         "gap w/o KC", "gap with KC", "KC cuts"],
        [
            [row["r"], row["lp3"], row["lp4"], row["opt"], row["exact"],
             row["gap3"], row["gap4"], row["cuts"]]
            for row in rows
        ],
        title=f"E5: the M-gadget (M = {M:.0f})",
    )
    gaps3 = [row["gap3"] for row in rows]
    assert all(b > a for a, b in zip(gaps3, gaps3[1:]))
    # asymptotically gap3 -> r + 1; at r=8 it must exceed 5.
    assert gaps3[-1] >= 5.0
    for row in rows:
        assert abs(row["gap4"] - 1.0) <= 1e-6
        assert row["cuts"] >= 1
        if row["exact"] == row["exact"]:  # not NaN
            assert row["exact"] == row["opt"]
