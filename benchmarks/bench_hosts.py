"""Host topologies — structured interconnects through the sweep driver.

The host registry (:mod:`repro.hosts`) carries typed specs, not loaded
graphs, so a plan over structured families stays a few hundred bytes and
every worker rebuilds bit-identical hosts. This benchmark runs a greedy
3-spanner over four families and checks the shape each one forces:

* **Kautz K(d, D)** — every arc is the *unique* shortest path between
  its endpoints, so dropping one costs a detour of >= 3 hops; the
  spanner stays near-complete, keeping a strictly larger fraction than
  any of the redundant fabrics below;
* **DCell_1(n)** — the level-0 cells are cliques, full of 2-hop
  bypasses a 3-spanner exploits;
* **hypercube** — every edge sits on a 4-cycle (a 3-hop bypass), so
  there is real slack despite the girth-4 lower bound;
* **Watts–Strogatz** — ring-lattice triangles give 2-hop bypasses.

Run with:  pytest benchmarks/bench_hosts.py --benchmark-only
"""

from __future__ import annotations

import os

from conftest import run_once

from repro import HostSpec, SpannerSpec, SweepPlan, run_sweep
from repro.analysis import print_table

#: Worker processes for the sweep driver (reports are byte-identical at
#: every worker count — the specs rebuild identical hosts per worker).
WORKERS = int(os.environ.get("REPRO_SWEEP_WORKERS", "1"))

FAMILIES = [
    ("kautz", HostSpec("kautz", params={"d": 2, "diameter": 3})),
    ("dcell", HostSpec("dcell", params={"n": 4, "level": 1})),
    ("hypercube", HostSpec("hypercube", params={"dim": 5})),
    (
        "watts-strogatz",
        HostSpec("watts-strogatz", params={"n": 32, "k": 4, "p": 0.1}, seed=3),
    ),
]


def sweep():
    specs = [
        SpannerSpec("greedy", stretch=3, seed=1, graph=spec)
        for _, spec in FAMILIES
    ]
    plan = SweepPlan.build(specs, name="hosts")
    reports = run_sweep(plan, workers=WORKERS)
    rows = []
    for (name, spec), report in zip(FAMILIES, reports):
        host = spec.materialize()
        rows.append((name, host.num_vertices, host.num_edges, report.size))
    return rows


def test_hosts_structured_families(benchmark):
    rows = run_once(benchmark, sweep)
    print_table(
        ["family", "n", "m", "greedy 3-spanner", "kept"],
        [[name, n, m, size, f"{100.0 * size / m:.0f}%"]
         for name, n, m, size in rows],
        title=f"greedy 3-spanner across host families (workers={WORKERS})",
    )
    kept = {name: size / m for name, _, m, size in rows}
    # Stretch 3 on a connected host: the spanner spans, never exceeds m.
    for name, n, m, size in rows:
        assert n - 1 <= size <= m
    # Redundant fabrics (cliques / 4-cycles / triangles) must sparsify.
    for name in ("dcell", "hypercube", "watts-strogatz"):
        assert kept[name] < 1.0
    # Kautz's unique-shortest-path wiring leaves the least slack: it
    # keeps a strictly larger fraction than every redundant family.
    assert all(kept["kautz"] > kept[name]
               for name in ("dcell", "hypercube", "watts-strogatz"))
