"""E6 — Theorem 3.3 vs the [DK10] baseline: ratio independent of r.

Paper claim: rounding the knapsack-cover LP (4) with ``α = C log n``
(Theorem 3.3) is an O(log n)-approximation *for every r*, whereas the
[DK10] analysis needs ``α = C r log n`` and hence costs O(r log n) · OPT.

What we measure on the dense complete digraph (where LP values are
fractional and the rounding regime is interesting):

* the inflation α each algorithm uses — the driver of the guarantee;
* measured cost and cost/LP* for both algorithms;
* the saturation cap (total cost / LP*): once α is large enough to buy
  every edge, an algorithm degenerates to "keep the whole graph".

Shape to hold: Theorem 3.3's α is constant in r while DK10's grows
linearly; Theorem 3.3's cost is never worse; at moderate r the DK10
rounding saturates (buys all of K_n) while Theorem 3.3 does not.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import print_table
from repro.core import is_ft_2spanner
from repro.graph import complete_digraph, gnp_random_digraph
from repro.two_spanner import approximate_ft2_spanner, dk10_baseline

N = 26
R_VALUES = [1, 2, 3]
ALPHA_CONSTANT = 2.0  # smaller C keeps the interesting (non-saturated) regime


def sweep():
    graph = complete_digraph(N)
    total = graph.total_weight()
    rows = []
    for r in R_VALUES:
        new = approximate_ft2_spanner(
            graph, r, seed=r, alpha_constant=ALPHA_CONSTANT
        )
        old = dk10_baseline(graph, r, seed=r, alpha_constant=ALPHA_CONSTANT)
        assert is_ft_2spanner(new.spanner, graph, r)
        assert is_ft_2spanner(old.spanner, graph, r)
        rows.append(
            {
                "r": r,
                "lp": new.lp_objective,
                "alpha_new": new.alpha,
                "alpha_old": old.alpha,
                "cost_new": new.cost,
                "cost_old": old.cost,
                "ratio_new": new.ratio_vs_lp,
                "ratio_old": old.ratio_vs_lp,
                "cap": total / new.lp_objective,
                "old_saturated": old.cost >= total - 1e-9,
                "new_saturated": new.cost >= total - 1e-9,
            }
        )
    return rows


def test_e6_approx_ratio(benchmark):
    rows = run_once(benchmark, sweep)
    print_table(
        ["r", "LP*", "alpha Thm3.3", "alpha DK10", "cost Thm3.3",
         "cost DK10", "ratio Thm3.3", "ratio DK10", "saturation cap"],
        [
            [row["r"], row["lp"], row["alpha_new"], row["alpha_old"],
             row["cost_new"], row["cost_old"], row["ratio_new"],
             row["ratio_old"], row["cap"]]
            for row in rows
        ],
        title=f"E6: Minimum Cost r-FT 2-Spanner on K_{N} (directed, unit costs)",
    )

    # The guarantee driver: alpha flat for Theorem 3.3, linear for DK10.
    alphas_new = [row["alpha_new"] for row in rows]
    assert max(alphas_new) == min(alphas_new)
    for row in rows:
        assert row["alpha_old"] / alphas_new[0] == row["r"]
    # Theorem 3.3 never costs more than the baseline.
    for row in rows:
        assert row["cost_new"] <= row["cost_old"] + 1e-9
    # At r >= 2 the r-inflated alpha saturates (keeps the whole graph)
    # while Theorem 3.3's alpha does not.
    saturated_old = [row for row in rows if row["r"] >= 2]
    assert all(row["old_saturated"] for row in saturated_old)
    assert any(not row["new_saturated"] for row in saturated_old)
    # Theory sanity: measured ratio <= 6 alpha (Markov bound regime).
    for row in rows:
        assert row["ratio_new"] <= 6 * row["alpha_new"]
