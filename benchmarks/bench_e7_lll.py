"""E7 — Theorem 3.4: O(log Δ) on bounded-degree graphs via Moser–Tardos.

Paper claim: for unit costs and maximum degree Δ, inflating by
``α = C log Δ`` (instead of ``C log n``) still succeeds — shown through
the Lovász Local Lemma, made algorithmic by Moser–Tardos resampling.

What we measure on random Δ-regular graphs of fixed n: the inflation used,
the achieved cost/LP*, and the number of resampling steps, for the
Moser–Tardos O(log Δ) rounding vs Algorithm 1's O(log n) rounding.

Shape to hold: α(log Δ) < α(log n) for Δ ≪ n; the LLL rounding stays
valid with a bounded number of resamples; its cost tracks log Δ (grows
with Δ at fixed n) and is no worse than ~its α advantage suggests.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import print_table
from repro.core import is_ft_2spanner
from repro.graph import random_regular_graph
from repro.two_spanner import (
    alpha_log_n,
    moser_tardos_rounding,
    round_until_valid,
    solve_ft2_lp,
)

N = 48
DELTAS = [4, 8, 16]
R = 1


def sweep():
    rows = []
    for delta in DELTAS:
        graph = random_regular_graph(N, delta, seed=delta)
        lp = solve_ft2_lp(graph, R)
        xs = lp.x_values()
        mt = moser_tardos_rounding(graph, xs, R, seed=delta + 1)
        assert is_ft_2spanner(mt.spanner, graph, R)
        alg1 = round_until_valid(
            graph, xs, R, alpha_log_n(N), seed=delta + 2
        )
        assert is_ft_2spanner(alg1.spanner, graph, R)
        rows.append(
            {
                "delta": delta,
                "lp": lp.objective,
                "alpha_mt": mt.alpha,
                "alpha_log_n": alg1.alpha,
                "cost_mt": mt.cost,
                "cost_alg1": alg1.cost,
                "ratio_mt": mt.cost / lp.objective,
                "ratio_alg1": alg1.cost / lp.objective,
                "resamples": mt.resamples,
            }
        )
    return rows


def test_e7_lll(benchmark):
    rows = run_once(benchmark, sweep)
    print_table(
        ["Δ", "LP*", "α = C log Δ", "α = C log n", "cost (LLL)",
         "cost (Alg 1)", "ratio LLL", "ratio Alg 1", "MT resamples"],
        [
            [row["delta"], row["lp"], row["alpha_mt"], row["alpha_log_n"],
             row["cost_mt"], row["cost_alg1"], row["ratio_mt"],
             row["ratio_alg1"], row["resamples"]]
            for row in rows
        ],
        title=f"E7: Δ-regular graphs, n = {N}, r = {R} (unit costs)",
    )

    for row in rows:
        # log Δ inflation is genuinely smaller than log n inflation...
        assert row["alpha_mt"] < row["alpha_log_n"]
        # ...and Moser-Tardos terminated (bounded resampling).
        assert row["resamples"] <= 50 * (N * row["delta"] + N)
    # α(log Δ) grows with Δ — the guarantee driver of Theorem 3.4.
    alphas = [row["alpha_mt"] for row in rows]
    assert all(b > a for a, b in zip(alphas, alphas[1:]))
    # With a smaller inflation the LLL rounding should not cost more than
    # Algorithm 1 by more than noise at the smallest Δ.
    assert rows[0]["cost_mt"] <= rows[0]["cost_alg1"] * 1.25
