"""Shared configuration for the experiment benchmarks.

Each ``bench_e*.py`` file reproduces one experiment from DESIGN.md §3. The
convention: the whole sweep runs once inside ``benchmark.pedantic`` (so
pytest-benchmark records its wall time), prints a paper-style table, and
asserts the qualitative *shape* the paper claims (who wins, how quantities
scale). Absolute constants are environment-dependent and are not asserted.

The printed tables *are* the experiment output, but pytest captures test
stdout; so :func:`repro.analysis.tables.print_table` also appends every
table to the file named by ``REPRO_TABLE_LOG`` (set here), and
:func:`pytest_terminal_summary` replays the log in the uncaptured terminal
summary — the tables therefore always appear in
``pytest benchmarks/ --benchmark-only`` output and in anything it is teed
to.

Run with:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

_TABLE_LOG = os.path.join(os.path.dirname(__file__), ".tables.log")


def pytest_configure(config):
    """Start a fresh table log; register the opt-in perf gate marker."""
    if os.path.exists(_TABLE_LOG):
        os.remove(_TABLE_LOG)
    os.environ["REPRO_TABLE_LOG"] = _TABLE_LOG
    config.addinivalue_line(
        "markers",
        "perf_regression: opt-in smoke gate comparing CSR kernels against "
        "their dict references (see benchmarks/check_regression.py)",
    )


def pytest_terminal_summary(terminalreporter):
    """Replay every experiment table after the test results."""
    if not os.path.exists(_TABLE_LOG):
        return
    with open(_TABLE_LOG, "r", encoding="utf-8") as handle:
        content = handle.read().rstrip()
    if not content:
        return
    terminalreporter.section("experiment tables")
    for line in content.splitlines():
        terminalreporter.write_line(line)


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
