"""E2 — Corollary 2.2: size scaling in n, exponent 1 + 2/(k+1).

Paper claim: the conversion applied to the greedy spanner has size
``O(r^{2-2/(k+1)} n^{1+2/(k+1)} log n)`` — on a log-log plot of size vs n,
the slope is about ``1 + 2/(k+1)`` (1.5 for k = 3, 1.33 for k = 5), and the
slope *decreases* as the stretch grows.

Workload: dense G(n, 0.5) hosts (so the spanner, not the host, is the
binding quantity), r = 2, light schedule; the sweep tops out at n = 200
now that the conversion loop runs on the CSR survivor-bitmask engine. We fit the log-log slope of the
per-iteration greedy contribution's union.

Shape to hold: slope(k=3) in a band around 1.5 (log-factor and small-n
effects push it around), and slope(k=5) <= slope(k=3).
"""

from __future__ import annotations

import os

from conftest import run_once

from repro import FaultModel, SpannerSpec, SweepPlan, run_sweep
from repro.graph import gnp_random_graph
from repro.analysis import log_log_slope, print_table
from repro.spanners import conversion_size_bound

NS = [60, 90, 140, 200]
R = 2

#: Worker processes for the sweep driver (see bench_e1; reports are
#: byte-identical at every worker count).
WORKERS = int(os.environ.get("REPRO_SWEEP_WORKERS", "1"))


def sweep():
    # Each spec binds its own host instance; the whole (k, n) grid is one
    # SweepPlan through the sharded driver — host-grouped shards, one CSR
    # snapshot per host per worker, merge back in plan order.
    hosts = {n: gnp_random_graph(n, 0.5, seed=n) for n in NS}
    specs = [
        SpannerSpec(
            "theorem21",
            stretch=k,
            faults=FaultModel.vertex(R),
            seed=n + k,
            params={"schedule": "light", "constant": 1.0},
            graph=hosts[n],
        )
        for k in (3, 5)
        for n in NS
    ]
    plan = SweepPlan.build(specs, name="e2")
    reports = run_sweep(plan, workers=WORKERS)
    sizes = [report.size for report in reports]
    return {3: sizes[: len(NS)], 5: sizes[len(NS):]}


def test_e2_size_vs_n(benchmark):
    data = run_once(benchmark, sweep)
    slopes = {k: log_log_slope(NS, sizes) for k, sizes in data.items()}
    print_table(
        ["n", "size k=3", "size k=5", "bound k=3", "bound k=5"],
        [
            [
                n,
                data[3][i],
                data[5][i],
                conversion_size_bound(n, 3, R),
                conversion_size_bound(n, 5, R),
            ]
            for i, n in enumerate(NS)
        ],
        title=(
            "E2: size vs n at r=2 "
            f"(log-log slopes: k=3 -> {slopes[3]:.2f}, k=5 -> {slopes[5]:.2f}; "
            "theory exponents 1.50 / 1.33)"
        ),
        precision=0,
    )
    # Slopes in a generous band around the theoretical exponents.
    assert 1.0 <= slopes[3] <= 2.0
    assert 1.0 <= slopes[5] <= 2.0
    # Larger stretch must not scale faster (allow small-sample noise).
    assert slopes[5] <= slopes[3] + 0.2
    # Sizes sit below the proved bound curve (unit constant is generous
    # here because the light schedule drops an r factor).
    for k in (3, 5):
        for i, n in enumerate(NS):
            assert data[k][i] <= 2.0 * conversion_size_bound(n, k, R)
