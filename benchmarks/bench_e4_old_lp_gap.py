"""E4 — Section 3.1: the old flow LP (2) has integrality gap Ω(r) on K_n.

Paper claim: on the complete graph the [DK10] relaxation assigns every
edge capacity ``1/(n-r-2)`` and pays only ``n(n-1)/(n-r-2)`` = O(n), while
any integral r-fault-tolerant 2-spanner needs in/out degree r+1 at every
vertex, i.e. ~``(r+1)n`` arcs — a gap that grows linearly in r.

What we measure: the true LP (2) optimum (full fault-set-indexed program),
the paper's closed-form feasible value, the integral degree lower bound,
and (tiny n) the exact branch-and-bound optimum.

Shape to hold: gap lower bound strictly increasing in r; the paper's
closed form upper-bounds the solved LP; the exact optimum confirms the
integral lower bound.
"""

from __future__ import annotations

import math

from conftest import run_once

from repro.analysis import print_table
from repro.two_spanner import old_lp_gap_on_complete_graph, solve_ft2_lp
from repro.graph import complete_digraph

N = 8
R_VALUES = [0, 1, 2, 3]


def sweep():
    rows = []
    for r in R_VALUES:
        gap = old_lp_gap_on_complete_graph(N, r)
        new_lp = solve_ft2_lp(complete_digraph(N), r).objective
        rows.append(
            {
                "r": r,
                "lp2": gap.lp_value,
                "closed_form": gap.analytic_lp_upper,
                "int_lb": gap.integral_lower_bound,
                "gap": gap.gap_lower_bound,
                "lp4": new_lp,
                "gap4": gap.integral_lower_bound / new_lp,
            }
        )
    exact = old_lp_gap_on_complete_graph(4, 1, solve_exact=True)
    return rows, exact


def test_e4_old_lp_gap(benchmark):
    rows, exact = run_once(benchmark, sweep)
    print_table(
        ["r", "LP(2) value", "closed form", "integral LB",
         "gap LP(2)", "LP(4) value", "gap LP(4)"],
        [
            [row["r"], row["lp2"], row["closed_form"], row["int_lb"],
             row["gap"], row["lp4"], row["gap4"]]
            for row in rows
        ],
        title=f"E4: integrality gaps on the complete digraph K_{N}",
    )
    print(
        f"exact optimum on K_4, r=1: {exact.exact_opt:.0f} "
        f"(integral LB {exact.integral_lower_bound:.0f})"
    )

    gaps = [row["gap"] for row in rows]
    # Ω(r): the old LP's gap grows with r...
    assert all(b > a for a, b in zip(gaps, gaps[1:]))
    assert gaps[-1] / gaps[0] >= 2.0
    # ...while the knapsack-cover LP (4) stays within a constant.
    assert all(row["gap4"] <= 2.0 + 1e-9 for row in rows)
    # The paper's closed-form assignment is feasible, hence >= the optimum.
    for row in rows:
        assert row["lp2"] <= row["closed_form"] + 1e-6
    # Exact optimum on the tiny instance meets the degree bound.
    assert exact.exact_opt >= exact.integral_lower_bound - 1e-9
