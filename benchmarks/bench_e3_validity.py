"""E3 — Theorem 2.1 correctness: the output tolerates every fault set.

Paper claim: with α = Θ(r³ log n) iterations the union is an r-fault-
tolerant k-spanner with high probability.

What we measure:

* small instances — *exhaustive* verification over every fault set of size
  <= r, with the full theorem schedule;
* medium instances — Monte Carlo verification over sampled fault sets plus
  the worst observed post-fault stretch;
* an ablation of the iteration schedule (theorem vs light vs light/4),
  showing where validity starts to fray — the paper's constants are what
  buy the high-probability guarantee.

Shape to hold: theorem schedule passes everything; the measured stretch
never exceeds k under any enumerated/sampled fault set.
"""

from __future__ import annotations

import math

from conftest import run_once

from repro.analysis import (
    exhaustive_stretch_profile,
    print_table,
    sampled_stretch_profile,
)
from repro.core import fault_tolerant_spanner
from repro.graph import connected_gnp_graph

K = 3


def sweep():
    rows = []
    # Exhaustive regime.
    for n, r in [(13, 1), (12, 2)]:
        graph = connected_gnp_graph(n, 0.5, seed=n)
        result = fault_tolerant_spanner(graph, K, r, seed=n + r)
        profile = exhaustive_stretch_profile(result.spanner, graph, r)
        rows.append(
            ["exhaustive", n, r, "theorem", result.stats.iterations,
             len(profile.samples), profile.max, profile.fraction_within(K)]
        )
    # Sampled regime with schedule ablation.
    graph = connected_gnp_graph(36, 0.3, seed=99)
    for label, kwargs in [
        ("theorem", dict(schedule="theorem")),
        ("light", dict(schedule="light")),
        ("light/4", dict(schedule="light", constant=4.0)),
    ]:
        result = fault_tolerant_spanner(graph, K, 3, seed=7, **kwargs)
        profile = sampled_stretch_profile(
            result.spanner, graph, 3, trials=120, seed=8
        )
        rows.append(
            ["sampled", 36, 3, label, result.stats.iterations,
             len(profile.samples), profile.max, profile.fraction_within(K)]
        )
    return rows


def test_e3_validity(benchmark):
    rows = run_once(benchmark, sweep)
    print_table(
        ["mode", "n", "r", "schedule", "iters", "fault sets",
         "worst stretch", "fraction <= k"],
        rows,
        title=f"E3: fault-tolerance validity of the conversion (k={K})",
    )
    for row in rows:
        mode, _n, _r, schedule, _iters, _count, worst, fraction = row
        if schedule == "theorem":
            assert fraction == 1.0
            assert worst <= K + 1e-9
    # The full theorem schedule must use more iterations than the ablations.
    iters = {row[3]: row[4] for row in rows if row[0] == "sampled"}
    assert iters["theorem"] > iters["light"] > iters["light/4"]
