"""Legacy setup shim for environments whose pip cannot build wheels offline."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Fault-tolerant graph spanners: reproduction of Dinitz & Krauthgamer, PODC 2011"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy", "networkx"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
    license="MIT",
    classifiers=[
        "Development Status :: 5 - Production/Stable",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering :: Mathematics",
        "Topic :: System :: Distributed Computing",
    ],
)
