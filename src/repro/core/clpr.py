"""The Chechik–Langberg–Peleg–Roditty (CLPR09) baseline.

The paper's Section 2 improves on [CLPR09], which builds r-fault-tolerant
(2t-1)-spanners of size ``O(r^2 t^{r+1} n^{1+1/t} log^{1-1/t} n)`` —
*exponential* in r. As this paper describes it, the CLPR09 construction
conceptually "applies the spanner construction of Thorup and Zwick to every
possible fault set, eventually taking the union of all of these spanners",
with a shared-randomness analysis showing the union stays small.

We implement that description directly, with shared hierarchy randomness
(the ingredient that keeps the union from exploding to ``n^r`` independent
spanners). Enumerating all ``O(n^r)`` fault sets is only feasible at small
``(n, r)``; the benchmark harness combines the exact construction at small
scale with the *proved size bound* (see
:func:`repro.spanners.bounds.clpr_ft_size_bound`) as an analytic curve at
larger scale. DESIGN.md records this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional

from ..errors import FaultToleranceError
from ..graph.graph import BaseGraph
from ..rng import RandomLike, ensure_rng
from ..spanners.thorup_zwick import _cluster_tree_edges, _multi_source_distances, sample_hierarchy
from .verify import count_fault_sets, fault_sets

Vertex = Hashable

#: Safety valve: refuse enumerations beyond this many fault sets.
MAX_FAULT_SETS = 2_000_000


@dataclass
class CLPRResult:
    """Output of :func:`clpr_fault_tolerant_spanner`."""

    spanner: BaseGraph
    stretch: int
    fault_sets_processed: int

    @property
    def num_edges(self) -> int:
        return self.spanner.num_edges


def clpr_fault_tolerant_spanner(
    graph: BaseGraph,
    t: int,
    r: int,
    seed: RandomLike = None,
    shared_randomness: bool = True,
    max_fault_sets: int = MAX_FAULT_SETS,
) -> CLPRResult:
    """Union-over-fault-sets construction in the style of [CLPR09].

    Parameters
    ----------
    graph:
        Undirected weighted graph.
    t:
        Thorup–Zwick hierarchy depth; the stretch is ``2t - 1``.
    r:
        Fault tolerance. The enumeration covers all ``sum_{i<=r} C(n, i)``
        fault sets and refuses to start beyond ``max_fault_sets``.
    shared_randomness:
        When True (the CLPR09-style setting), one vertex hierarchy is
        sampled and reused across every fault set — the key to the size
        analysis. When False, each fault set gets fresh randomness; this
        ablation shows the union blowing up, motivating the shared scheme.
    """
    if t < 1:
        raise FaultToleranceError(f"t must be >= 1, got {t}")
    if r < 0:
        raise FaultToleranceError(f"r must be nonnegative, got {r}")
    n = graph.num_vertices
    total = count_fault_sets(n, r)
    if total > max_fault_sets:
        raise FaultToleranceError(
            f"enumerating {total} fault sets exceeds the limit {max_fault_sets}; "
            "use the analytic bound clpr_ft_size_bound at this scale"
        )
    rng = ensure_rng(seed)
    vertices = list(graph.vertices())
    union = type(graph)()
    union.add_vertices(vertices)

    shared_levels = sample_hierarchy(vertices, t, rng) if shared_randomness else None

    processed = 0
    for faults in fault_sets(vertices, r):
        fault_set = set(faults)
        sub = graph.without_vertices(fault_set)
        if shared_levels is not None:
            levels = [level - fault_set for level in shared_levels]
        else:
            levels = sample_hierarchy(
                [v for v in vertices if v not in fault_set], t, rng
            )
        for i in range(t):
            barrier = (
                _multi_source_distances(sub, levels[i + 1]) if levels[i + 1] else {}
            )
            for w in levels[i] - levels[i + 1]:
                for a, b in _cluster_tree_edges(sub, w, barrier):
                    union.add_edge(a, b, graph.weight(a, b))
        processed += 1
    return CLPRResult(spanner=union, stretch=2 * t - 1, fault_sets_processed=processed)
