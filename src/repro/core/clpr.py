"""The Chechik–Langberg–Peleg–Roditty (CLPR09) baseline.

The paper's Section 2 improves on [CLPR09], which builds r-fault-tolerant
(2t-1)-spanners of size ``O(r^2 t^{r+1} n^{1+1/t} log^{1-1/t} n)`` —
*exponential* in r. As this paper describes it, the CLPR09 construction
conceptually "applies the spanner construction of Thorup and Zwick to every
possible fault set, eventually taking the union of all of these spanners",
with a shared-randomness analysis showing the union stays small.

We implement that description directly, with shared hierarchy randomness
(the ingredient that keeps the union from exploding to ``n^r`` independent
spanners). Enumerating all ``O(n^r)`` fault sets is only feasible at small
``(n, r)``; the benchmark harness combines the exact construction at small
scale with the *proved size bound* (see
:func:`repro.spanners.bounds.clpr_ft_size_bound`) as an analytic curve at
larger scale. DESIGN.md records this substitution.

Execution paths (dispatch rule: :func:`repro.graph.csr.resolve_method`):

* ``method="csr"`` snapshots the host **once** and replays the per-fault
  TZ construction through the compiled kernels: each fault set becomes a
  survivor weight vector (``inf`` on every half-edge incident to a
  faulted vertex — the survivor-bitmask pattern of
  :mod:`repro.core.conversion`), the level distances run as masked
  multi-source passes, the cluster trees as Johnson-primed limited
  batched SSSPs, and the union is a set of integer edge ids;
* ``method="dict"`` is the reference implementation — one
  ``without_vertices`` dict copy per fault set.

Both paths draw the hierarchy randomness identically (host vertex order)
and share the distance-local tree rule of
:mod:`repro.spanners.thorup_zwick`, so a fixed seed yields the same union
spanner edge set either way (property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Set

from ..errors import FaultToleranceError
from ..graph.csr import resolve_method, snapshot
from ..graph.graph import BaseGraph
from ..graph.scenario import scenario_fault_sets
from ..registry import register_algorithm
from ..rng import RandomLike, ensure_rng
from ..spanners.thorup_zwick import (
    _cluster_tree_edges,
    _level_centers,
    _level_tree_eids_scipy,
    _multi_source_distances,
    _vertex_order,
    sample_hierarchy,
)
from .verify import count_fault_sets, fault_sets

Vertex = Hashable

#: Safety valve: refuse enumerations beyond this many fault sets.
MAX_FAULT_SETS = 2_000_000


@dataclass
class CLPRResult:
    """Output of :func:`clpr_fault_tolerant_spanner`."""

    spanner: BaseGraph
    stretch: int
    fault_sets_processed: int

    @property
    def num_edges(self) -> int:
        return self.spanner.num_edges


def _clpr_dict(
    graph: BaseGraph, t: int, fault_iter, vertices, shared_levels, rng
) -> CLPRResult:
    """Reference per-fault-set dict pipeline."""
    union = type(graph)()
    union.add_vertices(vertices)
    processed = 0
    for faults in fault_iter:
        fault_set = set(faults)
        sub = graph.without_vertices(fault_set)
        order = _vertex_order(sub)
        if shared_levels is not None:
            levels = [level - fault_set for level in shared_levels]
        else:
            levels = sample_hierarchy(
                [v for v in vertices if v not in fault_set], t, rng
            )
        sub_vertices = list(sub.vertices())
        for i in range(t):
            barrier = (
                _multi_source_distances(sub, levels[i + 1]) if levels[i + 1] else {}
            )
            for w in _level_centers(sub_vertices, levels, i):
                for a, b in _cluster_tree_edges(sub, w, barrier, order):
                    union.add_edge(a, b, graph.weight(a, b))
        processed += 1
    return CLPRResult(spanner=union, stretch=2 * t - 1, fault_sets_processed=processed)


def _clpr_csr(
    graph: BaseGraph, t: int, fault_iter, vertices, shared_levels, rng
) -> CLPRResult:
    """One snapshot; per fault set a masked SurvivorView + kernel passes."""
    snap = snapshot(graph)
    kernels = snap.scipy_kernels()
    index = snap.index
    n = snap.num_vertices
    chosen: Set[int] = set()
    processed = 0
    for faults in fault_iter:
        fault_set = set(faults)
        fidx = [index[f] for f in faults]
        if fidx:
            alive = [True] * n
            for j in fidx:
                alive[j] = False
            view = snap.survivor_view(alive)
            data = view.masked_weights()
            alive_np = view.alive_np()
        else:
            data = None
            alive_np = None
        if shared_levels is not None:
            levels = [level - fault_set for level in shared_levels]
        else:
            levels = sample_hierarchy(
                [v for v in vertices if v not in fault_set], t, rng
            )
        for i in range(t):
            phi_np = None
            if levels[i + 1]:
                sources = sorted(index[v] for v in levels[i + 1])
                phi_np = kernels.multi_source(sources, data=data)
            centers = [index[w] for w in _level_centers(vertices, levels, i)]
            centers = [c for c in centers if alive_np is None or alive_np[c]]
            if not centers:
                continue
            _level_tree_eids_scipy(
                snap, kernels, chosen, centers, phi_np,
                base_data=data, alive_np=alive_np,
            )
        processed += 1
    union = snap.materialize_edge_ids(sorted(chosen))
    return CLPRResult(spanner=union, stretch=2 * t - 1, fault_sets_processed=processed)


def clpr_fault_tolerant_spanner(
    graph: BaseGraph,
    t: int,
    r: int,
    seed: RandomLike = None,
    shared_randomness: bool = True,
    max_fault_sets: int = MAX_FAULT_SETS,
    *,
    method: str = "auto",
    scenarios=None,
) -> CLPRResult:
    """Union-over-fault-sets construction in the style of [CLPR09].

    Parameters
    ----------
    graph:
        Undirected weighted graph.
    t:
        Thorup–Zwick hierarchy depth; the stretch is ``2t - 1``.
    r:
        Fault tolerance. The enumeration covers all ``sum_{i<=r} C(n, i)``
        fault sets and refuses to start beyond ``max_fault_sets``.
    shared_randomness:
        When True (the CLPR09-style setting), one vertex hierarchy is
        sampled and reused across every fault set — the key to the size
        analysis. When False, each fault set gets fresh randomness; this
        ablation shows the union blowing up, motivating the shared scheme.
    method:
        ``"auto"`` (default), ``"csr"``, or ``"dict"`` — see
        :func:`repro.graph.csr.resolve_method`. Both paths produce the
        same union spanner for a fixed seed.
    scenarios:
        Optional explicit fault sets to union over instead of the full
        ``<= r`` enumeration: a sequence of
        :class:`repro.graph.scenario.FaultScenario` values (kind
        ``"none"``/``"vertex"``) or raw vertex iterables. The ``r`` bound
        still caps each scenario's size.
    """
    if t < 1:
        raise FaultToleranceError(f"t must be >= 1, got {t}")
    if r < 0:
        raise FaultToleranceError(f"r must be nonnegative, got {r}")
    n = graph.num_vertices
    vertices = list(graph.vertices())
    if scenarios is not None:
        fault_sets_seq = scenario_fault_sets(scenarios)
        for faults in fault_sets_seq:
            if len(faults) > r:
                raise FaultToleranceError(
                    f"scenario faults {len(faults)} exceed the tolerance r={r}"
                )
        total = len(fault_sets_seq)
    else:
        total = count_fault_sets(n, r)
    if total > max_fault_sets:
        raise FaultToleranceError(
            f"enumerating {total} fault sets exceeds the limit {max_fault_sets}; "
            "use the analytic bound clpr_ft_size_bound at this scale"
        )
    # CLPR rides the TZ kernels, so it shares their undirected-only
    # compiled path: digraphs auto-dispatch to dict, explicit "csr" raises.
    resolved = resolve_method(
        method, n, directed=graph.directed, directed_csr=False
    )
    rng = ensure_rng(seed)
    shared_levels = sample_hierarchy(vertices, t, rng) if shared_randomness else None

    def fault_iter():
        if scenarios is not None:
            return iter(fault_sets_seq)
        return fault_sets(vertices, r)

    if resolved == "csr" and vertices:
        snap = snapshot(graph)
        if snap.scipy_kernels() is not None:
            return _clpr_csr(graph, t, fault_iter(), vertices, shared_levels, rng)
    return _clpr_dict(graph, t, fault_iter(), vertices, shared_levels, rng)


@register_algorithm(
    "clpr09",
    summary="CLPR09 union-over-fault-sets r-FT (2t-1)-spanner (exp. in r)",
    stretch_domain="odd integers 2t-1 (3, 5, 7, ...)",
    weighted=True,
    directed=False,
    fault_tolerant=True,
    csr_path=True,
    stretch_kind="odd",
)
def _registry_build(graph: BaseGraph, spec, seed):
    """Spec adapter: ``SpannerSpec -> clpr_fault_tolerant_spanner``."""
    from ..spec import require_fault_kind, stretch_to_levels

    require_fault_kind(spec, "vertex", "none")
    kwargs = {}
    if spec.param("max_fault_sets") is not None:
        kwargs["max_fault_sets"] = spec.param("max_fault_sets")
    result = clpr_fault_tolerant_spanner(
        graph,
        stretch_to_levels(spec),
        spec.faults.r,
        seed=seed,
        shared_randomness=spec.param("shared_randomness", True),
        method=spec.method,
        **kwargs,
    )
    stats = {
        "stretch": result.stretch,
        "fault_sets_processed": result.fault_sets_processed,
    }
    return result, stats
