"""The paper's primary contribution for stretch ``k >= 3``.

:mod:`repro.core.conversion` implements the Theorem 2.1 fault-oversampling
conversion (and its Corollary 2.2 instantiation with the greedy spanner),
:mod:`repro.core.clpr` the CLPR09 exponential-in-r baseline it improves on,
and :mod:`repro.core.verify` the exhaustive / sampled / Lemma 3.1 verifiers
used by tests and benchmarks.

The constructors here self-register in :mod:`repro.registry` (names
``theorem21``, ``theorem21-edge``, ``clpr09``) — the registry, not this
module list, is the authoritative catalogue of what can be built.
"""

from .clpr import CLPRResult, clpr_fault_tolerant_spanner
from .edge_faults import (
    edge_fault_sets,
    edge_fault_tolerant_spanner,
    edge_satisfied_for_edge_faults,
    is_edge_fault_tolerant_spanner,
    is_edge_ft_2spanner,
    sampled_edge_fault_check,
)
from .conversion import (
    BaseSpannerAlgorithm,
    ConversionResult,
    ConversionStats,
    fault_tolerant_spanner,
    fault_tolerant_spanner_until_valid,
    resolve_iterations,
    survival_probability,
)
from .verify import (
    IncrementalFT2Verifier,
    count_fault_sets,
    count_two_paths,
    edge_satisfied,
    fault_sets,
    first_violating_fault_set,
    is_fault_tolerant_spanner,
    is_ft_2spanner,
    sampled_fault_check,
    unsatisfied_edges,
)

__all__ = [
    "BaseSpannerAlgorithm",
    "CLPRResult",
    "ConversionResult",
    "ConversionStats",
    "IncrementalFT2Verifier",
    "clpr_fault_tolerant_spanner",
    "count_fault_sets",
    "count_two_paths",
    "edge_fault_sets",
    "edge_fault_tolerant_spanner",
    "edge_satisfied",
    "edge_satisfied_for_edge_faults",
    "fault_sets",
    "fault_tolerant_spanner",
    "fault_tolerant_spanner_until_valid",
    "first_violating_fault_set",
    "is_edge_fault_tolerant_spanner",
    "is_edge_ft_2spanner",
    "is_fault_tolerant_spanner",
    "is_ft_2spanner",
    "resolve_iterations",
    "sampled_edge_fault_check",
    "sampled_fault_check",
    "survival_probability",
    "unsatisfied_edges",
]
