"""Edge-fault-tolerant spanners — the conversion's other natural setting.

The paper focuses on *vertex* faults (the harder model), but the same
oversampling conversion handles *edge* faults verbatim — indeed the
distributed statement (Theorem 2.3) is phrased with "each edge
independently decides whether or not to join J". This module provides:

* :func:`edge_fault_tolerant_spanner` — Theorem 2.1 with edge
  oversampling: each iteration removes every edge independently with
  probability ``1 - 1/r``, spans the survivor, and unions the results.
  The analysis carries over: for a real edge-fault set ``F`` (|F| <= r)
  and a surviving edge that is a shortest path in ``G \\ F``, one
  iteration covers the pair when the edge survives and ``F`` is sampled
  out — probability ``(1/r)(1 - 1/r)^r >= 1/(2er)`` — so
  ``Θ(r² log n)``-ish iterations suffice for a union bound over
  ``m^{r+1}`` pairs (we keep the same schedule knobs as the vertex case).
* exhaustive / Monte Carlo verifiers against the edge-fault definition;
* :func:`is_edge_ft_2spanner` — the Lemma 3.1 analogue for ``k = 2``.
  The per-edge condition turns out to be *identical* to the vertex-fault
  one ("kept, or covered by r + 1 two-paths"): a host edge only needs
  checking against fault sets that do **not** contain it (otherwise it is
  not an edge of ``G - F``), so a kept edge always survives for the fault
  sets that matter; and two-paths with distinct midpoints are pairwise
  edge-disjoint, so ``r`` edge faults kill at most ``r`` of ``r + 1`` of
  them. Necessity of ``r + 1`` follows by faulting one edge of each
  two-path. The test suite checks this equivalence against the exhaustive
  edge-fault verifier (``tests/test_core_edge_faults.py``).
"""

from __future__ import annotations

import itertools
import math
from typing import Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import FaultToleranceError, InvalidStretch
from ..graph.graph import BaseGraph
from ..graph.paths import dijkstra
from ..graph.scenario import FaultScenario
from ..registry import register_algorithm
from ..rng import RandomLike, derive_rng, ensure_rng
from ..spanners.greedy import greedy_spanner
from .conversion import (
    BaseSpannerAlgorithm,
    ConversionResult,
    ConversionStats,
    _OversamplingEngine,
    base_algorithm_caller,
    conversion_stats_dict,
    engine_resolved_method,
    resolve_base_algorithm,
    resolve_iterations,
    survival_probability,
)
from .verify import count_two_paths

Vertex = Hashable
EdgeKey = Tuple[Vertex, Vertex]


def edge_fault_sets(
    edges: Sequence[EdgeKey], r: int
) -> Iterator[Tuple[EdgeKey, ...]]:
    """Enumerate every edge-fault set of size at most ``r``."""
    edges = list(edges)
    for size in range(min(r, len(edges)) + 1):
        yield from itertools.combinations(edges, size)


def _without_edges(graph: BaseGraph, faults: Iterable[EdgeKey]) -> BaseGraph:
    """Copy of ``graph`` with the faulted edges removed.

    Fault keys may be given in either orientation for undirected graphs.
    """
    out = graph.copy()
    for (u, v) in faults:
        if out.has_edge(u, v):
            out.remove_edge(u, v)
    return out


def edge_fault_tolerant_spanner(
    graph: BaseGraph,
    k: float,
    r: int,
    base_algorithm: BaseSpannerAlgorithm = greedy_spanner,
    iterations: Optional[int] = None,
    schedule: str = "light",
    constant: float = 16.0,
    seed: RandomLike = None,
    method: str = "auto",
    scenarios: Optional[Sequence[FaultScenario]] = None,
) -> ConversionResult:
    """Theorem 2.1 conversion against *edge* faults.

    Mirrors :func:`repro.core.conversion.fault_tolerant_spanner`, but each
    iteration samples a set ``J`` of *edges* (every edge joins ``J``
    independently with probability ``1 - 1/r``) and spans ``G`` minus
    those edges. The default schedule is "light" (``r² log n``): the
    per-pair success probability here is ``(1/r)(1-1/r)^r``, one ``1/r``
    factor better than the vertex case's ``(1/r)²(1-1/r)^r``. ``method``
    is threaded through to the base algorithm (see
    :func:`repro.core.conversion.base_algorithm_caller`); with the
    default greedy base and any non-``"dict"`` method the whole loop
    runs on edge-masked :class:`repro.graph.csr.SurvivorView`\\ s of one
    host snapshot — no ``edge_subgraph`` is ever materialized.

    ``scenarios`` optionally supplies an explicit list of
    :class:`repro.graph.scenario.FaultScenario` values (kind ``"none"``
    or ``"edge"``) to replay instead of sampling: the iteration count
    becomes ``len(scenarios)`` and no randomness is consumed.
    """
    if k < 1:
        raise InvalidStretch(f"stretch must be >= 1, got {k}")
    if r < 0:
        raise FaultToleranceError(f"r must be nonnegative, got {r}")
    if method not in ("auto", "csr", "dict", "indexed", "compiled"):
        raise FaultToleranceError(
            f"method must be 'auto', 'csr', 'indexed', 'dict', or "
            f"'compiled', got {method!r}"
        )
    if scenarios is not None:
        scenarios = list(scenarios)
        if not scenarios:
            raise FaultToleranceError("scenarios must be a non-empty sequence")
        for sc in scenarios:
            if not isinstance(sc, FaultScenario):
                raise FaultToleranceError(
                    f"scenarios must hold FaultScenario values, got {sc!r}"
                )
            if sc.kind == "vertex":
                raise FaultToleranceError(
                    "the edge-fault conversion got a vertex scenario; "
                    "use fault_tolerant_spanner for kind='vertex'"
                )
    use_engine = base_algorithm is greedy_spanner and method != "dict"
    base_algorithm = base_algorithm_caller(base_algorithm, method)

    union = type(graph)()
    union.add_vertices(graph.vertices())
    n = graph.num_vertices

    if r == 0 and scenarios is None:
        base = base_algorithm(graph, k)
        for u, v, w in base.edges():
            union.add_edge(u, v, w)
        stats = ConversionStats(
            iterations=1,
            survivor_sizes=[n],
            iteration_edge_counts=[base.num_edges],
            union_edge_counts=[union.num_edges],
        )
        return ConversionResult(spanner=union, stats=stats)

    if scenarios is not None:
        alpha = len(scenarios)
    else:
        alpha = resolve_iterations(n, r, iterations, schedule, constant)
    p_survive = survival_probability(r)
    rng = ensure_rng(seed)
    stats = ConversionStats(iterations=alpha)
    edges = [(u, v) for u, v, _w in graph.edges()]

    # With the default greedy base the loop shares the vertex pipeline's
    # oversampling engine: one host snapshot, per-iteration edge-masked
    # views, integer edge-id union. Custom bases keep the dict pipeline.
    engine = _OversamplingEngine(graph, k, method) if use_engine else None

    for i in range(alpha):
        if scenarios is not None:
            if engine is not None:
                engine.scenario_step(scenarios[i], stats, count_edges=True)
                continue
            fault = scenarios[i].edge_fault_set()
            surviving_edges = [
                e for e in edges
                if e not in fault and (e[1], e[0]) not in fault
            ]
        else:
            it_rng = derive_rng(rng, i)
            if engine is not None:
                engine.edge_step(it_rng, p_survive, stats)
                continue
            surviving_edges = [e for e in edges if it_rng.random() < p_survive]
        sub = graph.edge_subgraph(surviving_edges)
        # survivor_sizes records the analogous quantity: surviving edges.
        stats.survivor_sizes.append(sub.num_edges)
        base = base_algorithm(sub, k)
        stats.iteration_edge_counts.append(base.num_edges)
        for u, v, w in base.edges():
            union.add_edge(u, v, w)
        stats.union_edge_counts.append(union.num_edges)

    if engine is not None:
        union = engine.union_graph()
    return ConversionResult(spanner=union, stats=stats)


def _edge_spanner_holds(
    spanner: BaseGraph, graph: BaseGraph, k: float, faults: Iterable[EdgeKey]
) -> bool:
    """Spanner condition of ``H - F`` against ``G - F`` (edge faults)."""
    fault_list = list(faults)
    g_f = _without_edges(graph, fault_list)
    h_f = _without_edges(spanner, fault_list)
    slack = 1 + 1e-9
    for u in g_f.vertices():
        out = (
            dict(g_f.successor_items(u))
            if g_f.directed
            else dict(g_f.neighbor_items(u))
        )
        if not out:
            continue
        dist_g = dijkstra(g_f, u)
        dist_h = dijkstra(h_f, u)
        for v in out:
            if dist_h.get(v, math.inf) > k * dist_g[v] * slack:
                return False
    return True


def is_edge_fault_tolerant_spanner(
    spanner: BaseGraph,
    graph: BaseGraph,
    k: float,
    r: int,
    scenarios: Optional[Iterable] = None,
    *,
    fault_sets_to_check: Optional[Iterable[Iterable[EdgeKey]]] = None,
) -> bool:
    """Exhaustive r-edge-fault-tolerance verification.

    Enumerates every edge subset of size <= r unless ``scenarios`` gives
    explicit sets (:class:`repro.graph.scenario.FaultScenario` values of
    kind ``"none"``/``"edge"``, or raw edge-tuple iterables); callers
    must keep ``C(m, r)`` small. ``fault_sets_to_check`` is the
    deprecated name for the same parameter and warns once per call site.
    """
    if r < 0:
        raise FaultToleranceError(f"r must be nonnegative, got {r}")
    if fault_sets_to_check is not None:
        import warnings

        warnings.warn(
            "fault_sets_to_check is deprecated; pass scenarios= "
            "(FaultScenario values or raw edge iterables)",
            DeprecationWarning,
            stacklevel=2,
        )
        if scenarios is None:
            scenarios = fault_sets_to_check
    if scenarios is None:
        edges = [(u, v) for u, v, _w in graph.edges()]
        to_check: Iterable = edge_fault_sets(edges, r)
    else:
        from ..graph.scenario import scenario_edge_fault_sets

        to_check = scenario_edge_fault_sets(scenarios)
    for faults in to_check:
        if not _edge_spanner_holds(spanner, graph, k, faults):
            return False
    return True


def sampled_edge_fault_check(
    spanner: BaseGraph,
    graph: BaseGraph,
    k: float,
    r: int,
    trials: int = 100,
    seed: RandomLike = None,
) -> bool:
    """Monte Carlo r-edge-fault-tolerance check."""
    rng = ensure_rng(seed)
    edges = [(u, v) for u, v, _w in graph.edges()]
    if not edges:
        return True
    for _ in range(trials):
        size = rng.randint(0, min(r, len(edges)))
        faults = rng.sample(edges, size)
        if not _edge_spanner_holds(spanner, graph, k, faults):
            return False
    return True


def edge_satisfied_for_edge_faults(
    spanner: BaseGraph, u: Vertex, v: Vertex, r: int
) -> bool:
    """Per-edge condition of the Lemma 3.1 analogue (see module docstring).

    Identical to the vertex-fault condition: the edge is kept, or covered
    by ``r + 1`` two-paths. A kept edge suffices because a host edge is
    only checked against fault sets that do not remove it; two-paths with
    distinct midpoints are pairwise edge-disjoint, so ``r`` edge faults
    kill at most ``r`` of them.
    """
    if spanner.has_edge(u, v):
        return True
    return count_two_paths(spanner, u, v) >= r + 1


def is_edge_ft_2spanner(spanner: BaseGraph, graph: BaseGraph, r: int) -> bool:
    """Exact polynomial verification for k = 2, unit lengths, edge faults."""
    if r < 0:
        raise FaultToleranceError(f"r must be nonnegative, got {r}")
    return all(
        edge_satisfied_for_edge_faults(spanner, u, v, r)
        for u, v, _w in graph.edges()
    )


@register_algorithm(
    "theorem21-edge",
    summary="Theorem 2.1 conversion against r edge faults (link cuts)",
    stretch_domain="inherits the base algorithm's domain (any k >= 1 for greedy)",
    weighted=True,
    directed=True,
    fault_tolerant=True,
    # The default greedy base runs every iteration on edge-masked views
    # of one host CSR snapshot, so sessions should prime it.
    csr_path=True,
    compiled_path=True,
    fault_kinds=("none", "edge"),
)
def _registry_build(graph: BaseGraph, spec, seed):
    """Spec adapter: ``SpannerSpec -> edge_fault_tolerant_spanner``."""
    from ..spec import require_fault_kind

    require_fault_kind(spec, "edge", "none")
    result = edge_fault_tolerant_spanner(
        graph,
        spec.stretch,
        spec.faults.r,
        base_algorithm=resolve_base_algorithm(spec, seed),
        iterations=spec.param("iterations"),
        schedule=spec.param("schedule", "light"),
        constant=spec.param("constant", 16.0),
        seed=seed,
        method=spec.method,
    )
    stats = conversion_stats_dict(result.stats)
    if spec.param("base_algorithm", "greedy") == "greedy":
        # The greedy base runs the oversampling engine on edge-masked
        # views of the host snapshot (size-independent, compiled kernel
        # when the C backend serves) unless the dict reference was forced.
        stats["resolved_method"] = engine_resolved_method(spec.method)
    return result, stats
