"""Theorem 2.1: the fault-oversampling conversion.

This is the paper's primary contribution for stretch ``k >= 3``: a black-box
transformation that converts *any* k-spanner construction into an r-fault-
tolerant one. Each iteration independently puts every vertex into a
simulated fault set ``J`` with probability ``p = 1 - 1/r`` (``1/2`` when
``r = 1``), builds a k-spanner of the survivor graph ``G \\ J`` with the
given base algorithm, and unions the results over
``α = Θ(r^3 log n)`` iterations.

Why oversampling works (paper, proof of Theorem 2.1): for a real fault set
``F`` (|F| <= r) and a surviving edge ``(u, v)`` that is a shortest path in
``G \\ F``, a single iteration "covers" the pair when ``u, v ∉ J`` and
``F ⊆ J`` — probability ``(1/r)^2 (1-1/r)^r >= 1/(4r^2)`` — in which case
the base spanner's stretch-k path for ``(u, v)`` in ``G \\ J`` survives in
``G \\ F``. With ``α = Θ(r^3 log n)`` iterations a union bound over all
``(F, edge)`` pairs gives success with high probability.

The expected survivor size is ``n/r`` per iteration, so the union has size
``O(r^3 log n · f(2n/r))``; applying the greedy spanner's
``f(n) = O(n^{1+2/(k+1)})`` yields Theorem 1.1's
``O(r^{2-2/(k+1)} n^{1+2/(k+1)} log n)``.
"""

from __future__ import annotations

import inspect
import math
from dataclasses import dataclass, field
from typing import Callable, Hashable, List, Optional, Sequence, Set

from ..errors import FaultToleranceError, InvalidSpec, InvalidStretch
from ..graph.csr import SurvivorView, snapshot
from ..graph.graph import BaseGraph
from ..graph.scenario import FaultScenario
from ..registry import register_algorithm
from ..rng import RandomLike, derive_rng, ensure_rng
from ..spanners.bounds import conversion_iterations, conversion_iterations_light
from ..spanners.greedy import (
    _check_method as _greedy_check_method,
    greedy_spanner,
    make_greedy_kernel,
)

Vertex = Hashable

#: A base spanner algorithm: (graph, stretch) -> spanning subgraph.
BaseSpannerAlgorithm = Callable[[BaseGraph, float], BaseGraph]


def base_algorithm_caller(
    base_algorithm: BaseSpannerAlgorithm, method: str
) -> BaseSpannerAlgorithm:
    """Bind ``method=`` into a base algorithm when its signature takes it.

    The Theorem 2.1 loop calls the base as ``base(survivor_graph, k)``;
    before this helper, a ``method=`` given to the conversion never
    reached the base algorithm, so the resampling loop silently ran the
    base's *default* path. Every library constructor takes the shared
    ``method`` kwarg (:func:`repro.graph.csr.resolve_method` vocabulary),
    so binding it here routes all ``α`` per-iteration builds onto the
    requested kernel path end-to-end. Callables without a ``method``
    parameter (user lambdas) are returned unchanged.
    """
    try:
        parameters = inspect.signature(base_algorithm).parameters
    except (TypeError, ValueError):  # builtins / odd callables
        return base_algorithm
    accepts = "method" in parameters or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )
    if not accepts:
        return base_algorithm

    def bound(graph: BaseGraph, k: float) -> BaseGraph:
        return base_algorithm(graph, k, method=method)

    return bound


def engine_resolved_method(method: str) -> str:
    """The dispatch tier a greedy-base conversion actually engages.

    ``"dict"`` forces the reference pipeline; anything else runs the
    oversampling engine on the host CSR snapshot, whose greedy kernel is
    ``"compiled"`` when the optional C backend serves the request and
    ``"csr"`` otherwise — the value the registry adapters report as
    ``resolved_method`` so build reports name the true path.
    """
    if method == "dict":
        return "dict"
    return "compiled" if _greedy_check_method(method) == "compiled" else "csr"


@dataclass
class ConversionStats:
    """Per-run accounting for the conversion, consumed by benchmarks."""

    iterations: int
    survivor_sizes: List[int] = field(default_factory=list)
    iteration_edge_counts: List[int] = field(default_factory=list)
    union_edge_counts: List[int] = field(default_factory=list)

    @property
    def max_survivor_size(self) -> int:
        """Largest ``|G \\ J|`` over iterations (Thm 2.1 bounds it by 2n/r whp)."""
        return max(self.survivor_sizes, default=0)

    @property
    def final_size(self) -> int:
        """Edge count of the union spanner."""
        return self.union_edge_counts[-1] if self.union_edge_counts else 0


@dataclass
class ConversionResult:
    """Output of :func:`fault_tolerant_spanner`."""

    spanner: BaseGraph
    stats: ConversionStats

    @property
    def num_edges(self) -> int:
        return self.spanner.num_edges


def survival_probability(r: int) -> float:
    """The Theorem 2.1 sampling probability for vertices to *survive*.

    Each vertex joins the simulated fault set ``J`` with probability
    ``1 - 1/r``, i.e. survives with probability ``1/r``; for ``r = 1`` the
    paper uses ``p = 1/2``.
    """
    if r <= 1:
        return 0.5
    return 1.0 / r


def resolve_iterations(
    n: int, r: int, iterations: Optional[int], schedule: str, constant: float
) -> int:
    """Resolve the iteration count ``α`` from explicit value or schedule.

    Schedules: ``"theorem"`` = ``⌈c · r^3 ln n⌉`` (the proof's setting) and
    ``"light"`` = ``⌈c · r^2 ln n⌉`` (ablation; see DESIGN.md §5).
    """
    if iterations is not None:
        if iterations < 1:
            raise FaultToleranceError(f"iterations must be >= 1, got {iterations}")
        return iterations
    if schedule == "theorem":
        return conversion_iterations(n, r, constant)
    if schedule == "light":
        return conversion_iterations_light(n, r, constant)
    raise FaultToleranceError(f"unknown schedule {schedule!r}; use 'theorem' or 'light'")


class _OversamplingEngine:
    """Shared fast path for the Theorem 2.1 iteration body.

    Built once per conversion: snapshots the host into CSR arrays, sorts
    the edge ids by weight once (stable, so ties keep ``edges()`` order),
    and reuses one :class:`IndexedGreedyKernel` across all ``α``
    iterations. Each iteration reduces to (a) one vectorized O(m) pass
    filtering the pre-sorted id list through the survivor bitmask — no
    ``induced_subgraph`` dict is ever built — and (b) a greedy kernel run
    over the surviving ids. The union spanner is a plain set of integer
    edge ids until :meth:`union_graph` materializes it.

    ``method`` picks the kernel behind step (b) through the greedy
    dispatch rule: ``"auto"`` rides the compiled C kernel when
    :mod:`repro.compiled` is available (every masked survivor iteration
    benefits, since surviving ids feed the kernel unchanged) and the
    interpreted indexed kernel otherwise; ``"compiled"`` requires the
    backend. :attr:`resolved_method` records the tier actually engaged
    (``"compiled"`` or ``"csr"``) for honest build reports.
    """

    def __init__(self, graph: BaseGraph, k: float, method: str = "auto"):
        self.graph = graph
        self.k = k
        self.csr = snapshot(graph)
        edge_w = self.csr.edge_w
        self.sorted_ids = sorted(range(len(edge_w)), key=edge_w.__getitem__)
        try:  # keep the id list as int64 once; np.asarray is then a no-op per iteration
            import numpy as np

            self.sorted_ids = np.asarray(self.sorted_ids, dtype=np.int64)
        except ImportError:  # pragma: no cover
            pass
        resolved = _greedy_check_method(method)
        self.resolved_method = "compiled" if resolved == "compiled" else "csr"
        self.kernel = make_greedy_kernel(
            self.csr.num_vertices, self.csr.directed, resolved
        )
        self.union_ids: Set[int] = set()

    def iterate(self, view) -> List[int]:
        """Run one oversampling iteration on a survivor view.

        ``view`` is a :class:`repro.graph.csr.SurvivorView` over this
        engine's snapshot (vertex- and/or edge-masked — both fault kinds
        ride the same code path) or a raw vertex survivor mask. Returns
        the iteration's chosen edge ids (the base spanner of ``G \\ J``);
        they are also merged into :attr:`union_ids`.
        """
        csr = self.csr
        if isinstance(view, SurvivorView):
            surviving = view.filter_edge_ids(self.sorted_ids)
        else:
            surviving = csr.filter_edge_ids(self.sorted_ids, view)
        chosen = self.kernel.run_edge_ids(
            surviving, csr.edge_u, csr.edge_v, csr.edge_w, self.k
        )
        self.union_ids.update(chosen)
        return chosen

    def _account(self, chosen: List[int], stats: "ConversionStats") -> None:
        stats.iteration_edge_counts.append(len(chosen))
        stats.union_edge_counts.append(len(self.union_ids))

    def step(self, it_rng, p_survive: float, stats: "ConversionStats") -> List[int]:
        """One full Theorem 2.1 iteration: draw survivors, build, account.

        Consumes the RNG stream exactly like the dict pipeline (one draw
        per vertex, in host vertex order). Shared by both conversion
        drivers so their iteration bodies cannot drift apart.
        """
        alive = [it_rng.random() < p_survive for _ in self.csr.verts]
        stats.survivor_sizes.append(sum(alive))
        chosen = self.iterate(self.csr.survivor_view(alive))
        self._account(chosen, stats)
        return chosen

    def edge_step(self, it_rng, p_survive: float, stats: "ConversionStats") -> List[int]:
        """One Theorem 2.3-style edge-oversampling iteration.

        Consumes one draw per *edge*, in the host's ``edges()`` order
        (edge-id order) — exactly the stream the dict pipeline's
        survivor comprehension draws — and runs the kernel on an
        edge-masked view of the same host snapshot. ``survivor_sizes``
        records surviving *edge* counts, matching the dict pipeline's
        ``sub.num_edges`` accounting.
        """
        edge_alive = [
            it_rng.random() < p_survive for _ in range(self.csr.num_edges)
        ]
        stats.survivor_sizes.append(sum(edge_alive))
        chosen = self.iterate(self.csr.survivor_view(edge_alive=edge_alive))
        self._account(chosen, stats)
        return chosen

    def scenario_step(
        self, scenario, stats: "ConversionStats", *, count_edges: bool = False
    ) -> List[int]:
        """One iteration on an explicit :class:`FaultScenario` (no RNG).

        ``count_edges`` makes ``survivor_sizes`` record surviving *edge*
        counts even for a ``kind="none"`` scenario — the edge pipeline's
        accounting convention.
        """
        view = self.csr.survivor_view(scenario)
        stats.survivor_sizes.append(
            view.num_surviving_edges if count_edges or scenario.kind == "edge"
            else view.num_surviving_vertices
        )
        chosen = self.iterate(view)
        self._account(chosen, stats)
        return chosen

    def add_new_edges_to(self, union: BaseGraph, chosen, materialized: Set[int]) -> None:
        """Incrementally materialize ``chosen`` ids into ``union``.

        Skips ids already added (``materialized`` is the caller-held
        record), so the adaptive driver can keep one persistent union
        graph instead of rebuilding it every validity check.
        """
        csr = self.csr
        verts = csr.verts
        for e in chosen:
            if e not in materialized:
                materialized.add(e)
                union.add_edge(
                    verts[csr.edge_u[e]], verts[csr.edge_v[e]], csr.edge_w[e]
                )

    def union_graph(self) -> BaseGraph:
        """Materialize the union spanner as a dict graph (all host vertices)."""
        csr = self.csr
        union = type(self.graph)()
        union.add_vertices(csr.verts)
        verts = csr.verts
        for e in sorted(self.union_ids):
            union.add_edge(verts[csr.edge_u[e]], verts[csr.edge_v[e]], csr.edge_w[e])
        return union


def fault_tolerant_spanner(
    graph: BaseGraph,
    k: float,
    r: int,
    base_algorithm: BaseSpannerAlgorithm = greedy_spanner,
    iterations: Optional[int] = None,
    schedule: str = "theorem",
    constant: float = 16.0,
    seed: RandomLike = None,
    survival_prob: Optional[float] = None,
    method: str = "auto",
    scenarios: Optional[Sequence[FaultScenario]] = None,
) -> ConversionResult:
    """Build an r-fault-tolerant k-spanner via the Theorem 2.1 conversion.

    Parameters
    ----------
    graph:
        Host graph (undirected or directed) with nonnegative weights.
    k:
        Stretch bound of the base construction (the FT guarantee inherits
        it). The paper's size bounds are for odd ``k >= 3`` via the greedy
        base, but the conversion itself is stretch-agnostic.
    r:
        Number of vertex faults to tolerate, ``r >= 0``. ``r = 0`` reduces
        to a single run of the base algorithm.
    base_algorithm:
        Any function ``(graph, k) -> spanner``; defaults to the greedy
        spanner of [ADD+93], which realizes Corollary 2.2.
    iterations:
        Explicit iteration count ``α``; overrides ``schedule``.
    schedule:
        ``"theorem"`` (``r³ ln n``) or ``"light"`` (``r² ln n``), scaled by
        ``constant``.
    seed:
        Randomness for the fault oversampling. Each iteration draws from an
        independently derived stream.
    survival_prob:
        Override the per-vertex survival probability (default: the paper's
        ``1/r``, or ``1/2`` when r = 1). Exposed for the DESIGN.md §5
        oversampling ablation; non-default values void the size guarantee.
    method:
        The shared dispatch switch (:func:`repro.graph.csr.resolve_method`
        vocabulary), threaded through to the base algorithm so every
        per-iteration build runs on the requested kernel path. The
        default greedy base runs on the CSR engine unless
        ``method="dict"`` forces the reference pipeline; custom base
        algorithms receive ``method=`` when their signature accepts it.
    scenarios:
        Optional explicit list of :class:`repro.graph.scenario
        .FaultScenario` values (kind ``"none"``/``"vertex"``) to replay
        instead of sampling: the iteration count becomes
        ``len(scenarios)``, no randomness is consumed, and each
        iteration builds the base spanner of that scenario's survivor
        graph. This is how a sweep replays the exact fault draws of a
        recorded run (see :meth:`repro.session.Session.scenario`).

    Returns
    -------
    :class:`ConversionResult` with the union spanner and per-iteration
    accounting.
    """
    if k < 1:
        raise InvalidStretch(f"stretch must be >= 1, got {k}")
    if r < 0:
        raise FaultToleranceError(f"r must be nonnegative, got {r}")
    if survival_prob is not None and not 0.0 < survival_prob <= 1.0:
        raise FaultToleranceError(
            f"survival_prob must be in (0, 1], got {survival_prob}"
        )
    if method not in ("auto", "csr", "dict", "indexed", "compiled"):
        raise FaultToleranceError(
            f"method must be 'auto', 'csr', 'indexed', 'dict', or "
            f"'compiled', got {method!r}"
        )
    use_engine = base_algorithm is greedy_spanner and method != "dict"
    base_algorithm = base_algorithm_caller(base_algorithm, method)

    if scenarios is not None:
        scenarios = list(scenarios)
        if not scenarios:
            raise FaultToleranceError("scenarios must be a non-empty sequence")
        for sc in scenarios:
            if not isinstance(sc, FaultScenario):
                raise FaultToleranceError(
                    f"scenarios must hold FaultScenario values, got {sc!r}"
                )
            if sc.kind == "edge":
                raise FaultToleranceError(
                    "the vertex-fault conversion got an edge scenario; "
                    "use edge_fault_tolerant_spanner for kind='edge'"
                )

    union = type(graph)()
    union.add_vertices(graph.vertices())
    n = graph.num_vertices

    if r == 0 and scenarios is None:
        base = base_algorithm(graph, k)
        for u, v, w in base.edges():
            union.add_edge(u, v, w)
        stats = ConversionStats(
            iterations=1,
            survivor_sizes=[n],
            iteration_edge_counts=[base.num_edges],
            union_edge_counts=[union.num_edges],
        )
        return ConversionResult(spanner=union, stats=stats)

    if scenarios is not None:
        alpha = len(scenarios)
    else:
        alpha = resolve_iterations(n, r, iterations, schedule, constant)
    p_survive = (
        survival_prob if survival_prob is not None else survival_probability(r)
    )
    rng = ensure_rng(seed)
    stats = ConversionStats(iterations=alpha)
    vertices = list(graph.vertices())

    # The default greedy base runs on the CSR fast path: one host
    # snapshot, per-iteration survivor views, integer edge-id union.
    # Custom base algorithms still get the dict pipeline below.
    engine = _OversamplingEngine(graph, k, method) if use_engine else None

    for i in range(alpha):
        if scenarios is not None:
            if engine is not None:
                engine.scenario_step(scenarios[i], stats)
                continue
            fault = scenarios[i].fault_set()
            survivors = [v for v in vertices if v not in fault]
        else:
            it_rng = derive_rng(rng, i)
            if engine is not None:
                engine.step(it_rng, p_survive, stats)
                continue
            survivors = [v for v in vertices if it_rng.random() < p_survive]
        sub = graph.induced_subgraph(survivors)
        stats.survivor_sizes.append(sub.num_vertices)
        base = base_algorithm(sub, k)
        stats.iteration_edge_counts.append(base.num_edges)
        for u, v, w in base.edges():
            union.add_edge(u, v, w)
        stats.union_edge_counts.append(union.num_edges)

    if engine is not None:
        union = engine.union_graph()
    return ConversionResult(spanner=union, stats=stats)


def fault_tolerant_spanner_until_valid(
    graph: BaseGraph,
    k: float,
    r: int,
    validity_check: Callable[[BaseGraph], bool],
    base_algorithm: BaseSpannerAlgorithm = greedy_spanner,
    batch: int = 8,
    max_iterations: int = 100_000,
    seed: RandomLike = None,
    method: str = "auto",
) -> ConversionResult:
    """Adaptive variant: run iterations until ``validity_check`` accepts.

    Useful for the E1/E3 ablations measuring how many iterations are needed
    *in practice* versus the union-bound-driven ``r^3 log n`` of the
    theorem. ``validity_check`` receives the current union spanner.
    ``method`` is threaded to the base algorithm exactly as in
    :func:`fault_tolerant_spanner`.
    """
    if r < 1:
        raise FaultToleranceError("the adaptive variant requires r >= 1")
    if method not in ("auto", "csr", "dict", "indexed", "compiled"):
        raise FaultToleranceError(
            f"method must be 'auto', 'csr', 'indexed', 'dict', or "
            f"'compiled', got {method!r}"
        )
    use_engine = base_algorithm is greedy_spanner and method != "dict"
    base_algorithm = base_algorithm_caller(base_algorithm, method)
    union = type(graph)()
    union.add_vertices(graph.vertices())
    p_survive = survival_probability(r)
    rng = ensure_rng(seed)
    stats = ConversionStats(iterations=0)
    vertices = list(graph.vertices())
    engine = _OversamplingEngine(graph, k, method) if use_engine else None
    materialized: Set[int] = set()
    done = 0
    while done < max_iterations:
        for _ in range(batch):
            it_rng = derive_rng(rng, done)
            if engine is not None:
                chosen = engine.step(it_rng, p_survive, stats)
                engine.add_new_edges_to(union, chosen, materialized)
                done += 1
                continue
            survivors = [v for v in vertices if it_rng.random() < p_survive]
            sub = graph.induced_subgraph(survivors)
            stats.survivor_sizes.append(sub.num_vertices)
            base = base_algorithm(sub, k)
            stats.iteration_edge_counts.append(base.num_edges)
            for u, v, w in base.edges():
                union.add_edge(u, v, w)
            stats.union_edge_counts.append(union.num_edges)
            done += 1
        if validity_check(union):
            stats.iterations = done
            return ConversionResult(spanner=union, stats=stats)
    raise FaultToleranceError(
        f"no valid r-fault-tolerant spanner after {max_iterations} iterations"
    )


# ---------------------------------------------------------------------------
# Registry hook (see repro.registry / repro.session)
# ---------------------------------------------------------------------------


def resolve_base_algorithm(spec, seed=None) -> BaseSpannerAlgorithm:
    """Resolve a spec's ``base_algorithm`` param to a ``(graph, k)`` callable.

    ``"greedy"`` (the default) maps to :func:`repro.spanners.greedy
    .greedy_spanner` *itself* so the conversion's CSR engine fast path
    stays engaged; any other registered non-fault-tolerant algorithm is
    wrapped so each survivor graph is built with the spec's method and
    the resolved ``seed``.
    """
    name = spec.param("base_algorithm", "greedy")
    if name == "greedy":
        return greedy_spanner
    from ..registry import get_algorithm

    info = get_algorithm(name)
    if info.fault_tolerant or info.distributed:
        raise InvalidSpec(
            f"base_algorithm must be a plain spanner construction, got the "
            f"{'distributed' if info.distributed else 'fault-tolerant'} "
            f"algorithm {name!r}"
        )

    def base(sub: BaseGraph, k: float) -> BaseGraph:
        sub_spec = spec.replace(
            algorithm=name, faults=type(spec.faults).none(),
            params=dict(spec.param("base_params", {})), graph=None, stretch=k,
        )
        artifact, _stats = info.builder(sub, sub_spec, seed)
        return artifact

    return base


def conversion_stats_dict(stats: ConversionStats) -> dict:
    """JSON-able per-iteration accounting for a :class:`BuildReport`."""
    return {
        "iterations": stats.iterations,
        "max_survivor_size": stats.max_survivor_size,
        "survivor_sizes": list(stats.survivor_sizes),
        "iteration_edge_counts": list(stats.iteration_edge_counts),
        "union_edge_counts": list(stats.union_edge_counts),
    }


@register_algorithm(
    "theorem21",
    summary="Theorem 2.1 fault-oversampling conversion (r vertex faults)",
    stretch_domain="inherits the base algorithm's domain (any k >= 1 for greedy)",
    weighted=True,
    directed=True,
    fault_tolerant=True,
    csr_path=True,
    compiled_path=True,
)
def _registry_build(graph: BaseGraph, spec, seed):
    """Spec adapter: ``SpannerSpec -> fault_tolerant_spanner``."""
    from ..spec import require_fault_kind

    require_fault_kind(spec, "vertex", "none")
    result = fault_tolerant_spanner(
        graph,
        spec.stretch,
        spec.faults.r,
        base_algorithm=resolve_base_algorithm(spec, seed),
        iterations=spec.param("iterations"),
        schedule=spec.param("schedule", "theorem"),
        constant=spec.param("constant", 16.0),
        seed=seed,
        survival_prob=spec.param("survival_prob"),
        method=spec.method,
    )
    stats = conversion_stats_dict(result.stats)
    if spec.param("base_algorithm", "greedy") == "greedy":
        # The greedy-base engine runs on the host snapshot at every
        # size (compiled kernel when the C backend serves) unless the
        # dict pipeline was forced.
        stats["resolved_method"] = engine_resolved_method(spec.method)
    return result, stats


#: Accepted keys of the ``until_valid`` params mapping, with defaults.
UNTIL_VALID_DEFAULTS = {
    "check": "sampled",
    "trials": 30,
    "seed": 0,
    "batch": 8,
    "max_iterations": 100_000,
}


def resolve_validity_check(
    spec, graph: BaseGraph
) -> "tuple[Callable[[BaseGraph], bool], dict]":
    """Build the adaptive variant's validity predicate from spec params.

    The predicate is spec-expressible (plain JSON under
    ``params={"until_valid": {...}}``) so sweep plans can carry adaptive
    builds: ``check`` is ``"sampled"`` (Monte Carlo over ``trials`` fault
    sets, deterministic under the check's own ``seed``) or
    ``"exhaustive"``; ``batch`` / ``max_iterations`` tune the loop.
    Returns the predicate plus the fully-resolved knobs dict.
    """
    knobs = dict(UNTIL_VALID_DEFAULTS)
    given = spec.param("until_valid", {})
    if not isinstance(given, dict):
        raise InvalidSpec(
            f"params['until_valid'] must be a mapping, got {given!r}"
        )
    unknown = set(given) - set(knobs)
    if unknown:
        raise InvalidSpec(
            f"params['until_valid'] has unknown keys {sorted(unknown)}; "
            f"expected a subset of {sorted(knobs)}"
        )
    knobs.update(given)
    if knobs["check"] not in ("sampled", "exhaustive"):
        raise InvalidSpec(
            "params['until_valid']['check'] must be 'sampled' or "
            f"'exhaustive', got {knobs['check']!r}"
        )
    for key, minimum in (
        ("trials", 1), ("seed", None), ("batch", 1), ("max_iterations", 1)
    ):
        value = knobs[key]
        if isinstance(value, bool) or not isinstance(value, int):
            raise InvalidSpec(
                f"params['until_valid'][{key!r}] must be an int, got {value!r}"
            )
        if minimum is not None and value < minimum:
            raise InvalidSpec(
                f"params['until_valid'][{key!r}] must be >= {minimum}, "
                f"got {value}"
            )
    k, r = spec.stretch, spec.faults.r
    if knobs["check"] == "exhaustive":
        from .verify import is_fault_tolerant_spanner

        def validity(union: BaseGraph) -> bool:
            return is_fault_tolerant_spanner(union, graph, k, r)

    else:
        from .verify import sampled_fault_check

        trials, check_seed = knobs["trials"], knobs["seed"]

        def validity(union: BaseGraph) -> bool:
            return sampled_fault_check(
                union, graph, k, r, trials=trials, seed=check_seed
            )

    return validity, knobs


@register_algorithm(
    "theorem21-adaptive",
    summary="Theorem 2.1 conversion run until a validity check accepts",
    stretch_domain="inherits the base algorithm's domain (any k >= 1 for greedy)",
    weighted=True,
    directed=True,
    fault_tolerant=True,
    fault_kinds=("vertex",),
    csr_path=True,
    compiled_path=True,
)
def _registry_build_adaptive(graph: BaseGraph, spec, seed):
    """Spec adapter: ``SpannerSpec -> fault_tolerant_spanner_until_valid``.

    The E1/E3 ablations measure how many iterations suffice *in practice*
    versus the theorem's ``r^3 log n`` schedule; registering the adaptive
    driver lets sweep plans carry those points, with the stopping rule
    serialized in ``params={"until_valid": {...}}``.
    """
    from ..spec import require_fault_kind

    require_fault_kind(spec, "vertex")
    validity, knobs = resolve_validity_check(spec, graph)
    result = fault_tolerant_spanner_until_valid(
        graph,
        spec.stretch,
        spec.faults.r,
        validity,
        base_algorithm=resolve_base_algorithm(spec, seed),
        batch=knobs["batch"],
        max_iterations=knobs["max_iterations"],
        seed=seed,
        method=spec.method,
    )
    stats = conversion_stats_dict(result.stats)
    stats["until_valid"] = knobs
    if spec.param("base_algorithm", "greedy") == "greedy":
        stats["resolved_method"] = "dict" if spec.method == "dict" else "csr"
    return result, stats
