"""Fault-tolerance verifiers.

Three verification regimes, matching how the experiments use them:

* :func:`is_fault_tolerant_spanner` — *exhaustive*: enumerate every fault
  set ``F`` with ``|F| <= r`` and check the spanner condition on
  ``H \\ F`` vs ``G \\ F``. Exact but exponential in ``r``; used on small
  instances (E3) and in tests.
* :func:`sampled_fault_check` — *Monte Carlo*: random fault sets; used on
  instances where enumeration is infeasible.
* :func:`is_ft_2spanner` — *exact and polynomial* for the ``k = 2``
  unit-length case, via the paper's Lemma 3.1: ``H`` is an r-fault-tolerant
  2-spanner iff every host edge is kept or covered by ``r + 1`` length-2
  paths. This is the verifier behind the Section 3 rounding loop.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import FaultToleranceError
from ..graph.graph import BaseGraph, DiGraph, Graph
from ..graph.paths import dijkstra
from ..rng import RandomLike, ensure_rng

Vertex = Hashable


def fault_sets(vertices: Sequence[Vertex], r: int) -> Iterator[Tuple[Vertex, ...]]:
    """Enumerate every fault set of size at most ``r`` (including empty).

    The count is ``sum_{i<=r} C(n, i)``; callers are expected to keep
    ``n`` and ``r`` small.
    """
    vertices = list(vertices)
    for size in range(min(r, len(vertices)) + 1):
        yield from itertools.combinations(vertices, size)


def count_fault_sets(n: int, r: int) -> int:
    """Number of fault sets of size at most ``r`` on ``n`` vertices."""
    return sum(math.comb(n, i) for i in range(min(r, n) + 1))


def _spanner_holds_after_faults(
    spanner: BaseGraph, graph: BaseGraph, k: float, faults: Iterable[Vertex]
) -> bool:
    """Check the k-spanner condition of ``H \\ F`` against ``G \\ F``.

    Per the paper, it suffices to verify the condition on edges of
    ``G \\ F``: for every surviving edge (u, v) we need
    ``d_{H\\F}(u, v) <= k * d_{G\\F}(u, v)``. Note the right-hand side is
    the *post-fault* distance, which may be smaller than the edge weight is
    not possible (weights nonnegative, d <= w always; d < w possible).
    """
    fault_set = set(faults)
    g_f = graph.without_vertices(fault_set)
    h_f = spanner.without_vertices(fault_set)
    slack = 1 + 1e-9
    for u in g_f.vertices():
        out = (
            dict(g_f.successor_items(u))
            if g_f.directed
            else dict(g_f.neighbor_items(u))
        )
        if not out:
            continue
        dist_g = dijkstra(g_f, u)
        dist_h = dijkstra(h_f, u)
        for v in out:
            bound = k * dist_g[v]
            if dist_h.get(v, math.inf) > bound * slack:
                return False
    return True


def is_fault_tolerant_spanner(
    spanner: BaseGraph,
    graph: BaseGraph,
    k: float,
    r: int,
    scenarios: Optional[Iterable] = None,
    *,
    fault_sets_to_check: Optional[Iterable[Iterable[Vertex]]] = None,
) -> bool:
    """Exhaustively verify that ``spanner`` is an r-fault-tolerant k-spanner.

    With ``scenarios`` given — a sequence of
    :class:`repro.graph.scenario.FaultScenario` values (kind
    ``"none"``/``"vertex"``) or raw vertex iterables — only those fault
    sets are verified (used by the Monte Carlo wrapper and by targeted
    tests); otherwise all ``sum_{i<=r} C(n, i)`` fault sets are
    enumerated. ``fault_sets_to_check`` is the deprecated name for the
    same parameter and warns once per call site.
    """
    if r < 0:
        raise FaultToleranceError(f"r must be nonnegative, got {r}")
    if fault_sets_to_check is not None:
        import warnings

        warnings.warn(
            "fault_sets_to_check is deprecated; pass scenarios= "
            "(FaultScenario values or raw vertex iterables)",
            DeprecationWarning,
            stacklevel=2,
        )
        if scenarios is None:
            scenarios = fault_sets_to_check
    if scenarios is None:
        to_check: Iterable = fault_sets(list(graph.vertices()), r)
    else:
        from ..graph.scenario import scenario_fault_sets

        to_check = scenario_fault_sets(scenarios)
    for faults in to_check:
        if not _spanner_holds_after_faults(spanner, graph, k, faults):
            return False
    return True


def first_violating_fault_set(
    spanner: BaseGraph, graph: BaseGraph, k: float, r: int
) -> Optional[Tuple[Vertex, ...]]:
    """Return a fault set witnessing non-tolerance, or None if valid."""
    for faults in fault_sets(list(graph.vertices()), r):
        if not _spanner_holds_after_faults(spanner, graph, k, faults):
            return tuple(faults)
    return None


def sampled_fault_check(
    spanner: BaseGraph,
    graph: BaseGraph,
    k: float,
    r: int,
    trials: int = 100,
    seed: RandomLike = None,
) -> bool:
    """Monte Carlo fault-tolerance check over ``trials`` random fault sets.

    Each trial draws a fault-set size uniformly from ``{0, ..., r}`` and
    then a uniform subset of that size. A False result is a certified
    counterexample; True is only statistical evidence.
    """
    rng = ensure_rng(seed)
    vertices = list(graph.vertices())
    if not vertices:
        return True
    for _ in range(trials):
        size = rng.randint(0, min(r, len(vertices)))
        faults = rng.sample(vertices, size)
        if not _spanner_holds_after_faults(spanner, graph, k, faults):
            return False
    return True


# ---------------------------------------------------------------------------
# Lemma 3.1: exact polynomial verification for k = 2, unit lengths
# ---------------------------------------------------------------------------


def count_two_paths(spanner: BaseGraph, u: Vertex, v: Vertex) -> int:
    """Number of length-2 paths from ``u`` to ``v`` inside ``spanner``.

    For digraphs this counts midpoints ``z`` with arcs ``(u, z)`` and
    ``(z, v)``; for undirected graphs, common neighbours of ``u`` and ``v``.
    """
    if not spanner.has_vertex(u) or not spanner.has_vertex(v):
        return 0
    if spanner.directed:
        outs = set(spanner.successors(u))
        ins = set(spanner.predecessors(v))
        mids = outs & ins
    else:
        mids = set(spanner.neighbors(u)) & set(spanner.neighbors(v))
    mids.discard(u)
    mids.discard(v)
    return len(mids)


def edge_satisfied(spanner: BaseGraph, u: Vertex, v: Vertex, r: int) -> bool:
    """Lemma 3.1 per-edge condition: edge kept, or ``r + 1`` two-paths."""
    if spanner.has_edge(u, v):
        return True
    return count_two_paths(spanner, u, v) >= r + 1


def unsatisfied_edges(
    spanner: BaseGraph, graph: BaseGraph, r: int
) -> List[Tuple[Vertex, Vertex]]:
    """Host edges violating the Lemma 3.1 condition in ``spanner``.

    The spanner's neighbourhood sets are materialized once up front, so
    the per-edge two-path count is a single C-level set intersection
    instead of rebuilding both endpoint sets for every host edge.
    """
    need = r + 1
    if spanner.directed:
        outs = {v: set(spanner.successors(v)) for v in spanner.vertices()}
        ins = {v: set(spanner.predecessors(v)) for v in spanner.vertices()}
    else:
        outs = ins = {v: set(spanner.neighbors(v)) for v in spanner.vertices()}
    empty: set = set()
    bad: List[Tuple[Vertex, Vertex]] = []
    for u, v, _w in graph.edges():
        out_u = outs.get(u, empty)
        if v in out_u:
            continue  # edge kept
        mids = out_u & ins.get(v, empty)
        mids.discard(u)
        mids.discard(v)
        if len(mids) < need:
            bad.append((u, v))
    return bad


def is_ft_2spanner(spanner: BaseGraph, graph: BaseGraph, r: int) -> bool:
    """Exact r-fault-tolerant 2-spanner check via Lemma 3.1.

    Assumes unit edge lengths (the Section 3 setting — costs may be
    arbitrary but lengths are 1). Runs in ``O(m · Δ)`` time, polynomial in
    everything, unlike the exhaustive verifier.
    """
    if r < 0:
        raise FaultToleranceError(f"r must be nonnegative, got {r}")
    return not unsatisfied_edges(spanner, graph, r)


class IncrementalFT2Verifier:
    """Incremental Lemma 3.1 state for spanners *and hosts* that mutate.

    The Section 3 rounding/repair loops repeatedly ask "is the current
    candidate an r-fault-tolerant 2-spanner, and which host edges still
    violate?" while adding edges one at a time. Recomputing
    :func:`unsatisfied_edges` costs O(m · Δ) per call; this structure
    maintains, for every host edge, its kept-flag and its count of
    length-2 spanner paths, and updates them in O(Δ) per
    :meth:`add_edge` — adding spanner edge ``(u, v)`` can only create
    two-paths that use it as one of their two hops, so scanning the
    current neighbourhoods of ``u`` and ``v`` finds every affected pair.
    :meth:`remove_edge` is the exact inverse (the serving layer's damage
    detector), and the ``add_host_* / remove_host_*`` methods mutate the
    *host* side in the same O(Δ) budget, which is what lets
    :class:`repro.serve.SpannerService` keep a live validity verdict
    under an operation stream without ever rescanning the graph.

    On a static host, ``unsatisfied()`` returns violations in host
    ``edges()`` order, matching :func:`unsatisfied_edges` on the
    equivalent static spanner. Once the host mutates, the order is host
    edge *insertion* order (removed edges vanish; a re-added edge moves
    to the end) — still deterministic, and still equal as a set to the
    static recomputation on the equivalent graphs.
    """

    def __init__(self, graph: BaseGraph, r: int, spanner: Optional[BaseGraph] = None):
        if r < 0:
            raise FaultToleranceError(f"r must be nonnegative, got {r}")
        self.graph = graph
        self.r = r
        self._need = r + 1
        self._directed = graph.directed
        self._host_edges: List[Tuple[Vertex, Vertex]] = [
            (u, v) for u, v, _w in graph.edges()
        ]
        # Ordered endpoint pair -> position in the host edge list. Removed
        # host edges leave a tombstone (``_alive[pos] = False``) so every
        # other position — and with it ``unsatisfied()`` order — is stable.
        self._pos: Dict[Tuple[Vertex, Vertex], int] = {}
        for pos, (u, v) in enumerate(self._host_edges):
            self._pos[(u, v)] = pos
            if not self._directed:
                self._pos[(v, u)] = pos
        self._counts = [0] * len(self._host_edges)
        self._kept = [False] * len(self._host_edges)
        self._alive = [True] * len(self._host_edges)
        self._num_alive = len(self._host_edges)
        self._unsat = set(range(len(self._host_edges))) if self._need > 0 else set()
        self._out: Dict[Vertex, set] = {v: set() for v in graph.vertices()}
        self._in: Dict[Vertex, set] = (
            {v: set() for v in graph.vertices()} if self._directed else self._out
        )
        # Host adjacency mirrors, so vertex removal is O(degree) instead of
        # a scan over the whole host edge table.
        self._host_out: Dict[Vertex, set] = {v: set() for v in graph.vertices()}
        self._host_in: Dict[Vertex, set] = (
            {v: set() for v in graph.vertices()}
            if self._directed
            else self._host_out
        )
        for u, v in self._host_edges:
            self._host_out[u].add(v)
            self._host_in[v].add(u)
        if spanner is not None:
            for u, v, _w in spanner.edges():
                self.add_edge(u, v)

    def _bump(self, pos: Optional[int]) -> None:
        if pos is None:
            return
        counts = self._counts
        counts[pos] += 1
        if counts[pos] >= self._need:
            self._unsat.discard(pos)

    def _drop(self, pos: Optional[int]) -> None:
        if pos is None:
            return
        counts = self._counts
        counts[pos] -= 1
        if counts[pos] < self._need and not self._kept[pos]:
            self._unsat.add(pos)

    # -- spanner mutations ---------------------------------------------

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add spanner edge/arc ``(u, v)``; no-op if already present.

        Endpoints must be host vertices (a spanner never adds vertices).
        """
        out_u = self._out[u]
        if v in out_u:
            return
        pos = self._pos.get((u, v))
        if pos is not None:
            self._kept[pos] = True
            self._unsat.discard(pos)
        get = self._pos.get
        # New two-paths u -> v -> x (v is the midpoint for host pair (u, x)).
        for x in self._out[v]:
            self._bump(get((u, x)))
        # New two-paths x -> u -> v (u is the midpoint for host pair (x, v)).
        for x in self._in[u]:
            self._bump(get((x, v)))
        out_u.add(v)
        self._in[v].add(u)

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove spanner edge/arc ``(u, v)`` — the inverse of :meth:`add_edge`.

        Every host pair that used the edge as one hop of a two-path loses
        one path; the pair itself loses its kept-flag. Newly violating
        host edges surface in :meth:`unsatisfied` immediately, which is
        the O(Δ) damage detection the serving layer's repair policy runs
        on.
        """
        out_u = self._out.get(u)
        if out_u is None or v not in out_u:
            raise FaultToleranceError(
                f"({u!r}, {v!r}) is not a spanner edge"
            )
        out_u.discard(v)
        self._in[v].discard(u)
        pos = self._pos.get((u, v))
        if pos is not None:
            self._kept[pos] = False
            if self._counts[pos] < self._need:
                self._unsat.add(pos)
        get = self._pos.get
        # Lost two-paths u -> v -> x and x -> u -> v, mirroring add_edge.
        for x in self._out[v]:
            self._drop(get((u, x)))
        for x in self._in[u]:
            self._drop(get((x, v)))

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Whether ``(u, v)`` is currently a spanner edge/arc."""
        out_u = self._out.get(u)
        return out_u is not None and v in out_u

    # -- host mutations ------------------------------------------------

    def add_host_vertex(self, v: Vertex) -> None:
        """Add an (isolated) host vertex; no-op if already present."""
        if v in self._out:
            return
        self._out[v] = set()
        self._host_out[v] = set()
        if self._directed:
            self._in[v] = set()
            self._host_in[v] = set()

    def add_host_edge(self, u: Vertex, v: Vertex) -> None:
        """Register a new host edge/arc; endpoints are added if missing.

        The edge's two-path count is computed once from the current
        spanner neighbourhoods (one set intersection), after which it is
        maintained incrementally like every other host edge. No-op if the
        edge is already live.
        """
        self.add_host_vertex(u)
        self.add_host_vertex(v)
        if v in self._host_out[u]:
            return
        pos = len(self._host_edges)
        self._host_edges.append((u, v))
        self._pos[(u, v)] = pos
        if not self._directed:
            self._pos[(v, u)] = pos
        self._host_out[u].add(v)
        self._host_in[v].add(u)
        kept = v in self._out[u]
        mids = self._out[u] & self._in[v]
        mids.discard(u)
        mids.discard(v)
        count = len(mids)
        self._counts.append(count)
        self._kept.append(kept)
        self._alive.append(True)
        self._num_alive += 1
        if not kept and count < self._need:
            self._unsat.add(pos)

    def remove_host_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove host edge/arc ``(u, v)``.

        A kept spanner edge is removed first (a spanner is a subgraph of
        its host), so the damage it causes to *other* host pairs is
        accounted before the pair itself stops being a demand.
        """
        pos = self._pos.get((u, v))
        if pos is None:
            raise FaultToleranceError(f"({u!r}, {v!r}) is not a host edge")
        if v in self._out.get(u, ()):
            self.remove_edge(u, v)
        a, b = self._host_edges[pos]
        del self._pos[(a, b)]
        if not self._directed:
            self._pos.pop((b, a), None)
        self._alive[pos] = False
        self._num_alive -= 1
        self._unsat.discard(pos)
        self._host_out[u].discard(v)
        self._host_in[v].discard(u)

    def remove_host_vertex(self, v: Vertex) -> None:
        """Remove a host vertex with all incident host and spanner edges.

        Spanner edges through ``v`` go first (each one's removal updates
        the two-path counts of the pairs it served as a midpoint hop),
        then the incident host edges stop being demands, then the vertex
        itself disappears. O(degree · Δ) total.
        """
        if v not in self._out:
            raise FaultToleranceError(f"{v!r} is not a host vertex")
        for x in list(self._out[v]):
            self.remove_edge(v, x)
        if self._directed:
            for x in list(self._in[v]):
                self.remove_edge(x, v)
        for x in list(self._host_out[v]):
            self.remove_host_edge(v, x)
        if self._directed:
            for x in list(self._host_in[v]):
                self.remove_host_edge(x, v)
        del self._out[v]
        del self._host_out[v]
        if self._directed:
            del self._in[v]
            del self._host_in[v]

    def has_host_vertex(self, v: Vertex) -> bool:
        """Whether ``v`` is currently a host vertex."""
        return v in self._out

    def has_host_edge(self, u: Vertex, v: Vertex) -> bool:
        """Whether ``(u, v)`` is currently a live host edge/arc."""
        return (u, v) in self._pos

    @property
    def num_host_edges(self) -> int:
        """Number of live host edges (tombstones excluded)."""
        return self._num_alive

    def host_edges(self) -> Iterator[Tuple[Vertex, Vertex]]:
        """Live host edges in insertion order (the ``unsatisfied`` order)."""
        alive = self._alive
        return (
            pair
            for pos, pair in enumerate(self._host_edges)
            if alive[pos]
        )

    # -- queries -------------------------------------------------------

    def count_two_paths(self, u: Vertex, v: Vertex) -> int:
        """Current number of length-2 paths for host edge ``(u, v)``."""
        pos = self._pos.get((u, v))
        if pos is None:
            raise FaultToleranceError(f"({u!r}, {v!r}) is not a host edge")
        return self._counts[pos]

    @property
    def num_unsatisfied(self) -> int:
        return len(self._unsat)

    def is_valid(self) -> bool:
        """True iff the accumulated spanner passes Lemma 3.1 for ``r``."""
        return not self._unsat

    def unsatisfied(self) -> List[Tuple[Vertex, Vertex]]:
        """Violating host edges, in host edge insertion order."""
        host = self._host_edges
        return [host[pos] for pos in sorted(self._unsat)]
