"""Per-node programming interface for the LOCAL-model simulator.

An algorithm is written as a subclass of :class:`NodeAlgorithm`; the
simulator instantiates one object per vertex. Each synchronous round the
node receives the messages sent to it in the previous round and may send
one message per incident edge (of unbounded size — this is the LOCAL
model [Pel00]). A node that calls :meth:`NodeContext.halt` stops
participating; the simulation ends when every node has halted.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Mapping, Optional, Tuple

from ..errors import ProtocolViolation

Vertex = Hashable


class NodeContext:
    """Simulator-provided view a node algorithm sees each round."""

    def __init__(self, node: Vertex, neighbors: Tuple[Vertex, ...], rng: random.Random):
        self.node = node
        self.neighbors = neighbors
        self.rng = rng
        self.round = 0
        #: Free-form algorithm state; survives across rounds.
        self.state: Dict[str, Any] = {}
        self._neighbor_set = set(neighbors)
        self._outbox: Dict[Vertex, Any] = {}
        self._halted = False
        self._result: Any = None

    # -- sending ---------------------------------------------------------

    def send(self, neighbor: Vertex, content: Any) -> None:
        """Queue a message to ``neighbor`` for delivery next round.

        At most one message per neighbour per round (send again to
        overwrite would be ambiguous, so it raises instead).
        """
        if neighbor not in self._neighbor_set:
            raise ProtocolViolation(
                f"node {self.node!r} tried to message non-neighbor {neighbor!r}"
            )
        if neighbor in self._outbox:
            raise ProtocolViolation(
                f"node {self.node!r} sent twice to {neighbor!r} in one round"
            )
        self._outbox[neighbor] = content

    def broadcast(self, content: Any) -> None:
        """Send the same content to every neighbour."""
        for neighbor in self.neighbors:
            self.send(neighbor, content)

    # -- lifecycle --------------------------------------------------------

    def halt(self, result: Any = None) -> None:
        """Stop participating; ``result`` is reported by the simulation."""
        self._halted = True
        if result is not None:
            self._result = result

    @property
    def halted(self) -> bool:
        return self._halted

    @property
    def result(self) -> Any:
        return self._result

    # -- simulator internals ----------------------------------------------

    def _drain_outbox(self) -> Dict[Vertex, Any]:
        outbox = self._outbox
        self._outbox = {}
        return outbox


class NodeAlgorithm:
    """Base class for LOCAL-model node programs.

    Subclasses override :meth:`on_start` (round 0, no inbox) and
    :meth:`on_round` (every later round, with the inbox of messages sent
    in the previous round, as a ``{sender: content}`` mapping). The
    inbox is a plain dict on the reference simulator path and a
    read-only dict-shaped view on the array-engine path (see
    :mod:`repro.distsim.engine`); on both, its items are stable after
    the round, but keyed access (``inbox[sender]`` / ``.get`` / ``in``)
    is only guaranteed during the ``on_round`` call that received it —
    the engine view raises :class:`~repro.errors.ProtocolViolation` on
    later keyed access rather than risk a silent divergence.
    """

    def on_start(self, ctx: NodeContext) -> None:
        """Round 0 hook: initialize state, send first messages."""

    def on_round(self, ctx: NodeContext, inbox: Mapping[Vertex, Any]) -> None:
        """Per-round hook; call ``ctx.halt()`` when done."""
        raise NotImplementedError
