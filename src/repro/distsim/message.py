"""Message envelope for the LOCAL-model simulator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

Vertex = Hashable


@dataclass(frozen=True)
class Message:
    """A message in flight: sender, receiver, and arbitrary content.

    The LOCAL model places no bound on message size, so ``content`` may be
    any Python object (whole subgraphs are legal, and Algorithm 2's cluster
    gather sends exactly that).
    """

    sender: Vertex
    receiver: Vertex
    content: Any
