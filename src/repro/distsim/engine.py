"""Array-backed round engine for the LOCAL-model simulator.

The reference loop in :mod:`repro.distsim.runtime` re-materializes a
``{vertex: {sender: content}}`` dict of dicts every round — per-round
allocation O(n) plus dict inserts per message on both the send and the
drain side. This engine pins node ids to CSR indices via
:func:`repro.graph.csr.snapshot` and routes every message through the
half-edge slot that carries it:

* **sending** is one scatter over the sender's contiguous out-slot range
  (`indptr[v]..indptr[v+1]`): a generation stamp per slot is the whole
  double-send protocol check, and a broadcast appends one *shared*
  ``(sender, content)`` pair to its receivers' delivery buckets — no
  per-receiver envelope is allocated;
* **delivery** is free — swapping the two buffers publishes the round;
  each node reads its bucket through an :class:`InboxView` (senders
  already in dict-loop drain order), so no per-vertex inbox dict is
  ever copied and a quiet round costs O(active), not O(m);
* **quiescence and message accounting** are batched: an active-node
  counter maintained by ``halt`` replaces the per-round ``any()`` sweep,
  and each swap counts the round's messages as one reduction over the
  bucket lengths instead of a counter bump per send.

The engine is *pinned equivalent* to the dict loop: same RNG stream
(one :func:`repro.rng.derive_rng` draw per vertex, in host vertex
order), same round/message counts, same results/states, and the same
inbox iteration order — nodes run in ascending vertex index and each
round touches a receiver's bucket at most once per sender, so bucket
order equals the order the reference loop drains outboxes in.
Algorithms that iterate their inbox therefore observe identical
sequences; ``tests/test_distsim.py`` enforces this property-style,
including trace-event equality.
"""

from __future__ import annotations

from collections.abc import Mapping
from types import MappingProxyType
from typing import Any, Dict, Hashable, Iterator, List, Optional, Tuple

from ..errors import DistributedError, ProtocolViolation
from ..graph.csr import snapshot
from ..graph.graph import BaseGraph
from ..rng import derive_rng
from .node import NodeAlgorithm, NodeContext

Vertex = Hashable

#: Shared inbox for nodes with no mail this round — read-only and empty,
#: so one instance serves every quiet node without an allocation.
_EMPTY_INBOX: Mapping = MappingProxyType({})


class InboxView(Mapping):
    """Read-only mapping ``{sender: content}`` over a delivery bucket.

    Backed by the engine's current-round bucket of ``(sender, content)``
    pairs; iteration order is ascending sender index, matching the dict
    loop's outbox-drain order, so order-sensitive consumers see the same
    sequence on both paths. The bucket is never mutated after its round
    is published (each round writes into fresh buckets), so a view an
    algorithm stashes keeps its contents — like a stashed dict-path
    inbox. Only keyed access (``inbox[sender]`` / ``.get`` / ``in``)
    relies on the engine's live message slots, so it is guaranteed only
    during the round; afterwards it raises :class:`ProtocolViolation`
    (which ``.get``/``in`` do *not* swallow — they only catch
    ``KeyError``), so stale random access fails loudly instead of
    silently diverging from the dict path.
    """

    __slots__ = ("_engine", "_vidx", "_gen", "_pairs")

    def __init__(self, engine: "ArrayRoundEngine", vidx: int, gen: int):
        self._engine = engine
        self._vidx = vidx
        self._gen = gen
        self._pairs = engine.cur_inbox[vidx]

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[Vertex]:
        for sender, _content in self._pairs:
            yield sender

    def __getitem__(self, sender: Vertex) -> Any:
        eng = self._engine
        if eng.gen - 1 != self._gen:
            raise ProtocolViolation(
                "keyed inbox access outside the round that received it "
                "(iteration/items()/len() of a stashed inbox stay valid; "
                "inbox[sender]/.get/in do not)"
            )
        s = eng.index.get(sender)
        if s is None:
            raise KeyError(sender)
        pos = eng.out_pos(s).get(eng.verts[self._vidx])
        if pos is None or eng.cur_stamp[pos] != self._gen:
            raise KeyError(sender)
        return eng.cur_content[pos]

    # Dict-shaped fast paths (the Mapping mixins would re-run __getitem__
    # per key; algorithms iterate these in their hot loops).

    def items(self) -> List[Tuple[Vertex, Any]]:
        return list(self._pairs)

    def values(self) -> List[Any]:
        return [content for _sender, content in self._pairs]


class EngineNodeContext(NodeContext):
    """A :class:`NodeContext` whose sends scatter into the engine buffers."""

    def __init__(
        self,
        node: Vertex,
        neighbors: Tuple[Vertex, ...],
        rng,
        engine: "ArrayRoundEngine",
        vidx: int,
    ):
        # Deliberately not super().__init__: the base initializer builds
        # a per-node neighbor set and outbox dict that only the dict
        # loop's send path consults — on the engine path the out-slot
        # table is the membership check and the buffers are the outbox,
        # so those O(deg) structures would be dead weight per node.
        self.node = node
        self.neighbors = neighbors
        self.rng = rng
        self.round = 0
        self.state = {}
        self._halted = False
        self._result = None
        self._engine = engine
        self._vidx = vidx
        self._lo = engine.csr.indptr[vidx]
        self._hi = engine.csr.indptr[vidx + 1]
        self._pos_of: Optional[Dict[Vertex, int]] = None

    def send(self, neighbor: Vertex, content: Any) -> None:
        pos_of = self._pos_of
        if pos_of is None:
            pos_of = self._pos_of = self._engine.out_pos(self._vidx)
        pos = pos_of.get(neighbor)
        if pos is None:
            raise ProtocolViolation(
                f"node {self.node!r} tried to message non-neighbor {neighbor!r}"
            )
        eng = self._engine
        if eng.nxt_stamp[pos] == eng.gen:
            raise ProtocolViolation(
                f"node {self.node!r} sent twice to {neighbor!r} in one round"
            )
        eng.nxt_stamp[pos] = eng.gen
        eng.nxt_content[pos] = content
        eng.nxt_inbox[eng.nbr[pos]].append((self.node, content))

    def broadcast(self, content: Any) -> None:
        # One pass over the sender's contiguous out-slot range, sharing a
        # single (sender, content) pair across all receivers. Broadcast
        # is the protocol's hot primitive; the iteration order here
        # cannot influence delivery order because each receiver's bucket
        # is touched exactly once per sender per round.
        eng = self._engine
        gen = eng.gen
        stamp, payload = eng.nxt_stamp, eng.nxt_content
        nbr, inbox = eng.nbr, eng.nxt_inbox
        pair = (self.node, content)
        for pos in range(self._lo, self._hi):
            if stamp[pos] == gen:
                raise ProtocolViolation(
                    f"node {self.node!r} sent twice to "
                    f"{eng.verts[nbr[pos]]!r} in one round"
                )
            stamp[pos] = gen
            payload[pos] = content
            inbox[nbr[pos]].append(pair)

    def halt(self, result: Any = None) -> None:
        if not self._halted:
            self._engine.active -= 1
        super().halt(result)


class ArrayRoundEngine:
    """Executes a node algorithm over a CSR snapshot of the comm graph.

    Construction consumes the RNG stream exactly like the dict loop:
    one derived child generator per vertex, in host vertex order, so a
    caller-supplied parent generator is left in an identical state by
    either path.
    """

    def __init__(self, graph: BaseGraph, factory, rng, tracer=None) -> None:
        csr = snapshot(graph)
        self.csr = csr
        self.verts = csr.verts
        self.index = csr.index
        self.nbr = csr.nbr
        self.tracer = tracer
        n = csr.num_vertices
        m_half = len(csr.nbr)

        # Per-vertex {neighbor vertex: out half-edge position} routing
        # tables, built lazily by out_pos() (only targeted `send` and
        # inbox random access need them — broadcast walks the CSR range
        # directly) and cached on the immutable snapshot so repeated
        # simulations over one communication graph share them.
        if csr._engine_tables is None:
            csr._engine_tables = [None] * n
        self._out_pos: List[Optional[Dict[Vertex, int]]] = csr._engine_tables

        # Double-buffered message state: nodes read `cur`, write `nxt`;
        # a buffer swap publishes a round. Each buffer holds a
        # generation stamp and content per half-edge slot (double-send
        # detection and O(1) inbox random access) plus per-receiver
        # buckets of (sender, content) pairs in ascending-sender order
        # (fresh per round — published buckets are never touched again).
        self.cur_stamp = [-1] * m_half
        self.cur_content: List[Any] = [None] * m_half
        self.nxt_stamp = [-1] * m_half
        self.nxt_content: List[Any] = [None] * m_half
        self.cur_inbox: List[List[Tuple[Vertex, Any]]] = [[] for _ in range(n)]
        self.nxt_inbox: List[List[Tuple[Vertex, Any]]] = [[] for _ in range(n)]
        self.gen = 0
        self.sent = 0
        self.active = n

        # Contexts mirror the dict loop exactly: neighbor tuples come
        # from the graph's adjacency (not CSR fill order), and each
        # vertex draws one derived child stream in host vertex order.
        contexts: List[EngineNodeContext] = []
        algorithms: List[NodeAlgorithm] = []
        for i, v in enumerate(self.verts):
            ctx = EngineNodeContext(
                node=v,
                neighbors=tuple(graph.neighbors(v)),
                rng=derive_rng(rng, i),
                engine=self,
                vidx=i,
            )
            contexts.append(ctx)
            algorithms.append(factory(v))
        self.contexts = contexts
        self.algorithms = algorithms

    def out_pos(self, vidx: int) -> Dict[Vertex, int]:
        """``{neighbor vertex: half-edge position}`` of vertex ``vidx``."""
        table = self._out_pos[vidx]
        if table is None:
            csr = self.csr
            verts, nbr = csr.verts, csr.nbr
            table = {
                verts[nbr[p]]: p
                for p in range(csr.indptr[vidx], csr.indptr[vidx + 1])
            }
            self._out_pos[vidx] = table
        return table

    # -- round machinery -------------------------------------------------

    def _swap(self) -> None:
        """Publish the round's sends and open a fresh write buffer.

        Message accounting happens here as one batched reduction over
        the outgoing buckets (instead of a counter bump per send). The
        next round writes into *fresh* buckets — published buckets are
        never mutated, so an :class:`InboxView` outlives its round with
        its contents intact (matching what a stashed dict-path inbox
        observes).
        """
        self.sent += sum(map(len, self.nxt_inbox))
        self.cur_inbox = self.nxt_inbox
        self.nxt_inbox = [[] for _ in range(len(self.verts))]
        self.cur_stamp, self.nxt_stamp = self.nxt_stamp, self.cur_stamp
        self.cur_content, self.nxt_content = self.nxt_content, self.cur_content
        self.gen += 1

    def _materialize_inboxes(self) -> Dict[Vertex, Dict[Vertex, Any]]:
        """Per-vertex inbox dicts for the tracer (only built when tracing)."""
        cur_inbox = self.cur_inbox
        return {
            v: dict(cur_inbox[i]) for i, v in enumerate(self.verts)
        }

    def run(self, max_rounds: int = 10_000):
        """Execute rounds until every node halts (or ``max_rounds``)."""
        from .runtime import SimulationResult

        contexts = self.contexts
        algorithms = self.algorithms
        n = len(contexts)
        self.sent = 0  # like the dict loop, each run() counts afresh

        # Round 0: on_start (sends land in the write buffer, stamp 0).
        for i in range(n):
            algorithms[i].on_start(contexts[i])
        rounds = 0
        self._swap()

        while self.active:
            if rounds >= max_rounds:
                raise DistributedError(
                    f"simulation exceeded {max_rounds} rounds without halting"
                )
            rounds += 1
            cur_gen = self.gen - 1  # generation now being delivered
            tracer = self.tracer
            previously_halted = (
                {ctx.node: ctx.halted for ctx in contexts}
                if tracer is not None
                else None
            )
            cur_inbox = self.cur_inbox
            for i in range(n):
                ctx = contexts[i]
                if ctx._halted:
                    continue
                ctx.round = rounds
                algorithms[i].on_round(
                    ctx,
                    InboxView(self, i, cur_gen) if cur_inbox[i] else _EMPTY_INBOX,
                )
            if tracer is not None:
                tracer.observe_round(
                    rounds,
                    self._materialize_inboxes(),
                    {ctx.node: ctx.halted for ctx in contexts},
                    previously_halted,
                )
            self._swap()

        return SimulationResult(
            rounds=rounds,
            messages_sent=self.sent,
            results={ctx.node: ctx.result for ctx in contexts},
            states={ctx.node: ctx.state for ctx in contexts},
        )


__all__ = ["ArrayRoundEngine", "EngineNodeContext", "InboxView"]
