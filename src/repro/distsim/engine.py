"""Array-backed round engine for the LOCAL-model simulator.

The reference loop in :mod:`repro.distsim.runtime` re-materializes a
``{vertex: {sender: content}}`` dict of dicts every round — per-round
allocation O(n) plus dict inserts per message on both the send and the
drain side. This engine pins node ids to CSR indices via
:func:`repro.graph.csr.snapshot` and routes every message through the
half-edge slot that carries it:

* **sending** is one scatter over the sender's precomputed receiver
  buckets: a broadcast appends one *shared* ``(sender, content)`` pair
  per receiver — no per-receiver envelope, stamp, or payload slot is
  written, and the bucket list objects themselves are cached on the
  context, so the hot loop is a bare ``append`` per message. The
  double-send protocol check is two per-context round markers (a
  broadcast covers every alive neighbor, so any same-round resend
  collides by construction); only *targeted* ``send`` falls back to a
  per-slot stamp array, allocated lazily the first time a run sends;
* **delivery** is free — buckets are persistent append-only logs, and
  publishing a round just advances each receiver's ``[lo, hi)`` read
  window to the current bucket length. Each node reads its window
  through an :class:`InboxView` (senders already in dict-loop drain
  order), so no per-vertex inbox dict is ever copied and a quiet round
  costs O(active), not O(m). Published windows are never mutated
  (appends only extend the log), so a stashed view keeps its contents;
  the log is retained for the run — fine for the LOCAL protocols here,
  which run O(k) / O(log n) rounds. Keyed access (``inbox[sender]``)
  builds one lazy dict over the window on first use;
* **quiescence and message accounting** are batched: an active-node
  counter maintained by ``halt`` replaces the per-round ``any()`` sweep,
  and each publish counts the round's messages as one reduction over
  the window widths instead of a counter bump per send.

The engine is *pinned equivalent* to the dict loop: same RNG stream
(one :func:`repro.rng.derive_seed` parent draw per vertex, in host
vertex order; the child generator itself is built lazily on first
``ctx.rng`` access, so programs that never draw skip the Mersenne
Twister construction without perturbing any stream), same
round/message counts, same results/states, and the same
inbox iteration order — nodes run in ascending vertex index and each
round touches a receiver's bucket at most once per sender, so bucket
order equals the order the reference loop drains outboxes in.
Algorithms that iterate their inbox therefore observe identical
sequences; ``tests/test_distsim.py`` enforces this property-style,
including trace-event equality.
"""

from __future__ import annotations

from collections.abc import Mapping
from random import Random as _Random
from types import MappingProxyType
from typing import Any, Dict, Hashable, Iterator, List, Optional, Tuple

from ..errors import DistributedError, ProtocolViolation
from ..graph.csr import SurvivorView, _np, snapshot
from ..graph.graph import BaseGraph
from ..rng import derive_seed
from .node import NodeAlgorithm, NodeContext

Vertex = Hashable

#: Shared inbox for nodes with no mail this round — read-only and empty,
#: so one instance serves every quiet node without an allocation.
_EMPTY_INBOX: Mapping = MappingProxyType({})


class InboxView(Mapping):
    """Read-only mapping ``{sender: content}`` over a delivery bucket.

    Backed by a ``[lo, hi)`` window of the receiver's persistent delivery
    log of ``(sender, content)`` pairs; iteration order is ascending
    sender index, matching the dict loop's outbox-drain order, so
    order-sensitive consumers see the same sequence on both paths. A
    published window is never mutated (later rounds only append past
    ``hi``), so a view an algorithm stashes keeps its contents — like a
    stashed dict-path inbox. Keyed access (``inbox[sender]`` / ``.get``
    / ``in``) goes through one lazily built ``{sender: content}`` dict
    over the window; it is part of the engine's per-round contract, so
    outside the round that received it the view raises
    :class:`ProtocolViolation` (which ``.get``/``in`` do *not* swallow —
    they only catch ``KeyError``), so stale random access fails loudly
    instead of silently diverging from the dict path.
    """

    __slots__ = ("_engine", "_gen", "_log", "_lo", "_hi", "_map")

    def __init__(self, engine: "ArrayRoundEngine", log, lo: int, hi: int,
                 gen: int):
        self._engine = engine
        self._gen = gen
        self._log = log
        self._lo = lo
        self._hi = hi
        self._map: Optional[Dict[Vertex, Any]] = None

    def __len__(self) -> int:
        return self._hi - self._lo

    def __iter__(self) -> Iterator[Vertex]:
        log = self._log
        for i in range(self._lo, self._hi):
            yield log[i][0]

    def __getitem__(self, sender: Vertex) -> Any:
        if self._engine.gen - 1 != self._gen:
            raise ProtocolViolation(
                "keyed inbox access outside the round that received it "
                "(iteration/items()/len() of a stashed inbox stay valid; "
                "inbox[sender]/.get/in do not)"
            )
        table = self._map
        if table is None:
            table = self._map = dict(self._log[self._lo:self._hi])
        return table[sender]

    # Dict-shaped fast paths (the Mapping mixins would re-run __getitem__
    # per key; algorithms iterate these in their hot loops).

    def items(self) -> List[Tuple[Vertex, Any]]:
        return self._log[self._lo:self._hi]

    def values(self) -> List[Any]:
        return [content for _sender, content in self._log[self._lo:self._hi]]


class EngineNodeContext(NodeContext):
    """A :class:`NodeContext` whose sends scatter into the engine buffers."""

    def __init__(
        self,
        node: Vertex,
        neighbors: Tuple[Vertex, ...],
        rng_seed: int,
        engine: "ArrayRoundEngine",
        vidx: int,
        nbr_idx: Tuple[int, ...],
    ):
        # Deliberately not super().__init__: the base initializer builds
        # a per-node neighbor set and outbox dict that only the dict
        # loop's send path consults — on the engine path the out-slot
        # table is the membership check and the buffers are the outbox,
        # so those O(deg) structures would be dead weight per node.
        self.node = node
        self.neighbors = neighbors
        # The parent stream was already advanced (derive_seed); the child
        # generator is only materialized if the program ever draws from it.
        self._rng_seed = rng_seed
        self._rng: Optional[_Random] = None
        self.round = 0
        self.state = {}
        self._halted = False
        self._result = None
        self._engine = engine
        self._vidx = vidx
        # Receiver vertex indices this node scatters broadcasts to: the
        # full CSR out-range, or (on a masked view) its surviving
        # subsequence — plus the receivers' bound ``append`` methods.
        # The delivery logs persist for the whole run, so both the list
        # objects and their methods can be captured once; the broadcast
        # loop is then one bare call per receiver.
        self._nbr_idx = nbr_idx
        buckets = engine.buckets
        self._appends = tuple(buckets[r].append for r in nbr_idx)
        # Double-send round markers: a broadcast reaches every alive
        # neighbor, so any second send this round collides with it by
        # construction — no per-slot stamp needed on the broadcast path.
        self._sent_gen = -1
        self._bcast_gen = -1
        self._pos_of: Optional[Dict[Vertex, int]] = None

    @property
    def rng(self) -> _Random:
        """This node's private generator, seeded exactly as the dict loop's.

        Built on first access: constructing a Mersenne Twister per vertex
        is the dominant per-node setup cost, and deterministic protocols
        never touch it. The seed was drawn from the parent stream at
        context construction, so laziness is invisible to every stream.
        """
        rng = self._rng
        if rng is None:
            rng = self._rng = _Random(self._rng_seed)
        return rng

    def send(self, neighbor: Vertex, content: Any) -> None:
        pos_of = self._pos_of
        if pos_of is None:
            pos_of = self._pos_of = self._engine.out_pos(self._vidx)
        pos = pos_of.get(neighbor)
        eng = self._engine
        if pos is None or (eng.half_ok is not None and not eng.half_ok[pos]):
            raise ProtocolViolation(
                f"node {self.node!r} tried to message non-neighbor {neighbor!r}"
            )
        stamp = eng.send_stamp
        if stamp is None:
            stamp = eng._ensure_send_stamp()
        if stamp[pos] == eng.gen or self._bcast_gen == eng.gen:
            raise ProtocolViolation(
                f"node {self.node!r} sent twice to {neighbor!r} in one round"
            )
        stamp[pos] = eng.gen
        self._sent_gen = eng.gen
        eng.buckets[eng.nbr[pos]].append((self.node, content))

    def broadcast(self, content: Any) -> None:
        # One pass over the sender's receiver tuple, sharing a single
        # (sender, content) pair across all receivers. Broadcast is the
        # protocol's hot primitive; the iteration order here cannot
        # influence delivery order because each receiver's bucket is
        # touched exactly once per sender per round. A broadcast with no
        # alive receivers sends nothing, so (like the dict loop) it
        # neither trips nor arms the double-send check.
        appends = self._appends
        if not appends:
            return
        eng = self._engine
        gen = eng.gen
        if self._sent_gen == gen:
            raise ProtocolViolation(
                f"node {self.node!r} sent twice to "
                f"{eng.verts[self._nbr_idx[0]]!r} in one round"
            )
        self._sent_gen = gen
        self._bcast_gen = gen
        pair = (self.node, content)
        for append in appends:
            append(pair)

    def halt(self, result: Any = None) -> None:
        if not self._halted:
            self._engine.active -= 1
        super().halt(result)


class ArrayRoundEngine:
    """Executes a node algorithm over a CSR snapshot of the comm graph.

    Construction consumes the RNG stream exactly like the dict loop:
    one derived 64-bit seed per vertex, in host vertex order, so a
    caller-supplied parent generator is left in an identical state by
    either path. The per-vertex child generators themselves are lazy
    (see :attr:`EngineNodeContext.rng`).

    With ``view`` (a :class:`repro.graph.csr.SurvivorView` over the
    host's snapshot) the engine executes on the masked survivor subgraph
    *zero-copy*: no subgraph, snapshot, or routing table is rebuilt.
    Faulted vertices get no context (they stay silent and draw no RNG),
    dead half-edge slots are dropped from every node's scatter sequence,
    and results/states/trace cover exactly the surviving vertices — pinned
    identical to running the dict loop on ``view.to_graph()``.
    """

    def __init__(
        self,
        graph: BaseGraph,
        factory,
        rng,
        tracer=None,
        view: Optional[SurvivorView] = None,
    ) -> None:
        csr = view.csr if view is not None else snapshot(graph)
        self.csr = csr
        self.verts = csr.verts
        self.index = csr.index
        self.nbr = csr.nbr
        self.tracer = tracer
        #: Per-half-slot survivor list on a masked view, else None.
        self.half_ok = view.half_alive() if view is not None else None
        n = csr.num_vertices

        # Per-vertex {neighbor vertex: out half-edge position} routing
        # tables, built lazily by out_pos() (only targeted `send` needs
        # them — broadcast scatters over precomputed receiver tuples)
        # and cached on the immutable snapshot so repeated simulations
        # over one communication graph share them.
        if csr._engine_tables is None:
            csr._engine_tables = [None] * n
        self._out_pos: List[Optional[Dict[Vertex, int]]] = csr._engine_tables

        # Delivery state: one persistent append-only log of (sender,
        # content) pairs per receiver, in ascending-sender order within
        # each round. Publishing a round advances the per-receiver
        # [read_lo, read_hi) window — published windows are never
        # mutated, later rounds only append past them. Targeted sends
        # additionally stamp their half-edge slot for double-send
        # detection; the stamp array is allocated lazily the first time
        # a run sends, so broadcast-only protocols (and masked
        # per-scenario runs) never pay the O(m) buffer.
        self.buckets: List[List[Tuple[Vertex, Any]]] = [[] for _ in range(n)]
        self.read_lo = [0] * n
        self.read_hi = [0] * n
        self._published = 0
        self.send_stamp: Optional[List[int]] = None
        self.gen = 0
        self.sent = 0

        contexts: List[EngineNodeContext] = []
        algorithms: List[NodeAlgorithm] = []
        if self.half_ok is None:
            # Contexts mirror the dict loop exactly: neighbor tuples come
            # from the graph's adjacency (not CSR fill order), and each
            # vertex draws one derived child stream in host vertex order.
            # Both per-vertex tuples are immutable and graph-determined,
            # so they are built once and cached on the snapshot.
            nbrs = csr._engine_nbrs
            if nbrs is None:
                nbrs = csr._engine_nbrs = [
                    tuple(graph.neighbors(v)) for v in self.verts
                ]
            nbr_idx = csr._engine_nbr_idx
            if nbr_idx is None:
                nbr, indptr = csr.nbr, csr.indptr
                nbr_idx = csr._engine_nbr_idx = [
                    tuple(nbr[indptr[i]:indptr[i + 1]]) for i in range(n)
                ]
            for i, v in enumerate(self.verts):
                contexts.append(EngineNodeContext(
                    node=v,
                    neighbors=nbrs[i],
                    rng_seed=derive_seed(rng, i),
                    engine=self,
                    vidx=i,
                    nbr_idx=nbr_idx[i],
                ))
                algorithms.append(factory(v))
        else:
            # Masked view: only surviving vertices get contexts, in host
            # vertex order with a *running* derivation counter — exactly
            # the stream the dict loop draws on the materialized survivor
            # subgraph. Neighbor tuples come from the surviving CSR slots,
            # whose per-vertex order is the host's edges() enumeration
            # order — the insertion order of ``view.to_graph()`` (and of
            # ``induced_subgraph``) adjacencies, so order-sensitive
            # algorithms observe identical neighborhoods on both paths.
            verts, indptr = csr.verts, csr.indptr
            alive_idx = view.surviving_vertex_indices()
            ok_np = view._half_ok()
            if ok_np is not None:
                # Vectorized slot survival: one C pass gathers every
                # surviving receiver index, then searchsorted recovers the
                # per-vertex boundaries — no per-slot Python filtering.
                alive_pos = _np.flatnonzero(ok_np)
                recv = self.csr.half_arrays_np()[1][alive_pos].tolist()
                bounds = _np.searchsorted(
                    alive_pos, _np.asarray(indptr, dtype=_np.int64)
                ).tolist()
                slot_of = lambda i: tuple(recv[bounds[i]:bounds[i + 1]])
            else:
                half_ok, nbr = self.half_ok, csr.nbr
                slot_of = lambda i: tuple(
                    nbr[p]
                    for p in range(indptr[i], indptr[i + 1])
                    if half_ok[p]
                )
            vert_of = verts.__getitem__
            for j, i in enumerate(alive_idx):
                nbr_idx = slot_of(i)
                contexts.append(EngineNodeContext(
                    node=verts[i],
                    neighbors=tuple(map(vert_of, nbr_idx)),
                    rng_seed=derive_seed(rng, j),
                    engine=self,
                    vidx=i,
                    nbr_idx=nbr_idx,
                ))
                algorithms.append(factory(verts[i]))
        self.contexts = contexts
        self.algorithms = algorithms
        self.active = len(contexts)

    def _ensure_send_stamp(self) -> List[int]:
        """Allocate the targeted-send double-send stamps on first use."""
        if self.send_stamp is None:
            self.send_stamp = [-1] * len(self.csr.nbr)
        return self.send_stamp

    def out_pos(self, vidx: int) -> Dict[Vertex, int]:
        """``{neighbor vertex: half-edge position}`` of vertex ``vidx``."""
        table = self._out_pos[vidx]
        if table is None:
            csr = self.csr
            verts, nbr = csr.verts, csr.nbr
            table = {
                verts[nbr[p]]: p
                for p in range(csr.indptr[vidx], csr.indptr[vidx + 1])
            }
            self._out_pos[vidx] = table
        return table

    # -- round machinery -------------------------------------------------

    def _swap(self) -> None:
        """Publish the round's sends by advancing the read windows.

        Message accounting happens here as one batched reduction over
        the log lengths (instead of a counter bump per send). Published
        windows are never mutated — later rounds only append past them —
        so an :class:`InboxView` outlives its round with its contents
        intact (matching what a stashed dict-path inbox observes).
        """
        self.read_lo = self.read_hi
        hi = list(map(len, self.buckets))
        self.read_hi = hi
        total = sum(hi)
        self.sent += total - self._published
        self._published = total
        self.gen += 1

    def _materialize_inboxes(self) -> Dict[Vertex, Dict[Vertex, Any]]:
        """Per-vertex inbox dicts for the tracer (only built when tracing).

        Driven by the context list, so on a masked view the trace covers
        exactly the surviving vertices (like the dict loop on the
        materialized survivor subgraph).
        """
        buckets, lo, hi = self.buckets, self.read_lo, self.read_hi
        return {
            ctx.node: dict(buckets[ctx._vidx][lo[ctx._vidx]:hi[ctx._vidx]])
            for ctx in self.contexts
        }

    def run(self, max_rounds: int = 10_000):
        """Execute rounds until every node halts (or ``max_rounds``)."""
        from .runtime import SimulationResult

        contexts = self.contexts
        algorithms = self.algorithms
        n = len(contexts)
        self.sent = 0  # like the dict loop, each run() counts afresh

        # Round 0: on_start (sends land in the write buffer, stamp 0).
        for i in range(n):
            algorithms[i].on_start(contexts[i])
        rounds = 0
        self._swap()

        while self.active:
            if rounds >= max_rounds:
                raise DistributedError(
                    f"simulation exceeded {max_rounds} rounds without halting"
                )
            rounds += 1
            cur_gen = self.gen - 1  # generation now being delivered
            tracer = self.tracer
            previously_halted = (
                {ctx.node: ctx.halted for ctx in contexts}
                if tracer is not None
                else None
            )
            buckets, read_lo, read_hi = self.buckets, self.read_lo, self.read_hi
            for i in range(n):
                ctx = contexts[i]
                if ctx._halted:
                    continue
                ctx.round = rounds
                vi = ctx._vidx
                lo, hi = read_lo[vi], read_hi[vi]
                algorithms[i].on_round(
                    ctx,
                    InboxView(self, buckets[vi], lo, hi, cur_gen)
                    if hi > lo
                    else _EMPTY_INBOX,
                )
            if tracer is not None:
                tracer.observe_round(
                    rounds,
                    self._materialize_inboxes(),
                    {ctx.node: ctx.halted for ctx in contexts},
                    previously_halted,
                )
            self._swap()

        return SimulationResult(
            rounds=rounds,
            messages_sent=self.sent,
            results={ctx.node: ctx.result for ctx in contexts},
            states={ctx.node: ctx.state for ctx in contexts},
        )


__all__ = ["ArrayRoundEngine", "EngineNodeContext", "InboxView"]
