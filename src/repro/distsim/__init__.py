"""A synchronous message-passing simulator for the LOCAL model [Pel00].

In each round every node may send an unbounded-size message to each of its
neighbours; after ``t`` rounds a node's state is a function of its
radius-``t`` neighbourhood. The distributed algorithms of Sections 2 and
3.5 run on this substrate.
"""

from .message import Message
from .node import NodeAlgorithm, NodeContext
from .runtime import AlgorithmFactory, Simulation, SimulationResult, run_algorithm
from .trace import RoundRecord, SimulationTracer

__all__ = [
    "AlgorithmFactory",
    "Message",
    "NodeAlgorithm",
    "NodeContext",
    "RoundRecord",
    "Simulation",
    "SimulationResult",
    "SimulationTracer",
    "run_algorithm",
]
