"""A synchronous message-passing simulator for the LOCAL model [Pel00].

In each round every node may send an unbounded-size message to each of its
neighbours; after ``t`` rounds a node's state is a function of its
radius-``t`` neighbourhood. The distributed algorithms of Sections 2 and
3.5 run on this substrate.

Two interchangeable execution paths implement the round semantics: the
reference dict loop in :mod:`repro.distsim.runtime` and the array-backed
:class:`~repro.distsim.engine.ArrayRoundEngine`, selected per run through
``Simulation(..., method="auto"|"csr"|"dict")`` and pinned seed-identical.
"""

from .engine import ArrayRoundEngine, InboxView
from .message import Message
from .node import NodeAlgorithm, NodeContext
from .runtime import (
    AlgorithmFactory,
    Simulation,
    SimulationResult,
    communication_graph,
    run_algorithm,
)
from .trace import RoundRecord, SimulationTracer

__all__ = [
    "AlgorithmFactory",
    "ArrayRoundEngine",
    "InboxView",
    "Message",
    "NodeAlgorithm",
    "NodeContext",
    "RoundRecord",
    "Simulation",
    "SimulationResult",
    "SimulationTracer",
    "communication_graph",
    "run_algorithm",
]
