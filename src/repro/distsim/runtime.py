"""Synchronous LOCAL-model simulator.

Executes one :class:`~repro.distsim.node.NodeAlgorithm` instance per vertex
of a graph in lockstep rounds: all round-``t`` messages are delivered at the
start of round ``t + 1``. Communication is possible along every edge of the
communication graph; following the paper's Section 3.5 convention,
communication is bidirectional even when the problem graph is directed (the
caller passes the undirected communication graph).

The simulator charges one round per synchronous step and reports total
rounds and message count; the LOCAL model does not charge for local
computation or message size.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional

from ..errors import DistributedError
from ..graph.graph import BaseGraph
from ..rng import RandomLike, derive_rng, ensure_rng
from .node import NodeAlgorithm, NodeContext

Vertex = Hashable

#: Factory producing one algorithm instance per vertex.
AlgorithmFactory = Callable[[Vertex], NodeAlgorithm]


@dataclass
class SimulationResult:
    """Outcome of a simulation run."""

    rounds: int
    messages_sent: int
    results: Dict[Vertex, Any] = field(default_factory=dict)
    states: Dict[Vertex, Dict[str, Any]] = field(default_factory=dict)


class Simulation:
    """Run a node algorithm over a communication graph."""

    def __init__(
        self,
        graph: BaseGraph,
        factory: AlgorithmFactory,
        seed: RandomLike = None,
        tracer=None,
    ) -> None:
        if graph.directed:
            raise DistributedError(
                "pass the undirected communication graph (see Section 3.5: "
                "communication along an edge is bidirectional)"
            )
        self.graph = graph
        self.factory = factory
        #: Optional :class:`~repro.distsim.trace.SimulationTracer`.
        self.tracer = tracer
        rng = ensure_rng(seed)
        self._contexts: Dict[Vertex, NodeContext] = {}
        self._algorithms: Dict[Vertex, NodeAlgorithm] = {}
        for i, v in enumerate(graph.vertices()):
            ctx = NodeContext(
                node=v,
                neighbors=tuple(graph.neighbors(v)),
                rng=derive_rng(rng, i),
            )
            self._contexts[v] = ctx
            self._algorithms[v] = factory(v)

    def run(self, max_rounds: int = 10_000) -> SimulationResult:
        """Execute rounds until every node halts (or ``max_rounds``)."""
        contexts = self._contexts
        algorithms = self._algorithms
        messages_sent = 0

        # Round 0: on_start.
        inboxes: Dict[Vertex, Dict[Vertex, Any]] = {v: {} for v in contexts}
        for v, ctx in contexts.items():
            algorithms[v].on_start(ctx)
        rounds = 0
        for v, ctx in contexts.items():
            outbox = ctx._drain_outbox()
            messages_sent += len(outbox)
            for receiver, content in outbox.items():
                inboxes[receiver][v] = content

        while any(not ctx.halted for ctx in contexts.values()):
            if rounds >= max_rounds:
                raise DistributedError(
                    f"simulation exceeded {max_rounds} rounds without halting"
                )
            rounds += 1
            previously_halted = {v: ctx.halted for v, ctx in contexts.items()}
            next_inboxes: Dict[Vertex, Dict[Vertex, Any]] = {v: {} for v in contexts}
            for v, ctx in contexts.items():
                if ctx.halted:
                    continue
                ctx.round = rounds
                algorithms[v].on_round(ctx, inboxes[v])
            for v, ctx in contexts.items():
                outbox = ctx._drain_outbox()
                messages_sent += len(outbox)
                for receiver, content in outbox.items():
                    next_inboxes[receiver][v] = content
            if self.tracer is not None:
                self.tracer.observe_round(
                    rounds,
                    inboxes,
                    {v: ctx.halted for v, ctx in contexts.items()},
                    previously_halted,
                )
            inboxes = next_inboxes

        return SimulationResult(
            rounds=rounds,
            messages_sent=messages_sent,
            results={v: ctx.result for v, ctx in contexts.items()},
            states={v: ctx.state for v, ctx in contexts.items()},
        )


def run_algorithm(
    graph: BaseGraph,
    factory: AlgorithmFactory,
    seed: RandomLike = None,
    max_rounds: int = 10_000,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`Simulation`."""
    return Simulation(graph, factory, seed=seed).run(max_rounds=max_rounds)
