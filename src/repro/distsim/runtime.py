"""Synchronous LOCAL-model simulator.

Executes one :class:`~repro.distsim.node.NodeAlgorithm` instance per vertex
of a graph in lockstep rounds: all round-``t`` messages are delivered at the
start of round ``t + 1``. Communication is possible along every edge of the
communication graph; following the paper's Section 3.5 convention,
communication is bidirectional even when the problem graph is directed (the
caller passes the undirected communication graph).

The simulator charges one round per synchronous step and reports total
rounds and message count; the LOCAL model does not charge for local
computation or message size.

Two execution paths share these semantics: the reference dict-of-dict
round loop below, and the array-backed :class:`~repro.distsim.engine.
ArrayRoundEngine`, which scatters messages over the half-edge arrays of
a CSR snapshot. :class:`Simulation` dispatches between them through the
library's one ``method="auto"|"csr"|"dict"`` rule
(:func:`repro.graph.csr.resolve_method`); both paths are pinned
output- and RNG-stream-identical per seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable

from ..errors import DistributedError
from ..graph.csr import SurvivorView, resolve_method, snapshot
from ..graph.graph import BaseGraph, Graph
from ..rng import RandomLike, derive_rng, ensure_rng
from .node import NodeAlgorithm, NodeContext

Vertex = Hashable

#: Factory producing one algorithm instance per vertex.
AlgorithmFactory = Callable[[Vertex], NodeAlgorithm]


def communication_graph(graph: BaseGraph) -> Graph:
    """The undirected communication topology of a problem graph.

    Section 3.5 convention: communication along an edge is bidirectional
    even when the problem graph is directed, so a directed instance
    communicates over its undirected collapse. Undirected graphs are
    returned *unchanged* (the same instance), so cached CSR snapshots —
    and therefore the round engine's index tables — stay shared.
    """
    return graph.to_undirected() if graph.directed else graph


@dataclass
class SimulationResult:
    """Outcome of a simulation run."""

    rounds: int
    messages_sent: int
    results: Dict[Vertex, Any] = field(default_factory=dict)
    states: Dict[Vertex, Dict[str, Any]] = field(default_factory=dict)


class Simulation:
    """Run a node algorithm over a communication graph.

    ``method`` selects the execution path (see
    :func:`repro.graph.csr.resolve_method`): ``"dict"`` is the reference
    loop below, ``"csr"`` the array-backed round engine, and ``"auto"``
    picks the engine at and above the kernel layer's dispatch size. The
    two are seed-identical, so the choice is performance-only.

    ``scenario`` restricts execution to the surviving subgraph of a
    :class:`repro.graph.scenario.FaultScenario` (or a prebuilt
    :class:`repro.graph.csr.SurvivorView` over the host's snapshot):
    the engine path runs zero-copy on the masked view — faulted nodes
    stay silent, nothing is rebuilt — while the dict path stays the
    pinned reference by materializing the survivor subgraph. ``auto``
    dispatch then keys on the *surviving* vertex count.
    """

    def __init__(
        self,
        graph: BaseGraph,
        factory: AlgorithmFactory,
        seed: RandomLike = None,
        tracer=None,
        method: str = "auto",
        scenario=None,
    ) -> None:
        if graph.directed:
            raise DistributedError(
                "pass the undirected communication graph (see Section 3.5: "
                "communication along an edge is bidirectional)"
            )
        self.graph = graph
        self.factory = factory
        #: Optional :class:`~repro.distsim.trace.SimulationTracer`.
        self.tracer = tracer
        view: "SurvivorView | None" = None
        if scenario is not None:
            if isinstance(scenario, SurvivorView):
                view = scenario
            else:
                view = snapshot(graph).survivor_view(scenario)
        #: The execution path this simulation resolved to ("csr"/"dict").
        self.resolved_method = resolve_method(
            method,
            view.num_surviving_vertices if view is not None else graph.num_vertices,
        )
        rng = ensure_rng(seed)
        self._engine = None
        self._contexts: Dict[Vertex, NodeContext] = {}
        self._algorithms: Dict[Vertex, NodeAlgorithm] = {}
        if self.resolved_method == "csr":
            from .engine import ArrayRoundEngine

            self._engine = ArrayRoundEngine(
                graph, factory, rng, tracer=tracer, view=view
            )
            return
        if view is not None and view.is_masked:
            # Reference semantics of a scenario run: the dict loop on the
            # materialized survivor subgraph.
            graph = view.to_graph()
        for i, v in enumerate(graph.vertices()):
            ctx = NodeContext(
                node=v,
                neighbors=tuple(graph.neighbors(v)),
                rng=derive_rng(rng, i),
            )
            self._contexts[v] = ctx
            self._algorithms[v] = factory(v)

    def run(self, max_rounds: int = 10_000) -> SimulationResult:
        """Execute rounds until every node halts (or ``max_rounds``)."""
        if self._engine is not None:
            self._engine.tracer = self.tracer
            return self._engine.run(max_rounds=max_rounds)
        contexts = self._contexts
        algorithms = self._algorithms
        messages_sent = 0

        # Round 0: on_start.
        inboxes: Dict[Vertex, Dict[Vertex, Any]] = {v: {} for v in contexts}
        for v, ctx in contexts.items():
            algorithms[v].on_start(ctx)
        rounds = 0
        for v, ctx in contexts.items():
            outbox = ctx._drain_outbox()
            messages_sent += len(outbox)
            for receiver, content in outbox.items():
                inboxes[receiver][v] = content

        while any(not ctx.halted for ctx in contexts.values()):
            if rounds >= max_rounds:
                raise DistributedError(
                    f"simulation exceeded {max_rounds} rounds without halting"
                )
            rounds += 1
            previously_halted = {v: ctx.halted for v, ctx in contexts.items()}
            next_inboxes: Dict[Vertex, Dict[Vertex, Any]] = {v: {} for v in contexts}
            for v, ctx in contexts.items():
                if ctx.halted:
                    continue
                ctx.round = rounds
                algorithms[v].on_round(ctx, inboxes[v])
            for v, ctx in contexts.items():
                outbox = ctx._drain_outbox()
                messages_sent += len(outbox)
                for receiver, content in outbox.items():
                    next_inboxes[receiver][v] = content
            if self.tracer is not None:
                self.tracer.observe_round(
                    rounds,
                    inboxes,
                    {v: ctx.halted for v, ctx in contexts.items()},
                    previously_halted,
                )
            inboxes = next_inboxes

        return SimulationResult(
            rounds=rounds,
            messages_sent=messages_sent,
            results={v: ctx.result for v, ctx in contexts.items()},
            states={v: ctx.state for v, ctx in contexts.items()},
        )


def run_algorithm(
    graph: BaseGraph,
    factory: AlgorithmFactory,
    seed: RandomLike = None,
    max_rounds: int = 10_000,
    method: str = "auto",
    scenario=None,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`Simulation`."""
    return Simulation(graph, factory, seed=seed, method=method,
                      scenario=scenario).run(max_rounds=max_rounds)
