"""Round-by-round tracing for the LOCAL-model simulator.

A :class:`SimulationTracer` attached to a :class:`~repro.distsim.runtime.
Simulation` records, per round, the messages delivered and which nodes
halted — enough to debug a distributed algorithm or to produce the round
accounting tables in the E9 benchmark without touching algorithm code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

Vertex = Hashable


@dataclass
class RoundRecord:
    """Everything observed in one synchronous round."""

    round_index: int
    messages_delivered: int
    active_nodes: int
    newly_halted: Tuple[Vertex, ...]
    #: Optional per-node message payload sizes (sender, receiver) pairs;
    #: populated only when the tracer is created with ``record_edges=True``.
    delivered_edges: Tuple[Tuple[Vertex, Vertex], ...] = ()


@dataclass
class SimulationTracer:
    """Collects :class:`RoundRecord` entries as the simulation runs."""

    record_edges: bool = False
    rounds: List[RoundRecord] = field(default_factory=list)

    def observe_round(
        self,
        round_index: int,
        inboxes: Dict[Vertex, Dict[Vertex, Any]],
        halted: Dict[Vertex, bool],
        previously_halted: Dict[Vertex, bool],
    ) -> None:
        """Called by the runtime after each round's processing."""
        delivered = sum(len(inbox) for inbox in inboxes.values())
        newly = tuple(
            v for v, is_halted in halted.items()
            if is_halted and not previously_halted.get(v, False)
        )
        edges: Tuple[Tuple[Vertex, Vertex], ...] = ()
        if self.record_edges:
            edges = tuple(
                (sender, receiver)
                for receiver, inbox in inboxes.items()
                for sender in inbox
            )
        self.rounds.append(
            RoundRecord(
                round_index=round_index,
                messages_delivered=delivered,
                active_nodes=sum(1 for h in halted.values() if not h),
                newly_halted=newly,
                delivered_edges=edges,
            )
        )

    # -- analysis helpers ---------------------------------------------------

    @property
    def total_messages(self) -> int:
        """Messages delivered across all rounds."""
        return sum(record.messages_delivered for record in self.rounds)

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    def quiet_rounds(self) -> List[int]:
        """Rounds in which no message was delivered (often protocol waste)."""
        return [
            record.round_index
            for record in self.rounds
            if record.messages_delivered == 0
        ]

    def halting_round(self, node: Vertex) -> Optional[int]:
        """The round in which ``node`` halted, or None if it never did."""
        for record in self.rounds:
            if node in record.newly_halted:
                return record.round_index
        return None

    def message_histogram(self) -> Dict[int, int]:
        """Map round index -> messages delivered that round."""
        return {
            record.round_index: record.messages_delivered
            for record in self.rounds
        }

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able trace document (vertices rendered via ``repr``).

        Vertex ``repr`` keeps arbitrary hashable vertex types
        serializable while staying deterministic, so two traces of the
        same seeded simulation — across processes, hash seeds, or
        execution paths — serialize to identical bytes. This is what the
        CI ``distsim-smoke`` step diffs.
        """
        return {
            "format": "repro-trace",
            "num_rounds": self.num_rounds,
            "total_messages": self.total_messages,
            "rounds": [
                {
                    "round": record.round_index,
                    "messages_delivered": record.messages_delivered,
                    "active_nodes": record.active_nodes,
                    "newly_halted": [repr(v) for v in record.newly_halted],
                    "delivered_edges": [
                        [repr(u), repr(v)] for u, v in record.delivered_edges
                    ],
                }
                for record in self.rounds
            ],
        }
