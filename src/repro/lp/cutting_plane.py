"""Cutting-plane driver with pluggable separation oracles.

The paper solves LP (4) — which has exponentially many knapsack-cover
constraints — with the Ellipsoid method plus the separation oracle of
Lemma 3.2. Offline and at benchmark scale, the standard practical
equivalent is *row generation*: solve a relaxed model, ask each oracle for
constraints violated by the current optimum, add them, and re-solve until
no oracle objects. The value sequence is nonincreasing in the relaxation
sense (each round's optimum is a lower bound on the fully-constrained
optimum, and the final round is feasible for every oracle, hence optimal
for the full LP whenever the oracles are exact separators).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence

from ..errors import SolverLimit
from .model import Constraint, LinearProgram, LPSolution

#: A separation oracle: given the current solution, return violated
#: constraints (empty when the solution is feasible for the oracle's family).
SeparationOracle = Callable[[LPSolution], List[Constraint]]


@dataclass
class CuttingPlaneResult:
    """Final solution plus row-generation accounting."""

    solution: LPSolution
    rounds: int
    cuts_added: int
    objective_trace: List[float] = field(default_factory=list)


def solve_with_cuts(
    lp: LinearProgram,
    oracles: Sequence[SeparationOracle],
    backend: str = "auto",
    max_rounds: int = 200,
    max_cuts_per_round: int = 2000,
) -> CuttingPlaneResult:
    """Row-generation loop: solve, separate, add cuts, repeat.

    Parameters
    ----------
    lp:
        Model holding the always-present constraints; violated constraints
        returned by oracles are appended to it in place.
    oracles:
        Exact separation oracles for the implicit constraint families.
    max_rounds / max_cuts_per_round:
        Safety limits; exceeding ``max_rounds`` raises
        :class:`~repro.errors.SolverLimit` rather than silently returning
        an under-constrained optimum.
    """
    trace: List[float] = []
    total_cuts = 0
    for round_index in range(1, max_rounds + 1):
        solution = lp.solve(backend=backend)
        trace.append(solution.objective)
        violated: List[Constraint] = []
        for oracle in oracles:
            violated.extend(oracle(solution))
            if len(violated) >= max_cuts_per_round:
                violated = violated[:max_cuts_per_round]
                break
        if not violated:
            return CuttingPlaneResult(
                solution=solution,
                rounds=round_index,
                cuts_added=total_cuts,
                objective_trace=trace,
            )
        for cut in violated:
            lp.add_constraint(cut.coeffs, cut.sense, cut.rhs, name=cut.name)
        total_cuts += len(violated)
    raise SolverLimit(
        f"cutting-plane loop did not converge in {max_rounds} rounds "
        f"({total_cuts} cuts added)"
    )
