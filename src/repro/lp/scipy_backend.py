"""scipy (HiGHS) backend for :class:`~repro.lp.model.LinearProgram`.

The primary production backend. The pure-Python simplex exists as an
independent implementation; the test suite solves the same models with both
and compares optima.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from .model import EQUAL, GREATER_EQUAL, LESS_EQUAL, LinearProgram, LPSolution


def solve_with_scipy(lp: LinearProgram) -> LPSolution:
    """Solve a model with :func:`scipy.optimize.linprog` (method ``highs``)."""
    from scipy.optimize import linprog

    names = lp.variable_names()
    if not names:
        return LPSolution(status="optimal", objective=0.0, values={})
    index = {name: i for i, name in enumerate(names)}
    n = len(names)

    c = np.zeros(n)
    bounds: List = []
    for name in names:
        var = lp.variable(name)
        c[index[name]] = var.objective
        lower = None if math.isinf(var.lower) else var.lower
        upper = (
            None if (var.upper is None or math.isinf(var.upper)) else var.upper
        )
        bounds.append((lower, upper))

    # Constraint matrices are built sparse (COO -> CSR): the 2-spanner LPs
    # have tens of thousands of rows with 2-3 nonzeros each, and a dense
    # matrix would be quadratically larger than the model.
    from scipy.sparse import csr_matrix

    ub_data, ub_rows, ub_cols, b_ub = [], [], [], []
    eq_data, eq_rows, eq_cols, b_eq = [], [], [], []
    for con in lp.constraints:
        if con.sense == LESS_EQUAL or con.sense == GREATER_EQUAL:
            sign = 1.0 if con.sense == LESS_EQUAL else -1.0
            row_idx = len(b_ub)
            for vname, coeff in con.coeffs.items():
                ub_rows.append(row_idx)
                ub_cols.append(index[vname])
                ub_data.append(sign * coeff)
            b_ub.append(sign * con.rhs)
        elif con.sense == EQUAL:
            row_idx = len(b_eq)
            for vname, coeff in con.coeffs.items():
                eq_rows.append(row_idx)
                eq_cols.append(index[vname])
                eq_data.append(coeff)
            b_eq.append(con.rhs)

    a_ub = (
        csr_matrix((ub_data, (ub_rows, ub_cols)), shape=(len(b_ub), n))
        if b_ub
        else None
    )
    a_eq = (
        csr_matrix((eq_data, (eq_rows, eq_cols)), shape=(len(b_eq), n))
        if b_eq
        else None
    )
    result = linprog(
        c,
        A_ub=a_ub,
        b_ub=np.array(b_ub) if b_ub else None,
        A_eq=a_eq,
        b_eq=np.array(b_eq) if b_eq else None,
        bounds=bounds,
        method="highs",
    )
    if result.status == 2:
        return LPSolution(status="infeasible", objective=math.inf)
    if result.status == 3:
        return LPSolution(status="unbounded", objective=-math.inf)
    if not result.success:  # pragma: no cover - solver numerical failure
        return LPSolution(status="infeasible", objective=math.inf)
    values: Dict = {name: float(result.x[index[name]]) for name in names}
    return LPSolution(status="optimal", objective=float(result.fun), values=values)
