"""A small linear-programming modelling layer.

The Section 3 relaxations (LP (2) and LP (4) in the paper) are built as
:class:`LinearProgram` instances: named variables with bounds and objective
coefficients, plus sparse constraints. Models are solved through a backend
(:mod:`repro.lp.scipy_backend` by default, with the pure-Python simplex of
:mod:`repro.lp.simplex` as an independent cross-check), and the
cutting-plane driver (:mod:`repro.lp.cutting_plane`) adds
separation-oracle-generated constraints incrementally — the offline stand-in
for the paper's Ellipsoid-with-separation-oracle argument (Lemma 3.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from ..errors import InfeasibleLP, LPError, UnboundedLP

VarName = Hashable

LESS_EQUAL = "<="
GREATER_EQUAL = ">="
EQUAL = "=="

_SENSES = (LESS_EQUAL, GREATER_EQUAL, EQUAL)


@dataclass
class Variable:
    """A decision variable with bounds and an objective coefficient."""

    name: VarName
    index: int
    lower: float = 0.0
    upper: Optional[float] = None
    objective: float = 0.0


@dataclass
class Constraint:
    """A sparse linear constraint ``sum coeffs[v] * v  sense  rhs``."""

    coeffs: Dict[VarName, float]
    sense: str
    rhs: float
    name: Optional[str] = None

    def evaluate(self, values: Mapping[VarName, float]) -> float:
        """Left-hand-side value under a variable assignment."""
        return sum(c * values.get(v, 0.0) for v, c in self.coeffs.items())

    def satisfied(self, values: Mapping[VarName, float], tol: float = 1e-7) -> bool:
        """Whether the assignment satisfies the constraint within ``tol``."""
        lhs = self.evaluate(values)
        if self.sense == LESS_EQUAL:
            return lhs <= self.rhs + tol
        if self.sense == GREATER_EQUAL:
            return lhs >= self.rhs - tol
        return abs(lhs - self.rhs) <= tol

    def violation(self, values: Mapping[VarName, float]) -> float:
        """Amount by which the assignment violates the constraint (>= 0)."""
        lhs = self.evaluate(values)
        if self.sense == LESS_EQUAL:
            return max(0.0, lhs - self.rhs)
        if self.sense == GREATER_EQUAL:
            return max(0.0, self.rhs - lhs)
        return abs(lhs - self.rhs)


@dataclass
class LPSolution:
    """Solver output: status, optimal objective, and variable values."""

    status: str  # "optimal", "infeasible", or "unbounded"
    objective: float
    values: Dict[VarName, float] = field(default_factory=dict)

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"

    def value(self, name: VarName) -> float:
        """Value of one variable (0.0 for variables absent from the model)."""
        return self.values.get(name, 0.0)


class LinearProgram:
    """A minimization LP with named variables and sparse constraints."""

    def __init__(self, name: str = "lp") -> None:
        self.name = name
        self._variables: Dict[VarName, Variable] = {}
        self._order: List[VarName] = []
        self.constraints: List[Constraint] = []

    # ------------------------------------------------------------------
    # Model building
    # ------------------------------------------------------------------

    def add_variable(
        self,
        name: VarName,
        lower: float = 0.0,
        upper: Optional[float] = None,
        objective: float = 0.0,
    ) -> Variable:
        """Declare a variable; re-declaring an existing name is an error."""
        if name in self._variables:
            raise LPError(f"variable {name!r} already declared")
        if upper is not None and upper < lower:
            raise LPError(f"variable {name!r} has empty domain [{lower}, {upper}]")
        var = Variable(
            name=name,
            index=len(self._order),
            lower=lower,
            upper=upper,
            objective=objective,
        )
        self._variables[name] = var
        self._order.append(name)
        return var

    def has_variable(self, name: VarName) -> bool:
        return name in self._variables

    def variable(self, name: VarName) -> Variable:
        try:
            return self._variables[name]
        except KeyError:
            raise LPError(f"unknown variable {name!r}") from None

    @property
    def num_variables(self) -> int:
        return len(self._order)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    def variable_names(self) -> List[VarName]:
        return list(self._order)

    def add_constraint(
        self,
        coeffs: Mapping[VarName, float],
        sense: str,
        rhs: float,
        name: Optional[str] = None,
    ) -> Constraint:
        """Add a sparse constraint over previously declared variables."""
        if sense not in _SENSES:
            raise LPError(f"unknown sense {sense!r}; use one of {_SENSES}")
        clean = {}
        for var, coeff in coeffs.items():
            if var not in self._variables:
                raise LPError(f"constraint references unknown variable {var!r}")
            if coeff != 0.0:
                clean[var] = float(coeff)
        constraint = Constraint(coeffs=clean, sense=sense, rhs=float(rhs), name=name)
        self.constraints.append(constraint)
        return constraint

    def extend_constraints(self, constraints: Sequence[Constraint]) -> None:
        """Bulk-append prebuilt :class:`Constraint` objects.

        The vectorized row-assembly twin of :meth:`add_constraint`:
        coefficients must already be floats with zeros dropped and senses
        valid — the builder that produced them is trusted for that — but
        unknown variable names are still rejected, so a model can never
        silently hold dangling references.
        """
        variables = self._variables
        for con in constraints:
            for var in con.coeffs:
                if var not in variables:
                    raise LPError(
                        f"constraint references unknown variable {var!r}"
                    )
        self.constraints.extend(constraints)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def objective_value(self, values: Mapping[VarName, float]) -> float:
        """Objective under an arbitrary assignment."""
        return sum(
            var.objective * values.get(name, 0.0)
            for name, var in self._variables.items()
        )

    def check_feasible(
        self, values: Mapping[VarName, float], tol: float = 1e-6
    ) -> bool:
        """Whether an assignment satisfies all bounds and constraints."""
        for name, var in self._variables.items():
            x = values.get(name, 0.0)
            if x < var.lower - tol:
                return False
            if var.upper is not None and x > var.upper + tol:
                return False
        return all(c.satisfied(values, tol) for c in self.constraints)

    def solve(self, backend: str = "auto") -> LPSolution:
        """Solve the model.

        ``backend`` is ``"scipy"`` (HiGHS via :func:`scipy.optimize.linprog`),
        ``"simplex"`` (the pure-Python two-phase simplex), or ``"auto"``
        (scipy when importable, simplex otherwise).

        Raises :class:`InfeasibleLP` / :class:`UnboundedLP` on those
        statuses so callers never silently consume a non-optimal solution.
        """
        if backend == "auto":
            try:
                import scipy.optimize  # noqa: F401

                backend = "scipy"
            except ImportError:  # pragma: no cover - scipy is a dependency
                backend = "simplex"
        if backend == "scipy":
            from .scipy_backend import solve_with_scipy

            solution = solve_with_scipy(self)
        elif backend == "simplex":
            from .simplex import solve_with_simplex

            solution = solve_with_simplex(self)
        else:
            raise LPError(f"unknown backend {backend!r}")
        if solution.status == "infeasible":
            raise InfeasibleLP(f"LP {self.name!r} is infeasible")
        if solution.status == "unbounded":
            raise UnboundedLP(f"LP {self.name!r} is unbounded")
        return solution
