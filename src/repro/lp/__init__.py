"""Linear-programming substrate.

A modelling layer (:mod:`repro.lp.model`), two interchangeable solver
backends (scipy HiGHS and a pure-Python two-phase simplex), and a
cutting-plane driver for the exponentially-large constraint families of
Section 3 (the knapsack-cover inequalities of LP (4)).
"""

from .cutting_plane import CuttingPlaneResult, SeparationOracle, solve_with_cuts
from .model import (
    EQUAL,
    GREATER_EQUAL,
    LESS_EQUAL,
    Constraint,
    LinearProgram,
    LPSolution,
    Variable,
)
from .simplex import solve_standard_form, solve_with_simplex
from .scipy_backend import solve_with_scipy

__all__ = [
    "Constraint",
    "CuttingPlaneResult",
    "EQUAL",
    "GREATER_EQUAL",
    "LESS_EQUAL",
    "LPSolution",
    "LinearProgram",
    "SeparationOracle",
    "Variable",
    "solve_standard_form",
    "solve_with_cuts",
    "solve_with_scipy",
    "solve_with_simplex",
]
