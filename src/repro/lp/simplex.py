"""A dense two-phase primal simplex solver in pure numpy.

This is the library's self-contained LP backend: no external solver is
required to reproduce the paper. It is deliberately simple — dense tableau,
Bland's rule for anti-cycling — and is cross-checked against scipy's HiGHS
in the test suite. Problem sizes in the reproduction (hundreds of variables
and constraints for the 2-spanner LPs on benchmark graphs) are comfortably
within its reach.

Standard form used internally::

    minimize    c^T x
    subject to  A x = b,  x >= 0,  b >= 0

:func:`solve_with_simplex` converts a general
:class:`~repro.lp.model.LinearProgram` (bounded variables, mixed senses)
into standard form: free/lower-bounded variables are shifted, upper bounds
become rows, inequality rows gain slack/surplus variables, and phase 1
drives artificial variables to zero.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import LPError, SolverLimit
from .model import EQUAL, GREATER_EQUAL, LESS_EQUAL, LinearProgram, LPSolution

_TOL = 1e-9
#: Decisive-negativity threshold for the unboundedness verdict. A column
#: whose reduced cost is only just below ``-_TOL`` typically owes it to a
#: coefficient at the tolerance scale (e.g. an LP coefficient of exactly
#: 1e-9); when the ratio test then rejects every pivot in that column
#: (all entries <= ``_TOL``), the honest reading is "numerical noise,
#: nothing to improve", not "unbounded". Only a column that is decisively
#: improving with no positive entry certifies a real unbounded ray.
_DUAL_TOL = 1e-7


class _Tableau:
    """Dense simplex tableau for ``min c^T x : Ax = b, x >= 0``."""

    def __init__(self, a: np.ndarray, b: np.ndarray, c: np.ndarray, basis: List[int]):
        self.a = a.astype(float)
        self.b = b.astype(float)
        self.c = c.astype(float)
        self.basis = list(basis)

    def _pivot(self, row: int, col: int) -> None:
        pivot = self.a[row, col]
        self.a[row] /= pivot
        self.b[row] /= pivot
        for i in range(self.a.shape[0]):
            if i != row and abs(self.a[i, col]) > _TOL:
                factor = self.a[i, col]
                self.a[i] -= factor * self.a[row]
                self.b[i] -= factor * self.b[row]
        self.basis[row] = col

    def reduced_costs(self) -> np.ndarray:
        cb = self.c[self.basis]
        return self.c - cb @ self.a

    def run(
        self,
        max_iterations: int,
        entering_tol: float = _TOL,
        compiled: bool = False,
    ) -> str:
        """Run primal simplex (Bland's rule). Returns "optimal"/"unbounded".

        ``entering_tol`` is the dual-feasibility threshold: columns whose
        reduced cost is above ``-entering_tol`` are treated as
        non-improving. Phase 2 passes :data:`_DUAL_TOL` to match HiGHS's
        default dual tolerance — chasing descent directions whose rate is
        below what the cross-check backend considers optimal just walks
        the optimum a few ulps away from the reference answer.

        ``compiled=True`` runs the same loop in the C backend
        (:mod:`repro.compiled.simplex`): identical tolerances, entering
        scan, ratio-test tie-breaks and unbounded envelope, mutating the
        tableau in place exactly like this method — the two paths are
        pinned to the same pivot sequence by the property tests.
        """
        if compiled:
            from ..compiled.simplex import simplex_run

            status = simplex_run(
                self.a, self.b, self.c, self.basis,
                max_iterations, entering_tol, _TOL, _DUAL_TOL,
            )
            if status is None:
                raise SolverLimit(
                    f"simplex exceeded {max_iterations} iterations"
                )
            return status
        m, _n = self.a.shape
        for _ in range(max_iterations):
            reduced = self.reduced_costs()
            pivoted = False
            basic = set(self.basis)
            for entering in range(len(reduced)):
                if reduced[entering] >= -entering_tol:
                    continue  # Bland: try improving columns in index order
                if entering in basic:
                    # A basic column's reduced cost is exactly zero in
                    # exact arithmetic; a tiny negative here is float
                    # noise, and "re-entering" it pivots a variable onto
                    # its own row — a no-op that stalls forever.
                    continue
                # Ratio test, Bland tie-break on basis variable index.
                leaving = -1
                best_ratio = math.inf
                for i in range(m):
                    aij = self.a[i, entering]
                    if aij > _TOL:
                        ratio = self.b[i] / aij
                        if ratio < best_ratio - _TOL or (
                            abs(ratio - best_ratio) <= _TOL
                            and (leaving < 0 or self.basis[i] < self.basis[leaving])
                        ):
                            best_ratio = ratio
                            leaving = i
                if leaving >= 0:
                    self._pivot(leaving, entering)
                    pivoted = True
                    break
                # No positive pivot entry: the column is an unbounded ray
                # *candidate*. Its objective rate equals the reduced cost,
                # but that value is a sum of |basis|+1 cost terms, each of
                # which a dual-tolerance-sized cost perturbation (what
                # HiGHS accepts as "optimal") can move by up to _DUAL_TOL
                # times its tableau coefficient. Only a rate decisively
                # outside that envelope certifies a real unbounded ray;
                # within it, a within-tolerance perturbation of c makes
                # the direction non-improving, so the honest verdict —
                # and the one matching HiGHS — is "nothing to improve".
                envelope = _DUAL_TOL * (
                    1.0 + float(np.abs(self.a[:, entering]).sum())
                )
                if reduced[entering] < -envelope:
                    return "unbounded"
                # Barely-negative reduced cost and no tolerable pivot:
                # tolerance-scale noise, not a ray — try the next column.
            if not pivoted:
                return "optimal"
        raise SolverLimit(f"simplex exceeded {max_iterations} iterations")

    def solution(self, num_original: int) -> np.ndarray:
        x = np.zeros(self.a.shape[1])
        for i, j in enumerate(self.basis):
            x[j] = self.b[i]
        return x[:num_original]

    def objective(self) -> float:
        return float(self.c[self.basis] @ self.b)


def _resolve_lp_method(method: str) -> bool:
    """Whether the pivot loop runs compiled, from the shared vocabulary.

    The tableau is already dense numpy whatever the tier, so for the LP
    backend ``"csr"`` and ``"dict"`` both mean the reference python
    loop; ``"auto"`` upgrades to the compiled loop when the optional C
    backend (:mod:`repro.compiled`) is available, and ``"compiled"``
    requires it (raising
    :class:`repro.errors.CompiledBackendUnavailable` otherwise).
    """
    if method in ("dict", "csr"):
        return False
    if method == "auto":
        from ..compiled import compiled_available

        return compiled_available()
    if method == "compiled":
        from ..compiled import require_compiled

        require_compiled()
        return True
    raise ValueError(
        f"method must be 'auto', 'csr', 'dict', or 'compiled', got {method!r}"
    )


def solve_standard_form(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    max_iterations: int = 50_000,
    method: str = "auto",
) -> Tuple[str, Optional[np.ndarray], float]:
    """Two-phase simplex for ``min c^T x : Ax = b, x >= 0``.

    Returns ``(status, x, objective)`` with status in
    {"optimal", "infeasible", "unbounded"}. ``method`` picks the pivot
    loop backend (see :func:`_resolve_lp_method`); every tier produces
    the same pivot sequence, bases and solution vector.
    """
    compiled = _resolve_lp_method(method)
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float).copy()
    c = np.asarray(c, dtype=float).copy()
    # Cost clean-up at the dual tolerance: an objective coefficient below
    # what the dual-feasibility check can resolve is indistinguishable
    # from zero at solver precision, but phase-1 pivoting can amplify it
    # into a spurious "unbounded" ray (or walk the optimum a tolerance
    # step away from what a reference solver reports). Solving the
    # cleaned problem is exactly what HiGHS's tolerances accept. The
    # threshold is absolute — a relative one would zero genuine small
    # coefficients in wide-cost-range objectives.
    if c.size:
        c[np.abs(c) <= _DUAL_TOL] = 0.0
    m, n = a.shape
    a = a.copy()
    # Matrix clean-up mirroring HiGHS's ``small_matrix_value`` presolve:
    # an entry at the pivot tolerance cannot ever be pivoted on, but it
    # *can* pass a ratio test after rescaling and bound a genuinely
    # unbounded direction at some astronomical-but-finite value, flipping
    # the verdict relative to the reference solver.
    a[np.abs(a) <= _TOL] = 0.0
    # Ensure b >= 0 by flipping rows.
    for i in range(m):
        if b[i] < 0:
            a[i] = -a[i]
            b[i] = -b[i]

    # Phase 1: add artificials, minimize their sum.
    art = np.eye(m)
    a1 = np.hstack([a, art])
    c1 = np.concatenate([np.zeros(n), np.ones(m)])
    basis = list(range(n, n + m))
    tableau = _Tableau(a1, b, c1, basis)
    status = tableau.run(max_iterations, compiled=compiled)
    if status != "optimal" or tableau.objective() > 1e-6:
        return "infeasible", None, math.inf

    # Drive any artificial variables remaining in the basis out of it.
    for i in range(m):
        if tableau.basis[i] >= n:
            for j in range(n):
                if abs(tableau.a[i, j]) > _TOL:
                    tableau._pivot(i, j)
                    break

    # Phase 2 on the original columns. A row whose basis variable is still
    # artificial could not be pivoted out: its coefficients on the original
    # columns are all ~0 and (phase-1 optimal) its rhs is ~0, so the row is
    # redundant and is dropped. Keeping such rows alive with big-M-cost
    # artificial columns — the previous scheme — poisons every reduced
    # cost with ~1e12-scale cancellation noise, which manifested as
    # spurious "unbounded" verdicts and Bland-rule cycling on degenerate
    # instances.
    keep_rows = [i for i in range(m) if tableau.basis[i] < n]
    a2 = tableau.a[np.ix_(keep_rows, list(range(n)))]
    b2 = tableau.b[keep_rows]
    basis2 = [tableau.basis[i] for i in keep_rows]
    tableau2 = _Tableau(a2, b2, c.copy(), basis2)
    status = tableau2.run(max_iterations, entering_tol=_DUAL_TOL, compiled=compiled)
    if status == "unbounded":
        return "unbounded", None, -math.inf
    x = tableau2.solution(n)
    return "optimal", x, float(c @ x)


def _to_standard_form(lp: LinearProgram):
    """Convert a general model into standard-form matrices.

    Returns ``(a, b, c, recover)`` where ``recover(x_std)`` maps the
    standard-form vector back to a {name: value} dict.
    """
    names = lp.variable_names()
    shifts: Dict[object, float] = {}
    col_of: Dict[object, int] = {}
    columns = 0
    # Shift every variable to x' = x - lower >= 0. Free variables (lower
    # = -inf) are split into positive and negative parts.
    split_vars = []
    for name in names:
        var = lp.variable(name)
        if math.isinf(var.lower):
            split_vars.append(name)
            col_of[name] = columns
            columns += 2
        else:
            shifts[name] = var.lower
            col_of[name] = columns
            columns += 1

    rows = []
    rhs = []
    senses = []

    def _coeff_row(coeffs: Dict[object, float]) -> Tuple[np.ndarray, float]:
        row = np.zeros(columns)
        shift_total = 0.0
        for vname, coeff in coeffs.items():
            j = col_of[vname]
            if vname in split_vars:
                row[j] = coeff
                row[j + 1] = -coeff
            else:
                row[j] = coeff
                shift_total += coeff * shifts[vname]
        return row, shift_total

    for con in lp.constraints:
        row, shift_total = _coeff_row(con.coeffs)
        rows.append(row)
        rhs.append(con.rhs - shift_total)
        senses.append(con.sense)

    # Upper bounds become <= rows on the shifted variable.
    for name in names:
        var = lp.variable(name)
        if var.upper is not None and not math.isinf(var.upper):
            row = np.zeros(columns)
            j = col_of[name]
            if name in split_vars:
                row[j] = 1.0
                row[j + 1] = -1.0
                bound = var.upper
            else:
                row[j] = 1.0
                bound = var.upper - shifts[name]
            rows.append(row)
            rhs.append(bound)
            senses.append(LESS_EQUAL)

    # Slack / surplus columns for inequality rows.
    num_ineq = sum(1 for s in senses if s != EQUAL)
    total_cols = columns + num_ineq
    a = np.zeros((len(rows), total_cols))
    b = np.array(rhs, dtype=float)
    slack_col = columns
    for i, (row, sense) in enumerate(zip(rows, senses)):
        a[i, :columns] = row
        if sense == LESS_EQUAL:
            a[i, slack_col] = 1.0
            slack_col += 1
        elif sense == GREATER_EQUAL:
            a[i, slack_col] = -1.0
            slack_col += 1

    c = np.zeros(total_cols)
    objective_shift = 0.0
    for name in names:
        var = lp.variable(name)
        j = col_of[name]
        if name in split_vars:
            c[j] = var.objective
            c[j + 1] = -var.objective
        else:
            c[j] = var.objective
            objective_shift += var.objective * shifts[name]

    def recover(x_std: np.ndarray) -> Dict[object, float]:
        values: Dict[object, float] = {}
        for name in names:
            j = col_of[name]
            if name in split_vars:
                values[name] = float(x_std[j] - x_std[j + 1])
            else:
                values[name] = float(x_std[j] + shifts[name])
        return values

    return a, b, c, recover, objective_shift


def solve_with_simplex(
    lp: LinearProgram, max_iterations: int = 50_000, method: str = "auto"
) -> LPSolution:
    """Solve a :class:`LinearProgram` with the two-phase simplex.

    ``method`` selects the pivot-loop backend exactly as in
    :func:`solve_standard_form`; the default ``"auto"`` rides the
    compiled loop when :mod:`repro.compiled` is available and the
    reference python loop otherwise, with identical output either way.
    """
    if lp.num_variables == 0:
        return LPSolution(status="optimal", objective=0.0, values={})
    a, b, c, recover, shift = _to_standard_form(lp)
    if a.shape[0] == 0:
        # No constraints: optimum is each variable at its cheapest bound.
        values = {}
        total = 0.0
        for name in lp.variable_names():
            var = lp.variable(name)
            if var.objective >= 0:
                if math.isinf(var.lower):
                    return LPSolution(status="unbounded", objective=-math.inf)
                values[name] = var.lower
            else:
                if var.upper is None or math.isinf(var.upper):
                    return LPSolution(status="unbounded", objective=-math.inf)
                values[name] = var.upper
            total += var.objective * values[name]
        return LPSolution(status="optimal", objective=total, values=values)
    status, x, objective = solve_standard_form(a, b, c, max_iterations, method=method)
    if status != "optimal":
        return LPSolution(status=status, objective=math.inf)
    values = recover(x)
    return LPSolution(status="optimal", objective=objective + shift, values=values)
