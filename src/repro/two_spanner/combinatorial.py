"""A combinatorial greedy baseline for Minimum Cost r-FT 2-Spanner.

The non-fault-tolerant 2-spanner problem has classical O(log n) *purely
combinatorial* approximations (Kortsarz–Peleg [KP94], Elkin–Peleg [EP01] —
both cited in the paper's introduction). This module provides a
density-greedy baseline in that spirit, generalized to the fault-tolerant
demand structure of Lemma 3.1: every host edge carries ``r + 1`` units of
demand, cleared either by buying the edge itself (clears all of them) or
one unit per bought length-2 path.

The greedy repeatedly takes the move with the best
(demand cleared) / (cost added) ratio among:

* **buy-edge(u, v)** — clears edge (u, v)'s remaining demand outright;
* **buy-path(u, z, v)** — buys whichever of the arcs (u, z), (z, v) are
  missing; clears one unit of (u, v)'s demand *plus* all knock-on demand:
  the bought arcs are host edges themselves (their demand clears), and
  they may complete length-2 paths for other pairs.

This is a heuristic baseline, not one of the paper's contributions: the
library uses it as an independent sanity bound for the LP-based algorithms
(tests assert the LP rounding is in the same cost ballpark) and as a
practical alternative when no LP solver is wanted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

from ..errors import FaultToleranceError
from ..graph.graph import BaseGraph
from .paths2 import all_two_paths, canonical_edge_map

Vertex = Hashable
EdgeKey = Tuple[Vertex, Vertex]


@dataclass
class GreedyFT2Result:
    """Greedy output with iteration accounting."""

    spanner: BaseGraph
    moves: int

    @property
    def cost(self) -> float:
        return self.spanner.total_weight()

    @property
    def num_edges(self) -> int:
        return self.spanner.num_edges


class _GreedyState:
    """Demand bookkeeping for the density greedy."""

    def __init__(self, graph: BaseGraph, r: int):
        self.graph = graph
        self.r = r
        self.canon = canonical_edge_map(graph)
        self.midpoints = all_two_paths(graph)
        self.costs: Dict[EdgeKey, float] = {
            (u, v): w for u, v, w in graph.edges()
        }
        self.bought: Set[EdgeKey] = set()
        # demand[(u, v)]: units still required for host edge (u, v).
        self.demand: Dict[EdgeKey, int] = {
            key: r + 1 for key in self.midpoints
        }
        # paths_done[(u, v)]: midpoints already counted for (u, v).
        self.paths_done: Dict[EdgeKey, Set[Vertex]] = {
            key: set() for key in self.midpoints
        }
        # reverse index: arc -> list of (host_edge, midpoint) it appears in.
        self.arc_uses: Dict[EdgeKey, List[Tuple[EdgeKey, Vertex]]] = {
            key: [] for key in self.midpoints
        }
        for (u, v), mids in self.midpoints.items():
            for z in mids:
                self.arc_uses[self.canon[(u, z)]].append(((u, v), z))
                self.arc_uses[self.canon[(z, v)]].append(((u, v), z))

    def satisfied(self) -> bool:
        return all(d <= 0 for d in self.demand.values())

    def _arc_cost_if_missing(self, key: EdgeKey) -> float:
        return 0.0 if key in self.bought else self.costs[key]

    def _register_purchase(self, key: EdgeKey) -> int:
        """Mark an arc bought; return total demand units cleared."""
        if key in self.bought:
            return 0
        self.bought.add(key)
        cleared = max(0, self.demand.get(key, 0))
        if key in self.demand:
            self.demand[key] = 0
        # knock-on: newly completed two-paths
        for host, z in self.arc_uses[key]:
            if self.demand.get(host, 0) <= 0:
                continue
            if z in self.paths_done[host]:
                continue
            u, v = host
            if (
                self.canon[(u, z)] in self.bought
                and self.canon[(z, v)] in self.bought
            ):
                self.paths_done[host].add(z)
                self.demand[host] -= 1
                cleared += 1
        return cleared

    def _gain_of_purchase(self, keys: List[EdgeKey]) -> Tuple[int, float]:
        """(demand cleared, cost) of buying ``keys``, without committing."""
        new = [k for k in keys if k not in self.bought]
        if not new:
            return 0, 0.0
        cost = sum(self.costs[k] for k in new)
        # simulate
        cleared = 0
        hypothetical = self.bought | set(new)
        counted: Set[Tuple[EdgeKey, Vertex]] = set()
        for k in new:
            if self.demand.get(k, 0) > 0:
                cleared += self.demand[k]
        # avoid double counting direct clears of the same edge
        direct = {k for k in new if self.demand.get(k, 0) > 0}
        cleared = sum(self.demand[k] for k in direct)
        for k in new:
            for host, z in self.arc_uses[k]:
                if host in direct:
                    continue
                if self.demand.get(host, 0) <= 0:
                    continue
                if z in self.paths_done[host] or (host, z) in counted:
                    continue
                u, v = host
                if (
                    self.canon[(u, z)] in hypothetical
                    and self.canon[(z, v)] in hypothetical
                ):
                    counted.add((host, z))
                    cleared += 1
        # cap per-host clearing at remaining demand
        per_host: Dict[EdgeKey, int] = {}
        for host, _z in counted:
            per_host[host] = per_host.get(host, 0) + 1
        excess = sum(
            max(0, count - self.demand[host]) for host, count in per_host.items()
        )
        return cleared - excess, cost


def greedy_ft2_spanner(graph: BaseGraph, r: int) -> GreedyFT2Result:
    """Density-greedy r-fault-tolerant 2-spanner (combinatorial baseline).

    Always terminates with a Lemma 3.1-valid subgraph: buying a host edge
    clears its demand outright, so progress is always possible. Intended
    for small and medium instances (each iteration re-scores all candidate
    moves).
    """
    if r < 0:
        raise FaultToleranceError(f"r must be nonnegative, got {r}")
    state = _GreedyState(graph, r)
    moves = 0
    while not state.satisfied():
        best_ratio = -1.0
        best_keys: Optional[List[EdgeKey]] = None
        for (u, v), mids in state.midpoints.items():
            if state.demand[(u, v)] <= 0:
                continue
            # move A: buy the edge itself
            gain, cost = state._gain_of_purchase([(u, v)])
            if gain > 0:
                ratio = gain / cost if cost > 0 else float("inf")
                if ratio > best_ratio:
                    best_ratio = ratio
                    best_keys = [(u, v)]
            # move B: buy a completing two-path
            for z in mids:
                if z in state.paths_done[(u, v)]:
                    continue
                keys = [state.canon[(u, z)], state.canon[(z, v)]]
                gain, cost = state._gain_of_purchase(keys)
                if gain <= 0:
                    continue
                ratio = gain / cost if cost > 0 else float("inf")
                if ratio > best_ratio:
                    best_ratio = ratio
                    best_keys = keys
        if best_keys is None:  # pragma: no cover - buy-edge always available
            raise FaultToleranceError("greedy could not make progress")
        for key in best_keys:
            state._register_purchase(key)
        moves += 1
    return GreedyFT2Result(
        spanner=graph.edge_subgraph(state.bought), moves=moves
    )
