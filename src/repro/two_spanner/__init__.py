"""Section 3 machinery: Minimum Cost r-Fault Tolerant 2-Spanner.

LP relaxations (the [DK10] flow LP and the paper's knapsack-cover LP (4)),
the Lemma 3.2 separation oracle, Algorithm 1 threshold rounding, the
Moser–Tardos O(log Δ) rounding of Theorem 3.4, an exact branch-and-bound
solver for tiny instances, and the paper's two integrality-gap
demonstrations.

The end-to-end approximation drivers self-register in
:mod:`repro.registry` as ``ft2-approx`` and ``dk10-baseline``
(fixed stretch 2, directed hosts) for the spec/session front door.
"""

from .approx import ApproxResult, approximate_ft2_spanner, dk10_baseline
from .client_server import (
    ClientServerResult,
    approximate_client_server_2spanner,
    build_client_server_lp,
    client_edge_satisfied,
    is_client_server_ft2_spanner,
    solve_client_server_lp,
)
from .combinatorial import GreedyFT2Result, greedy_ft2_spanner
from .exact import ExactResult, exact_minimum_ft2_spanner
from .gaps import (
    CompleteGraphGap,
    GadgetGap,
    gadget_optimum,
    kc_gap_on_gadget,
    old_lp_gap_on_complete_graph,
)
from .lll import LLLResult, moser_tardos_rounding
from .lp_new import (
    FT2LPResult,
    FT2SpannerLP,
    build_ft2_lp,
    f_var,
    knapsack_cover_oracle,
    solve_ft2_lp,
    x_var,
)
from .lp_old import (
    OldLPResult,
    build_old_lp,
    complete_graph_fractional_value,
    complete_graph_integral_lower_bound,
    solve_old_lp,
)
from .paths2 import all_two_paths, path_edges, surviving_midpoints, two_path_midpoints
from .rounding import (
    RoundingResult,
    alpha_log_delta,
    alpha_log_n,
    alpha_r_log_n,
    draw_thresholds,
    round_once,
    round_until_valid,
    select_edges,
)

__all__ = [
    "ApproxResult",
    "ClientServerResult",
    "CompleteGraphGap",
    "ExactResult",
    "FT2LPResult",
    "FT2SpannerLP",
    "GadgetGap",
    "GreedyFT2Result",
    "LLLResult",
    "OldLPResult",
    "RoundingResult",
    "all_two_paths",
    "alpha_log_delta",
    "alpha_log_n",
    "alpha_r_log_n",
    "approximate_client_server_2spanner",
    "approximate_ft2_spanner",
    "build_client_server_lp",
    "build_ft2_lp",
    "build_old_lp",
    "client_edge_satisfied",
    "complete_graph_fractional_value",
    "complete_graph_integral_lower_bound",
    "dk10_baseline",
    "draw_thresholds",
    "exact_minimum_ft2_spanner",
    "f_var",
    "gadget_optimum",
    "greedy_ft2_spanner",
    "is_client_server_ft2_spanner",
    "kc_gap_on_gadget",
    "knapsack_cover_oracle",
    "moser_tardos_rounding",
    "old_lp_gap_on_complete_graph",
    "path_edges",
    "round_once",
    "round_until_valid",
    "select_edges",
    "solve_client_server_lp",
    "solve_ft2_lp",
    "solve_old_lp",
    "surviving_midpoints",
    "two_path_midpoints",
    "x_var",
]
