"""Enumeration of length-2 paths, the combinatorial core of Section 3.

For an edge ``(u, v)`` the paper writes ``P_{u,v}`` for the set of paths of
length exactly two from ``u`` to ``v``. In a digraph these are exactly the
midpoints ``z`` with arcs ``(u, z)`` and ``(z, v)``; in an undirected graph,
the common neighbours of ``u`` and ``v``. Because a length-2 path is
determined by its midpoint, each edge of the graph lies on at most one path
of ``P_{u,v}`` for fixed ``(u, v)`` — which is why the capacity constraints
of LP (3)/(4) reduce to ``f_P <= x_e`` for the two edges of ``P``.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from ..graph.csr import snapshot
from ..graph.graph import BaseGraph

Vertex = Hashable
EdgeKey = Tuple[Vertex, Vertex]


def two_path_midpoints(graph: BaseGraph, u: Vertex, v: Vertex) -> List[Vertex]:
    """Midpoints ``z`` of length-2 paths from ``u`` to ``v`` in ``graph``."""
    if not graph.has_vertex(u) or not graph.has_vertex(v):
        return []
    if graph.directed:
        mids = set(graph.successors(u)) & set(graph.predecessors(v))
    else:
        mids = set(graph.neighbors(u)) & set(graph.neighbors(v))
    mids.discard(u)
    mids.discard(v)
    return sorted(mids, key=repr)


def all_two_paths(graph: BaseGraph) -> Dict[EdgeKey, List[Vertex]]:
    """Map every edge ``(u, v)`` of the graph to its ``P_{u,v}`` midpoints.

    For undirected graphs the key is the edge as iterated by
    :meth:`~repro.graph.graph.Graph.edges` (one orientation per edge).

    Implementation: one CSR snapshot provides the edge list in ``edges()``
    order and index-space adjacency; neighbour sets are materialized once
    per vertex instead of once per incident edge, which turns the
    enumeration from O(Σ deg²·hash) into O(m + Σ intersections). Midpoint
    order (sorted by ``repr``) matches the per-pair
    :func:`two_path_midpoints` exactly.
    """
    if graph.num_vertices == 0:
        return {}
    snap = snapshot(graph)
    n = snap.num_vertices
    verts = snap.verts
    edge_u, edge_v = snap.edge_u, snap.edge_v
    if snap.directed:
        succ: List[set] = [set() for _ in range(n)]
        pred: List[set] = [set() for _ in range(n)]
        for u, v in zip(edge_u, edge_v):
            succ[u].add(v)
            pred[v].add(u)
    else:
        succ = [set() for _ in range(n)]
        pred = succ
        for u, v in zip(edge_u, edge_v):
            succ[u].add(v)
            succ[v].add(u)
    reprs = [repr(v) for v in verts]
    out: Dict[EdgeKey, List[Vertex]] = {}
    for u, v in zip(edge_u, edge_v):
        mids = succ[u] & pred[v]
        mids.discard(u)
        mids.discard(v)
        out[(verts[u], verts[v])] = [
            verts[z] for z in sorted(mids, key=reprs.__getitem__)
        ]
    return out


def path_edges(u: Vertex, z: Vertex, v: Vertex) -> List[EdgeKey]:
    """The two edges of the length-2 path ``u -> z -> v``."""
    return [(u, z), (z, v)]


def surviving_midpoints(
    midpoints: List[Vertex], faults: set
) -> List[Vertex]:
    """Midpoints whose path survives the fault set (midpoint not faulty)."""
    return [z for z in midpoints if z not in faults]


def canonical_edge_map(graph: BaseGraph) -> Dict[EdgeKey, EdgeKey]:
    """Map both orientations of every edge to its canonical key.

    :meth:`Graph.edges` yields each undirected edge in one arbitrary
    orientation; path edges ``(u, z)`` produced by midpoint enumeration may
    be stored the other way round. This map normalizes lookups — for
    digraphs it is the identity on arcs.
    """
    mapping: Dict[EdgeKey, EdgeKey] = {}
    for u, v, _w in graph.edges():
        mapping[(u, v)] = (u, v)
        if not graph.directed:
            mapping[(v, u)] = (u, v)
    return mapping
