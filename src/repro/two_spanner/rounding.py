"""Algorithm 1 — threshold rounding for the 2-spanner LPs.

Every vertex draws an independent uniform threshold ``T_v ∈ [0, 1]``; edge
``(u, v)`` is bought when ``min(T_u, T_v) <= α · x_{uv}``. With
``α = C ln n`` against LP (4), Theorem 3.3 shows the output is a valid
r-fault-tolerant 2-spanner with high probability at cost ``O(log n) · LP``;
with ``α = C r ln n`` (the [DK10] setting) the same scheme rounds the old
relaxation at cost ``O(r log n) · LP``.

The rounding is Monte Carlo. The production driver
:func:`round_until_valid` re-rounds on failure (Lemma 3.1 gives a
polynomial validity check) and falls back to *repairing* — directly buying
the unsatisfied edges — after ``max_attempts``, so it always returns a
valid spanner; repairs are counted and reported, and in the benchmark runs
with the theorem's α they essentially never trigger.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from ..core.verify import IncrementalFT2Verifier, unsatisfied_edges
from ..errors import RoundingError
from ..graph.graph import BaseGraph
from ..rng import RandomLike, derive_rng, ensure_rng

Vertex = Hashable
EdgeKey = Tuple[Vertex, Vertex]


def alpha_log_n(n: int, constant: float = 4.0) -> float:
    """Theorem 3.3 inflation ``α = C ln n`` (C defaults to 4)."""
    return constant * math.log(max(n, 2))


def alpha_r_log_n(n: int, r: int, constant: float = 4.0) -> float:
    """[DK10] baseline inflation ``α = C r ln n``."""
    return constant * max(r, 1) * math.log(max(n, 2))


def alpha_log_delta(delta: int, constant: float = 4.0) -> float:
    """Theorem 3.4 inflation ``α = C ln Δ`` for bounded-degree graphs."""
    return constant * math.log(max(delta, 2))


def draw_thresholds(graph: BaseGraph, rng) -> Dict[Vertex, float]:
    """Independent uniform [0, 1] thresholds, one per vertex."""
    return {v: rng.random() for v in graph.vertices()}


def select_edges(
    graph: BaseGraph,
    x_values: Dict[EdgeKey, float],
    thresholds: Dict[Vertex, float],
    alpha: float,
) -> BaseGraph:
    """Apply the Algorithm 1 selection rule to fixed thresholds."""
    chosen = []
    for (u, v), x in x_values.items():
        if min(thresholds[u], thresholds[v]) <= alpha * x:
            chosen.append((u, v))
    return graph.edge_subgraph(chosen)


def round_once(
    graph: BaseGraph,
    x_values: Dict[EdgeKey, float],
    alpha: float,
    seed: RandomLike = None,
) -> BaseGraph:
    """One Monte Carlo application of Algorithm 1."""
    rng = ensure_rng(seed)
    thresholds = draw_thresholds(graph, rng)
    return select_edges(graph, x_values, thresholds, alpha)


@dataclass
class RoundingResult:
    """Validated rounding output with attempt/repair accounting."""

    spanner: BaseGraph
    attempts: int
    repaired_edges: List[EdgeKey] = field(default_factory=list)
    alpha: float = 0.0

    @property
    def cost(self) -> float:
        return self.spanner.total_weight()

    @property
    def num_edges(self) -> int:
        return self.spanner.num_edges


def round_until_valid(
    graph: BaseGraph,
    x_values: Dict[EdgeKey, float],
    r: int,
    alpha: float,
    max_attempts: int = 20,
    seed: RandomLike = None,
    repair: bool = True,
) -> RoundingResult:
    """Las-Vegas driver for Algorithm 1.

    Round, check Lemma 3.1, retry with fresh thresholds on failure. If
    ``max_attempts`` roundings all fail and ``repair`` is set, the cheapest
    failed attempt is patched by buying its unsatisfied host edges
    outright (each repaired edge is recorded); otherwise raises
    :class:`~repro.errors.RoundingError`.
    """
    rng = ensure_rng(seed)
    best: Optional[BaseGraph] = None
    best_cost = math.inf
    for attempt in range(1, max_attempts + 1):
        candidate = round_once(graph, x_values, alpha, derive_rng(rng, attempt))
        missing = unsatisfied_edges(candidate, graph, r)
        if not missing:
            return RoundingResult(spanner=candidate, attempts=attempt, alpha=alpha)
        cost = candidate.total_weight()
        if cost < best_cost:
            best, best_cost = candidate, cost
    if not repair or best is None:
        raise RoundingError(
            f"Algorithm 1 failed to produce a valid spanner in {max_attempts} attempts"
        )
    # Repairs can only satisfy more edges (Lemma 3.1 is monotone), so
    # buying every unsatisfied host edge yields a valid spanner; the
    # incremental verifier tracks the two-path counts at O(Δ) per added
    # edge and certifies the outcome instead of leaving it implied.
    verifier = IncrementalFT2Verifier(graph, r, spanner=best)
    repaired = []
    for (u, v) in verifier.unsatisfied():
        best.add_edge(u, v, graph.weight(u, v))
        verifier.add_edge(u, v)
        repaired.append((u, v))
    if not verifier.is_valid():  # pragma: no cover - defensive
        raise RoundingError("repair failed to reach a valid spanner")
    return RoundingResult(
        spanner=best, attempts=max_attempts, repaired_edges=repaired, alpha=alpha
    )
