"""The paper's two integrality-gap demonstrations, as runnable experiments.

* Section 3.1: the old flow relaxation LP (2) has gap Ω(r) on the complete
  graph — the LP pays ~``n²/(n-r-2)`` while any integral solution needs
  ~``(r+1)n`` arcs (min in/out degree r+1).
* Section 3.2: LP (3) *without* knapsack-cover inequalities has gap Ω(r) on
  the M-gadget — the LP sets ``x_{uv} = 1/(r+1)`` on the expensive edge,
  while the integral optimum must buy it outright. Adding the KC family
  (i.e. solving LP (4)) closes the gap completely on this instance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..graph.generators import complete_digraph, knapsack_gap_gadget
from .exact import exact_minimum_ft2_spanner
from .lp_new import solve_ft2_lp
from .lp_old import (
    complete_graph_fractional_value,
    complete_graph_integral_lower_bound,
    solve_old_lp,
)


@dataclass
class CompleteGraphGap:
    """E4 measurement on the directed complete graph ``K_n``."""

    n: int
    r: int
    lp_value: float
    analytic_lp_upper: float
    integral_lower_bound: float
    exact_opt: float  # nan when the exact solve was skipped

    @property
    def gap_lower_bound(self) -> float:
        """Certified integrality gap: integral LB over LP value."""
        if self.lp_value <= 0:
            return math.inf
        return self.integral_lower_bound / self.lp_value


def old_lp_gap_on_complete_graph(
    n: int, r: int, backend: str = "auto", solve_exact: bool = False
) -> CompleteGraphGap:
    """Measure the Section 3.1 gap of LP (2) on ``K_n`` (directed, unit costs).

    ``solve_exact`` additionally runs the branch-and-bound optimum, which
    is only feasible for very small ``n`` (the arc count is ``n(n-1)``).
    """
    graph = complete_digraph(n)
    lp = solve_old_lp(graph, r, backend=backend)
    exact_opt = math.nan
    if solve_exact:
        exact_opt = exact_minimum_ft2_spanner(graph, r).cost
    return CompleteGraphGap(
        n=n,
        r=r,
        lp_value=lp.objective,
        analytic_lp_upper=complete_graph_fractional_value(n, r),
        integral_lower_bound=complete_graph_integral_lower_bound(n, r),
        exact_opt=exact_opt,
    )


@dataclass
class GadgetGap:
    """E5 measurement on the knapsack-cover gadget."""

    r: int
    expensive_cost: float
    lp3_value: float  # without knapsack-cover inequalities
    lp4_value: float  # with knapsack-cover inequalities
    opt: float

    @property
    def gap_without_kc(self) -> float:
        return self.opt / self.lp3_value if self.lp3_value > 0 else math.inf

    @property
    def gap_with_kc(self) -> float:
        return self.opt / self.lp4_value if self.lp4_value > 0 else math.inf


def gadget_optimum(r: int, expensive_cost: float) -> float:
    """Integral optimum of the M-gadget: ``M + 2r``.

    Every cheap arc ``(u, w_i)`` / ``(w_i, v)`` has *no* length-2 path
    between its endpoints, so Lemma 3.1 forces all ``2r`` of them into any
    feasible solution. The expensive arc has exactly ``r`` two-paths — one
    short of the ``r + 1`` Lemma 3.1 demands — so it must be bought too.
    """
    return expensive_cost + 2.0 * r


def kc_gap_on_gadget(
    r: int, expensive_cost: float = 1000.0, backend: str = "auto"
) -> GadgetGap:
    """Measure the Section 3.2 gap with and without knapsack-cover cuts."""
    graph = knapsack_gap_gadget(r, expensive_cost)
    lp3 = solve_ft2_lp(graph, r, backend=backend, with_knapsack_cover=False)
    lp4 = solve_ft2_lp(graph, r, backend=backend, with_knapsack_cover=True)
    return GadgetGap(
        r=r,
        expensive_cost=expensive_cost,
        lp3_value=lp3.objective,
        lp4_value=lp4.objective,
        opt=gadget_optimum(r, expensive_cost),
    )
