"""Exact minimum-cost r-fault-tolerant 2-spanners on tiny instances.

Branch and bound over edge subsets, with Lemma 3.1 as the feasibility
predicate. Used by tests and by the integrality-gap experiments (E4, E5) to
report true optima where that is tractable; approximation-ratio experiments
at larger scale use the LP optimum as the lower bound instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

from ..errors import FaultToleranceError
from ..graph.graph import BaseGraph
from .paths2 import all_two_paths, canonical_edge_map

Vertex = Hashable
EdgeKey = Tuple[Vertex, Vertex]

#: Default guard: 2^22 subsets is the most the default settings will search
#: (with pruning the practical node count is far smaller).
MAX_EDGES = 22


@dataclass
class ExactResult:
    """Optimal spanner, its cost, and search statistics."""

    spanner: BaseGraph
    cost: float
    nodes_explored: int

    @property
    def num_edges(self) -> int:
        return self.spanner.num_edges


def _satisfied(
    chosen: Set[EdgeKey],
    host_edges: List[EdgeKey],
    midpoints: Dict[EdgeKey, List[Vertex]],
    r: int,
    canon: Dict[EdgeKey, EdgeKey],
) -> bool:
    """Lemma 3.1 feasibility of the chosen edge set."""
    for (u, v) in host_edges:
        if (u, v) in chosen:
            continue
        covered = 0
        for z in midpoints[(u, v)]:
            if canon[(u, z)] in chosen and canon[(z, v)] in chosen:
                covered += 1
                if covered > r:
                    break
        if covered <= r:
            return False
    return True


def _satisfiable_upper(
    chosen: Set[EdgeKey],
    available: Set[EdgeKey],
    host_edges: List[EdgeKey],
    midpoints: Dict[EdgeKey, List[Vertex]],
    r: int,
    canon: Dict[EdgeKey, EdgeKey],
) -> bool:
    """Could ``chosen ∪ available`` ever satisfy every host edge?"""
    pool = chosen | available
    return _satisfied(pool, host_edges, midpoints, r, canon)


def exact_minimum_ft2_spanner(
    graph: BaseGraph, r: int, max_edges: int = MAX_EDGES
) -> ExactResult:
    """Exact branch-and-bound solver for Minimum Cost r-FT 2-Spanner.

    Edges are decided most-expensive-first (excluding an expensive edge
    early gives the strongest pruning). A node is pruned when its committed
    cost meets the incumbent or when even buying every undecided edge
    cannot satisfy Lemma 3.1.

    Raises :class:`~repro.errors.FaultToleranceError` when the instance
    itself is infeasible (some edge cannot be satisfied even by the whole
    graph — impossible, since buying every edge always works) or when it
    exceeds ``max_edges``.
    """
    if r < 0:
        raise FaultToleranceError(f"r must be nonnegative, got {r}")
    edges = sorted(graph.edges(), key=lambda e: -e[2])
    m = len(edges)
    if m > max_edges:
        raise FaultToleranceError(
            f"instance has {m} edges; exact search is limited to {max_edges}"
        )
    midpoints = all_two_paths(graph)
    host_edges = list(midpoints.keys())
    canon = canonical_edge_map(graph)

    # Incumbent: the full edge set (always feasible).
    best_set: Set[EdgeKey] = {(u, v) for u, v, _w in edges}
    best_cost = sum(w for _u, _v, w in edges)
    nodes = 0

    keys = [(u, v) for u, v, _w in edges]
    costs = [w for _u, _v, w in edges]
    suffix_sets: List[Set[EdgeKey]] = [set() for _ in range(m + 1)]
    for i in range(m - 1, -1, -1):
        suffix_sets[i] = suffix_sets[i + 1] | {keys[i]}

    chosen: Set[EdgeKey] = set()

    def dfs(i: int, cost: float) -> None:
        nonlocal best_cost, best_set, nodes
        nodes += 1
        if cost >= best_cost:
            return
        if i == m:
            if _satisfied(chosen, host_edges, midpoints, r, canon):
                best_cost = cost
                best_set = set(chosen)
            return
        if not _satisfiable_upper(
            chosen, suffix_sets[i], host_edges, midpoints, r, canon
        ):
            return
        # Branch 1: exclude the expensive edge first.
        dfs(i + 1, cost)
        # Branch 2: include it.
        chosen.add(keys[i])
        dfs(i + 1, cost + costs[i])
        chosen.discard(keys[i])

    dfs(0, 0.0)
    if not _satisfied(best_set, host_edges, midpoints, r, canon):  # pragma: no cover
        raise FaultToleranceError("search ended without a feasible solution")
    return ExactResult(
        spanner=graph.edge_subgraph(best_set),
        cost=best_cost,
        nodes_explored=nodes,
    )
