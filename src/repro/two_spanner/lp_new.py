"""The paper's new LP relaxation — LP (3) strengthened to LP (4).

Variables (all for the *host* graph ``G = (V, E)`` with costs ``c_e``):

* ``("x", u, v)`` — fractional purchase of edge ``(u, v) ∈ E``, in [0, 1];
* ``("f", u, z, v)`` — flow on the length-2 path ``u → z → v`` (midpoint
  ``z ∈ P_{u,v}``), nonnegative.

Constraint families:

* **capacity** — for every edge ``(u, v)`` and every path ``P ∈ P_{u,v}``,
  the flow on ``P`` is at most the purchase of each of its two edges.
  (Because each edge lies on at most one path of ``P_{u,v}``, the paper's
  per-edge sums collapse to these pairwise bounds; see
  :mod:`repro.two_spanner.paths2`.)
* **cover (W = ∅)** — ``(r+1)·x_{uv} + Σ_P f_P >= r+1``: either buy the
  edge or route ``r + 1`` units through length-2 paths (Lemma 3.1's
  fractional shadow).
* **knapsack-cover** — for every ``W ⊆ P_{u,v}``, ``|W| <= r``:
  ``(r+1-|W|)·x_{uv} + Σ_{P∉W} f_P >= r+1-|W|``. Exponentially many; added
  on demand by the Lemma 3.2 separation oracle
  (:func:`knapsack_cover_oracle`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from ..errors import LPError
from ..graph.graph import BaseGraph
from ..lp.cutting_plane import CuttingPlaneResult, solve_with_cuts
from ..lp.model import (
    Constraint,
    GREATER_EQUAL,
    LESS_EQUAL,
    LinearProgram,
    LPSolution,
)
from .paths2 import all_two_paths, canonical_edge_map, two_path_midpoints

Vertex = Hashable
EdgeKey = Tuple[Vertex, Vertex]


def x_var(u: Vertex, v: Vertex) -> Tuple[str, Vertex, Vertex]:
    """Variable key for the purchase of edge ``(u, v)``."""
    return ("x", u, v)


def f_var(u: Vertex, z: Vertex, v: Vertex) -> Tuple[str, Vertex, Vertex, Vertex]:
    """Variable key for the flow on path ``u → z → v``."""
    return ("f", u, z, v)


@dataclass
class FT2SpannerLP:
    """A built LP (3)/(4) model plus the path structure used to build it."""

    lp: LinearProgram
    graph: BaseGraph
    r: int
    two_paths: Dict[EdgeKey, List[Vertex]]

    def edge_keys(self) -> List[EdgeKey]:
        return list(self.two_paths.keys())

    def x_values(self, solution: LPSolution) -> Dict[EdgeKey, float]:
        """Extract the edge purchase values from a solution."""
        return {
            (u, v): solution.value(x_var(u, v)) for (u, v) in self.two_paths
        }


def build_ft2_lp(graph: BaseGraph, r: int) -> FT2SpannerLP:
    """Build the base relaxation (LP (3)): capacity + W = ∅ cover rows.

    Knapsack-cover rows for ``W ≠ ∅`` are *not* included; they are added by
    the separation oracle during :func:`solve_ft2_lp`. Costs are read from
    the graph's edge weights (the Section 3 convention: unit lengths,
    arbitrary costs).

    Row assembly is vectorized: the edge list, costs, and midpoint
    structure come from the graph's CSR snapshot (one pass, no per-edge
    dict walks), every ``x`` variable key is created exactly once and
    reused through a canonical-orientation lookup, and the capacity/cover
    rows are built as plain :class:`Constraint` records appended in bulk.
    The produced model is *identical* — variables, order, bounds,
    coefficients, names — to the reference builder
    (:func:`_build_ft2_lp_reference`), which the tests assert.
    """
    if r < 0:
        raise LPError(f"r must be nonnegative, got {r}")
    lp = LinearProgram(name=f"ft2spanner(r={r})")
    from ..graph.csr import snapshot

    paths = all_two_paths(graph)
    snap = snapshot(graph)
    verts = snap.verts

    # x variables, one per edge in edges() order; keys cached for reuse.
    xkeys: Dict[EdgeKey, Tuple[str, Vertex, Vertex]] = {}
    for ui, vi, w in zip(snap.edge_u, snap.edge_v, snap.edge_w):
        u, v = verts[ui], verts[vi]
        key = x_var(u, v)
        lp.add_variable(key, 0.0, 1.0, objective=w)
        xkeys[(u, v)] = key
        if not snap.directed:
            xkeys[(v, u)] = key
    for (u, v), mids in paths.items():
        for z in mids:
            lp.add_variable(f_var(u, z, v), 0.0, None, objective=0.0)

    rows: List[Constraint] = []
    need = float(r + 1)
    for (u, v), mids in paths.items():
        cover = {xkeys[(u, v)]: need}
        for z in mids:
            f = f_var(u, z, v)
            # capacity on both edges of the path (each edge lies on at most
            # one path of P_{u,v}, so the per-edge sum is a single term).
            # Path edges are normalized to the orientation the x variables
            # were declared under (relevant for undirected graphs).
            rows.append(
                Constraint(
                    coeffs={f: 1.0, xkeys[(u, z)]: -1.0},
                    sense=LESS_EQUAL, rhs=0.0, name=f"cap1:{u}-{z}-{v}",
                )
            )
            rows.append(
                Constraint(
                    coeffs={f: 1.0, xkeys[(z, v)]: -1.0},
                    sense=LESS_EQUAL, rhs=0.0, name=f"cap2:{u}-{z}-{v}",
                )
            )
            cover[f] = 1.0
        rows.append(
            Constraint(
                coeffs=cover, sense=GREATER_EQUAL, rhs=need, name=f"cover:{u}-{v}"
            )
        )
    lp.extend_constraints(rows)
    return FT2SpannerLP(lp=lp, graph=graph, r=r, two_paths=paths)


def _build_ft2_lp_reference(graph: BaseGraph, r: int) -> FT2SpannerLP:
    """The original per-edge dict-walk builder (kept as the equivalence
    and benchmark baseline for the vectorized :func:`build_ft2_lp`)."""
    if r < 0:
        raise LPError(f"r must be nonnegative, got {r}")
    lp = LinearProgram(name=f"ft2spanner(r={r})")
    paths = {
        (u, v): two_path_midpoints(graph, u, v) for u, v, _w in graph.edges()
    }
    canon = canonical_edge_map(graph)

    for (u, v) in paths:
        lp.add_variable(x_var(u, v), 0.0, 1.0, objective=graph.weight(u, v))
    for (u, v), mids in paths.items():
        for z in mids:
            lp.add_variable(f_var(u, z, v), 0.0, None, objective=0.0)

    for (u, v), mids in paths.items():
        cover = {x_var(u, v): float(r + 1)}
        for z in mids:
            f = f_var(u, z, v)
            lp.add_constraint(
                {f: 1.0, x_var(*canon[(u, z)]): -1.0},
                LESS_EQUAL, 0.0, name=f"cap1:{u}-{z}-{v}",
            )
            lp.add_constraint(
                {f: 1.0, x_var(*canon[(z, v)]): -1.0},
                LESS_EQUAL, 0.0, name=f"cap2:{u}-{z}-{v}",
            )
            cover[f] = 1.0
        lp.add_constraint(cover, GREATER_EQUAL, float(r + 1), name=f"cover:{u}-{v}")
    return FT2SpannerLP(lp=lp, graph=graph, r=r, two_paths=paths)


def knapsack_cover_oracle(model: FT2SpannerLP, tol: float = 1e-7):
    """Lemma 3.2's separation oracle for the knapsack-cover family.

    For each edge ``(u, v)``, sort path flows in nonincreasing order; if
    some ``W ⊆ P_{u,v}`` violates its inequality then the worst offender is
    ``W_j`` = the ``j`` largest-flow paths for some ``j <= r``, so checking
    those ``r`` prefixes suffices (paper, proof of Lemma 3.2). Returns the
    most violated prefix constraint per edge.
    """

    def oracle(solution: LPSolution) -> List[Constraint]:
        cuts: List[Constraint] = []
        r = model.r
        for (u, v), mids in model.two_paths.items():
            if not mids:
                continue
            flows = sorted(
                ((solution.value(f_var(u, z, v)), z) for z in mids), reverse=True,
                key=lambda item: (item[0], repr(item[1])),
            )
            x_uv = solution.value(x_var(u, v))
            best_cut: Optional[Constraint] = None
            best_violation = tol
            prefix_flow = sum(f for f, _z in flows)
            # j = 0 is the base cover constraint already in the model.
            for j in range(1, min(r, len(flows)) + 1):
                prefix_flow -= flows[j - 1][0]
                need = r + 1 - j
                lhs = need * x_uv + prefix_flow
                violation = need - lhs
                if violation > best_violation:
                    coeffs = {x_var(u, v): float(need)}
                    for f, z in flows[j:]:
                        coeffs[f_var(u, z, v)] = 1.0
                    best_cut = Constraint(
                        coeffs=coeffs,
                        sense=GREATER_EQUAL,
                        rhs=float(need),
                        name=f"kc:{u}-{v}:|W|={j}",
                    )
                    best_violation = violation
            if best_cut is not None:
                cuts.append(best_cut)
        return cuts

    return oracle


@dataclass
class FT2LPResult:
    """Solved relaxation: optimum, x values, and cut accounting."""

    model: FT2SpannerLP
    solution: LPSolution
    objective: float
    cut_rounds: int
    cuts_added: int

    def x_values(self) -> Dict[EdgeKey, float]:
        return self.model.x_values(self.solution)


def solve_ft2_lp(
    graph: BaseGraph,
    r: int,
    backend: str = "auto",
    with_knapsack_cover: bool = True,
    max_rounds: int = 200,
) -> FT2LPResult:
    """Build and solve LP (4) (or plain LP (3) when KC cuts are disabled).

    ``with_knapsack_cover=False`` is the E5 ablation: on the
    :func:`~repro.graph.generators.knapsack_gap_gadget` instance the
    un-strengthened relaxation undershoots the optimum by a factor Ω(r).
    """
    model = build_ft2_lp(graph, r)
    oracles = [knapsack_cover_oracle(model)] if with_knapsack_cover else []
    result: CuttingPlaneResult = solve_with_cuts(
        model.lp, oracles, backend=backend, max_rounds=max_rounds
    )
    return FT2LPResult(
        model=model,
        solution=result.solution,
        objective=result.solution.objective,
        cut_rounds=result.rounds,
        cuts_added=result.cuts_added,
    )
