"""The previous LP relaxation — IP/LP (2) from [DK10], built explicitly.

This is the relaxation the paper *rejects*: per-fault-set flow variables
``f^F_P`` and constraints "one unit of flow from u to v survives every
fault set F". The paper's Section 3.1 shows its integrality gap is Ω(r)
already on the complete graph, which motivates the knapsack-cover LP (4).

We materialize the whole program (every fault set ``|F| <= r``), so this is
only usable at small ``(n, r)`` — exactly how experiment E4 uses it. Note
``P^F_{u,v}`` includes the direct edge ``(u, v)`` itself as a "path"
alongside the surviving length-2 paths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from ..core.verify import count_fault_sets, fault_sets
from ..errors import LPError
from ..graph.graph import BaseGraph
from ..lp.model import GREATER_EQUAL, LESS_EQUAL, LinearProgram, LPSolution
from .lp_new import x_var
from .paths2 import all_two_paths, canonical_edge_map, surviving_midpoints

Vertex = Hashable
EdgeKey = Tuple[Vertex, Vertex]

#: Refuse to materialize LP (2) beyond this many fault sets.
MAX_FAULT_SETS = 50_000


def flow_var(faults: Tuple[Vertex, ...], u: Vertex, mid: Optional[Vertex], v: Vertex):
    """Variable key for ``f^F_P``; ``mid=None`` encodes the direct edge."""
    return ("fF", faults, u, mid, v)


@dataclass
class OldLPResult:
    """Solved LP (2) relaxation."""

    lp: LinearProgram
    solution: LPSolution
    objective: float
    num_fault_sets: int

    def x_values(self) -> Dict[EdgeKey, float]:
        return {
            key[1:]: val
            for key, val in self.solution.values.items()
            if isinstance(key, tuple) and key and key[0] == "x"
        }


def build_old_lp(graph: BaseGraph, r: int, max_fault_sets: int = MAX_FAULT_SETS):
    """Materialize the full LP (2) relaxation for ``graph`` and ``r``."""
    if r < 0:
        raise LPError(f"r must be nonnegative, got {r}")
    n = graph.num_vertices
    total = count_fault_sets(n, r)
    if total > max_fault_sets:
        raise LPError(
            f"LP (2) needs {total} fault sets here, over the limit {max_fault_sets}"
        )
    lp = LinearProgram(name=f"dk10-old-lp(r={r})")
    paths = all_two_paths(graph)
    canon = canonical_edge_map(graph)
    for (u, v) in paths:
        lp.add_variable(x_var(u, v), 0.0, 1.0, objective=graph.weight(u, v))

    vertices = list(graph.vertices())
    num_fault_sets = 0
    for faults in fault_sets(vertices, r):
        fault_set = set(faults)
        num_fault_sets += 1
        for (u, v), mids in paths.items():
            if u in fault_set or v in fault_set:
                continue
            survivors = surviving_midpoints(mids, fault_set)
            # Flow variables for this fault set: direct edge + 2-paths.
            direct = flow_var(faults, u, None, v)
            lp.add_variable(direct, 0.0, None, 0.0)
            lp.add_constraint(
                {direct: 1.0, x_var(u, v): -1.0}, LESS_EQUAL, 0.0,
                name=f"capF:{faults}:{u}-{v}",
            )
            demand = {direct: 1.0}
            for z in survivors:
                f = flow_var(faults, u, z, v)
                lp.add_variable(f, 0.0, None, 0.0)
                lp.add_constraint(
                    {f: 1.0, x_var(*canon[(u, z)]): -1.0}, LESS_EQUAL, 0.0,
                    name=f"capF1:{faults}:{u}-{z}-{v}",
                )
                lp.add_constraint(
                    {f: 1.0, x_var(*canon[(z, v)]): -1.0}, LESS_EQUAL, 0.0,
                    name=f"capF2:{faults}:{u}-{z}-{v}",
                )
                demand[f] = 1.0
            lp.add_constraint(
                demand, GREATER_EQUAL, 1.0, name=f"flow:{faults}:{u}-{v}"
            )
    return lp, num_fault_sets


def solve_old_lp(
    graph: BaseGraph,
    r: int,
    backend: str = "auto",
    max_fault_sets: int = MAX_FAULT_SETS,
) -> OldLPResult:
    """Solve the [DK10] relaxation exactly (small instances only)."""
    lp, num_fault_sets = build_old_lp(graph, r, max_fault_sets)
    solution = lp.solve(backend=backend)
    return OldLPResult(
        lp=lp,
        solution=solution,
        objective=solution.objective,
        num_fault_sets=num_fault_sets,
    )


def complete_graph_fractional_value(n: int, r: int) -> float:
    """The paper's closed-form feasible value of LP (2) on ``K_n``.

    Setting every capacity to ``1/(n - r - 2)`` routes one unit of flow
    between any surviving pair after any ``r`` faults, for total cost
    ``n(n-1)/(n-r-2)`` — O(n) for r bounded away from n. The true optimum
    can only be smaller, so this upper-bounds the LP and certifies the
    Ω(r) gap against the integral optimum of ~``rn``.
    """
    if n - r - 2 <= 0:
        return math.inf
    return n * (n - 1) / (n - r - 2)


def complete_graph_integral_lower_bound(n: int, r: int) -> float:
    """Integral optimum lower bound on ``K_n`` (directed): ``n·r/1``…

    Every vertex needs in-degree and out-degree at least ``r + 1`` in the
    spanner — otherwise deleting its at-most-r in-(or out-)neighbours
    isolates it while K_n minus those vertices still has the edge. Summing
    out-degrees gives at least ``n (r + 1) / 1`` arcs; undirected K_n
    similarly needs min degree ``r + 1`` hence ``n (r + 1) / 2`` edges.
    """
    return n * (r + 1)
