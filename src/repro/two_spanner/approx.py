"""End-to-end approximation drivers for Minimum Cost r-FT 2-Spanner.

:func:`approximate_ft2_spanner` is Theorem 3.3: solve LP (4) (knapsack-cover
cuts via Lemma 3.2), round with Algorithm 1 at ``α = C ln n``. The returned
ratio is measured against the LP optimum, which lower-bounds OPT, so the
reported ``cost / lp`` is an upper bound on the true approximation factor.

:func:`dk10_baseline` reproduces the prior state of the art the paper
improves on: the same rounding scheme but inflated by ``α = C r ln n``
(which is what [DK10]'s weaker relaxation forces). E6 sweeps ``r`` and
shows the baseline's cost growing linearly in ``r`` while Theorem 3.3's
stays flat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Tuple

from ..errors import LPError
from ..graph.graph import BaseGraph
from ..registry import register_algorithm
from ..rng import RandomLike
from .lp_new import FT2LPResult, solve_ft2_lp
from .lp_old import solve_old_lp
from .rounding import (
    RoundingResult,
    alpha_log_n,
    alpha_r_log_n,
    round_until_valid,
)

Vertex = Hashable


@dataclass
class ApproxResult:
    """A rounded spanner together with its LP certificate."""

    rounding: RoundingResult
    lp_objective: float
    alpha: float
    cut_rounds: int = 0
    cuts_added: int = 0

    @property
    def spanner(self) -> BaseGraph:
        return self.rounding.spanner

    @property
    def cost(self) -> float:
        return self.rounding.cost

    @property
    def ratio_vs_lp(self) -> float:
        """cost / LP — an upper bound on the achieved approximation ratio."""
        if self.lp_objective <= 0:
            return 1.0 if self.cost <= 0 else float("inf")
        return self.cost / self.lp_objective


def approximate_ft2_spanner(
    graph: BaseGraph,
    r: int,
    seed: RandomLike = None,
    backend: str = "auto",
    alpha_constant: float = 4.0,
    max_attempts: int = 20,
) -> ApproxResult:
    """Theorem 3.3: randomized O(log n)-approximation, independent of r."""
    lp_result: FT2LPResult = solve_ft2_lp(graph, r, backend=backend)
    alpha = alpha_log_n(graph.num_vertices, alpha_constant)
    rounding = round_until_valid(
        graph,
        lp_result.x_values(),
        r,
        alpha,
        max_attempts=max_attempts,
        seed=seed,
    )
    return ApproxResult(
        rounding=rounding,
        lp_objective=lp_result.objective,
        alpha=alpha,
        cut_rounds=lp_result.cut_rounds,
        cuts_added=lp_result.cuts_added,
    )


def dk10_baseline(
    graph: BaseGraph,
    r: int,
    seed: RandomLike = None,
    backend: str = "auto",
    alpha_constant: float = 4.0,
    max_attempts: int = 20,
    use_old_lp: bool = False,
) -> ApproxResult:
    """The O(r log n) baseline of [DK10].

    By default rounds the *new* LP's x values with the [DK10] inflation
    ``α = C r ln n`` — isolating exactly the α difference the paper's
    analysis removes. With ``use_old_lp=True`` the x values come from the
    materialized LP (2) (small instances only), matching [DK10] end to end.
    """
    if use_old_lp:
        old = solve_old_lp(graph, r, backend=backend)
        x_values = old.x_values()
        lp_objective = old.objective
        cut_rounds = cuts_added = 0
    else:
        lp_result = solve_ft2_lp(graph, r, backend=backend)
        x_values = lp_result.x_values()
        lp_objective = lp_result.objective
        cut_rounds = lp_result.cut_rounds
        cuts_added = lp_result.cuts_added
    alpha = alpha_r_log_n(graph.num_vertices, r, alpha_constant)
    rounding = round_until_valid(
        graph, x_values, r, alpha, max_attempts=max_attempts, seed=seed
    )
    return ApproxResult(
        rounding=rounding,
        lp_objective=lp_objective,
        alpha=alpha,
        cut_rounds=cut_rounds,
        cuts_added=cuts_added,
    )


def _approx_stats(result: ApproxResult) -> dict:
    """JSON-able certificate row for a :class:`BuildReport`."""
    return {
        "lp_objective": result.lp_objective,
        "cost": result.cost,
        "ratio_vs_lp": result.ratio_vs_lp,
        "alpha": result.alpha,
        "cut_rounds": result.cut_rounds,
        "cuts_added": result.cuts_added,
        "rounding_attempts": result.rounding.attempts,
        "repaired_edges": len(result.rounding.repaired_edges),
    }


@register_algorithm(
    "ft2-approx",
    summary="Theorem 3.3 O(log n)-approx minimum-cost r-FT 2-spanner",
    stretch_domain="exactly 2 (unit lengths, per-edge costs)",
    weighted=True,
    directed=True,
    fault_tolerant=True,
    stretch_kind="fixed",
    fixed_stretch=2,
)
def _registry_build_new(graph: BaseGraph, spec, seed):
    """Spec adapter: ``SpannerSpec -> approximate_ft2_spanner``."""
    from ..spec import require_fault_kind, require_stretch

    require_stretch(spec, 2)
    require_fault_kind(spec, "vertex", "none")
    result = approximate_ft2_spanner(
        graph,
        spec.faults.r,
        seed=seed,
        backend=spec.param("backend", "auto"),
        alpha_constant=spec.param("alpha_constant", 4.0),
        max_attempts=spec.param("max_attempts", 20),
    )
    return result, _approx_stats(result)


@register_algorithm(
    "dk10-baseline",
    summary="[DK10] O(r log n) baseline (alpha inflated by r)",
    stretch_domain="exactly 2 (unit lengths, per-edge costs)",
    weighted=True,
    directed=True,
    fault_tolerant=True,
    stretch_kind="fixed",
    fixed_stretch=2,
)
def _registry_build_old(graph: BaseGraph, spec, seed):
    """Spec adapter: ``SpannerSpec -> dk10_baseline``."""
    from ..spec import require_fault_kind, require_stretch

    require_stretch(spec, 2)
    require_fault_kind(spec, "vertex", "none")
    result = dk10_baseline(
        graph,
        spec.faults.r,
        seed=seed,
        backend=spec.param("backend", "auto"),
        alpha_constant=spec.param("alpha_constant", 4.0),
        max_attempts=spec.param("max_attempts", 20),
        use_old_lp=spec.param("use_old_lp", False),
    )
    return result, _approx_stats(result)
