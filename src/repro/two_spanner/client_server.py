"""Client–server r-fault-tolerant 2-spanners (Elkin–Peleg style).

The paper's introduction credits the O(log n) non-fault-tolerant 2-spanner
approximation to Kortsarz–Peleg [KP94] and Elkin–Peleg [EP01]; the latter
studies the *client–server* generalization: only a designated subset of
**client** edges must be spanned, while any **server** edge may be bought
to do the spanning. Plain 2-spanners are the special case clients =
servers = E.

The knapsack-cover machinery extends verbatim: Lemma 3.1 becomes "every
client edge is bought or covered by r + 1 length-2 paths *of server
edges*", the LP gets cover rows only for client edges while x variables
range over server edges, and Algorithm 1's rounding and analysis go
through unchanged (the union bound is over client edges only). This
module implements that generalization end to end:

* :func:`build_client_server_lp` — LP (4) restricted to a client set;
* :func:`solve_client_server_lp` — with the Lemma 3.2 separation oracle;
* :func:`approximate_client_server_2spanner` — LP + threshold rounding;
* :func:`is_client_server_ft2_spanner` — the generalized Lemma 3.1 check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from ..errors import FaultToleranceError, LPError
from ..graph.graph import BaseGraph
from ..lp.cutting_plane import solve_with_cuts
from ..lp.model import GREATER_EQUAL, LESS_EQUAL, LinearProgram
from ..rng import RandomLike, derive_rng, ensure_rng
from .lp_new import FT2SpannerLP, f_var, knapsack_cover_oracle, x_var
from .paths2 import all_two_paths, canonical_edge_map, two_path_midpoints
from .rounding import alpha_log_n, draw_thresholds

Vertex = Hashable
EdgeKey = Tuple[Vertex, Vertex]


def _normalize_clients(
    graph: BaseGraph, clients: Iterable[EdgeKey]
) -> List[EdgeKey]:
    """Validate client edges and normalize to the host orientation."""
    canon = canonical_edge_map(graph)
    normalized = []
    seen: Set[EdgeKey] = set()
    for (u, v) in clients:
        if (u, v) not in canon:
            raise LPError(f"client edge ({u!r}, {v!r}) is not a host edge")
        key = canon[(u, v)]
        if key not in seen:
            seen.add(key)
            normalized.append(key)
    return normalized


def build_client_server_lp(
    graph: BaseGraph, clients: Iterable[EdgeKey], r: int
) -> FT2SpannerLP:
    """LP (4) with cover rows only for ``clients``.

    x variables (and costs) cover every host edge — all edges are servers —
    but only client edges demand ``r + 1`` units of direct-plus-2-path
    coverage.
    """
    if r < 0:
        raise LPError(f"r must be nonnegative, got {r}")
    client_keys = _normalize_clients(graph, clients)
    canon = canonical_edge_map(graph)
    lp = LinearProgram(name=f"client-server-ft2(r={r})")
    for u, v, w in graph.edges():
        lp.add_variable(x_var(u, v), 0.0, 1.0, objective=w)

    paths: Dict[EdgeKey, List[Vertex]] = {}
    for (u, v) in client_keys:
        mids = two_path_midpoints(graph, u, v)
        paths[(u, v)] = mids
        cover = {x_var(u, v): float(r + 1)}
        for z in mids:
            f = f_var(u, z, v)
            lp.add_variable(f, 0.0, None, 0.0)
            lp.add_constraint(
                {f: 1.0, x_var(*canon[(u, z)]): -1.0}, LESS_EQUAL, 0.0
            )
            lp.add_constraint(
                {f: 1.0, x_var(*canon[(z, v)]): -1.0}, LESS_EQUAL, 0.0
            )
            cover[f] = 1.0
        lp.add_constraint(cover, GREATER_EQUAL, float(r + 1))
    return FT2SpannerLP(lp=lp, graph=graph, r=r, two_paths=paths)


@dataclass
class ClientServerResult:
    """Rounded client–server spanner with its LP certificate."""

    spanner: BaseGraph
    lp_objective: float
    alpha: float
    attempts: int
    repaired_edges: List[EdgeKey]

    @property
    def cost(self) -> float:
        return self.spanner.total_weight()


def solve_client_server_lp(
    graph: BaseGraph,
    clients: Iterable[EdgeKey],
    r: int,
    backend: str = "auto",
):
    """Solve the client–server LP (4) with knapsack-cover separation."""
    model = build_client_server_lp(graph, clients, r)
    result = solve_with_cuts(model.lp, [knapsack_cover_oracle(model)], backend=backend)
    return model, result.solution


def client_edge_satisfied(
    spanner: BaseGraph, graph: BaseGraph, u: Vertex, v: Vertex, r: int
) -> bool:
    """Generalized Lemma 3.1 condition for one client edge."""
    if spanner.has_edge(u, v):
        return True
    count = 0
    for z in two_path_midpoints(graph, u, v):
        if spanner.has_edge(u, z) and spanner.has_edge(z, v):
            count += 1
            if count > r:
                return True
    return False


def is_client_server_ft2_spanner(
    spanner: BaseGraph,
    graph: BaseGraph,
    clients: Iterable[EdgeKey],
    r: int,
) -> bool:
    """Check every client edge against the generalized Lemma 3.1."""
    if r < 0:
        raise FaultToleranceError(f"r must be nonnegative, got {r}")
    return all(
        client_edge_satisfied(spanner, graph, u, v, r)
        for (u, v) in _normalize_clients(graph, clients)
    )


def approximate_client_server_2spanner(
    graph: BaseGraph,
    clients: Iterable[EdgeKey],
    r: int,
    seed: RandomLike = None,
    backend: str = "auto",
    alpha_constant: float = 4.0,
    max_attempts: int = 20,
) -> ClientServerResult:
    """O(log n)-approximation for the client–server problem.

    The Theorem 3.3 pipeline with cover demands restricted to the client
    set; Las-Vegas rounding with the repair fallback of
    :func:`repro.two_spanner.rounding.round_until_valid` (repairs buy the
    unsatisfied *client* edges directly).
    """
    client_keys = _normalize_clients(graph, clients)
    model, solution = solve_client_server_lp(graph, clients, r, backend=backend)
    x_values = {
        (u, v): solution.value(x_var(u, v)) for u, v, _w in graph.edges()
    }
    alpha = alpha_log_n(graph.num_vertices, alpha_constant)
    rng = ensure_rng(seed)

    best = None
    best_cost = float("inf")
    for attempt in range(1, max_attempts + 1):
        thresholds = draw_thresholds(graph, derive_rng(rng, attempt))
        chosen = [
            key
            for key, x in x_values.items()
            if min(thresholds[key[0]], thresholds[key[1]]) <= alpha * x
        ]
        candidate = graph.edge_subgraph(chosen)
        if is_client_server_ft2_spanner(candidate, graph, client_keys, r):
            return ClientServerResult(
                spanner=candidate,
                lp_objective=solution.objective,
                alpha=alpha,
                attempts=attempt,
                repaired_edges=[],
            )
        cost = candidate.total_weight()
        if cost < best_cost:
            best, best_cost = candidate, cost
    assert best is not None
    repaired = [
        (u, v)
        for (u, v) in client_keys
        if not client_edge_satisfied(best, graph, u, v, r)
    ]
    for (u, v) in repaired:
        best.add_edge(u, v, graph.weight(u, v))
    return ClientServerResult(
        spanner=best,
        lp_objective=solution.objective,
        alpha=alpha,
        attempts=max_attempts,
        repaired_edges=repaired,
    )
