"""Theorem 3.4 — O(log Δ) rounding via the Moser–Tardos algorithm.

For unit edge costs and maximum degree Δ, the paper shrinks Algorithm 1's
inflation to ``α = C log Δ`` and replaces the union bound with the Lovász
Local Lemma: the "bad" events are

* ``A_{u,v}`` — host edge ``(u, v)`` unsatisfied (not bought and fewer than
  ``r + 1`` length-2 paths bought), and
* ``B_u`` — the locally-charged cost around ``u`` exceeds
  ``4α(Σ_out x + Σ_in x)`` (these events replace the global Markov bound,
  which the conditional LLL distribution would invalidate).

Each event depends on O(Δ) threshold variables and conflicts with O(Δ³)
other events, so for a large enough ``C`` the symmetric LLL applies and
the Moser–Tardos resampling algorithm (implemented here in its vanilla
form: while some bad event occurs, resample that event's variables) finds
thresholds avoiding every event in expected polynomial time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from ..errors import RoundingError
from ..graph.graph import BaseGraph
from ..rng import RandomLike, ensure_rng
from .paths2 import all_two_paths, canonical_edge_map
from .rounding import alpha_log_delta

Vertex = Hashable
EdgeKey = Tuple[Vertex, Vertex]


@dataclass
class MoserTardosEvent:
    """A bad event: a predicate over a fixed set of threshold variables."""

    name: str
    scope: Tuple[Vertex, ...]

    def occurs(self, state: "_RoundingState") -> bool:  # pragma: no cover
        raise NotImplementedError


class _RoundingState:
    """Thresholds plus derived edge selections, kept consistent lazily."""

    def __init__(
        self,
        graph: BaseGraph,
        x_values: Dict[EdgeKey, float],
        alpha: float,
        rng,
    ) -> None:
        self.graph = graph
        self.alpha = alpha
        self.rng = rng
        # Normalize x lookups to both orientations (undirected graphs store
        # each edge under one arbitrary orientation).
        canon = canonical_edge_map(graph)
        self.x_values: Dict[EdgeKey, float] = dict(x_values)
        for key, canonical in canon.items():
            if key not in self.x_values and canonical in x_values:
                self.x_values[key] = x_values[canonical]
        self.thresholds: Dict[Vertex, float] = {
            v: rng.random() for v in graph.vertices()
        }

    def edge_selected(self, u: Vertex, v: Vertex) -> bool:
        x = self.x_values.get((u, v), 0.0)
        return min(self.thresholds[u], self.thresholds[v]) <= self.alpha * x

    def resample(self, scope: Sequence[Vertex]) -> None:
        for v in scope:
            self.thresholds[v] = self.rng.random()


class _EdgeEvent(MoserTardosEvent):
    """``A_{u,v}``: host edge unsatisfied under the current thresholds."""

    def __init__(self, u: Vertex, v: Vertex, midpoints: List[Vertex], r: int):
        scope = tuple(dict.fromkeys([u, v, *midpoints]))
        super().__init__(name=f"A:{u}->{v}", scope=scope)
        self.u = u
        self.v = v
        self.midpoints = midpoints
        self.r = r

    def occurs(self, state: _RoundingState) -> bool:
        if state.edge_selected(self.u, self.v):
            return False
        covered = 0
        for z in self.midpoints:
            if state.edge_selected(self.u, z) and state.edge_selected(z, self.v):
                covered += 1
                if covered > self.r:
                    return False
        return True


class _CostEvent(MoserTardosEvent):
    """``B_u``: charged cost around ``u`` above ``4α`` times its LP mass."""

    def __init__(
        self,
        u: Vertex,
        out_items: List[Tuple[Vertex, float]],
        in_items: List[Tuple[Vertex, float]],
        alpha: float,
    ):
        scope = tuple(dict.fromkeys([z for z, _x in out_items + in_items]))
        super().__init__(name=f"B:{u}", scope=scope)
        self.u = u
        self.out_items = out_items
        self.in_items = in_items
        lp_mass = sum(x for _z, x in out_items) + sum(x for _z, x in in_items)
        self.budget = 4.0 * alpha * lp_mass

    def occurs(self, state: _RoundingState) -> bool:
        alpha = state.alpha
        charged = sum(
            1
            for v, x in self.out_items
            if state.thresholds[v] <= alpha * x
        )
        charged += sum(
            1
            for v, x in self.in_items
            if state.thresholds[v] <= alpha * x
        )
        return charged > self.budget


@dataclass
class LLLResult:
    """Moser–Tardos output with resampling accounting."""

    spanner: BaseGraph
    resamples: int
    alpha: float

    @property
    def cost(self) -> float:
        return self.spanner.total_weight()

    @property
    def num_edges(self) -> int:
        return self.spanner.num_edges


def _build_events(
    graph: BaseGraph,
    x_values: Dict[EdgeKey, float],
    two_paths: Dict[EdgeKey, List[Vertex]],
    r: int,
    alpha: float,
    include_cost_events: bool,
) -> List[MoserTardosEvent]:
    events: List[MoserTardosEvent] = []
    for (u, v), mids in two_paths.items():
        events.append(_EdgeEvent(u, v, mids, r))
    if include_cost_events:
        for u in graph.vertices():
            if graph.directed:
                out_items = [
                    (v, x_values.get((u, v), 0.0)) for v in graph.successors(u)
                ]
                in_items = [
                    (v, x_values.get((v, u), 0.0)) for v in graph.predecessors(u)
                ]
            else:
                out_items = [
                    (v, x_values.get((u, v), x_values.get((v, u), 0.0)))
                    for v in graph.neighbors(u)
                ]
                in_items = []
            if out_items or in_items:
                events.append(_CostEvent(u, out_items, in_items, alpha))
    return events


def moser_tardos_rounding(
    graph: BaseGraph,
    x_values: Dict[EdgeKey, float],
    r: int,
    alpha: Optional[float] = None,
    alpha_constant: float = 4.0,
    include_cost_events: bool = True,
    max_resamples: Optional[int] = None,
    seed: RandomLike = None,
) -> LLLResult:
    """Round LP values with ``α = C log Δ`` and Moser–Tardos resampling.

    Parameters
    ----------
    graph:
        Host graph; Theorem 3.4 assumes unit costs and max degree Δ, but
        the resampler itself runs on any instance.
    x_values:
        LP (4) edge values.
    r:
        Fault-tolerance target (drives the ``A_{u,v}`` events).
    alpha:
        Inflation; defaults to ``alpha_constant · ln Δ``.
    include_cost_events:
        Whether to include the ``B_u`` cost-control events (the paper needs
        them for the cost bound; disabling them is an ablation that shows
        validity alone is easier).
    max_resamples:
        Cap on resampling steps; defaults to ``50 · (#events + 1)``.
        Exceeding it raises :class:`~repro.errors.RoundingError` — under
        the LLL condition this is vanishingly unlikely.
    """
    delta = graph.max_degree()
    if alpha is None:
        alpha = alpha_log_delta(max(delta, 2), alpha_constant)
    rng = ensure_rng(seed)
    state = _RoundingState(graph, x_values, alpha, rng)
    two_paths = all_two_paths(graph)
    events = _build_events(
        graph, x_values, two_paths, r, alpha, include_cost_events
    )
    if max_resamples is None:
        max_resamples = 50 * (len(events) + 1)

    resamples = 0
    while True:
        bad = next((e for e in events if e.occurs(state)), None)
        if bad is None:
            break
        if resamples >= max_resamples:
            raise RoundingError(
                f"Moser-Tardos exceeded {max_resamples} resamples "
                f"(alpha={alpha:.3f}); increase alpha_constant"
            )
        state.resample(bad.scope)
        resamples += 1

    chosen = [
        (u, v) for (u, v) in two_paths if state.edge_selected(u, v)
    ]
    return LLLResult(
        spanner=graph.edge_subgraph(chosen), resamples=resamples, alpha=alpha
    )
