"""The scheduler :class:`Manifest`: what one shared directory executes.

A manifest pins a scheduled sweep the way a shard envelope pins its plan:
strict JSON with a format tag, the parent plan's content fingerprint, the
shard count, and the failure-handling knobs (lease TTL, attempt cap,
backoff, per-shard wall-clock timeout). Workers joining from any machine
read ``manifest.json`` + ``plan.json`` out of the directory and refuse to
run if the plan on disk does not hash to the fingerprint the manifest
pins — two machines with divergent copies of the sweep can never mix
their shards.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, replace
from typing import Any, Dict, Mapping, Optional

from ..errors import InvalidSpec

#: Format tags of the scheduler's on-disk documents.
MANIFEST_FORMAT = "repro-sched-manifest"
ATTEMPT_FORMAT = "repro-sched-attempt"
QUARANTINE_FORMAT = "repro-sched-quarantine"
SCHED_VERSION = 1

#: File and subdirectory names inside a scheduler directory.
MANIFEST_FILE = "manifest.json"
PLAN_FILE = "plan.json"
REPORTS_DIR = "reports"
LEASES_DIR = "leases"
ATTEMPTS_DIR = "attempts"
FAILED_DIR = "failed"
TMP_DIR = "tmp"


def atomic_write_json(doc: Mapping[str, Any], path: str) -> str:
    """Serialize ``doc`` and move it into place atomically, fsynced.

    The same discipline as :func:`repro.sweep.save_shard_report`: the temp
    file lives in the target directory (same filesystem, invisible to the
    ``*.json`` globs) and is ``os.replace``d over ``path``, so a writer
    killed at any instant leaves either the old content or the new —
    never a truncated document.
    """
    directory = os.path.dirname(path) or "."
    blob = json.dumps(doc, sort_keys=True, indent=2) + "\n"
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise
    return path


@dataclass(frozen=True)
class Manifest:
    """Immutable description of one scheduled sweep.

    ``plan_fingerprint`` is the content fingerprint of the resolved
    :class:`repro.sweep.SweepPlan` stored next to the manifest; ``of`` is
    the fixed shard count every worker partitions that plan into. The
    remaining fields tune failure handling:

    * ``lease_ttl_s`` — a lease whose heartbeat is older than this is
      considered abandoned (crashed or hung worker) and reclaimable;
    * ``max_attempts`` — after this many failed attempts a shard is
      quarantined into the ``failed/`` ledger instead of retried;
    * ``backoff_base_s`` / ``backoff_cap_s`` — capped exponential backoff
      between retries of one shard (``base * 2**(attempt-1)``, capped);
    * ``shard_timeout_s`` — optional wall-clock budget per shard; a child
      exceeding it is killed and the attempt recorded as timed out;
    * ``include_spanner`` — forwarded to :func:`repro.sweep.run_shard`.
    """

    plan_fingerprint: str
    of: int
    name: str = "sweep"
    lease_ttl_s: float = 30.0
    max_attempts: int = 3
    backoff_base_s: float = 0.5
    backoff_cap_s: float = 30.0
    shard_timeout_s: Optional[float] = None
    include_spanner: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.plan_fingerprint, str) or not self.plan_fingerprint:
            raise InvalidSpec(
                f"manifest needs a plan fingerprint string, got "
                f"{self.plan_fingerprint!r}"
            )
        if not isinstance(self.of, int) or self.of < 1:
            raise InvalidSpec(f"manifest shard count must be >= 1, got {self.of!r}")
        if self.lease_ttl_s <= 0:
            raise InvalidSpec(
                f"lease_ttl_s must be positive, got {self.lease_ttl_s!r}"
            )
        if not isinstance(self.max_attempts, int) or self.max_attempts < 1:
            raise InvalidSpec(
                f"max_attempts must be an int >= 1, got {self.max_attempts!r}"
            )
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise InvalidSpec("backoff values must be nonnegative")
        if self.shard_timeout_s is not None and self.shard_timeout_s <= 0:
            raise InvalidSpec(
                f"shard_timeout_s must be positive or None, got "
                f"{self.shard_timeout_s!r}"
            )

    def backoff_s(self, attempts: int) -> float:
        """Delay before retrying a shard that has failed ``attempts`` times."""
        if attempts <= 0:
            return 0.0
        return min(self.backoff_cap_s, self.backoff_base_s * 2 ** (attempts - 1))

    def replace(self, **changes: Any) -> "Manifest":
        return replace(self, **changes)

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": MANIFEST_FORMAT,
            "version": SCHED_VERSION,
            "name": self.name,
            "plan": self.plan_fingerprint,
            "of": self.of,
            "lease_ttl_s": self.lease_ttl_s,
            "max_attempts": self.max_attempts,
            "backoff_base_s": self.backoff_base_s,
            "backoff_cap_s": self.backoff_cap_s,
            "shard_timeout_s": self.shard_timeout_s,
            "include_spanner": self.include_spanner,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Manifest":
        if not isinstance(data, Mapping):
            raise InvalidSpec(f"manifest must be a mapping, got {data!r}")
        if data.get("format") != MANIFEST_FORMAT:
            raise InvalidSpec(
                f"not a scheduler manifest: format={data.get('format')!r} "
                f"(expected {MANIFEST_FORMAT!r})"
            )
        if data.get("version", SCHED_VERSION) != SCHED_VERSION:
            raise InvalidSpec(
                f"unsupported scheduler manifest version "
                f"{data.get('version')!r} (this library reads version "
                f"{SCHED_VERSION})"
            )
        known = {
            "format", "version", "name", "plan", "of", "lease_ttl_s",
            "max_attempts", "backoff_base_s", "backoff_cap_s",
            "shard_timeout_s", "include_spanner",
        }
        extra = set(data) - known
        if extra:
            raise InvalidSpec(
                f"scheduler manifest has unknown keys {sorted(extra)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(
            plan_fingerprint=data.get("plan"),
            of=data.get("of"),
            name=data.get("name", "sweep"),
            lease_ttl_s=float(data.get("lease_ttl_s", 30.0)),
            max_attempts=data.get("max_attempts", 3),
            backoff_base_s=float(data.get("backoff_base_s", 0.5)),
            backoff_cap_s=float(data.get("backoff_cap_s", 30.0)),
            shard_timeout_s=(
                None if data.get("shard_timeout_s") is None
                else float(data["shard_timeout_s"])
            ),
            include_spanner=bool(data.get("include_spanner", False)),
        )

    def save(self, path: str) -> None:
        atomic_write_json(self.to_dict(), path)

    @classmethod
    def load(cls, path: str) -> "Manifest":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise InvalidSpec(
                f"{path}: scheduler manifest is not valid JSON ({exc}); "
                "the directory may not be a scheduler directory, or the "
                "manifest was hand-edited"
            ) from exc
        return cls.from_dict(data)


__all__ = [
    "ATTEMPT_FORMAT",
    "ATTEMPTS_DIR",
    "FAILED_DIR",
    "LEASES_DIR",
    "MANIFEST_FILE",
    "MANIFEST_FORMAT",
    "Manifest",
    "PLAN_FILE",
    "QUARANTINE_FORMAT",
    "REPORTS_DIR",
    "SCHED_VERSION",
    "TMP_DIR",
    "atomic_write_json",
]
