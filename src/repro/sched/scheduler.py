"""Scheduler-directory state: init, scan, reclaim, quarantine, merge.

A scheduler directory is the whole coordination fabric — no broker, no
database, just files whose creation and rename are atomic on a shared
filesystem:

```
DIR/
  manifest.json   # Manifest: plan fingerprint, shard count, TTL, limits
  plan.json       # the resolved SweepPlan every worker partitions
  leases/         # shard-<i>.lease       — live claims (heartbeated)
  attempts/       # shard-<i>.attempt-<k>.json — failure records
  failed/         # shard-<i>.json        — the quarantine ledger
  reports/        # shard-<i>.json        — completed envelopes (merge input)
  tmp/            # worker scratch (error captures), invisible to merges
```

A shard's lifecycle reads directly off the directory: *pending* (no
file anywhere), *claimed* (fresh lease), *expired* (stale lease, about
to be reclaimed), *retrying* (attempt records, waiting out backoff),
*done* (envelope in ``reports/``), *quarantined* (ledger entry in
``failed/``). :func:`scheduler_status` renders exactly that, read-only;
:func:`reclaim_expired_leases` performs the one mutating scan (stealing
stale leases into attempt records and quarantining shards past the
attempt cap).
"""

from __future__ import annotations

import glob
import json
import os
import re
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..errors import InvalidSpec, ShardQuarantined
from ..rng import RandomLike
from ..sweep import SHARD_FILE, SweepPlan
from .lease import (
    _now,
    is_expired,
    lease_age_s,
    lease_path,
    read_lease,
)
from .manifest import (
    ATTEMPT_FORMAT,
    ATTEMPTS_DIR,
    FAILED_DIR,
    LEASES_DIR,
    MANIFEST_FILE,
    PLAN_FILE,
    QUARANTINE_FORMAT,
    REPORTS_DIR,
    SCHED_VERSION,
    TMP_DIR,
    Manifest,
    atomic_write_json,
)

_ATTEMPT_RE = re.compile(r"shard-(\d+)\.attempt-(\d+)\.json$")


def manifest_path(sched_dir: str) -> str:
    return os.path.join(sched_dir, MANIFEST_FILE)


def plan_path(sched_dir: str) -> str:
    return os.path.join(sched_dir, PLAN_FILE)


def reports_dir(sched_dir: str) -> str:
    return os.path.join(sched_dir, REPORTS_DIR)


def leases_dir(sched_dir: str) -> str:
    return os.path.join(sched_dir, LEASES_DIR)


def attempts_dir(sched_dir: str) -> str:
    return os.path.join(sched_dir, ATTEMPTS_DIR)


def failed_dir(sched_dir: str) -> str:
    return os.path.join(sched_dir, FAILED_DIR)


def tmp_dir(sched_dir: str) -> str:
    return os.path.join(sched_dir, TMP_DIR)


def is_scheduler_dir(path: str) -> bool:
    """Whether ``path`` looks like an initialized scheduler directory."""
    return os.path.isdir(path) and os.path.isfile(manifest_path(path))


def envelope_path(sched_dir: str, index: int) -> str:
    return os.path.join(reports_dir(sched_dir), SHARD_FILE.format(index=index))


def quarantine_path(sched_dir: str, index: int) -> str:
    return os.path.join(failed_dir(sched_dir), SHARD_FILE.format(index=index))


# ---------------------------------------------------------------------------
# Initialization and loading
# ---------------------------------------------------------------------------


def init_scheduler_dir(
    sched_dir: str,
    plan: SweepPlan,
    of: Optional[int] = None,
    seed: RandomLike = 0,
    lease_ttl_s: float = 30.0,
    max_attempts: int = 3,
    backoff_base_s: float = 0.5,
    backoff_cap_s: float = 30.0,
    shard_timeout_s: Optional[float] = None,
    include_spanner: bool = False,
) -> Tuple[Manifest, SweepPlan]:
    """Create (or idempotently re-join) a scheduler directory.

    The plan's seeds are resolved first — the manifest pins the resolved
    plan's content fingerprint, so every worker partitions byte-identical
    state. Re-initializing an existing directory is allowed only when the
    manifest already there pins the same fingerprint and shard count
    (makes ``repro sweep --scheduler`` safe to re-run after a crash);
    anything else is refused loudly.
    """
    plan = plan.resolve_seeds(seed)
    if of is None:
        of = min(len(plan), 2 * os.cpu_count() if os.cpu_count() else 4) or 1
    if of < 1 or of > len(plan):
        raise InvalidSpec(
            f"scheduler shard count must satisfy 1 <= of <= plan size "
            f"({len(plan)}), got {of}"
        )
    manifest = Manifest(
        plan_fingerprint=plan.fingerprint(),
        of=of,
        name=plan.name,
        lease_ttl_s=lease_ttl_s,
        max_attempts=max_attempts,
        backoff_base_s=backoff_base_s,
        backoff_cap_s=backoff_cap_s,
        shard_timeout_s=shard_timeout_s,
        include_spanner=include_spanner,
    )
    os.makedirs(sched_dir, exist_ok=True)
    for sub in (REPORTS_DIR, LEASES_DIR, ATTEMPTS_DIR, FAILED_DIR, TMP_DIR):
        os.makedirs(os.path.join(sched_dir, sub), exist_ok=True)
    existing = manifest_path(sched_dir)
    if os.path.exists(existing):
        found = Manifest.load(existing)
        if (found.plan_fingerprint, found.of) != (
            manifest.plan_fingerprint, manifest.of,
        ):
            raise InvalidSpec(
                f"{sched_dir} already schedules plan "
                f"{found.plan_fingerprint} in {found.of} shards; refusing to "
                f"re-initialize it for plan {manifest.plan_fingerprint} in "
                f"{manifest.of} shards (use a fresh directory)"
            )
        return found, SweepPlan.load(plan_path(sched_dir))
    plan.save(plan_path(sched_dir))
    manifest.save(existing)
    return manifest, plan


def load_scheduler(sched_dir: str) -> Tuple[Manifest, SweepPlan]:
    """Read a scheduler directory's manifest + plan, cross-checked.

    The fingerprint check is what lets workers on different machines
    trust a shared directory: if ``plan.json`` does not hash to what the
    manifest pins (a divergent copy, a partial rsync), joining is refused
    instead of silently computing shards of the wrong sweep.
    """
    if not is_scheduler_dir(sched_dir):
        raise InvalidSpec(
            f"{sched_dir} is not a scheduler directory (no {MANIFEST_FILE}); "
            "initialize one with `repro sweep PLAN --scheduler DIR`"
        )
    manifest = Manifest.load(manifest_path(sched_dir))
    plan = SweepPlan.load(plan_path(sched_dir))
    if not plan.is_resolved:
        raise InvalidSpec(
            f"{plan_path(sched_dir)} is unresolved; scheduler plans must "
            "carry explicit per-spec seeds"
        )
    fingerprint = plan.fingerprint()
    if fingerprint != manifest.plan_fingerprint:
        raise InvalidSpec(
            f"{plan_path(sched_dir)} hashes to {fingerprint} but the "
            f"manifest pins {manifest.plan_fingerprint}; the plan file (or a "
            "path host it references) diverged from what this directory "
            "schedules"
        )
    return manifest, plan


# ---------------------------------------------------------------------------
# Attempt records and quarantine
# ---------------------------------------------------------------------------


def shard_attempts(sched_dir: str, index: int) -> List[Dict[str, Any]]:
    """All recorded failed attempts of one shard, in attempt order."""
    pattern = os.path.join(
        attempts_dir(sched_dir), f"shard-{index}.attempt-*.json"
    )
    records = []
    for path in glob.glob(pattern):
        match = _ATTEMPT_RE.search(path)
        if match is None:
            continue
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError):
            # A reclaimer died between the steal-rename and the rewrite:
            # the tombstone still counts as one failed attempt.
            record = {"format": ATTEMPT_FORMAT, "shard": index, "corrupt": True}
        record.setdefault("attempt", int(match.group(2)))
        records.append(record)
    records.sort(key=lambda r: r.get("attempt", 0))
    return records


def record_attempt(
    sched_dir: str,
    index: int,
    attempt: int,
    worker: str,
    reason: str,
    error: Optional[str] = None,
    stolen_lease: Optional[Mapping[str, Any]] = None,
) -> str:
    """Write one failed-attempt record (atomic; idempotent per attempt)."""
    doc = {
        "format": ATTEMPT_FORMAT,
        "version": SCHED_VERSION,
        "shard": index,
        "attempt": attempt,
        "worker": worker,
        "reason": reason,
        "error": error,
        "recorded_at": _now(),
    }
    if stolen_lease is not None:
        doc["lease"] = dict(stolen_lease)
    path = os.path.join(
        attempts_dir(sched_dir), f"shard-{index}.attempt-{attempt}.json"
    )
    return atomic_write_json(doc, path)


def quarantine_if_exhausted(
    sched_dir: str, manifest: Manifest, index: int
) -> Optional[Dict[str, Any]]:
    """Move a shard past the attempt cap into the ``failed/`` ledger.

    The ledger entry carries every recorded attempt — worker identity,
    reason, and the captured exception text — so a quarantined sweep is
    debuggable from the directory alone. Returns the ledger document
    when the shard was (or already is) quarantined, else ``None``.
    """
    path = quarantine_path(sched_dir, index)
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    attempts = shard_attempts(sched_dir, index)
    if len(attempts) < manifest.max_attempts:
        return None
    doc = {
        "format": QUARANTINE_FORMAT,
        "version": SCHED_VERSION,
        "plan": manifest.plan_fingerprint,
        "shard": index,
        "of": manifest.of,
        "attempts": attempts,
        "workers": sorted(
            {a.get("worker") for a in attempts if a.get("worker")}
        ),
        "quarantined_at": _now(),
    }
    atomic_write_json(doc, path)
    return doc


def reclaim_expired_leases(
    sched_dir: str, manifest: Manifest, worker: str = "reclaimer"
) -> List[int]:
    """Steal every expired lease; returns the reclaimed shard indices.

    For each stale lease the steal is one atomic rename into the
    attempt record slot — concurrent reclaimers cannot double-count a
    failure. A stale lease whose shard already has an envelope (the
    worker died *between* writing the report and releasing) is a
    completed shard: the lease is simply cleaned up, no attempt recorded.
    Shards that cross ``max_attempts`` are quarantined on the spot.
    """
    reclaimed: List[int] = []
    pattern = os.path.join(leases_dir(sched_dir), "shard-*.lease")
    for path in sorted(glob.glob(pattern)):
        match = re.search(r"shard-(\d+)\.lease$", path)
        if match is None:
            continue
        index = int(match.group(1))
        record = read_lease(path)
        if record is None or not is_expired(path, record, manifest.lease_ttl_s):
            continue
        if os.path.exists(envelope_path(sched_dir, index)):
            # Done-but-unreleased: the envelope is the ground truth.
            try:
                os.unlink(path)
            except FileNotFoundError:  # pragma: no cover - benign race
                pass
            continue
        attempt = record.get("attempt")
        if not isinstance(attempt, int) or attempt < 1:
            attempt = len(shard_attempts(sched_dir, index)) + 1
        tombstone = os.path.join(
            attempts_dir(sched_dir), f"shard-{index}.attempt-{attempt}.json"
        )
        try:
            os.replace(path, tombstone)
        except FileNotFoundError:
            continue  # lost the steal race; the winner records the attempt
        age = lease_age_s(tombstone, record)
        record_attempt(
            sched_dir,
            index,
            attempt,
            worker=record.get("worker", "unknown"),
            reason=(
                f"lease expired ({age:.1f}s since last heartbeat, ttl "
                f"{manifest.lease_ttl_s}s): worker crashed, hung, or lost "
                "the directory"
            ),
            error=None,
            stolen_lease=record,
        )
        quarantine_if_exhausted(sched_dir, manifest, index)
        reclaimed.append(index)
    return reclaimed


# ---------------------------------------------------------------------------
# Status
# ---------------------------------------------------------------------------


def scheduler_status(sched_dir: str) -> Dict[str, Any]:
    """One read-only scan of the directory, as a JSON-ready document.

    ``shards`` holds one entry per shard with its state (``pending`` /
    ``claimed`` / ``expired`` / ``retrying`` / ``done`` /
    ``quarantined``), lease age and owner where claimed, attempt count,
    and the next-retry backoff deadline where retrying. The quarantine
    ledger rides along in full under ``quarantined`` so downstream
    tooling (and CI) can assert on failed-shard metadata without parsing
    logs.
    """
    manifest, plan = load_scheduler(sched_dir)
    shards: List[Dict[str, Any]] = []
    counts = {
        "pending": 0, "claimed": 0, "expired": 0, "retrying": 0,
        "done": 0, "quarantined": 0,
    }
    ledger: List[Dict[str, Any]] = []
    for index in range(manifest.of):
        attempts = shard_attempts(sched_dir, index)
        entry: Dict[str, Any] = {
            "shard": index,
            "attempts": len(attempts),
        }
        lease_file = lease_path(leases_dir(sched_dir), index)
        record = read_lease(lease_file)
        if os.path.exists(quarantine_path(sched_dir, index)):
            entry["state"] = "quarantined"
            with open(
                quarantine_path(sched_dir, index), "r", encoding="utf-8"
            ) as handle:
                ledger.append(json.load(handle))
        elif os.path.exists(envelope_path(sched_dir, index)):
            entry["state"] = "done"
        elif record is not None:
            age = lease_age_s(lease_file, record)
            entry["lease_age_s"] = round(age, 3)
            entry["worker"] = record.get("worker")
            entry["state"] = (
                "expired" if age > manifest.lease_ttl_s else "claimed"
            )
        elif attempts:
            entry["state"] = "retrying"
            last = attempts[-1]
            recorded = last.get("recorded_at")
            if isinstance(recorded, (int, float)):
                entry["retry_backoff_remaining_s"] = round(
                    max(
                        0.0,
                        recorded
                        + manifest.backoff_s(len(attempts))
                        - _now(),
                    ),
                    3,
                )
        else:
            entry["state"] = "pending"
        counts[entry["state"]] += 1
        shards.append(entry)
    return {
        "format": "repro-sched-status",
        "version": SCHED_VERSION,
        "name": manifest.name,
        "plan": manifest.plan_fingerprint,
        "plan_size": len(plan),
        "of": manifest.of,
        "lease_ttl_s": manifest.lease_ttl_s,
        "max_attempts": manifest.max_attempts,
        "shard_timeout_s": manifest.shard_timeout_s,
        "counts": counts,
        "shards": shards,
        "quarantined": ledger,
        "complete": counts["done"] == manifest.of,
        "degraded": counts["quarantined"] > 0,
        "finished": counts["done"] + counts["quarantined"] == manifest.of,
    }


# ---------------------------------------------------------------------------
# Merge input
# ---------------------------------------------------------------------------


def scheduler_envelope_paths(sched_dir: str) -> List[str]:
    """The envelope files a merge of this directory should consume.

    Quarantined shards make the sweep *degraded*: instead of letting the
    strict merge report their indices as mysteriously missing, raise
    :class:`repro.errors.ShardQuarantined` naming each failed shard and
    its last captured exception (full ledger on the exception object).
    """
    manifest, _ = load_scheduler(sched_dir)
    ledger = []
    for index in range(manifest.of):
        path = quarantine_path(sched_dir, index)
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as handle:
                ledger.append(json.load(handle))
    if ledger:
        summaries = []
        for doc in ledger:
            attempts = doc.get("attempts", [])
            last_error = next(
                (
                    a.get("error") or a.get("reason")
                    for a in reversed(attempts)
                    if a.get("error") or a.get("reason")
                ),
                "unknown failure",
            )
            summaries.append(
                f"shard {doc.get('shard')} ({len(attempts)} attempts across "
                f"workers {doc.get('workers')}): {last_error}"
            )
        raise ShardQuarantined(
            f"{sched_dir}: {len(ledger)} shard(s) are quarantined and the "
            "sweep is degraded — fix the cause and delete the failed/ "
            "entries (and their attempts/) to retry:\n  "
            + "\n  ".join(summaries),
            ledger=ledger,
        )
    return [
        envelope_path(sched_dir, index)
        for index in range(manifest.of)
        if os.path.exists(envelope_path(sched_dir, index))
    ]


__all__ = [
    "attempts_dir",
    "envelope_path",
    "failed_dir",
    "init_scheduler_dir",
    "is_scheduler_dir",
    "lease_path",
    "leases_dir",
    "load_scheduler",
    "manifest_path",
    "plan_path",
    "quarantine_if_exhausted",
    "quarantine_path",
    "reclaim_expired_leases",
    "record_attempt",
    "reports_dir",
    "scheduler_envelope_paths",
    "scheduler_status",
    "shard_attempts",
    "tmp_dir",
]
