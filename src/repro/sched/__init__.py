"""Fault-tolerant cross-machine sweep scheduling over a shared directory.

``repro.sweep`` made sharded sweeps *deterministic*; this package makes
them *survivable*. A scheduler directory (any filesystem shared by the
participating machines) carries a fingerprint-pinned
:class:`~repro.sched.manifest.Manifest` plus the resolved plan; workers
claim shards through atomic ``O_EXCL`` lease files, renew heartbeats
while a child process executes the shard, and persist the ordinary
atomic shard envelopes before releasing. A worker that crashes or hangs
simply stops heartbeating: any surviving worker reclaims the expired
lease into a failure record and retries the shard under capped
exponential backoff, and a shard that keeps failing is quarantined into
a ``failed/`` ledger (with its captured exceptions) so the sweep
finishes degraded instead of wedging. Because every shard is a pure
function of the resolved plan, the recovered sweep's merge is
byte-identical to the fault-free sequential run — the same discipline
:func:`repro.analysis.experiments.merge_shard_reports` already enforces.

Entry points: ``repro sweep PLAN --scheduler DIR --workers N`` (drive on
one host), ``repro sweep-worker DIR`` (join from another machine),
``repro sweep --status DIR`` (live state + quarantine ledger), and
``repro merge DIR`` (scheduler-aware strict merge).
"""

from .lease import Lease, claim_lease, default_worker_id, read_lease
from .manifest import Manifest, atomic_write_json
from .scheduler import (
    init_scheduler_dir,
    is_scheduler_dir,
    load_scheduler,
    reclaim_expired_leases,
    scheduler_envelope_paths,
    scheduler_status,
    shard_attempts,
)
from .worker import run_scheduled_sweep, run_worker

__all__ = [
    "Lease",
    "Manifest",
    "atomic_write_json",
    "claim_lease",
    "default_worker_id",
    "init_scheduler_dir",
    "is_scheduler_dir",
    "load_scheduler",
    "read_lease",
    "reclaim_expired_leases",
    "run_scheduled_sweep",
    "run_worker",
    "scheduler_envelope_paths",
    "scheduler_status",
    "shard_attempts",
]
