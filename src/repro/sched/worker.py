"""The scheduler worker: claim, execute, heartbeat, release — survivably.

:func:`run_worker` is what both ``repro sweep --scheduler DIR`` (N local
workers) and ``repro sweep-worker DIR`` (join from any machine sharing
the directory) execute. Each claimed shard runs in a **child process**
(spawn start method, like every sweep worker in this library) while the
worker parent renews the lease heartbeat — so a shard that *hangs* is
distinguishable from one that merely takes long: the parent keeps the
lease fresh, and the manifest's ``shard_timeout_s`` (not the TTL) is what
kills a runaway child. A worker that dies entirely — SIGKILL, OOM, power
loss — stops heartbeating, its lease expires after ``lease_ttl_s``, and
any surviving worker reclaims the shard: re-execution cost is bounded by
the shard, never the sweep.

The shard child writes its envelope with the same atomic
temp-file-then-rename discipline as every sweep envelope, *then* the
parent releases the lease — so the crash window between the two leaves a
done shard with a stale lease, which reclamation recognizes (envelope
present ⇒ just clean up, no retry). Because ``run_shard`` is a pure
function of the resolved plan, a retried shard produces a byte-identical
envelope and the merged sweep is byte-identical to the fault-free run.

Fault injection for tests and CI: set ``REPRO_SCHED_TEST_HOLD_S`` to
make a worker sleep *between claiming a lease and starting the shard
child* — SIGKILLing it inside that window is exactly the crash the
reclamation path exists for, deterministically.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
import traceback
from typing import Any, Dict, List, Optional, Tuple

from ..errors import LeaseError
from ..spec import BuildReport
from ..sweep import run_shard, save_shard_report
from .lease import claim_lease, default_worker_id, lease_age_s, read_lease
from .manifest import Manifest, atomic_write_json
from .scheduler import (
    attempts_dir,
    envelope_path,
    leases_dir,
    load_scheduler,
    quarantine_if_exhausted,
    quarantine_path,
    reclaim_expired_leases,
    record_attempt,
    reports_dir,
    scheduler_envelope_paths,
    scheduler_status,
    shard_attempts,
    tmp_dir,
)

#: Fault-injection knob (seconds): hold between lease claim and child
#: start, opening a deterministic crash window for tests and CI.
TEST_HOLD_ENV = "REPRO_SCHED_TEST_HOLD_S"


def _shard_child(sched_dir: str, index: int, attempt: int, error_path: str) -> None:
    """Child-process entry: run one shard and persist its envelope.

    Failures are captured into ``error_path`` (inside the scheduler's
    ``tmp/``, invisible to merges) so the parent can quote the real
    exception in the attempt record instead of a bare exit code.
    """
    try:
        manifest, plan = load_scheduler(sched_dir)
        shard = plan.shard(index, manifest.of)
        envelope = run_shard(
            shard, include_spanner=manifest.include_spanner
        )
        envelope["attempts"] = attempt
        save_shard_report(envelope, reports_dir(sched_dir))
    except BaseException as exc:
        atomic_write_json(
            {
                "shard": index,
                "attempt": attempt,
                "error": repr(exc),
                "traceback": traceback.format_exc(),
            },
            error_path,
        )
        sys.exit(1)


def _read_error(error_path: str) -> Optional[str]:
    try:
        import json

        with open(error_path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        return doc.get("error")
    except (OSError, ValueError):
        return None
    finally:
        try:
            os.unlink(error_path)
        except OSError:
            pass


def _shard_states(
    sched_dir: str, manifest: Manifest
) -> Dict[int, Dict[str, Any]]:
    """A light per-shard scan (no plan load) for the claim loop."""
    states: Dict[int, Dict[str, Any]] = {}
    from .lease import lease_path

    for index in range(manifest.of):
        if os.path.exists(quarantine_path(sched_dir, index)):
            states[index] = {"state": "quarantined"}
            continue
        if os.path.exists(envelope_path(sched_dir, index)):
            states[index] = {"state": "done"}
            continue
        path = lease_path(leases_dir(sched_dir), index)
        record = read_lease(path)
        if record is not None:
            states[index] = {
                "state": "claimed",
                "age": lease_age_s(path, record),
            }
            continue
        attempts = shard_attempts(sched_dir, index)
        if attempts:
            last = attempts[-1]
            recorded = last.get("recorded_at", 0.0)
            ready_at = (
                float(recorded) if isinstance(recorded, (int, float)) else 0.0
            ) + manifest.backoff_s(len(attempts))
            states[index] = {
                "state": "retrying",
                "attempts": len(attempts),
                "ready_at": ready_at,
                "last_worker": last.get("worker"),
            }
        else:
            states[index] = {"state": "pending"}
    return states


def _pick_claimable(
    states: Dict[int, Dict[str, Any]], worker: str, now: float
) -> Optional[Tuple[int, int]]:
    """Choose ``(index, attempt_number)`` to claim next, or ``None``.

    Pending shards first (plan order). Retryable shards whose backoff
    elapsed come next, preferring ones last failed by a *different*
    worker — so with several workers alive, a poison shard's attempts
    spread across distinct machines before quarantine concludes it is
    the shard, not the worker.
    """
    for index in sorted(states):
        if states[index]["state"] == "pending":
            return index, 1
    retryable = [
        (info.get("last_worker") == worker, index)
        for index, info in states.items()
        if info["state"] == "retrying" and now >= info["ready_at"]
    ]
    if retryable:
        retryable.sort()
        _, index = retryable[0]
        return index, states[index]["attempts"] + 1
    return None


def _execute_claimed_shard(
    sched_dir: str,
    manifest: Manifest,
    lease,
    worker: str,
) -> bool:
    """Run one claimed shard in a heartbeated child; True on success."""
    index = lease.index
    error_path = os.path.join(
        tmp_dir(sched_dir), f"shard-{index}.{os.getpid()}.error.json"
    )
    context = multiprocessing.get_context("spawn")
    child = context.Process(
        target=_shard_child,
        args=(sched_dir, index, lease.attempt, error_path),
    )
    child.start()
    heartbeat_every = max(0.05, manifest.lease_ttl_s / 3.0)
    deadline = (
        time.monotonic() + manifest.shard_timeout_s
        if manifest.shard_timeout_s is not None
        else None
    )
    timed_out = False
    while True:
        wait = heartbeat_every
        if deadline is not None:
            wait = min(wait, max(0.0, deadline - time.monotonic()))
        child.join(wait)
        if not child.is_alive():
            break
        if deadline is not None and time.monotonic() >= deadline:
            timed_out = True
            child.terminate()
            child.join(2.0)
            if child.is_alive():  # pragma: no cover - terminate sufficed
                child.kill()
                child.join()
            break
        lease.renew()
    done = child.exitcode == 0 and os.path.exists(
        envelope_path(sched_dir, index)
    )
    if done:
        try:
            lease.release()
        except LeaseError:
            # The lease expired mid-run and was reclaimed; the envelope
            # is in place, so the shard still counts as done (reclaimers
            # with an envelope in view clean up rather than retry).
            pass
        return True
    error = _read_error(error_path)
    if timed_out:
        reason = (
            f"shard timed out after {manifest.shard_timeout_s}s wall clock "
            "(child killed)"
        )
    else:
        reason = f"shard child exited with code {child.exitcode}"
    tombstone = os.path.join(
        attempts_dir(sched_dir),
        f"shard-{index}.attempt-{lease.attempt}.json",
    )
    try:
        os.replace(lease.path, tombstone)
    except FileNotFoundError:
        # Reclaimed from under us (e.g. the hold knob outlived the TTL);
        # whoever stole the lease wrote the attempt record already.
        return False
    record_attempt(
        sched_dir, index, lease.attempt, worker=worker,
        reason=reason, error=error, stolen_lease=lease.to_dict(),
    )
    quarantine_if_exhausted(sched_dir, manifest, index)
    return False


def run_worker(
    sched_dir: str,
    worker_id: Optional[str] = None,
    max_shards: Optional[int] = None,
    poll_interval_s: Optional[float] = None,
) -> Dict[str, Any]:
    """Work a scheduler directory until the sweep finishes (or a cap).

    The loop: reclaim expired leases, claim the next available shard,
    execute it in a heartbeated child, repeat. With nothing claimable the
    worker idles on ``poll_interval_s`` — it does *not* exit while other
    workers still hold live claims, because one of them dying would
    otherwise strand the sweep with nobody left to reclaim. Returns a
    summary: shards completed / failed here, leases reclaimed, and the
    final directory state.
    """
    manifest, _plan = load_scheduler(sched_dir)
    worker = worker_id if worker_id is not None else default_worker_id()
    if poll_interval_s is None:
        poll_interval_s = min(1.0, max(0.05, manifest.lease_ttl_s / 4.0))
    hold_s = float(os.environ.get(TEST_HOLD_ENV, "0") or "0")
    completed = 0
    failed = 0
    reclaimed = 0
    claimed = 0
    while True:
        reclaimed += len(reclaim_expired_leases(sched_dir, manifest, worker))
        states = _shard_states(sched_dir, manifest)
        if all(
            info["state"] in ("done", "quarantined")
            for info in states.values()
        ):
            break
        if max_shards is not None and claimed >= max_shards:
            break
        pick = _pick_claimable(states, worker, time.time())
        if pick is None:
            # Everything is claimed elsewhere or backing off: wait for
            # a heartbeat to lapse or a backoff window to close.
            time.sleep(poll_interval_s)
            continue
        index, attempt = pick
        lease = claim_lease(
            leases_dir(sched_dir), index, worker,
            ttl_s=manifest.lease_ttl_s, attempt=attempt,
        )
        if lease is None:
            continue  # lost the O_EXCL race; rescan
        claimed += 1
        if hold_s > 0:
            time.sleep(hold_s)  # fault-injection crash window (tests/CI)
        if _execute_claimed_shard(sched_dir, manifest, lease, worker):
            completed += 1
        else:
            failed += 1
    status = scheduler_status(sched_dir)
    return {
        "worker": worker,
        "claimed": claimed,
        "completed": completed,
        "failed": failed,
        "reclaimed": reclaimed,
        "complete": status["complete"],
        "degraded": status["degraded"],
        "counts": status["counts"],
    }


def _worker_entry(sched_dir: str, worker_id: str) -> None:
    """Spawn target for :func:`run_scheduled_sweep`'s local workers."""
    run_worker(sched_dir, worker_id=worker_id)


def run_scheduled_sweep(
    sched_dir: str,
    workers: int,
) -> Tuple[Optional[List[BuildReport]], Dict[str, Any]]:
    """Drive an initialized scheduler directory to completion on one host.

    Spawns ``workers`` local worker processes over the shared directory
    (more can join from other machines via ``repro sweep-worker`` at any
    time), waits for them, and runs one in-process recovery pass if they
    all died before the sweep finished — so a single surviving driver
    still completes or quarantines every shard. Returns
    ``(reports, status)``: merged reports in plan order when the sweep is
    complete, or ``None`` with the status document (quarantine ledger
    included) when it finished degraded.
    """
    from ..analysis.experiments import merge_shard_reports
    from ..errors import InvalidSpec

    if workers < 1:
        raise InvalidSpec(f"scheduled sweeps need workers >= 1, got {workers}")
    load_scheduler(sched_dir)  # fail fast before spawning anything
    base = default_worker_id()
    context = multiprocessing.get_context("spawn")
    procs = [
        context.Process(
            target=_worker_entry, args=(sched_dir, f"{base}-w{i}")
        )
        for i in range(workers)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join()
    status = scheduler_status(sched_dir)
    if not status["finished"]:
        # Every local worker died (or was capped) with shards still open:
        # finish the job in-process rather than stranding the directory.
        run_worker(sched_dir, worker_id=f"{base}-recovery")
        status = scheduler_status(sched_dir)
    if status["degraded"] or not status["complete"]:
        return None, status
    reports = merge_shard_reports(scheduler_envelope_paths(sched_dir))
    return reports, status


__all__ = [
    "TEST_HOLD_ENV",
    "run_scheduled_sweep",
    "run_worker",
]
