"""Atomic lease files: how workers claim, keep, and lose shards.

The protocol is built entirely from primitives that are atomic on a
shared POSIX directory (NFS included, modulo close-to-open caching):

* **claim** — ``open(path, O_CREAT | O_EXCL)``: exactly one worker can
  create ``leases/shard-<i>.lease``; everyone else gets ``EEXIST`` and
  moves on. The content (worker id, attempt number, heartbeat timestamp)
  is fsynced before the claim counts.
* **heartbeat** — the owner periodically rewrites the lease through a
  temp file + ``os.replace`` with a fresh ``heartbeat_at``. Readers call
  a lease *expired* when ``now - heartbeat_at > ttl`` (clocks across
  machines must agree to within the TTL — pick a TTL well above both the
  expected skew and the heartbeat interval).
* **reclaim** — ``os.replace(lease, attempts/shard-<i>.attempt-<k>.json)``:
  a rename is atomic, so when several workers notice the same expired
  lease exactly one wins the steal; the winner then owns the attempt
  record and augments it with the failure reason.
* **release** — the owner unlinks its lease after the shard's envelope is
  safely in ``reports/`` (ordering matters: envelope first, release
  second, so a crash between the two leaves a *done* shard with a stale
  lease, which reclaiming recognizes and simply cleans up).

A truncated lease file (a worker killed mid-rewrite — ``os.replace``
makes this near-impossible, but a dying NFS client can still surface it)
parses as a lease with unknown heartbeat; it becomes reclaimable once the
file's mtime is older than the TTL.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from ..errors import LeaseError

#: File-name pattern of active lease files.
LEASE_FILE = "shard-{index}.lease"

LEASE_FORMAT = "repro-sched-lease"


def _now() -> float:
    """Wall-clock source (module-level so tests can freeze it)."""
    return time.time()


def default_worker_id() -> str:
    """A worker identity unique across machines and processes."""
    return f"{socket.gethostname()}-{os.getpid()}-{os.urandom(3).hex()}"


def lease_path(leases_dir: str, index: int) -> str:
    return os.path.join(leases_dir, LEASE_FILE.format(index=index))


@dataclass
class Lease:
    """A live claim on one shard, owned by this process."""

    path: str
    index: int
    worker: str
    attempt: int
    claimed_at: float
    heartbeat_at: float
    ttl_s: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": LEASE_FORMAT,
            "shard": self.index,
            "worker": self.worker,
            "attempt": self.attempt,
            "claimed_at": self.claimed_at,
            "heartbeat_at": self.heartbeat_at,
            "ttl_s": self.ttl_s,
        }

    def renew(self) -> None:
        """Refresh the heartbeat; atomic, so readers never see a torn file."""
        self.heartbeat_at = _now()
        directory = os.path.dirname(self.path) or "."
        blob = json.dumps(self.to_dict(), sort_keys=True) + "\n"
        fd, tmp_path = tempfile.mkstemp(
            prefix=os.path.basename(self.path) + ".", suffix=".tmp",
            dir=directory,
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            raise

    def release(self) -> None:
        """Drop the claim. Only the owner may call this.

        A missing file is a :class:`repro.errors.LeaseError`: it means the
        lease expired and was reclaimed while we thought we held it — the
        caller's work may be double-executed and it should find out.
        """
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            raise LeaseError(
                f"lease for shard {self.index} vanished before release: it "
                f"expired (ttl {self.ttl_s}s) and was reclaimed by another "
                "worker; lengthen the TTL or shorten the heartbeat interval"
            ) from None


def claim_lease(
    leases_dir: str,
    index: int,
    worker: str,
    ttl_s: float,
    attempt: int = 1,
) -> Optional[Lease]:
    """Try to claim shard ``index``; return the lease, or None if held.

    The ``O_CREAT | O_EXCL`` create is the whole mutual exclusion: losing
    the race is the normal case and returns ``None``, never raises.
    """
    path = lease_path(leases_dir, index)
    now = _now()
    lease = Lease(
        path=path, index=index, worker=worker, attempt=attempt,
        claimed_at=now, heartbeat_at=now, ttl_s=ttl_s,
    )
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
    except FileExistsError:
        return None
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(lease.to_dict(), sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
    except BaseException:
        try:
            os.unlink(path)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise
    return lease


def read_lease(path: str) -> Optional[Dict[str, Any]]:
    """Parse a lease file; ``None`` if it vanished (released/reclaimed).

    Unparseable content comes back as a synthetic record with no
    ``heartbeat_at`` — callers treat those as expired once the file's
    mtime is older than the TTL (see :func:`lease_age_s`).
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except (FileNotFoundError, NotADirectoryError):
        return None
    try:
        data = json.loads(text)
        if not isinstance(data, Mapping):
            raise ValueError("lease is not a JSON object")
        return dict(data)
    except ValueError:
        return {"format": LEASE_FORMAT, "corrupt": True}


def lease_age_s(path: str, record: Mapping[str, Any]) -> float:
    """Seconds since the lease's last heartbeat (conservative on corrupt).

    For a readable lease this is wall-clock ``now - heartbeat_at``; for a
    corrupt one it falls back to the file mtime, so a torn write is still
    reclaimed after one TTL instead of wedging its shard forever.
    """
    heartbeat = record.get("heartbeat_at")
    if isinstance(heartbeat, (int, float)):
        return _now() - float(heartbeat)
    try:
        return _now() - os.stat(path).st_mtime
    except OSError:
        return 0.0  # vanished mid-look: someone else is handling it


def is_expired(path: str, record: Mapping[str, Any], ttl_s: float) -> bool:
    return lease_age_s(path, record) > ttl_s


__all__ = [
    "LEASE_FILE",
    "LEASE_FORMAT",
    "Lease",
    "claim_lease",
    "default_worker_id",
    "is_expired",
    "lease_age_s",
    "lease_path",
    "read_lease",
]
