"""Typed problem specs: the serializable half of the public front door.

DK11's Theorem 2.1 conversion already implies the structural shape of
every pipeline in this library: *(host graph, fault model, base
algorithm, budget)*. This module makes that shape a first-class, frozen,
validated value:

* :class:`FaultModel` — what must survive (``none`` / ``vertex`` /
  ``edge`` faults, tolerance ``r``);
* :class:`SpannerSpec` — one complete build request: the algorithm name
  (resolved through :mod:`repro.registry`), the stretch budget, the fault
  model, the CSR/dict ``method`` switch, the seed, and a free-form
  ``params`` mapping for algorithm-specific knobs;
* :class:`BuildReport` — the result envelope a
  :class:`repro.session.Session` returns: artifact, size, resolved
  method/seed, RNG fingerprint, wall time, and per-iteration stats.

Specs round-trip through ``to_dict`` / ``from_dict`` (and the JSON file
helpers ``save`` / ``load``), which is what lets E-suite sweeps be
sharded: a driver writes one JSON spec per shard, and
``python -m repro run shard.json --json`` reproduces the build
byte-for-byte anywhere.

Validation is eager and actionable: every malformed field raises
:class:`repro.errors.InvalidSpec` naming the field and the accepted
values, and unknown algorithm names raise
:class:`repro.errors.UnknownAlgorithm` listing what *is* registered.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import types
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from .errors import InvalidSpec
from .graph.graph import BaseGraph
from .graph.io import graph_from_dict, graph_to_dict

#: Accepted values of the fault-model ``kind`` field.
FAULT_KINDS = ("none", "vertex", "edge")

#: Accepted values of the ``method`` dispatch field (see
#: :func:`repro.graph.csr.resolve_method`): size/backend-based auto,
#: the CSR fast path, the pinned dict reference, or the optional
#: compiled C backend (:mod:`repro.compiled`).
METHODS = ("auto", "csr", "dict", "compiled")

#: Format tag stamped into serialized spec documents.
SPEC_FORMAT = "repro-spec"
SPEC_VERSION = 1


def _require_int(name: str, value: Any, minimum: Optional[int] = None) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise InvalidSpec(f"{name} must be an int, got {value!r}")
    if minimum is not None and value < minimum:
        raise InvalidSpec(f"{name} must be >= {minimum}, got {value}")
    return value


@dataclass(frozen=True)
class FaultModel:
    """What the spanner must survive.

    ``kind`` is ``"none"`` (plain spanner), ``"vertex"`` (the paper's
    model: up to ``r`` failed vertices) or ``"edge"`` (up to ``r`` cut
    links); ``r`` is the tolerance. ``FaultModel.none()`` is the
    canonical no-faults value.
    """

    kind: str = "none"
    r: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise InvalidSpec(
                f"faults.kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        _require_int("faults.r", self.r, minimum=0)
        if self.kind == "none" and self.r != 0:
            raise InvalidSpec(
                f"faults.kind='none' requires r=0, got r={self.r}; "
                "use kind='vertex' or 'edge' for a fault-tolerant build"
            )

    @classmethod
    def none(cls) -> "FaultModel":
        """The no-faults model (plain spanner construction)."""
        return cls("none", 0)

    @classmethod
    def vertex(cls, r: int) -> "FaultModel":
        """Tolerate up to ``r`` vertex faults (the paper's model)."""
        return cls("vertex", r)

    @classmethod
    def edge(cls, r: int) -> "FaultModel":
        """Tolerate up to ``r`` edge faults (Theorem 2.3's sampling)."""
        return cls("edge", r)

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-compatible representation."""
        return {"kind": self.kind, "r": self.r}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultModel":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        if not isinstance(data, Mapping):
            raise InvalidSpec(f"faults must be a mapping, got {data!r}")
        extra = set(data) - {"kind", "r"}
        if extra:
            raise InvalidSpec(
                f"faults document has unknown keys {sorted(extra)}; "
                "expected only 'kind' and 'r'"
            )
        return cls(kind=data.get("kind", "none"), r=data.get("r", 0))


def _frozen_params(params: Mapping[str, Any]) -> Mapping[str, Any]:
    """Validate, defensively copy, and freeze the params mapping.

    The returned read-only view keeps the spec's frozen contract honest:
    a spec cannot drift (and so change its :meth:`SpannerSpec.fingerprint`)
    between validation and execution.
    """
    if not isinstance(params, Mapping):
        raise InvalidSpec(
            f"params must be a mapping of str -> JSON value, got {params!r}"
        )
    out: Dict[str, Any] = {}
    for key, value in params.items():
        if not isinstance(key, str):
            raise InvalidSpec(f"params keys must be str, got {key!r}")
        try:
            json.dumps(value)
        except (TypeError, ValueError) as exc:
            raise InvalidSpec(
                f"params[{key!r}] is not JSON-serializable ({value!r}); "
                "specs must round-trip through JSON for sweep sharding"
            ) from exc
        out[key] = value
    return types.MappingProxyType(out)


@dataclass(frozen=True)
class SpannerSpec:
    """One complete, serializable build request.

    Parameters
    ----------
    algorithm:
        Registry name (see :func:`repro.registry.available_algorithms`).
        Resolution happens at build time, so specs can be constructed for
        algorithms registered later.
    stretch:
        The stretch budget ``k``. Algorithms with a constrained stretch
        domain (Baswana–Sen / Thorup–Zwick need odd ``2t-1``; the
        2-spanner pipelines need exactly 2) validate it at build time
        with an actionable error.
    faults:
        The :class:`FaultModel`; defaults to no faults.
    method:
        ``"auto"`` | ``"csr"`` | ``"dict"`` — the single dispatch switch
        of :func:`repro.graph.csr.resolve_method`, threaded through every
        layer of the build.
    seed:
        Deterministic seed. ``None`` lets the executing
        :class:`repro.session.Session` derive one from its own root
        stream (the derived value is recorded in the report).
    params:
        Algorithm-specific knobs (e.g. ``schedule``/``iterations`` for
        the Theorem 2.1 conversion). Must be JSON-serializable.
    graph:
        Optional host binding: ``None`` (caller passes the graph to the
        session), a ``str`` path to a graph JSON file, an in-memory
        :class:`repro.graph.graph.BaseGraph` (serialized inline), or a
        :class:`repro.hosts.HostSpec` (serialized as its spec document
        and materialized lazily by the executing session).
    """

    algorithm: str
    stretch: float = 3.0
    faults: FaultModel = field(default_factory=FaultModel.none)
    method: str = "auto"
    seed: Optional[int] = None
    params: Mapping[str, Any] = field(default_factory=dict)
    graph: Any = None

    def __post_init__(self) -> None:
        if not isinstance(self.algorithm, str) or not self.algorithm:
            raise InvalidSpec(
                f"algorithm must be a non-empty str, got {self.algorithm!r}"
            )
        if isinstance(self.stretch, bool) or not isinstance(
            self.stretch, (int, float)
        ):
            raise InvalidSpec(f"stretch must be a number, got {self.stretch!r}")
        if self.stretch < 1:
            raise InvalidSpec(f"stretch must be >= 1, got {self.stretch}")
        if not isinstance(self.faults, FaultModel):
            raise InvalidSpec(
                f"faults must be a FaultModel, got {self.faults!r}; "
                "use FaultModel.vertex(r) / FaultModel.edge(r) / FaultModel.none()"
            )
        if self.method not in METHODS:
            raise InvalidSpec(
                f"method must be one of {METHODS}, got {self.method!r}"
            )
        if self.seed is not None:
            _require_int("seed", self.seed)
        object.__setattr__(self, "params", _frozen_params(self.params))
        if self.graph is not None and not isinstance(
            self.graph, (str, BaseGraph)
        ):
            from .hosts.spec import HostSpec  # deferred: hosts imports us

            if not isinstance(self.graph, HostSpec):
                raise InvalidSpec(
                    "graph must be None, a path str, a repro graph instance, "
                    f"or a HostSpec, got {self.graph!r}"
                )

    # -- convenience --------------------------------------------------

    @property
    def r(self) -> int:
        """Shorthand for ``faults.r``."""
        return self.faults.r

    def replace(self, **changes: Any) -> "SpannerSpec":
        """A copy with the given fields replaced (validated again)."""
        return dataclasses.replace(self, **changes)

    def param(self, key: str, default: Any = None) -> Any:
        """Read one algorithm-specific knob."""
        return self.params.get(key, default)

    def fingerprint(self) -> str:
        """Stable digest of the spec (graph binding excluded).

        Two specs with the same fingerprint request the same computation;
        sessions mix this with the resolved seed into the report's RNG
        fingerprint.
        """
        doc = self.to_dict(include_graph=False)
        blob = json.dumps(doc, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()[:16]

    # -- serialization ------------------------------------------------

    def to_dict(self, include_graph: bool = True) -> Dict[str, Any]:
        """Serialize to a plain JSON-compatible document.

        A path-bound graph is stored as the path; an in-memory graph is
        inlined via :func:`repro.graph.io.graph_to_dict`.
        """
        doc: Dict[str, Any] = {
            "format": SPEC_FORMAT,
            "version": SPEC_VERSION,
            "algorithm": self.algorithm,
            "stretch": self.stretch,
            "faults": self.faults.to_dict(),
            "method": self.method,
            "seed": self.seed,
            "params": dict(self.params),
        }
        if include_graph and self.graph is not None:
            if isinstance(self.graph, (str, BaseGraph)):
                doc["graph"] = (
                    self.graph if isinstance(self.graph, str)
                    else graph_to_dict(self.graph)
                )
            else:
                doc["graph"] = self.graph.to_dict()  # HostSpec document
        return doc

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SpannerSpec":
        """Inverse of :meth:`to_dict`; strict about shape and keys."""
        if not isinstance(data, Mapping):
            raise InvalidSpec(f"spec document must be a mapping, got {data!r}")
        if data.get("format", SPEC_FORMAT) != SPEC_FORMAT:
            raise InvalidSpec(
                f"not a spec document: format={data.get('format')!r} "
                f"(expected {SPEC_FORMAT!r})"
            )
        version = data.get("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise InvalidSpec(
                f"unsupported spec version {version!r} (this library reads "
                f"version {SPEC_VERSION})"
            )
        known = {
            "format", "version", "algorithm", "stretch", "faults",
            "method", "seed", "params", "graph",
        }
        extra = set(data) - known
        if extra:
            raise InvalidSpec(
                f"spec document has unknown keys {sorted(extra)}; "
                f"expected a subset of {sorted(known)}"
            )
        if "algorithm" not in data:
            raise InvalidSpec("spec document is missing the 'algorithm' key")
        graph = data.get("graph")
        if isinstance(graph, Mapping):
            if graph.get("format") == "repro-host":
                from .hosts.spec import HostSpec  # deferred: hosts imports us

                graph = HostSpec.from_dict(graph)
            else:
                graph = graph_from_dict(dict(graph))
        return cls(
            algorithm=data["algorithm"],
            stretch=data.get("stretch", 3.0),
            faults=FaultModel.from_dict(data.get("faults", {"kind": "none", "r": 0})),
            method=data.get("method", "auto"),
            seed=data.get("seed"),
            params=data.get("params", {}),
            graph=graph,
        )

    def to_json(self, include_graph: bool = True, indent: Optional[int] = 2) -> str:
        """Canonical JSON text (sorted keys, so output is reproducible)."""
        return json.dumps(
            self.to_dict(include_graph=include_graph),
            sort_keys=True,
            indent=indent,
        )

    @classmethod
    def from_json(cls, text: str) -> "SpannerSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise InvalidSpec(f"spec document is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path: str) -> None:
        """Write the spec as a JSON file (consumed by ``repro run``)."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "SpannerSpec":
        """Read a spec JSON file written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


@dataclass
class BuildReport:
    """The result envelope of :meth:`repro.session.Session.build`.

    ``artifact`` is whatever the registered builder produced (a graph for
    plain spanner algorithms, a richer result object — e.g.
    :class:`repro.core.conversion.ConversionResult` — for pipelines);
    :attr:`spanner` uniformly extracts the spanner graph from it.
    ``stats`` carries the JSON-able per-iteration accounting builders
    expose (iteration counts, survivor sizes, LP objectives, rounds, …).
    """

    spec: SpannerSpec
    artifact: Any
    size: int
    resolved_method: str
    resolved_seed: Optional[int]
    rng_fingerprint: str
    wall_time_s: float
    stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def spanner(self) -> Optional[BaseGraph]:
        """The spanner graph inside :attr:`artifact`, when there is one."""
        if isinstance(self.artifact, BaseGraph):
            return self.artifact
        inner = getattr(self.artifact, "spanner", None)
        if isinstance(inner, BaseGraph):
            return inner
        return None

    @property
    def num_edges(self) -> int:
        """Alias of :attr:`size` (edge count for graphs, entries for oracles)."""
        return self.size

    def to_dict(
        self,
        include_spanner: bool = False,
        include_timing: bool = False,
    ) -> Dict[str, Any]:
        """JSON-compatible envelope.

        Timing is excluded by default so that two identical builds
        serialize to identical bytes — the property the CLI's ``--json``
        mode and the sharded-sweep acceptance checks rely on. The
        spanner's edge list is opt-in for the same reason (size).
        """
        doc: Dict[str, Any] = {
            "format": "repro-report",
            "version": SPEC_VERSION,
            "spec": self.spec.to_dict(),
            "size": self.size,
            "resolved_method": self.resolved_method,
            "resolved_seed": self.resolved_seed,
            "rng_fingerprint": self.rng_fingerprint,
            "stats": self.stats,
        }
        if include_timing:
            doc["wall_time_s"] = self.wall_time_s
        if include_spanner:
            spanner = self.spanner
            doc["spanner"] = None if spanner is None else graph_to_dict(spanner)
        return doc

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BuildReport":
        """Rehydrate a serialized report (artifact = the spanner, if any)."""
        if not isinstance(data, Mapping) or data.get("format") != "repro-report":
            raise InvalidSpec(f"not a report document: {data!r}")
        spanner = data.get("spanner")
        artifact = graph_from_dict(dict(spanner)) if spanner else None
        return cls(
            spec=SpannerSpec.from_dict(data["spec"]),
            artifact=artifact,
            size=data["size"],
            resolved_method=data["resolved_method"],
            resolved_seed=data.get("resolved_seed"),
            rng_fingerprint=data["rng_fingerprint"],
            wall_time_s=data.get("wall_time_s", 0.0),
            stats=dict(data.get("stats", {})),
        )


def stretch_to_levels(spec: SpannerSpec, parameter: str = "t") -> int:
    """Map an odd ``2t - 1`` stretch budget to the level count ``t``.

    Shared by every registered algorithm whose stretch domain is the odd
    integers (Baswana–Sen, Thorup–Zwick, the TZ oracle, CLPR09, the
    distributed conversion); raises :class:`InvalidSpec` with the exact
    accepted form otherwise.
    """
    stretch = spec.stretch
    if stretch != int(stretch) or int(stretch) % 2 == 0 or stretch < 1:
        raise InvalidSpec(
            f"algorithm {spec.algorithm!r} needs an odd integer stretch "
            f"2*{parameter}-1 (3, 5, 7, ...), got {stretch!r}"
        )
    return (int(stretch) + 1) // 2


def require_stretch(spec: SpannerSpec, value: float) -> None:
    """Assert a fixed stretch domain (the 2-spanner pipelines)."""
    if spec.stretch != value:
        raise InvalidSpec(
            f"algorithm {spec.algorithm!r} has fixed stretch {value}, "
            f"got {spec.stretch!r}"
        )


def require_fault_kind(spec: SpannerSpec, *kinds: str) -> None:
    """Assert the spec's fault model is one the algorithm implements."""
    if spec.faults.kind not in kinds:
        accepted = " or ".join(repr(k) for k in kinds)
        raise InvalidSpec(
            f"algorithm {spec.algorithm!r} implements fault kind {accepted}, "
            f"got {spec.faults.kind!r}"
        )


__all__ = [
    "BuildReport",
    "FAULT_KINDS",
    "FaultModel",
    "METHODS",
    "SpannerSpec",
    "require_fault_kind",
    "require_stretch",
    "stretch_to_levels",
]
