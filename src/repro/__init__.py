"""repro — fault-tolerant graph spanners.

A from-scratch reproduction of Dinitz & Krauthgamer, *Fault-Tolerant
Spanners: Better and Simpler* (PODC 2011):

* :mod:`repro.core` — the Theorem 2.1 fault-oversampling conversion
  (r-fault-tolerant k-spanners, polynomial in r), the CLPR09 baseline, and
  fault-tolerance verifiers;
* :mod:`repro.two_spanner` — the Section 3 knapsack-cover LP relaxation
  and the O(log n) / O(log Δ) approximation algorithms for Minimum Cost
  r-Fault Tolerant 2-Spanner;
* :mod:`repro.distributed` + :mod:`repro.distsim` — the LOCAL-model
  versions (Theorem 2.3, Lemma 3.7 padded decompositions, Algorithm 2);
* :mod:`repro.graph`, :mod:`repro.spanners`, :mod:`repro.lp`,
  :mod:`repro.analysis` — the substrates everything is built on.

Quickstart::

    from repro import fault_tolerant_spanner, is_fault_tolerant_spanner
    from repro.graph import connected_gnp_graph

    g = connected_gnp_graph(60, 0.2, seed=0)
    result = fault_tolerant_spanner(g, k=3, r=2, seed=1)
    assert is_fault_tolerant_spanner(result.spanner, g, k=3, r=2)
"""

from .core import (
    clpr_fault_tolerant_spanner,
    fault_tolerant_spanner,
    fault_tolerant_spanner_until_valid,
    is_fault_tolerant_spanner,
    is_ft_2spanner,
    sampled_fault_check,
)
from .distributed import (
    distributed_ft2_spanner,
    distributed_ft_spanner,
    distributed_padded_decomposition,
    sample_padded_decomposition,
)
from .errors import ReproError
from .graph import DiGraph, Graph
from .spanners import baswana_sen_spanner, greedy_spanner, thorup_zwick_spanner
from .two_spanner import (
    approximate_ft2_spanner,
    dk10_baseline,
    exact_minimum_ft2_spanner,
    moser_tardos_rounding,
    solve_ft2_lp,
)

__version__ = "1.0.0"

__all__ = [
    "DiGraph",
    "Graph",
    "ReproError",
    "approximate_ft2_spanner",
    "baswana_sen_spanner",
    "clpr_fault_tolerant_spanner",
    "distributed_ft2_spanner",
    "distributed_ft_spanner",
    "distributed_padded_decomposition",
    "dk10_baseline",
    "exact_minimum_ft2_spanner",
    "fault_tolerant_spanner",
    "fault_tolerant_spanner_until_valid",
    "greedy_spanner",
    "is_fault_tolerant_spanner",
    "is_ft_2spanner",
    "moser_tardos_rounding",
    "sample_padded_decomposition",
    "sampled_fault_check",
    "solve_ft2_lp",
    "thorup_zwick_spanner",
    "__version__",
]
