"""repro — fault-tolerant graph spanners.

A from-scratch reproduction of Dinitz & Krauthgamer, *Fault-Tolerant
Spanners: Better and Simpler* (PODC 2011):

* :mod:`repro.core` — the Theorem 2.1 fault-oversampling conversion
  (r-fault-tolerant k-spanners, polynomial in r), the CLPR09 baseline, and
  fault-tolerance verifiers;
* :mod:`repro.two_spanner` — the Section 3 knapsack-cover LP relaxation
  and the O(log n) / O(log Δ) approximation algorithms for Minimum Cost
  r-Fault Tolerant 2-Spanner;
* :mod:`repro.distributed` + :mod:`repro.distsim` — the LOCAL-model
  versions (Theorem 2.3, Lemma 3.7 padded decompositions, Algorithm 2);
* :mod:`repro.graph`, :mod:`repro.spanners`, :mod:`repro.lp`,
  :mod:`repro.analysis` — the substrates everything is built on.

The typed front door (see README.md) is the spec/registry/session
triple: :class:`repro.spec.SpannerSpec` describes *what* to build,
:mod:`repro.registry` knows *who* can build it, and
:class:`repro.session.Session` executes with shared RNG streams and CSR
snapshot reuse. The loose top-level functions below remain supported
thin entry points onto the same algorithms.

Quickstart::

    from repro import FaultModel, Session, SpannerSpec
    from repro.graph import connected_gnp_graph

    g = connected_gnp_graph(60, 0.2, seed=0)
    session = Session()
    spec = SpannerSpec("theorem21", stretch=3,
                       faults=FaultModel.vertex(2), seed=1)
    report = session.build(spec, graph=g)
    assert session.verify(report, graph=g, mode="sampled")
"""

from .core import (
    clpr_fault_tolerant_spanner,
    fault_tolerant_spanner,
    fault_tolerant_spanner_until_valid,
    is_fault_tolerant_spanner,
    is_ft_2spanner,
    sampled_fault_check,
)
from .distributed import (
    distributed_ft2_spanner,
    distributed_ft_spanner,
    distributed_padded_decomposition,
    sample_padded_decomposition,
)
from .errors import (
    InvalidSpec,
    ReproError,
    SpecError,
    UnknownAlgorithm,
    UnknownHostGenerator,
)
from .graph import DiGraph, FaultScenario, Graph, SurvivorView
from .hosts import (
    HostInfo,
    HostSpec,
    available_host_generators,
    describe_host_generators,
    get_host_generator,
    register_host_generator,
)
from .registry import (
    AlgorithmInfo,
    available_algorithms,
    describe_algorithms,
    get_algorithm,
    register_algorithm,
)
from .serve import (
    ChaosInjector,
    RepairPolicy,
    ServiceHealth,
    SpannerService,
    WorkloadGenerator,
)
from .sched import (
    init_scheduler_dir,
    run_scheduled_sweep,
    run_worker,
    scheduler_status,
)
from .session import Session
from .spanners import baswana_sen_spanner, greedy_spanner, thorup_zwick_spanner
from .spec import BuildReport, FaultModel, SpannerSpec
from .sweep import (
    SweepPlan,
    coverage_matrix,
    emit_grid_plan,
    host_spec_key,
    run_sweep,
)
from .two_spanner import (
    approximate_ft2_spanner,
    dk10_baseline,
    exact_minimum_ft2_spanner,
    moser_tardos_rounding,
    solve_ft2_lp,
)

__version__ = "1.0.0"

__all__ = [
    "AlgorithmInfo",
    "BuildReport",
    "ChaosInjector",
    "DiGraph",
    "FaultModel",
    "FaultScenario",
    "Graph",
    "HostInfo",
    "HostSpec",
    "InvalidSpec",
    "RepairPolicy",
    "ReproError",
    "ServiceHealth",
    "Session",
    "SpannerService",
    "SpannerSpec",
    "SpecError",
    "SurvivorView",
    "SweepPlan",
    "UnknownAlgorithm",
    "UnknownHostGenerator",
    "WorkloadGenerator",
    "approximate_ft2_spanner",
    "available_algorithms",
    "available_host_generators",
    "baswana_sen_spanner",
    "clpr_fault_tolerant_spanner",
    "coverage_matrix",
    "describe_algorithms",
    "describe_host_generators",
    "distributed_ft2_spanner",
    "distributed_ft_spanner",
    "distributed_padded_decomposition",
    "dk10_baseline",
    "emit_grid_plan",
    "exact_minimum_ft2_spanner",
    "fault_tolerant_spanner",
    "fault_tolerant_spanner_until_valid",
    "get_algorithm",
    "get_host_generator",
    "greedy_spanner",
    "host_spec_key",
    "init_scheduler_dir",
    "is_fault_tolerant_spanner",
    "is_ft_2spanner",
    "moser_tardos_rounding",
    "register_algorithm",
    "register_host_generator",
    "run_scheduled_sweep",
    "run_sweep",
    "run_worker",
    "sample_padded_decomposition",
    "sampled_fault_check",
    "scheduler_status",
    "solve_ft2_lp",
    "thorup_zwick_spanner",
    "__version__",
]
