"""The algorithm registry: one namespace for every spanner pipeline.

Every builder in the library self-registers here via
:func:`register_algorithm` (the decorator lives at the bottom of each
algorithm module, next to the code it describes), so the registry — not
grep — is the single source of truth for what the library can build and
what each pipeline supports:

* :func:`available_algorithms` — the sorted names;
* :func:`get_algorithm` — the :class:`AlgorithmInfo` record: builder,
  capability flags (weighted? directed hosts? fault-tolerant?
  distributed? CSR fast path?), and the stretch domain;
* :func:`describe_algorithms` — JSON-able capability table (the CLI's
  ``algorithms --json`` output).

A registered builder has the uniform signature
``builder(graph, spec, seed) -> (artifact, stats)``: the host graph, the
validated :class:`repro.spec.SpannerSpec`, and the resolved seed in;
the built artifact (graph or richer result object) plus a JSON-able
stats dict out. :class:`repro.session.Session` wraps the call with
timing, RNG bookkeeping, and the :class:`repro.spec.BuildReport`
envelope.

Builtin registration is lazy: the algorithm modules are imported the
first time anything asks the registry a question, which keeps
``import repro.registry`` free of import cycles.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from .errors import RegistryError, UnknownAlgorithm

#: Accepted values of the machine-readable ``stretch_kind`` capability.
STRETCH_KINDS = ("any", "odd", "fixed")

#: Builder signature: (graph, spec, seed) -> (artifact, stats).
Builder = Callable[..., Tuple[Any, Dict[str, Any]]]

#: Modules whose import self-registers the builtin algorithms.
_BUILTIN_MODULES = (
    "repro.spanners.greedy",
    "repro.spanners.baswana_sen",
    "repro.spanners.thorup_zwick",
    "repro.spanners.distance_oracle",
    "repro.core.conversion",
    "repro.core.edge_faults",
    "repro.core.clpr",
    "repro.two_spanner.approx",
    "repro.distributed.ft_spanner",
    "repro.distributed.cluster_lp",
    "repro.serve.repair",
)

_REGISTRY: Dict[str, "AlgorithmInfo"] = {}
_builtins_loaded = False


@dataclass(frozen=True)
class AlgorithmInfo:
    """Registry record: the builder plus its capability metadata.

    ``stretch_domain`` stays the human-readable sentence shown in the
    capability table; ``fault_kinds`` / ``stretch_kind`` /
    ``fixed_stretch`` are its machine-readable counterparts, which the
    sweep plan emitter (:mod:`repro.sweep`) uses to refuse grid points an
    algorithm cannot serve before any worker process is spawned.
    """

    name: str
    builder: Builder
    summary: str
    stretch_domain: str
    weighted: bool = True
    directed: bool = False
    fault_tolerant: bool = False
    distributed: bool = False
    csr_path: bool = False
    #: Whether the builder can serve ``method="compiled"`` — i.e. its hot
    #: loop has a kernel in the optional C backend (:mod:`repro.compiled`).
    #: Capability only: whether the backend actually loads on this machine
    #: is a runtime question answered by dispatch, not the registry.
    compiled_path: bool = False
    #: Fault-model kinds the builder accepts (subset of spec.FAULT_KINDS).
    fault_kinds: Tuple[str, ...] = ("none",)
    #: "any" (any real k >= 1), "odd" (odd integers 2t-1), or "fixed".
    stretch_kind: str = "any"
    #: The single accepted stretch when ``stretch_kind == "fixed"``.
    fixed_stretch: Optional[float] = None

    def capabilities(self) -> Dict[str, Any]:
        """JSON-able capability row (used by CLI/introspection)."""
        return {
            "name": self.name,
            "summary": self.summary,
            "stretch_domain": self.stretch_domain,
            "weighted": self.weighted,
            "directed": self.directed,
            "fault_tolerant": self.fault_tolerant,
            "distributed": self.distributed,
            "csr_path": self.csr_path,
            "compiled_path": self.compiled_path,
            "fault_kinds": list(self.fault_kinds),
            "stretch_kind": self.stretch_kind,
            "fixed_stretch": self.fixed_stretch,
        }

    def supports_stretch(self, stretch: float) -> bool:
        """Whether ``stretch`` lies in the machine-readable domain."""
        if self.stretch_kind == "fixed":
            return stretch == self.fixed_stretch
        if self.stretch_kind == "odd":
            return stretch >= 1 and stretch == int(stretch) and int(stretch) % 2 == 1
        return stretch >= 1

    def unsupported_reason(
        self, fault_kind: str, r: int, stretch: float
    ) -> Optional[str]:
        """Why a ``(fault_kind, r, stretch)`` point cannot be served.

        Returns ``None`` when the point is in-domain. This is the single
        predicate behind the sweep emitter's refusals and the E-suite
        coverage matrix, so both always agree with the registry.
        """
        if fault_kind not in self.fault_kinds:
            accepted = "/".join(self.fault_kinds)
            return (
                f"{self.name!r} serves fault kinds {accepted}, "
                f"not {fault_kind!r}"
            )
        if fault_kind != "none" and r < 1:
            return f"fault kind {fault_kind!r} needs r >= 1, got r={r}"
        if not self.supports_stretch(stretch):
            return (
                f"{self.name!r} needs stretch in its domain "
                f"({self.stretch_domain}), got {stretch!r}"
            )
        return None


def register_algorithm(
    name: str,
    *,
    summary: str,
    stretch_domain: str,
    weighted: bool = True,
    directed: bool = False,
    fault_tolerant: bool = False,
    distributed: bool = False,
    csr_path: bool = False,
    compiled_path: bool = False,
    fault_kinds: Optional[Tuple[str, ...]] = None,
    stretch_kind: str = "any",
    fixed_stretch: Optional[float] = None,
) -> Callable[[Builder], Builder]:
    """Decorator: register ``builder(graph, spec, seed)`` under ``name``.

    ``fault_kinds`` defaults from the ``fault_tolerant`` flag —
    ``("none", "vertex")`` for fault-tolerant builders, ``("none",)``
    otherwise — and must stay consistent with it; the machine-readable
    stretch fields must describe a non-empty domain. Raises
    :class:`repro.errors.RegistryError` on duplicate names — two modules
    silently fighting over one name is always a bug.
    """
    if not isinstance(name, str) or not name:
        raise RegistryError(f"algorithm name must be a non-empty str, got {name!r}")
    if fault_kinds is None:
        fault_kinds = ("none", "vertex") if fault_tolerant else ("none",)
    fault_kinds = tuple(fault_kinds)
    unknown = [k for k in fault_kinds if k not in ("none", "vertex", "edge")]
    if unknown or not fault_kinds:
        raise RegistryError(
            f"algorithm {name!r}: fault_kinds must be a non-empty subset of "
            f"('none', 'vertex', 'edge'), got {fault_kinds!r}"
        )
    if fault_tolerant != any(kind != "none" for kind in fault_kinds):
        raise RegistryError(
            f"algorithm {name!r}: fault_kinds {fault_kinds!r} contradict "
            f"fault_tolerant={fault_tolerant}"
        )
    if stretch_kind not in STRETCH_KINDS:
        raise RegistryError(
            f"algorithm {name!r}: stretch_kind must be one of {STRETCH_KINDS}, "
            f"got {stretch_kind!r}"
        )
    if (stretch_kind == "fixed") != (fixed_stretch is not None):
        raise RegistryError(
            f"algorithm {name!r}: stretch_kind='fixed' and fixed_stretch must "
            f"be given together, got {stretch_kind!r} / {fixed_stretch!r}"
        )

    def decorator(builder: Builder) -> Builder:
        if name in _REGISTRY:
            raise RegistryError(
                f"algorithm {name!r} is already registered "
                f"(by {_REGISTRY[name].builder.__module__})"
            )
        _REGISTRY[name] = AlgorithmInfo(
            name=name,
            builder=builder,
            summary=summary,
            stretch_domain=stretch_domain,
            weighted=weighted,
            directed=directed,
            fault_tolerant=fault_tolerant,
            distributed=distributed,
            csr_path=csr_path,
            compiled_path=compiled_path,
            fault_kinds=fault_kinds,
            stretch_kind=stretch_kind,
            fixed_stretch=fixed_stretch,
        )
        return builder

    return decorator


def _ensure_builtins() -> None:
    """Import the algorithm modules once so their hooks have run.

    The flag is raised *before* the loop so a registry query made while
    the builtin modules are themselves importing short-circuits instead
    of recursing — but a failed import lowers it again, so the next
    query retries rather than silently serving a half-populated registry.
    """
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    try:
        for module in _BUILTIN_MODULES:
            importlib.import_module(module)
    except BaseException:
        _builtins_loaded = False
        raise


def available_algorithms() -> Tuple[str, ...]:
    """Sorted names of every registered algorithm."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def get_algorithm(name: str) -> AlgorithmInfo:
    """Look up one algorithm; unknown names list what is available."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownAlgorithm(name, available=_REGISTRY) from None


def describe_algorithms() -> Tuple[Dict[str, Any], ...]:
    """Capability rows for every registered algorithm, sorted by name."""
    _ensure_builtins()
    return tuple(_REGISTRY[name].capabilities() for name in sorted(_REGISTRY))


__all__ = [
    "AlgorithmInfo",
    "STRETCH_KINDS",
    "available_algorithms",
    "describe_algorithms",
    "get_algorithm",
    "register_algorithm",
]
