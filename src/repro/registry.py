"""The algorithm registry: one namespace for every spanner pipeline.

Every builder in the library self-registers here via
:func:`register_algorithm` (the decorator lives at the bottom of each
algorithm module, next to the code it describes), so the registry — not
grep — is the single source of truth for what the library can build and
what each pipeline supports:

* :func:`available_algorithms` — the sorted names;
* :func:`get_algorithm` — the :class:`AlgorithmInfo` record: builder,
  capability flags (weighted? directed hosts? fault-tolerant?
  distributed? CSR fast path?), and the stretch domain;
* :func:`describe_algorithms` — JSON-able capability table (the CLI's
  ``algorithms --json`` output).

A registered builder has the uniform signature
``builder(graph, spec, seed) -> (artifact, stats)``: the host graph, the
validated :class:`repro.spec.SpannerSpec`, and the resolved seed in;
the built artifact (graph or richer result object) plus a JSON-able
stats dict out. :class:`repro.session.Session` wraps the call with
timing, RNG bookkeeping, and the :class:`repro.spec.BuildReport`
envelope.

Builtin registration is lazy: the algorithm modules are imported the
first time anything asks the registry a question, which keeps
``import repro.registry`` free of import cycles.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

from .errors import RegistryError, UnknownAlgorithm

#: Builder signature: (graph, spec, seed) -> (artifact, stats).
Builder = Callable[..., Tuple[Any, Dict[str, Any]]]

#: Modules whose import self-registers the builtin algorithms.
_BUILTIN_MODULES = (
    "repro.spanners.greedy",
    "repro.spanners.baswana_sen",
    "repro.spanners.thorup_zwick",
    "repro.spanners.distance_oracle",
    "repro.core.conversion",
    "repro.core.edge_faults",
    "repro.core.clpr",
    "repro.two_spanner.approx",
    "repro.distributed.ft_spanner",
    "repro.distributed.cluster_lp",
)

_REGISTRY: Dict[str, "AlgorithmInfo"] = {}
_builtins_loaded = False


@dataclass(frozen=True)
class AlgorithmInfo:
    """Registry record: the builder plus its capability metadata."""

    name: str
    builder: Builder
    summary: str
    stretch_domain: str
    weighted: bool = True
    directed: bool = False
    fault_tolerant: bool = False
    distributed: bool = False
    csr_path: bool = False

    def capabilities(self) -> Dict[str, Any]:
        """JSON-able capability row (used by CLI/introspection)."""
        return {
            "name": self.name,
            "summary": self.summary,
            "stretch_domain": self.stretch_domain,
            "weighted": self.weighted,
            "directed": self.directed,
            "fault_tolerant": self.fault_tolerant,
            "distributed": self.distributed,
            "csr_path": self.csr_path,
        }


def register_algorithm(
    name: str,
    *,
    summary: str,
    stretch_domain: str,
    weighted: bool = True,
    directed: bool = False,
    fault_tolerant: bool = False,
    distributed: bool = False,
    csr_path: bool = False,
) -> Callable[[Builder], Builder]:
    """Decorator: register ``builder(graph, spec, seed)`` under ``name``.

    Raises :class:`repro.errors.RegistryError` on duplicate names — two
    modules silently fighting over one name is always a bug.
    """
    if not isinstance(name, str) or not name:
        raise RegistryError(f"algorithm name must be a non-empty str, got {name!r}")

    def decorator(builder: Builder) -> Builder:
        if name in _REGISTRY:
            raise RegistryError(
                f"algorithm {name!r} is already registered "
                f"(by {_REGISTRY[name].builder.__module__})"
            )
        _REGISTRY[name] = AlgorithmInfo(
            name=name,
            builder=builder,
            summary=summary,
            stretch_domain=stretch_domain,
            weighted=weighted,
            directed=directed,
            fault_tolerant=fault_tolerant,
            distributed=distributed,
            csr_path=csr_path,
        )
        return builder

    return decorator


def _ensure_builtins() -> None:
    """Import the algorithm modules once so their hooks have run.

    The flag is raised *before* the loop so a registry query made while
    the builtin modules are themselves importing short-circuits instead
    of recursing — but a failed import lowers it again, so the next
    query retries rather than silently serving a half-populated registry.
    """
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    try:
        for module in _BUILTIN_MODULES:
            importlib.import_module(module)
    except BaseException:
        _builtins_loaded = False
        raise


def available_algorithms() -> Tuple[str, ...]:
    """Sorted names of every registered algorithm."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def get_algorithm(name: str) -> AlgorithmInfo:
    """Look up one algorithm; unknown names list what is available."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownAlgorithm(name, available=_REGISTRY) from None


def describe_algorithms() -> Tuple[Dict[str, Any], ...]:
    """Capability rows for every registered algorithm, sorted by name."""
    _ensure_builtins()
    return tuple(_REGISTRY[name].capabilities() for name in sorted(_REGISTRY))


__all__ = [
    "AlgorithmInfo",
    "available_algorithms",
    "describe_algorithms",
    "get_algorithm",
    "register_algorithm",
]
