"""Distributed verification of r-fault-tolerant 2-spanners.

Lemma 3.1 is *local*: whether host edge ``(u, v)`` is satisfied depends
only on the spanner's restriction to ``{u, v} ∪ (N+(u) ∩ N-(v))`` — a
radius-1 neighbourhood. So verification, like construction, runs in O(1)
LOCAL rounds:

* round 0 — every node broadcasts its incident spanner edges;
* round 1 — every node knows, for each incident host edge, the spanner
  adjacency of both endpoints; it counts bought two-path midpoints for
  the host edges it owns and halts with the list of violations.

Two rounds, messages of O(Δ) size. This gives the distributed pipeline a
self-check: after Algorithm 2's rounding, the network itself can certify
the output (or name the violated edges) without any central collection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Set, Tuple

from ..distsim.node import NodeAlgorithm, NodeContext
from ..distsim.runtime import SimulationResult, communication_graph, run_algorithm
from ..errors import DistributedError
from ..graph.graph import BaseGraph, Graph
from ..rng import RandomLike

Vertex = Hashable
EdgeKey = Tuple[Vertex, Vertex]


class LocalLemma31Verifier(NodeAlgorithm):
    """Node program: each node checks the host edges it is the tail of.

    ``host_out[v]`` lists v's outgoing host edges (or all incident edges,
    one orientation, for undirected hosts); ``spanner_adj[v]`` is v's
    spanner adjacency (out- and in-edges for digraphs).
    """

    def __init__(
        self,
        r: int,
        host_out: Dict[Vertex, List[Vertex]],
        spanner_out: Dict[Vertex, Set[Vertex]],
        spanner_in: Dict[Vertex, Set[Vertex]],
    ):
        self.r = r
        self.host_out = host_out
        self.spanner_out = spanner_out
        self.spanner_in = spanner_in

    def on_start(self, ctx: NodeContext) -> None:
        # Announce this node's spanner adjacency to all host neighbours.
        ctx.broadcast(
            {
                "out": tuple(self.spanner_out.get(ctx.node, ())),
                "in": tuple(self.spanner_in.get(ctx.node, ())),
            }
        )

    def on_round(self, ctx: NodeContext, inbox) -> None:
        violations: List[EdgeKey] = []
        my_out = self.spanner_out.get(ctx.node, set())
        for v in self.host_out.get(ctx.node, ()):  # host edge (me, v)
            if v in my_out:
                continue  # edge bought
            neighbour_report = inbox.get(v)
            if neighbour_report is None:
                violations.append((ctx.node, v))
                continue
            v_in = set(neighbour_report["in"])
            midpoints = {z for z in my_out if z in v_in and z not in (ctx.node, v)}
            if len(midpoints) < self.r + 1:
                violations.append((ctx.node, v))
        ctx.halt(result=tuple(violations))


def distributed_lemma31_check(
    spanner: BaseGraph,
    graph: BaseGraph,
    r: int,
    seed: RandomLike = None,
    *,
    method: str = "auto",
) -> Tuple[bool, List[EdgeKey], SimulationResult]:
    """Run the 2-round LOCAL verification.

    Returns ``(valid, violations, simulation_result)``. The communication
    topology is :func:`repro.distsim.communication_graph` of the host
    (Section 3.5's bidirectional-communication convention); ``method``
    selects the simulator's execution path.
    """
    if r < 0:
        raise DistributedError(f"r must be nonnegative, got {r}")
    comm = communication_graph(graph)

    host_out: Dict[Vertex, List[Vertex]] = {}
    for u, v, _w in graph.edges():
        host_out.setdefault(u, []).append(v)
    spanner_out: Dict[Vertex, Set[Vertex]] = {}
    spanner_in: Dict[Vertex, Set[Vertex]] = {}
    for u, v, _w in spanner.edges():
        spanner_out.setdefault(u, set()).add(v)
        spanner_in.setdefault(v, set()).add(u)
        if not spanner.directed:
            spanner_out.setdefault(v, set()).add(u)
            spanner_in.setdefault(u, set()).add(v)

    verifier = LocalLemma31Verifier(r, host_out, spanner_out, spanner_in)
    sim = run_algorithm(comm, lambda v: verifier, seed=seed, method=method)
    violations: List[EdgeKey] = []
    for result in sim.results.values():
        violations.extend(result or ())
    return not violations, violations, sim
