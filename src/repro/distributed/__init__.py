"""Distributed algorithms in the LOCAL model (Sections 2.3 and 3.5).

Padded decompositions (Lemma 3.7), the distributed Baswana–Sen base
spanner, the Theorem 2.3 distributed fault-tolerance conversion, and
Algorithm 2's cluster-decomposed LP with local rounding (Theorem 3.9).

The two end-to-end pipelines self-register in :mod:`repro.registry` as
``distributed-ft`` and ``distributed-ft2`` (capability flag
``distributed=True``), so they build through the same
:class:`repro.session.Session` front door as the centralized algorithms,
and their ``method=`` switch (array round engine vs reference dict
simulator, see :mod:`repro.distsim`) threads through
:class:`repro.spec.SpannerSpec` like every other dispatch decision.
:func:`repro.distsim.communication_graph` is re-exported here because
every entry point in this package runs on the undirected communication
topology of its (possibly directed) problem graph.
"""

from ..distsim.runtime import communication_graph
from .cluster_lp import (
    ClusterLPIteration,
    DistributedLPResult,
    DistributedSpannerResult,
    default_iteration_count,
    distributed_ft2_lp,
    distributed_ft2_spanner,
)
from .decomposition import (
    DEFAULT_P,
    PaddedDecomposition,
    PaddedDecompositionAlgorithm,
    default_radius_cap,
    distributed_padded_decomposition,
    sample_padded_decomposition,
)
from .ft_spanner import DistributedFTResult, distributed_ft_spanner
from .local_verify import LocalLemma31Verifier, distributed_lemma31_check
from .local_spanner import BaswanaSenNode, distributed_baswana_sen, shared_coin

__all__ = [
    "BaswanaSenNode",
    "ClusterLPIteration",
    "DEFAULT_P",
    "DistributedFTResult",
    "DistributedLPResult",
    "DistributedSpannerResult",
    "LocalLemma31Verifier",
    "PaddedDecomposition",
    "PaddedDecompositionAlgorithm",
    "communication_graph",
    "default_iteration_count",
    "default_radius_cap",
    "distributed_baswana_sen",
    "distributed_ft2_lp",
    "distributed_ft2_spanner",
    "distributed_ft_spanner",
    "distributed_lemma31_check",
    "distributed_padded_decomposition",
    "sample_padded_decomposition",
    "shared_coin",
]
