"""A distributed (2k-1)-spanner in the LOCAL model.

Corollary 2.4 needs a distributed base spanner running in O(k) rounds with
size ``O(k · n^{1+1/k})``-ish (the paper cites Derbel–Gavoille–Peleg–
Viennot; any local clustering spanner qualifies for the conversion). We
implement the Baswana–Sen clustering spanner distributedly — it is the
classical local construction and mirrors
:func:`repro.spanners.baswana_sen.baswana_sen_spanner` phase by phase.

One round per clustering phase suffices thanks to *shared randomness*: the
per-phase coin "is cluster c sampled?" is a public hash ``h(c, phase)``
every node can evaluate locally, so no communication is needed to learn a
neighbouring cluster's fate. Each round a node (1) applies neighbours'
decisions from the previous round (resolved edges, new cluster centers)
and (2) makes its own phase decision and announces it. Total rounds:
``k + 1`` for stretch ``2k - 1``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

from ..distsim.node import NodeAlgorithm, NodeContext
from ..distsim.runtime import SimulationResult, run_algorithm
from ..errors import DistributedError
from ..graph.csr import SurvivorView, snapshot
from ..graph.graph import BaseGraph, Graph
from ..rng import RandomLike, ensure_rng

Vertex = Hashable


def shared_coin(center: Vertex, phase: int, salt: int, p: float) -> bool:
    """Public coin: whether cluster ``center`` survives sampling in ``phase``.

    Implemented as a hash of ``(center, phase, salt)`` mapped to [0, 1).
    Every node evaluates the same value locally — the LOCAL-model idiom for
    shared randomness.
    """
    digest = hashlib.sha256(
        f"{salt}:{phase}:{center!r}".encode("utf-8")
    ).digest()
    value = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return value < p


@dataclass
class _Decision:
    """Per-round broadcast: my new center + edges I resolved/bought."""

    center: Optional[Vertex]
    resolved: Tuple[Vertex, ...]
    bought: Tuple[Vertex, ...]


class BaswanaSenNode(NodeAlgorithm):
    """Node program for the distributed Baswana–Sen spanner."""

    def __init__(self, k: int, p: float, salt: int, weights: Dict[Vertex, Dict[Vertex, float]]):
        self.k = k
        self.p = p
        self.salt = salt
        self.weights = weights  # node -> {neighbor: weight}, local views

    # -- helpers -----------------------------------------------------------

    def _lightest_per_cluster(
        self, ctx: NodeContext
    ) -> Dict[Vertex, Tuple[Vertex, float]]:
        """Lightest live incident edge into each *clustered* neighbour's cluster."""
        live: Set[Vertex] = ctx.state["live"]
        centers: Dict[Vertex, Optional[Vertex]] = ctx.state["neighbor_center"]
        my_weights = self.weights[ctx.node]
        best: Dict[Vertex, Tuple[Vertex, float]] = {}
        for u in live:
            c = centers.get(u)
            if c is None:
                continue
            w = my_weights[u]
            if c not in best or w < best[c][1]:
                best[c] = (u, w)
        return best

    def _resolve_cluster_edges(self, ctx: NodeContext, cluster: Vertex) -> List[Vertex]:
        """Drop all live edges into ``cluster``; return the dropped endpoints."""
        live: Set[Vertex] = ctx.state["live"]
        centers = ctx.state["neighbor_center"]
        dropped = [u for u in live if centers.get(u) == cluster]
        live.difference_update(dropped)
        return dropped

    def _buy(self, ctx: NodeContext, u: Vertex) -> None:
        ctx.state["bought"].add((ctx.node, u))

    # -- protocol ----------------------------------------------------------

    def on_start(self, ctx: NodeContext) -> None:
        ctx.state["center"] = ctx.node
        ctx.state["live"] = set(ctx.neighbors)
        ctx.state["bought"] = set()
        ctx.state["neighbor_center"] = {}
        ctx.broadcast(_Decision(center=ctx.node, resolved=(), bought=()))

    def _apply_inbox(self, ctx: NodeContext, inbox: Dict[Vertex, _Decision]) -> None:
        live: Set[Vertex] = ctx.state["live"]
        centers: Dict[Vertex, Optional[Vertex]] = ctx.state["neighbor_center"]
        for sender, decision in inbox.items():
            centers[sender] = decision.center
            if ctx.node in decision.resolved:
                live.discard(sender)

    def on_round(self, ctx: NodeContext, inbox: Dict[Vertex, _Decision]) -> None:
        self._apply_inbox(ctx, inbox)
        phase = ctx.round  # phases 1 .. k-1, final joining at round k
        if phase <= self.k - 1:
            self._clustering_phase(ctx, phase)
        else:
            self._final_phase(ctx)

    def _clustering_phase(self, ctx: NodeContext, phase: int) -> None:
        center = ctx.state["center"]
        resolved: List[Vertex] = []
        bought_now: List[Vertex] = []
        if center is not None and shared_coin(center, phase, self.salt, self.p):
            # My cluster survived sampling; nothing to do this phase.
            ctx.broadcast(_Decision(center=center, resolved=(), bought=()))
            return
        best = self._lightest_per_cluster(ctx)
        sampled = {
            c: e
            for c, e in best.items()
            if shared_coin(c, phase, self.salt, self.p)
        }
        if center is not None and sampled:
            join_center, (join_nbr, join_w) = min(
                sampled.items(), key=lambda item: (item[1][1], repr(item[0]))
            )
            self._buy(ctx, join_nbr)
            bought_now.append(join_nbr)
            ctx.state["center"] = join_center
            for c, (u, w) in best.items():
                if c == join_center:
                    continue
                if w < join_w:
                    self._buy(ctx, u)
                    bought_now.append(u)
                    resolved.extend(self._resolve_cluster_edges(ctx, c))
            resolved.extend(self._resolve_cluster_edges(ctx, join_center))
            ctx.broadcast(
                _Decision(
                    center=join_center,
                    resolved=tuple(resolved),
                    bought=tuple(bought_now),
                )
            )
        elif center is not None:
            # No sampled neighbouring cluster: buy one edge per cluster
            # and leave the clustering for good.
            for c, (u, w) in best.items():
                self._buy(ctx, u)
                bought_now.append(u)
                resolved.extend(self._resolve_cluster_edges(ctx, c))
            ctx.state["center"] = None
            ctx.broadcast(
                _Decision(center=None, resolved=tuple(resolved), bought=tuple(bought_now))
            )
        else:
            # Already unclustered; just keep echoing state.
            ctx.broadcast(_Decision(center=None, resolved=(), bought=()))

    def _final_phase(self, ctx: NodeContext) -> None:
        best = self._lightest_per_cluster(ctx)
        for _c, (u, _w) in best.items():
            self._buy(ctx, u)
        ctx.halt(result=ctx.state["bought"])


def distributed_baswana_sen(
    graph: Graph,
    k: int,
    seed: RandomLike = None,
    sample_probability: Optional[float] = None,
    *,
    method: str = "auto",
    scenario=None,
    weights: Optional[Dict[Vertex, Dict[Vertex, float]]] = None,
) -> Tuple[Graph, SimulationResult]:
    """Run the distributed Baswana–Sen (2k-1)-spanner.

    Returns the spanner (union of all nodes' bought edges) and the
    simulation result; ``result.rounds`` is ``k + 1`` — realizing the
    O(k)-round bound Corollary 2.4 needs from its base construction.
    ``method`` selects the simulator's execution path (seed-identical
    either way).

    ``scenario`` (a :class:`repro.graph.scenario.FaultScenario` or a
    :class:`repro.graph.csr.SurvivorView` over ``graph``'s snapshot)
    runs the protocol on the surviving subgraph without materializing
    it: faulted nodes stay silent in the simulator, and all accounting
    (sample probability, round/message counts, the spanner's vertex
    set) matches running on the materialized survivor subgraph exactly.
    ``weights`` optionally supplies the host's ``{v: {u: w}}`` adjacency
    map so repeated scenario runs over one host share it; nodes only
    ever read live-neighbor entries, so the full host map is safe on
    any masked view.
    """
    if graph.directed:
        raise DistributedError("the distributed spanner runs on undirected graphs")
    if k < 1:
        raise DistributedError(f"k must be >= 1, got {k}")
    view = None
    if scenario is not None:
        if isinstance(scenario, SurvivorView):
            view = scenario
        else:
            view = snapshot(graph).survivor_view(scenario)
    spanner = Graph()
    if view is None:
        n = graph.num_vertices
        m = graph.num_edges
        spanner.add_vertices(graph.vertices())
    else:
        csr = view.csr
        alive_idx = view.surviving_vertex_indices()
        n = len(alive_idx)
        m = view.num_surviving_edges
        spanner.add_vertices(csr.verts[i] for i in alive_idx)
    if n == 0 or m == 0:
        return spanner, SimulationResult(rounds=0, messages_sent=0)
    if k == 1:
        if view is None:
            for u, v, w in graph.edges():
                spanner.add_edge(u, v, w)
        else:
            verts = csr.verts
            for e in view.surviving_edge_ids():
                spanner.add_edge(
                    verts[csr.edge_u[e]], verts[csr.edge_v[e]], csr.edge_w[e]
                )
        return spanner, SimulationResult(rounds=0, messages_sent=0)
    rng = ensure_rng(seed)
    salt = rng.getrandbits(63)
    p = sample_probability if sample_probability is not None else n ** (-1.0 / k)
    if weights is None:
        weights = {v: dict(graph.neighbor_items(v)) for v in graph.vertices()}
    node = BaswanaSenNode(k=k, p=p, salt=salt, weights=weights)
    sim = run_algorithm(graph, lambda v: node, seed=rng, method=method,
                        scenario=view)
    for bought in sim.results.values():
        for (a, b) in bought:
            spanner.add_edge(a, b, graph.weight(a, b))
    return spanner, sim
