"""Algorithm 2 — distributed O(log n)-approximation (Theorem 3.9).

The only nonlocal step of the Section 3.3 algorithm is solving LP (4); the
rounding (Algorithm 1) is a purely local threshold test. Algorithm 2 makes
the LP local:

1. for ``t = O(log n)`` iterations, sample a padded decomposition
   (Lemma 3.7);
2. every cluster center gathers its cluster's local view ``G(C)``
   (the subgraph induced by ``C ∪ N(C)``) and solves ``LP(C)`` — LP (4) on
   ``G(C)`` with edges leaving ``E(C)`` re-costed to 0 — then scatters the
   solution back;
3. each edge averages its x value over the iterations in which both
   endpoints were co-clustered (scaled by 4/t, capped at 1);
4. Algorithm 1 rounds the averaged values locally.

Lemma 3.8 makes the per-iteration cluster LPs sum to at most LP*, and the
padding property makes the averaged solution feasible whp — together the
approximation is O(log n) in expectation (Theorem 3.9).

The implementation computes exactly what the message protocol computes and
*accounts* rounds explicitly: per iteration, O(log n) rounds for the
decomposition plus a gather/scatter of twice the cluster radius (+1 hop
for N(C)); plus one final round for the rounding exchange. The cluster-
center LP solve itself is local computation, free in the LOCAL model.
Edges whose endpoints were never co-clustered keep x = 0 and are handled
by the rounding driver's repair path (a low-probability event at the
default ``t``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

from ..distsim.runtime import communication_graph
from ..errors import DistributedError
from ..graph.graph import BaseGraph, DiGraph, Graph
from ..lp.cutting_plane import solve_with_cuts
from ..registry import register_algorithm
from ..rng import RandomLike, derive_rng, ensure_rng
from ..two_spanner.lp_new import build_ft2_lp, knapsack_cover_oracle, x_var
from ..two_spanner.rounding import (
    RoundingResult,
    alpha_log_n,
    round_until_valid,
)
from .decomposition import (
    DEFAULT_P,
    PaddedDecomposition,
    default_radius_cap,
    sample_padded_decomposition,
)

Vertex = Hashable
EdgeKey = Tuple[Vertex, Vertex]


def default_iteration_count(n: int, constant: float = 4.0) -> int:
    """Algorithm 2's ``t = O(log n)`` iteration count."""
    return max(2, math.ceil(constant * math.log(max(n, 2))))


@dataclass
class ClusterLPIteration:
    """Accounting for one iteration of the loop in Algorithm 2."""

    decomposition_rounds: int
    gather_scatter_rounds: int
    num_clusters: int
    lp_value_sum: float
    padded_fraction: float


@dataclass
class DistributedLPResult:
    """Averaged x values plus full round accounting (Theorem 3.9)."""

    x_values: Dict[EdgeKey, float]
    iterations: int
    total_rounds: int
    per_iteration: List[ClusterLPIteration] = field(default_factory=list)

    @property
    def lp_cost(self) -> float:
        """Σ c_e x̃_e — bounded by 4·LP* via Lemma 3.8 (in expectation)."""
        return self._lp_cost

    _lp_cost: float = 0.0


def _local_view(graph: BaseGraph, members: Set[Vertex], comm: Graph) -> Tuple[BaseGraph, Set[Vertex]]:
    """``G(C)``: subgraph induced by ``C ∪ N(C)``, plus the halo ``N(C)``."""
    halo: Set[Vertex] = set()
    for v in members:
        for u in comm.neighbors(v):
            if u not in members:
                halo.add(u)
    view = graph.induced_subgraph(members | halo)
    return view, halo


def _solve_cluster_lp(
    graph: BaseGraph,
    members: Set[Vertex],
    comm: Graph,
    r: int,
    backend: str,
) -> Tuple[Dict[EdgeKey, float], float]:
    """Solve LP(C) and return x values for E(C) and the LP(C) objective.

    Edges of ``G(C)`` outside ``E(C)`` (crossing or halo-internal) are
    re-costed to 0, per the Lemma 3.8 construction; only x values of
    ``E(C)`` edges are reported back (those are the values Algorithm 2
    averages).
    """
    view, _halo = _local_view(graph, members, comm)
    if view.num_edges == 0:
        return {}, 0.0
    # Re-cost: internal edges keep their cost, everything else is free.
    recosted = type(view)()
    recosted.add_vertices(view.vertices())
    internal: Set[EdgeKey] = set()
    for u, v, w in view.edges():
        if u in members and v in members:
            recosted.add_edge(u, v, w)
            internal.add((u, v))
        else:
            recosted.add_edge(u, v, 0.0)
    model = build_ft2_lp(recosted, r)
    result = solve_with_cuts(
        model.lp, [knapsack_cover_oracle(model)], backend=backend
    )
    x_internal = {
        (u, v): result.solution.value(x_var(u, v)) for (u, v) in internal
    }
    return x_internal, result.solution.objective


def distributed_ft2_lp(
    graph: BaseGraph,
    r: int,
    t: Optional[int] = None,
    p: float = DEFAULT_P,
    seed: RandomLike = None,
    backend: str = "auto",
    method: str = "auto",
) -> DistributedLPResult:
    """The LP-solving loop of Algorithm 2 (lines 1–5).

    Returns the averaged ``x̃`` values and the number of LOCAL rounds the
    message protocol would take: per iteration, ``radius_cap`` rounds of
    decomposition sampling plus ``2·(max cluster radius + 1)`` rounds of
    gather/scatter. ``method`` threads to the per-iteration Lemma 3.7
    sampler (seed-identical on every path).
    """
    if r < 0:
        raise DistributedError(f"r must be nonnegative, got {r}")
    comm = communication_graph(graph)
    n = comm.num_vertices
    iterations = t if t is not None else default_iteration_count(n)
    rng = ensure_rng(seed)
    cap = default_radius_cap(n)

    sums: Dict[EdgeKey, float] = {(u, v): 0.0 for u, v, _w in graph.edges()}
    hits: Dict[EdgeKey, int] = {key: 0 for key in sums}
    per_iteration: List[ClusterLPIteration] = []
    total_rounds = 0

    for i in range(iterations):
        decomposition = sample_padded_decomposition(
            comm, p=p, radius_cap=cap, seed=derive_rng(rng, i), method=method
        )
        clusters = decomposition.clusters
        max_radius = max(
            (decomposition.radii[c] for c in clusters), default=0
        )
        lp_sum = 0.0
        for center, members in clusters.items():
            x_internal, value = _solve_cluster_lp(graph, members, comm, r, backend)
            lp_sum += value
            for key, x in x_internal.items():
                sums[key] += x
                hits[key] += 1
        gather_scatter = 2 * (max_radius + 1)
        total_rounds += cap + gather_scatter
        per_iteration.append(
            ClusterLPIteration(
                decomposition_rounds=cap,
                gather_scatter_rounds=gather_scatter,
                num_clusters=len(clusters),
                lp_value_sum=lp_sum,
                padded_fraction=decomposition.padded_fraction(comm),
            )
        )

    x_values = {
        key: min(1.0, 4.0 * total / iterations) for key, total in sums.items()
    }
    result = DistributedLPResult(
        x_values=x_values,
        iterations=iterations,
        total_rounds=total_rounds,
        per_iteration=per_iteration,
    )
    result._lp_cost = sum(
        graph.weight(u, v) * x for (u, v), x in x_values.items()
    )
    return result


@dataclass
class DistributedSpannerResult:
    """Full Algorithm 2 output: spanner, certificates, round count."""

    rounding: RoundingResult
    lp: DistributedLPResult
    total_rounds: int

    @property
    def spanner(self) -> BaseGraph:
        return self.rounding.spanner

    @property
    def cost(self) -> float:
        return self.rounding.cost


def distributed_ft2_spanner(
    graph: BaseGraph,
    r: int,
    t: Optional[int] = None,
    p: float = DEFAULT_P,
    seed: RandomLike = None,
    backend: str = "auto",
    alpha_constant: float = 4.0,
    max_attempts: int = 20,
    method: str = "auto",
) -> DistributedSpannerResult:
    """Algorithm 2 end to end (Theorem 3.9).

    The final local rounding costs one extra communication round (each
    vertex tells neighbours which incident edges it bought).
    """
    rng = ensure_rng(seed)
    lp = distributed_ft2_lp(
        graph, r, t=t, p=p, seed=rng, backend=backend, method=method
    )
    alpha = alpha_log_n(graph.num_vertices, alpha_constant)
    rounding = round_until_valid(
        graph, lp.x_values, r, alpha, max_attempts=max_attempts, seed=rng
    )
    return DistributedSpannerResult(
        rounding=rounding, lp=lp, total_rounds=lp.total_rounds + 1
    )


@register_algorithm(
    "distributed-ft2",
    summary="Algorithm 2 / Theorem 3.9: distributed r-FT 2-spanner in LOCAL",
    stretch_domain="exactly 2 (unit lengths, per-edge costs)",
    weighted=True,
    directed=True,
    fault_tolerant=True,
    distributed=True,
    stretch_kind="fixed",
    fixed_stretch=2,
)
def _registry_build(graph: BaseGraph, spec, seed):
    """Spec adapter: ``SpannerSpec -> distributed_ft2_spanner``."""
    from ..spec import require_fault_kind, require_stretch

    require_stretch(spec, 2)
    require_fault_kind(spec, "vertex", "none")
    result = distributed_ft2_spanner(
        graph,
        spec.faults.r,
        t=spec.param("t"),
        p=spec.param("p", DEFAULT_P),
        seed=seed,
        backend=spec.param("backend", "auto"),
        alpha_constant=spec.param("alpha_constant", 4.0),
        max_attempts=spec.param("max_attempts", 20),
        method=spec.method,
    )
    stats = {
        "cost": result.cost,
        "total_rounds": result.total_rounds,
        "lp_iterations": result.lp.iterations,
        "lp_cost": result.lp.lp_cost,
        "rounding_attempts": result.rounding.attempts,
    }
    return result, stats
