"""Theorem 2.3 / Corollary 2.4 — distributed fault-tolerant spanners.

The conversion is "trivially distributed" (paper): the per-iteration fault
oversampling is an independent local coin at every vertex, and the base
spanner algorithm runs on the surviving subgraph. Running the distributed
Baswana–Sen spanner (k+1 rounds for stretch 2k-1) for
``α = Θ(r^3 log n)`` iterations gives an r-fault-tolerant spanner in
``O(r^3 log n · k)`` rounds — Corollary 2.4's shape.

We simulate each iteration honestly in the LOCAL runtime: survivors of the
iteration's sampling run the spanner protocol on the induced communication
subgraph (a node that sampled itself "faulty" stays silent, exactly as a
crashed node would), and the reported round count is the sum over
iterations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable, List, Optional

from ..core.conversion import resolve_iterations, survival_probability
from ..errors import DistributedError
from ..graph.csr import resolve_method, snapshot
from ..graph.graph import Graph
from ..registry import register_algorithm
from ..rng import RandomLike, derive_rng, ensure_rng
from .local_spanner import distributed_baswana_sen

Vertex = Hashable


@dataclass
class DistributedFTResult:
    """Union spanner plus LOCAL-model accounting."""

    spanner: Graph
    iterations: int
    total_rounds: int
    total_messages: int
    survivor_sizes: List[int] = field(default_factory=list)

    @property
    def num_edges(self) -> int:
        return self.spanner.num_edges


def distributed_ft_spanner(
    graph: Graph,
    k: int,
    r: int,
    iterations: Optional[int] = None,
    schedule: str = "light",
    constant: float = 16.0,
    seed: RandomLike = None,
    *,
    method: str = "auto",
) -> DistributedFTResult:
    """Distributed r-fault-tolerant (2k-1)-spanner (Corollary 2.4).

    Parameters mirror :func:`repro.core.conversion.fault_tolerant_spanner`;
    ``k`` here is the Baswana–Sen level count (stretch ``2k - 1``). The
    default schedule is "light" (``r² log n``) because the simulator runs
    every round explicitly; pass ``schedule="theorem"`` for the full
    ``r³ log n`` of the statement. ``method`` selects the execution
    path for every per-iteration run, resolved once against the *host*:
    on the CSR path each iteration's sampling becomes a
    :class:`repro.graph.csr.SurvivorView` over one shared host snapshot
    — engine nodes that sampled "faulty" simply stay silent on the
    masked view, and no per-iteration subgraph, snapshot, or engine
    routing table is ever rebuilt. ``method="dict"`` stays the pinned
    reference (materialized ``induced_subgraph`` per iteration); the
    two paths are seed-identical.
    """
    if graph.directed:
        raise DistributedError("run on the undirected communication graph")
    if r < 0:
        raise DistributedError(f"r must be nonnegative, got {r}")
    n = graph.num_vertices
    rng = ensure_rng(seed)
    union = Graph()
    union.add_vertices(graph.vertices())

    if r == 0:
        spanner, sim = distributed_baswana_sen(graph, k, seed=rng, method=method)
        for u, v, w in spanner.edges():
            union.add_edge(u, v, w)
        return DistributedFTResult(
            spanner=union,
            iterations=1,
            total_rounds=sim.rounds,
            total_messages=sim.messages_sent,
            survivor_sizes=[n],
        )

    alpha = resolve_iterations(n, r, iterations, schedule, constant)
    p_survive = survival_probability(r)
    total_rounds = 0
    total_messages = 0
    survivor_sizes: List[int] = []
    vertices = list(graph.vertices())
    resolved = resolve_method(method, n)

    if resolved == "csr" and n:
        # Zero-copy loop: one host snapshot and one host weights map,
        # reused by every iteration's masked view. The survivor draw is
        # the same one-random()-per-vertex stream the dict loop consumes.
        snap = snapshot(graph)
        weights = {v: dict(graph.neighbor_items(v)) for v in vertices}
        for i in range(alpha):
            it_rng = derive_rng(rng, i)
            alive = [it_rng.random() < p_survive for _v in vertices]
            survivor_sizes.append(sum(alive))
            view = snap.survivor_view(alive)
            spanner, sim = distributed_baswana_sen(
                graph, k, seed=it_rng, method="csr", scenario=view,
                weights=weights,
            )
            total_rounds += max(sim.rounds, 1)
            total_messages += sim.messages_sent
            for u, v, w in spanner.edges():
                union.add_edge(u, v, w)
    else:
        for i in range(alpha):
            it_rng = derive_rng(rng, i)
            survivors = [v for v in vertices if it_rng.random() < p_survive]
            survivor_sizes.append(len(survivors))
            sub = graph.induced_subgraph(survivors)
            spanner, sim = distributed_baswana_sen(
                sub, k, seed=it_rng, method="dict"
            )
            total_rounds += max(sim.rounds, 1)
            total_messages += sim.messages_sent
            for u, v, w in spanner.edges():
                union.add_edge(u, v, w)

    return DistributedFTResult(
        spanner=union,
        iterations=alpha,
        total_rounds=total_rounds,
        total_messages=total_messages,
        survivor_sizes=survivor_sizes,
    )


@register_algorithm(
    "distributed-ft",
    summary="Corollary 2.4 distributed r-FT (2t-1)-spanner (LOCAL simulator)",
    stretch_domain="odd integers 2t-1 (Baswana–Sen levels t)",
    weighted=True,
    directed=False,
    fault_tolerant=True,
    distributed=True,
    stretch_kind="odd",
)
def _registry_build(graph: Graph, spec, seed):
    """Spec adapter: ``SpannerSpec -> distributed_ft_spanner``."""
    from ..graph.csr import resolve_method
    from ..spec import require_fault_kind, stretch_to_levels

    require_fault_kind(spec, "vertex", "none")
    # Resolve "auto" once against the host and force every per-iteration
    # simulation onto that path: the iterations run on survivor
    # *subgraphs*, which would otherwise re-resolve per subgraph size
    # and make the report's resolved_method (derived from the host by
    # the session) misstate which engine actually ran.
    resolved = resolve_method(spec.method, graph.num_vertices)
    result = distributed_ft_spanner(
        graph,
        stretch_to_levels(spec, parameter="k"),
        spec.faults.r,
        iterations=spec.param("iterations"),
        schedule=spec.param("schedule", "light"),
        constant=spec.param("constant", 16.0),
        seed=seed,
        method=resolved,
    )
    stats = {
        "iterations": result.iterations,
        "total_rounds": result.total_rounds,
        "total_messages": result.total_messages,
        "survivor_sizes": list(result.survivor_sizes),
        "resolved_method": resolved,
    }
    return result, stats
