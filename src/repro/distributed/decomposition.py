"""Padded decompositions (Lemma 3.7), centralized and distributed.

A padded decomposition is a random partition of the vertices into clusters
of (weak) diameter ``O(log n)`` such that each vertex's closed neighbourhood
lands in a single cluster with probability at least 1/2. Following the
paper's Lemma 3.7 (a distributed adaptation of Bartal's construction):

1. every vertex ``u`` draws a radius ``r_u`` from a geometric distribution
   with constant parameter ``p``, truncated at ``R = O(log n)``;
2. ``u`` announces its ID to every vertex within ``min(r_u, R)`` hops;
3. every vertex joins the smallest-ID announcer it heard.

A cluster may not contain its center, but ``diam(C ∪ {center})`` is at
most ``2R``. For the padding bound, note that if ``u`` is the smallest-ID
vertex whose ball reaches the closed neighbourhood ``B(v, 1)`` then the
memorylessness of the geometric distribution gives
``Pr[r_u >= d(u,v) + 1 | r_u >= d(u,v) - 1] = (1 - p)^2``, which is at
least 1/2 for ``p <= 1 - sqrt(1/2)``; with the default ``p = 0.2`` the
guarantee is ``(0.8)^2 = 0.64``, leaving margin for boundary effects.

Both implementations below sample from the *same* distribution: the
centralized one via truncated BFS per vertex, the distributed one via TTL
flooding in the LOCAL simulator (taking ``R`` rounds, i.e. O(log n)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

from ..distsim.node import NodeAlgorithm, NodeContext
from ..distsim.runtime import SimulationResult, communication_graph, run_algorithm
from ..errors import DistributedError
from ..graph.csr import BFSBalls, resolve_method, snapshot
from ..graph.graph import BaseGraph, Graph
from ..graph.paths import bfs_distances
from ..rng import RandomLike, ensure_rng, geometric

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on stripped images
    _np = None

Vertex = Hashable

#: Default geometric parameter; padding probability is (1 - p)^2 = 0.64 >= 1/2.
DEFAULT_P = 0.2


def default_radius_cap(n: int) -> int:
    """Truncation radius ``R = ceil(8 ln n)`` (exceeded w.p. n^{-Θ(1)})."""
    return max(2, math.ceil(8.0 * math.log(max(n, 2))))


@dataclass
class PaddedDecomposition:
    """A sampled partition with its radii, for verification and reuse."""

    assignment: Dict[Vertex, Vertex]  # vertex -> cluster center
    radii: Dict[Vertex, int]  # center -> sampled radius (capped)
    radius_cap: int

    @property
    def clusters(self) -> Dict[Vertex, Set[Vertex]]:
        """center -> member set (centers with empty clusters omitted)."""
        out: Dict[Vertex, Set[Vertex]] = {}
        for v, c in self.assignment.items():
            out.setdefault(c, set()).add(v)
        return out

    def cluster_of(self, v: Vertex) -> Vertex:
        """The center whose cluster contains ``v``."""
        return self.assignment[v]

    def same_cluster(self, u: Vertex, v: Vertex) -> bool:
        return self.assignment[u] == self.assignment[v]

    def is_padded(self, graph: BaseGraph, v: Vertex) -> bool:
        """Whether ``N(v) ∪ {v}`` lies in a single cluster."""
        center = self.assignment[v]
        neighbors = (
            set(graph.successors(v)) | set(graph.predecessors(v))
            if graph.directed
            else set(graph.neighbors(v))
        )
        return all(self.assignment[u] == center for u in neighbors)

    def padded_fraction(self, graph: BaseGraph) -> float:
        """Fraction of vertices that are padded (Definition 3.6 item 2)."""
        vertices = list(graph.vertices())
        if not vertices:
            return 1.0
        padded = sum(1 for v in vertices if self.is_padded(graph, v))
        return padded / len(vertices)

    def max_weak_diameter(self, graph: BaseGraph) -> int:
        """Max over clusters of the hop diameter measured in the host graph.

        "Weak" because the connecting paths may leave the cluster
        (Definition 3.6 item 1 bounds exactly this quantity).
        """
        comm = communication_graph(graph)
        worst = 0
        for members in self.clusters.values():
            for v in members:
                dist = bfs_distances(comm, v)
                for u in members:
                    d = dist.get(u)
                    if d is None:
                        return -1  # disconnected pair: treat as failure
                    worst = max(worst, d)
        return worst


def _claim_balls_csr(graph: Graph, order, radii) -> Dict[Vertex, Vertex]:
    """Ball computation + claiming on the CSR kernels.

    Hop balls come from the compiled unit-weight limited SSSP when SciPy
    is available (centers batched by radius), otherwise from the
    generation-stamped :class:`~repro.graph.csr.BFSBalls` kernel. Ball
    membership is exact either way, so the claimed assignment matches the
    dict path vertex for vertex.
    """
    snap = snapshot(graph)
    index = snap.index
    verts = snap.verts
    n = snap.num_vertices
    order_idx = [index[v] for v in order]
    assignment_idx = [-1] * n
    kernels = snap.scipy_kernels()
    if kernels is not None and _np is not None:
        unit = _np.ones(len(snap.nbr))
        radius_of = {index[v]: radii[v] for v in order}
        # Walk the claim order in fixed-size chunks (batching each
        # chunk's centers by radius for the compiled call) so peak
        # memory stays O(chunk · n) instead of one row per center.
        chunk_size = 64
        for lo in range(0, len(order_idx), chunk_size):
            chunk = order_idx[lo : lo + chunk_size]
            by_radius: Dict[int, List[int]] = {}
            for c in chunk:
                by_radius.setdefault(radius_of[c], []).append(c)
            members: Dict[int, List[int]] = {}
            for radius, centers in by_radius.items():
                rows = kernels.sssp_rows(centers, limit=float(radius), data=unit)
                for k, c in enumerate(centers):
                    members[c] = _np.nonzero(rows[k] <= radius)[0].tolist()
            for c in chunk:
                for v in members[c]:
                    if assignment_idx[v] < 0:
                        assignment_idx[v] = c
    else:
        balls = BFSBalls(snap)
        for c in order_idx:
            for v in balls.ball(c, radii[verts[c]]):
                if assignment_idx[v] < 0:
                    assignment_idx[v] = c
    return {
        verts[v]: verts[c] for v, c in enumerate(assignment_idx) if c >= 0
    }


def sample_padded_decomposition(
    graph: Graph,
    p: float = DEFAULT_P,
    radius_cap: Optional[int] = None,
    seed: RandomLike = None,
    *,
    method: str = "auto",
) -> PaddedDecomposition:
    """Centralized sampler (truncated-BFS implementation of Lemma 3.7).

    Vertex IDs are compared by ``repr`` so arbitrary hashable vertex types
    get a consistent total order — matching the "smallest ID wins" rule of
    the distributed version. Radii are drawn in that same ID order on
    every path, and ball membership is exact hop distance, so
    ``method="csr"`` and ``method="dict"`` (see
    :func:`repro.graph.csr.resolve_method`) produce identical
    decompositions for a fixed seed.
    """
    if graph.directed:
        raise DistributedError("decompose the undirected communication graph")
    rng = ensure_rng(seed)
    n = graph.num_vertices
    cap = radius_cap if radius_cap is not None else default_radius_cap(n)
    order = sorted(graph.vertices(), key=repr)
    radii = {v: min(geometric(rng, p), cap) for v in order}
    resolved = resolve_method(method, n)
    if resolved == "csr" and n:
        assignment = _claim_balls_csr(graph, order, radii)
    else:
        assignment = {}
        # Smallest-ID announcer wins: iterate centers in ID order and
        # claim still-unassigned vertices within the radius.
        for center in order:
            reach = bfs_distances(graph, center, cutoff=radii[center])
            for v in reach:
                if v not in assignment:
                    assignment[v] = center
    return PaddedDecomposition(assignment=assignment, radii=radii, radius_cap=cap)


class PaddedDecompositionAlgorithm(NodeAlgorithm):
    """LOCAL-model implementation: TTL flooding of center announcements.

    Each announcement ``(center, ttl)`` is forwarded while its TTL permits;
    a node re-forwards a center only when it sees a strictly larger
    remaining TTL (so each center's announcement floods exactly its ball).
    After ``radius_cap`` rounds every node halts and selects the
    smallest-ID center it heard (every node hears itself: ``r_u >= 1``).
    """

    def __init__(self, p: float, radius_cap: int):
        self.p = p
        self.radius_cap = radius_cap

    def on_start(self, ctx: NodeContext) -> None:
        radius = min(geometric(ctx.rng, self.p), self.radius_cap)
        ctx.state["radius"] = radius
        ctx.state["heard"] = {ctx.node: radius}  # center -> best remaining ttl
        if radius >= 1:
            ctx.broadcast([(ctx.node, radius - 1)])

    def on_round(self, ctx: NodeContext, inbox) -> None:
        heard: Dict[Vertex, int] = ctx.state["heard"]
        forwards: List[Tuple[Vertex, int]] = []
        for _sender, announcements in inbox.items():
            for center, ttl in announcements:
                if center not in heard or ttl > heard[center]:
                    heard[center] = ttl
                    if ttl >= 1:
                        forwards.append((center, ttl - 1))
        if forwards:
            ctx.broadcast(forwards)
        if ctx.round >= self.radius_cap:
            chosen = min(heard, key=repr)
            ctx.halt(result=chosen)


def distributed_padded_decomposition(
    graph: Graph,
    p: float = DEFAULT_P,
    radius_cap: Optional[int] = None,
    seed: RandomLike = None,
    *,
    method: str = "auto",
) -> Tuple[PaddedDecomposition, SimulationResult]:
    """Run the Lemma 3.7 algorithm in the simulator.

    Returns the decomposition plus the simulation result (whose ``rounds``
    field realizes the O(log n) round bound). ``method`` selects the
    simulator's execution path (array round engine vs reference dict
    loop); both are seed-identical.
    """
    cap = radius_cap if radius_cap is not None else default_radius_cap(
        graph.num_vertices
    )
    algorithm = PaddedDecompositionAlgorithm(p=p, radius_cap=cap)
    sim = run_algorithm(graph, lambda v: algorithm, seed=seed, method=method)
    assignment = dict(sim.results)
    radii = {v: sim.states[v]["radius"] for v in assignment}
    decomposition = PaddedDecomposition(
        assignment=assignment, radii=radii, radius_cap=cap
    )
    return decomposition, sim
