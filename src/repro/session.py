"""The :class:`Session`: the executing half of the public front door.

A session owns the two pieces of shared state every pipeline needs and
every ad-hoc call site used to re-plumb by hand:

* **randomness** — specs without an explicit seed get one derived from
  the session's root stream (:func:`repro.rng.derive_rng` per build), and
  the resolved seed lands in the report, so any build is replayable as
  ``spec.replace(seed=report.resolved_seed)``;
* **CSR snapshots** — before dispatching a build whose ``method``
  resolves to the CSR path, the session primes
  :func:`repro.graph.csr.snapshot` on the host and counts cache hits, so
  :meth:`Session.build_many` over one host pays the O(n + m) snapshot
  build exactly once (the groundwork for sharded E-suite sweeps).

The contract with algorithms is the registry's builder signature
(:mod:`repro.registry`); the session adds capability checks (directed
hosts, fault tolerance), wall-time measurement, and the
:class:`repro.spec.BuildReport` envelope.

Quickstart::

    from repro import FaultModel, Session, SpannerSpec
    from repro.graph import connected_gnp_graph

    g = connected_gnp_graph(60, 0.2, seed=0)
    session = Session()
    report = session.build(
        SpannerSpec("theorem21", stretch=3, faults=FaultModel.vertex(2), seed=1),
        graph=g,
    )
    assert session.verify(report, graph=g, mode="sampled")
"""

from __future__ import annotations

import hashlib
import time
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .errors import InvalidSpec
from .graph.csr import maybe_snapshot, resolve_method, snapshot
from .graph.graph import BaseGraph
from .graph.io import load_json
from .hosts import HostSpec
from .registry import AlgorithmInfo, available_algorithms, get_algorithm
from .rng import RandomLike, derive_rng, ensure_rng
from .spec import BuildReport, SpannerSpec

#: Anything a build can run on: a loaded graph or a typed host spec
#: (materialized through the session's per-fingerprint cache).
HostLike = Union[BaseGraph, HostSpec]

#: Fault-set count above which ``verify(mode="auto")`` samples instead of
#: enumerating (exhaustive verification is exponential in r).
AUTO_EXHAUSTIVE_LIMIT = 5_000


def derive_build_seed(root, index: int) -> int:
    """The seed a session with root stream ``root`` derives at ``index``.

    This is the one seed-derivation rule of the library: sessions call it
    per unseeded build, and :meth:`repro.sweep.SweepPlan.resolve_seeds`
    replays it over a whole plan so that sharded workers — each with its
    own session — resolve exactly the seeds one sequential session would
    have. Consumes one 64-bit draw from ``root`` (callers must therefore
    invoke it only for unseeded builds, in build order).
    """
    return derive_rng(root, index).getrandbits(63)


class Session:
    """Executes :class:`repro.spec.SpannerSpec` builds with shared state.

    Parameters
    ----------
    seed:
        Root randomness for specs that do not pin their own seed. A
        session constructed with the same root seed replays the same
        derived seeds in the same build order.
    """

    def __init__(self, seed: RandomLike = None) -> None:
        self._root = ensure_rng(seed)
        self._build_index = 0
        self._graphs_by_path: Dict[str, BaseGraph] = {}
        #: Materialized HostSpec hosts, keyed by spec fingerprint — so
        #: repeated builds on one spec share one instance (and snapshot).
        self._graphs_by_host_spec: Dict[str, BaseGraph] = {}
        #: CSR snapshots built on behalf of this session's builds.
        self.snapshot_builds = 0
        #: Builds that found a still-valid snapshot already cached.
        self.snapshot_hits = 0

    # -- introspection -------------------------------------------------

    @staticmethod
    def algorithms() -> Tuple[str, ...]:
        """Delegate of :func:`repro.registry.available_algorithms`."""
        return available_algorithms()

    # -- host / seed resolution ---------------------------------------

    def resolve_graph(
        self, spec: SpannerSpec, graph: Optional[HostLike] = None
    ) -> BaseGraph:
        """The host graph a build of ``spec`` would run on.

        An explicit ``graph`` argument wins (a :class:`BaseGraph` or a
        :class:`repro.hosts.HostSpec`); otherwise the spec's binding is
        used — instances directly, paths through the session's per-path
        cache, and host specs through a per-fingerprint cache — so
        repeated builds share one loaded instance and therefore one CSR
        snapshot.
        """
        return self._resolve_graph(spec, graph)

    def _materialize_host_spec(self, spec: HostSpec) -> BaseGraph:
        key = spec.fingerprint()
        cached = self._graphs_by_host_spec.get(key)
        if cached is None:
            cached = spec.materialize()
            self._graphs_by_host_spec[key] = cached
        return cached

    def _resolve_graph(
        self, spec: SpannerSpec, graph: Optional[HostLike]
    ) -> BaseGraph:
        if graph is not None:
            if isinstance(graph, HostSpec):
                return self._materialize_host_spec(graph)
            return graph
        bound = spec.graph
        if isinstance(bound, BaseGraph):
            return bound
        if isinstance(bound, HostSpec):
            return self._materialize_host_spec(bound)
        if isinstance(bound, str):
            cached = self._graphs_by_path.get(bound)
            if cached is None:
                cached = load_json(bound)
                self._graphs_by_path[bound] = cached
            return cached
        raise InvalidSpec(
            f"spec {spec.algorithm!r} has no host graph: bind one via "
            "SpannerSpec(graph=...) (instance, JSON path, or HostSpec) "
            "or pass graph= to Session.build"
        )

    def _resolve_seed(self, spec: SpannerSpec) -> Optional[int]:
        index = self._build_index
        self._build_index += 1
        if spec.seed is not None:
            return spec.seed
        return derive_build_seed(self._root, index)

    def _prime_snapshot(self, graph: BaseGraph) -> None:
        """Build (or reuse) the host's CSR snapshot, counting cache hits.

        ``maybe_snapshot(build=False)`` is the kernel layer's own
        "already cached and still valid?" probe, so the counters track
        the cache's real behaviour without duplicating its internals.
        """
        if maybe_snapshot(graph, build=False) is not None:
            self.snapshot_hits += 1
        else:
            self.snapshot_builds += 1
        snapshot(graph)

    # -- building ------------------------------------------------------

    def build(
        self, spec: SpannerSpec, graph: Optional[HostLike] = None
    ) -> BuildReport:
        """Execute one spec and return its :class:`BuildReport`.

        Capability mismatches (directed host into an undirected-only
        algorithm, fault tolerance requested from a plain spanner
        algorithm, ...) raise :class:`repro.errors.InvalidSpec` before
        any work happens.
        """
        info: AlgorithmInfo = get_algorithm(spec.algorithm)
        host = self._resolve_graph(spec, graph)
        self._check_capabilities(info, spec, host)
        seed = self._resolve_seed(spec)
        resolved = resolve_method(
            spec.method, host.num_vertices, compiled_path=info.compiled_path
        )
        # Only algorithms with a CSR path consume a host snapshot; for
        # the rest (LP/rounding and LOCAL-simulator pipelines) building
        # one would be pure waste and would inflate the reuse counters.
        # The compiled tier rides the same snapshot (its kernels consume
        # the half-edge arrays), so it primes identically.
        if resolved in ("csr", "compiled") and host.num_vertices and info.csr_path:
            self._prime_snapshot(host)
        started = time.perf_counter()
        artifact, stats = info.builder(host, spec, seed)
        elapsed = time.perf_counter() - started
        stats = dict(stats)
        # A builder that dispatches differently from the generic size
        # rule (e.g. greedy's always-on indexed kernel) reports the path
        # it actually took.
        resolved = stats.pop("resolved_method", resolved)
        report = BuildReport(
            spec=spec,
            artifact=artifact,
            size=0,
            resolved_method=resolved,
            resolved_seed=seed,
            rng_fingerprint=self._fingerprint(spec, seed),
            wall_time_s=elapsed,
            stats=stats,
        )
        spanner = report.spanner
        report.size = (
            spanner.num_edges if spanner is not None else int(stats.get("size", 0))
        )
        return report

    def serve(
        self,
        spec: SpannerSpec,
        graph: Optional[HostLike] = None,
        policy=None,
    ):
        """Start a :class:`repro.serve.SpannerService` on this session.

        The service performs its initial build (and any full-rebuild
        repairs) through *this* session, so rebuild seeds come from the
        session's root stream and snapshot counters keep meaning across
        the service's lifetime. ``policy`` is a
        :class:`repro.serve.RepairPolicy` (default: eager tiered repair).
        """
        from .serve.service import SpannerService

        host = self._resolve_graph(spec, graph)
        return SpannerService(host, spec, policy=policy, session=self)

    def build_many(
        self, specs: Iterable[SpannerSpec], graph: Optional[HostLike] = None
    ) -> List[BuildReport]:
        """Execute many specs, reusing host snapshots across builds.

        Specs sharing a host (the same bound instance, the same bound
        path, or one ``graph=`` argument) pay for at most one CSR
        snapshot between them; :attr:`snapshot_hits` counts the reuse.
        This is the sequential core the sharded sweep drivers split
        across processes — each shard is a JSON list of specs.
        """
        return [self.build(spec, graph=graph) for spec in specs]

    @staticmethod
    def _check_capabilities(
        info: AlgorithmInfo, spec: SpannerSpec, host: BaseGraph
    ) -> None:
        if host.directed and not info.directed:
            raise InvalidSpec(
                f"algorithm {info.name!r} needs an undirected host, got a "
                "directed graph"
            )
        if spec.faults.kind != "none" and not info.fault_tolerant:
            raise InvalidSpec(
                f"algorithm {info.name!r} is not fault-tolerant; either use "
                "FaultModel.none() or wrap it as the base of the 'theorem21' "
                "conversion (params={'base_algorithm': ...})"
            )
        if spec.faults.kind not in info.fault_kinds:
            raise InvalidSpec(
                f"algorithm {info.name!r} serves fault kinds "
                f"{'/'.join(info.fault_kinds)}, got {spec.faults.kind!r}"
            )

    @staticmethod
    def _fingerprint(spec: SpannerSpec, seed: Optional[int]) -> str:
        # The spec's own seed field is normalized out: the resolved seed
        # already enters the blob, so a build whose seed was derived by
        # the session and its explicit-seed replay (spec.replace(seed=
        # report.resolved_seed), e.g. a resolved sweep-plan shard) carry
        # the same fingerprint for the same computation.
        blob = f"{spec.replace(seed=None).fingerprint()}:{seed}".encode("utf-8")
        return hashlib.sha256(blob).hexdigest()[:16]

    # -- fault scenarios -----------------------------------------------

    def scenario(
        self,
        spec: SpannerSpec,
        graph: Optional[HostLike] = None,
        iteration: int = 0,
        seed: Optional[int] = None,
    ):
        """The :class:`repro.graph.FaultScenario` a build's iteration drew.

        Replays the library's one sampling rule — ``ensure_rng(seed)``,
        then :func:`repro.rng.derive_rng` per iteration in order, then
        one ``random()`` per vertex (``kind="vertex"``) or per edge
        (``kind="edge"``) with the spec's survival probability — and
        freezes iteration ``iteration``'s draw as a replayable scenario
        with seed/iteration provenance. Feeding the result back through
        ``scenarios=`` reproduces that iteration's fault set exactly.

        ``seed`` overrides the spec's pinned seed (pass
        ``report.resolved_seed`` to replay a session-derived build);
        a spec with no resolvable seed raises :class:`InvalidSpec`.
        """
        from .core.conversion import survival_probability
        from .graph.scenario import FaultScenario

        if iteration < 0:
            raise InvalidSpec(f"iteration must be >= 0, got {iteration}")
        if seed is None:
            seed = spec.seed
        if seed is None:
            raise InvalidSpec(
                "scenario replay needs a seed: pin one on the spec or pass "
                "seed= (e.g. report.resolved_seed)"
            )
        kind = spec.faults.kind
        if kind == "none":
            return FaultScenario.none()
        host = self._resolve_graph(spec, graph)
        p_survive = spec.param("survival_prob")
        if p_survive is None:
            p_survive = survival_probability(spec.faults.r)
        rng = ensure_rng(seed)
        for j in range(iteration + 1):
            it_rng = derive_rng(rng, j)
        if kind == "vertex":
            return FaultScenario.sample_vertices(
                host.vertices(), p_survive, it_rng,
                seed=seed, iteration=iteration,
            )
        return FaultScenario.sample_edges(
            ((u, v) for u, v, _w in host.edges()), p_survive, it_rng,
            seed=seed, iteration=iteration,
        )

    # -- verification --------------------------------------------------

    def verify(
        self,
        report: BuildReport,
        graph: Optional[HostLike] = None,
        mode: str = "auto",
        trials: int = 100,
        seed: int = 0,
    ) -> bool:
        """Check a report's spanner against its spec's promise.

        ``mode`` is ``"exhaustive"``, ``"sampled"``, ``"lemma31"`` (the
        2-spanner counting check), or ``"auto"`` — which picks lemma31
        for stretch-2 specs, exhaustive enumeration while the fault-set
        count stays under :data:`AUTO_EXHAUSTIVE_LIMIT`, and Monte Carlo
        sampling beyond.
        """
        from .core import (
            count_fault_sets,
            is_fault_tolerant_spanner,
            is_ft_2spanner,
            sampled_fault_check,
        )
        from .core.edge_faults import (
            is_edge_fault_tolerant_spanner,
            is_edge_ft_2spanner,
            sampled_edge_fault_check,
        )
        from .spanners import is_spanner

        if mode not in ("auto", "exhaustive", "sampled", "lemma31"):
            raise InvalidSpec(
                "verify mode must be 'auto', 'exhaustive', 'sampled', or "
                f"'lemma31', got {mode!r}"
            )
        spec = report.spec
        spanner = report.spanner
        if spanner is None:
            raise InvalidSpec(
                f"report for {spec.algorithm!r} has no spanner graph to verify"
            )
        host = self._resolve_graph(spec, graph)
        kind, r, k = spec.faults.kind, spec.faults.r, spec.stretch
        if kind == "none" or r == 0:
            return is_spanner(spanner, host, k)
        if mode == "auto":
            if k == 2:
                mode = "lemma31"
            elif count_fault_sets(host.num_vertices, r) <= AUTO_EXHAUSTIVE_LIMIT:
                mode = "exhaustive"
            else:
                mode = "sampled"
        if kind == "vertex":
            if mode == "exhaustive":
                return is_fault_tolerant_spanner(spanner, host, k, r)
            if mode == "sampled":
                return sampled_fault_check(
                    spanner, host, k, r, trials=trials, seed=seed
                )
            return is_ft_2spanner(spanner, host, r)
        # edge faults
        if mode == "exhaustive":
            return is_edge_fault_tolerant_spanner(spanner, host, k, r)
        if mode == "sampled":
            return sampled_edge_fault_check(
                spanner, host, k, r, trials=trials, seed=seed
            )
        return is_edge_ft_2spanner(spanner, host, r)


def build(
    spec: SpannerSpec,
    graph: Optional[HostLike] = None,
    seed: RandomLike = None,
) -> BuildReport:
    """One-shot convenience: ``Session(seed).build(spec, graph)``."""
    return Session(seed=seed).build(spec, graph=graph)


__all__ = ["AUTO_EXHAUSTIVE_LIMIT", "Session", "build", "derive_build_seed"]
