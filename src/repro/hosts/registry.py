"""The host-generator registry: one namespace for every host topology.

The algorithm registry (:mod:`repro.registry`) answers "what can be
built?"; this registry answers "what can it be built *on*?". Every
topology family self-registers via :func:`register_host_generator` with
machine-readable capabilities — does it produce directed graphs?
non-uniform weights? is it deterministic or seeded? how big can it get?
— so the sweep emitter can cross-check (host × algorithm) grid points
without materializing a single graph:

* :func:`available_host_generators` — the sorted names;
* :func:`get_host_generator` — the :class:`HostInfo` record;
* :func:`describe_host_generators` — JSON-able capability table (the
  CLI's ``hosts --json`` output);
* :func:`materialize_host` — validate a :class:`HostSpec` against its
  generator's capabilities and build the graph.

A registered generator has the uniform signature
``generator(params, seed) -> BaseGraph``: the spec's (already frozen)
params mapping and seed in, the host graph out.

Builtin registration is lazy: :mod:`repro.hosts.builtin` is imported the
first time anything asks the registry a question, which keeps
``import repro.hosts`` free of import cycles.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from ..errors import InvalidSpec, RegistryError, UnknownHostGenerator
from .spec import HostSpec

#: Generator signature: (params, seed) -> BaseGraph.
Generator = Callable[[Mapping[str, Any], Optional[int]], Any]

#: Modules whose import self-registers the builtin host generators.
_BUILTIN_MODULES = ("repro.hosts.builtin",)

_REGISTRY: Dict[str, "HostInfo"] = {}
_builtins_loaded = False


@dataclass(frozen=True)
class HostInfo:
    """Registry record: the generator plus its capability metadata.

    ``directed`` is tri-state: ``True`` (always produces digraphs, e.g.
    ``kautz``), ``False`` (always undirected), or ``None`` (depends on
    the input — the ``corpus`` loader). ``deterministic`` generators
    take no seed; randomized ones require an int seed so any sweep
    worker can rebuild the identical host. ``max_vertices`` plus the
    ``size_hint`` closed form bound recursive families (Kautz, DCell)
    whose size explodes in their parameters.
    """

    name: str
    generator: Generator
    summary: str
    directed: Optional[bool] = False
    weighted: bool = False
    deterministic: bool = True
    #: Accepted ``params`` keys; anything else is refused by name.
    params: Tuple[str, ...] = ()
    #: The subset of ``params`` that must be present.
    required: Tuple[str, ...] = ()
    #: Hard cap on the materialized vertex count (None = unbounded).
    max_vertices: Optional[int] = None
    #: Closed-form vertex count from params, when one exists.
    size_hint: Optional[Callable[[Mapping[str, Any]], int]] = field(
        default=None, compare=False
    )

    def capabilities(self) -> Dict[str, Any]:
        """JSON-able capability row (used by CLI/introspection)."""
        return {
            "name": self.name,
            "summary": self.summary,
            "directed": self.directed,
            "weighted": self.weighted,
            "deterministic": self.deterministic,
            "params": list(self.params),
            "required": list(self.required),
            "max_vertices": self.max_vertices,
        }

    def validate(self, spec: HostSpec) -> None:
        """Check a spec against this generator's capabilities.

        Raises :class:`repro.errors.InvalidSpec` naming the offending
        field, the accepted values, and the generator — eagerly, so grid
        emission fails before any worker process materializes anything.
        """
        extra = set(spec.params) - set(self.params)
        if extra:
            accepted = ", ".join(self.params) if self.params else "none"
            raise InvalidSpec(
                f"host generator {self.name!r} got unknown params "
                f"{sorted(extra)}; accepted params: {accepted}"
            )
        missing = set(self.required) - set(spec.params)
        if missing:
            raise InvalidSpec(
                f"host generator {self.name!r} is missing required params "
                f"{sorted(missing)}"
            )
        if self.deterministic and spec.seed is not None:
            raise InvalidSpec(
                f"host generator {self.name!r} is deterministic and takes "
                f"no seed, got seed={spec.seed}; drop the seed so equal "
                "graphs get equal fingerprints"
            )
        if not self.deterministic and spec.seed is None:
            raise InvalidSpec(
                f"host generator {self.name!r} is randomized and needs an "
                "int seed so sweep workers can rebuild the identical host"
            )
        if self.size_hint is not None and self.max_vertices is not None:
            try:
                predicted = self.size_hint(spec.params)
            except Exception:
                predicted = None  # param-type errors surface at build time
            if predicted is not None and predicted > self.max_vertices:
                raise InvalidSpec(
                    f"host generator {self.name!r} with params "
                    f"{dict(spec.params)!r} would build {predicted} vertices, "
                    f"over the {self.max_vertices}-vertex safety bound"
                )

    def unsupported_reason(self, algorithm_info: Any) -> Optional[str]:
        """Why this host cannot feed ``algorithm_info``, or ``None``.

        The host-side counterpart of
        :meth:`repro.registry.AlgorithmInfo.unsupported_reason`: the
        sweep emitter calls both, so (algorithm × topology) grids refuse
        impossible combinations up front instead of failing in a worker.
        """
        if self.directed and not algorithm_info.directed:
            return (
                f"host {self.name!r} is directed but algorithm "
                f"{algorithm_info.name!r} only serves undirected hosts"
            )
        if self.weighted and not algorithm_info.weighted:
            return (
                f"host {self.name!r} is weighted but algorithm "
                f"{algorithm_info.name!r} only serves unit weights"
            )
        return None


def register_host_generator(
    name: str,
    *,
    summary: str,
    directed: Optional[bool] = False,
    weighted: bool = False,
    deterministic: bool = True,
    params: Tuple[str, ...] = (),
    required: Optional[Tuple[str, ...]] = None,
    max_vertices: Optional[int] = None,
    size_hint: Optional[Callable[[Mapping[str, Any]], int]] = None,
) -> Callable[[Generator], Generator]:
    """Decorator: register ``generator(params, seed)`` under ``name``.

    ``required`` defaults to all of ``params``. Raises
    :class:`repro.errors.RegistryError` on duplicate names — two modules
    silently fighting over one name is always a bug.
    """
    if not isinstance(name, str) or not name:
        raise RegistryError(
            f"host generator name must be a non-empty str, got {name!r}"
        )
    params = tuple(params)
    required = params if required is None else tuple(required)
    unknown_required = set(required) - set(params)
    if unknown_required:
        raise RegistryError(
            f"host generator {name!r}: required keys {sorted(unknown_required)} "
            f"are not in params {params!r}"
        )

    def decorator(generator: Generator) -> Generator:
        if name in _REGISTRY:
            raise RegistryError(
                f"host generator {name!r} is already registered "
                f"(by {_REGISTRY[name].generator.__module__})"
            )
        _REGISTRY[name] = HostInfo(
            name=name,
            generator=generator,
            summary=summary,
            directed=directed,
            weighted=weighted,
            deterministic=deterministic,
            params=params,
            required=required,
            max_vertices=max_vertices,
            size_hint=size_hint,
        )
        return generator

    return decorator


def _ensure_builtins() -> None:
    """Import the builtin generator module once so its hooks have run.

    Same discipline as :func:`repro.registry._ensure_builtins`: the flag
    is raised before the loop so queries made during the builtin import
    short-circuit, and lowered again on failure so the next query
    retries instead of serving a half-populated registry.
    """
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    try:
        for module in _BUILTIN_MODULES:
            importlib.import_module(module)
    except BaseException:
        _builtins_loaded = False
        raise


def available_host_generators() -> Tuple[str, ...]:
    """Sorted names of every registered host generator."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def get_host_generator(name: str) -> HostInfo:
    """Look up one generator; unknown names list what is available."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownHostGenerator(name, available=_REGISTRY) from None


def describe_host_generators() -> Tuple[Dict[str, Any], ...]:
    """Capability rows for every registered generator, sorted by name."""
    _ensure_builtins()
    return tuple(_REGISTRY[name].capabilities() for name in sorted(_REGISTRY))


def materialize_host(spec: HostSpec):
    """Validate ``spec`` against its generator and build the host graph."""
    info = get_host_generator(spec.generator)
    info.validate(spec)
    return info.generator(spec.params, spec.seed)


__all__ = [
    "HostInfo",
    "available_host_generators",
    "describe_host_generators",
    "get_host_generator",
    "materialize_host",
    "register_host_generator",
]
