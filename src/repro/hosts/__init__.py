"""Host topology subsystem: typed specs + capability-carrying registry.

The host-side mirror of the algorithm front door. A
:class:`repro.hosts.spec.HostSpec` names a registered generator, its
params, and (for randomized families) a seed; the registry
(:mod:`repro.hosts.registry`) knows every family's capabilities —
directedness, weights, determinism, size bounds — so sweeps can plan
(algorithm × topology × fault-model) grids without materializing a
graph, and refuse impossible combinations up front.

    from repro.hosts import HostSpec

    kautz = HostSpec("kautz", params={"d": 2, "diameter": 3})
    fabric = HostSpec("dcell", params={"n": 4, "level": 1})
    graph = fabric.materialize()

Specs travel by content: strict JSON round-trips plus a spec-derived
fingerprint make them stable across machines and ``PYTHONHASHSEED``
values, which is what lets :class:`repro.sweep.SweepPlan` carry them
lazily and scheduler manifests stay byte-stable.
"""

from .registry import (
    HostInfo,
    available_host_generators,
    describe_host_generators,
    get_host_generator,
    materialize_host,
    register_host_generator,
)
from .spec import HOST_FORMAT, HostSpec, is_host_document

__all__ = [
    "HOST_FORMAT",
    "HostInfo",
    "HostSpec",
    "available_host_generators",
    "describe_host_generators",
    "get_host_generator",
    "is_host_document",
    "materialize_host",
    "register_host_generator",
]
