"""Builtin host generators: every topology family, self-registered.

Each adapter wraps one :mod:`repro.graph.generators` constructor (or the
edge-list corpus loader) into the uniform registry signature
``generator(params, seed) -> BaseGraph`` and declares its capabilities.
The structured interconnect families — Kautz ``K(d, D)``, recursive
``DCell(n, k)`` — carry closed-form ``size_hint`` functions so the
registry can refuse parameter choices that would explode *before*
building anything.

The ``corpus`` generator loads whitespace edge-list files from disk with
a content-hash cache: two specs naming files with identical bytes share
one in-memory graph (and therefore one CSR snapshot inside a session),
and editing a file invalidates the cache automatically because the key
is the content digest, not the path.
"""

from __future__ import annotations

import hashlib
import io
from typing import Any, Dict, Mapping, Optional

from ..errors import InvalidSpec
from ..graph.generators import (
    barabasi_albert_graph,
    complete_bipartite_graph,
    complete_digraph,
    complete_graph,
    connected_gnp_graph,
    cycle_graph,
    dcell_counts,
    dcell_graph,
    gnp_random_digraph,
    gnp_random_graph,
    grid_graph,
    hypercube_graph,
    kautz_graph,
    layered_fault_graph,
    path_graph,
    powerlaw_cluster_graph,
    random_geometric_graph,
    random_regular_graph,
    star_graph,
    watts_strogatz_graph,
)
from ..graph.io import load_edge_list
from .registry import register_host_generator

#: Safety bound for the recursive families, whose vertex count is
#: super-polynomial in their parameters (DCell is doubly exponential in
#: the level). Large enough for any laptop- or cluster-scale sweep.
STRUCTURED_MAX_VERTICES = 1_000_000


def _range_pair(params: Mapping[str, Any], key: str):
    value = params.get(key)
    if value is None:
        return None
    if (
        not isinstance(value, (list, tuple))
        or len(value) != 2
        or not all(isinstance(x, (int, float)) for x in value)
    ):
        raise InvalidSpec(
            f"host param {key!r} must be a [lo, hi] pair of numbers, "
            f"got {value!r}"
        )
    return (float(value[0]), float(value[1]))


# -- deterministic classical families ---------------------------------


@register_host_generator(
    "complete",
    summary="complete undirected graph K_n",
    params=("n",),
)
def _complete(params: Mapping[str, Any], seed: Optional[int]):
    return complete_graph(params["n"])


@register_host_generator(
    "complete-digraph",
    summary="complete digraph on n vertices (all ordered pairs)",
    directed=True,
    params=("n",),
)
def _complete_digraph(params: Mapping[str, Any], seed: Optional[int]):
    return complete_digraph(params["n"])


@register_host_generator(
    "complete-bipartite",
    summary="complete bipartite graph K_{a,b}",
    params=("a", "b"),
)
def _complete_bipartite(params: Mapping[str, Any], seed: Optional[int]):
    return complete_bipartite_graph(params["a"], params["b"])


@register_host_generator(
    "path",
    summary="path on n vertices",
    params=("n",),
)
def _path(params: Mapping[str, Any], seed: Optional[int]):
    return path_graph(params["n"])


@register_host_generator(
    "cycle",
    summary="cycle on n >= 3 vertices",
    params=("n",),
)
def _cycle(params: Mapping[str, Any], seed: Optional[int]):
    return cycle_graph(params["n"])


@register_host_generator(
    "star",
    summary="star with centre 0 and n leaves",
    params=("n",),
)
def _star(params: Mapping[str, Any], seed: Optional[int]):
    return star_graph(params["n"])


@register_host_generator(
    "grid",
    summary="rows x cols 2D grid",
    params=("rows", "cols"),
)
def _grid(params: Mapping[str, Any], seed: Optional[int]):
    return grid_graph(params["rows"], params["cols"])


@register_host_generator(
    "hypercube",
    summary="boolean hypercube of dimension dim",
    params=("dim",),
)
def _hypercube(params: Mapping[str, Any], seed: Optional[int]):
    return hypercube_graph(params["dim"])


@register_host_generator(
    "layered-fault",
    summary="width parallel vertex-disjoint paths, layers completely joined",
    params=("width", "layers"),
)
def _layered_fault(params: Mapping[str, Any], seed: Optional[int]):
    return layered_fault_graph(params["width"], params["layers"])


# -- structured interconnect families ---------------------------------


@register_host_generator(
    "kautz",
    summary="Kautz digraph K(d, D): unique shortest paths, out-degree d",
    directed=True,
    params=("d", "diameter"),
    max_vertices=STRUCTURED_MAX_VERTICES,
    size_hint=lambda params: (params["d"] + 1) * params["d"] ** params["diameter"],
)
def _kautz(params: Mapping[str, Any], seed: Optional[int]):
    return kautz_graph(params["d"], params["diameter"])


@register_host_generator(
    "dcell",
    summary="recursive DCell_level(n) datacenter fabric",
    params=("n", "level"),
    max_vertices=STRUCTURED_MAX_VERTICES,
    size_hint=lambda params: dcell_counts(params["n"], params["level"])[0],
)
def _dcell(params: Mapping[str, Any], seed: Optional[int]):
    return dcell_graph(params["n"], params["level"])


# -- randomized families ----------------------------------------------


@register_host_generator(
    "gnp",
    summary="Erdos-Renyi G(n, p), optional uniform weight range",
    weighted=True,
    deterministic=False,
    params=("n", "p", "weight_range"),
    required=("n", "p"),
)
def _gnp(params: Mapping[str, Any], seed: Optional[int]):
    return gnp_random_graph(
        params["n"], params["p"], seed=seed,
        weight_range=_range_pair(params, "weight_range"),
    )


@register_host_generator(
    "gnp-digraph",
    summary="directed G(n, p), optional uniform arc-cost range",
    directed=True,
    weighted=True,
    deterministic=False,
    params=("n", "p", "cost_range"),
    required=("n", "p"),
)
def _gnp_digraph(params: Mapping[str, Any], seed: Optional[int]):
    return gnp_random_digraph(
        params["n"], params["p"], seed=seed,
        cost_range=_range_pair(params, "cost_range"),
    )


@register_host_generator(
    "gnp-connected",
    summary="G(n, p) conditioned on connectivity (rejection sampling)",
    weighted=True,
    deterministic=False,
    params=("n", "p", "weight_range"),
    required=("n", "p"),
)
def _gnp_connected(params: Mapping[str, Any], seed: Optional[int]):
    return connected_gnp_graph(
        params["n"], params["p"], seed=seed,
        weight_range=_range_pair(params, "weight_range"),
    )


@register_host_generator(
    "regular",
    summary="random d-regular simple graph (pairing model + swaps)",
    deterministic=False,
    params=("n", "d"),
)
def _regular(params: Mapping[str, Any], seed: Optional[int]):
    return random_regular_graph(params["n"], params["d"], seed=seed)


@register_host_generator(
    "barabasi-albert",
    summary="Barabasi-Albert preferential attachment, m links per vertex",
    deterministic=False,
    params=("n", "m"),
)
def _barabasi_albert(params: Mapping[str, Any], seed: Optional[int]):
    return barabasi_albert_graph(params["n"], params["m"], seed=seed)


@register_host_generator(
    "geometric",
    summary="random geometric graph on the unit square, Euclidean weights",
    weighted=True,
    deterministic=False,
    params=("n", "radius", "euclidean_weights"),
    required=("n", "radius"),
)
def _geometric(params: Mapping[str, Any], seed: Optional[int]):
    return random_geometric_graph(
        params["n"], params["radius"], seed=seed,
        euclidean_weights=bool(params.get("euclidean_weights", True)),
    )


@register_host_generator(
    "watts-strogatz",
    summary="Watts-Strogatz small world: ring lattice + p-rewiring",
    deterministic=False,
    params=("n", "k", "p"),
)
def _watts_strogatz(params: Mapping[str, Any], seed: Optional[int]):
    return watts_strogatz_graph(params["n"], params["k"], params["p"], seed=seed)


@register_host_generator(
    "powerlaw-cluster",
    summary="Holme-Kim power-law graph with tunable clustering",
    deterministic=False,
    params=("n", "m", "p"),
)
def _powerlaw_cluster(params: Mapping[str, Any], seed: Optional[int]):
    return powerlaw_cluster_graph(params["n"], params["m"], params["p"], seed=seed)


# -- edge-list corpus loader ------------------------------------------

#: Parsed corpus graphs keyed by sha256 of the file bytes. Keying on
#: content (not path) means renamed copies share one instance — and one
#: CSR snapshot — while an edited file re-parses automatically.
_CORPUS_CACHE: Dict[str, Any] = {}


def corpus_content_digest(path: str) -> str:
    """sha256 hex digest of the corpus file's bytes.

    Sweep plans mix this into their content fingerprint so a plan over
    ``HostSpec("corpus", ...)`` pins the *data*, not just the filename.
    """
    with open(path, "rb") as handle:
        return hashlib.sha256(handle.read()).hexdigest()


@register_host_generator(
    "corpus",
    summary="whitespace edge-list file from disk (content-hash cached)",
    directed=None,
    weighted=True,
    params=("path",),
)
def _corpus(params: Mapping[str, Any], seed: Optional[int]):
    path = params["path"]
    if not isinstance(path, str) or not path:
        raise InvalidSpec(
            f"corpus host needs params['path'] as a file path str, got {path!r}"
        )
    with open(path, "rb") as handle:
        blob = handle.read()
    digest = hashlib.sha256(blob).hexdigest()
    cached = _CORPUS_CACHE.get(digest)
    if cached is None:
        cached = load_edge_list(io.StringIO(blob.decode("utf-8")))
        _CORPUS_CACHE[digest] = cached
    return cached


__all__ = ["STRUCTURED_MAX_VERTICES", "corpus_content_digest"]
