"""Typed host specs: serializable descriptions of host topologies.

A :class:`HostSpec` is to host graphs what
:class:`repro.spec.SpannerSpec` is to builds: a frozen, validated,
JSON-round-tripping value naming a registered generator
(:mod:`repro.hosts.registry`), its parameters, and — for randomized
families — the seed. Because the spec is pure data, it travels through
sweep plans and scheduler manifests by *content*: two machines holding
the same spec document agree on its :meth:`HostSpec.fingerprint` without
ever materializing the graph, and each worker materializes lazily on
first use.

    >>> spec = HostSpec("kautz", params={"d": 2, "diameter": 3})
    >>> spec.fingerprint()          # stable across processes/machines
    '0f…'
    >>> g = spec.materialize()      # the actual DiGraph, built on demand
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from ..errors import InvalidSpec
from ..spec import _frozen_params, _require_int

#: Format tag stamped into serialized host documents. Sweep plans use it
#: to tell a ``HostSpec`` document apart from an inlined ``repro-graph``.
HOST_FORMAT = "repro-host"
HOST_VERSION = 1


@dataclass(frozen=True)
class HostSpec:
    """One complete, serializable host-topology request.

    Parameters
    ----------
    generator:
        Registry name (see
        :func:`repro.hosts.registry.available_host_generators`).
        Resolution happens at materialize time, so specs can be
        constructed for generators registered later.
    params:
        Generator-specific knobs (e.g. ``{"d": 2, "diameter": 3}`` for
        ``kautz``). Must be JSON-serializable; validated against the
        generator's accepted/required parameter lists when the spec is
        validated or materialized.
    seed:
        Deterministic seed for randomized families. Deterministic
        generators reject a seed (it would diversify fingerprints of
        identical graphs); randomized generators require one (an
        unseeded host could never be rebuilt identically by another
        sweep worker).
    """

    generator: str
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.generator, str) or not self.generator:
            raise InvalidSpec(
                f"host generator must be a non-empty str, got {self.generator!r}"
            )
        if self.seed is not None:
            _require_int("host seed", self.seed)
        object.__setattr__(self, "params", _frozen_params(self.params))

    # -- convenience --------------------------------------------------

    def replace(self, **changes: Any) -> "HostSpec":
        """A copy with the given fields replaced (validated again)."""
        return dataclasses.replace(self, **changes)

    def param(self, key: str, default: Any = None) -> Any:
        """Read one generator-specific knob."""
        return self.params.get(key, default)

    def fingerprint(self) -> str:
        """Stable content digest of the spec.

        Derived purely from the serialized document (sorted-keys JSON →
        sha256), never from object identity or hash ordering, so it is
        equal across processes, machines, and ``PYTHONHASHSEED`` values.
        Sweep plans key host materialization caches and scheduler
        manifests on it.
        """
        blob = json.dumps(self.to_dict(), sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()[:16]

    def materialize(self):
        """Build the host graph this spec describes.

        Resolves the generator through :mod:`repro.hosts.registry`
        (validating params and seed against its capabilities) and runs
        it. Pure function of the spec — equal specs produce equal graphs.
        """
        from .registry import materialize_host

        return materialize_host(self)

    # -- serialization ------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a plain JSON-compatible document."""
        return {
            "format": HOST_FORMAT,
            "version": HOST_VERSION,
            "generator": self.generator,
            "params": dict(self.params),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HostSpec":
        """Inverse of :meth:`to_dict`; strict about shape and keys."""
        if not isinstance(data, Mapping):
            raise InvalidSpec(f"host document must be a mapping, got {data!r}")
        if data.get("format", HOST_FORMAT) != HOST_FORMAT:
            raise InvalidSpec(
                f"not a host document: format={data.get('format')!r} "
                f"(expected {HOST_FORMAT!r})"
            )
        version = data.get("version", HOST_VERSION)
        if version != HOST_VERSION:
            raise InvalidSpec(
                f"unsupported host document version {version!r} (this "
                f"library reads version {HOST_VERSION})"
            )
        known = {"format", "version", "generator", "params", "seed"}
        extra = set(data) - known
        if extra:
            raise InvalidSpec(
                f"host document has unknown keys {sorted(extra)}; "
                f"expected a subset of {sorted(known)}"
            )
        if "generator" not in data:
            raise InvalidSpec("host document is missing the 'generator' key")
        return cls(
            generator=data["generator"],
            params=data.get("params", {}),
            seed=data.get("seed"),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Canonical JSON text (sorted keys, so output is reproducible)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "HostSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise InvalidSpec(f"host document is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path: str) -> None:
        """Write the spec as a JSON file (consumed by ``repro hosts``)."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "HostSpec":
        """Read a host spec JSON file written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


def is_host_document(data: Any) -> bool:
    """Whether ``data`` looks like a serialized :class:`HostSpec`.

    The discriminator sweep plans use when rehydrating their ``hosts``
    mapping, where a value may be a path string, an inlined
    ``repro-graph`` document, or a host document.
    """
    return isinstance(data, Mapping) and data.get("format") == HOST_FORMAT


__all__ = ["HOST_FORMAT", "HOST_VERSION", "HostSpec", "is_host_document"]
