"""Theoretical size bounds, as closed-form curves.

These express the asymptotic bounds proved in the paper and its references
as evaluable functions (with unit leading constants unless stated). The
benchmark harness plots/compares measured sizes against these curves — the
reproduction target is *shape* (who wins, where the crossover falls), not
the hidden constants.
"""

from __future__ import annotations

import math


def greedy_size_bound(n: int, k: int) -> float:
    """Althöfer et al. greedy k-spanner size: ``n^{1 + 2/(k+1)}`` (odd k)."""
    if n <= 0:
        return 0.0
    return float(n) ** (1.0 + 2.0 / (k + 1))


def thorup_zwick_size_bound(n: int, t: int) -> float:
    """Thorup–Zwick (2t-1)-spanner expected size: ``t · n^{1 + 1/t}``."""
    if n <= 0:
        return 0.0
    return t * float(n) ** (1.0 + 1.0 / t)


def baswana_sen_size_bound(n: int, k: int) -> float:
    """Baswana–Sen (2k-1)-spanner expected size: ``k · n^{1 + 1/k}``."""
    if n <= 0:
        return 0.0
    return k * float(n) ** (1.0 + 1.0 / k)


def clpr_ft_size_bound(n: int, k: int, r: int) -> float:
    """CLPR09 r-fault-tolerant (2k-1)-spanner size bound.

    ``O(r^2 · k^{r+1} · n^{1+1/k} · log^{1-1/k} n)`` — the *exponential in
    r* baseline that Theorem 2.1 improves on. Evaluated with unit constant.
    """
    if n <= 1:
        return 0.0
    return (
        (r * r)
        * float(k) ** (r + 1)
        * float(n) ** (1.0 + 1.0 / k)
        * math.log(n) ** (1.0 - 1.0 / k)
    )


def conversion_size_bound(n: int, k: int, r: int) -> float:
    """Dinitz–Krauthgamer conversion size (Theorem 1.1 / Corollary 2.2).

    ``O(r^{2 - 2/(k+1)} · n^{1 + 2/(k+1)} · log n)`` — polynomial in r.
    """
    if n <= 1:
        return 0.0
    r = max(r, 1)
    exponent = 2.0 / (k + 1)
    return r ** (2.0 - exponent) * float(n) ** (1.0 + exponent) * math.log(n)


def conversion_iterations(n: int, r: int, constant: float = 1.0) -> int:
    """The Theorem 2.1 iteration count ``α = Θ(r^3 log n)``.

    ``constant`` scales the hidden constant; the default 1.0 is already far
    beyond what small instances need (the proof's constant serves a
    union bound over ``n^{r+2}`` events).
    """
    if n <= 1:
        return 1
    r = max(r, 1)
    return max(1, math.ceil(constant * r**3 * math.log(n)))


def conversion_iterations_light(n: int, r: int, constant: float = 1.0) -> int:
    """The "light" iteration schedule ``Θ(r^2 log n)``.

    With ``α = c·r²·ln n`` the per-(F, edge) failure probability is
    ``exp(-α / 4r²) = n^{-c/4}``, enough in practice for moderate fault-set
    counts; E1/E3 ablate this schedule against the full theorem schedule.
    """
    if n <= 1:
        return 1
    r = max(r, 1)
    return max(1, math.ceil(constant * r**2 * math.log(n)))


def moore_bound_edges(n: int, girth: int) -> float:
    """Max edges of an n-vertex graph with the given girth (Moore bound form).

    ``(1/2) · (n^{1 + 1/⌊(girth-1)/2⌋} + n)`` — the combinatorial fact
    behind the greedy spanner's size guarantee.
    """
    if n <= 0 or girth < 3:
        return float("inf")
    t = (girth - 1) // 2
    return 0.5 * (float(n) ** (1.0 + 1.0 / t) + n)
