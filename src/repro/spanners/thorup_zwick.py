"""Thorup–Zwick (2t-1)-spanner via sampled vertex hierarchies.

The Chechik–Langberg–Peleg–Roditty fault-tolerant construction (the
baseline the paper improves on) is built around the Thorup–Zwick distance
oracle's cluster structure. We implement the spanner variant: sample a
hierarchy ``V = A_0 ⊇ A_1 ⊇ ... ⊇ A_t = ∅`` (each level keeps a vertex
with probability ``n^{-1/t}``), and for every center ``w ∈ A_i \\ A_{i+1}``
add the shortest-path tree of its *cluster*

    C(w) = { v : d(w, v) < d(A_{i+1}, v) }.

The union of these trees is a (2t-1)-spanner with expected size
``O(t · n^{1 + 1/t})`` [TZ05].

Execution paths (dispatch rule: :func:`repro.graph.csr.resolve_method`):

* ``method="csr"`` runs each hierarchy level through the snapshot's
  compiled kernels (:class:`repro.graph.csr.SciPyGraphKernels`): one
  labeled multi-source pass for the level distances ``φ = d(A_{i+1}, ·)``
  and one *batched, radius-limited* SSSP for all cluster trees of the
  level, followed by a vectorized tree-edge extraction;
* ``method="dict"`` is the reference dict-of-dict implementation.

Three decisions pin the two paths edge-set-identical for a fixed seed:

1. **RNG order** — every Bernoulli draw happens in host vertex order
   (never set-iteration order), so hierarchies match across paths *and*
   across processes regardless of hash randomization.
2. **Johnson priming** — cluster searches run on the reweighted edges
   ``w'(u, v) = (w + φ[u]) - φ[v]``. Because ``φ`` is itself a Dijkstra
   output, ``φ[v] <= fl(w + φ[u])`` holds for the *float* values, so
   ``w' >= 0`` exactly and the TZ membership rule ``d(w, v) < φ[v]``
   becomes the radius rule ``d'(w, v) < φ[w]`` — a scalar cutoff both a
   dict Dijkstra and the compiled kernel's ``limit`` implement
   identically. Both paths evaluate the same float expressions in the
   same order, so primed distances agree bit-for-bit. (Levels whose ``φ``
   is not finite everywhere — disconnected hosts — fall back to the
   unprimed barrier rule on both paths.)
3. **Distance-local tree edges** — each member's parent is its
   *smallest-host-order* strict tight predecessor (``d'[u] + w' == d'[v]``
   with ``d'[u] < d'[v]``, ``u`` in the cluster), found by a post-pass
   over member adjacencies. The rule depends only on final distances,
   never on relaxation order, so any correct SSSP implementation extracts
   the same tree. Members with *no* strict predecessor (possible only on
   zero-weight plateaus, e.g. primed unit-weight graphs) are connected by
   a canonical plateau sweep — processed in ``(distance, order)`` order,
   each joins its smallest-order equal-distance tight neighbour that is
   already connected; every plateau provably contains an entry vertex, so
   the sweep reaches everyone. Both passes are identical (and identically
   ordered) on every execution path.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Hashable, List, Optional, Set, Tuple

from ..errors import InvalidStretch
from ..graph.csr import multi_arange, resolve_method, snapshot
from ..graph.graph import BaseGraph
from ..registry import register_algorithm
from ..rng import RandomLike, ensure_rng

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on stripped images
    _np = None

Vertex = Hashable

INF = math.inf


def _vertex_order(graph: BaseGraph) -> Dict[Vertex, int]:
    """Canonical tie-break order: position in the host's vertex iteration."""
    return {v: i for i, v in enumerate(graph.vertices())}


def _multi_source_distances(
    graph: BaseGraph, sources
) -> Dict[Vertex, float]:
    """Distance from each vertex to its nearest source (absent if none).

    Deterministic: the heap is keyed ``(dist, vertex order)`` with sources
    seeded in host vertex order, and relaxation uses strict improvement —
    exactly the semantics of the CSR multi-source kernels, so all
    implementations agree bit-for-bit.
    """
    order = _vertex_order(graph)
    dist: Dict[Vertex, float] = {}
    best: Dict[Vertex, float] = {}
    heap: List[Tuple[float, int, Vertex]] = []
    for s in sorted(sources, key=order.__getitem__):
        best[s] = 0.0
        heap.append((0.0, order[s], s))
    heapq.heapify(heap)
    while heap:
        d, _, v = heapq.heappop(heap)
        if v in dist:
            continue
        dist[v] = d
        items = graph.successor_items(v) if graph.directed else graph.neighbor_items(v)
        for u, w in items:
            if u in dist:
                continue
            nd = d + w
            if nd < best.get(u, INF):
                best[u] = nd
                heapq.heappush(heap, (nd, order[u], u))
    return dist


def sample_hierarchy(
    vertices: List[Vertex], t: int, rng, sample_probability: Optional[float] = None
) -> List[Set[Vertex]]:
    """Sample the TZ hierarchy ``A_0 ⊇ ... ⊇ A_t = ∅``.

    ``sample_probability`` defaults to ``n^{-1/t}``. The top level is
    forced empty, per the TZ definition. One Bernoulli draw per member of
    the previous level, taken in ``vertices`` order — never in set
    iteration order — so a fixed seed reproduces the hierarchy across
    processes and across the csr/dict execution paths.
    """
    n = len(vertices)
    p = sample_probability if sample_probability is not None else n ** (-1.0 / t)
    levels: List[Set[Vertex]] = [set(vertices)]
    for _ in range(1, t):
        prev = levels[-1]
        levels.append({v for v in vertices if v in prev and rng.random() < p})
    levels.append(set())
    return levels


def _level_centers(
    vertices: List[Vertex], levels: List[Set[Vertex]], i: int
) -> List[Vertex]:
    """``A_i \\ A_{i+1}`` in host vertex order (the canonical center order)."""
    hi, lo = levels[i], levels[i + 1]
    return [v for v in vertices if v in hi and v not in lo]


# ---------------------------------------------------------------------------
# Dict reference path
# ---------------------------------------------------------------------------


def _cluster_dists_dict(
    graph: BaseGraph,
    order: Dict[Vertex, int],
    center: Vertex,
    phi: Optional[Dict[Vertex, float]],
    primed: bool,
) -> Dict[Vertex, float]:
    """Truncated Dijkstra computing C(center)'s (primed) distances.

    ``primed`` requires ``phi`` to be finite on every vertex; the search
    then runs on ``w' = (w + φ[u]) - φ[v]`` with the scalar cutoff
    ``φ[center]``. Otherwise the classical barrier rule
    ``nd >= φ.get(v, inf) → skip`` applies (``phi=None`` = unrestricted).
    """
    dist: Dict[Vertex, float] = {}
    best: Dict[Vertex, float] = {center: 0.0}
    heap: List[Tuple[float, int, Vertex]] = [(0.0, order[center], center)]
    cutoff = phi[center] if primed else INF
    while heap:
        d, _, v = heapq.heappop(heap)
        if v in dist:
            continue
        dist[v] = d
        items = graph.successor_items(v) if graph.directed else graph.neighbor_items(v)
        if primed:
            pv = phi[v]
            for u, w in items:
                if u in dist:
                    continue
                nd = d + ((w + pv) - phi[u])
                if nd >= cutoff:
                    continue
                if nd < best.get(u, INF):
                    best[u] = nd
                    heapq.heappush(heap, (nd, order[u], u))
        else:
            for u, w in items:
                if u in dist:
                    continue
                nd = d + w
                if phi is not None and nd >= phi.get(u, INF):
                    continue
                if nd < best.get(u, INF):
                    best[u] = nd
                    heapq.heappush(heap, (nd, order[u], u))
    return dist


def _cluster_tree_edges(
    graph: BaseGraph,
    center: Vertex,
    barrier: Dict[Vertex, float],
    order: Optional[Dict[Vertex, int]] = None,
) -> List[Tuple[Vertex, Vertex]]:
    """Tree edges of C(center): canonical min-order tight parents.

    Kept as the module-internal building block of the dict path (and the
    CLPR baseline). ``barrier`` is the level distance map; an empty dict
    means unrestricted (the top level).
    """
    if order is None:
        order = _vertex_order(graph)
    phi = barrier if barrier else None
    primed = phi is not None and len(phi) == graph.num_vertices
    dist = _cluster_dists_dict(graph, order, center, phi, primed)
    return _tree_edges_from_dists(graph, order, center, dist, phi, primed)


def _tree_edges_from_dists(
    graph: BaseGraph,
    order: Dict[Vertex, int],
    center: Vertex,
    dist: Dict[Vertex, float],
    phi: Optional[Dict[Vertex, float]],
    primed: bool,
) -> List[Tuple[Vertex, Vertex]]:
    """Canonical tree edges from final distances alone.

    Strict pass: min-order tight predecessor with strictly smaller
    distance. Plateau sweep: members with no strict predecessor join
    their min-order equal-distance tight neighbour that is already
    connected, processed in ``(distance, order)`` order until stable.
    """
    edges: List[Tuple[Vertex, Vertex]] = []
    rest: List[Vertex] = []

    def _items(v):
        return (
            graph.predecessor_items(v) if graph.directed else graph.neighbor_items(v)
        )

    for v, dv in dist.items():
        if v == center:
            continue
        parent = None
        pord = -1
        pv = phi[v] if primed else 0.0
        for u, w in _items(v):
            du = dist.get(u)
            if du is None or du >= dv:
                continue
            wp = (w + phi[u]) - pv if primed else w
            if du + wp == dv and (parent is None or order[u] < pord):
                parent = u
                pord = order[u]
        if parent is not None:
            edges.append((parent, v))
        else:
            rest.append(v)
    if rest:
        connected = set(dist)
        connected.difference_update(rest)
        rest.sort(key=lambda v: (dist[v], order[v]))
        progress = True
        while rest and progress:
            progress = False
            leftover: List[Vertex] = []
            for v in rest:
                dv = dist[v]
                pv = phi[v] if primed else 0.0
                parent = None
                pord = -1
                for u, w in _items(v):
                    if u not in connected:
                        continue
                    du = dist.get(u)
                    if du != dv:
                        continue
                    wp = (w + phi[u]) - pv if primed else w
                    if du + wp == dv and (parent is None or order[u] < pord):
                        parent = u
                        pord = order[u]
                if parent is not None:
                    edges.append((parent, v))
                    connected.add(v)
                    progress = True
                else:
                    leftover.append(v)
            rest = leftover
        # Any leftover is theoretically impossible (every plateau has an
        # entry); leaving it out is at worst a dropped tree edge, and is
        # identical on every path.
    return edges


def _thorup_zwick_dict(
    graph: BaseGraph, t: int, vertices: List[Vertex], levels: List[Set[Vertex]]
) -> BaseGraph:
    """Reference dict-of-dict construction (kept for equivalence tests)."""
    spanner = type(graph)()
    spanner.add_vertices(vertices)
    order = _vertex_order(graph)
    for i in range(t):
        barrier = _multi_source_distances(graph, levels[i + 1]) if levels[i + 1] else {}
        for w in _level_centers(vertices, levels, i):
            for a, b in _cluster_tree_edges(graph, w, barrier, order):
                spanner.add_edge(a, b, graph.weight(a, b))
    return spanner


# ---------------------------------------------------------------------------
# CSR / compiled path
# ---------------------------------------------------------------------------


#: Centers per compiled search batch on restricted levels. Centers are
#: sorted by their cluster radius φ(w) first, so each batch's scalar
#: ``limit`` stays close to its members' true radii and the limited
#: search explores little more than the clusters themselves.
_CHUNK = 48


def _select_parents(np, encoded, counts):
    """Min encoded parent per contiguous (child) group; sentinel = none.

    ``reduceat`` cannot express empty groups (a start equal to ``len``
    raises; an interior empty start misreads the next group), so the
    reduction runs over the nonzero-count starts only — a zero-width
    group occupies no elements, so dropping its start leaves every other
    segment unchanged — and empties get the sentinel explicitly.
    """
    sentinel = np.iinfo(encoded.dtype).max
    starts = np.zeros(len(counts), dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    if len(counts) and counts.min() == 0:
        nz = counts > 0
        gmin = np.full(len(counts), sentinel, dtype=encoded.dtype)
        if bool(nz.any()):
            gmin[nz] = np.minimum.reduceat(encoded, starts[nz])
        return gmin
    return np.minimum.reduceat(encoded, starts)


def _extract_restricted(
    snap, chosen, centers, rows, phi_true, phi_prime, primed
) -> None:
    """Tree edges for one batch of *restricted* cluster searches.

    Pools every cluster's members, gathers their incident half-edges in
    one pass, and reduces to the canonical min-order strict tight parent
    per (cluster, member). Zero-weight plateau members are handed to the
    python sweep (rare; only exact distance ties produce them).
    ``phi_true`` carries the membership barriers, ``phi_prime`` the
    priming potentials (they differ only under fault masking, where
    unreachable vertices prime as 0 but can never pass any test).
    """
    np = _np
    indptr, nbr, wt, eid, deg = snap.half_arrays_np()
    n = snap.num_vertices
    child_chunks = []
    row_chunks = []
    for k in range(len(centers)):
        dist = rows[k]
        if primed:
            members = dist < phi_true[centers[k]]
        else:
            members = dist < phi_true if phi_true is not None else np.isfinite(dist)
        midx = np.nonzero(members)[0]
        midx = midx[midx != centers[k]]  # the center has no parent
        if len(midx):
            child_chunks.append(midx)
            row_chunks.append(np.full(len(midx), k, dtype=np.int32))
    if not child_chunks:
        return
    children = np.concatenate(child_chunks)
    rowids = np.concatenate(row_chunks)
    counts = deg[children]
    half = multi_arange(indptr[children], counts)
    h_nbr = nbr[half]
    h_eid = eid[half]
    h_row = np.repeat(rowids, counts)
    flat = rows.ravel()
    h_dist_child = np.repeat(rows[rowids, children], counts)
    h_dist_nbr = flat.take(h_row.astype(np.int64) * n + h_nbr)
    # Weight of the *reverse* half-edge (parent → child); primed weights
    # are asymmetric, so recompute with the search data's expression:
    # (w + φ[parent]) - φ[child].
    if primed:
        h_w = (wt[half] + phi_prime[h_nbr]) - np.repeat(phi_prime[children], counts)
    else:
        h_w = wt[half]
    tight = h_dist_nbr + h_w == h_dist_child
    tight &= h_dist_nbr < h_dist_child  # strict pass: smaller distance
    if not primed and phi_true is not None:
        tight &= h_dist_nbr < phi_true[h_nbr]  # parent must be a member
    m1 = snap.num_edges + 1
    sentinel = np.iinfo(np.int64).max
    encoded = np.where(tight, h_nbr.astype(np.int64) * m1 + h_eid, sentinel)
    gmin = _select_parents(np, encoded, counts)
    ok = gmin < sentinel
    chosen.update((gmin[ok] % m1).tolist())
    if not bool(ok.all()):
        rest_children = children[~ok]
        rest_rows = rowids[~ok]
        for k in np.unique(rest_rows).tolist():
            rest = rest_children[rest_rows == k].tolist()
            _plateau_fixup_idx(
                snap, chosen, centers[k], rows[k], phi_true, phi_prime, primed, rest
            )


def _extract_unrestricted(snap, chosen, centers, rows) -> None:
    """Tree edges for full (top-level) SPTs, one lean pass per center.

    Every reachable vertex is a member, so the candidate pool per center
    is the whole half-edge array: no member gather is needed and the
    group boundaries are the CSR ``indptr`` itself.
    """
    np = _np
    indptr, nbr, wt, eid, deg = snap.half_arrays_np()
    m1 = snap.num_edges + 1
    sentinel = np.iinfo(np.int64).max
    enc_base = nbr.astype(np.int64) * m1 + eid
    for k in range(len(centers)):
        dist = rows[k]
        h_dist_child = np.repeat(dist, deg)
        h_dist_nbr = dist.take(nbr)
        tight = h_dist_nbr + wt == h_dist_child
        tight &= h_dist_nbr < h_dist_child
        encoded = np.where(tight, enc_base, sentinel)
        gmin = _select_parents(np, encoded, deg)
        ok = gmin < sentinel
        # Unreachable vertices and the center legitimately lack parents.
        reachable = np.isfinite(dist)
        reachable[centers[k]] = False
        chosen.update((gmin[ok & reachable] % m1).tolist())
        rest = np.nonzero(reachable & ~ok)[0]
        if len(rest):
            _plateau_fixup_idx(
                snap, chosen, centers[k], dist, None, None, False, rest.tolist()
            )


def _level_tree_eids_scipy(
    snap,
    kernels,
    chosen: Set[int],
    centers: List[int],
    phi_np,
    base_data=None,
    alive_np=None,
) -> None:
    """All cluster trees of one hierarchy level via the compiled kernels.

    ``base_data`` overrides the weight vector (the CLPR loop passes
    fault-masked weights, with ``inf`` on every half-edge incident to a
    faulted vertex); ``alive_np`` is the matching survivor mask, used
    only to decide whether ``φ`` is finite on every *surviving* vertex —
    the condition for the Johnson-primed limited search. Faulted
    vertices never pass any membership or tightness test because their
    distances are ``inf`` on every path.
    """
    np = _np
    if phi_np is not None:
        finite = np.isfinite(phi_np) if alive_np is None else (
            np.isfinite(phi_np) | ~alive_np
        )
        primed = bool(finite.all())
    else:
        primed = False
    if not primed:
        rows = kernels.sssp_rows(centers, data=base_data)
        if phi_np is None:
            _extract_unrestricted(snap, chosen, centers, rows)
        else:
            _extract_restricted(snap, chosen, centers, rows, phi_np, phi_np, False)
        return
    _indptr, nbr, wt, _eid, _deg = snap.half_arrays_np()
    h_src = kernels.half_sources()
    phi0 = np.where(np.isfinite(phi_np), phi_np, 0.0) if alive_np is not None else phi_np
    raw = wt if base_data is None else base_data
    data = (raw + phi0[h_src]) - phi0[nbr]
    radii = phi_np[centers]
    by_radius = sorted(range(len(centers)), key=lambda k: (radii[k], k))
    for lo in range(0, len(by_radius), _CHUNK):
        batch = [centers[k] for k in by_radius[lo : lo + _CHUNK]]
        limit = float(phi_np[batch].max())
        rows = kernels.sssp_rows(batch, limit=limit, data=data)
        _extract_restricted(snap, chosen, batch, rows, phi_np, phi0, True)


def _plateau_fixup_idx(
    snap, chosen: Set[int], center: int, dist_row, phi_true, phi_prime, primed, rest
) -> None:
    """Index-space twin of the dict path's plateau sweep (same order)."""
    indptr, nbr, wt, eid = snap.indptr, snap.nbr, snap.wt, snap.eid
    if primed:
        cut = phi_true[center]
        member = lambda u: dist_row[u] < cut  # noqa: E731
    elif phi_true is not None:
        member = lambda u: dist_row[u] < phi_true[u]  # noqa: E731
    else:
        member = lambda u: dist_row[u] != INF  # noqa: E731
    restset = set(rest)
    rest = sorted(rest, key=lambda v: (dist_row[v], v))
    progress = True
    while rest and progress:
        progress = False
        leftover = []
        for v in rest:
            dv = dist_row[v]
            pv = phi_prime[v] if primed else 0.0
            parent = -1
            parent_eid = -1
            for e in range(indptr[v], indptr[v + 1]):
                u = nbr[e]
                if u in restset or not member(u):
                    continue
                du = dist_row[u]
                if du != dv:
                    continue
                wp = (wt[e] + phi_prime[u]) - pv if primed else wt[e]
                if du + wp == dv and (parent < 0 or u < parent):
                    parent = u
                    parent_eid = eid[e]
            if parent >= 0:
                chosen.add(parent_eid)
                restset.discard(v)
                progress = True
            else:
                leftover.append(v)
        rest = leftover


def _thorup_zwick_csr(
    graph: BaseGraph, t: int, vertices: List[Vertex], levels: List[Set[Vertex]]
) -> BaseGraph:
    """CSR fast path: one snapshot, compiled level passes, edge-id union."""
    snap = snapshot(graph)
    index = snap.index
    kernels = snap.scipy_kernels()
    chosen: Set[int] = set()
    for i in range(t):
        phi_np = None
        if levels[i + 1]:
            sources = sorted(index[v] for v in levels[i + 1])
            phi_np = kernels.multi_source(sources)
        centers = [index[w] for w in _level_centers(vertices, levels, i)]
        if not centers:
            continue
        _level_tree_eids_scipy(snap, kernels, chosen, centers, phi_np)
    return snap.materialize_edge_ids(sorted(chosen))


def thorup_zwick_spanner(
    graph: BaseGraph,
    t: int,
    seed: RandomLike = None,
    sample_probability: Optional[float] = None,
    *,
    method: str = "auto",
) -> BaseGraph:
    """Build a Thorup–Zwick ``(2t - 1)``-spanner.

    Parameters
    ----------
    graph:
        Undirected weighted graph.
    t:
        Hierarchy depth; the stretch is ``2t - 1`` and the expected size is
        ``O(t · n^{1+1/t})``.
    seed:
        Randomness for the level sampling.
    sample_probability:
        Override the per-level survival probability (default ``n^{-1/t}``).
    method:
        ``"auto"`` (default), ``"csr"``, or ``"dict"`` — see
        :func:`repro.graph.csr.resolve_method`. Both paths produce the
        same spanner for a fixed seed. Directed graphs and environments
        without the compiled kernels always use the dict path.
    """
    if t < 1:
        raise InvalidStretch(f"hierarchy depth t must be >= 1, got {t}")
    # TZ's compiled path needs reverse traversal the directed snapshot
    # does not store: auto-dispatch runs digraphs on the dict path, and
    # an explicit method="csr" on a digraph raises instead of degrading.
    resolved = resolve_method(
        method, graph.num_vertices,
        directed=graph.directed, directed_csr=False,
    )
    rng = ensure_rng(seed)
    vertices = list(graph.vertices())
    if not vertices:
        return type(graph)()

    levels = sample_hierarchy(vertices, t, rng, sample_probability)
    if resolved == "csr":
        snap = snapshot(graph)
        if snap.scipy_kernels() is not None:
            return _thorup_zwick_csr(graph, t, vertices, levels)
    return _thorup_zwick_dict(graph, t, vertices, levels)


@register_algorithm(
    "thorup-zwick",
    summary="Thorup–Zwick (2t-1)-spanner (the CLPR09 building block)",
    stretch_domain="odd integers 2t-1 (3, 5, 7, ...)",
    weighted=True,
    directed=False,
    csr_path=True,
    stretch_kind="odd",
)
def _registry_build(graph: BaseGraph, spec, seed):
    """Spec adapter: ``SpannerSpec -> thorup_zwick_spanner``."""
    from ..spec import stretch_to_levels

    spanner = thorup_zwick_spanner(
        graph,
        stretch_to_levels(spec),
        seed=seed,
        sample_probability=spec.param("sample_probability"),
        method=spec.method,
    )
    return spanner, {}
