"""Thorup–Zwick (2t-1)-spanner via sampled vertex hierarchies.

The Chechik–Langberg–Peleg–Roditty fault-tolerant construction (the
baseline the paper improves on) is built around the Thorup–Zwick distance
oracle's cluster structure. We implement the spanner variant: sample a
hierarchy ``V = A_0 ⊇ A_1 ⊇ ... ⊇ A_t = ∅`` (each level keeps a vertex
with probability ``n^{-1/t}``), and for every center ``w ∈ A_i \\ A_{i+1}``
add the shortest-path tree of its *cluster*

    C(w) = { v : d(w, v) < d(A_{i+1}, v) }.

The union of these trees is a (2t-1)-spanner with expected size
``O(t · n^{1 + 1/t})`` [TZ05].
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Hashable, List, Optional, Set, Tuple

from ..errors import InvalidStretch
from ..graph.graph import BaseGraph
from ..rng import RandomLike, ensure_rng

Vertex = Hashable

INF = math.inf


def _multi_source_distances(
    graph: BaseGraph, sources: Set[Vertex]
) -> Dict[Vertex, float]:
    """Distance from each vertex to its nearest source (INF if none)."""
    dist: Dict[Vertex, float] = {}
    heap: List[Tuple[float, int, Vertex]] = []
    counter = 0
    for s in sources:
        heap.append((0.0, counter, s))
        counter += 1
    heapq.heapify(heap)
    while heap:
        d, _, v = heapq.heappop(heap)
        if v in dist:
            continue
        dist[v] = d
        items = graph.successor_items(v) if graph.directed else graph.neighbor_items(v)
        for u, w in items:
            if u not in dist:
                heapq.heappush(heap, (d + w, counter, u))
                counter += 1
    return dist


def _cluster_tree_edges(
    graph: BaseGraph, center: Vertex, barrier: Dict[Vertex, float]
) -> List[Tuple[Vertex, Vertex]]:
    """Shortest-path-tree edges of C(center) under the TZ barrier rule.

    Dijkstra from ``center`` restricted to vertices ``v`` with
    ``d(center, v) < barrier[v]`` (``barrier`` is the distance to the next
    hierarchy level). The classical hierarchy property guarantees the
    restriction is closed under shortest-path prefixes.
    """
    dist: Dict[Vertex, float] = {}
    parent: Dict[Vertex, Vertex] = {}
    best: Dict[Vertex, float] = {center: 0.0}
    heap: List[Tuple[float, int, Vertex]] = [(0.0, 0, center)]
    counter = 1
    edges: List[Tuple[Vertex, Vertex]] = []
    while heap:
        d, _, v = heapq.heappop(heap)
        if v in dist:
            continue
        dist[v] = d
        if v != center:
            edges.append((parent[v], v))
        items = graph.successor_items(v) if graph.directed else graph.neighbor_items(v)
        for u, w in items:
            if u in dist:
                continue
            nd = d + w
            if nd >= barrier.get(u, INF):
                continue
            if nd < best.get(u, INF):
                best[u] = nd
                parent[u] = v
                heapq.heappush(heap, (nd, counter, u))
                counter += 1
    return edges


def sample_hierarchy(
    vertices: List[Vertex], t: int, rng, sample_probability: Optional[float] = None
) -> List[Set[Vertex]]:
    """Sample the TZ hierarchy ``A_0 ⊇ ... ⊇ A_t = ∅``.

    ``sample_probability`` defaults to ``n^{-1/t}``. The top level is
    forced empty, per the TZ definition.
    """
    n = len(vertices)
    p = sample_probability if sample_probability is not None else n ** (-1.0 / t)
    levels: List[Set[Vertex]] = [set(vertices)]
    for _ in range(1, t):
        levels.append({v for v in levels[-1] if rng.random() < p})
    levels.append(set())
    return levels


def thorup_zwick_spanner(
    graph: BaseGraph,
    t: int,
    seed: RandomLike = None,
    sample_probability: Optional[float] = None,
) -> BaseGraph:
    """Build a Thorup–Zwick ``(2t - 1)``-spanner.

    Parameters
    ----------
    graph:
        Undirected weighted graph.
    t:
        Hierarchy depth; the stretch is ``2t - 1`` and the expected size is
        ``O(t · n^{1+1/t})``.
    seed:
        Randomness for the level sampling.
    sample_probability:
        Override the per-level survival probability (default ``n^{-1/t}``).
    """
    if t < 1:
        raise InvalidStretch(f"hierarchy depth t must be >= 1, got {t}")
    rng = ensure_rng(seed)
    vertices = list(graph.vertices())
    spanner = type(graph)()
    spanner.add_vertices(vertices)
    if not vertices:
        return spanner

    levels = sample_hierarchy(vertices, t, rng, sample_probability)
    # Distance to the next level, for every level i: the "barrier".
    for i in range(t):
        barrier = _multi_source_distances(graph, levels[i + 1]) if levels[i + 1] else {}
        centers = levels[i] - levels[i + 1]
        for w in centers:
            for a, b in _cluster_tree_edges(graph, w, barrier):
                spanner.add_edge(a, b, graph.weight(a, b))
    return spanner
