"""Thorup–Zwick approximate distance oracles [TZ05].

The spanner of :mod:`repro.spanners.thorup_zwick` is one artefact of the
TZ construction; the other is the queryable *oracle*: after
``O(t · n^{1+1/t})``-space preprocessing, any distance query is answered in
O(t) time within stretch ``2t - 1``. CLPR09 — the baseline the paper
improves on — is built around exactly this structure, so the reproduction
carries the full oracle, not just the spanner.

Construction (classical):

* sample ``V = A_0 ⊇ A_1 ⊇ ... ⊇ A_t = ∅`` with per-level probability
  ``n^{-1/t}``;
* for each vertex ``v`` and level ``i``, the *witness* ``p_i(v)`` is the
  nearest vertex of ``A_i`` (with its distance);
* the *bunch* ``B(v) = ∪_i { w ∈ A_i \\ A_{i+1} : d(w, v) < d(A_{i+1}, v) }``
  stores exact distances from ``v`` to selected landmarks.

Query(u, v): walk the levels, alternating sides — ``w = p_i(u)``; if
``w ∈ B(v)`` answer ``d(u, w) + d(w, v)``; otherwise swap ``u`` and ``v``
and move up a level. Termination at level ``t - 1`` is guaranteed because
``A_{t-1} ⊆ B(x)`` for every ``x``; the standard induction gives
``d(u, w) <= i · d(u, v)`` at level ``i``, hence stretch ``2t - 1``.

Execution paths mirror :mod:`repro.spanners.thorup_zwick`: the
``method="csr"`` path runs the witness passes on the labeled multi-source
Dijkstra kernel and the bunch (cluster) searches on the compiled
Johnson-primed limited SSSP, recovering original-space distances with the
same float expression on both paths — so a fixed seed yields identical
witnesses and identical bunch dictionaries either way, and the RNG is
consumed in host vertex order (reproducible across processes).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

from ..errors import InvalidStretch
from ..graph.csr import resolve_method, snapshot
from ..graph.graph import BaseGraph
from ..registry import register_algorithm
from ..rng import RandomLike, ensure_rng
from .thorup_zwick import (
    _CHUNK,
    _cluster_dists_dict,
    _level_centers,
    _multi_source_distances,
    _vertex_order,
    sample_hierarchy,
)

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on stripped images
    _np = None

Vertex = Hashable

INF = math.inf


@dataclass
class DistanceOracle:
    """A preprocessed TZ oracle; query with :meth:`query`."""

    t: int
    witnesses: List[Dict[Vertex, Tuple[Vertex, float]]]  # level -> v -> (p_i(v), d)
    bunches: Dict[Vertex, Dict[Vertex, float]]  # v -> {w: d(v, w)}

    @property
    def stretch(self) -> int:
        return 2 * self.t - 1

    def bunch_size(self, v: Vertex) -> int:
        """Number of landmarks stored for ``v`` (space accounting)."""
        return len(self.bunches[v])

    def total_size(self) -> int:
        """Total stored landmark entries (the O(t n^{1+1/t}) quantity)."""
        return sum(len(b) for b in self.bunches.values())

    def query(self, u: Vertex, v: Vertex) -> float:
        """Approximate ``d(u, v)`` within factor ``2t - 1``.

        The stretch guarantee is stated for connected (components of)
        graphs; ``inf`` is returned when the walk runs out of witnesses
        (which certifies disconnection for connected-level hierarchies).
        Returns 0.0 for ``u == v``.
        """
        if u == v:
            return 0.0
        # Invariant: w = p_i(u) and d_uw = d(u, w); at level 0, p_0(u) = u.
        w, d_uw = u, 0.0
        i = 0
        while w not in self.bunches[v]:
            i += 1
            if i >= self.t:
                return INF
            u, v = v, u
            entry = self.witnesses[i].get(u)
            if entry is None:
                return INF
            w, d_uw = entry
        return d_uw + self.bunches[v][w]


def _multi_source_witnesses(
    graph: BaseGraph, sources: Set[Vertex]
) -> Dict[Vertex, Tuple[Vertex, float]]:
    """For each vertex, its nearest source and the distance to it.

    Heap keys, source seeding order, and the strict-improvement owner
    update mirror :meth:`repro.graph.csr.CSRGraph.multi_source_dijkstra_idx`
    exactly, so the dict and CSR paths return identical witnesses.
    """
    order = _vertex_order(graph)
    out: Dict[Vertex, Tuple[Vertex, float]] = {}
    best: Dict[Vertex, float] = {}
    own: Dict[Vertex, Vertex] = {}
    heap: List[Tuple[float, int, Vertex]] = []
    for s in sorted(sources, key=order.__getitem__):
        best[s] = 0.0
        own[s] = s
        heap.append((0.0, order[s], s))
    heapq.heapify(heap)
    while heap:
        d, _, v = heapq.heappop(heap)
        if v in out:
            continue
        out[v] = (own[v], d)
        items = graph.successor_items(v) if graph.directed else graph.neighbor_items(v)
        for u, w in items:
            if u in out:
                continue
            nd = d + w
            if nd < best.get(u, INF):
                best[u] = nd
                own[u] = own[v]
                heapq.heappush(heap, (nd, order[u], u))
    return out


def _build_oracle_dict(
    graph: BaseGraph, t: int, vertices: List[Vertex], levels
) -> DistanceOracle:
    """Reference dict-of-dict preprocessing."""
    order = _vertex_order(graph)
    witnesses: List[Dict[Vertex, Tuple[Vertex, float]]] = [
        _multi_source_witnesses(graph, levels[i]) if levels[i] else {}
        for i in range(t)
    ]
    bunches: Dict[Vertex, Dict[Vertex, float]] = {v: {} for v in vertices}
    n = graph.num_vertices
    for i in range(t):
        phi = _multi_source_distances(graph, levels[i + 1]) if levels[i + 1] else None
        primed = phi is not None and len(phi) == n
        for w in _level_centers(vertices, levels, i):
            dist = _cluster_dists_dict(graph, order, w, phi, primed)
            if primed:
                pw = phi[w]
                for v, dv in dist.items():
                    bunches[v][w] = (dv - pw) + phi[v]
            else:
                for v, dv in dist.items():
                    bunches[v][w] = dv
    return DistanceOracle(t=t, witnesses=witnesses, bunches=bunches)


def _build_oracle_csr(
    graph: BaseGraph, t: int, vertices: List[Vertex], levels
) -> DistanceOracle:
    """CSR path: kernel witness passes + compiled batched bunch searches."""
    np = _np
    snap = snapshot(graph)
    kernels = snap.scipy_kernels()
    index = snap.index
    verts = snap.verts
    witnesses: List[Dict[Vertex, Tuple[Vertex, float]]] = []
    for i in range(t):
        if not levels[i]:
            witnesses.append({})
            continue
        sources = sorted(index[v] for v in levels[i])
        dist, owner = snap.multi_source_dijkstra_idx(sources)
        witnesses.append(
            {
                verts[j]: (verts[owner[j]], dist[j])
                for j in range(len(verts))
                if owner[j] >= 0
            }
        )
    bunches: Dict[Vertex, Dict[Vertex, float]] = {v: {} for v in vertices}
    _indptr, nbr, wt, _eid, _deg = snap.half_arrays_np()
    for i in range(t):
        phi_np = None
        if levels[i + 1]:
            phi_np = kernels.multi_source(sorted(index[v] for v in levels[i + 1]))
        centers = [index[w] for w in _level_centers(vertices, levels, i)]
        if not centers:
            continue
        primed = phi_np is not None and bool(np.isfinite(phi_np).all())
        if primed:
            h_src = kernels.half_sources()
            data = (wt + phi_np[h_src]) - phi_np[nbr]
            radii = phi_np[centers]
            by_radius = sorted(range(len(centers)), key=lambda k: (radii[k], k))
            batches = [
                [centers[k] for k in by_radius[lo : lo + _CHUNK]]
                for lo in range(0, len(by_radius), _CHUNK)
            ]
        else:
            data = None
            batches = [centers]
        for batch in batches:
            if primed:
                limit = float(phi_np[batch].max())
                rows = kernels.sssp_rows(batch, limit=limit, data=data)
            else:
                rows = kernels.sssp_rows(batch)
            for k, c in enumerate(batch):
                dist = rows[k]
                if primed:
                    members = dist < phi_np[c]
                elif phi_np is not None:
                    members = dist < phi_np
                else:
                    members = np.isfinite(dist)
                midx = np.nonzero(members)[0]
                if primed:
                    vals = (dist[midx] - phi_np[c]) + phi_np[midx]
                else:
                    vals = dist[midx]
                w = verts[c]
                for j, dv in zip(midx.tolist(), vals.tolist()):
                    bunches[verts[j]][w] = dv
    return DistanceOracle(t=t, witnesses=witnesses, bunches=bunches)


def build_distance_oracle(
    graph: BaseGraph,
    t: int,
    seed: RandomLike = None,
    sample_probability: Optional[float] = None,
    *,
    method: str = "auto",
) -> DistanceOracle:
    """Preprocess a TZ distance oracle of stretch ``2t - 1``.

    ``method`` follows :func:`repro.graph.csr.resolve_method`; both paths
    build identical oracles for a fixed seed (directed graphs and
    kernel-less environments always take the dict path).
    """
    if t < 1:
        raise InvalidStretch(f"hierarchy depth t must be >= 1, got {t}")
    rng = ensure_rng(seed)
    vertices = list(graph.vertices())
    levels = sample_hierarchy(vertices, t, rng, sample_probability)
    # The query walk needs the top nonempty level A_{t-1} to be nonempty
    # (every bunch contains all of it); TZ resample on failure — we apply
    # the equivalent fix of promoting one random vertex up the hierarchy.
    if vertices and not levels[t - 1]:
        pick = rng.choice(vertices)
        for i in range(1, t):
            levels[i].add(pick)
    # Same undirected-only compiled path as the TZ spanner: digraphs
    # auto-dispatch to dict, explicit method="csr" raises.
    resolved = resolve_method(
        method, graph.num_vertices,
        directed=graph.directed, directed_csr=False,
    )
    if resolved == "csr" and vertices:
        snap = snapshot(graph)
        if snap.scipy_kernels() is not None:
            return _build_oracle_csr(graph, t, vertices, levels)
    return _build_oracle_dict(graph, t, vertices, levels)


@register_algorithm(
    "tz-oracle",
    summary="Thorup–Zwick approximate distance oracle (stretch 2t-1 queries)",
    stretch_domain="odd integers 2t-1 (3, 5, 7, ...)",
    weighted=True,
    directed=False,
    csr_path=True,
    stretch_kind="odd",
)
def _registry_build(graph: BaseGraph, spec, seed):
    """Spec adapter: ``SpannerSpec -> build_distance_oracle``.

    The artifact is the :class:`DistanceOracle` itself (it has no single
    spanner graph); the report's ``size`` is the stored landmark count —
    the ``O(t n^{1+1/t})`` quantity of the TZ space bound.
    """
    from ..spec import stretch_to_levels

    oracle = build_distance_oracle(
        graph,
        stretch_to_levels(spec),
        seed=seed,
        sample_probability=spec.param("sample_probability"),
        method=spec.method,
    )
    stats = {
        "size": oracle.total_size(),
        "stretch": oracle.stretch,
        "max_bunch": max(
            (oracle.bunch_size(v) for v in oracle.bunches), default=0
        ),
    }
    return oracle, stats
