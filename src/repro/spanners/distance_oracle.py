"""Thorup–Zwick approximate distance oracles [TZ05].

The spanner of :mod:`repro.spanners.thorup_zwick` is one artefact of the
TZ construction; the other is the queryable *oracle*: after
``O(t · n^{1+1/t})``-space preprocessing, any distance query is answered in
O(t) time within stretch ``2t - 1``. CLPR09 — the baseline the paper
improves on — is built around exactly this structure, so the reproduction
carries the full oracle, not just the spanner.

Construction (classical):

* sample ``V = A_0 ⊇ A_1 ⊇ ... ⊇ A_t = ∅`` with per-level probability
  ``n^{-1/t}``;
* for each vertex ``v`` and level ``i``, the *witness* ``p_i(v)`` is the
  nearest vertex of ``A_i`` (with its distance);
* the *bunch* ``B(v) = ∪_i { w ∈ A_i \\ A_{i+1} : d(w, v) < d(A_{i+1}, v) }``
  stores exact distances from ``v`` to selected landmarks.

Query(u, v): walk the levels, alternating sides — ``w = p_i(u)``; if
``w ∈ B(v)`` answer ``d(u, w) + d(w, v)``; otherwise swap ``u`` and ``v``
and move up a level. Termination at level ``t - 1`` is guaranteed because
``A_{t-1} ⊆ B(x)`` for every ``x``; the standard induction gives
``d(u, w) <= i · d(u, v)`` at level ``i``, hence stretch ``2t - 1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

from ..errors import InvalidStretch
from ..graph.graph import BaseGraph
from ..rng import RandomLike, ensure_rng
from .thorup_zwick import _multi_source_distances, sample_hierarchy

Vertex = Hashable

INF = math.inf


def _cluster_distances(
    graph: BaseGraph, center: Vertex, barrier: Dict[Vertex, float]
) -> Dict[Vertex, float]:
    """Distances from ``center`` to its TZ cluster (truncated Dijkstra)."""
    import heapq

    dist: Dict[Vertex, float] = {}
    heap: List[Tuple[float, int, Vertex]] = [(0.0, 0, center)]
    counter = 1
    while heap:
        d, _, v = heapq.heappop(heap)
        if v in dist:
            continue
        dist[v] = d
        items = (
            graph.successor_items(v) if graph.directed else graph.neighbor_items(v)
        )
        for u, w in items:
            if u in dist:
                continue
            nd = d + w
            if nd >= barrier.get(u, INF):
                continue
            heapq.heappush(heap, (nd, counter, u))
            counter += 1
    return dist


@dataclass
class DistanceOracle:
    """A preprocessed TZ oracle; query with :meth:`query`."""

    t: int
    witnesses: List[Dict[Vertex, Tuple[Vertex, float]]]  # level -> v -> (p_i(v), d)
    bunches: Dict[Vertex, Dict[Vertex, float]]  # v -> {w: d(v, w)}

    @property
    def stretch(self) -> int:
        return 2 * self.t - 1

    def bunch_size(self, v: Vertex) -> int:
        """Number of landmarks stored for ``v`` (space accounting)."""
        return len(self.bunches[v])

    def total_size(self) -> int:
        """Total stored landmark entries (the O(t n^{1+1/t}) quantity)."""
        return sum(len(b) for b in self.bunches.values())

    def query(self, u: Vertex, v: Vertex) -> float:
        """Approximate ``d(u, v)`` within factor ``2t - 1``.

        The stretch guarantee is stated for connected (components of)
        graphs; ``inf`` is returned when the walk runs out of witnesses
        (which certifies disconnection for connected-level hierarchies).
        Returns 0.0 for ``u == v``.
        """
        if u == v:
            return 0.0
        # Invariant: w = p_i(u) and d_uw = d(u, w); at level 0, p_0(u) = u.
        w, d_uw = u, 0.0
        i = 0
        while w not in self.bunches[v]:
            i += 1
            if i >= self.t:
                return INF
            u, v = v, u
            entry = self.witnesses[i].get(u)
            if entry is None:
                return INF
            w, d_uw = entry
        return d_uw + self.bunches[v][w]


def build_distance_oracle(
    graph: BaseGraph,
    t: int,
    seed: RandomLike = None,
    sample_probability: Optional[float] = None,
) -> DistanceOracle:
    """Preprocess a TZ distance oracle of stretch ``2t - 1``."""
    if t < 1:
        raise InvalidStretch(f"hierarchy depth t must be >= 1, got {t}")
    rng = ensure_rng(seed)
    vertices = list(graph.vertices())
    levels = sample_hierarchy(vertices, t, rng, sample_probability)
    # The query walk needs the top nonempty level A_{t-1} to be nonempty
    # (every bunch contains all of it); TZ resample on failure — we apply
    # the equivalent fix of promoting one random vertex up the hierarchy.
    if vertices and not levels[t - 1]:
        pick = rng.choice(vertices)
        for i in range(1, t):
            levels[i].add(pick)

    witnesses: List[Dict[Vertex, Tuple[Vertex, float]]] = [
        _multi_source_witnesses(graph, levels[i]) if levels[i] else {}
        for i in range(t)
    ]

    bunches: Dict[Vertex, Dict[Vertex, float]] = {v: {} for v in vertices}
    for i in range(t):
        next_dist = (
            _multi_source_distances(graph, levels[i + 1]) if levels[i + 1] else {}
        )
        for w in levels[i] - levels[i + 1]:
            cluster = _cluster_distances(graph, w, next_dist)
            for v, d in cluster.items():
                bunches[v][w] = d
    return DistanceOracle(t=t, witnesses=witnesses, bunches=bunches)


def _multi_source_witnesses(
    graph: BaseGraph, sources: Set[Vertex]
) -> Dict[Vertex, Tuple[Vertex, float]]:
    """For each vertex, its nearest source and the distance to it."""
    import heapq

    out: Dict[Vertex, Tuple[Vertex, float]] = {}
    heap: List[Tuple[float, int, Vertex, Vertex]] = []
    counter = 0
    for s in sources:
        heap.append((0.0, counter, s, s))
        counter += 1
    heapq.heapify(heap)
    while heap:
        d, _, v, source = heapq.heappop(heap)
        if v in out:
            continue
        out[v] = (source, d)
        items = (
            graph.successor_items(v) if graph.directed else graph.neighbor_items(v)
        )
        for u, w in items:
            if u not in out:
                heapq.heappush(heap, (d + w, counter, u, source))
                counter += 1
    return out
