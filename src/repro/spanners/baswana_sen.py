"""Baswana–Sen randomized (2k-1)-spanner via iterated clustering.

The algorithm runs ``k - 1`` clustering phases followed by a joining phase
and produces a ``(2k-1)``-spanner of expected size ``O(k · n^{1+1/k})`` on
weighted undirected graphs. Unlike the greedy spanner it makes only *local*
decisions (each vertex looks at its incident edges and the cluster labels
of its neighbours), which is why Section 2's distributed corollary can use
a clustering spanner as its base construction; the LOCAL-model version in
:mod:`repro.distributed.local_spanner` mirrors this code phase by phase.

Implementation follows Baswana & Sen, "A simple and linear time randomized
algorithm for computing sparse spanners in weighted graphs" (RSA 2007),
in its *simultaneous-rounds* form: within a phase every vertex decides
from the phase-start edge set and cluster labels, and all resulting edge
discards are applied together at the end of the phase — exactly the
semantics of the distributed version, and the form in which a phase is
one batched array computation.

Execution paths (dispatch rule: :func:`repro.graph.csr.resolve_method`):

* ``method="csr"`` runs each phase as whole-array passes over the
  half-edge CSR arrays: a scatter-min into a dense
  ``(vertex × surviving-cluster)`` buffer finds every per-(vertex,
  cluster) lightest edge (the first, all-singleton phase needs only
  per-slice reductions), grouped min-reductions pick each vertex's join,
  and buys/discards are boolean-mask writes into one aliveness array;
* ``method="dict"`` is the reference dict-of-dict implementation (a
  pruned ``{v: {u: w}}`` working edge map).

Both paths consume the RNG stream identically — one Bernoulli draw per
surviving cluster center, in host vertex order — and break every tie
canonically: the lightest edge into a cluster prefers the smaller-order
endpoint, and the joined cluster minimizes ``(weight, center order)``.
A fixed seed therefore yields the same spanner edge set on either path
(property-tested), and runs are reproducible across processes regardless
of hash randomization.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

from ..errors import InvalidStretch
from ..graph.csr import resolve_method, snapshot
from ..graph.graph import Graph
from ..registry import register_algorithm
from ..rng import RandomLike, ensure_rng

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on stripped images
    _np = None

Vertex = Hashable

#: Above this many dense (vertex × cluster) buckets the scatter-min
#: grouping compacts the occupied packed keys instead, keeping phase
#: memory O(m) rather than O(n · surviving clusters).
_DENSE_BUCKET_CAP = 1 << 23


def _lightest_edges_per_cluster(
    edges: Dict[Vertex, Dict[Vertex, float]],
    v: Vertex,
    cluster_of: Dict[Vertex, Vertex],
    order: Dict[Vertex, int],
) -> Dict[Vertex, Tuple[Vertex, float]]:
    """For vertex ``v``, the lightest incident edge into each neighbouring cluster.

    Returns ``{cluster_center: (neighbor, weight)}`` over clustered
    neighbours of ``v`` (unclustered neighbours are ignored — their edges
    were already resolved in an earlier phase). Ties prefer the
    smaller-order neighbour, matching the CSR path.
    """
    best: Dict[Vertex, Tuple[Vertex, float]] = {}
    for u, w in edges[v].items():
        c = cluster_of.get(u)
        if c is None:
            continue
        cur = best.get(c)
        if cur is None or (w, order[u]) < (cur[1], order[cur[0]]):
            best[c] = (u, w)
    return best


def _baswana_sen_dict(graph: Graph, k: int, p: float, rng) -> Graph:
    """Reference dict-of-dict implementation (kept for equivalence tests)."""
    spanner = Graph()
    spanner.add_vertices(graph.vertices())
    vertices = list(graph.vertices())
    order = {v: i for i, v in enumerate(vertices)}

    # Working edge set, pruned at phase boundaries as edges are resolved.
    edges: Dict[Vertex, Dict[Vertex, float]] = {
        v: dict(graph.neighbor_items(v)) for v in vertices
    }

    def _apply_discards(pending: List[Tuple[Vertex, Set[Vertex]]], cluster_of) -> None:
        for v, kill in pending:
            for u2 in [u2 for u2 in edges[v] if cluster_of.get(u2) in kill]:
                edges[v].pop(u2, None)
                edges[u2].pop(v, None)

    # cluster_of[v] = center of v's cluster in the current clustering.
    cluster_of: Dict[Vertex, Vertex] = {v: v for v in vertices}

    for _phase in range(k - 1):
        present = {c for c in cluster_of.values()}
        sampled = set()
        for c in vertices:  # canonical order: host vertex order
            if c in present and rng.random() < p:
                sampled.add(c)
        new_cluster_of: Dict[Vertex, Vertex] = {}
        for v, c in cluster_of.items():
            if c in sampled:
                new_cluster_of[v] = c

        pending: List[Tuple[Vertex, Set[Vertex]]] = []
        for v in vertices:
            c0 = cluster_of.get(v)
            if c0 is None or c0 in sampled:
                continue
            best = _lightest_edges_per_cluster(edges, v, cluster_of, order)
            sampled_options = {c: e for c, e in best.items() if c in sampled}
            if sampled_options:
                # Join the nearest sampled cluster through its lightest
                # edge; ties prefer the smaller-order center.
                join_center, (join_nbr, join_w) = min(
                    sampled_options.items(),
                    key=lambda item: (item[1][1], order[item[0]]),
                )
                spanner.add_edge(v, join_nbr, join_w)
                new_cluster_of[v] = join_center
                kill = {join_center}
                # Buy one edge into every strictly-closer cluster and
                # resolve those edges; edges into clusters whose lightest
                # edge is >= the join edge survive to the next phase.
                for c, (u, w) in best.items():
                    if c != join_center and w < join_w:
                        spanner.add_edge(v, u, w)
                        kill.add(c)
                pending.append((v, kill))
            elif best:
                # No sampled neighbour: buy one lightest edge per cluster
                # and leave the clustering permanently.
                for _c, (u, w) in best.items():
                    spanner.add_edge(v, u, w)
                pending.append((v, set(best)))
        _apply_discards(pending, cluster_of)
        cluster_of = new_cluster_of

    # Final joining phase: every vertex buys its lightest edge into each
    # surviving cluster it touches.
    pending = []
    for v in vertices:
        best = _lightest_edges_per_cluster(edges, v, cluster_of, order)
        if not best:
            continue
        for _c, (u, w) in best.items():
            spanner.add_edge(v, u, w)
        pending.append((v, set(best)))
    _apply_discards(pending, cluster_of)
    return spanner


def _group_reduce(np, values, head_pos, counts, neutral):
    """Min of ``values`` per contiguous group, expanded back per element."""
    gmin = np.minimum.reduceat(values, head_pos)
    return gmin, np.repeat(gmin, counts)


def _baswana_sen_csr(graph: Graph, k: int, p: float, rng) -> Graph:
    """CSR fast path: one aliveness mask + whole-array phases.

    Phase 0 runs entirely in slice space (singleton clusters); later
    phases group the alive clustered half-edges per (vertex, cluster)
    with a scatter-min into a dense compact-label buffer, pick each
    vertex's join with grouped min-reductions, and apply every
    buy/discard with boolean masks. No per-edge python. Output is pinned
    identical to the dict path.
    """
    np = _np
    snap = snapshot(graph)
    n = snap.num_vertices
    m = snap.num_edges
    indptr, nbr, wt, eid, deg = snap.half_arrays_np()
    h_src = np.repeat(np.arange(n, dtype=np.int32), deg)
    alive = np.ones(m, dtype=bool)
    cluster = np.arange(n, dtype=np.int32)
    chosen = np.zeros(m, dtype=bool)
    n64 = np.int64(n)

    # ``reduceat`` cannot express empty slices (a trailing one even
    # raises), so the per-vertex reductions run over the nonzero-degree
    # starts — a zero-width slice occupies no elements, so dropping its
    # start leaves every other segment unchanged — and isolated vertices
    # get the neutral value explicitly.
    zero_deg = deg == 0
    any_zero_deg = bool(zero_deg.any())
    nz_starts = indptr[:-1][~zero_deg] if any_zero_deg else indptr[:-1]
    has_edges = len(nz_starts) > 0

    def _per_vertex_min(values, neutral, dtype):
        out = np.full(n, neutral, dtype=dtype)
        if has_edges:
            out[~zero_deg] = np.minimum.reduceat(values, nz_starts)
        return out

    def run_phase0(sampled):
        """The first clustering round, fully in slice space.

        Every cluster is a single vertex and every edge is alive, so the
        per-(vertex, cluster) structure *is* the CSR slice structure:
        each vertex's join choice is one masked ``reduceat`` over its
        half-edge slice, and the bought set is a weight-threshold mask.
        Returns (joined vertices, joined centers).
        """
        s_nbr = sampled[nbr]
        key = np.where(s_nbr, wt, _np.inf)
        jw = _per_vertex_min(key, _np.inf, np.float64)
        jw_rep = np.repeat(jw, deg)
        jtie = s_nbr & (key == jw_rep)
        ju = _per_vertex_min(np.where(jtie, nbr, np.int32(n)), n, np.int32)
        join_half = jtie & (nbr == np.repeat(ju, deg))
        proc_rep = np.repeat(~sampled, deg)
        bought = proc_rep & ((wt < jw_rep) | join_half)
        e_sel = eid[bought]
        chosen[e_sel] = True
        alive[e_sel] = False
        has_join = ~sampled & np.isfinite(jw)
        join_v = np.nonzero(has_join)[0].astype(np.int32)
        return join_v, ju[has_join]

    def run_phase(sampled, process):
        """One round: decisions from phase-start state, batched discards.

        ``sampled`` is None for the final joining phase (buy into every
        neighbouring cluster). Grouping is a scatter-min into a dense
        ``(vertex × surviving-cluster)`` buffer — clusters thin out
        geometrically, so the buffer shrinks phase over phase and nothing
        is ever sorted. Returns (joined vertices, joined centers).
        """
        # Compact the surviving cluster centers to labels 0..nc-1; slot
        # n of the lookup serves cluster label -1 (fancy index -1 wraps
        # to it), so no branching pass is needed.
        present = np.unique(cluster[cluster >= 0])
        nc = len(present)
        if nc == 0:
            return None, None
        label = np.full(n + 1, -1, dtype=np.int32)
        label[present] = np.arange(nc, dtype=np.int32)
        c_nbr = label[cluster][nbr]
        # Invalid half-edges (dead, unclustered neighbour, inactive
        # source) all pack into one sentinel bucket instead of being
        # compressed out — cheaper than a nonzero + four gathers.
        valid = alive[eid]
        valid &= c_nbr >= 0
        if process is not None:
            valid &= np.repeat(process, deg)
        sentinel_pack = np.int64(n) * np.int64(nc)
        pack = np.where(
            valid, h_src.astype(np.int64) * np.int64(nc) + c_nbr, sentinel_pack
        )
        # Canonical lightest edge per (vertex, cluster): scatter-min the
        # weight, then the neighbour among weight ties; the
        # (vertex, cluster, neighbour) triple is unique, so the edge id
        # follows by plain assignment. The sentinel bucket keeps inf /
        # garbage values that no later step reads. Buckets are the dense
        # pack values while ``n·nc`` stays small (it shrinks with the
        # surviving clusters); past the cap, compact the occupied packs
        # instead so memory stays O(m) — the dict path's bound.
        if n * nc + 1 <= _DENSE_BUCKET_CAP:
            buckets = pack
            nbuckets = n * nc + 1
            pack_of_bucket = None
        else:
            pack_of_bucket, buckets = np.unique(pack, return_inverse=True)
            nbuckets = len(pack_of_bucket)
        buf_w = np.full(nbuckets, _np.inf)
        np.minimum.at(buf_w, buckets, wt)
        tie = wt == buf_w[buckets]
        buf_u = np.full(nbuckets, np.int32(n), dtype=np.int32)
        np.minimum.at(buf_u, buckets[tie], nbr[tie])
        exact = tie.copy()
        exact[tie] = nbr[tie] == buf_u[buckets[tie]]
        buf_e = np.empty(nbuckets, dtype=np.int32)
        buf_e[buckets[exact]] = eid[exact]
        if pack_of_bucket is None:
            buf_w[sentinel_pack] = _np.inf
            gid = np.nonzero(np.isfinite(buf_w[:-1]))[0]
            gpack = gid
        else:
            occupied = np.isfinite(buf_w) & (pack_of_bucket != sentinel_pack)
            gid = np.nonzero(occupied)[0]
            gpack = pack_of_bucket[gid]
        g_src = (gpack // nc).astype(np.int32)
        g_clu = present[gpack % nc]
        g_w = buf_w[gid]
        g_eid = buf_e[gid]
        if sampled is None:
            bought = np.ones(len(g_src), dtype=bool)
            join_v = join_c = None
        else:
            # Vertex-level grouped min over this vertex's sampled
            # clusters: join weight first, then the smaller center.
            # Groups are vertex-major by construction.
            vheads = np.ones(len(g_src), dtype=bool)
            vheads[1:] = g_src[1:] != g_src[:-1]
            vhead_pos = np.nonzero(vheads)[0]
            vcounts = np.diff(np.append(vhead_pos, len(g_src)))
            s_ok = sampled[g_clu]
            jw_key = np.where(s_ok, g_w, _np.inf)
            _jw, x_jw = _group_reduce(np, jw_key, vhead_pos, vcounts, None)
            jtie = s_ok & (g_w == x_jw)
            jc_key = np.where(jtie, g_clu, n64)
            _jc, x_jc = _group_reduce(np, jc_key, vhead_pos, vcounts, None)
            has_join = np.isfinite(x_jw)
            bought = ~has_join | (g_clu == x_jc) | (g_w < x_jw)
            joined = has_join & (g_clu == x_jc)
            join_v = g_src[joined]
            join_c = g_clu[joined]
        chosen[g_eid[bought]] = True
        kill_flat = np.zeros(nbuckets, dtype=bool)
        kill_flat[gid[bought]] = True
        alive[eid[kill_flat[buckets]]] = False
        return join_v, join_c

    for _phase in range(k - 1):
        present = np.unique(cluster[cluster >= 0]).tolist()
        sampled = np.zeros(n, dtype=bool)
        for c in present:
            if rng.random() < p:
                sampled[c] = True
        if _phase == 0:
            join_v, join_c = run_phase0(sampled)
        else:
            process = (cluster >= 0) & ~sampled[np.maximum(cluster, 0)]
            join_v, join_c = run_phase(sampled, process)
        new_cluster = np.where(
            (cluster >= 0) & sampled[np.maximum(cluster, 0)], cluster, np.int32(-1)
        )
        if join_v is not None and len(join_v):
            new_cluster[join_v] = join_c
        cluster = new_cluster

    run_phase(None, None)
    return snap.materialize_edge_ids(np.nonzero(chosen)[0].tolist())


def baswana_sen_spanner(
    graph: Graph,
    k: int,
    seed: RandomLike = None,
    sample_probability: Optional[float] = None,
    *,
    method: str = "auto",
) -> Graph:
    """Build a Baswana–Sen ``(2k - 1)``-spanner of an undirected graph.

    Parameters
    ----------
    graph:
        Undirected weighted graph.
    k:
        Number of levels; stretch is ``2k - 1`` (so ``k = 2`` gives a
        3-spanner). Must be >= 1; ``k = 1`` returns a copy of the graph.
    seed:
        Randomness for cluster sampling.
    sample_probability:
        Per-phase cluster survival probability (default ``n^{-1/k}``).
    method:
        ``"auto"`` (default), ``"csr"``, or ``"dict"`` — see
        :func:`repro.graph.csr.resolve_method`. Both paths produce the
        same spanner for a fixed seed; without NumPy the dict path always
        runs.
    """
    if graph.directed:
        raise InvalidStretch("Baswana-Sen requires an undirected graph")
    if k < 1:
        raise InvalidStretch(f"k must be >= 1, got {k}")
    resolved = resolve_method(method, graph.num_vertices)
    if k == 1:
        return graph.copy()
    rng = ensure_rng(seed)
    n = graph.num_vertices
    if n == 0:
        return Graph()
    p = sample_probability if sample_probability is not None else n ** (-1.0 / k)
    if resolved == "csr" and _np is not None:
        return _baswana_sen_csr(graph, k, p, rng)
    return _baswana_sen_dict(graph, k, p, rng)


@register_algorithm(
    "baswana-sen",
    summary="Baswana–Sen randomized (2t-1)-spanner (the distributed base)",
    stretch_domain="odd integers 2t-1 (3, 5, 7, ...)",
    weighted=True,
    directed=False,
    csr_path=True,
    stretch_kind="odd",
)
def _registry_build(graph: Graph, spec, seed):
    """Spec adapter: ``SpannerSpec -> baswana_sen_spanner``."""
    from ..spec import stretch_to_levels

    spanner = baswana_sen_spanner(
        graph,
        stretch_to_levels(spec),
        seed=seed,
        sample_probability=spec.param("sample_probability"),
        method=spec.method,
    )
    return spanner, {}
