"""Baswana–Sen randomized (2k-1)-spanner via iterated clustering.

The algorithm runs ``k - 1`` clustering phases followed by a joining phase
and produces a ``(2k-1)``-spanner of expected size ``O(k · n^{1+1/k})`` on
weighted undirected graphs. Unlike the greedy spanner it makes only *local*
decisions (each vertex looks at its incident edges and the cluster labels
of its neighbours), which is why Section 2's distributed corollary can use
a clustering spanner as its base construction; the LOCAL-model version in
:mod:`repro.distributed.local_spanner` mirrors this code phase by phase.

Implementation follows Baswana & Sen, "A simple and linear time randomized
algorithm for computing sparse spanners in weighted graphs" (RSA 2007).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Set, Tuple

from ..errors import InvalidStretch
from ..graph.graph import BaseGraph, Graph
from ..rng import RandomLike, ensure_rng

Vertex = Hashable


def _lightest_edges_per_cluster(
    edges: Dict[Vertex, Dict[Vertex, float]],
    v: Vertex,
    cluster_of: Dict[Vertex, Vertex],
) -> Dict[Vertex, Tuple[Vertex, float]]:
    """For vertex ``v``, the lightest incident edge into each neighbouring cluster.

    Returns ``{cluster_center: (neighbor, weight)}`` over clustered
    neighbours of ``v`` (unclustered neighbours are ignored — their edges
    were already resolved in an earlier phase).
    """
    best: Dict[Vertex, Tuple[Vertex, float]] = {}
    for u, w in edges[v].items():
        c = cluster_of.get(u)
        if c is None:
            continue
        if c not in best or w < best[c][1]:
            best[c] = (u, w)
    return best


def baswana_sen_spanner(
    graph: Graph,
    k: int,
    seed: RandomLike = None,
    sample_probability: Optional[float] = None,
) -> Graph:
    """Build a Baswana–Sen ``(2k - 1)``-spanner of an undirected graph.

    Parameters
    ----------
    graph:
        Undirected weighted graph.
    k:
        Number of levels; stretch is ``2k - 1`` (so ``k = 2`` gives a
        3-spanner). Must be >= 1; ``k = 1`` returns a copy of the graph.
    seed:
        Randomness for cluster sampling.
    sample_probability:
        Per-phase cluster survival probability (default ``n^{-1/k}``).
    """
    if graph.directed:
        raise InvalidStretch("Baswana-Sen requires an undirected graph")
    if k < 1:
        raise InvalidStretch(f"k must be >= 1, got {k}")
    if k == 1:
        return graph.copy()
    rng = ensure_rng(seed)
    n = graph.num_vertices
    spanner = Graph()
    spanner.add_vertices(graph.vertices())
    if n == 0:
        return spanner
    p = sample_probability if sample_probability is not None else n ** (-1.0 / k)

    # Working edge set, pruned as edges are resolved (added or discarded).
    edges: Dict[Vertex, Dict[Vertex, float]] = {
        v: dict(graph.neighbor_items(v)) for v in graph.vertices()
    }

    def _discard(v: Vertex, u: Vertex) -> None:
        edges[v].pop(u, None)
        edges[u].pop(v, None)

    def _add_to_spanner(v: Vertex, u: Vertex, w: float) -> None:
        spanner.add_edge(v, u, w)

    # cluster_of[v] = center of v's cluster in the current clustering.
    cluster_of: Dict[Vertex, Vertex] = {v: v for v in graph.vertices()}

    for _phase in range(k - 1):
        centers = {c for c in cluster_of.values()}
        sampled = {c for c in centers if rng.random() < p}
        new_cluster_of: Dict[Vertex, Vertex] = {}

        # Vertices in sampled clusters stay put.
        for v, c in cluster_of.items():
            if c in sampled:
                new_cluster_of[v] = c

        for v in list(cluster_of):
            if cluster_of[v] in sampled:
                continue
            best = _lightest_edges_per_cluster(edges, v, cluster_of)
            sampled_options = {c: e for c, e in best.items() if c in sampled}
            if sampled_options:
                # Join the nearest sampled cluster through its lightest edge.
                join_center, (join_nbr, join_w) = min(
                    sampled_options.items(), key=lambda item: (item[1][1], str(item[0]))
                )
                _add_to_spanner(v, join_nbr, join_w)
                new_cluster_of[v] = join_center
                _discard(v, join_nbr)
                # Buy one edge into every strictly-closer cluster and
                # resolve those edges; edges into clusters whose lightest
                # edge is >= the join edge survive to the next phase.
                for c, (u, w) in best.items():
                    if c == join_center:
                        continue
                    if w < join_w:
                        _add_to_spanner(v, u, w)
                        for u2 in [
                            u2 for u2 in edges[v] if cluster_of.get(u2) == c
                        ]:
                            _discard(v, u2)
                # Also drop remaining edges into the joined cluster.
                for u2 in [
                    u2 for u2 in edges[v] if cluster_of.get(u2) == join_center
                ]:
                    _discard(v, u2)
            else:
                # No sampled neighbour: buy one lightest edge per cluster
                # and leave the clustering permanently.
                for c, (u, w) in best.items():
                    _add_to_spanner(v, u, w)
                    for u2 in [u2 for u2 in edges[v] if cluster_of.get(u2) == c]:
                        _discard(v, u2)
        cluster_of = new_cluster_of

    # Final joining phase: every vertex buys its lightest edge into each
    # surviving cluster it touches.
    for v in graph.vertices():
        best = _lightest_edges_per_cluster(edges, v, cluster_of)
        for _c, (u, w) in best.items():
            _add_to_spanner(v, u, w)
            for u2 in [u2 for u2 in edges[v] if cluster_of.get(u2) == _c]:
                _discard(v, u2)
    return spanner
