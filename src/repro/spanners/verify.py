"""Verification of (non-fault-tolerant) spanners.

As the paper notes after equation (1), it suffices to check the stretch
condition on the *edges* of the host graph: if every host edge's endpoints
stay within distance ``k * w`` in the spanner, every pair does (distort
each edge of a shortest path by at most ``k`` and the whole path is
distorted by at most ``k``). The exact verifier and the measured-stretch
routine both exploit this.
"""

from __future__ import annotations

import math
from typing import Hashable, List, Optional, Tuple

from ..graph.graph import BaseGraph
from ..graph.paths import dijkstra, distance_at_most

Vertex = Hashable


def is_spanner(spanner: BaseGraph, graph: BaseGraph, k: float) -> bool:
    """Check whether ``spanner`` is a k-spanner of ``graph``.

    Runs one bounded Dijkstra per host edge; exact (no sampling).
    """
    for u, v, w in graph.edges():
        if not spanner.has_vertex(u) or not spanner.has_vertex(v):
            return False
        if not distance_at_most(spanner, u, v, k * w):
            return False
    return True


def max_edge_stretch(spanner: BaseGraph, graph: BaseGraph) -> float:
    """The worst stretch over host edges: max over (u,v,w) of d_H(u,v)/w.

    Equals the true stretch of the spanner (see module docstring). Returns
    ``inf`` if some host edge's endpoints are disconnected in the spanner,
    and 0.0 for an edgeless host graph.
    """
    worst = 0.0
    cache = {}
    for u, v, w in graph.edges():
        if u not in cache:
            cache[u] = dijkstra(spanner, u)
        d = cache[u].get(v, math.inf)
        if w == 0:
            if d > 0:
                return math.inf
            continue
        worst = max(worst, d / w)
        if worst == math.inf:
            return worst
    return worst


def violating_edges(
    spanner: BaseGraph, graph: BaseGraph, k: float
) -> List[Tuple[Vertex, Vertex, float]]:
    """Return host edges whose stretch bound is violated by ``spanner``."""
    bad = []
    for u, v, w in graph.edges():
        if not distance_at_most(spanner, u, v, k * w):
            bad.append((u, v, w))
    return bad
