"""The greedy k-spanner of Althöfer, Das, Dobkin, Joseph, and Soares.

This is the "standard greedy spanner construction" the paper plugs into its
conversion theorem (Corollary 2.2). The algorithm is Kruskal-like:

    sort edges by nondecreasing weight;
    for each edge (u, v, w):
        if d_H(u, v) > k * w in the spanner built so far:
            add (u, v) to the spanner

The output is always a k-spanner, and for odd ``k`` its girth exceeds
``k + 1``, which by the Moore bound implies size ``O(n^{1 + 2/(k+1)})`` —
the ``f(n)`` that Theorem 2.1 consumes.
"""

from __future__ import annotations

from typing import Hashable, Optional

from ..errors import InvalidStretch
from ..graph.graph import BaseGraph
from ..graph.paths import distance_at_most

Vertex = Hashable


def greedy_spanner(graph: BaseGraph, k: float) -> BaseGraph:
    """Build a greedy ``k``-spanner of ``graph``.

    Parameters
    ----------
    graph:
        Undirected graph with nonnegative weights. (Directed graphs are
        accepted and handled arc-by-arc, though the classical size bound is
        stated for the undirected case.)
    k:
        Stretch bound, ``k >= 1``.

    Returns
    -------
    A spanning subgraph ``H`` with ``d_H(u, v) <= k * w`` for every edge
    ``(u, v, w)`` of ``graph`` — hence a k-spanner of ``graph``.
    """
    if k < 1:
        raise InvalidStretch(f"stretch must be >= 1, got {k}")
    spanner = type(graph)()
    spanner.add_vertices(graph.vertices())
    for u, v, w in sorted(graph.edges(), key=lambda e: e[2]):
        if not distance_at_most(spanner, u, v, k * w):
            spanner.add_edge(u, v, w)
    return spanner


def greedy_spanner_size_first(graph: BaseGraph, k: float, max_edges: int) -> BaseGraph:
    """Greedy spanner truncated at ``max_edges`` edges.

    Useful for ablations that trade stretch for size: the returned subgraph
    contains the ``max_edges`` greedily-chosen lightest necessary edges and
    is a valid k-spanner only if the budget was not exhausted.
    """
    if k < 1:
        raise InvalidStretch(f"stretch must be >= 1, got {k}")
    if max_edges < 0:
        raise ValueError(f"max_edges must be nonnegative, got {max_edges}")
    spanner = type(graph)()
    spanner.add_vertices(graph.vertices())
    for u, v, w in sorted(graph.edges(), key=lambda e: e[2]):
        if spanner.num_edges >= max_edges:
            break
        if not distance_at_most(spanner, u, v, k * w):
            spanner.add_edge(u, v, w)
    return spanner
