"""The greedy k-spanner of Althöfer, Das, Dobkin, Joseph, and Soares.

This is the "standard greedy spanner construction" the paper plugs into its
conversion theorem (Corollary 2.2). The algorithm is Kruskal-like:

    sort edges by nondecreasing weight;
    for each edge (u, v, w):
        if d_H(u, v) > k * w in the spanner built so far:
            add (u, v) to the spanner

The output is always a k-spanner, and for odd ``k`` its girth exceeds
``k + 1``, which by the Moore bound implies size ``O(n^{1 + 2/(k+1)})`` —
the ``f(n)`` that Theorem 2.1 consumes.

Implementation: edges are sorted once, vertices are mapped to integer
indices once, and the per-edge bounded distance query runs against a
mutable indexed adjacency (lists of ``(neighbour, weight)`` pairs) with
stamped distance arrays — no dict graph is built or hashed until the final
spanner is materialized. ``method="dict"`` forces the original
dict-of-dict implementation; the equivalence of the two paths is covered
by property tests.
"""

from __future__ import annotations

import heapq
from math import inf
from typing import Hashable, List, Optional, Tuple

from ..errors import InvalidStretch
from ..graph.graph import BaseGraph
from ..graph.paths import distance_at_most
from ..registry import register_algorithm

Vertex = Hashable

#: Relative slack applied to distance bounds for float safety; matches
#: :func:`repro.graph.paths.distance_at_most` exactly so the indexed and
#: dict paths make identical keep/skip decisions.
_EPS = 1e-12


class IndexedGreedyKernel:
    """Reusable state for running greedy spanners in index space.

    Holds the vertex↔index tables and the stamped scratch arrays; one
    instance can run many greedy passes over (subsets of) the same indexed
    edge list, which is what the Theorem 2.1 conversion loop needs — the
    ``α = Θ(r³ log n)`` iterations share a single indexing of the host.
    """

    __slots__ = ("n", "directed", "_dist_f", "_stamp_f", "_dist_b", "_stamp_b", "_gen")

    def __init__(self, n: int, directed: bool):
        self.n = n
        self.directed = directed
        self._dist_f: List[float] = [inf] * n
        self._stamp_f: List[int] = [0] * n
        self._dist_b: List[float] = [inf] * n
        self._stamp_b: List[int] = [0] * n
        self._gen = 0

    def _reachable_within(
        self,
        adj: List[List[Tuple[int, float]]],
        radj: List[List[Tuple[int, float]]],
        source: int,
        target: int,
        bound: float,
    ) -> bool:
        """True iff the partial spanner has d(source, target) <= bound.

        Bounded *bidirectional* Dijkstra: balls of radius ~bound/2 grow
        from both endpoints instead of one ball of radius bound, which is
        exponentially smaller on expander-like spanners. Generation-stamped
        arrays avoid O(n) clears between the m queries of one greedy pass.

        The boolean decision is exact. Any relaxation that lands on a
        vertex labeled by the opposite search certifies a real path of
        length ``d_f + d_b``; the first certificate <= bound returns True
        (labels are real path lengths, so no optimality is needed). For
        False, the scan only stops once ``top_f + top_b > bound``: if a
        path of length L <= bound existed, both searches reach their final
        labels on its midpoint before their frontier minima pass L, and
        whichever side labels it last performs the meeting check against
        the other side's already-final label — so True would have fired.
        """
        self._gen += 1
        gen = self._gen
        dist_f, stamp_f = self._dist_f, self._stamp_f
        dist_b, stamp_b = self._dist_b, self._stamp_b
        dist_f[source] = 0.0
        stamp_f[source] = gen
        dist_b[target] = 0.0
        stamp_b[target] = gen
        heap_f: List[Tuple[float, int]] = [(0.0, source)]
        heap_b: List[Tuple[float, int]] = [(0.0, target)]
        push = heapq.heappush
        pop = heapq.heappop
        while True:
            # Drop stale entries so the heap tops are true frontier minima.
            while heap_f and heap_f[0][0] > dist_f[heap_f[0][1]]:
                pop(heap_f)
            if not heap_f:
                return False  # forward ball exhausted without meeting
            while heap_b and heap_b[0][0] > dist_b[heap_b[0][1]]:
                pop(heap_b)
            if not heap_b:
                return False
            top_f = heap_f[0][0]
            top_b = heap_b[0][0]
            if top_f + top_b > bound:
                return False
            if top_f <= top_b:
                d, v = pop(heap_f)
                for u, w in adj[v]:
                    nd = d + w
                    if nd > bound:
                        continue
                    if stamp_b[u] == gen and nd + dist_b[u] <= bound:
                        return True
                    if stamp_f[u] != gen:
                        dist_f[u] = nd
                        stamp_f[u] = gen
                        push(heap_f, (nd, u))
                    elif nd < dist_f[u]:
                        dist_f[u] = nd
                        push(heap_f, (nd, u))
            else:
                d, v = pop(heap_b)
                for u, w in radj[v]:
                    nd = d + w
                    if nd > bound:
                        continue
                    if stamp_f[u] == gen and nd + dist_f[u] <= bound:
                        return True
                    if stamp_b[u] != gen:
                        dist_b[u] = nd
                        stamp_b[u] = gen
                        push(heap_b, (nd, u))
                    elif nd < dist_b[u]:
                        dist_b[u] = nd
                        push(heap_b, (nd, u))

    def run(
        self,
        edges: List[Tuple[int, int, float]],
        k: float,
        max_edges: Optional[int] = None,
    ) -> List[Tuple[int, int, float]]:
        """Greedy pass over ``edges`` (already sorted by weight).

        Returns the chosen edges in pick order. ``max_edges`` truncates the
        output (the size-first ablation).
        """
        edge_u = [e[0] for e in edges]
        edge_v = [e[1] for e in edges]
        edge_w = [e[2] for e in edges]
        chosen = self.run_edge_ids(
            range(len(edges)), edge_u, edge_v, edge_w, k, max_edges=max_edges
        )
        return [edges[e] for e in chosen]

    def run_edge_ids(
        self,
        edge_ids,
        edge_u: List[int],
        edge_v: List[int],
        edge_w: List[float],
        k: float,
        max_edges: Optional[int] = None,
    ) -> List[int]:
        """Greedy pass addressing edges by id into parallel endpoint arrays.

        ``edge_ids`` must come pre-sorted by weight. This is the conversion
        loop's entry point: survivor subsamples are just id sequences, so no
        per-iteration edge tuples are materialized.
        """
        adj: List[List[Tuple[int, float]]] = [[] for _ in range(self.n)]
        radj = [[] for _ in range(self.n)] if self.directed else adj
        chosen: List[int] = []
        directed = self.directed
        for e in edge_ids:
            if max_edges is not None and len(chosen) >= max_edges:
                break
            ui = edge_u[e]
            vi = edge_v[e]
            w = edge_w[e]
            # An endpoint with no spanner edges yet is unreachable: skip
            # the query.
            if (
                not adj[ui]
                or not radj[vi]
                or not self._reachable_within(
                    adj, radj, ui, vi, (k * w) * (1 + _EPS)
                )
            ):
                chosen.append(e)
                adj[ui].append((vi, w))
                if directed:
                    radj[vi].append((ui, w))
                else:
                    adj[vi].append((ui, w))
        return chosen


def make_greedy_kernel(n: int, directed: bool, resolved: str):
    """The greedy kernel for a resolved method: compiled or interpreted.

    ``resolved`` is the output of :func:`_check_method` —
    ``"compiled"`` returns a
    :class:`repro.compiled.greedy.CompiledGreedyKernel` (raising
    :class:`repro.errors.CompiledBackendUnavailable` when the backend
    cannot load), anything else the interpreted
    :class:`IndexedGreedyKernel`. Both expose the same
    ``run``/``run_edge_ids`` surface and produce identical outputs.
    """
    if resolved == "compiled":
        from ..compiled.greedy import CompiledGreedyKernel

        return CompiledGreedyKernel(n, directed)
    return IndexedGreedyKernel(n, directed)


def _greedy_indexed(
    graph: BaseGraph, k: float, max_edges: Optional[int], resolved: str = "indexed"
) -> BaseGraph:
    verts = list(graph.vertices())
    index = {v: i for i, v in enumerate(verts)}
    edges = [(index[u], index[v], w) for u, v, w in graph.edges()]
    edges.sort(key=lambda e: e[2])  # stable: ties keep edges() order
    kernel = make_greedy_kernel(len(verts), graph.directed, resolved)
    chosen = kernel.run(edges, k, max_edges=max_edges)
    spanner = type(graph)()
    spanner.add_vertices(verts)
    for ui, vi, w in chosen:
        spanner.add_edge(verts[ui], verts[vi], w)
    return spanner


def _check_method(method: str) -> str:
    """Normalize the shared ``method`` kwarg for the greedy entry points.

    Accepts the unified ``"auto"|"csr"|"dict"|"compiled"`` vocabulary of
    :func:`repro.graph.csr.resolve_method` plus the historical
    ``"indexed"`` alias. The greedy kernel has no snapshot overhead (it
    indexes once and never builds a CSR), so dispatch ignores graph
    size: ``csr`` and ``indexed`` resolve to the indexed kernel, and
    ``auto`` resolves to the compiled kernel whenever the optional C
    backend (:mod:`repro.compiled`) is available — falling back to the
    indexed kernel silently when it is not. An explicit ``"compiled"``
    raises :class:`repro.errors.CompiledBackendUnavailable` instead of
    downgrading.
    """
    if method in ("indexed", "csr"):
        return "indexed"
    if method == "auto":
        from ..compiled import compiled_available

        return "compiled" if compiled_available() else "indexed"
    if method == "compiled":
        from ..compiled import require_compiled

        require_compiled()
        return "compiled"
    if method == "dict":
        return "dict"
    raise ValueError(
        f"method must be 'auto', 'csr', 'indexed', 'dict', or "
        f"'compiled', got {method!r}"
    )


def _greedy_dict(graph: BaseGraph, k: float, max_edges: Optional[int]) -> BaseGraph:
    """Reference dict-of-dict implementation (kept for equivalence tests)."""
    spanner = type(graph)()
    spanner.add_vertices(graph.vertices())
    for u, v, w in sorted(graph.edges(), key=lambda e: e[2]):
        if max_edges is not None and spanner.num_edges >= max_edges:
            break
        if not distance_at_most(spanner, u, v, k * w):
            spanner.add_edge(u, v, w)
    return spanner


def greedy_spanner(graph: BaseGraph, k: float, *, method: str = "indexed") -> BaseGraph:
    """Build a greedy ``k``-spanner of ``graph``.

    Parameters
    ----------
    graph:
        Undirected graph with nonnegative weights. (Directed graphs are
        accepted and handled arc-by-arc, though the classical size bound is
        stated for the undirected case.)
    k:
        Stretch bound, ``k >= 1``.
    method:
        ``"indexed"`` (default; ``"csr"`` is an accepted alias — see
        :func:`repro.graph.csr.resolve_method` for the shared
        vocabulary) runs on the flat-array kernel; ``"auto"`` upgrades
        to the compiled C kernel (``"compiled"`` requests it
        explicitly, raising when the backend is unavailable) whenever
        :mod:`repro.compiled` loads, and ``"dict"`` forces the original
        dict-graph implementation. All tiers produce the same spanner:
        the compiled kernel replays the indexed kernel's float
        operations exactly, edge ties are broken by the same stable
        sort, and the indexed/dict keep/skip decisions agree — exactly on
        unit/integer weights, and up to float summation order otherwise
        (the bidirectional kernel sums path halves separately, so a path
        length within an ulp of the ``k·w`` slack boundary could in
        principle — measure zero for continuous random weights — round
        differently).

    Returns
    -------
    A spanning subgraph ``H`` with ``d_H(u, v) <= k * w`` for every edge
    ``(u, v, w)`` of ``graph`` — hence a k-spanner of ``graph``.
    """
    if k < 1:
        raise InvalidStretch(f"stretch must be >= 1, got {k}")
    resolved = _check_method(method)
    if resolved == "dict":
        return _greedy_dict(graph, k, None)
    return _greedy_indexed(graph, k, None, resolved)


def greedy_spanner_size_first(
    graph: BaseGraph, k: float, max_edges: int, *, method: str = "indexed"
) -> BaseGraph:
    """Greedy spanner truncated at ``max_edges`` edges.

    Useful for ablations that trade stretch for size: the returned subgraph
    contains the ``max_edges`` greedily-chosen lightest necessary edges and
    is a valid k-spanner only if the budget was not exhausted.
    """
    if k < 1:
        raise InvalidStretch(f"stretch must be >= 1, got {k}")
    if max_edges < 0:
        raise ValueError(f"max_edges must be nonnegative, got {max_edges}")
    resolved = _check_method(method)
    if resolved == "dict":
        return _greedy_dict(graph, k, max_edges)
    return _greedy_indexed(graph, k, max_edges, resolved)


@register_algorithm(
    "greedy",
    summary="ADD+93 greedy k-spanner (the Corollary 2.2 base construction)",
    stretch_domain="any real k >= 1",
    weighted=True,
    directed=True,
    csr_path=True,
    compiled_path=True,
)
def _registry_build(graph: BaseGraph, spec, seed):
    """Spec adapter: ``SpannerSpec -> greedy_spanner`` (deterministic)."""
    max_edges = spec.param("max_edges")
    if max_edges is not None:
        spanner = greedy_spanner_size_first(
            graph, spec.stretch, max_edges, method=spec.method
        )
    else:
        spanner = greedy_spanner(graph, spec.stretch, method=spec.method)
    # Greedy has no snapshot to amortize, so its indexed (or compiled)
    # kernel runs at every size — report the true path, not the generic
    # size rule.
    return spanner, {"resolved_method": _check_method(spec.method)}
