"""Non-fault-tolerant spanner constructions and their size bounds.

These are the "generic spanner algorithms" that the paper's Theorem 2.1
conversion consumes, plus the verification helpers used throughout the
test suite and benchmarks.

Each constructor self-registers in :mod:`repro.registry` (``greedy``,
``baswana-sen``, ``thorup-zwick``, ``tz-oracle``), which is the single
source of truth for names, capability flags, and CSR-path coverage;
any of them can serve as the conversion's base via
``SpannerSpec(..., params={"base_algorithm": <name>})``.
"""

from .baswana_sen import baswana_sen_spanner
from .distance_oracle import DistanceOracle, build_distance_oracle
from .bounds import (
    baswana_sen_size_bound,
    clpr_ft_size_bound,
    conversion_iterations,
    conversion_iterations_light,
    conversion_size_bound,
    greedy_size_bound,
    moore_bound_edges,
    thorup_zwick_size_bound,
)
from .greedy import greedy_spanner, greedy_spanner_size_first
from .thorup_zwick import thorup_zwick_spanner
from .verify import is_spanner, max_edge_stretch, violating_edges

__all__ = [
    "DistanceOracle",
    "baswana_sen_size_bound",
    "baswana_sen_spanner",
    "build_distance_oracle",
    "clpr_ft_size_bound",
    "conversion_iterations",
    "conversion_iterations_light",
    "conversion_size_bound",
    "greedy_size_bound",
    "greedy_spanner",
    "greedy_spanner_size_first",
    "is_spanner",
    "max_edge_stretch",
    "moore_bound_edges",
    "thorup_zwick_size_bound",
    "thorup_zwick_spanner",
    "verify",
    "violating_edges",
]
