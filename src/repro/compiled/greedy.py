"""Compiled drop-in for :class:`repro.spanners.greedy.IndexedGreedyKernel`.

Same constructor, same ``run``/``run_edge_ids`` surface, same outputs:
the C kernel ports the bounded bidirectional Dijkstra operation-for-
operation (identical ``_EPS`` slack, identical relaxation arithmetic),
so the keep/skip decisions — and therefore the chosen edge-id lists —
are pinned identical to the python kernel. The Theorem 2.1 conversion
engine swaps this class in under ``method="compiled"`` and every masked
:class:`~repro.graph.csr.SurvivorView` iteration rides it for free,
because survivor subsamples are just pre-filtered id sequences.
"""

from __future__ import annotations

import ctypes
from typing import Dict, List, Optional, Tuple

import numpy as np

from . import require_compiled

_P_I64 = ctypes.POINTER(ctypes.c_int64)
_P_F64 = ctypes.POINTER(ctypes.c_double)


def _ptr_i64(arr: np.ndarray):
    return arr.ctypes.data_as(_P_I64)


def _ptr_f64(arr: np.ndarray):
    return arr.ctypes.data_as(_P_F64)


class CompiledGreedyKernel:
    """Reusable greedy-pass state backed by the compiled C kernel.

    Mirrors :class:`~repro.spanners.greedy.IndexedGreedyKernel`: one
    instance serves many greedy passes over (subsets of) the same
    indexed edge list — the conversion loop's ``α`` iterations share a
    single instance, and the endpoint/weight arrays they keep passing
    are converted to C layout once and memoized by object identity.
    """

    __slots__ = ("n", "directed", "_lib", "_cache")

    def __init__(self, n: int, directed: bool):
        self.n = n
        self.directed = directed
        self._lib = require_compiled()
        # id(list) -> (strong ref keeping the id stable, converted array)
        self._cache: Dict[int, Tuple[object, np.ndarray]] = {}

    def _convert(self, seq, dtype) -> np.ndarray:
        if isinstance(seq, np.ndarray) and seq.dtype == dtype:
            return np.ascontiguousarray(seq)
        key = id(seq)
        hit = self._cache.get(key)
        if hit is not None and hit[0] is seq:
            return hit[1]
        arr = np.ascontiguousarray(np.asarray(seq, dtype=dtype))
        self._cache[key] = (seq, arr)
        return arr

    def run(
        self,
        edges: List[Tuple[int, int, float]],
        k: float,
        max_edges: Optional[int] = None,
    ) -> List[Tuple[int, int, float]]:
        """Greedy pass over ``edges`` (already sorted by weight)."""
        edge_u = [e[0] for e in edges]
        edge_v = [e[1] for e in edges]
        edge_w = [e[2] for e in edges]
        chosen = self.run_edge_ids(
            range(len(edges)), edge_u, edge_v, edge_w, k, max_edges=max_edges
        )
        return [edges[e] for e in chosen]

    def run_edge_ids(
        self,
        edge_ids,
        edge_u,
        edge_v,
        edge_w,
        k: float,
        max_edges: Optional[int] = None,
    ) -> List[int]:
        """Greedy pass addressing edges by id into parallel endpoint arrays.

        ``edge_ids`` must come pre-sorted by weight. Returns the chosen
        ids in pick order as plain python ints, exactly like the
        interpreted kernel.
        """
        # Per-iteration id sequences are fresh objects — convert without
        # memoizing (caching them would only grow the table); the no-op
        # case (already int64, e.g. filter_edge_ids output) stays free.
        if isinstance(edge_ids, np.ndarray) and edge_ids.dtype == np.int64:
            ids = np.ascontiguousarray(edge_ids)
        else:
            ids = np.fromiter(edge_ids, dtype=np.int64) if isinstance(
                edge_ids, range
            ) else np.ascontiguousarray(np.asarray(edge_ids, dtype=np.int64))
        num_ids = int(ids.shape[0])
        if num_ids == 0:
            return []
        u = self._convert(edge_u, np.int64)
        v = self._convert(edge_v, np.int64)
        w = self._convert(edge_w, np.float64)
        out = np.empty(num_ids, dtype=np.int64)
        count = self._lib.repro_greedy_run_edge_ids(
            self.n,
            1 if self.directed else 0,
            _ptr_i64(ids),
            num_ids,
            _ptr_i64(u),
            _ptr_i64(v),
            _ptr_f64(w),
            float(k),
            -1 if max_edges is None else int(max_edges),
            _ptr_i64(out),
        )
        if count < 0:  # pragma: no cover - C-side allocation failure
            raise MemoryError("compiled greedy kernel ran out of memory")
        return out[:count].tolist()
