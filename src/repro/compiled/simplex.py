"""Compiled drop-in for the :class:`repro.lp.simplex._Tableau` pivot loop.

:func:`simplex_run` mutates the caller's tableau arrays in place exactly
like ``_Tableau.run`` does — same Bland entering scan with the
basic-column skip, same ratio test and tie-break, same unbounded
envelope, same ``_TOL``/``_DUAL_TOL`` thresholds (passed in, never
duplicated here) — and returns the same ``"optimal"``/``"unbounded"``
status vocabulary, with the iteration limit reported as ``None`` so the
caller raises its own :class:`~repro.errors.SolverLimit`.
"""

from __future__ import annotations

import ctypes
from typing import List, Optional

import numpy as np

from . import require_compiled

_P_F64 = ctypes.POINTER(ctypes.c_double)
_P_I64 = ctypes.POINTER(ctypes.c_int64)


def simplex_run(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    basis: List[int],
    max_iterations: int,
    entering_tol: float,
    tol: float,
    dual_tol: float,
) -> Optional[str]:
    """Run the compiled pivot loop on a standard-form tableau.

    ``a`` (m x n), ``b`` (m) and ``basis`` (m) are updated in place;
    ``a`` and ``b`` must be C-contiguous float64 (the caller's
    ``_Tableau`` constructor guarantees it). Returns ``"optimal"``,
    ``"unbounded"``, or ``None`` when ``max_iterations`` was exhausted.
    """
    lib = require_compiled()
    m, n = a.shape
    basis_arr = np.asarray(basis, dtype=np.int64)
    c_arr = np.ascontiguousarray(c, dtype=np.float64)
    status = lib.repro_simplex_run(
        int(m),
        int(n),
        a.ctypes.data_as(_P_F64),
        b.ctypes.data_as(_P_F64),
        c_arr.ctypes.data_as(_P_F64),
        basis_arr.ctypes.data_as(_P_I64),
        int(max_iterations),
        float(entering_tol),
        float(tol),
        float(dual_tol),
    )
    if status == -2:  # pragma: no cover - C-side allocation failure
        raise MemoryError("compiled simplex kernel ran out of memory")
    basis[:] = basis_arr.tolist()
    if status == 1:
        return "optimal"
    if status == 0:
        return "unbounded"
    return None
