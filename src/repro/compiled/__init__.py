"""Optional compiled (C) backend for the last interpreter-bound hot loops.

The two kernels the ROADMAP called out — the greedy spanner's bounded
bidirectional Dijkstra (:mod:`repro.spanners.greedy`) and the simplex
pivot loop (:mod:`repro.lp.simplex`) — are shipped as a single C99
source file (``_kernels.c``) that this module compiles on demand with
the system C compiler and loads through :mod:`ctypes`. No python
package dependency is involved: the backend is *available* exactly when
a C compiler (``cc``/``gcc``/``clang``) is on ``PATH`` or a previously
built library is already cached.

Dispatch contract (the ``method="compiled"`` tier):

* ``method="auto"`` selects the compiled tier only when
  :func:`compiled_available` is true — otherwise it falls back silently
  to the existing paths, so machines without a compiler lose nothing.
* ``method="compiled"`` requested explicitly on a machine without the
  backend raises :class:`repro.errors.CompiledBackendUnavailable` with
  the concrete reason (no compiler, build failure, disabled).
* ``method="dict"`` everywhere remains the pinned reference; the
  property tests in ``tests/test_compiled.py`` pin compiled-vs-dict
  outputs identical per seed.

Environment switches:

* ``REPRO_DISABLE_COMPILED`` — any non-empty value disables the backend
  (used by the CI no-backend leg and the fallback subprocess tests).
* ``REPRO_COMPILED_CACHE`` — overrides the build-cache directory.

The built library is cached under a name keyed by the SHA-256 of the C
source, so editing ``_kernels.c`` transparently triggers a rebuild and
two interpreter versions can share one cache. Cache directory
candidates are tried in order: the explicit override, a ``_build``
directory next to this package, ``$XDG_CACHE_HOME/repro-compiled``
(default ``~/.cache/repro-compiled``), and finally a per-user tempdir.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from typing import List, Optional

from ..errors import CompiledBackendUnavailable

__all__ = [
    "compiled_available",
    "compiled_unavailable_reason",
    "require_compiled",
    "ENV_DISABLE",
    "ENV_CACHE",
]

ENV_DISABLE = "REPRO_DISABLE_COMPILED"
ENV_CACHE = "REPRO_COMPILED_CACHE"

_SOURCE = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_kernels.c")

#: Compiler invocation: C99, position independent, shared. -ffp-contract=off
#: forbids fused multiply-add contraction so every float operation rounds
#: exactly like the numpy/pure-python reference — the compiled-vs-dict
#: output pinning depends on it.
_CFLAGS = ["-O2", "-fPIC", "-shared", "-std=c99", "-ffp-contract=off"]

_lock = threading.Lock()
_state = {"checked": False, "lib": None, "reason": None}


def _cache_candidates() -> List[str]:
    explicit = os.environ.get(ENV_CACHE)
    if explicit:
        return [explicit]
    xdg = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return [
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "_build"),
        os.path.join(xdg, "repro-compiled"),
        os.path.join(
            tempfile.gettempdir(), f"repro-compiled-{os.getuid()}"
            if hasattr(os, "getuid")
            else "repro-compiled"
        ),
    ]


def _find_compiler() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _source_key() -> str:
    with open(_SOURCE, "rb") as handle:
        return hashlib.sha256(handle.read()).hexdigest()[:16]


def _declare(lib: ctypes.CDLL) -> ctypes.CDLL:
    i64 = ctypes.c_int64
    f64 = ctypes.c_double
    p_i64 = ctypes.POINTER(ctypes.c_int64)
    p_f64 = ctypes.POINTER(ctypes.c_double)
    lib.repro_greedy_run_edge_ids.restype = i64
    lib.repro_greedy_run_edge_ids.argtypes = [
        i64, ctypes.c_int,          # n, directed
        p_i64, i64,                 # edge_ids, num_ids
        p_i64, p_i64, p_f64,        # edge_u, edge_v, edge_w
        f64, i64,                   # k, max_edges (-1 = uncapped)
        p_i64,                      # chosen_out
    ]
    lib.repro_simplex_run.restype = ctypes.c_int
    lib.repro_simplex_run.argtypes = [
        i64, i64,                   # m, n
        p_f64, p_f64, p_f64, p_i64, # a, b, c, basis
        i64, f64,                   # max_iterations, entering_tol
        f64, f64,                   # tol, dual_tol
    ]
    return lib


def _build_and_load() -> ctypes.CDLL:
    libname = f"repro_kernels_{_source_key()}.so"
    # A cached build from any earlier process (or another interpreter)
    # is loadable even when no compiler is installed anymore.
    for cache in _cache_candidates():
        path = os.path.join(cache, libname)
        if os.path.exists(path):
            return _declare(ctypes.CDLL(path))
    compiler = _find_compiler()
    if compiler is None:
        raise CompiledBackendUnavailable(
            "no C compiler found on PATH (looked for cc, gcc, clang); "
            "install one, or use method='auto'/'csr'/'dict'"
        )
    last_error: Optional[Exception] = None
    for cache in _cache_candidates():
        path = os.path.join(cache, libname)
        try:
            os.makedirs(cache, exist_ok=True)
            fd, tmp = tempfile.mkstemp(suffix=".so", dir=cache)
            os.close(fd)
        except OSError as exc:  # unwritable candidate: try the next one
            last_error = exc
            continue
        try:
            proc = subprocess.run(
                [compiler, *_CFLAGS, "-o", tmp, _SOURCE, "-lm"],
                capture_output=True,
                text=True,
            )
            if proc.returncode != 0:
                detail = (proc.stderr or proc.stdout or "").strip()
                raise CompiledBackendUnavailable(
                    f"building the compiled kernels failed "
                    f"({compiler} exited {proc.returncode}): {detail[:500]}"
                )
            os.replace(tmp, path)  # atomic: concurrent builders converge
        except Exception:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return _declare(ctypes.CDLL(path))
    raise CompiledBackendUnavailable(
        f"no writable cache directory for the compiled kernels "
        f"(tried {_cache_candidates()!r}): {last_error}"
    )


def _probe() -> None:
    if _state["checked"]:
        return
    with _lock:
        if _state["checked"]:
            return
        if os.environ.get(ENV_DISABLE):
            _state["reason"] = (
                f"the compiled backend is disabled via {ENV_DISABLE}"
            )
        else:
            try:
                import numpy  # noqa: F401  (wrappers hand arrays to ctypes)

                _state["lib"] = _build_and_load()
            except Exception as exc:
                _state["reason"] = str(exc) or type(exc).__name__
        _state["checked"] = True


def compiled_available() -> bool:
    """Whether the compiled tier can serve (builds/loads on first call).

    The probe result is memoized for the process lifetime; set
    ``REPRO_DISABLE_COMPILED`` *before* the first call to opt out.
    """
    _probe()
    return _state["lib"] is not None


def compiled_unavailable_reason() -> Optional[str]:
    """Why the backend is unavailable, or ``None`` when it is ready."""
    _probe()
    return _state["reason"]


def require_compiled() -> ctypes.CDLL:
    """The loaded kernel library; raises when the backend is unavailable.

    This is the single gate behind every explicit ``method="compiled"``
    request: the raised :class:`~repro.errors.CompiledBackendUnavailable`
    names the concrete obstacle (no compiler, failed build, disabled via
    environment) and the working alternatives.
    """
    _probe()
    lib = _state["lib"]
    if lib is None:
        raise CompiledBackendUnavailable(
            f"method='compiled' requires the compiled kernel backend, "
            f"which is unavailable: {_state['reason']}; "
            f"use method='auto' (falls back silently) or 'csr'/'dict'"
        )
    return lib
